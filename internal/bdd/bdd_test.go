package bdd

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tt"
)

func TestTerminalsAndVar(t *testing.T) {
	m := New(3)
	if m.Eval(True, 5) != true || m.Eval(False, 5) != false {
		t.Fatal("terminal evaluation wrong")
	}
	x1 := m.Var(1)
	for x := 0; x < 8; x++ {
		if m.Eval(x1, x) != (x>>1&1 == 1) {
			t.Fatalf("Var(1) wrong at %d", x)
		}
	}
	// Hash-consing: same variable twice is the same node.
	if m.Var(1) != x1 {
		t.Error("unique table missed")
	}
}

func TestFromToTTRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(190))}
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		m := New(n)
		f := tt.Random(n, rng)
		return m.ToTT(m.FromTT(f)).Equal(f)
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestCanonicity(t *testing.T) {
	// Equal functions must be the identical node — BDDs are canonical.
	rng := rand.New(rand.NewSource(191))
	m := New(5)
	for rep := 0; rep < 50; rep++ {
		f := tt.Random(5, rng)
		a := m.FromTT(f)
		// Rebuild via operations: f = (f ∧ 1) ∨ (f ∧ 0).
		b := m.Or(m.And(a, True), False)
		if a != b {
			t.Fatal("canonicity violated")
		}
		// ¬¬f = f as the same node.
		if m.Not(m.Not(a)) != a {
			t.Fatal("double negation changed node")
		}
	}
}

func TestOpsAgainstTruthTables(t *testing.T) {
	rng := rand.New(rand.NewSource(192))
	for n := 1; n <= 7; n++ {
		m := New(n)
		f := tt.Random(n, rng)
		g := tt.Random(n, rng)
		bf, bg := m.FromTT(f), m.FromTT(g)
		cases := []struct {
			name string
			got  Ref
			want *tt.TT
		}{
			{"and", m.And(bf, bg), f.And(g)},
			{"or", m.Or(bf, bg), f.Or(g)},
			{"xor", m.Xor(bf, bg), f.Xor(g)},
			{"not", m.Not(bf), f.Not()},
			{"implies", m.Implies(bf, bg), f.Not().Or(g)},
			{"ite", m.ITE(bf, bg, m.Not(bg)), f.And(g).Or(f.Not().And(g.Not()))},
		}
		for _, c := range cases {
			if !m.ToTT(c.got).Equal(c.want) {
				t.Fatalf("%s wrong at n=%d", c.name, n)
			}
		}
	}
}

func TestSatCountMatchesPopcount(t *testing.T) {
	rng := rand.New(rand.NewSource(193))
	for n := 0; n <= 9; n++ {
		m := New(n)
		f := tt.Random(n, rng)
		if got := m.SatCount(m.FromTT(f)); got != f.CountOnes() {
			t.Fatalf("SatCount = %d, want %d (n=%d)", got, f.CountOnes(), n)
		}
	}
	m := New(4)
	if m.SatCount(True) != 16 || m.SatCount(False) != 0 {
		t.Error("terminal sat counts wrong")
	}
}

func TestRestrictAndExists(t *testing.T) {
	rng := rand.New(rand.NewSource(194))
	for rep := 0; rep < 20; rep++ {
		n := 2 + rng.Intn(5)
		m := New(n)
		f := tt.Random(n, rng)
		bf := m.FromTT(f)
		i := rng.Intn(n)
		if !m.ToTT(m.Restrict(bf, i, true)).Equal(f.Cofactor(i, true)) {
			t.Fatal("Restrict(true) wrong")
		}
		if !m.ToTT(m.Restrict(bf, i, false)).Equal(f.Cofactor(i, false)) {
			t.Fatal("Restrict(false) wrong")
		}
		want := f.Cofactor(i, false).Or(f.Cofactor(i, true))
		if !m.ToTT(m.Exists(bf, i)).Equal(want) {
			t.Fatal("Exists wrong")
		}
	}
}

func TestSupportMatchesTT(t *testing.T) {
	rng := rand.New(rand.NewSource(195))
	for rep := 0; rep < 20; rep++ {
		n := 1 + rng.Intn(7)
		m := New(n)
		f := tt.Random(n, rng)
		got := m.Support(m.FromTT(f))
		want := f.Support()
		if len(got) != len(want) {
			t.Fatalf("support size %d vs %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatal("support differs")
			}
		}
	}
}

func TestNodeCountKnownShapes(t *testing.T) {
	m := New(4)
	// A single variable is one node.
	if m.NodeCount(m.Var(2)) != 1 {
		t.Error("Var node count wrong")
	}
	// Parity of n variables has n internal nodes... with both polarities
	// tracked explicitly (no complement edges) it is 2n-1.
	parity := tt.FromFunc(4, func(x int) bool {
		v := 0
		for b := 0; b < 4; b++ {
			v ^= x >> b & 1
		}
		return v == 1
	})
	if got := m.NodeCount(m.FromTT(parity)); got != 2*4-1 {
		t.Errorf("parity node count = %d, want 7", got)
	}
	if m.NodeCount(True) != 0 {
		t.Error("terminal node count wrong")
	}
}

func TestEquivalenceViaCanonicity(t *testing.T) {
	// BDD equality decides function equivalence — the verification use case.
	m := New(6)
	rng := rand.New(rand.NewSource(196))
	f := tt.Random(6, rng)
	// Build the same function two structurally different ways.
	a := m.FromTT(f)
	var b Ref = False
	for _, c := range f.ISOP() {
		cube := True
		for i := 0; i < 6; i++ {
			if c.Mask>>uint(i)&1 == 0 {
				continue
			}
			v := m.Var(i)
			if c.Lits>>uint(i)&1 == 0 {
				v = m.Not(v)
			}
			cube = m.And(cube, v)
		}
		b = m.Or(b, cube)
	}
	if a != b {
		t.Error("ISOP rebuild not equivalent to direct build")
	}
}

func TestValidation(t *testing.T) {
	m := New(2)
	for _, f := range []func(){
		func() { m.Var(2) },
		func() { m.Restrict(True, -1, true) },
		func() { m.FromTT(tt.New(3)) },
		func() { New(tt.MaxVars + 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid input accepted")
				}
			}()
			f()
		}()
	}
}
