// Package bdd implements reduced ordered binary decision diagrams, the
// classical canonical function representation of logic verification (the
// paper's related work checks equivalence with partial BDDs [Thornton'02],
// and BDD-based matchers are the traditional alternative to the signature
// methods reproduced here). The manager hash-conses nodes, caches ITE
// results, and converts to and from the package's truth tables, giving an
// independent canonical form that the test suite cross-checks the
// truth-table kernel against.
//
// Representation: nodes are integers into a manager-owned table; 0 and 1
// are the terminal constants. Variables are tested in increasing index
// order from the root. No complement edges — reduction invariants stay
// simple: no node has equal children, and (var, lo, hi) triples are unique.
package bdd

import (
	"fmt"

	"repro/internal/tt"
)

// Ref is a node reference within a Manager.
type Ref int32

// Terminal constants.
const (
	False Ref = 0
	True  Ref = 1
)

type node struct {
	level  int32 // variable index; terminals use a sentinel above all vars
	lo, hi Ref
}

// Manager owns BDD nodes for functions over a fixed variable count.
type Manager struct {
	n      int
	nodes  []node
	unique map[node]Ref
	ite    map[[3]Ref]Ref
}

const terminalLevel = int32(1 << 30)

// New returns a manager for n variables.
func New(n int) *Manager {
	if n < 0 || n > tt.MaxVars {
		panic(fmt.Sprintf("bdd: variable count %d out of range", n))
	}
	m := &Manager{
		n:      n,
		unique: make(map[node]Ref),
		ite:    make(map[[3]Ref]Ref),
	}
	m.nodes = append(m.nodes,
		node{level: terminalLevel}, // False
		node{level: terminalLevel}, // True
	)
	return m
}

// NumVars returns the variable count.
func (m *Manager) NumVars() int { return m.n }

// Size returns the number of live nodes (including terminals).
func (m *Manager) Size() int { return len(m.nodes) }

// Var returns the BDD of variable i.
func (m *Manager) Var(i int) Ref {
	if i < 0 || i >= m.n {
		panic("bdd: variable out of range")
	}
	return m.mk(int32(i), False, True)
}

// mk returns the canonical node (level, lo, hi), applying reduction.
func (m *Manager) mk(level int32, lo, hi Ref) Ref {
	if lo == hi {
		return lo
	}
	key := node{level: level, lo: lo, hi: hi}
	if r, ok := m.unique[key]; ok {
		return r
	}
	r := Ref(len(m.nodes))
	m.nodes = append(m.nodes, key)
	m.unique[key] = r
	return r
}

func (m *Manager) level(r Ref) int32 { return m.nodes[r].level }

// ITE computes if-then-else(f, g, h) — the universal BDD operator.
func (m *Manager) ITE(f, g, h Ref) Ref {
	// Terminal cases.
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	}
	key := [3]Ref{f, g, h}
	if r, ok := m.ite[key]; ok {
		return r
	}
	// Split on the top variable among the three.
	top := m.level(f)
	if l := m.level(g); l < top {
		top = l
	}
	if l := m.level(h); l < top {
		top = l
	}
	f0, f1 := m.cof(f, top)
	g0, g1 := m.cof(g, top)
	h0, h1 := m.cof(h, top)
	lo := m.ITE(f0, g0, h0)
	hi := m.ITE(f1, g1, h1)
	r := m.mk(top, lo, hi)
	m.ite[key] = r
	return r
}

// cof returns the cofactors of r with respect to the variable at `level`.
func (m *Manager) cof(r Ref, level int32) (lo, hi Ref) {
	nd := m.nodes[r]
	if nd.level != level {
		return r, r
	}
	return nd.lo, nd.hi
}

// Not returns ¬f.
func (m *Manager) Not(f Ref) Ref { return m.ITE(f, False, True) }

// And returns f ∧ g.
func (m *Manager) And(f, g Ref) Ref { return m.ITE(f, g, False) }

// Or returns f ∨ g.
func (m *Manager) Or(f, g Ref) Ref { return m.ITE(f, True, g) }

// Xor returns f ⊕ g.
func (m *Manager) Xor(f, g Ref) Ref { return m.ITE(f, m.Not(g), g) }

// Implies returns ¬f ∨ g.
func (m *Manager) Implies(f, g Ref) Ref { return m.ITE(f, g, True) }

// Restrict fixes variable i to value v in f.
func (m *Manager) Restrict(f Ref, i int, v bool) Ref {
	if i < 0 || i >= m.n {
		panic("bdd: variable out of range")
	}
	memo := make(map[Ref]Ref)
	var rec func(r Ref) Ref
	rec = func(r Ref) Ref {
		nd := m.nodes[r]
		if nd.level > int32(i) {
			return r // variable cannot appear below
		}
		if got, ok := memo[r]; ok {
			return got
		}
		var out Ref
		if nd.level == int32(i) {
			if v {
				out = nd.hi
			} else {
				out = nd.lo
			}
		} else {
			out = m.mk(nd.level, rec(nd.lo), rec(nd.hi))
		}
		memo[r] = out
		return out
	}
	return rec(f)
}

// Exists existentially quantifies variable i: f|x_i=0 ∨ f|x_i=1.
func (m *Manager) Exists(f Ref, i int) Ref {
	return m.Or(m.Restrict(f, i, false), m.Restrict(f, i, true))
}

// SatCount returns the number of satisfying assignments over all n vars.
func (m *Manager) SatCount(f Ref) int {
	memo := make(map[Ref]float64)
	var rec func(r Ref, level int32) float64
	rec = func(r Ref, level int32) float64 {
		nd := m.nodes[r]
		if r == False {
			return 0
		}
		if r == True {
			return pow2(int32(m.n) - level)
		}
		key := r
		var base float64
		if got, ok := memo[key]; ok {
			base = got
		} else {
			base = rec(nd.lo, nd.level+1) + rec(nd.hi, nd.level+1)
			memo[key] = base
		}
		return base * pow2(nd.level-level)
	}
	return int(rec(f, 0))
}

func pow2(e int32) float64 {
	v := 1.0
	for ; e > 0; e-- {
		v *= 2
	}
	return v
}

// Support returns the variables f depends on, ascending.
func (m *Manager) Support(f Ref) []int {
	seen := make(map[Ref]bool)
	vars := make(map[int32]bool)
	var rec func(r Ref)
	rec = func(r Ref) {
		if r <= True || seen[r] {
			return
		}
		seen[r] = true
		nd := m.nodes[r]
		vars[nd.level] = true
		rec(nd.lo)
		rec(nd.hi)
	}
	rec(f)
	var out []int
	for i := 0; i < m.n; i++ {
		if vars[int32(i)] {
			out = append(out, i)
		}
	}
	return out
}

// NodeCount returns the number of internal nodes reachable from f.
func (m *Manager) NodeCount(f Ref) int {
	seen := make(map[Ref]bool)
	var rec func(r Ref)
	count := 0
	rec = func(r Ref) {
		if r <= True || seen[r] {
			return
		}
		seen[r] = true
		count++
		rec(m.nodes[r].lo)
		rec(m.nodes[r].hi)
	}
	rec(f)
	return count
}

// FromTT builds the BDD of a truth table (Shannon expansion, memoized on
// sub-table content).
func (m *Manager) FromTT(f *tt.TT) Ref {
	if f.NumVars() != m.n {
		panic("bdd: arity mismatch")
	}
	memo := make(map[string]Ref)
	var rec func(g *tt.TT, level int) Ref
	rec = func(g *tt.TT, level int) Ref {
		if g.IsConst0() {
			return False
		}
		if g.IsConst1() {
			return True
		}
		key := g.Hex()
		if r, ok := memo[key]; ok {
			return r
		}
		// Find the next variable it depends on.
		v := level
		for v < m.n && !g.DependsOn(v) {
			v++
		}
		if v == m.n {
			panic("bdd: non-constant table with empty support")
		}
		r := m.mk(int32(v), rec(g.Cofactor(v, false), v+1), rec(g.Cofactor(v, true), v+1))
		memo[key] = r
		return r
	}
	return rec(f, 0)
}

// ToTT expands the BDD back into a truth table.
func (m *Manager) ToTT(f Ref) *tt.TT {
	out := tt.New(m.n)
	for x := 0; x < out.NumBits(); x++ {
		if m.Eval(f, x) {
			out.Set(x, true)
		}
	}
	return out
}

// Eval evaluates f on the assignment packed into x (bit i = variable i).
func (m *Manager) Eval(f Ref, x int) bool {
	r := f
	for r > True {
		nd := m.nodes[r]
		if x>>uint(nd.level)&1 == 1 {
			r = nd.hi
		} else {
			r = nd.lo
		}
	}
	return r == True
}
