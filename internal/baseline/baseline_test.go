package baseline

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/npn"
	"repro/internal/tt"
)

func allBaselines() []*Classifier {
	return []*Classifier{NewHuang(), NewHierarchical(), NewHybrid()}
}

// TestCanonIsInClass: the canonical form must itself be an NPN transform
// image of the input — baselines may over-split classes but can never merge
// distinct ones.
func TestCanonIsInClass(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	for _, c := range allBaselines() {
		for n := 1; n <= 5; n++ {
			for rep := 0; rep < 20; rep++ {
				f := tt.Random(n, rng)
				canon := c.Canon(f)
				if !npn.ExactCanon(canon).Equal(npn.ExactCanon(f)) {
					t.Fatalf("%s: canonical form left the NPN class (n=%d, f=%s)", c.Name(), n, f.Hex())
				}
			}
		}
	}
}

// TestNeverMergesClasses: exhaustively over all 2^16 4-variable functions is
// too slow here; verify on a sample that equal keys imply true equivalence.
func TestNeverMergesClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for _, c := range allBaselines() {
		keys := make(map[string]*tt.TT)
		for rep := 0; rep < 2000; rep++ {
			f := tt.Random(4, rng)
			k := string(c.Key(f))
			if g, ok := keys[k]; ok {
				if !npn.Equivalent(f, g) {
					t.Fatalf("%s merged inequivalent functions %s and %s", c.Name(), f.Hex(), g.Hex())
				}
			} else {
				keys[k] = f
			}
		}
	}
}

// TestAccuracyOrdering: on NPN-transform pairs, stronger baselines must
// match at least as often as weaker ones, and the class-count ordering of
// Table III (huang ≥ hier ≥ hybrid ≥ exact) must hold.
func TestAccuracyOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	n := 5
	var fs []*tt.TT
	for i := 0; i < 1500; i++ {
		f := tt.Random(n, rng)
		fs = append(fs, f, npn.RandomTransform(n, rng).Apply(f))
	}
	exact := npn.ClassCount(fs)
	huang := NewHuang().NumClasses(fs)
	hier := NewHierarchical().NumClasses(fs)
	hybrid := NewHybrid().NumClasses(fs)
	if !(huang >= hier && hier >= hybrid && hybrid >= exact) {
		t.Errorf("class count ordering violated: huang=%d hier=%d hybrid=%d exact=%d",
			huang, hier, hybrid, exact)
	}
	if hybrid > exact*3 {
		t.Errorf("hybrid too inaccurate: %d vs exact %d", hybrid, exact)
	}
}

// TestHybridMatchesTransformPairs: the symmetry-aware baseline should
// identify most transform pairs of structured functions.
func TestHybridMatchesTransformPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	c := NewHybrid()
	n := 4
	matched, total := 0, 0
	for rep := 0; rep < 300; rep++ {
		f := tt.Random(n, rng)
		g := npn.RandomTransform(n, rng).Apply(f)
		total++
		if bytes.Equal(c.Key(f), c.Key(g)) {
			matched++
		}
	}
	if matched*10 < total*9 {
		t.Errorf("hybrid matched only %d/%d transform pairs", matched, total)
	}
}

func TestKeyDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	for _, c := range allBaselines() {
		f := tt.Random(6, rng)
		if !bytes.Equal(c.Key(f), c.Key(f.Clone())) {
			t.Errorf("%s key not deterministic", c.Name())
		}
	}
}

func TestTotallySymmetricFunctionsCanonicalizeFast(t *testing.T) {
	// Majority of 5 variables: one symmetry class, so hybrid enumeration
	// collapses to a single candidate per phase; canonical form must still
	// be in class.
	maj5 := tt.FromFunc(5, func(x int) bool {
		ones := 0
		for b := 0; b < 5; b++ {
			ones += x >> b & 1
		}
		return ones >= 3
	})
	c := NewHybrid()
	canon := c.Canon(maj5)
	m := maj5.Clone()
	if !bytes.Equal(c.Key(m), c.Key(maj5.FlipVar(1).SwapVars(0, 4))) {
		t.Error("hybrid failed to canonicalize a transform of majority")
	}
	_ = canon
}

func TestNamesAreDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range allBaselines() {
		if seen[c.Name()] {
			t.Fatalf("duplicate baseline name %s", c.Name())
		}
		seen[c.Name()] = true
	}
}
