// Package baseline reimplements the three comparison NPN classifiers the
// paper benchmarks against (Table III, Fig. 5), following the published
// ideas of the cited works. All three are canonical-form methods: they map
// each function to a heuristic canonical truth table and bucket by it. They
// differ in how much of the transform space they explore to resolve
// heuristic ties:
//
//   - Huang (testnpn -6 analogue, Huang et al. FPT'13): pure heuristic —
//     output phase by satisfy count, input phases by cofactor count, variable
//     order by sorted cofactor counts, no tie enumeration. Ultra fast, badly
//     over-splits classes.
//   - Hierarchical (testnpn -7 analogue, Petkovska et al. FPL'16): the same
//     skeleton plus a small bounded enumeration of tied variable orders and
//     phases.
//   - Hybrid (testnpn -11 analogue, Zhou et al. TC'20): co-designed canonical
//     form — symmetry classes collapse interchangeable variables, remaining
//     ties are enumerated under a large budget. Accurate, but its runtime
//     depends on the function's tie/symmetry structure, which is exactly the
//     workload-sensitive behaviour Fig. 5 shows. Per the paper's fair-
//     comparison note, the final exhaustive-enumeration fallback of the
//     original is removed: the budget caps the search.
//
// Canonical-form methods err in the opposite direction from signature
// methods: heuristic canonical forms may split a true NPN class (too many
// classes), whereas MSV signatures may merge distinct classes (too few).
// The experiments reproduce that asymmetry.
package baseline

import (
	"sort"

	"repro/internal/npn"
	"repro/internal/symmetry"
	"repro/internal/tt"
)

// Classifier is a baseline canonical-form classifier.
type Classifier struct {
	name string
	// budget caps how many candidate transforms are evaluated per function;
	// 1 means the bare heuristic.
	budget int
	// useSymmetry collapses tied variables that are provably symmetric.
	useSymmetry bool
}

// NewHuang returns the testnpn -6 analogue (heuristic only).
func NewHuang() *Classifier { return &Classifier{name: "huang13", budget: 1} }

// NewHierarchical returns the testnpn -7 analogue (small tie enumeration).
func NewHierarchical() *Classifier { return &Classifier{name: "hier16", budget: 48} }

// NewHybrid returns the testnpn -11 analogue (symmetry-aware, large budget).
func NewHybrid() *Classifier {
	return &Classifier{name: "hybrid20", budget: 4096, useSymmetry: true}
}

// Name identifies the baseline in experiment tables.
func (c *Classifier) Name() string { return c.name }

// Key returns the canonical truth-table key of f under this baseline.
func (c *Classifier) Key(f *tt.TT) []byte {
	canon := c.Canon(f)
	words := canon.Words()
	key := make([]byte, 0, len(words)*8)
	for _, w := range words {
		for b := 0; b < 8; b++ {
			key = append(key, byte(w>>(8*uint(b))))
		}
	}
	return key
}

// NumClasses buckets the list by canonical key.
func (c *Classifier) NumClasses(fs []*tt.TT) int {
	seen := make(map[string]struct{})
	for _, f := range fs {
		seen[string(c.Key(f))] = struct{}{}
	}
	return len(seen)
}

// varInfo is the per-variable sort record of the heuristic ordering.
type varInfo struct {
	idx      int
	flip     bool // input phase chosen by the heuristic
	c1, c0   int  // cofactor counts after phase normalization (c1 ≥ c0)
	phaseTie bool
}

// Canon computes the heuristic canonical form of f.
func (c *Classifier) Canon(f *tt.TT) *tt.TT {
	n := f.NumVars()
	half := f.NumBits() / 2
	ones := f.CountOnes()

	outPhases := []bool{false}
	switch {
	case ones > half:
		outPhases = []bool{true}
	case ones == half:
		outPhases = []bool{false, true}
	}

	var best *tt.TT
	budget := c.budget
	for _, out := range outPhases {
		g := f
		if out {
			g = f.Not()
		}
		cand, used := c.canonPhase(g, n)
		if best == nil || cand.Less(best) {
			best = cand
		}
		budget -= used
		if budget <= 0 {
			break
		}
	}
	return best
}

// canonPhase canonicalizes one output phase; returns the best candidate and
// the number of transform evaluations spent.
func (c *Classifier) canonPhase(g *tt.TT, n int) (*tt.TT, int) {
	vars := make([]varInfo, n)
	for i := 0; i < n; i++ {
		c1 := g.CofactorCount(i, true)
		c0 := g.CountOnes() - c1
		v := varInfo{idx: i}
		if c1 < c0 {
			v.flip, v.c1, v.c0 = true, c0, c1
		} else {
			v.c1, v.c0 = c1, c0
			v.phaseTie = c1 == c0
		}
		vars[i] = v
	}
	// Heuristic order: descending c1, original index as tiebreak (the
	// tiebreak is what makes the bare heuristic inexact).
	sort.SliceStable(vars, func(a, b int) bool { return vars[a].c1 > vars[b].c1 })

	// Tie groups: runs of equal c1 are candidate reorderings.
	type group struct{ lo, hi int } // [lo, hi)
	var groups []group
	for lo := 0; lo < n; {
		hi := lo + 1
		for hi < n && vars[hi].c1 == vars[lo].c1 {
			hi++
		}
		if hi-lo > 1 {
			groups = append(groups, group{lo, hi})
		}
		lo = hi
	}

	// Symmetry collapse: inside a tie group, variables that are symmetric in
	// g are interchangeable — fixing their relative order loses nothing.
	symRep := make([]int, n)
	for i := range symRep {
		symRep[i] = i
	}
	if c.useSymmetry {
		for _, cls := range symmetry.Classes(g) {
			for _, v := range cls {
				symRep[v] = cls[0]
			}
		}
	}

	apply := func(order []varInfo, phaseMask uint32) *tt.TT {
		tr := npn.Identity(n)
		for pos, v := range order {
			tr.Perm[pos] = uint8(v.idx)
			bit := uint32(0)
			if v.flip {
				bit = 1
			}
			if v.phaseTie && phaseMask>>uint(pos)&1 == 1 {
				bit ^= 1
			}
			tr.NegMask |= bit << uint(pos)
		}
		return tr.Apply(g)
	}

	best := apply(vars, 0)
	used := 1
	if c.budget <= 1 {
		return best, used
	}

	// Enumerate alternative orders within tie groups (product of group
	// permutations) and phase flips of tied variables, capped by budget.
	tiedPhases := make([]int, 0, n)
	for pos, v := range vars {
		if v.phaseTie {
			tiedPhases = append(tiedPhases, pos)
		}
	}

	order := make([]varInfo, n)
	copy(order, vars)
	stop := false

	var enumGroups func(gi int)
	tryPhases := func() {
		limit := 1 << uint(len(tiedPhases))
		for m := 0; m < limit && !stop; m++ {
			var phaseMask uint32
			for k, pos := range tiedPhases {
				if m>>uint(k)&1 == 1 {
					phaseMask |= 1 << uint(pos)
				}
			}
			cand := apply(order, phaseMask)
			used++
			if cand.Less(best) {
				best = cand
			}
			if used >= c.budget {
				stop = true
			}
		}
	}
	enumGroups = func(gi int) {
		if stop {
			return
		}
		if gi == len(groups) {
			tryPhases()
			return
		}
		g0 := groups[gi]
		permuteRange(order, g0.lo, g0.hi, symRep, func() { enumGroups(gi + 1) }, &stop)
	}
	if len(groups) == 0 {
		tryPhases()
	} else {
		enumGroups(0)
	}
	return best, used
}

// permuteRange enumerates permutations of order[lo:hi] in place, skipping
// reorderings that only exchange symmetry-equivalent variables (same
// representative), and calls leaf for each arrangement.
func permuteRange(order []varInfo, lo, hi int, symRep []int, leaf func(), stop *bool) {
	var rec func(k int)
	rec = func(k int) {
		if *stop {
			return
		}
		if k == hi {
			leaf()
			return
		}
		seenRep := make(map[int]bool)
		for i := k; i < hi; i++ {
			rep := symRep[order[i].idx]
			if seenRep[rep] {
				continue // interchangeable with an already-tried choice
			}
			seenRep[rep] = true
			order[k], order[i] = order[i], order[k]
			rec(k + 1)
			order[k], order[i] = order[i], order[k]
		}
	}
	rec(lo)
}
