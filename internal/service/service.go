// Package service is the online classification pipeline on top of
// internal/store: batch classify/insert requests fanned across a worker
// pool, a bounded LRU cache of recent function → (class, witness) results,
// and atomic counters (hits, misses, collisions, latency) exposed as a
// stats snapshot. The HTTP/JSON surface in http.go is what cmd/npnserve
// serves; the pipeline itself is transport-agnostic and usable in-process.
//
// Batches are split into contiguous chunks, one per worker, mirroring
// core.ClassifyParallel: signature hashing dominates and is embarrassingly
// parallel because every store operation borrows a private engine pair.
// Results keep the input order.
//
// Duplicate keys within one batch are grouped before the store is
// touched: N copies of the same function cost one lookup or insert, and
// the remaining copies are answered by scattering the first copy's
// result. Real cut workloads are dominated by a few very frequent
// functions, so the dedup often removes most of a batch's work; the
// deduped count is reported in Stats.
package service

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/npn"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/tt"
)

// DefaultCacheSize is the LRU capacity used when Options.CacheSize is 0.
const DefaultCacheSize = 4096

// Options configures a Service.
type Options struct {
	// Workers is the worker-pool width for batch operations. Zero means
	// GOMAXPROCS.
	Workers int
	// CacheSize bounds the function→result LRU cache. Zero means
	// DefaultCacheSize; negative disables caching.
	CacheSize int
	// ObserveBatch, when set, is called once per completed batch with the
	// operation ("classify" or "insert"), the batch size and the batch's
	// wall time — the hook internal/obs uses to feed batch-size and
	// batch-latency histograms. It runs on the request path and must be
	// cheap and non-blocking.
	ObserveBatch func(op string, size int, d time.Duration)
}

// Service is a concurrency-safe batch classification pipeline.
type Service struct {
	st           *store.Store
	workers      int
	cache        *lruCache // nil when disabled
	observeBatch func(op string, size int, d time.Duration)

	started time.Time

	// inflight counts batches currently executing on the worker pool —
	// the live depth admission control (internal/auth) sheds on.
	inflight atomic.Int64

	// Atomic counters. Latency is accumulated per batch in nanoseconds.
	lookups    atomic.Int64
	hits       atomic.Int64
	misses     atomic.Int64
	cacheHits  atomic.Int64
	inserts    atomic.Int64
	created    atomic.Int64
	collisions atomic.Int64
	deduped    atomic.Int64
	batches    atomic.Int64
	latencyNS  atomic.Int64
}

// New returns a service over st.
func New(st *store.Store, o Options) *Service {
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var cache *lruCache
	switch {
	case o.CacheSize == 0:
		cache = newLRUCache(DefaultCacheSize)
	case o.CacheSize > 0:
		cache = newLRUCache(o.CacheSize)
	}
	return &Service{st: st, workers: workers, cache: cache,
		observeBatch: o.ObserveBatch, started: time.Now()}
}

// Store returns the backing class store.
func (s *Service) Store() *store.Store { return s.st }

// NumVars returns the arity the service serves.
func (s *Service) NumVars() int { return s.st.NumVars() }

// Workers returns the worker-pool width batches fan out across.
func (s *Service) Workers() int { return s.workers }

// InflightBatches returns the number of batches executing right now —
// the queue-pressure signal load shedding compares against its limit.
func (s *Service) InflightBatches() int64 { return s.inflight.Load() }

// Result is the outcome of classifying one function.
type Result struct {
	// Key is the MSV class key (valid even on a miss).
	Key uint64
	// Index is the representative's position in the key's collision chain;
	// -1 on a miss.
	Index int
	// Hit reports whether the function's class is stored.
	Hit bool
	// Rep is the certified class representative (nil on a miss).
	Rep *tt.TT
	// Witness is a transform τ with τ(Rep) = f (valid only on a hit).
	Witness npn.Transform
}

// InsertResult is the outcome of inserting one function.
type InsertResult struct {
	Key   uint64
	Index int
	// New reports whether the function founded a new class.
	New bool
}

// Classify looks up every function's class, fanning the batch across the
// worker pool. Results keep input order. Misses are reported per function
// (Hit=false); they do not modify the store.
func (s *Service) Classify(fs []*tt.TT) []Result {
	return s.ClassifyCtx(context.Background(), fs)
}

// ClassifyCtx is Classify with the request context threaded through for
// tracing: the batch runs under a service.batch span, the wait between
// batch admission and the first worker touching work is a service.queue
// span, and every unique function gets a service.certify span recording
// its LRU outcome. With tracing off every span is nil and the cost is a
// context lookup.
func (s *Service) ClassifyCtx(ctx context.Context, fs []*tt.TT) []Result {
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	start := time.Now()
	ctx, batch := obs.StartSpan(ctx, "service.batch")
	batch.SetAttr("op", "classify")
	batch.SetInt("size", int64(len(fs)))
	out := make([]Result, len(fs))
	uniq, firstOf := dedupBatch(fs)
	batch.SetInt("unique", int64(len(uniq)))
	// The queue span opens before the fan-out and is closed by whichever
	// worker goroutine runs first: its duration is the time the batch
	// spent waiting for pool capacity rather than doing work.
	_, queue := obs.StartSpan(ctx, "service.queue")
	var queueOnce sync.Once
	s.fanOut(len(uniq), func(i int) {
		if queue != nil {
			queueOnce.Do(queue.End)
		}
		j := uniq[i]
		out[j] = s.classifyOne(ctx, fs[j])
	})
	if queue != nil {
		queueOnce.Do(queue.End) // empty batch: nothing ever ran
	}
	if firstOf != nil {
		for i, j := range firstOf {
			if j == i {
				continue
			}
			out[i] = out[j]
			if out[i].Hit {
				s.hits.Add(1)
			} else {
				s.misses.Add(1)
			}
		}
		s.deduped.Add(int64(len(fs) - len(uniq)))
	}
	s.lookups.Add(int64(len(fs)))
	s.batches.Add(1)
	d := time.Since(start)
	s.latencyNS.Add(d.Nanoseconds())
	if s.observeBatch != nil {
		s.observeBatch("classify", len(fs), d)
	}
	batch.End()
	return out
}

// Insert adds every function's class if absent, fanning the batch across
// the worker pool. Results keep input order.
func (s *Service) Insert(fs []*tt.TT) []InsertResult {
	return s.InsertCtx(context.Background(), fs)
}

// InsertCtx is Insert with the request context threaded through for
// tracing; see ClassifyCtx for the span layout.
func (s *Service) InsertCtx(ctx context.Context, fs []*tt.TT) []InsertResult {
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	start := time.Now()
	ctx, batch := obs.StartSpan(ctx, "service.batch")
	batch.SetAttr("op", "insert")
	batch.SetInt("size", int64(len(fs)))
	out := make([]InsertResult, len(fs))
	uniq, firstOf := dedupBatch(fs)
	batch.SetInt("unique", int64(len(uniq)))
	_, queue := obs.StartSpan(ctx, "service.queue")
	var queueOnce sync.Once
	s.fanOut(len(uniq), func(i int) {
		if queue != nil {
			queueOnce.Do(queue.End)
		}
		j := uniq[i]
		ictx, sp := obs.StartSpan(ctx, "service.certify")
		key, index, isNew := s.st.AddCtx(ictx, fs[j])
		sp.SetBool("new", isNew)
		sp.End()
		out[j] = InsertResult{Key: key, Index: index, New: isNew}
		if isNew {
			s.created.Add(1)
			if index > 0 {
				s.collisions.Add(1)
			}
		}
	})
	if queue != nil {
		queueOnce.Do(queue.End)
	}
	if firstOf != nil {
		for i, j := range firstOf {
			if j == i {
				continue
			}
			// The first copy founded (or found) the class; later copies of
			// the same function are by definition not new.
			r := out[j]
			r.New = false
			out[i] = r
		}
		s.deduped.Add(int64(len(fs) - len(uniq)))
	}
	s.inserts.Add(int64(len(fs)))
	s.batches.Add(1)
	d := time.Since(start)
	s.latencyNS.Add(d.Nanoseconds())
	if s.observeBatch != nil {
		s.observeBatch("insert", len(fs), d)
	}
	batch.End()
	return out
}

// dedupBatch groups duplicate functions within one batch. uniq lists the
// indices of first occurrences, in input order; firstOf maps every index
// to its function's first occurrence, or is nil when the batch has no
// duplicates (the common case pays one map pass and no scatter).
func dedupBatch(fs []*tt.TT) (uniq []int, firstOf []int) {
	if len(fs) < 2 {
		uniq = make([]int, len(fs))
		for i := range uniq {
			uniq[i] = i
		}
		return uniq, nil
	}
	seen := make(map[string]int, len(fs))
	firstOf = make([]int, len(fs))
	uniq = make([]int, 0, len(fs))
	for i, f := range fs {
		k := cacheKey(f)
		if j, ok := seen[k]; ok {
			firstOf[i] = j
			continue
		}
		seen[k] = i
		firstOf[i] = i
		uniq = append(uniq, i)
	}
	if len(uniq) == len(fs) {
		return uniq, nil
	}
	return uniq, firstOf
}

// classifyOne serves one lookup through the cache, under a
// service.certify span recording whether the LRU answered.
func (s *Service) classifyOne(ctx context.Context, f *tt.TT) Result {
	ctx, sp := obs.StartSpan(ctx, "service.certify")
	// The key lives in a stack buffer so a cache hit allocates nothing;
	// only the miss path (which pays a store lookup anyway) materializes
	// the string for put.
	var kb [32]byte
	var ck []byte
	if s.cache != nil {
		ck = appendCacheKey(kb[:0], f)
		if r, ok := s.cache.getBytes(ck); ok {
			s.cacheHits.Add(1)
			s.hits.Add(1)
			sp.SetAttr("cache", "hit")
			sp.End()
			return r
		}
	}
	sp.SetAttr("cache", "miss")
	rep, key, index, w, ok := s.st.LookupCtx(ctx, f)
	sp.SetBool("hit", ok)
	sp.End()
	r := Result{Key: key, Index: index, Hit: ok, Rep: rep, Witness: w}
	if ok {
		s.hits.Add(1)
		// Representatives are never removed, so a cached hit stays valid
		// forever; misses are not cached because a later insert would
		// invalidate them.
		if s.cache != nil {
			s.cache.put(string(ck), r)
		}
	} else {
		s.misses.Add(1)
	}
	return r
}

// fanOut runs fn(i) for i in [0,count) over contiguous chunks, one
// goroutine per worker — the chunking strategy of core.ClassifyParallel.
func (s *Service) fanOut(count int, fn func(i int)) {
	workers := s.workers
	if workers > count {
		workers = count
	}
	if workers <= 1 {
		for i := 0; i < count; i++ {
			fn(i)
		}
		return
	}
	chunk := (count + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > count {
			hi = count
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// cacheKey packs the function's truth-table words into a string key. The
// arity is fixed per service, so the bits identify the function.
func cacheKey(f *tt.TT) string {
	return string(appendCacheKey(nil, f))
}

// appendCacheKey appends the packed truth-table words of f to b — the
// allocation-free form of cacheKey for the hot path, which passes a stack
// buffer and looks the bytes up without building a string.
//
//npn:noalloc
func appendCacheKey(b []byte, f *tt.TT) []byte {
	for _, w := range f.Words() {
		b = append(b,
			byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
			byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
	}
	return b
}

// Stats is a point-in-time snapshot of the service counters.
type Stats struct {
	Arity   int `json:"arity"`
	Workers int `json:"workers"`
	Shards  int `json:"shards"`

	Classes         int `json:"classes"`
	StoreCollisions int `json:"store_collisions"`

	Lookups    int64 `json:"lookups"`
	Hits       int64 `json:"hits"`
	Misses     int64 `json:"misses"`
	CacheHits  int64 `json:"cache_hits"`
	Inserts    int64 `json:"inserts"`
	Created    int64 `json:"created"`
	Collisions int64 `json:"insert_collisions"`

	// Deduped counts batch members answered by another copy of the same
	// function in their own batch — store work the key dedup saved.
	Deduped int64 `json:"deduped_keys"`

	// JournalErrors counts inserts the store refused because its
	// write-ahead journal failed; zero without a journal.
	JournalErrors int64 `json:"journal_errors"`

	// Representative-profile cache counters from the store: hits reuse a
	// memoized matcher profile, misses build one, entries count memoized
	// profiles. All zero when the store's profile cache is disabled.
	ProfileHits    int64 `json:"profile_hits"`
	ProfileMisses  int64 `json:"profile_misses"`
	ProfileEntries int64 `json:"profile_entries"`

	Batches        int64   `json:"batches"`
	AvgBatchMicros float64 `json:"avg_batch_micros"`

	// InflightBatches is the number of batches executing at snapshot
	// time — the live pool depth load shedding watches.
	InflightBatches int64 `json:"inflight_batches"`

	CacheEntries  int     `json:"cache_entries"`
	CacheCapacity int     `json:"cache_capacity"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// Stats returns a snapshot of the counters and store shape.
func (s *Service) Stats() Stats {
	st := Stats{
		Arity:           s.st.NumVars(),
		Workers:         s.workers,
		Shards:          s.st.NumShards(),
		Classes:         s.st.Size(),
		StoreCollisions: s.st.Collisions(),
		Lookups:         s.lookups.Load(),
		Hits:            s.hits.Load(),
		Misses:          s.misses.Load(),
		CacheHits:       s.cacheHits.Load(),
		Inserts:         s.inserts.Load(),
		Created:         s.created.Load(),
		Collisions:      s.collisions.Load(),
		Deduped:         s.deduped.Load(),
		JournalErrors:   s.st.JournalErrors(),
		Batches:         s.batches.Load(),
		InflightBatches: s.inflight.Load(),
		UptimeSeconds:   time.Since(s.started).Seconds(),
	}
	st.ProfileHits, st.ProfileMisses, st.ProfileEntries = s.st.ProfileCacheStats()
	if st.Batches > 0 {
		st.AvgBatchMicros = float64(s.latencyNS.Load()) / float64(st.Batches) / 1e3
	}
	if s.cache != nil {
		st.CacheEntries = s.cache.len()
		st.CacheCapacity = s.cache.cap
	}
	return st
}
