package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/api"
	"repro/internal/npn"
	"repro/internal/tt"
)

// MaxBatch bounds the number of functions accepted in one request. It is
// the wire contract's limit (api.MaxBatch) — one constant governs both
// surfaces, so the /v1 item limit and the /v2 byte bound derived from it
// cannot drift apart.
const MaxBatch = api.MaxBatch

// ClassifyRequest is the body of POST /v1/classify and POST /v1/insert:
// a batch of hexadecimal truth tables of the server's arity.
type ClassifyRequest struct {
	Functions []string `json:"functions"`
}

// WitnessJSON is the wire form of an npn.Transform witness. It is an
// alias of the /v2 contract's api.Witness — same fields, same json tags,
// one Transform() decode path — so the two surfaces cannot drift.
type WitnessJSON = api.Witness

// NewWitnessJSON encodes a witness transform into its wire form.
func NewWitnessJSON(w npn.Transform) *WitnessJSON { return api.NewWitness(w) }

// ClassifyResultJSON is one function's classification outcome. Class is
// the 16-hex-digit MSV key, valid even on a miss; Index, Rep and Witness
// are present only on a hit. Witness satisfies witness(rep) = function.
type ClassifyResultJSON struct {
	Function string       `json:"function"`
	Hit      bool         `json:"hit"`
	Class    string       `json:"class"`
	Index    *int         `json:"index,omitempty"`
	Rep      string       `json:"rep,omitempty"`
	Witness  *WitnessJSON `json:"witness,omitempty"`
}

// ClassifyResponse is the body returned by POST /v1/classify.
type ClassifyResponse struct {
	Results []ClassifyResultJSON `json:"results"`
}

// InsertResultJSON is one function's insertion outcome.
type InsertResultJSON struct {
	Function string `json:"function"`
	Class    string `json:"class"`
	Index    int    `json:"index"`
	New      bool   `json:"new"`
}

// InsertResponse is the body returned by POST /v1/insert.
type InsertResponse struct {
	Results []InsertResultJSON `json:"results"`
}

// ErrorJSON is the body of every non-2xx response, shared by the
// single-arity handler here and the federated handler.
type ErrorJSON struct {
	Error string `json:"error"`
}

// WriteError emits the standard JSON error body with the given status.
func WriteError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorJSON{Error: fmt.Sprintf(format, args...)})
}

// WriteJSON emits a JSON response with the given status.
func WriteJSON(w http.ResponseWriter, status int, v any) { writeJSON(w, status, v) }

// EncodeClassifyResults builds the wire response for a classify batch:
// raw[i] is the request's hex form of the function results[i] answers.
// Both the single-arity handler here and the federated handler encode
// through this, so the wire format cannot diverge between them.
func EncodeClassifyResults(raw []string, results []Result) ClassifyResponse {
	resp := ClassifyResponse{Results: make([]ClassifyResultJSON, len(results))}
	for i, res := range results {
		out := ClassifyResultJSON{
			Function: raw[i],
			Hit:      res.Hit,
			Class:    fmt.Sprintf("%016x", res.Key),
		}
		if res.Hit {
			idx := res.Index
			out.Index = &idx
			out.Rep = res.Rep.Hex()
			out.Witness = NewWitnessJSON(res.Witness)
		}
		resp.Results[i] = out
	}
	return resp
}

// CountRefusedInserts returns how many results in an insert batch the
// store refused (journal failure: Index < 0, not stored durably). Both
// insert handlers fail the request when any insert was refused, so a
// client never reads a 200 for a class that will not survive a restart.
func CountRefusedInserts(results []InsertResult) int {
	refused := 0
	for _, r := range results {
		if r.Index < 0 {
			refused++
		}
	}
	return refused
}

// EncodeInsertResults builds the wire response for an insert batch.
func EncodeInsertResults(raw []string, results []InsertResult) InsertResponse {
	resp := InsertResponse{Results: make([]InsertResultJSON, len(results))}
	for i, res := range results {
		resp.Results[i] = InsertResultJSON{
			Function: raw[i],
			Class:    fmt.Sprintf("%016x", res.Key),
			Index:    res.Index,
			New:      res.New,
		}
	}
	return resp
}

// NewHandler returns the HTTP/JSON API over a single-arity svc with the
// default body bound for uploads and streams; see NewHandlerWith.
func NewHandler(svc *Service) http.Handler {
	return NewHandlerWith(svc, api.DefaultMaxBody)
}

// NewHandlerWith returns the versioned HTTP/JSON API over a single-arity
// svc, mounted on the shared api.Router (JSON 404/405 fallback, GET
// /v2/spec self-description):
//
//	POST /v2/classify         batch lookup, per-item errors (read-only)
//	POST /v2/insert           batch insert, per-item errors
//	POST /v2/classify/stream  NDJSON variant for unbuffered batches
//	POST /v2/insert/stream    NDJSON variant for unbuffered batches
//	POST /v2/map              map an ASCII-AIGER circuit to k-LUTs
//	GET  /v2/stats            counters + store shape
//	GET  /v2/spec             routes + error codes
//	GET  /healthz             liveness
//
// plus the deprecated /v1 shims (classify, insert, stats), which keep
// their exact pre-v2 bodies for valid requests. maxBody bounds the AIGER
// upload and NDJSON stream bodies (npnserve's -max-body flag); the JSON
// batch endpoints keep their arity-derived bound.
//
// cmd/npnserve serves the federated handler (internal/federation), which
// speaks the same wire format over many arities; this one remains the
// transport for embedding a single service in-process.
func NewHandlerWith(svc *Service, maxBody int64) http.Handler {
	rt := api.NewRouter("single")
	b := backend{svc}
	jsonBody := MaxBodyBytes(svc.NumVars())

	rt.HandleDeprecated("POST", "/v1/classify", "batch lookup (use /v2/classify)",
		func(w http.ResponseWriter, r *http.Request) {
			if !api.CheckContentType(w, r, "application/json") {
				return
			}
			fs, raw, ok := decodeBatch(w, r, svc.NumVars())
			if !ok {
				return
			}
			writeJSON(w, http.StatusOK, EncodeClassifyResults(raw, svc.Classify(fs)))
		})
	rt.HandleDeprecated("POST", "/v1/insert", "batch insert (use /v2/insert)",
		func(w http.ResponseWriter, r *http.Request) {
			if !api.CheckContentType(w, r, "application/json") {
				return
			}
			fs, raw, ok := decodeBatch(w, r, svc.NumVars())
			if !ok {
				return
			}
			results := svc.Insert(fs)
			if refused := CountRefusedInserts(results); refused > 0 {
				WriteError(w, http.StatusInternalServerError,
					"%d of %d inserts refused: journal failure, classes not durable", refused, len(results))
				return
			}
			writeJSON(w, http.StatusOK, EncodeInsertResults(raw, results))
		})
	rt.HandleDeprecated("GET", "/v1/stats", "counters (use /v2/stats)",
		func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusOK, svc.Stats())
		})

	rt.Handle("POST", "/v2/classify", "batch lookup with per-item errors", api.HandleClassify(b, jsonBody))
	rt.Handle("POST", "/v2/insert", "batch insert with per-item errors", api.HandleInsert(b, jsonBody))
	rt.Handle("POST", "/v2/classify/stream", "NDJSON streaming lookup", api.HandleClassifyStream(b, maxBody))
	rt.Handle("POST", "/v2/insert/stream", "NDJSON streaming insert", api.HandleInsertStream(b, maxBody))
	rt.Handle("POST", "/v2/map", "map an ASCII-AIGER circuit to k-LUTs",
		api.HandleMap(api.MapConfig{MaxBody: maxBody, Insert: b.insertMapped}))
	rt.Handle("GET", "/v2/stats", "counters + store shape",
		func(w http.ResponseWriter, r *http.Request) {
			api.WriteJSON(w, http.StatusOK, svc.Stats())
		})
	rt.Handle("GET", "/healthz", "liveness",
		func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusOK, map[string]any{
				"status": "ok",
				"arity":  svc.NumVars(),
			})
		})
	rt.MountSpec()
	return rt
}

// backend adapts a single-arity Service to the shared /v2 handlers.
type backend struct{ svc *Service }

// Resolve parses one hex function at the service's fixed arity.
func (b backend) Resolve(s string) (*tt.TT, *api.Error) {
	n := b.svc.NumVars()
	if len(s) != HexDigits(n) {
		return nil, api.Errf(api.CodeArityOutOfRange,
			"hex truth table of %d digits; this server serves arity %d", len(s), n).
			WithDetail("want %d hex digits", HexDigits(n))
	}
	f, err := tt.FromHex(n, s)
	if err != nil {
		return nil, api.Errf(api.CodeBadHex, "%v", err)
	}
	return f, nil
}

// CheckArity implements api.ArityBackend for the binary transport: this
// stack serves exactly one arity.
func (b backend) CheckArity(n int) *api.Error {
	if n != b.svc.NumVars() {
		return api.Errf(api.CodeArityOutOfRange,
			"function of arity %d; this server serves arity %d", n, b.svc.NumVars())
	}
	return nil
}

func (b backend) Classify(_ context.Context, fs []*tt.TT) ([]api.Result, *api.Error) {
	return ToAPIResults(b.svc.Classify(fs)), nil
}

func (b backend) Insert(_ context.Context, fs []*tt.TT) ([]api.InsertOutcome, *api.Error) {
	return ToAPIOutcomes(b.svc.Insert(fs)), nil
}

// insertMapped stores a mapping's K-ary LUT functions, provided the
// mapping width matches the arity this service stores.
func (b backend) insertMapped(_ context.Context, fs []*tt.TT) ([]api.InsertOutcome, *api.Error) {
	if len(fs) > 0 && fs[0].NumVars() != b.svc.NumVars() {
		return nil, api.Errf(api.CodeArityOutOfRange,
			"mapped LUTs have arity %d; this server stores arity %d (retry with k=%d or without insert=true)",
			fs[0].NumVars(), b.svc.NumVars(), b.svc.NumVars())
	}
	return ToAPIOutcomes(b.svc.Insert(fs)), nil
}

// ToAPIResults converts pipeline results to their wire-contract form —
// the one conversion every serving stack (single, federated, follower)
// routes through, so /v2 results cannot diverge between them.
func ToAPIResults(rs []Result) []api.Result {
	out := make([]api.Result, len(rs))
	for i, r := range rs {
		out[i] = api.Result{Key: r.Key, Index: r.Index, Hit: r.Hit, Witness: r.Witness}
		if r.Hit {
			out[i].RepHex = r.Rep.Hex()
			out[i].Rep = r.Rep
		}
	}
	return out
}

// ToAPIOutcomes converts pipeline insert results to their wire form.
func ToAPIOutcomes(rs []InsertResult) []api.InsertOutcome {
	out := make([]api.InsertOutcome, len(rs))
	for i, r := range rs {
		out[i] = api.InsertOutcome{Key: r.Key, Index: r.Index, New: r.New}
	}
	return out
}

// HexDigits returns the wire length of an n-variable hex truth table:
// 2^n/4 digits, floored at one. This is the rule the federated handler
// inverts to infer a function's arity from its length; the definition
// lives in the wire contract (api.HexDigits).
func HexDigits(n int) int { return api.HexDigits(n) }

// MaxBodyBytes bounds the request body for a handler whose largest
// accepted arity is n: a full MaxBatch of that arity's tables with JSON
// quoting and separators, plus envelope slack. Anything larger cannot be
// a valid request.
func MaxBodyBytes(n int) int64 {
	return int64(MaxBatch)*int64(HexDigits(n)+20) + (1 << 16)
}

// decodeBatch parses and validates a single-arity ClassifyRequest body.
// On failure it writes the error response and returns ok=false.
func decodeBatch(w http.ResponseWriter, r *http.Request, n int) (fs []*tt.TT, raw []string, ok bool) {
	return DecodeBatchWith(w, r, MaxBodyBytes(n), func(_ int, s string) (*tt.TT, error) {
		return tt.FromHex(n, s)
	})
}

// DecodeBatchWith parses a ClassifyRequest body, enforcing the shared
// envelope rules — body byte bound, unknown-field rejection, non-empty
// batch, MaxBatch limit — and resolves each hex function through resolve
// (which owns arity selection, so the single-arity and federated handlers
// validate identically). On failure it writes the standard JSON error
// with the appropriate status and returns ok=false.
func DecodeBatchWith(w http.ResponseWriter, r *http.Request, maxBody int64, resolve func(i int, hex string) (*tt.TT, error)) (fs []*tt.TT, raw []string, ok bool) {
	var req ClassifyRequest
	body := http.MaxBytesReader(w, r.Body, maxBody)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			WriteError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooLarge.Limit)
			return nil, nil, false
		}
		WriteError(w, http.StatusBadRequest, "bad request body: %v", err)
		return nil, nil, false
	}
	if len(req.Functions) == 0 {
		WriteError(w, http.StatusBadRequest, "functions must be a non-empty array of hex truth tables")
		return nil, nil, false
	}
	if len(req.Functions) > MaxBatch {
		WriteError(w, http.StatusBadRequest, "batch of %d exceeds limit %d", len(req.Functions), MaxBatch)
		return nil, nil, false
	}
	fs = make([]*tt.TT, len(req.Functions))
	for i, s := range req.Functions {
		f, err := resolve(i, s)
		if err != nil {
			WriteError(w, http.StatusBadRequest, "functions[%d]: %v", i, err)
			return nil, nil, false
		}
		fs[i] = f
	}
	return fs, req.Functions, true
}

// writeJSON emits a JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are sent; nothing recoverable remains.
		return
	}
}
