package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/npn"
	"repro/internal/tt"
)

// MaxBatch bounds the number of functions accepted in one request.
const MaxBatch = 1 << 16

// ClassifyRequest is the body of POST /v1/classify and POST /v1/insert:
// a batch of hexadecimal truth tables of the server's arity.
type ClassifyRequest struct {
	Functions []string `json:"functions"`
}

// WitnessJSON is the wire form of an npn.Transform witness.
type WitnessJSON struct {
	// Perm maps result input i to representative input Perm[i].
	Perm []int `json:"perm"`
	// NegMask bit i complements input i.
	NegMask uint32 `json:"neg_mask"`
	// OutNeg complements the output.
	OutNeg bool `json:"out_neg"`
}

// NewWitnessJSON encodes a witness transform into its wire form.
func NewWitnessJSON(w npn.Transform) *WitnessJSON {
	perm := make([]int, w.N)
	for i := range perm {
		perm[i] = int(w.Perm[i])
	}
	return &WitnessJSON{Perm: perm, NegMask: w.NegMask, OutNeg: w.OutNeg}
}

// Transform decodes the wire witness back into an npn.Transform, so a
// client can replay τ(rep) = f locally.
func (w *WitnessJSON) Transform() (npn.Transform, error) {
	n := len(w.Perm)
	if n > tt.MaxVars {
		return npn.Transform{}, fmt.Errorf("witness arity %d out of range", n)
	}
	tr := npn.Identity(n)
	for i, p := range w.Perm {
		if p < 0 || p >= n {
			return npn.Transform{}, fmt.Errorf("witness perm[%d] = %d out of range", i, p)
		}
		tr.Perm[i] = uint8(p)
	}
	tr.NegMask = w.NegMask
	tr.OutNeg = w.OutNeg
	if err := tr.Validate(); err != nil {
		return npn.Transform{}, err
	}
	return tr, nil
}

// ClassifyResultJSON is one function's classification outcome. Class is
// the 16-hex-digit MSV key, valid even on a miss; Index, Rep and Witness
// are present only on a hit. Witness satisfies witness(rep) = function.
type ClassifyResultJSON struct {
	Function string       `json:"function"`
	Hit      bool         `json:"hit"`
	Class    string       `json:"class"`
	Index    *int         `json:"index,omitempty"`
	Rep      string       `json:"rep,omitempty"`
	Witness  *WitnessJSON `json:"witness,omitempty"`
}

// ClassifyResponse is the body returned by POST /v1/classify.
type ClassifyResponse struct {
	Results []ClassifyResultJSON `json:"results"`
}

// InsertResultJSON is one function's insertion outcome.
type InsertResultJSON struct {
	Function string `json:"function"`
	Class    string `json:"class"`
	Index    int    `json:"index"`
	New      bool   `json:"new"`
}

// InsertResponse is the body returned by POST /v1/insert.
type InsertResponse struct {
	Results []InsertResultJSON `json:"results"`
}

// ErrorJSON is the body of every non-2xx response, shared by the
// single-arity handler here and the federated handler.
type ErrorJSON struct {
	Error string `json:"error"`
}

// WriteError emits the standard JSON error body with the given status.
func WriteError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorJSON{Error: fmt.Sprintf(format, args...)})
}

// WriteJSON emits a JSON response with the given status.
func WriteJSON(w http.ResponseWriter, status int, v any) { writeJSON(w, status, v) }

// EncodeClassifyResults builds the wire response for a classify batch:
// raw[i] is the request's hex form of the function results[i] answers.
// Both the single-arity handler here and the federated handler encode
// through this, so the wire format cannot diverge between them.
func EncodeClassifyResults(raw []string, results []Result) ClassifyResponse {
	resp := ClassifyResponse{Results: make([]ClassifyResultJSON, len(results))}
	for i, res := range results {
		out := ClassifyResultJSON{
			Function: raw[i],
			Hit:      res.Hit,
			Class:    fmt.Sprintf("%016x", res.Key),
		}
		if res.Hit {
			idx := res.Index
			out.Index = &idx
			out.Rep = res.Rep.Hex()
			out.Witness = NewWitnessJSON(res.Witness)
		}
		resp.Results[i] = out
	}
	return resp
}

// CountRefusedInserts returns how many results in an insert batch the
// store refused (journal failure: Index < 0, not stored durably). Both
// insert handlers fail the request when any insert was refused, so a
// client never reads a 200 for a class that will not survive a restart.
func CountRefusedInserts(results []InsertResult) int {
	refused := 0
	for _, r := range results {
		if r.Index < 0 {
			refused++
		}
	}
	return refused
}

// EncodeInsertResults builds the wire response for an insert batch.
func EncodeInsertResults(raw []string, results []InsertResult) InsertResponse {
	resp := InsertResponse{Results: make([]InsertResultJSON, len(results))}
	for i, res := range results {
		resp.Results[i] = InsertResultJSON{
			Function: raw[i],
			Class:    fmt.Sprintf("%016x", res.Key),
			Index:    res.Index,
			New:      res.New,
		}
	}
	return resp
}

// NewHandler returns the HTTP/JSON API over a single-arity svc:
//
//	POST /v1/classify  batch lookup (read-only)
//	POST /v1/insert    batch insert
//	GET  /v1/stats     counters + store shape
//	GET  /healthz      liveness
//
// cmd/npnserve serves the federated handler (internal/federation), which
// speaks the same wire format over many arities; this one remains the
// transport for embedding a single service in-process.
func NewHandler(svc *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/classify", func(w http.ResponseWriter, r *http.Request) {
		fs, raw, ok := decodeBatch(w, r, svc.NumVars())
		if !ok {
			return
		}
		writeJSON(w, http.StatusOK, EncodeClassifyResults(raw, svc.Classify(fs)))
	})
	mux.HandleFunc("POST /v1/insert", func(w http.ResponseWriter, r *http.Request) {
		fs, raw, ok := decodeBatch(w, r, svc.NumVars())
		if !ok {
			return
		}
		results := svc.Insert(fs)
		if refused := CountRefusedInserts(results); refused > 0 {
			WriteError(w, http.StatusInternalServerError,
				"%d of %d inserts refused: journal failure, classes not durable", refused, len(results))
			return
		}
		writeJSON(w, http.StatusOK, EncodeInsertResults(raw, results))
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.Stats())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"status": "ok",
			"arity":  svc.NumVars(),
		})
	})
	return mux
}

// HexDigits returns the wire length of an n-variable hex truth table:
// 2^n/4 digits, floored at one. This is the rule the federated handler
// inverts to infer a function's arity from its length.
func HexDigits(n int) int {
	d := (1 << n) / 4
	if d == 0 {
		d = 1
	}
	return d
}

// MaxBodyBytes bounds the request body for a handler whose largest
// accepted arity is n: a full MaxBatch of that arity's tables with JSON
// quoting and separators, plus envelope slack. Anything larger cannot be
// a valid request.
func MaxBodyBytes(n int) int64 {
	return int64(MaxBatch)*int64(HexDigits(n)+20) + (1 << 16)
}

// decodeBatch parses and validates a single-arity ClassifyRequest body.
// On failure it writes the error response and returns ok=false.
func decodeBatch(w http.ResponseWriter, r *http.Request, n int) (fs []*tt.TT, raw []string, ok bool) {
	return DecodeBatchWith(w, r, MaxBodyBytes(n), func(_ int, s string) (*tt.TT, error) {
		return tt.FromHex(n, s)
	})
}

// DecodeBatchWith parses a ClassifyRequest body, enforcing the shared
// envelope rules — body byte bound, unknown-field rejection, non-empty
// batch, MaxBatch limit — and resolves each hex function through resolve
// (which owns arity selection, so the single-arity and federated handlers
// validate identically). On failure it writes the standard JSON error
// with the appropriate status and returns ok=false.
func DecodeBatchWith(w http.ResponseWriter, r *http.Request, maxBody int64, resolve func(i int, hex string) (*tt.TT, error)) (fs []*tt.TT, raw []string, ok bool) {
	var req ClassifyRequest
	body := http.MaxBytesReader(w, r.Body, maxBody)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			WriteError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooLarge.Limit)
			return nil, nil, false
		}
		WriteError(w, http.StatusBadRequest, "bad request body: %v", err)
		return nil, nil, false
	}
	if len(req.Functions) == 0 {
		WriteError(w, http.StatusBadRequest, "functions must be a non-empty array of hex truth tables")
		return nil, nil, false
	}
	if len(req.Functions) > MaxBatch {
		WriteError(w, http.StatusBadRequest, "batch of %d exceeds limit %d", len(req.Functions), MaxBatch)
		return nil, nil, false
	}
	fs = make([]*tt.TT, len(req.Functions))
	for i, s := range req.Functions {
		f, err := resolve(i, s)
		if err != nil {
			WriteError(w, http.StatusBadRequest, "functions[%d]: %v", i, err)
			return nil, nil, false
		}
		fs[i] = f
	}
	return fs, req.Functions, true
}

// writeJSON emits a JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are sent; nothing recoverable remains.
		return
	}
}
