package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/npn"
	"repro/internal/tt"
)

// MaxBatch bounds the number of functions accepted in one request.
const MaxBatch = 1 << 16

// ClassifyRequest is the body of POST /v1/classify and POST /v1/insert:
// a batch of hexadecimal truth tables of the server's arity.
type ClassifyRequest struct {
	Functions []string `json:"functions"`
}

// WitnessJSON is the wire form of an npn.Transform witness.
type WitnessJSON struct {
	// Perm maps result input i to representative input Perm[i].
	Perm []int `json:"perm"`
	// NegMask bit i complements input i.
	NegMask uint32 `json:"neg_mask"`
	// OutNeg complements the output.
	OutNeg bool `json:"out_neg"`
}

func witnessJSON(w npn.Transform) *WitnessJSON {
	perm := make([]int, w.N)
	for i := range perm {
		perm[i] = int(w.Perm[i])
	}
	return &WitnessJSON{Perm: perm, NegMask: w.NegMask, OutNeg: w.OutNeg}
}

// Transform decodes the wire witness back into an npn.Transform, so a
// client can replay τ(rep) = f locally.
func (w *WitnessJSON) Transform() (npn.Transform, error) {
	n := len(w.Perm)
	if n > tt.MaxVars {
		return npn.Transform{}, fmt.Errorf("witness arity %d out of range", n)
	}
	tr := npn.Identity(n)
	for i, p := range w.Perm {
		if p < 0 || p >= n {
			return npn.Transform{}, fmt.Errorf("witness perm[%d] = %d out of range", i, p)
		}
		tr.Perm[i] = uint8(p)
	}
	tr.NegMask = w.NegMask
	tr.OutNeg = w.OutNeg
	if err := tr.Validate(); err != nil {
		return npn.Transform{}, err
	}
	return tr, nil
}

// ClassifyResultJSON is one function's classification outcome. Class is
// the 16-hex-digit MSV key, valid even on a miss; Index, Rep and Witness
// are present only on a hit. Witness satisfies witness(rep) = function.
type ClassifyResultJSON struct {
	Function string       `json:"function"`
	Hit      bool         `json:"hit"`
	Class    string       `json:"class"`
	Index    *int         `json:"index,omitempty"`
	Rep      string       `json:"rep,omitempty"`
	Witness  *WitnessJSON `json:"witness,omitempty"`
}

// ClassifyResponse is the body returned by POST /v1/classify.
type ClassifyResponse struct {
	Results []ClassifyResultJSON `json:"results"`
}

// InsertResultJSON is one function's insertion outcome.
type InsertResultJSON struct {
	Function string `json:"function"`
	Class    string `json:"class"`
	Index    int    `json:"index"`
	New      bool   `json:"new"`
}

// InsertResponse is the body returned by POST /v1/insert.
type InsertResponse struct {
	Results []InsertResultJSON `json:"results"`
}

// errorJSON is the body of every non-2xx response.
type errorJSON struct {
	Error string `json:"error"`
}

// NewHandler returns the HTTP/JSON API over svc:
//
//	POST /v1/classify  batch lookup (read-only)
//	POST /v1/insert    batch insert
//	GET  /v1/stats     counters + store shape
//	GET  /healthz      liveness
func NewHandler(svc *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/classify", func(w http.ResponseWriter, r *http.Request) {
		fs, raw, ok := decodeBatch(w, r, svc.NumVars())
		if !ok {
			return
		}
		results := svc.Classify(fs)
		resp := ClassifyResponse{Results: make([]ClassifyResultJSON, len(results))}
		for i, res := range results {
			out := ClassifyResultJSON{
				Function: raw[i],
				Hit:      res.Hit,
				Class:    fmt.Sprintf("%016x", res.Key),
			}
			if res.Hit {
				idx := res.Index
				out.Index = &idx
				out.Rep = res.Rep.Hex()
				out.Witness = witnessJSON(res.Witness)
			}
			resp.Results[i] = out
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /v1/insert", func(w http.ResponseWriter, r *http.Request) {
		fs, raw, ok := decodeBatch(w, r, svc.NumVars())
		if !ok {
			return
		}
		results := svc.Insert(fs)
		resp := InsertResponse{Results: make([]InsertResultJSON, len(results))}
		for i, res := range results {
			resp.Results[i] = InsertResultJSON{
				Function: raw[i],
				Class:    fmt.Sprintf("%016x", res.Key),
				Index:    res.Index,
				New:      res.New,
			}
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.Stats())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"status": "ok",
			"arity":  svc.NumVars(),
		})
	})
	return mux
}

// maxBodyBytes bounds the request body for arity n: a full MaxBatch of
// tables with hex digits, JSON quoting and separators, plus envelope
// slack. Anything larger cannot be a valid request.
func maxBodyBytes(n int) int64 {
	hexDigits := (1 << n) / 4
	if hexDigits == 0 {
		hexDigits = 1
	}
	return int64(MaxBatch)*int64(hexDigits+20) + (1 << 16)
}

// decodeBatch parses and validates a ClassifyRequest body. On failure it
// writes the error response and returns ok=false.
func decodeBatch(w http.ResponseWriter, r *http.Request, n int) (fs []*tt.TT, raw []string, ok bool) {
	var req ClassifyRequest
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes(n))
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorJSON{Error: fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit)})
			return nil, nil, false
		}
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: fmt.Sprintf("bad request body: %v", err)})
		return nil, nil, false
	}
	if len(req.Functions) == 0 {
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: "functions must be a non-empty array of hex truth tables"})
		return nil, nil, false
	}
	if len(req.Functions) > MaxBatch {
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: fmt.Sprintf("batch of %d exceeds limit %d", len(req.Functions), MaxBatch)})
		return nil, nil, false
	}
	fs = make([]*tt.TT, len(req.Functions))
	for i, s := range req.Functions {
		f, err := tt.FromHex(n, s)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorJSON{Error: fmt.Sprintf("functions[%d]: %v", i, err)})
			return nil, nil, false
		}
		fs[i] = f
	}
	return fs, req.Functions, true
}

// writeJSON emits a JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are sent; nothing recoverable remains.
		return
	}
}
