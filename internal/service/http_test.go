package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/store"
	"repro/internal/tt"
)

func newTestHandler(n int) (*Service, http.Handler) {
	svc := New(store.New(n, store.Options{Shards: 4}), Options{Workers: 2})
	return svc, NewHandler(svc)
}

func postJSON(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(b))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestHandlerInsertThenClassify(t *testing.T) {
	n := 4
	_, h := newTestHandler(n)

	ins := postJSON(t, h, "/v1/insert", ClassifyRequest{Functions: []string{"e8e8", "0110"}})
	if ins.Code != http.StatusOK {
		t.Fatalf("insert status %d: %s", ins.Code, ins.Body)
	}
	var insResp InsertResponse
	if err := json.Unmarshal(ins.Body.Bytes(), &insResp); err != nil {
		t.Fatal(err)
	}
	if len(insResp.Results) != 2 || !insResp.Results[0].New || !insResp.Results[1].New {
		t.Fatalf("insert response %+v", insResp)
	}

	// Classify an NPN variant of the first insert: swap of inputs 0,1 of
	// e8e8 is itself (symmetric), so use an output-negated variant instead.
	variant := tt.MustFromHex(n, "e8e8").Not()
	cls := postJSON(t, h, "/v1/classify", ClassifyRequest{Functions: []string{variant.Hex()}})
	if cls.Code != http.StatusOK {
		t.Fatalf("classify status %d: %s", cls.Code, cls.Body)
	}
	var clsResp ClassifyResponse
	if err := json.Unmarshal(cls.Body.Bytes(), &clsResp); err != nil {
		t.Fatal(err)
	}
	r := clsResp.Results[0]
	if !r.Hit || r.Class != insResp.Results[0].Class {
		t.Fatalf("classify response %+v, want hit on class %s", r, insResp.Results[0].Class)
	}
	if r.Witness == nil || len(r.Witness.Perm) != n {
		t.Fatalf("witness missing or malformed: %+v", r.Witness)
	}
	// Replay the wire witness locally: witness(rep) must equal the query.
	rep := tt.MustFromHex(n, r.Rep)
	tr, err := r.Witness.Transform()
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Apply(rep).Equal(variant) {
		t.Fatal("wire witness does not verify")
	}
}

func TestHandlerClassifyMiss(t *testing.T) {
	_, h := newTestHandler(3)
	rec := postJSON(t, h, "/v1/classify", ClassifyRequest{Functions: []string{"96"}})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var resp ClassifyResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	r := resp.Results[0]
	if r.Hit || r.Index != nil || r.Rep != "" || r.Witness != nil {
		t.Fatalf("miss response carries hit fields: %+v", r)
	}
	if len(r.Class) != 16 {
		t.Fatalf("miss must still carry the 16-hex class key, got %q", r.Class)
	}
}

func TestHandlerRejectsBadInput(t *testing.T) {
	_, h := newTestHandler(4)
	cases := []struct {
		name string
		body string
	}{
		{"empty batch", `{"functions":[]}`},
		{"bad hex", `{"functions":["zz"]}`},
		{"table too long", `{"functions":["e8e8e8"]}`},
		{"not json", `not json`},
		{"unknown field", `{"funcs":["e8e8"]}`},
	}
	for _, tc := range cases {
		req := httptest.NewRequest(http.MethodPost, "/v1/classify", strings.NewReader(tc.body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, rec.Code)
		}
		var e ErrorJSON
		if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body %q", tc.name, rec.Body)
		}
	}
}

// TestHandlerRejectsOversizedBody asserts the body cap kicks in before
// the decoder buffers an arbitrarily large request.
func TestHandlerRejectsOversizedBody(t *testing.T) {
	_, h := newTestHandler(4)
	body := `{"functions":["` + strings.Repeat("0", int(MaxBodyBytes(4))) + `"]}`
	req := httptest.NewRequest(http.MethodPost, "/v1/classify", strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", rec.Code)
	}
}

func TestHandlerMethods(t *testing.T) {
	_, h := newTestHandler(3)
	req := httptest.NewRequest(http.MethodGet, "/v1/classify", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/classify status %d, want 405", rec.Code)
	}
}

func TestHandlerStatsAndHealth(t *testing.T) {
	svc, h := newTestHandler(3)
	svc.Insert([]*tt.TT{tt.MustFromHex(3, "e8")})

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("stats status %d", rec.Code)
	}
	var st Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Arity != 3 || st.Classes != 1 || st.Inserts != 1 {
		t.Fatalf("stats %+v", st)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"ok"`) {
		t.Fatalf("healthz %d %s", rec.Code, rec.Body)
	}
}

// brokenJournal refuses every log append, simulating a full disk.
type brokenJournal struct{}

func (brokenJournal) LogInsert(uint64, *tt.TT) error { return errInsertRefused }
func (brokenJournal) Commit() error                  { return nil }

var errInsertRefused = errors.New("disk full")

// TestInsertRefusedReturns500: a journal failure must never be
// acknowledged as a 200 — the client is told its classes are not durable.
func TestInsertRefusedReturns500(t *testing.T) {
	st := store.New(4, store.Options{Shards: 2})
	st.SetJournal(brokenJournal{})
	svc := New(st, Options{Workers: 1, CacheSize: -1})
	h := NewHandler(svc)

	rec := postJSON(t, h, "/v1/insert", ClassifyRequest{Functions: []string{"1ee1", "8bb8"}})
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("refused insert returned %d, want 500 (body %s)", rec.Code, rec.Body)
	}
	var e ErrorJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || !strings.Contains(e.Error, "refused") {
		t.Fatalf("error body %s", rec.Body)
	}
	if svc.Stats().JournalErrors != 2 {
		t.Fatalf("journal_errors %d, want 2", svc.Stats().JournalErrors)
	}
}
