package service

import (
	"container/list"
	"sync"
)

// lruCache is a bounded, mutex-guarded LRU map from packed truth-table
// bits to classification results. The store's representatives are never
// removed, so cached hits can live until evicted by capacity. A
// non-positive capacity means the cache is disabled: get always misses
// and put stores nothing — never the insert-then-immediately-evict churn
// a literal bound of zero would produce.
type lruCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recent
	m   map[string]*list.Element
}

type lruEntry struct {
	key string
	val Result
}

func newLRUCache(capacity int) *lruCache {
	if capacity < 0 {
		capacity = 0
	}
	return &lruCache{
		cap: capacity,
		ll:  list.New(),
		m:   make(map[string]*list.Element, capacity),
	}
}

// get returns the cached result and bumps the entry to most recent.
func (c *lruCache) get(key string) (Result, bool) {
	if c.cap <= 0 {
		return Result{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return Result{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// getBytes is get keyed by the raw packed bytes. The m[string(key)] lookup
// compiles to a no-copy map probe, so a hit (or miss) allocates nothing.
//
//npn:noalloc
func (c *lruCache) getBytes(key []byte) (Result, bool) {
	if c.cap <= 0 {
		return Result{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[string(key)]
	if !ok {
		return Result{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// put inserts or refreshes an entry, evicting the least recent past cap.
func (c *lruCache) put(key string, val Result) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		el.Value.(*lruEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.m[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*lruEntry).key)
	}
}

// len returns the current entry count.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
