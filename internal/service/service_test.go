package service

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/npn"
	"repro/internal/store"
	"repro/internal/tt"
)

func newTestService(n int, o Options) *Service {
	return New(store.New(n, store.Options{Shards: 4}), o)
}

// TestInsertMatchesClassifyParallel builds the class store from a
// 6-variable circuit workload through the batch pipeline and asserts the
// induced partition is identical to core.ClassifyParallel's.
func TestInsertMatchesClassifyParallel(t *testing.T) {
	n := 6
	fs := gen.CircuitWorkload(n, 8, 1)
	if len(fs) > 2000 {
		fs = fs[:2000]
	}
	cfg := core.ConfigAll()
	cfg.FastOSDV = true

	want := core.ClassifyParallel(n, cfg, fs, 0)

	svc := newTestService(n, Options{})
	results := svc.Insert(fs)
	if len(results) != len(fs) {
		t.Fatalf("got %d results for %d functions", len(results), len(fs))
	}

	// The pipeline's class identity is (key, chain index); the partition it
	// induces must equal ClassifyParallel's (bijective label mapping).
	toPipeline := make(map[int]string)
	toParallel := make(map[string]int)
	for i := range fs {
		pl := fmt.Sprintf("%016x:%d", results[i].Key, results[i].Index)
		id := want.ClassOf[i]
		if prev, ok := toPipeline[id]; ok && prev != pl {
			t.Fatalf("function %d: ClassifyParallel class %d maps to pipeline classes %s and %s", i, id, prev, pl)
		}
		if prev, ok := toParallel[pl]; ok && prev != id {
			t.Fatalf("function %d: pipeline class %s maps to ClassifyParallel classes %d and %d", i, pl, prev, id)
		}
		toPipeline[id] = pl
		toParallel[pl] = id
	}
	if svc.Store().Size() != want.NumClasses {
		t.Fatalf("store holds %d classes, ClassifyParallel found %d", svc.Store().Size(), want.NumClasses)
	}
}

// TestClassifyHitsWithWitness preloads a store and classifies NPN
// variants through the batch path: every result must be a certified hit.
func TestClassifyHitsWithWitness(t *testing.T) {
	rng := rand.New(rand.NewSource(500))
	n := 5
	svc := newTestService(n, Options{})
	base := make([]*tt.TT, 16)
	for i := range base {
		base[i] = tt.Random(n, rng)
	}
	svc.Insert(base)

	variants := make([]*tt.TT, 64)
	for i := range variants {
		variants[i] = npn.RandomTransform(n, rng).Apply(base[i%len(base)])
	}
	results := svc.Classify(variants)
	for i, r := range results {
		if !r.Hit {
			t.Fatalf("variant %d missed its stored class", i)
		}
		if !r.Witness.Apply(r.Rep).Equal(variants[i]) {
			t.Fatalf("variant %d: witness does not verify", i)
		}
	}
	st := svc.Stats()
	if st.Hits != int64(len(variants)) || st.Misses != 0 {
		t.Fatalf("stats hits=%d misses=%d, want %d and 0", st.Hits, st.Misses, len(variants))
	}
}

// TestClassifyMissDoesNotInsert asserts the read path never grows the
// store and reports the would-be class key.
func TestClassifyMissDoesNotInsert(t *testing.T) {
	svc := newTestService(3, Options{})
	f := tt.MustFromHex(3, "96")
	r := svc.Classify([]*tt.TT{f})[0]
	if r.Hit || r.Index != -1 || r.Rep != nil {
		t.Fatal("miss must report Hit=false with no representative")
	}
	if r.Key == 0 {
		t.Fatal("miss must still report the class key")
	}
	if svc.Store().Size() != 0 {
		t.Fatal("Classify grew the store")
	}
	if st := svc.Stats(); st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("stats hits=%d misses=%d, want 0 and 1", st.Hits, st.Misses)
	}
}

// TestCache asserts repeated classifications are served from the LRU and
// stay identical to the uncached result.
func TestCache(t *testing.T) {
	rng := rand.New(rand.NewSource(501))
	n := 4
	svc := newTestService(n, Options{Workers: 1, CacheSize: 8})
	base := tt.Random(n, rng)
	svc.Insert([]*tt.TT{base})

	first := svc.Classify([]*tt.TT{base})[0]
	second := svc.Classify([]*tt.TT{base})[0]
	if !second.Hit || second.Key != first.Key || second.Index != first.Index {
		t.Fatal("cached result differs from uncached")
	}
	if !second.Witness.Apply(second.Rep).Equal(base) {
		t.Fatal("cached witness does not verify")
	}
	st := svc.Stats()
	if st.CacheHits != 1 {
		t.Fatalf("cache hits %d, want 1", st.CacheHits)
	}
	if st.CacheEntries != 1 || st.CacheCapacity != 8 {
		t.Fatalf("cache entries=%d cap=%d, want 1 and 8", st.CacheEntries, st.CacheCapacity)
	}
}

// TestCacheBounded floods the cache past capacity and asserts eviction.
func TestCacheBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(502))
	n := 6
	svc := newTestService(n, Options{CacheSize: 4})
	fs := gen.UniformRandom(n, 64, 503)
	svc.Insert(fs)
	for _, f := range fs {
		svc.Classify([]*tt.TT{f})
	}
	if got := svc.Stats().CacheEntries; got > 4 {
		t.Fatalf("cache grew to %d entries past capacity 4", got)
	}
	_ = rng
}

// TestCacheDisabled asserts CacheSize < 0 turns the cache off.
func TestCacheDisabled(t *testing.T) {
	svc := newTestService(3, Options{CacheSize: -1})
	f := tt.MustFromHex(3, "e8")
	svc.Insert([]*tt.TT{f})
	svc.Classify([]*tt.TT{f})
	svc.Classify([]*tt.TT{f})
	if st := svc.Stats(); st.CacheHits != 0 || st.CacheEntries != 0 || st.CacheCapacity != 0 {
		t.Fatalf("disabled cache recorded activity: %+v", st)
	}
}

// TestConcurrentBatches hammers the pipeline from several goroutines (run
// under -race): mixed inserts and classifications of NPN variants.
func TestConcurrentBatches(t *testing.T) {
	n := 5
	seedRng := rand.New(rand.NewSource(504))
	base := make([]*tt.TT, 20)
	for i := range base {
		base[i] = tt.Random(n, seedRng)
	}
	svc := newTestService(n, Options{Workers: 4, CacheSize: 32})
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(600 + g)))
			for round := 0; round < 8; round++ {
				batch := make([]*tt.TT, 16)
				for i := range batch {
					batch[i] = npn.RandomTransform(n, rng).Apply(base[rng.Intn(len(base))])
				}
				if g%2 == 0 {
					svc.Insert(batch)
				} else {
					for i, r := range svc.Classify(batch) {
						if r.Hit && !r.Witness.Apply(r.Rep).Equal(batch[i]) {
							t.Error("concurrent witness does not verify")
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if svc.Store().Size() > len(base) {
		t.Fatalf("store holds %d classes for %d base functions", svc.Store().Size(), len(base))
	}
}

// TestStatsCounters checks the insert-side counters, including chained
// collisions under a weak signature config.
func TestStatsCounters(t *testing.T) {
	n := 4
	cfg := core.Config{OCV1: true, OIV: true}
	svc := New(store.New(n, store.Options{Shards: 2, Config: cfg}), Options{Workers: 1})
	a := tt.MustFromHex(n, "0118")
	b := tt.MustFromHex(n, "0182") // MSV collision with a, inequivalent
	results := svc.Insert([]*tt.TT{a, b, a})
	if !results[0].New || !results[1].New || results[2].New {
		t.Fatalf("insert outcomes %+v", results)
	}
	st := svc.Stats()
	if st.Inserts != 3 || st.Created != 2 || st.Collisions != 1 {
		t.Fatalf("inserts=%d created=%d collisions=%d, want 3, 2, 1", st.Inserts, st.Created, st.Collisions)
	}
	if st.StoreCollisions != 1 || st.Classes != 2 {
		t.Fatalf("store collisions=%d classes=%d, want 1 and 2", st.StoreCollisions, st.Classes)
	}
	if st.Batches != 1 {
		t.Fatalf("batches=%d, want 1", st.Batches)
	}
}

// TestBatchDedup: duplicate keys within one batch must cost one store
// operation each, answer every copy identically, and be counted.
func TestBatchDedup(t *testing.T) {
	n := 5
	svc := newTestService(n, Options{Workers: 3, CacheSize: -1})
	rng := rand.New(rand.NewSource(900))
	a, b := tt.Random(n, rng), tt.Random(n, rng)

	// Insert a batch with heavy duplication: a ×4, b ×2.
	batch := []*tt.TT{a, b, a, a, b, a}
	ins := svc.Insert(batch)
	if !ins[0].New || !ins[1].New {
		t.Fatal("first copies did not found their classes")
	}
	for i := 2; i < len(batch); i++ {
		want := ins[0]
		if batch[i] == b {
			want = ins[1]
		}
		if ins[i].Key != want.Key || ins[i].Index != want.Index {
			t.Fatalf("insert %d diverged from its first copy", i)
		}
		if ins[i].New {
			t.Fatalf("duplicate copy %d reported New", i)
		}
	}
	if created := svc.Stats().Created; created != 2 {
		t.Fatalf("created %d classes from a 2-distinct batch", created)
	}
	if st := svc.Stats(); st.Deduped != 4 {
		t.Fatalf("insert deduped %d, want 4", st.Deduped)
	}

	// Classify the same shape: 4 duplicates saved, hits still count per copy.
	res := svc.Classify(batch)
	for i := range batch {
		if !res[i].Hit {
			t.Fatalf("classify %d missed", i)
		}
	}
	st := svc.Stats()
	if st.Deduped != 8 {
		t.Fatalf("total deduped %d, want 8", st.Deduped)
	}
	if st.Hits != int64(len(batch)) || st.Lookups != int64(len(batch)) {
		t.Fatalf("hits %d lookups %d, want %d each (dedup must not skew per-copy counters)",
			st.Hits, st.Lookups, len(batch))
	}

	// A dedup hit must carry the same certified result as a store hit.
	if res[2].Key != res[0].Key || res[2].Index != res[0].Index || !res[2].Rep.Equal(res[0].Rep) {
		t.Fatal("scattered duplicate result diverged")
	}
}

// TestInflightBatches: the live-depth gauge is 1 while a batch executes
// (observed via the ObserveBatch hook, which runs before the decrement)
// and 0 once the call returns — the signal edge load shedding keys off.
func TestInflightBatches(t *testing.T) {
	n := 3
	var svc *Service
	var during int64
	svc = newTestService(n, Options{
		Workers: 1,
		ObserveBatch: func(op string, size int, d time.Duration) {
			during = svc.InflightBatches()
		},
	})
	svc.Classify([]*tt.TT{tt.MustFromHex(n, "e8")})
	if during != 1 {
		t.Fatalf("InflightBatches during batch = %d, want 1", during)
	}
	if got := svc.InflightBatches(); got != 0 {
		t.Fatalf("InflightBatches after batch = %d, want 0", got)
	}
	if svc.Workers() != 1 {
		t.Fatalf("Workers = %d, want 1", svc.Workers())
	}
}
