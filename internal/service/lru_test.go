package service

import "testing"

// TestLRUNonPositiveCapacity pins the cache-disabled contract: a cache
// built with capacity <= 0 stores nothing and always misses, instead of
// the insert-then-immediately-evict churn a literal bound of zero would
// produce (every put allocating an entry just to free it).
func TestLRUNonPositiveCapacity(t *testing.T) {
	for _, capacity := range []int{0, -1, -100} {
		c := newLRUCache(capacity)
		for i := 0; i < 10; i++ {
			c.put("k", Result{Index: i})
		}
		if got := c.len(); got != 0 {
			t.Fatalf("cap %d: len = %d after puts, want 0", capacity, got)
		}
		if _, ok := c.get("k"); ok {
			t.Fatalf("cap %d: get hit on a disabled cache", capacity)
		}
	}
}

// TestLRUUpdateInPlace: refreshing an existing key must not evict.
func TestLRUUpdateInPlace(t *testing.T) {
	c := newLRUCache(2)
	c.put("a", Result{Index: 1})
	c.put("b", Result{Index: 2})
	c.put("a", Result{Index: 3}) // refresh, not insert
	if got := c.len(); got != 2 {
		t.Fatalf("len = %d, want 2", got)
	}
	if r, ok := c.get("a"); !ok || r.Index != 3 {
		t.Fatalf("get(a) = %+v, %v; want refreshed value", r, ok)
	}
	if _, ok := c.get("b"); !ok {
		t.Fatal("refresh evicted b")
	}
}
