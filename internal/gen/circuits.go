// Package gen generates classification workloads. The paper evaluates on
// truth tables extracted from the EPFL combinational benchmarks by cut
// enumeration; those benchmark files are external data, so this package
// synthesizes circuits of the same two families the suite is built from —
// arithmetic (adders, multipliers, shifters, comparators) and random/control
// logic (mux trees, majority/parity trees, random AIGs) — and harvests cut
// functions from them with the same pipeline (internal/cut). It also
// generates the random truth-table streams of Fig. 5 (uniform and
// consecutive binary encoding).
package gen

import (
	"math/rand"

	"repro/internal/aig"
)

// RippleCarryAdder returns an AIG adding two w-bit numbers: PIs are
// a0..a_{w-1}, b0..b_{w-1}; POs are the w sum bits and the carry out.
func RippleCarryAdder(w int) *aig.AIG {
	g := aig.New(2 * w)
	carry := aig.ConstFalse
	for i := 0; i < w; i++ {
		a, b := g.PI(i), g.PI(w+i)
		axb := g.Xor(a, b)
		sum := g.Xor(axb, carry)
		carry = g.Or(g.And(a, b), g.And(axb, carry))
		g.AddPO(sum)
	}
	g.AddPO(carry)
	return g
}

// ArrayMultiplier returns an AIG multiplying two w-bit numbers with a simple
// carry-save array; POs are the 2w product bits.
func ArrayMultiplier(w int) *aig.AIG {
	g := aig.New(2 * w)
	// partial[c] collects the literals to be summed in column c.
	partial := make([][]aig.Lit, 2*w)
	for i := 0; i < w; i++ {
		for j := 0; j < w; j++ {
			partial[i+j] = append(partial[i+j], g.And(g.PI(i), g.PI(w+j)))
		}
	}
	for c := 0; c < 2*w; c++ {
		for len(partial[c]) > 1 {
			if len(partial[c]) >= 3 {
				a, b, ci := partial[c][0], partial[c][1], partial[c][2]
				partial[c] = partial[c][3:]
				axb := g.Xor(a, b)
				sum := g.Xor(axb, ci)
				carry := g.Or(g.And(a, b), g.And(axb, ci))
				partial[c] = append(partial[c], sum)
				partial[c+1] = append(partial[c+1], carry)
			} else {
				a, b := partial[c][0], partial[c][1]
				partial[c] = partial[c][2:]
				sum := g.Xor(a, b)
				carry := g.And(a, b)
				partial[c] = append(partial[c], sum)
				partial[c+1] = append(partial[c+1], carry)
			}
		}
		if len(partial[c]) == 1 {
			g.AddPO(partial[c][0])
		} else {
			g.AddPO(aig.ConstFalse)
		}
	}
	return g
}

// BarrelShifter returns an AIG rotating w data bits (w a power of two) left
// by a log2(w)-bit amount: PIs are d0..d_{w-1} then s0..s_{log2(w)-1}.
func BarrelShifter(w int) *aig.AIG {
	logw := 0
	for 1<<logw < w {
		logw++
	}
	if 1<<logw != w {
		panic("gen: BarrelShifter width must be a power of two")
	}
	g := aig.New(w + logw)
	cur := make([]aig.Lit, w)
	for i := 0; i < w; i++ {
		cur[i] = g.PI(i)
	}
	for s := 0; s < logw; s++ {
		sel := g.PI(w + s)
		shift := 1 << s
		next := make([]aig.Lit, w)
		for i := 0; i < w; i++ {
			next[i] = g.Mux(sel, cur[(i+w-shift)%w], cur[i])
		}
		cur = next
	}
	for _, l := range cur {
		g.AddPO(l)
	}
	return g
}

// Comparator returns an AIG computing a > b, a = b for two w-bit inputs.
func Comparator(w int) *aig.AIG {
	g := aig.New(2 * w)
	gt := aig.ConstFalse
	eq := aig.ConstTrue
	// Scan from the most significant bit down.
	for i := w - 1; i >= 0; i-- {
		a, b := g.PI(i), g.PI(w+i)
		bitGt := g.And(a, b.Not())
		bitEq := g.Xnor(a, b)
		gt = g.Or(gt, g.And(eq, bitGt))
		eq = g.And(eq, bitEq)
	}
	g.AddPO(gt)
	g.AddPO(eq)
	return g
}

// MajorityTree returns an AIG of a balanced tree of 3-majority gates over
// 3^depth primary inputs.
func MajorityTree(depth int) *aig.AIG {
	n := 1
	for d := 0; d < depth; d++ {
		n *= 3
	}
	g := aig.New(n)
	layer := make([]aig.Lit, n)
	for i := range layer {
		layer[i] = g.PI(i)
	}
	for len(layer) > 1 {
		next := make([]aig.Lit, 0, len(layer)/3)
		for i := 0; i+2 < len(layer); i += 3 {
			next = append(next, g.Maj(layer[i], layer[i+1], layer[i+2]))
		}
		layer = next
	}
	g.AddPO(layer[0])
	return g
}

// ParityTree returns an AIG computing the parity of n inputs as a balanced
// XOR tree.
func ParityTree(n int) *aig.AIG {
	g := aig.New(n)
	layer := make([]aig.Lit, n)
	for i := range layer {
		layer[i] = g.PI(i)
	}
	for len(layer) > 1 {
		var next []aig.Lit
		for i := 0; i+1 < len(layer); i += 2 {
			next = append(next, g.Xor(layer[i], layer[i+1]))
		}
		if len(layer)%2 == 1 {
			next = append(next, layer[len(layer)-1])
		}
		layer = next
	}
	g.AddPO(layer[0])
	return g
}

// MuxTree returns an AIG selecting one of 2^sel data inputs: PIs are the
// 2^sel data bits followed by the sel select bits.
func MuxTree(sel int) *aig.AIG {
	w := 1 << sel
	g := aig.New(w + sel)
	layer := make([]aig.Lit, w)
	for i := range layer {
		layer[i] = g.PI(i)
	}
	for s := 0; s < sel; s++ {
		sb := g.PI(w + s)
		next := make([]aig.Lit, len(layer)/2)
		for i := range next {
			next[i] = g.Mux(sb, layer[2*i+1], layer[2*i])
		}
		layer = next
	}
	g.AddPO(layer[0])
	return g
}

// RandomLogic returns a random AIG with nPI inputs and about nAnds AND
// nodes, built by combining random existing literals; it models the
// "random/control" half of the EPFL suite.
func RandomLogic(nPI, nAnds int, seed int64) *aig.AIG {
	rng := rand.New(rand.NewSource(seed))
	g := aig.New(nPI)
	lits := make([]aig.Lit, 0, nPI+nAnds)
	for i := 0; i < nPI; i++ {
		lits = append(lits, g.PI(i))
	}
	for attempts := 0; g.NumAnds() < nAnds && attempts < 20*nAnds; attempts++ {
		a := lits[rng.Intn(len(lits))]
		b := lits[rng.Intn(len(lits))]
		if rng.Intn(2) == 0 {
			a = a.Not()
		}
		if rng.Intn(2) == 0 {
			b = b.Not()
		}
		l := g.And(a, b)
		if g.IsAnd(l.Node()) {
			lits = append(lits, l)
		}
	}
	// Expose the deepest nodes as outputs.
	for i := 0; i < 4 && i < len(lits); i++ {
		g.AddPO(lits[len(lits)-1-i])
	}
	return g
}
