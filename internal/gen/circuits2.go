package gen

import "repro/internal/aig"

// CarryLookaheadAdder returns a w-bit adder built from generate/propagate
// prefix logic — functionally identical to RippleCarryAdder but with a very
// different structure, so its cut functions populate different NPN classes
// of the workload (and the pair doubles as an equivalence-checking fixture).
func CarryLookaheadAdder(w int) *aig.AIG {
	g := aig.New(2 * w)
	gen := make([]aig.Lit, w) // generate: a_i ∧ b_i
	pro := make([]aig.Lit, w) // propagate: a_i ⊕ b_i
	for i := 0; i < w; i++ {
		a, b := g.PI(i), g.PI(w+i)
		gen[i] = g.And(a, b)
		pro[i] = g.Xor(a, b)
	}
	// Serial prefix: c_{i+1} = g_i ∨ (p_i ∧ c_i), expanded lookahead-style.
	carry := make([]aig.Lit, w+1)
	carry[0] = aig.ConstFalse
	for i := 0; i < w; i++ {
		carry[i+1] = g.Or(gen[i], g.And(pro[i], carry[i]))
	}
	for i := 0; i < w; i++ {
		g.AddPO(g.Xor(pro[i], carry[i]))
	}
	g.AddPO(carry[w])
	return g
}

// Decoder returns an n-to-2^n one-hot decoder.
func Decoder(n int) *aig.AIG {
	g := aig.New(n)
	out := make([]aig.Lit, 1)
	out[0] = aig.ConstTrue
	for i := 0; i < n; i++ {
		sel := g.PI(i)
		next := make([]aig.Lit, len(out)*2)
		for k, o := range out {
			next[k] = g.And(o, sel.Not())
			next[k+len(out)] = g.And(o, sel)
		}
		out = next
	}
	for _, o := range out {
		g.AddPO(o)
	}
	return g
}

// PriorityEncoder returns a w-input priority encoder: outputs are the
// ceil(log2(w)) index bits of the highest set input plus a valid flag.
func PriorityEncoder(w int) *aig.AIG {
	g := aig.New(w)
	logw := 0
	for 1<<logw < w {
		logw++
	}
	idx := make([]aig.Lit, logw)
	for k := range idx {
		idx[k] = aig.ConstFalse
	}
	valid := aig.ConstFalse
	// Scan inputs from lowest to highest priority; higher index wins.
	for i := 0; i < w; i++ {
		in := g.PI(i)
		for k := 0; k < logw; k++ {
			bit := aig.ConstFalse
			if i>>k&1 == 1 {
				bit = aig.ConstTrue
			}
			idx[k] = g.Mux(in, bit, idx[k])
		}
		valid = g.Or(valid, in)
	}
	for _, l := range idx {
		g.AddPO(l)
	}
	g.AddPO(valid)
	return g
}

// ALUSlice returns a w-bit ALU with a 2-bit opcode: 00 = AND, 01 = OR,
// 10 = XOR, 11 = ADD. PIs: a (w), b (w), op (2).
func ALUSlice(w int) *aig.AIG {
	g := aig.New(2*w + 2)
	op0, op1 := g.PI(2*w), g.PI(2*w+1)
	carry := aig.ConstFalse
	for i := 0; i < w; i++ {
		a, b := g.PI(i), g.PI(w+i)
		andO := g.And(a, b)
		orO := g.Or(a, b)
		xorO := g.Xor(a, b)
		sum := g.Xor(xorO, carry)
		carry = g.Or(andO, g.And(xorO, carry))
		// op1 selects between {AND,OR} and {XOR,ADD}; op0 picks within.
		lo := g.Mux(op0, orO, andO)
		hi := g.Mux(op0, sum, xorO)
		g.AddPO(g.Mux(op1, hi, lo))
	}
	return g
}

// Voter returns the EPFL-style "voter": a deep tree of 3-majority gates over
// 3^depth inputs with inverted stages, producing irregular cut functions.
func Voter(depth int) *aig.AIG {
	n := 1
	for d := 0; d < depth; d++ {
		n *= 3
	}
	g := aig.New(n)
	layer := make([]aig.Lit, n)
	for i := range layer {
		layer[i] = g.PI(i)
	}
	stage := 0
	for len(layer) > 1 {
		next := make([]aig.Lit, 0, len(layer)/3)
		for i := 0; i+2 < len(layer); i += 3 {
			m := g.Maj(layer[i], layer[i+1], layer[i+2])
			if stage%2 == 1 {
				m = m.Not()
			}
			next = append(next, m)
		}
		layer = next
		stage++
	}
	g.AddPO(layer[0])
	return g
}
