package gen

import (
	"testing"

	"repro/internal/tt"
)

func TestRippleCarryAdder(t *testing.T) {
	w := 3
	g := RippleCarryAdder(w)
	if len(g.POs()) != w+1 {
		t.Fatalf("adder POs = %d, want %d", len(g.POs()), w+1)
	}
	// Verify arithmetic through global simulation.
	outs := make([]*tt.TT, w+1)
	for i, po := range g.POs() {
		outs[i] = g.GlobalFunc(po)
	}
	for x := 0; x < 1<<(2*w); x++ {
		a := x & (1<<w - 1)
		b := x >> w
		sum := a + b
		for bit := 0; bit <= w; bit++ {
			if outs[bit].Get(x) != (sum>>bit&1 == 1) {
				t.Fatalf("adder bit %d wrong at a=%d b=%d", bit, a, b)
			}
		}
	}
}

func TestArrayMultiplier(t *testing.T) {
	w := 3
	g := ArrayMultiplier(w)
	if len(g.POs()) != 2*w {
		t.Fatalf("multiplier POs = %d, want %d", len(g.POs()), 2*w)
	}
	outs := make([]*tt.TT, 2*w)
	for i, po := range g.POs() {
		outs[i] = g.GlobalFunc(po)
	}
	for x := 0; x < 1<<(2*w); x++ {
		a := x & (1<<w - 1)
		b := x >> w
		prod := a * b
		for bit := 0; bit < 2*w; bit++ {
			if outs[bit].Get(x) != (prod>>bit&1 == 1) {
				t.Fatalf("multiplier bit %d wrong at a=%d b=%d", bit, a, b)
			}
		}
	}
}

func TestBarrelShifter(t *testing.T) {
	w := 4
	g := BarrelShifter(w)
	if len(g.POs()) != w {
		t.Fatalf("shifter POs = %d", len(g.POs()))
	}
	outs := make([]*tt.TT, w)
	for i, po := range g.POs() {
		outs[i] = g.GlobalFunc(po)
	}
	for x := 0; x < 1<<(w+2); x++ {
		data := x & (1<<w - 1)
		sh := x >> w // 2 select bits
		rotated := (data<<sh | data>>(w-sh)) & (1<<w - 1)
		for bit := 0; bit < w; bit++ {
			if outs[bit].Get(x) != (rotated>>bit&1 == 1) {
				t.Fatalf("shifter bit %d wrong at data=%04b sh=%d", bit, data, sh)
			}
		}
	}
}

func TestBarrelShifterRejectsNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("width 3 accepted")
		}
	}()
	BarrelShifter(3)
}

func TestComparator(t *testing.T) {
	w := 3
	g := Comparator(w)
	gt := g.GlobalFunc(g.POs()[0])
	eq := g.GlobalFunc(g.POs()[1])
	for x := 0; x < 1<<(2*w); x++ {
		a := x & (1<<w - 1)
		b := x >> w
		if gt.Get(x) != (a > b) {
			t.Fatalf("gt wrong at a=%d b=%d", a, b)
		}
		if eq.Get(x) != (a == b) {
			t.Fatalf("eq wrong at a=%d b=%d", a, b)
		}
	}
}

func TestMajorityAndParityTrees(t *testing.T) {
	g := MajorityTree(1)
	if got := g.GlobalFunc(g.POs()[0]).Hex(); got != "e8" {
		t.Errorf("1-level majority tree = %s, want e8", got)
	}
	p := ParityTree(5)
	f := p.GlobalFunc(p.POs()[0])
	for x := 0; x < 32; x++ {
		v := 0
		for b := 0; b < 5; b++ {
			v ^= x >> b & 1
		}
		if f.Get(x) != (v == 1) {
			t.Fatalf("parity tree wrong at %d", x)
		}
	}
}

func TestMuxTree(t *testing.T) {
	g := MuxTree(2) // 4 data + 2 select
	f := g.GlobalFunc(g.POs()[0])
	for x := 0; x < 64; x++ {
		data := x & 15
		sel := x >> 4 & 3
		if f.Get(x) != (data>>sel&1 == 1) {
			t.Fatalf("mux tree wrong at data=%04b sel=%d", data, sel)
		}
	}
}

func TestRandomLogicDeterministicBySeed(t *testing.T) {
	a := RandomLogic(8, 100, 7)
	b := RandomLogic(8, 100, 7)
	if a.NumNodes() != b.NumNodes() {
		t.Error("RandomLogic not deterministic for equal seeds")
	}
	if a.NumAnds() < 100 {
		t.Errorf("RandomLogic produced %d ANDs, want ≥ 100", a.NumAnds())
	}
}

func TestUniformRandomAndConsecutive(t *testing.T) {
	u := UniformRandom(6, 100, 1)
	if len(u) != 100 {
		t.Fatal("wrong count")
	}
	for _, f := range u {
		if f.NumVars() != 6 {
			t.Fatal("wrong arity")
		}
	}
	c := Consecutive(5, 50, 1)
	// Consecutive encodings differ by 1 in their integer value.
	for i := 1; i < len(c); i++ {
		prev := c[i-1].Words()[0]
		cur := c[i].Words()[0]
		if cur != (prev+1)&tt.WordMask(5) {
			t.Fatalf("consecutive encoding broken at %d: %x -> %x", i, prev, cur)
		}
	}
	// Multi-word carry: force a boundary crossing at n=7.
	c7 := Consecutive(7, 10, 3)
	if len(c7) != 10 {
		t.Fatal("consecutive n=7 count wrong")
	}
}

func TestDedup(t *testing.T) {
	a := tt.MustFromHex(3, "e8")
	fs := []*tt.TT{a, a.Clone(), tt.MustFromHex(3, "f0"), a.Clone()}
	d := Dedup(fs)
	if len(d) != 2 {
		t.Fatalf("dedup kept %d, want 2", len(d))
	}
	if !d[0].Equal(a) {
		t.Error("dedup reordered inputs")
	}
}

func TestCircuitWorkload(t *testing.T) {
	for _, n := range []int{4, 5} {
		fs := CircuitWorkload(n, 8, 42)
		if len(fs) < 50 {
			t.Errorf("workload at n=%d too small: %d", n, len(fs))
		}
		seen := map[string]bool{}
		for _, f := range fs {
			if f.NumVars() != n || f.SupportSize() != n {
				t.Fatalf("workload function wrong shape at n=%d", n)
			}
			if seen[f.Hex()] {
				t.Fatalf("duplicate in workload at n=%d", n)
			}
			seen[f.Hex()] = true
		}
	}
}
