package gen

import (
	"testing"

	"repro/internal/tt"
)

func TestCarryLookaheadAdderMatchesRipple(t *testing.T) {
	w := 4
	cla := CarryLookaheadAdder(w)
	rca := RippleCarryAdder(w)
	if len(cla.POs()) != len(rca.POs()) {
		t.Fatal("PO count differs")
	}
	for i := range cla.POs() {
		a := cla.GlobalFunc(cla.POs()[i])
		b := rca.GlobalFunc(rca.POs()[i])
		if !a.Equal(b) {
			t.Fatalf("CLA and RCA differ at output %d", i)
		}
	}
	// Structures must actually differ for the workload to gain anything.
	if cla.NumAnds() == rca.NumAnds() {
		t.Log("note: CLA and RCA have identical AND counts (allowed, but unexpected)")
	}
}

func TestDecoder(t *testing.T) {
	n := 3
	g := Decoder(n)
	if len(g.POs()) != 1<<n {
		t.Fatalf("decoder POs = %d", len(g.POs()))
	}
	for line, po := range g.POs() {
		f := g.GlobalFunc(po)
		want := tt.FromFunc(n, func(x int) bool { return x == line })
		if !f.Equal(want) {
			t.Fatalf("decoder line %d wrong", line)
		}
	}
}

func TestPriorityEncoder(t *testing.T) {
	w := 6
	g := PriorityEncoder(w)
	logw := 3
	if len(g.POs()) != logw+1 {
		t.Fatalf("encoder POs = %d, want %d", len(g.POs()), logw+1)
	}
	outs := make([]*tt.TT, logw+1)
	for i, po := range g.POs() {
		outs[i] = g.GlobalFunc(po)
	}
	for x := 0; x < 1<<w; x++ {
		// Highest set input index, or invalid.
		top, valid := 0, false
		for i := 0; i < w; i++ {
			if x>>i&1 == 1 {
				top, valid = i, true
			}
		}
		if outs[logw].Get(x) != valid {
			t.Fatalf("valid flag wrong at %06b", x)
		}
		if !valid {
			continue
		}
		for k := 0; k < logw; k++ {
			if outs[k].Get(x) != (top>>k&1 == 1) {
				t.Fatalf("index bit %d wrong at %06b (top=%d)", k, x, top)
			}
		}
	}
}

func TestALUSlice(t *testing.T) {
	w := 3
	g := ALUSlice(w)
	outs := make([]*tt.TT, w)
	for i, po := range g.POs() {
		outs[i] = g.GlobalFunc(po)
	}
	for x := 0; x < 1<<(2*w+2); x++ {
		a := x & (1<<w - 1)
		b := x >> w & (1<<w - 1)
		op := x >> (2 * w) & 3
		var want int
		switch op {
		case 0:
			want = a & b
		case 1:
			want = a | b
		case 2:
			want = a ^ b
		case 3:
			want = (a + b) & (1<<w - 1)
		}
		for bit := 0; bit < w; bit++ {
			if outs[bit].Get(x) != (want>>bit&1 == 1) {
				t.Fatalf("ALU op=%d bit %d wrong at a=%d b=%d", op, bit, a, b)
			}
		}
	}
}

func TestVoter(t *testing.T) {
	// Depth-1 voter is plain majority; depth-2 has one inverted stage.
	v1 := Voter(1)
	if got := v1.GlobalFunc(v1.POs()[0]).Hex(); got != "e8" {
		t.Errorf("voter depth 1 = %s, want e8", got)
	}
	v2 := Voter(2)
	f := v2.GlobalFunc(v2.POs()[0])
	// Verify against direct evaluation: maj of three inverted majorities.
	want := tt.FromFunc(9, func(x int) bool {
		maj := func(a, b, c int) int {
			if a+b+c >= 2 {
				return 1
			}
			return 0
		}
		m0 := 1 - maj(x&1, x>>1&1, x>>2&1)
		m1 := 1 - maj(x>>3&1, x>>4&1, x>>5&1)
		m2 := 1 - maj(x>>6&1, x>>7&1, x>>8&1)
		return maj(m0, m1, m2) == 1
	})
	if !f.Equal(want) {
		t.Error("voter depth 2 wrong")
	}
}

func TestSuiteShapes(t *testing.T) {
	suite := Suite(1)
	if len(suite) < 12 {
		t.Fatalf("suite has %d circuits", len(suite))
	}
	for i, g := range suite {
		if g.NumAnds() == 0 {
			t.Errorf("suite circuit %d has no logic", i)
		}
		if len(g.POs()) == 0 {
			t.Errorf("suite circuit %d has no outputs", i)
		}
	}
}
