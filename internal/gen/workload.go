package gen

import (
	"math/rand"

	"repro/internal/aig"
	"repro/internal/cut"
	"repro/internal/tt"
)

// UniformRandom returns count truth tables of n variables drawn uniformly.
func UniformRandom(n, count int, seed int64) []*tt.TT {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*tt.TT, count)
	for i := range out {
		out[i] = tt.Random(n, rng)
	}
	return out
}

// Consecutive returns count truth tables of n variables whose table values
// are consecutive binary encodings starting from a random base — the Fig. 5
// workload ("truth tables in consecutive binary encoding").
func Consecutive(n, count int, seed int64) []*tt.TT {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*tt.TT, count)
	nw := 1
	if n > 6 {
		nw = 1 << (n - 6)
	}
	seq := make([]uint64, nw)
	for i := range seq {
		seq[i] = rng.Uint64()
	}
	for i := range out {
		f := tt.New(n)
		f.SetSeqValue(seq)
		out[i] = f
		// Increment the multi-word little-endian counter.
		for w := 0; w < nw; w++ {
			seq[w]++
			if seq[w] != 0 {
				break
			}
		}
	}
	return out
}

// Dedup removes duplicate truth tables, preserving first-seen order — the
// paper's "we deleted the Boolean functions of the same truth table".
func Dedup(fs []*tt.TT) []*tt.TT {
	seen := make(map[string]bool, len(fs))
	out := fs[:0:0]
	for _, f := range fs {
		k := f.Hex()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, f)
	}
	return out
}

// Suite returns the synthetic EPFL-like circuit suite used by the
// experiments: arithmetic circuits plus random/control logic. seed varies
// the random members.
func Suite(seed int64) []*aig.AIG {
	return []*aig.AIG{
		RippleCarryAdder(8),
		RippleCarryAdder(16),
		CarryLookaheadAdder(12),
		ArrayMultiplier(5),
		ArrayMultiplier(6),
		ArrayMultiplier(8),
		BarrelShifter(16),
		BarrelShifter(32),
		Comparator(10),
		MajorityTree(2),
		Voter(3),
		Voter(4),
		ParityTree(12),
		MuxTree(4),
		Decoder(5),
		PriorityEncoder(12),
		ALUSlice(6),
		ALUSlice(8),
		RandomLogic(12, 400, seed),
		RandomLogic(16, 900, seed+1),
		RandomLogic(10, 250, seed+2),
		RandomLogic(20, 2500, seed+3),
		RandomLogic(14, 1200, seed+4),
	}
}

// CircuitWorkload harvests deduplicated n-variable cut functions from the
// synthetic suite. maxPerNode bounds the priority cuts kept per node
// (0 = default). Cuts up to one leaf larger than n are enumerated so that
// functions whose support collapses to n are captured too.
func CircuitWorkload(n int, maxPerNode int, seed int64) []*tt.TT {
	k := n + 1
	if k > tt.MaxVars {
		k = n
	}
	var all []*tt.TT
	for _, g := range Suite(seed) {
		all = append(all, cut.Harvest(g, n, cut.Options{K: k, MaxPerNode: maxPerNode, PreferLarge: true})...)
	}
	return Dedup(all)
}
