package auth

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

// xffCall issues a request from remoteAddr carrying an X-Forwarded-For
// chain, returning the recorder.
func xffCall(h http.HandlerFunc, remoteAddr, xff string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v2/classify", nil)
	req.RemoteAddr = remoteAddr
	if xff != "" {
		req.Header.Set("X-Forwarded-For", xff)
	}
	h(rec, req)
	return rec
}

func TestParseProxyList(t *testing.T) {
	ps, err := ParseProxyList(" 10.0.0.0/8 , 192.168.1.7, 2001:db8::/32 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 3 {
		t.Fatalf("got %d prefixes, want 3", len(ps))
	}
	if got := ps[1].Bits(); got != 32 {
		t.Fatalf("bare IPv4 parsed as /%d, want single-host /32", got)
	}
	if ps, err := ParseProxyList(""); err != nil || ps != nil {
		t.Fatalf("empty list: %v, %v — want nil, nil", ps, err)
	}
	if _, err := ParseProxyList("not-an-ip"); err == nil {
		t.Fatal("garbage address accepted")
	}
	if _, err := ParseProxyList("10.0.0.0/33"); err == nil {
		t.Fatal("garbage CIDR accepted")
	}
}

func TestGuardTrustedProxyForwardedFor(t *testing.T) {
	trusted, err := ParseProxyList("10.0.0.0/8")
	if err != nil {
		t.Fatal(err)
	}
	g := NewGuard(Options{AnonRPS: 1, AnonBurst: 1, TrustedProxies: trusted})
	h := g.Wrap("/v2/classify", okHandler)

	// Through a trusted proxy the forwarded client is the bucket: the
	// same forwarded address throttles even when the proxy's ephemeral
	// port differs, and a different forwarded client gets its own bucket.
	if rec := xffCall(h, "10.0.0.1:1111", "1.2.3.4"); rec.Code != http.StatusOK {
		t.Fatalf("first via proxy: status %d", rec.Code)
	}
	if rec := xffCall(h, "10.0.0.1:2222", "1.2.3.4"); rec.Code != http.StatusTooManyRequests {
		t.Fatal("same forwarded client not throttled across proxy connections")
	}
	if rec := xffCall(h, "10.0.0.1:3333", "5.6.7.8"); rec.Code != http.StatusOK {
		t.Fatalf("different forwarded client shares a bucket: status %d", rec.Code)
	}
}

func TestGuardUntrustedPeerIgnoresForwardedFor(t *testing.T) {
	trusted, _ := ParseProxyList("10.0.0.0/8")
	g := NewGuard(Options{AnonRPS: 1, AnonBurst: 1, TrustedProxies: trusted})
	h := g.Wrap("/v2/classify", okHandler)

	// A peer outside the trusted list cannot mint fresh buckets by
	// rotating X-Forwarded-For: both requests bucket as the peer itself.
	if rec := xffCall(h, "203.0.113.9:1111", "1.1.1.1"); rec.Code != http.StatusOK {
		t.Fatalf("first from untrusted peer: status %d", rec.Code)
	}
	if rec := xffCall(h, "203.0.113.9:2222", "2.2.2.2"); rec.Code != http.StatusTooManyRequests {
		t.Fatal("untrusted peer escaped its bucket by spoofing X-Forwarded-For")
	}
}

func TestGuardTrustedProxyRightmostNonTrustedHop(t *testing.T) {
	trusted, _ := ParseProxyList("10.0.0.0/8")
	g := NewGuard(Options{AnonRPS: 1, AnonBurst: 1, TrustedProxies: trusted})
	h := g.Wrap("/v2/classify", okHandler)

	// Two proxy tiers: the rightmost hop is the inner (trusted) proxy, so
	// the hop left of it is the client — hops further left are noise the
	// client controls.
	if rec := xffCall(h, "10.0.0.1:1111", "9.9.9.9, 1.2.3.4, 10.0.0.2"); rec.Code != http.StatusOK {
		t.Fatalf("chained proxies: status %d", rec.Code)
	}
	if rec := xffCall(h, "10.0.0.1:2222", "8.8.8.8, 1.2.3.4, 10.0.0.2"); rec.Code != http.StatusTooManyRequests {
		t.Fatal("rightmost non-trusted hop not the bucket: leftmost noise minted a fresh bucket")
	}

	// A garbage hop poisons the chain: fall back to the peer.
	if rec := xffCall(h, "10.0.0.3:1111", "not-an-ip"); rec.Code != http.StatusOK {
		t.Fatalf("garbage chain first: status %d", rec.Code)
	}
	if rec := xffCall(h, "10.0.0.3:2222", "also-garbage"); rec.Code != http.StatusTooManyRequests {
		t.Fatal("garbage chains did not fall back to one peer bucket")
	}

	// An all-trusted chain (the proxy talking for itself) is the peer too.
	if rec := xffCall(h, "10.0.0.4:1111", "10.0.0.9"); rec.Code != http.StatusOK {
		t.Fatalf("all-trusted chain: status %d", rec.Code)
	}
	if rec := xffCall(h, "10.0.0.4:2222", "10.0.0.8"); rec.Code != http.StatusTooManyRequests {
		t.Fatal("all-trusted chains did not fall back to one peer bucket")
	}
}

func TestGuardPeerAddressNormalized(t *testing.T) {
	g := NewGuard(Options{AnonRPS: 1, AnonBurst: 1})
	h := g.Wrap("/v2/classify", okHandler)

	// An IPv4-mapped IPv6 peer (a dual-stack listener's view of an IPv4
	// client) and the plain IPv4 form are one client: both textual
	// variants must land in the same anonymous bucket.
	if rec := xffCall(h, "[::ffff:203.0.113.9]:1111", ""); rec.Code != http.StatusOK {
		t.Fatalf("mapped-form first request: status %d", rec.Code)
	}
	if rec := xffCall(h, "203.0.113.9:2222", ""); rec.Code != http.StatusTooManyRequests {
		t.Fatal("textual variants of one peer landed in different buckets")
	}
}

func TestKeyringSwapHotReload(t *testing.T) {
	kr := mustKeyring(t, Key{Name: "old", Secret: "old-secret"})
	g := NewGuard(Options{Keys: kr})
	h := g.Wrap("/v2/classify", okHandler)

	if rec := call(h, "old-secret", ""); rec.Code != http.StatusOK {
		t.Fatalf("pre-swap old key: status %d", rec.Code)
	}

	// Swap replaces the keyring contents in place: the guard holds the
	// same *Keyring, so rotation needs no guard rebuild.
	kr.Swap(mustKeyring(t, Key{Name: "new", Secret: "new-secret"},
		Key{Name: "extra", Secret: "extra-secret"}))

	if rec := call(h, "old-secret", ""); rec.Code != http.StatusUnauthorized {
		t.Fatalf("post-swap old key: status %d, want 401", rec.Code)
	}
	if rec := call(h, "new-secret", ""); rec.Code != http.StatusOK {
		t.Fatalf("post-swap new key: status %d", rec.Code)
	}
	if got := kr.Len(); got != 2 {
		t.Fatalf("post-swap Len = %d, want 2", got)
	}
}
