package auth

import (
	"sync"
	"time"
)

// DefaultMaxClients bounds the number of live token buckets a Limiter
// tracks. Anonymous traffic keys buckets by remote IP — an
// attacker-controlled cardinality — so the table must not grow without
// bound.
const DefaultMaxClients = 1 << 16

// Limiter is a table of token buckets, one per client identity (API key
// name or remote IP). Buckets refill lazily on access: each Allow tops
// the bucket up by elapsed×rate, capped at the burst depth, then spends
// one token. Safe for concurrent use.
type Limiter struct {
	// MaxClients caps the bucket table; non-positive means
	// DefaultMaxClients. When the table is full, fully-refilled buckets
	// are swept (dropping one is indistinguishable from its client going
	// idle); if none are sweepable, arbitrary buckets are dropped — a
	// spraying attacker buys a fresh burst per identity, never unbounded
	// server memory.
	MaxClients int

	// now is the clock, a test seam; nil means time.Now.
	now func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

// bucket is one client's token bucket. rate and burst are re-stamped on
// every Allow so a key file reload (new quota, same name) takes effect on
// the next request.
type bucket struct {
	tokens float64
	last   time.Time
	rate   float64
	burst  float64
}

// Allow spends one token from id's bucket with the given quota. It
// returns whether the request is admitted and, when refused, how long
// until a token will be available.
func (l *Limiter) Allow(id string, rps float64, burst int) (ok bool, retryAfter time.Duration) {
	if rps <= 0 {
		return true, 0 // unlimited identity
	}
	if burst < 1 {
		burst = 1
	}
	now := time.Now()
	if l.now != nil {
		now = l.now()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.buckets == nil {
		l.buckets = make(map[string]*bucket)
	}
	b, exists := l.buckets[id]
	if !exists {
		l.evictLocked(now)
		b = &bucket{tokens: float64(burst), last: now}
		l.buckets[id] = b
	}
	b.rate, b.burst = rps, float64(burst)
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / b.rate
	return false, time.Duration(need * float64(time.Second))
}

// Clients returns the number of live buckets.
func (l *Limiter) Clients() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}

// evictLocked makes room for one more bucket when the table is at its
// cap: first sweep buckets that have had time to fully refill, then (only
// if the sweep freed nothing) drop arbitrary entries.
func (l *Limiter) evictLocked(now time.Time) {
	maxClients := l.MaxClients
	if maxClients <= 0 {
		maxClients = DefaultMaxClients
	}
	if len(l.buckets) < maxClients {
		return
	}
	for id, b := range l.buckets {
		if b.tokens+now.Sub(b.last).Seconds()*b.rate >= b.burst {
			delete(l.buckets, id)
		}
	}
	for id := range l.buckets {
		if len(l.buckets) < maxClients {
			break
		}
		delete(l.buckets, id)
	}
}
