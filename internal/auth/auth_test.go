package auth

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/obs"
)

// --- keyring ---

func TestParseKeySpec(t *testing.T) {
	for _, tc := range []struct {
		spec string
		want Key
	}{
		{"ci:sekrit", Key{Name: "ci", Secret: "sekrit"}},
		{"ci:sekrit:2.5", Key{Name: "ci", Secret: "sekrit", RPS: 2.5}},
		{"ci:sekrit:2:7", Key{Name: "ci", Secret: "sekrit", RPS: 2, Burst: 7}},
		{" ci :sekrit: 2 : 7 ", Key{Name: "ci", Secret: "sekrit", RPS: 2, Burst: 7}},
	} {
		got, err := ParseKeySpec(tc.spec)
		if err != nil {
			t.Fatalf("ParseKeySpec(%q): %v", tc.spec, err)
		}
		if got != tc.want {
			t.Errorf("ParseKeySpec(%q) = %+v, want %+v", tc.spec, got, tc.want)
		}
	}
	for _, bad := range []string{"", "justaname", "a:b:c:d:e", "ci:s:notanumber", "ci:s:1:nope"} {
		if _, err := ParseKeySpec(bad); err == nil {
			t.Errorf("ParseKeySpec(%q): want error", bad)
		}
	}
}

func TestParseKeySpecRedactsSecret(t *testing.T) {
	_, err := ParseKeySpec("name:topsecret:1:2:toomany")
	if err == nil {
		t.Fatal("want error")
	}
	if strings.Contains(err.Error(), "topsecret") {
		t.Fatalf("error leaks the secret: %v", err)
	}
}

func TestParseKeysFile(t *testing.T) {
	const file = `
# CI fleet
ci:sekrit:5

bench:hunter2:0.5:3
`
	keys, err := ParseKeys(strings.NewReader(file))
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0].Name != "ci" || keys[1].Burst != 3 {
		t.Fatalf("parsed %+v", keys)
	}

	_, err = ParseKeys(strings.NewReader("ok:fine\nbroken"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("want line-numbered error, got %v", err)
	}
}

func TestNewKeyringRejects(t *testing.T) {
	for name, keys := range map[string][]Key{
		"empty secret":   {{Name: "a", Secret: ""}},
		"empty name":     {{Name: "", Secret: "s"}},
		"duplicate name": {{Name: "a", Secret: "s1"}, {Name: "a", Secret: "s2"}},
		"shared secret":  {{Name: "a", Secret: "s"}, {Name: "b", Secret: "s"}},
		"negative rate":  {{Name: "a", Secret: "s", RPS: -1}},
	} {
		if _, err := NewKeyring(keys); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestKeyringLookup(t *testing.T) {
	kr, err := NewKeyring([]Key{
		{Name: "ci", Secret: "sekrit", RPS: 5},
		{Name: "bench", Secret: "hunter2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if kr.Len() != 2 {
		t.Fatalf("Len = %d", kr.Len())
	}
	k, ok := kr.Lookup("sekrit")
	if !ok || k.Name != "ci" || k.RPS != 5 {
		t.Fatalf("Lookup(sekrit) = %+v, %v", k, ok)
	}
	if _, ok := kr.Lookup("wrong"); ok {
		t.Fatal("Lookup(wrong) matched")
	}
	if _, ok := kr.Lookup(""); ok {
		t.Fatal("Lookup of empty secret matched")
	}
}

func TestKeyBurstDefault(t *testing.T) {
	for _, tc := range []struct {
		k    Key
		want int
	}{
		{Key{RPS: 2.5}, 3},         // ceil(rps)
		{Key{RPS: 0.25}, 1},        // floored at 1
		{Key{}, 1},                 // unlimited key still gets a sane depth
		{Key{RPS: 2, Burst: 9}, 9}, // explicit wins
	} {
		if got := tc.k.burst(); got != tc.want {
			t.Errorf("%+v burst() = %d, want %d", tc.k, got, tc.want)
		}
	}
}

func TestLoadKeyring(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "keys")
	if err := os.WriteFile(path, []byte("file:fs:1\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	kr, err := LoadKeyring(path, "inline:is:2,other:io")
	if err != nil {
		t.Fatal(err)
	}
	if kr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", kr.Len())
	}
	if _, ok := kr.Lookup("is"); !ok {
		t.Fatal("inline key not loaded")
	}

	// No sources at all means no keyring, not an empty one.
	kr, err = LoadKeyring("", "")
	if err != nil || kr != nil {
		t.Fatalf("empty LoadKeyring = %v, %v", kr, err)
	}

	if _, err := LoadKeyring(filepath.Join(dir, "missing"), ""); err == nil {
		t.Fatal("missing file: want error")
	}
}

// --- limiter ---

// testClock is a manual clock for the Limiter's now seam.
type testClock struct{ t time.Time }

func (c *testClock) now() time.Time          { return c.t }
func (c *testClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestLimiter(maxClients int) (*Limiter, *testClock) {
	clk := &testClock{t: time.Unix(1000, 0)}
	return &Limiter{MaxClients: maxClients, now: clk.now}, clk
}

func TestLimiterBurstThenRefill(t *testing.T) {
	l, clk := newTestLimiter(0)

	// The burst is spendable immediately.
	for i := 0; i < 3; i++ {
		if ok, _ := l.Allow("k", 1, 3); !ok {
			t.Fatalf("request %d within burst refused", i)
		}
	}
	ok, retry := l.Allow("k", 1, 3)
	if ok {
		t.Fatal("request past burst admitted")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retryAfter = %v, want (0, 1s]", retry)
	}

	// One second at 1 rps buys exactly one more token.
	clk.advance(time.Second)
	if ok, _ := l.Allow("k", 1, 3); !ok {
		t.Fatal("refilled token refused")
	}
	if ok, _ := l.Allow("k", 1, 3); ok {
		t.Fatal("second request after one refill admitted")
	}
}

func TestLimiterUnlimitedAndIsolation(t *testing.T) {
	l, _ := newTestLimiter(0)
	for i := 0; i < 100; i++ {
		if ok, _ := l.Allow("free", 0, 0); !ok {
			t.Fatal("unlimited identity throttled")
		}
	}
	if l.Clients() != 0 {
		t.Fatalf("unlimited identity allocated a bucket: %d", l.Clients())
	}

	// Distinct identities have distinct buckets.
	l.Allow("a", 1, 1)
	if ok, _ := l.Allow("b", 1, 1); !ok {
		t.Fatal("b throttled by a's bucket")
	}
	if ok, _ := l.Allow("a", 1, 1); ok {
		t.Fatal("a's second request admitted past burst 1")
	}
}

func TestLimiterQuotaRestamped(t *testing.T) {
	// A quota change (key file reload) takes effect on the live bucket.
	l, clk := newTestLimiter(0)
	l.Allow("k", 1, 1)
	if ok, _ := l.Allow("k", 1, 1); ok {
		t.Fatal("past burst 1")
	}
	clk.advance(time.Second)
	// Same identity, raised rate: one second now buys 10 tokens (cap 5).
	for i := 0; i < 5; i++ {
		if ok, _ := l.Allow("k", 10, 5); !ok {
			t.Fatalf("request %d after quota raise refused", i)
		}
	}
}

func TestLimiterEviction(t *testing.T) {
	l, clk := newTestLimiter(2)
	l.Allow("a", 1, 1)
	l.Allow("b", 1, 1)
	if n := l.Clients(); n != 2 {
		t.Fatalf("Clients = %d", n)
	}
	// Table full and nothing refilled: an arbitrary bucket is dropped.
	l.Allow("c", 1, 1)
	if n := l.Clients(); n > 2 {
		t.Fatalf("Clients = %d, want <= 2", n)
	}
	// After a long idle stretch every bucket is refilled and sweepable.
	clk.advance(time.Hour)
	l.Allow("d", 1, 1)
	if n := l.Clients(); n > 2 {
		t.Fatalf("Clients after sweep = %d, want <= 2", n)
	}
}

// --- guard ---

func okHandler(w http.ResponseWriter, r *http.Request) { w.WriteHeader(http.StatusOK) }

// call runs one request through a wrapped handler and returns the
// recorder. remoteAddr defaults to a fixed peer when empty.
func call(h http.HandlerFunc, bearer, remoteAddr string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v2/classify", nil)
	if bearer != "" {
		req.Header.Set("Authorization", "Bearer "+bearer)
	}
	if remoteAddr != "" {
		req.RemoteAddr = remoteAddr
	}
	h(rec, req)
	return rec
}

// decodeErr decodes the guard's error envelope.
func decodeErr(t *testing.T, rec *httptest.ResponseRecorder) *api.Error {
	t.Helper()
	var env api.ErrorEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil || env.Error == nil {
		t.Fatalf("undecodable error body %q: %v", rec.Body.String(), err)
	}
	return env.Error
}

func mustKeyring(t *testing.T, keys ...Key) *Keyring {
	t.Helper()
	kr, err := NewKeyring(keys)
	if err != nil {
		t.Fatal(err)
	}
	return kr
}

func TestGuardRequiresKeyWhenKeyringMounted(t *testing.T) {
	g := NewGuard(Options{Keys: mustKeyring(t, Key{Name: "ci", Secret: "sekrit"})})
	h := g.Wrap("/v2/classify", okHandler)

	rec := call(h, "", "")
	if rec.Code != http.StatusUnauthorized {
		t.Fatalf("missing key: status %d", rec.Code)
	}
	if e := decodeErr(t, rec); e.Code != api.CodeUnauthorized {
		t.Fatalf("code %q", e.Code)
	}

	if rec := call(h, "wrong", ""); rec.Code != http.StatusUnauthorized {
		t.Fatalf("unknown key: status %d", rec.Code)
	}

	if rec := call(h, "sekrit", ""); rec.Code != http.StatusOK {
		t.Fatalf("valid key: status %d", rec.Code)
	}
}

func TestGuardRejectsNonBearerAuthorization(t *testing.T) {
	g := NewGuard(Options{Keys: mustKeyring(t, Key{Name: "ci", Secret: "sekrit"})})
	h := g.Wrap("/v2/classify", okHandler)
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v2/classify", nil)
	req.Header.Set("Authorization", "Basic Y2k6c2Vrcml0")
	h(rec, req)
	if rec.Code != http.StatusUnauthorized {
		t.Fatalf("Basic auth: status %d, want 401", rec.Code)
	}
}

func TestGuardRejectsKeyWithoutKeyring(t *testing.T) {
	// A key offered to a keyless server must fail loudly, not silently
	// run in the anonymous tier.
	g := NewGuard(Options{AnonRPS: 100})
	h := g.Wrap("/v2/classify", okHandler)
	if rec := call(h, "stray", ""); rec.Code != http.StatusUnauthorized {
		t.Fatalf("stray key: status %d, want 401", rec.Code)
	}
	if rec := call(h, "", ""); rec.Code != http.StatusOK {
		t.Fatalf("anonymous: status %d, want 200", rec.Code)
	}
}

func TestGuardKeyQuota429(t *testing.T) {
	g := NewGuard(Options{Keys: mustKeyring(t, Key{Name: "ci", Secret: "sekrit", RPS: 1, Burst: 2})})
	h := g.Wrap("/v2/classify", okHandler)

	for i := 0; i < 2; i++ {
		if rec := call(h, "sekrit", ""); rec.Code != http.StatusOK {
			t.Fatalf("request %d within burst: status %d", i, rec.Code)
		}
	}
	rec := call(h, "sekrit", "")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("past burst: status %d, want 429", rec.Code)
	}
	if e := decodeErr(t, rec); e.Code != api.CodeRateLimited {
		t.Fatalf("code %q", e.Code)
	}
	secs, err := strconv.Atoi(rec.Header().Get("Retry-After"))
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After %q, want integer >= 1", rec.Header().Get("Retry-After"))
	}
}

func TestGuardAnonymousPerIP(t *testing.T) {
	g := NewGuard(Options{AnonRPS: 1, AnonBurst: 1})
	h := g.Wrap("/v2/classify", okHandler)

	if rec := call(h, "", "10.0.0.1:1111"); rec.Code != http.StatusOK {
		t.Fatalf("first from .1: status %d", rec.Code)
	}
	if rec := call(h, "", "10.0.0.1:2222"); rec.Code != http.StatusTooManyRequests {
		t.Fatal("second from .1 (different port, same IP) not throttled")
	}
	// A different peer has its own bucket.
	if rec := call(h, "", "10.0.0.2:1111"); rec.Code != http.StatusOK {
		t.Fatalf("first from .2: status %d", rec.Code)
	}
}

func TestGuardShedsOnPressure(t *testing.T) {
	depth := int64(0)
	reg := obs.NewRegistry()
	g := NewGuard(Options{
		AnonRPS:  1000,
		Pressure: func() (int64, int64) { return depth, 4 },
		Metrics:  reg,
	})
	h := g.Wrap("/v2/classify", okHandler)
	hz := g.Wrap("/healthz", okHandler)

	if rec := call(h, "", ""); rec.Code != http.StatusOK {
		t.Fatalf("under limit: status %d", rec.Code)
	}
	depth = 4
	rec := call(h, "", "")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("at limit: status %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("shed response has no Retry-After")
	}
	if e := decodeErr(t, rec); e.Code != api.CodeRateLimited {
		t.Fatalf("code %q", e.Code)
	}
	// The probe route must answer through the overload.
	if rec := call(hz, "", ""); rec.Code != http.StatusOK {
		t.Fatalf("/healthz shed: status %d", rec.Code)
	}

	var sb strings.Builder
	if err := reg.Render(&sb); err != nil {
		t.Fatal(err)
	}
	scr, err := obs.Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := scr.Value("npn_http_shed_total", "route=/v2/classify"); !ok || v != 1 {
		t.Fatalf("npn_http_shed_total = %v, %v; want 1", v, ok)
	}
}

func TestGuardMetricsCounters(t *testing.T) {
	reg := obs.NewRegistry()
	g := NewGuard(Options{
		Keys:    mustKeyring(t, Key{Name: "ci", Secret: "sekrit", RPS: 1, Burst: 1}),
		Metrics: reg,
	})
	h := g.Wrap("/v2/classify", okHandler)

	call(h, "", "")       // unauthorized
	call(h, "sekrit", "") // ok, spends the burst
	call(h, "sekrit", "") // rate limited

	var sb strings.Builder
	if err := reg.Render(&sb); err != nil {
		t.Fatal(err)
	}
	scr, err := obs.Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	for fam, want := range map[string]float64{
		"npn_http_unauthorized_total": 1,
		"npn_http_rate_limited_total": 1,
	} {
		if v, _ := scr.Value(fam, "route=/v2/classify"); v != want {
			t.Errorf("%s = %v, want %v", fam, v, want)
		}
	}
}

func TestGuardExemptRoutes(t *testing.T) {
	// Everything is locked down, yet default-exempt routes pass through —
	// Wrap returns the handler untouched.
	g := NewGuard(Options{Keys: mustKeyring(t, Key{Name: "ci", Secret: "sekrit"})})
	for _, route := range DefaultExempt {
		if rec := call(g.Wrap(route, okHandler), "", ""); rec.Code != http.StatusOK {
			t.Errorf("%s: status %d, want 200", route, rec.Code)
		}
	}
	// An explicitly empty exempt list exempts nothing.
	g = NewGuard(Options{Keys: mustKeyring(t, Key{Name: "ci", Secret: "sekrit"}), Exempt: []string{}})
	if rec := call(g.Wrap("/healthz", okHandler), "", ""); rec.Code != http.StatusUnauthorized {
		t.Errorf("empty Exempt: /healthz status %d, want 401", rec.Code)
	}
}

func TestGuardAuthOnlyRoutes(t *testing.T) {
	// The flight-recorder routes authenticate — trace details name client
	// identities, so a keyed edge must not serve them keyless — but skip
	// rate limiting and load shedding, staying readable through exactly
	// the overload under debug.
	g := NewGuard(Options{
		Keys:     mustKeyring(t, Key{Name: "ci", Secret: "sekrit", RPS: 1, Burst: 1}),
		Pressure: func() (int64, int64) { return 10, 10 }, // saturated: everything sheds
	})
	for _, route := range DefaultAuthOnly {
		h := g.Wrap(route, okHandler)
		rec := call(h, "", "")
		if rec.Code != http.StatusUnauthorized {
			t.Errorf("%s keyless: status %d, want 401", route, rec.Code)
		}
		// Repeated keyed reads pass despite the burst-1 quota and the
		// saturated pressure signal — and spend no tokens doing so.
		for i := 0; i < 3; i++ {
			if rec := call(h, "sekrit", ""); rec.Code != http.StatusOK {
				t.Errorf("%s keyed read %d: status %d, want 200", route, i, rec.Code)
			}
		}
	}
	// On an unsaturated guard the auth-only reads spend no tokens: the
	// API bucket still has its full burst, and once that is gone the
	// trace routes keep answering.
	gNoShed := NewGuard(Options{
		Keys: mustKeyring(t, Key{Name: "ci", Secret: "sekrit", RPS: 1, Burst: 1}),
	})
	api1 := gNoShed.Wrap("/v2/classify", okHandler)
	if rec := call(api1, "sekrit", ""); rec.Code != http.StatusOK {
		t.Errorf("first API call: status %d, want 200", rec.Code)
	}
	if rec := call(api1, "sekrit", ""); rec.Code != http.StatusTooManyRequests {
		t.Errorf("second API call: status %d, want 429", rec.Code)
	}
	for _, route := range DefaultAuthOnly {
		if rec := call(gNoShed.Wrap(route, okHandler), "sekrit", ""); rec.Code != http.StatusOK {
			t.Errorf("%s while API quota exhausted: status %d, want 200", route, rec.Code)
		}
	}

	// An explicitly empty AuthOnly list drops the tier: trace routes go
	// through the full check sequence like any other route.
	g = NewGuard(Options{
		Keys:     mustKeyring(t, Key{Name: "ci", Secret: "sekrit"}),
		AuthOnly: []string{},
		Pressure: func() (int64, int64) { return 10, 10 },
	})
	if rec := call(g.Wrap(DefaultAuthOnly[0], okHandler), "sekrit", ""); rec.Code != http.StatusTooManyRequests {
		t.Errorf("empty AuthOnly: trace route not shed, status %d", rec.Code)
	}
}
