// Package auth is the admission-control layer at the api.Router edge:
// API-key authentication (a keyring of named keys with per-key quotas),
// per-client token-bucket rate limiting (per key, falling back to per
// remote IP for anonymous traffic), and load shedding tied to live
// worker-pool depth — so an abusive or runaway client degrades to fast
// 401/429 responses at the edge instead of driving the worker pools into
// queueing collapse for everyone.
//
// The Guard in guard.go packages the three checks as one middleware in
// the api.Middleware shape, so every serving stack (federated primary,
// replication follower, embedded single-arity service) mounts it with a
// single rt.Use. /healthz and /metrics are exempt by default: probes and
// scrapes must survive exactly the overload the guard exists to manage.
package auth

import (
	"bufio"
	"crypto/sha256"
	"crypto/subtle"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
)

// Key is one API identity: a display name (never secret), the bearer
// secret, and the identity's token-bucket quota.
type Key struct {
	// Name labels the key in logs and metrics; it carries no secret.
	Name string
	// Secret is the bearer token presented as "Authorization: Bearer
	// <secret>".
	Secret string
	// RPS is the sustained request rate the key may hold; 0 means
	// unlimited (the key authenticates but is never throttled).
	RPS float64
	// Burst is the token-bucket depth — how far above the sustained rate
	// a short spike may go. Non-positive defaults to ceil(RPS), floored
	// at 1.
	Burst int
}

// burst returns the effective bucket depth.
func (k Key) burst() int {
	if k.Burst > 0 {
		return k.Burst
	}
	if b := int(math.Ceil(k.RPS)); b > 1 {
		return b
	}
	return 1
}

// entry is a keyring member: the key plus the SHA-256 digest of its
// secret, the only form lookups compare against.
type entry struct {
	Key
	digest [sha256.Size]byte
}

// Keyring holds the server's API keys. Lookups compare SHA-256 digests
// with crypto/subtle over every entry, so the comparison cost does not
// depend on which (or whether a) key matched. The entry set itself is
// held behind an atomic pointer: readers see a consistent immutable
// snapshot, and Swap replaces the whole set at once (the SIGHUP hot
// reload in cmd/npnserve), so a Keyring is safe for concurrent use.
type Keyring struct {
	entries atomic.Pointer[[]entry]
}

// load returns the current immutable entry snapshot.
func (kr *Keyring) load() []entry {
	if p := kr.entries.Load(); p != nil {
		return *p
	}
	return nil
}

// NewKeyring builds a keyring from parsed keys, rejecting empty secrets
// and duplicate names or secrets (one secret must map to one quota).
func NewKeyring(keys []Key) (*Keyring, error) {
	var entries []entry
	names := make(map[string]bool, len(keys))
	digests := make(map[[sha256.Size]byte]bool, len(keys))
	for _, k := range keys {
		if k.Secret == "" {
			return nil, fmt.Errorf("auth: key %q has an empty secret", k.Name)
		}
		if k.Name == "" {
			return nil, fmt.Errorf("auth: key without a name")
		}
		if names[k.Name] {
			return nil, fmt.Errorf("auth: duplicate key name %q", k.Name)
		}
		if k.RPS < 0 {
			return nil, fmt.Errorf("auth: key %q: negative rate %v", k.Name, k.RPS)
		}
		d := sha256.Sum256([]byte(k.Secret))
		if digests[d] {
			return nil, fmt.Errorf("auth: key %q duplicates another key's secret", k.Name)
		}
		names[k.Name], digests[d] = true, true
		entries = append(entries, entry{Key: k, digest: d})
	}
	kr := &Keyring{}
	kr.entries.Store(&entries)
	return kr, nil
}

// Len returns the number of keys on the ring.
func (kr *Keyring) Len() int { return len(kr.load()) }

// Swap atomically replaces this ring's key set with next's. Holders of
// the Keyring pointer (the Guard) start resolving against the new set on
// their next Lookup; in-flight Lookups finish against whichever snapshot
// they started with. The quota stamped on each identity is re-read from
// the ring per request by the limiter, so rate changes apply immediately
// too.
func (kr *Keyring) Swap(next *Keyring) {
	entries := next.load()
	kr.entries.Store(&entries)
}

// Lookup resolves a presented secret to its key. Every entry is compared
// in constant time regardless of earlier matches, so response timing
// leaks neither a match's position nor a near-miss's length.
func (kr *Keyring) Lookup(secret string) (Key, bool) {
	d := sha256.Sum256([]byte(secret))
	var found Key
	matched := 0
	for _, e := range kr.load() {
		if subtle.ConstantTimeCompare(e.digest[:], d[:]) == 1 {
			found = e.Key
			matched = 1
		}
	}
	return found, matched == 1
}

// ParseKeySpec parses one "name:secret[:rps[:burst]]" key specification —
// the format of both the -key flag and each key-file line. rps accepts
// decimals ("0.5"); burst is an integer bucket depth.
func ParseKeySpec(spec string) (Key, error) {
	parts := strings.Split(spec, ":")
	if len(parts) < 2 || len(parts) > 4 {
		return Key{}, fmt.Errorf("auth: key spec %q: want name:secret[:rps[:burst]]", redact(spec))
	}
	k := Key{Name: strings.TrimSpace(parts[0]), Secret: parts[1]}
	if len(parts) >= 3 {
		rps, err := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
		if err != nil {
			return Key{}, fmt.Errorf("auth: key %q: bad rps %q", k.Name, parts[2])
		}
		k.RPS = rps
	}
	if len(parts) == 4 {
		burst, err := strconv.Atoi(strings.TrimSpace(parts[3]))
		if err != nil {
			return Key{}, fmt.Errorf("auth: key %q: bad burst %q", k.Name, parts[3])
		}
		k.Burst = burst
	}
	return k, nil
}

// ParseKeys reads a key file: one "name:secret[:rps[:burst]]" spec per
// line, blank lines and #-comment lines ignored.
func ParseKeys(r io.Reader) ([]Key, error) {
	var keys []Key
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		k, err := ParseKeySpec(s)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		keys = append(keys, k)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return keys, nil
}

// LoadKeyring builds a keyring from a key file path and/or inline
// comma-separated key specs (either may be empty).
func LoadKeyring(path, inline string) (*Keyring, error) {
	var keys []Key
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		parsed, perr := ParseKeys(f)
		f.Close()
		if perr != nil {
			return nil, fmt.Errorf("%s: %w", path, perr)
		}
		keys = append(keys, parsed...)
	}
	if inline != "" {
		for _, spec := range strings.Split(inline, ",") {
			k, err := ParseKeySpec(spec)
			if err != nil {
				return nil, err
			}
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return nil, nil
	}
	return NewKeyring(keys)
}

// redact trims a possibly secret-bearing spec for error messages.
func redact(spec string) string {
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		return spec[:i+1] + "…"
	}
	return spec
}
