package auth

import (
	"math"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/api"
	"repro/internal/obs"
)

// Options configures a Guard.
type Options struct {
	// Keys is the server's API keyring. Nil disables authentication:
	// every request is anonymous (and per-IP limited when AnonRPS > 0).
	Keys *Keyring

	// AnonRPS is the sustained per-client rate granted to requests that
	// carry no API key, bucketed by remote IP. With a keyring mounted,
	// 0 rejects anonymous traffic outright (401 unauthorized); without
	// one, 0 leaves anonymous traffic unlimited.
	AnonRPS float64
	// AnonBurst is the anonymous bucket depth; non-positive defaults to
	// ceil(AnonRPS), floored at 1.
	AnonBurst int

	// Pressure, when set, enables load shedding: it returns the live
	// worker-pool depth (in-flight batches) and the admission limit, and
	// the guard answers 429 while depth >= limit — overload degrades to
	// fast rejections at the edge instead of queueing collapse. It runs
	// on every request and must be cheap (atomic loads).
	Pressure func() (depth, limit int64)

	// MaxClients caps the rate-limit bucket table (see Limiter); zero
	// means DefaultMaxClients.
	MaxClients int

	// Exempt lists route patterns that bypass every check. Nil means
	// DefaultExempt (/healthz and /metrics); an explicitly empty slice
	// exempts nothing.
	Exempt []string

	// Metrics, when set, registers the guard's counter families
	// (npn_http_unauthorized_total, npn_http_rate_limited_total,
	// npn_http_shed_total, by route) on the registry.
	Metrics *obs.Registry
}

// DefaultExempt are the routes a zero-valued Options.Exempt bypasses:
// liveness probes and metric scrapes must keep answering through exactly
// the overload the guard manages.
var DefaultExempt = []string{"/healthz", "/metrics"}

// Guard is the admission-control middleware: authentication, per-client
// rate limiting and load shedding in the api.Middleware shape. Wrap is
// safe for concurrent use once the Guard is built.
type Guard struct {
	keys      *Keyring
	anonRPS   float64
	anonBurst int
	pressure  func() (int64, int64)
	limiter   Limiter
	exempt    map[string]bool

	// Counters may be nil (no metrics registry mounted).
	unauthorized *obs.CounterVec
	rateLimited  *obs.CounterVec
	shed         *obs.CounterVec
}

// NewGuard builds the admission-control middleware.
func NewGuard(o Options) *Guard {
	g := &Guard{
		keys:      o.Keys,
		anonRPS:   o.AnonRPS,
		anonBurst: o.AnonBurst,
		pressure:  o.Pressure,
		limiter:   Limiter{MaxClients: o.MaxClients},
		exempt:    make(map[string]bool),
	}
	if g.anonBurst <= 0 {
		if b := int(math.Ceil(g.anonRPS)); b > 1 {
			g.anonBurst = b
		} else {
			g.anonBurst = 1
		}
	}
	exempt := o.Exempt
	if exempt == nil {
		exempt = DefaultExempt
	}
	for _, r := range exempt {
		g.exempt[r] = true
	}
	if o.Metrics != nil {
		g.unauthorized = o.Metrics.CounterVec("npn_http_unauthorized_total",
			"Requests refused for missing or invalid API credentials, by route.", "route")
		g.rateLimited = o.Metrics.CounterVec("npn_http_rate_limited_total",
			"Requests refused by per-client rate limiting, by route.", "route")
		g.shed = o.Metrics.CounterVec("npn_http_shed_total",
			"Requests shed because the worker pools were saturated, by route.", "route")
	}
	return g
}

// Wrap guards one route's handler. The signature matches api.Middleware
// structurally, so a Router takes the method value directly:
// rt.Use(g.Wrap). Checks run cheapest-first — shedding before
// authentication before rate limiting — so a saturated server spends as
// little as possible per rejected request.
func (g *Guard) Wrap(route string, next http.HandlerFunc) http.HandlerFunc {
	if g.exempt[route] {
		return next
	}
	return func(w http.ResponseWriter, r *http.Request) {
		if g.pressure != nil {
			if depth, limit := g.pressure(); limit > 0 && depth >= limit {
				inc(g.shed, route)
				writeRateLimited(w, r, time.Second,
					"server overloaded: %d batches in flight (limit %d)", depth, limit)
				return
			}
		}
		id, rps, burst, err := g.identify(r)
		if err != nil {
			inc(g.unauthorized, route)
			api.WriteError(w, err.WithRequestID(obs.RequestIDFromContext(r.Context())))
			return
		}
		if ok, retryAfter := g.limiter.Allow(id, rps, burst); !ok {
			inc(g.rateLimited, route)
			writeRateLimited(w, r, retryAfter,
				"rate limit exceeded for %s", id)
			return
		}
		next(w, r)
	}
}

// identify resolves the request to a rate-limit identity and quota, or an
// unauthorized error. A presented-but-unknown key always fails — it never
// silently downgrades to the anonymous tier.
func (g *Guard) identify(r *http.Request) (id string, rps float64, burst int, err *api.Error) {
	secret, present := bearerToken(r)
	switch {
	case present && g.keys != nil:
		k, ok := g.keys.Lookup(secret)
		if !ok {
			return "", 0, 0, api.Errf(api.CodeUnauthorized, "unknown API key")
		}
		return "key:" + k.Name, k.RPS, k.burst(), nil
	case present: // a key was offered but no keyring is mounted
		return "", 0, 0, api.Errf(api.CodeUnauthorized,
			"this server does not accept API keys").
			WithDetail("remove the Authorization header")
	case g.keys != nil && g.anonRPS <= 0:
		return "", 0, 0, api.Errf(api.CodeUnauthorized,
			"missing API key").
			WithDetail("send Authorization: Bearer <key>")
	default: // anonymous tier, bucketed per remote IP
		return "ip:" + remoteIP(r), g.anonRPS, g.anonBurst, nil
	}
}

// inc bumps a counter that may be nil (metrics disabled).
func inc(v *obs.CounterVec, route string) {
	if v != nil {
		v.With(route).Inc()
	}
}

// writeRateLimited answers 429 with the stable rate_limited code and a
// Retry-After header of at least one second (whole seconds, rounded up —
// the HTTP header carries integers).
func writeRateLimited(w http.ResponseWriter, r *http.Request, retryAfter time.Duration, format string, args ...any) {
	secs := int64(math.Ceil(retryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	e := api.Errf(api.CodeRateLimited, format, args...).
		WithDetail("retry after %ds", secs).
		WithRequestID(obs.RequestIDFromContext(r.Context()))
	api.WriteError(w, e)
}

// bearerToken extracts the Authorization: Bearer credential, reporting
// whether any Authorization header was presented at all.
func bearerToken(r *http.Request) (token string, present bool) {
	h := r.Header.Get("Authorization")
	if h == "" {
		return "", false
	}
	const prefix = "Bearer "
	if len(h) > len(prefix) && strings.EqualFold(h[:len(prefix)], prefix) {
		return h[len(prefix):], true
	}
	return "", true // a non-Bearer Authorization header is still an auth attempt
}

// remoteIP returns the connection's peer IP — deliberately not
// X-Forwarded-For, which an untrusted client sets freely. Deployments
// behind a trusted proxy should rate-limit at the proxy or issue keys.
func remoteIP(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}
