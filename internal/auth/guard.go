package auth

import (
	"fmt"
	"math"
	"net"
	"net/http"
	"net/netip"
	"strconv"
	"strings"
	"time"

	"repro/internal/api"
	"repro/internal/obs"
)

// Options configures a Guard.
type Options struct {
	// Keys is the server's API keyring. Nil disables authentication:
	// every request is anonymous (and per-IP limited when AnonRPS > 0).
	Keys *Keyring

	// AnonRPS is the sustained per-client rate granted to requests that
	// carry no API key, bucketed by remote IP. With a keyring mounted,
	// 0 rejects anonymous traffic outright (401 unauthorized); without
	// one, 0 leaves anonymous traffic unlimited.
	AnonRPS float64
	// AnonBurst is the anonymous bucket depth; non-positive defaults to
	// ceil(AnonRPS), floored at 1.
	AnonBurst int

	// Pressure, when set, enables load shedding: it returns the live
	// worker-pool depth (in-flight batches) and the admission limit, and
	// the guard answers 429 while depth >= limit — overload degrades to
	// fast rejections at the edge instead of queueing collapse. It runs
	// on every request and must be cheap (atomic loads).
	Pressure func() (depth, limit int64)

	// MaxClients caps the rate-limit bucket table (see Limiter); zero
	// means DefaultMaxClients.
	MaxClients int

	// Exempt lists route patterns that bypass every check. Nil means
	// DefaultExempt (/healthz and /metrics); an explicitly empty slice
	// exempts nothing.
	Exempt []string

	// AuthOnly lists route patterns that still authenticate but skip
	// rate limiting and load shedding. Nil means DefaultAuthOnly (the
	// flight-recorder debug endpoints); an explicitly empty slice puts
	// every non-exempt route through the full check sequence.
	AuthOnly []string

	// TrustedProxies lists CIDRs of load balancers whose X-Forwarded-For
	// the guard believes. Only when the TCP peer is inside one of these
	// prefixes does the anonymous tier bucket by the rightmost
	// non-trusted forwarded hop instead of the peer address; an untrusted
	// peer's forwarded headers are ignored entirely. Empty (the default)
	// trusts nothing. Parse operator input with ParseProxyList.
	TrustedProxies []netip.Prefix

	// Metrics, when set, registers the guard's counter families
	// (npn_http_unauthorized_total, npn_http_rate_limited_total,
	// npn_http_shed_total, by route) on the registry.
	Metrics *obs.Registry
}

// DefaultExempt are the routes a zero-valued Options.Exempt bypasses:
// liveness probes and metric scrapes must keep answering through
// exactly the overload the guard manages.
var DefaultExempt = []string{"/healthz", "/metrics"}

// DefaultAuthOnly are the routes a zero-valued Options.AuthOnly puts in
// the authenticate-but-never-throttle tier: flight-recorder reads name
// client identities and routes, so on a keyed edge they demand the same
// credentials as any API route — but a trace of the slow request is
// worth nothing if the guard 429s the read of it, so an authorized
// operator is never rate-limited or shed away from them.
var DefaultAuthOnly = []string{"/v2/debug/traces", "/v2/debug/traces/{id}"}

// Guard is the admission-control middleware: authentication, per-client
// rate limiting and load shedding in the api.Middleware shape. Wrap is
// safe for concurrent use once the Guard is built.
type Guard struct {
	keys      *Keyring
	anonRPS   float64
	anonBurst int
	pressure  func() (int64, int64)
	limiter   Limiter
	exempt    map[string]bool
	authOnly  map[string]bool
	trusted   []netip.Prefix

	// Counters may be nil (no metrics registry mounted).
	unauthorized *obs.CounterVec
	rateLimited  *obs.CounterVec
	shed         *obs.CounterVec
}

// NewGuard builds the admission-control middleware.
func NewGuard(o Options) *Guard {
	g := &Guard{
		keys:      o.Keys,
		anonRPS:   o.AnonRPS,
		anonBurst: o.AnonBurst,
		pressure:  o.Pressure,
		limiter:   Limiter{MaxClients: o.MaxClients},
		exempt:    make(map[string]bool),
		authOnly:  make(map[string]bool),
		trusted:   o.TrustedProxies,
	}
	if g.anonBurst <= 0 {
		if b := int(math.Ceil(g.anonRPS)); b > 1 {
			g.anonBurst = b
		} else {
			g.anonBurst = 1
		}
	}
	exempt := o.Exempt
	if exempt == nil {
		exempt = DefaultExempt
	}
	for _, r := range exempt {
		g.exempt[r] = true
	}
	authOnly := o.AuthOnly
	if authOnly == nil {
		authOnly = DefaultAuthOnly
	}
	for _, r := range authOnly {
		g.authOnly[r] = true
	}
	if o.Metrics != nil {
		g.unauthorized = o.Metrics.CounterVec("npn_http_unauthorized_total",
			"Requests refused for missing or invalid API credentials, by route.", "route")
		g.rateLimited = o.Metrics.CounterVec("npn_http_rate_limited_total",
			"Requests refused by per-client rate limiting, by route.", "route")
		g.shed = o.Metrics.CounterVec("npn_http_shed_total",
			"Requests shed because the worker pools were saturated, by route.", "route")
	}
	return g
}

// Wrap guards one route's handler. The signature matches api.Middleware
// structurally, so a Router takes the method value directly:
// rt.Use(g.Wrap). Checks run cheapest-first — shedding before
// authentication before rate limiting — so a saturated server spends as
// little as possible per rejected request.
func (g *Guard) Wrap(route string, next http.HandlerFunc) http.HandlerFunc {
	if g.exempt[route] {
		return next
	}
	authOnly := g.authOnly[route]
	return func(w http.ResponseWriter, r *http.Request) {
		// The guard span ends before the handler runs: it times the
		// admission decision, not the request. Child spans of the work
		// itself stay siblings under the root, not under the guard.
		_, sp := obs.StartSpan(r.Context(), "auth.guard")
		if !authOnly && g.pressure != nil {
			if depth, limit := g.pressure(); limit > 0 && depth >= limit {
				inc(g.shed, route)
				sp.SetAttr("outcome", "shed")
				sp.End()
				writeRateLimited(w, r, time.Second,
					"server overloaded: %d batches in flight (limit %d)", depth, limit)
				return
			}
		}
		id, rps, burst, err := g.identify(r)
		if err != nil {
			inc(g.unauthorized, route)
			sp.SetAttr("outcome", "unauthorized")
			sp.End()
			api.WriteError(w, err.WithRequestID(obs.RequestIDFromContext(r.Context())))
			return
		}
		// Auth-only routes spend no tokens: the flight recorder must stay
		// readable through exactly the rate storm or overload under debug.
		if !authOnly {
			if ok, retryAfter := g.limiter.Allow(id, rps, burst); !ok {
				inc(g.rateLimited, route)
				sp.SetAttr("outcome", "rate_limited")
				sp.SetAttr("client", id)
				sp.End()
				writeRateLimited(w, r, retryAfter,
					"rate limit exceeded for %s", id)
				return
			}
		}
		sp.SetAttr("outcome", "ok")
		sp.SetAttr("client", id)
		sp.End()
		next(w, r)
	}
}

// identify resolves the request to a rate-limit identity and quota, or an
// unauthorized error. A presented-but-unknown key always fails — it never
// silently downgrades to the anonymous tier.
func (g *Guard) identify(r *http.Request) (id string, rps float64, burst int, err *api.Error) {
	secret, present := bearerToken(r)
	switch {
	case present && g.keys != nil:
		k, ok := g.keys.Lookup(secret)
		if !ok {
			return "", 0, 0, api.Errf(api.CodeUnauthorized, "unknown API key")
		}
		return "key:" + k.Name, k.RPS, k.burst(), nil
	case present: // a key was offered but no keyring is mounted
		return "", 0, 0, api.Errf(api.CodeUnauthorized,
			"this server does not accept API keys").
			WithDetail("remove the Authorization header")
	case g.keys != nil && g.anonRPS <= 0:
		return "", 0, 0, api.Errf(api.CodeUnauthorized,
			"missing API key").
			WithDetail("send Authorization: Bearer <key>")
	default: // anonymous tier, bucketed per client IP
		return "ip:" + g.clientIP(r), g.anonRPS, g.anonBurst, nil
	}
}

// clientIP resolves the address the anonymous tier buckets by. Without
// trusted proxies (the default) it is the TCP peer, full stop. With
// them, and only when the peer itself is inside a trusted prefix, the
// X-Forwarded-For chain is walked right to left — the rightmost hop is
// what the nearest proxy observed — and the first non-trusted address
// wins; hops further left are client-controlled noise. A chain that is
// all trusted (or unparseable) falls back to the peer.
func (g *Guard) clientIP(r *http.Request) string {
	peer := remoteIP(r)
	if len(g.trusted) == 0 || !g.isTrusted(peer) {
		return peer
	}
	var hops []string
	for _, h := range r.Header.Values("X-Forwarded-For") {
		hops = append(hops, strings.Split(h, ",")...)
	}
	for i := len(hops) - 1; i >= 0; i-- {
		hop := strings.TrimSpace(hops[i])
		if hop == "" {
			continue
		}
		a, err := netip.ParseAddr(hop)
		if err != nil {
			return peer // a garbage hop means the chain is untrustworthy
		}
		if !g.prefixContains(a) {
			return a.Unmap().String()
		}
	}
	return peer
}

// isTrusted reports whether a textual address is inside a trusted
// proxy prefix.
func (g *Guard) isTrusted(ip string) bool {
	a, err := netip.ParseAddr(ip)
	if err != nil {
		return false
	}
	return g.prefixContains(a)
}

func (g *Guard) prefixContains(a netip.Addr) bool {
	a = a.Unmap()
	for _, p := range g.trusted {
		if p.Contains(a) {
			return true
		}
	}
	return false
}

// ParseProxyList parses a comma-separated list of proxy CIDRs (bare
// addresses are accepted as single-host prefixes) — the -trusted-proxies
// flag format. An empty string yields nil.
func ParseProxyList(s string) ([]netip.Prefix, error) {
	var out []netip.Prefix
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if !strings.Contains(part, "/") {
			a, err := netip.ParseAddr(part)
			if err != nil {
				return nil, fmt.Errorf("auth: bad proxy address %q: %w", part, err)
			}
			a = a.Unmap()
			out = append(out, netip.PrefixFrom(a, a.BitLen()))
			continue
		}
		p, err := netip.ParsePrefix(part)
		if err != nil {
			return nil, fmt.Errorf("auth: bad proxy CIDR %q: %w", part, err)
		}
		out = append(out, p.Masked())
		continue
	}
	return out, nil
}

// inc bumps a counter that may be nil (metrics disabled).
func inc(v *obs.CounterVec, route string) {
	if v != nil {
		v.With(route).Inc()
	}
}

// writeRateLimited answers 429 with the stable rate_limited code and a
// Retry-After header of at least one second (whole seconds, rounded up —
// the HTTP header carries integers).
func writeRateLimited(w http.ResponseWriter, r *http.Request, retryAfter time.Duration, format string, args ...any) {
	secs := int64(math.Ceil(retryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	e := api.Errf(api.CodeRateLimited, format, args...).
		WithDetail("retry after %ds", secs).
		WithRequestID(obs.RequestIDFromContext(r.Context()))
	api.WriteError(w, e)
}

// bearerToken extracts the Authorization: Bearer credential, reporting
// whether any Authorization header was presented at all.
func bearerToken(r *http.Request) (token string, present bool) {
	h := r.Header.Get("Authorization")
	if h == "" {
		return "", false
	}
	const prefix = "Bearer "
	if len(h) > len(prefix) && strings.EqualFold(h[:len(prefix)], prefix) {
		return h[len(prefix):], true
	}
	return "", true // a non-Bearer Authorization header is still an auth attempt
}

// remoteIP returns the connection's peer IP — deliberately not
// X-Forwarded-For, which an untrusted client sets freely. Deployments
// behind a trusted proxy should rate-limit at the proxy or issue keys.
// The address is canonicalized through netip (IPv4-mapped IPv6
// unmapped) so textual variants of one peer — "::ffff:1.2.3.4" vs
// "1.2.3.4" — share a single rate bucket, matching the form clientIP
// derives from a forwarded hop.
func remoteIP(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		host = r.RemoteAddr
	}
	if a, err := netip.ParseAddr(host); err == nil {
		return a.Unmap().String()
	}
	return host
}
