package npn

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tt"
)

func TestIdentityApply(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	for n := 1; n <= 8; n++ {
		f := tt.Random(n, rng)
		if !Identity(n).Apply(f).Equal(f) {
			t.Errorf("identity transform changed table at n=%d", n)
		}
	}
}

func TestTransformValidate(t *testing.T) {
	tr := Identity(3)
	if err := tr.Validate(); err != nil {
		t.Errorf("identity invalid: %v", err)
	}
	bad := tr
	bad.Perm[1] = 0 // duplicate
	if bad.Validate() == nil {
		t.Error("duplicate permutation accepted")
	}
	bad = tr
	bad.Perm[2] = 7
	if bad.Validate() == nil {
		t.Error("out-of-range permutation accepted")
	}
	bad = tr
	bad.NegMask = 1 << 3
	if bad.Validate() == nil {
		t.Error("out-of-range neg mask accepted")
	}
}

func TestApplyAgainstPrimitives(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for n := 2; n <= 7; n++ {
		f := tt.Random(n, rng)
		// Pure input negation of var i == FlipVar.
		for i := 0; i < n; i++ {
			tr := Identity(n)
			tr.NegMask = 1 << uint(i)
			if !tr.Apply(f).Equal(f.FlipVar(i)) {
				t.Fatalf("neg transform != FlipVar at n=%d i=%d", n, i)
			}
		}
		// Pure output negation == Not.
		tr := Identity(n)
		tr.OutNeg = true
		if !tr.Apply(f).Equal(f.Not()) {
			t.Fatalf("output negation != Not at n=%d", n)
		}
		// A transposition == SwapVars.
		tr = Identity(n)
		tr.Perm[0], tr.Perm[n-1] = uint8(n-1), 0
		if !tr.Apply(f).Equal(f.SwapVars(0, n-1)) {
			t.Fatalf("transposition != SwapVars at n=%d", n)
		}
	}
}

// TestApplyMatchesSlowReference checks the word-level Apply against the
// definitional per-minterm application on random transforms at every
// arity, including the multi-word tables where the delta-swap paths
// differ most.
func TestApplyMatchesSlowReference(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for n := 1; n <= 9; n++ {
		for rep := 0; rep < 50; rep++ {
			f := tt.Random(n, rng)
			tr := RandomTransform(n, rng)
			fast, slow := tr.Apply(f), tr.applySlow(f)
			if !fast.Equal(slow) {
				t.Fatalf("n=%d τ=%v f=%s: fast %s != slow %s", n, tr, f.Hex(), fast.Hex(), slow.Hex())
			}
		}
	}
}

func TestComposeMatchesSequentialApply(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(62))}
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(7)
		f := tt.Random(n, rng)
		t1 := RandomTransform(n, rng)
		t2 := RandomTransform(n, rng)
		composed := t1.Compose(t2)
		if composed.Validate() != nil {
			return false
		}
		return composed.Apply(f).Equal(t2.Apply(t1.Apply(f)))
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestInvertRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(63))}
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(7)
		f := tt.Random(n, rng)
		tr := RandomTransform(n, rng)
		inv := tr.Invert()
		if inv.Validate() != nil {
			return false
		}
		return inv.Apply(tr.Apply(f)).Equal(f) && tr.Apply(inv.Apply(f)).Equal(f)
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestExactCanonFixedPoints(t *testing.T) {
	// Constants and single variables are canonical class representatives.
	zero := tt.New(3)
	if !ExactCanon(zero).IsConst0() {
		t.Error("canon of const0 not const0")
	}
	one := tt.Const(3, true)
	if !ExactCanon(one).IsConst0() {
		t.Error("canon of const1 must be const0 (output negation)")
	}
}

func TestExactCanonInvariance(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(64))}
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		f := tt.Random(n, rng)
		g := RandomTransform(n, rng).Apply(f)
		cf, cg := ExactCanon(f), ExactCanon(g)
		// Canonical forms of NPN-equivalent functions must coincide, and the
		// canonical form is itself in the class (idempotence).
		return cf.Equal(cg) && ExactCanon(cf).Equal(cf)
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestExactCanonAgainstSlowOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	for n := 0; n <= 4; n++ {
		for rep := 0; rep < 25; rep++ {
			f := tt.Random(n, rng)
			if !ExactCanon(f).Equal(ExactCanonSlow(f)) {
				t.Fatalf("fast canon %s != slow canon %s (n=%d, f=%s)",
					ExactCanon(f).Hex(), ExactCanonSlow(f).Hex(), n, f.Hex())
			}
		}
	}
}

func TestKnownClassCounts(t *testing.T) {
	// The number of NPN classes of all n-variable functions is a classical
	// sequence: 2 (n=1... counting over all 2^2 functions), 4 (n=2),
	// 14 (n=3). Enumerate every function and count classes.
	want := map[int]int{1: 2, 2: 4, 3: 14}
	for n := 1; n <= 3; n++ {
		seen := make(map[uint64]struct{})
		for w := uint64(0); w < 1<<(1<<n); w++ {
			seen[CanonWord(w, n)] = struct{}{}
		}
		if len(seen) != want[n] {
			t.Errorf("NPN classes of all %d-var functions = %d, want %d", n, len(seen), want[n])
		}
	}
}

func TestEquivalentAndClassCount(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	f := tt.Random(4, rng)
	g := RandomTransform(4, rng).Apply(f)
	if !Equivalent(f, g) {
		t.Error("transform image not equivalent to original")
	}
	// XOR and AND of 2 variables are not NPN equivalent.
	xor2 := tt.MustFromHex(2, "6")
	and2 := tt.MustFromHex(2, "8")
	if Equivalent(xor2, and2) {
		t.Error("xor2 equivalent to and2")
	}
	if Equivalent(xor2, tt.Random(3, rng)) {
		t.Error("different arities must not be equivalent")
	}
	fs := []*tt.TT{xor2, and2, xor2.Not(), and2.FlipVar(0)}
	if got := ClassCount(fs); got != 2 {
		t.Errorf("ClassCount = %d, want 2", got)
	}
}

func TestTransformString(t *testing.T) {
	tr := Identity(3)
	tr.OutNeg = true
	tr.NegMask = 0b011
	s := tr.String()
	if s == "" {
		t.Error("empty String()")
	}
}
