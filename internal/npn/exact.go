package npn

import "repro/internal/tt"

// MaxExactVars is the largest arity ExactCanon handles by full enumeration.
// 6 variables means 2·2^6·6! = 92160 transforms per function, which matches
// the kitty exact canonization the paper benchmarks against; beyond that the
// paper itself switches to ABC's exact algorithm (our internal/match).
const MaxExactVars = 6

// ExactCanon returns the canonical representative of f's NPN class: the
// lexicographically smallest truth table reachable by any NPN transform.
// It panics if f has more than MaxExactVars variables.
func ExactCanon(f *tt.TT) *tt.TT {
	n := f.NumVars()
	if n > MaxExactVars {
		panic("npn: ExactCanon supports at most 6 variables; use match.ExactClassify for larger functions")
	}
	return tt.FromWord(n, CanonWord(f.Word(), n))
}

// CanonWord computes the canonical truth-table word for an n ≤ 6 variable
// function. The transform group is walked with O(1) word updates: Heap's
// algorithm turns permutation enumeration into a chain of single variable
// swaps, and inside every permutation the 2^n input-phase combinations are
// visited by a flip-undo recursion; output negation is folded into each
// candidate check.
func CanonWord(w uint64, n int) uint64 {
	mask := tt.WordMask(n)
	w &= mask
	best := w
	consider := func(v uint64) {
		if v < best {
			best = v
		}
		if c := ^v & mask; c < best {
			best = c
		}
	}

	var phases func(v uint64, k int)
	phases = func(v uint64, k int) {
		if k == n {
			consider(v)
			return
		}
		phases(v, k+1)
		phases(tt.FlipVarWord(v, k), k+1)
	}

	// Heap's algorithm mutates a persistent state: inner recursions leave
	// their swaps in place, which is exactly what makes every permutation
	// reachable with a single swap per step.
	cur := w
	var heap func(k int)
	heap = func(k int) {
		if k <= 1 {
			phases(cur, 0)
			return
		}
		for i := 0; i < k-1; i++ {
			heap(k - 1)
			if k%2 == 0 {
				cur = tt.SwapVarsWord(cur, i, k-1)
			} else {
				cur = tt.SwapVarsWord(cur, 0, k-1)
			}
		}
		heap(k - 1)
	}

	heap(n)
	return best
}

// ExactCanonSlow computes the same canonical form by materializing every
// transform with Apply. It is the independent oracle the fast enumeration is
// property-tested against; use it only on small arities.
func ExactCanonSlow(f *tt.TT) *tt.TT {
	n := f.NumVars()
	best := f.Clone()
	tr := Identity(n)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var permute func(k int)
	permute = func(k int) {
		if k == n {
			for i, p := range perm {
				tr.Perm[i] = uint8(p)
			}
			for m := 0; m < 1<<n; m++ {
				tr.NegMask = uint32(m)
				for _, o := range []bool{false, true} {
					tr.OutNeg = o
					if g := tr.Apply(f); g.Less(best) {
						best = g
					}
				}
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			permute(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	permute(0)
	return best
}

// Equivalent reports whether f and g are NPN equivalent, decided by exact
// canonical forms. Both must have the same arity, at most MaxExactVars.
func Equivalent(f, g *tt.TT) bool {
	if f.NumVars() != g.NumVars() {
		return false
	}
	return ExactCanon(f).Equal(ExactCanon(g))
}

// ClassCount returns the number of distinct NPN classes in the list, using
// exact canonical forms (n ≤ MaxExactVars).
func ClassCount(fs []*tt.TT) int {
	seen := make(map[uint64]struct{})
	for _, f := range fs {
		seen[CanonWord(f.Word(), f.NumVars())] = struct{}{}
	}
	return len(seen)
}
