package npn

import (
	"math/rand"
	"testing"

	"repro/internal/tt"
)

func TestCanonWithWitness(t *testing.T) {
	rng := rand.New(rand.NewSource(140))
	for n := 1; n <= 4; n++ {
		for rep := 0; rep < 20; rep++ {
			f := tt.Random(n, rng)
			canon, w := CanonWithWitness(f)
			if !canon.Equal(ExactCanon(f)) {
				t.Fatalf("witness canon disagrees with fast canon (n=%d)", n)
			}
			if !w.Apply(f).Equal(canon) {
				t.Fatalf("witness does not produce the canonical form (n=%d)", n)
			}
			if err := w.Validate(); err != nil {
				t.Fatalf("witness invalid: %v", err)
			}
		}
	}
}

func TestCanonWithWitnessRejectsLargeArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("n=7 accepted")
		}
	}()
	CanonWithWitness(tt.New(7))
}
