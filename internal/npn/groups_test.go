package npn

import (
	"math/rand"
	"testing"

	"repro/internal/tt"
)

// slowCanonGroup enumerates the group explicitly through Transform.Apply.
func slowCanonGroup(f *tt.TT, g Group) *tt.TT {
	n := f.NumVars()
	best := f.Clone()
	tr := Identity(n)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	consider := func() {
		for i, p := range perm {
			tr.Perm[i] = uint8(p)
		}
		maxMask := 1
		if g.negatesIn() {
			maxMask = 1 << n
		}
		for m := 0; m < maxMask; m++ {
			tr.NegMask = uint32(m)
			outs := []bool{false}
			if g.negatesOut() {
				outs = []bool{false, true}
			}
			for _, o := range outs {
				tr.OutNeg = o
				if img := tr.Apply(f); img.Less(best) {
					best = img
				}
			}
		}
	}
	if !g.permutes() {
		consider()
		return best
	}
	var permute func(k int)
	permute = func(k int) {
		if k == n {
			consider()
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			permute(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	permute(0)
	return best
}

func TestCanonGroupAgainstSlowOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(200))
	groups := []Group{GroupP, GroupN, GroupNP, GroupNPN}
	for n := 1; n <= 4; n++ {
		for rep := 0; rep < 15; rep++ {
			f := tt.Random(n, rng)
			for _, g := range groups {
				fast := CanonGroup(f, g)
				slow := slowCanonGroup(f, g)
				if !fast.Equal(slow) {
					t.Fatalf("group %v: fast %s != slow %s (n=%d, f=%s)",
						g, fast.Hex(), slow.Hex(), n, f.Hex())
				}
			}
		}
	}
}

func TestGroupHierarchy(t *testing.T) {
	// Finer groups produce at least as many classes: NPN ≤ NP ≤ P and
	// NP ≤ N over any population.
	rng := rand.New(rand.NewSource(201))
	var fs []*tt.TT
	for i := 0; i < 3000; i++ {
		fs = append(fs, tt.Random(4, rng))
	}
	p := ClassCountGroup(fs, GroupP)
	nn := ClassCountGroup(fs, GroupN)
	np := ClassCountGroup(fs, GroupNP)
	npn := ClassCountGroup(fs, GroupNPN)
	if !(npn <= np && np <= p && np <= nn) {
		t.Errorf("hierarchy violated: P=%d N=%d NP=%d NPN=%d", p, nn, np, npn)
	}
	if npn != ClassCount(fs) {
		t.Errorf("GroupNPN (%d) disagrees with ClassCount (%d)", npn, ClassCount(fs))
	}
}

func TestGroupClassCountsFullUniverse(t *testing.T) {
	// Exact class counts of all 16 two-variable functions, checkable by
	// Burnside's lemma: P (group S2): (16+8)/2 = 12; N (group Z2²):
	// (16+4+4+4)/4 = 7; NP: (16+4+4+4+8+4+4+8)/8 = 6; NPN = 4.
	var fs []*tt.TT
	for w := uint64(0); w < 16; w++ {
		fs = append(fs, tt.FromWord(2, w))
	}
	want := map[Group]int{GroupP: 12, GroupN: 7, GroupNP: 6, GroupNPN: 4}
	for g, expected := range want {
		if got := ClassCountGroup(fs, g); got != expected {
			t.Errorf("group %v classes = %d, want %d", g, got, expected)
		}
	}
}

func TestCanonGroupInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for rep := 0; rep < 40; rep++ {
		n := 1 + rng.Intn(5)
		f := tt.Random(n, rng)
		// A pure permutation preserves the P-canonical form.
		perm := rng.Perm(n)
		g := f.Permute(perm)
		if !CanonGroup(f, GroupP).Equal(CanonGroup(g, GroupP)) {
			t.Fatal("P-canonical form not permutation invariant")
		}
		// A pure input negation preserves the N-canonical form.
		h := f.FlipVar(rng.Intn(n))
		if !CanonGroup(f, GroupN).Equal(CanonGroup(h, GroupN)) {
			t.Fatal("N-canonical form not negation invariant")
		}
	}
}

func TestGroupStrings(t *testing.T) {
	if GroupP.String() != "P" || GroupN.String() != "N" ||
		GroupNP.String() != "NP" || GroupNPN.String() != "NPN" {
		t.Error("group names wrong")
	}
}
