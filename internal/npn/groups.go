package npn

import "repro/internal/tt"

// Group selects which transformations define equivalence. NPN is the
// paper's setting; the coarser groups are standard in Boolean matching
// (ABC exposes P- and NPN-classification side by side).
type Group int

const (
	// GroupP: input permutations only.
	GroupP Group = iota
	// GroupN: input negations only.
	GroupN
	// GroupNP: input negations and permutations.
	GroupNP
	// GroupNPN: input negations, permutations, and output negation.
	GroupNPN
)

// String names the group.
func (g Group) String() string {
	switch g {
	case GroupP:
		return "P"
	case GroupN:
		return "N"
	case GroupNP:
		return "NP"
	default:
		return "NPN"
	}
}

func (g Group) permutes() bool { return g == GroupP || g == GroupNP || g == GroupNPN }
func (g Group) negatesIn() bool {
	return g == GroupN || g == GroupNP || g == GroupNPN
}
func (g Group) negatesOut() bool { return g == GroupNPN }

// CanonWordGroup computes the canonical (lexicographically smallest) truth
// table of an n ≤ 6 variable function under the chosen equivalence group,
// by exhaustive enumeration with O(1) word steps (see CanonWord).
func CanonWordGroup(w uint64, n int, g Group) uint64 {
	mask := tt.WordMask(n)
	w &= mask
	best := w
	consider := func(v uint64) {
		if v < best {
			best = v
		}
		if g.negatesOut() {
			if c := ^v & mask; c < best {
				best = c
			}
		}
	}

	var phases func(v uint64, k int)
	phases = func(v uint64, k int) {
		if !g.negatesIn() || k == n {
			consider(v)
			return
		}
		phases(v, k+1)
		phases(tt.FlipVarWord(v, k), k+1)
	}

	if !g.permutes() {
		phases(w, 0)
		return best
	}
	cur := w
	var heap func(k int)
	heap = func(k int) {
		if k <= 1 {
			phases(cur, 0)
			return
		}
		for i := 0; i < k-1; i++ {
			heap(k - 1)
			if k%2 == 0 {
				cur = tt.SwapVarsWord(cur, i, k-1)
			} else {
				cur = tt.SwapVarsWord(cur, 0, k-1)
			}
		}
		heap(k - 1)
	}
	heap(n)
	return best
}

// CanonGroup is CanonWordGroup on truth tables.
func CanonGroup(f *tt.TT, g Group) *tt.TT {
	n := f.NumVars()
	if n > MaxExactVars {
		panic("npn: CanonGroup supports at most 6 variables")
	}
	return tt.FromWord(n, CanonWordGroup(f.Word(), n, g))
}

// ClassCountGroup counts distinct classes of the list under the group.
func ClassCountGroup(fs []*tt.TT, g Group) int {
	seen := make(map[uint64]struct{})
	for _, f := range fs {
		seen[CanonWordGroup(f.Word(), f.NumVars(), g)] = struct{}{}
	}
	return len(seen)
}
