package npn

import "repro/internal/tt"

// CanonWithWitness returns the exact canonical form of f together with a
// transform τ such that τ(f) equals the canonical form. It enumerates the
// transform group explicitly (n ≤ MaxExactVars); use ExactCanon when only
// the form is needed — it is substantially faster.
func CanonWithWitness(f *tt.TT) (*tt.TT, Transform) {
	n := f.NumVars()
	if n > MaxExactVars {
		panic("npn: CanonWithWitness supports at most 6 variables")
	}
	best := f.Clone()
	bestTr := Identity(n)
	tr := Identity(n)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var permute func(k int)
	permute = func(k int) {
		if k == n {
			for i, p := range perm {
				tr.Perm[i] = uint8(p)
			}
			for m := 0; m < 1<<n; m++ {
				tr.NegMask = uint32(m)
				for _, o := range []bool{false, true} {
					tr.OutNeg = o
					if g := tr.Apply(f); g.Less(best) {
						best = g
						bestTr = tr
					}
				}
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			permute(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	permute(0)
	return best, bestTr
}
