package npn

import (
	"math/rand"
	"testing"

	"repro/internal/tt"
)

func TestSiftCanonStaysInClass(t *testing.T) {
	rng := rand.New(rand.NewSource(180))
	for n := 1; n <= 6; n++ {
		for rep := 0; rep < 20; rep++ {
			f := tt.Random(n, rng)
			s := SiftCanon(f)
			if !Equivalent(f, s) {
				t.Fatalf("sifting left the NPN class (n=%d, f=%s -> %s)", n, f.Hex(), s.Hex())
			}
			// Local minimum: no single move improves further (idempotence).
			if !SiftCanon(s).Equal(s) {
				t.Fatalf("sifting not idempotent (n=%d)", n)
			}
			// Never above the exact canonical form, never above the input.
			if s.Compare(f) > 0 {
				t.Fatalf("sifting increased the table (n=%d)", n)
			}
			if s.Less(ExactCanon(f)) {
				t.Fatalf("sifting went below the class minimum (n=%d)", n)
			}
		}
	}
}

func TestSiftCanonWorksBeyondSixVars(t *testing.T) {
	rng := rand.New(rand.NewSource(181))
	for _, n := range []int{7, 9} {
		f := tt.Random(n, rng)
		s := SiftCanon(f)
		if s.Compare(f) > 0 {
			t.Fatalf("sifting increased the table at n=%d", n)
		}
		if s.NumVars() != n {
			t.Fatal("arity changed")
		}
	}
}

func TestSiftClassCountBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(182))
	n := 4
	var fs []*tt.TT
	for i := 0; i < 800; i++ {
		f := tt.Random(n, rng)
		fs = append(fs, f, RandomTransform(n, rng).Apply(f))
	}
	exact := ClassCount(fs)
	sift := SiftClassCount(fs)
	if sift < exact {
		t.Fatalf("sifting merged inequivalent functions: %d < exact %d", sift, exact)
	}
	// It should still identify the vast majority of transform pairs.
	if sift > exact*2 {
		t.Errorf("sifting too inaccurate: %d vs exact %d", sift, exact)
	}
}
