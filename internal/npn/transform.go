// Package npn implements NPN (Negation–Permutation–Negation) transformations
// of Boolean functions and exact NPN canonicalization.
//
// A Transform τ = (π, m, o) acts on an n-variable function f to produce
//
//	g(x) = f(y) ⊕ o,   with y_{π(i)} = x_i ⊕ m_i,
//
// i.e. input i of g is routed (possibly negated, bit i of m) to input π(i)
// of f, and the output is complemented when o is set. Two functions are NPN
// equivalent when some transform carries one into the other; equivalence
// classes under all 2^(n+1)·n! transforms are the NPN classes the paper
// counts.
//
// ExactCanon computes the lexicographically smallest truth table in a
// function's NPN class by enumerating the whole transform group with O(1)
// word updates per step (adjacent-swap Heap permutations × Gray-code phase
// flips), the same strategy as the kitty library's exact canonization that
// the paper uses as its ground truth for n ≤ 6.
package npn

import (
	"fmt"
	"math/rand"

	"repro/internal/tt"
)

// Transform is an NPN transformation for functions of up to tt.MaxVars
// variables. Perm[i] is π(i); only the first N entries are meaningful.
type Transform struct {
	N       int
	Perm    [tt.MaxVars]uint8
	NegMask uint32 // bit i: input i of the result is complemented
	OutNeg  bool
}

// Identity returns the identity transform on n variables.
func Identity(n int) Transform {
	var t Transform
	t.N = n
	for i := 0; i < n; i++ {
		t.Perm[i] = uint8(i)
	}
	return t
}

// RandomTransform draws a uniformly random NPN transform on n variables.
func RandomTransform(n int, rng *rand.Rand) Transform {
	t := Identity(n)
	perm := rng.Perm(n)
	for i, p := range perm {
		t.Perm[i] = uint8(p)
	}
	t.NegMask = uint32(rng.Intn(1 << n))
	t.OutNeg = rng.Intn(2) == 1
	return t
}

// Validate checks that the transform is a well-formed permutation on N vars.
func (t Transform) Validate() error {
	if t.N < 0 || t.N > tt.MaxVars {
		return fmt.Errorf("npn: transform arity %d out of range", t.N)
	}
	seen := uint32(0)
	for i := 0; i < t.N; i++ {
		p := t.Perm[i]
		if int(p) >= t.N || seen>>p&1 == 1 {
			return fmt.Errorf("npn: Perm is not a permutation of 0..%d", t.N-1)
		}
		seen |= 1 << p
	}
	if t.NegMask >= 1<<uint(t.N) {
		return fmt.Errorf("npn: NegMask has bits above variable %d", t.N-1)
	}
	return nil
}

// Apply returns τ(f). The transform is applied with word-level truth-table
// operations — the permutation as a sequence of variable transpositions
// (delta-swaps), the negations as masked shifts — so one application costs
// O(n·2^n/64) word steps rather than a per-minterm loop.
func (t Transform) Apply(f *tt.TT) *tt.TT {
	return t.ApplyInto(f.Clone(), f)
}

// ApplyInto computes τ(f) into dst — Apply with the result table supplied
// by the caller, so hot paths (matcher verification, witness replay) can
// reuse one scratch table instead of allocating per application. dst and f
// must have the transform's arity and may not alias. Returns dst.
//
//npn:noalloc
func (t Transform) ApplyInto(dst, f *tt.TT) *tt.TT {
	if f.NumVars() != t.N || dst.NumVars() != t.N {
		panic("npn: transform arity mismatch")
	}
	n := t.N
	r := dst
	if r != f {
		r.CopyFrom(f)
	}
	// g(x) = f(y) with y_{π(k)} = x_k: variable π(k) of f must end up at
	// position k. Walk the positions, bringing each wanted variable in by
	// one transposition; cur/at track which original variable currently
	// occupies each position.
	var cur, at [tt.MaxVars]uint8
	for i := 0; i < n; i++ {
		cur[i], at[i] = uint8(i), uint8(i)
	}
	for k := 0; k < n; k++ {
		want := t.Perm[k]
		j := at[want]
		if int(j) != k {
			r.SwapVarsInPlace(k, int(j))
			other := cur[k]
			cur[k], cur[j] = want, other
			at[want], at[other] = uint8(k), j
		}
	}
	// Then x_k ⊕ m_k: negate each masked input of the permuted table.
	for i := 0; i < n; i++ {
		if t.NegMask>>uint(i)&1 == 1 {
			r.FlipVarInPlace(i)
		}
	}
	if t.OutNeg {
		r.NotInPlace()
	}
	return r
}

// applySlow is the definitional per-minterm application, kept as the
// reference the fast Apply is tested against.
func (t Transform) applySlow(f *tt.TT) *tt.TT {
	n := t.N
	r := tt.New(n)
	for x := 0; x < f.NumBits(); x++ {
		y := 0
		for i := 0; i < n; i++ {
			bit := x>>uint(i)&1 ^ int(t.NegMask>>uint(i)&1)
			y |= bit << t.Perm[i]
		}
		v := f.Get(y)
		if t.OutNeg {
			v = !v
		}
		if v {
			r.Set(x, true)
		}
	}
	return r
}

// Compose returns the transform u∘t such that (u∘t)(f) = u(t(f)).
func (t Transform) Compose(u Transform) Transform {
	if t.N != u.N {
		panic("npn: composing transforms of different arity")
	}
	var r Transform
	r.N = t.N
	// g = t(f): g(x) = f(y), y_{tπ(i)} = x_i ⊕ tm_i.
	// h = u(g): h(x) = g(z), z_{uπ(i)} = x_i ⊕ um_i.
	// h(x) = f(y), y_{tπ(j)} = z_j ⊕ tm_j with j = uπ(i), i.e.
	// y_{tπ(uπ(i))} = x_i ⊕ um_i ⊕ tm_{uπ(i)}.
	for i := 0; i < t.N; i++ {
		j := u.Perm[i]
		r.Perm[i] = t.Perm[j]
		bit := u.NegMask>>uint(i)&1 ^ t.NegMask>>j&1
		r.NegMask |= bit << uint(i)
	}
	r.OutNeg = t.OutNeg != u.OutNeg
	return r
}

// Invert returns τ⁻¹ such that τ⁻¹(τ(f)) = f.
func (t Transform) Invert() Transform {
	var r Transform
	r.N = t.N
	for i := 0; i < t.N; i++ {
		p := t.Perm[i]
		r.Perm[p] = uint8(i)
		bit := t.NegMask >> uint(i) & 1
		r.NegMask |= bit << p
	}
	r.OutNeg = t.OutNeg
	return r
}

// String renders the transform compactly, e.g. "π=[2 0 1] neg=011 out=¬".
func (t Transform) String() string {
	perm := make([]int, t.N)
	for i := range perm {
		perm[i] = int(t.Perm[i])
	}
	out := ""
	if t.OutNeg {
		out = " out=¬"
	}
	return fmt.Sprintf("π=%v neg=%0*b%s", perm, t.N, t.NegMask, out)
}
