package npn

import "repro/internal/tt"

// SiftCanon computes a semi-canonical form of f by greedy hill climbing
// over single NPN moves: output negation, single input negations, and
// adjacent transpositions, accepting any move that lexicographically lowers
// the truth table, until a local minimum is reached. This is the
// kitty-style "sifting" canonization [Soeken et al., SAT'16]: it works for
// any arity (unlike exhaustive canonicalization), is orders of magnitude
// cheaper, stays inside the NPN class, but different class members may
// settle in different local minima — so bucketing by it over-splits, like
// the other heuristic canonical forms.
func SiftCanon(f *tt.TT) *tt.TT {
	best := siftPhase(f)
	// Alternate output phases until neither descends further; the table
	// strictly decreases on every accepted round, so this terminates, and
	// the result is a fixpoint of the whole procedure (idempotent).
	for {
		c := siftPhase(best.Not())
		if !c.Less(best) {
			return best
		}
		best = c
	}
}

// siftPhase hill-climbs one output phase to a local minimum. The move set
// follows kitty's sifting: per adjacent variable pair, all combinations of
// transposition and the two input negations; plus single input negations.
func siftPhase(f *tt.TT) *tt.TT {
	best := f.Clone()
	n := f.NumVars()
	for improved := true; improved; {
		improved = false
		for i := 0; i < n; i++ {
			if c := best.FlipVar(i); c.Less(best) {
				best = c
				improved = true
			}
		}
		for i := 0; i+1 < n; i++ {
			for move := 1; move < 8; move++ {
				c := best.Clone()
				if move&1 != 0 {
					c.SwapVarsInPlace(i, i+1)
				}
				if move&2 != 0 {
					c.FlipVarInPlace(i)
				}
				if move&4 != 0 {
					c.FlipVarInPlace(i + 1)
				}
				if c.Less(best) {
					best = c
					improved = true
				}
			}
		}
	}
	return best
}

// SiftClassCount buckets functions by their sifting semi-canonical form.
func SiftClassCount(fs []*tt.TT) int {
	seen := make(map[string]struct{})
	for _, f := range fs {
		seen[SiftCanon(f).Hex()] = struct{}{}
	}
	return len(seen)
}
