package match

import (
	"repro/internal/core"
	"repro/internal/npn"
	"repro/internal/tt"
)

// ExactResult describes an exact NPN classification.
type ExactResult struct {
	// ClassOf[i] is the exact class id of input i (dense from 0).
	ClassOf []int
	// NumClasses is the number of exact NPN classes.
	NumClasses int
	// Comparisons counts pairwise matcher invocations, a measure of how much
	// residual work the signature bucketing left.
	Comparisons int
}

// ExactClassify computes the exact NPN classification of a list of
// n-variable functions. For n ≤ npn.MaxExactVars it uses exhaustive
// canonicalization directly. For larger n it first buckets by the strict
// all-signature MSV (a coarsening that never splits true classes) and then
// refines each bucket with the pairwise matcher, comparing each function
// against one representative per discovered class.
func ExactClassify(fs []*tt.TT) *ExactResult {
	r := &ExactResult{ClassOf: make([]int, len(fs))}
	if len(fs) == 0 {
		return r
	}
	n := fs[0].NumVars()
	for _, f := range fs {
		if f.NumVars() != n {
			panic("match: ExactClassify requires uniform arity")
		}
	}

	if n <= npn.MaxExactVars {
		ids := make(map[uint64]int)
		for i, f := range fs {
			canon := npn.CanonWord(f.Word(), n)
			id, ok := ids[canon]
			if !ok {
				id = len(ids)
				ids[canon] = id
			}
			r.ClassOf[i] = id
		}
		r.NumClasses = len(ids)
		return r
	}

	// Bucket by the strict MSV: functions in different buckets are provably
	// inequivalent, so the matcher only runs within buckets.
	cfg := core.ConfigAll()
	cfg.OSDVCombined = true
	cfg.StrictKeys = true
	cfg.FastOSDV = true
	cls := core.New(n, cfg)
	buckets := make(map[string][]int)
	for i, f := range fs {
		k := string(cls.KeyBytes(f))
		buckets[k] = append(buckets[k], i)
	}

	m := NewMatcher(n)
	next := 0
	for _, idx := range buckets {
		// Representatives of the classes discovered inside this bucket.
		var reps []int
		for _, i := range idx {
			assigned := false
			for _, rep := range reps {
				r.Comparisons++
				if _, ok := m.Equivalent(fs[rep], fs[i]); ok {
					r.ClassOf[i] = r.ClassOf[rep]
					assigned = true
					break
				}
			}
			if !assigned {
				r.ClassOf[i] = next
				next++
				reps = append(reps, i)
			}
		}
	}
	r.NumClasses = next
	return r
}

// ExactClassCount returns only the number of exact NPN classes.
func ExactClassCount(fs []*tt.TT) int { return ExactClassify(fs).NumClasses }
