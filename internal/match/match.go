// Package match decides exact NPN equivalence of truth tables by signature-
// pruned backtracking, and builds exact NPN classifications of function
// populations at arities where exhaustive canonicalization (internal/npn) is
// no longer practical. It plays the role of ABC's exact classification
// ("the exact version in [19]") that the paper uses as ground truth for
// n > 6.
//
// The matcher searches for a transform τ with τ(f) = g. Output phase is
// fixed first via satisfy counts (both phases are tried for balanced
// functions); the variable mapping is then found by backtracking over
// (variable, phase) assignments, pruned by 1-ary cofactor counts, influence
// equality, and pairwise 2-ary cofactor counts against already-assigned
// variables — all necessary conditions of PN equivalence, so pruning never
// loses a witness. A full truth-table comparison confirms every complete
// assignment, so the procedure is exact.
package match

import (
	"repro/internal/npn"
	"repro/internal/sig"
	"repro/internal/tt"
)

// profile caches the per-function data the matcher prunes with.
type profile struct {
	f     *tt.TT
	inf   []int           // influence per variable
	cof1  [][2]int        // 1-ary cofactor counts per variable and value
	cof2  [][][4]int      // 2-ary counts: cof2[i][j][vi|vj<<1], i < j
	unate []sig.Unateness // per-variable unateness
	n     int
}

func newProfile(f *tt.TT, eng *sig.Engine) *profile {
	p := &profile{}
	fillProfile(p, f, eng)
	return p
}

// fillProfile (re)computes p for f, reusing p's slices when they already
// have the right arity — the allocation-free path behind QueryProfile.
func fillProfile(p *profile, f *tt.TT, eng *sig.Engine) {
	n := f.NumVars()
	p.f, p.n = f, n
	if len(p.inf) != n {
		p.inf = make([]int, n)
		p.cof1 = make([][2]int, n)
		p.unate = make([]sig.Unateness, n)
		p.cof2 = make([][][4]int, n)
		for i := 0; i < n; i++ {
			p.cof2[i] = make([][4]int, n)
		}
	}
	total := f.CountOnes()
	for i := 0; i < n; i++ {
		p.inf[i] = eng.Influence(f, i)
		c1 := f.CofactorCount(i, true)
		p.cof1[i] = [2]int{total - c1, c1}
		p.unate[i] = eng.Unateness(f, i)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			c11 := f.CofactorCount2(i, true, j, true)
			c10 := f.CofactorCount2(i, true, j, false)
			c01 := f.CofactorCount2(i, false, j, true)
			c00 := total - c11 - c10 - c01
			p.cof2[i][j] = [4]int{c00, c10, c01, c11} // index vi | vj<<1
		}
	}
}

// cof2At returns the 2-ary count for (var i = vi, var j = vj), any order.
func (p *profile) cof2At(i, vi, j, vj int) int {
	if i > j {
		i, j, vi, vj = j, i, vj, vi
	}
	return p.cof2[i][j][vi|vj<<1]
}

// Matcher decides NPN equivalence for functions of a fixed arity, reusing
// signature scratch across calls. Not safe for concurrent use.
type Matcher struct {
	n   int
	eng *sig.Engine

	// Hot-path scratch, reused across calls so serving-path certification
	// allocates nothing in steady state: the backtracking assignment
	// arrays, a table for the final exact verification, and the profile +
	// wrapper behind QueryProfile.
	assignVar []int // g-var i -> f-var
	assignNeg []int // g-var i -> phase bit
	applyBuf  *tt.TT
	qprof     profile
	qwrap     Profile
}

// NewMatcher returns a matcher for n-variable functions.
func NewMatcher(n int) *Matcher {
	return &Matcher{
		n:         n,
		eng:       sig.NewEngine(n),
		assignVar: make([]int, n),
		assignNeg: make([]int, n),
	}
}

// Profile is an immutable precomputation of the signatures the matcher
// prunes with for one function in one output phase. Building it costs the
// per-function signature pass; once built it may be shared freely across
// goroutines and reused for any number of MatchProfiled calls.
type Profile struct {
	p    *profile
	ones int
}

// Fn returns the profiled function (the matcher's own view; callers must
// not modify it).
func (p *Profile) Fn() *tt.TT { return p.p.f }

// Profile computes the query-side matcher profile of g. The result is
// freshly allocated and may outlive the matcher; the serving hot path uses
// QueryProfile instead.
func (m *Matcher) Profile(g *tt.TT) *Profile {
	if g.NumVars() != m.n {
		panic("match: arity mismatch")
	}
	return &Profile{p: newProfile(g, m.eng), ones: g.CountOnes()}
}

// QueryProfile is Profile backed by the matcher's own scratch: it allocates
// nothing in steady state, but the returned Profile (and anything derived
// from it) is valid only until the next QueryProfile call on this matcher.
// It is the per-query profile of the serving lookup path, where one profile
// is built and immediately consumed by MatchProfiled over a collision chain.
//
//npn:noalloc
func (m *Matcher) QueryProfile(g *tt.TT) *Profile {
	if g.NumVars() != m.n {
		panic("match: arity mismatch")
	}
	fillProfile(&m.qprof, g, m.eng)
	m.qwrap = Profile{p: &m.qprof, ones: g.CountOnes()}
	return &m.qwrap
}

// RepProfile is an immutable precomputation of both output phases of a
// class representative: everything the matcher needs on the f-side of
// Equivalent(f, g) for any query g. Build once per stored representative
// (Matcher.RepProfile) and share across queries and goroutines — this is
// what a serving store memoizes so certification of a hit stops rebuilding
// the representative's signature profile per query.
type RepProfile struct {
	pos, neg *profile
	ones     int
	size     int
}

// RepProfile computes both phase profiles of f.
func (m *Matcher) RepProfile(f *tt.TT) *RepProfile {
	if f.NumVars() != m.n {
		panic("match: arity mismatch")
	}
	fc := f.Clone()
	return &RepProfile{
		pos:  newProfile(fc, m.eng),
		neg:  newProfile(fc.Not(), m.eng),
		ones: fc.CountOnes(),
		size: fc.NumBits(),
	}
}

// Fn returns the profiled representative (positive phase).
func (rp *RepProfile) Fn() *tt.TT { return rp.pos.f }

// MatchProfiled is Equivalent(rep, g) with all profile construction hoisted
// out: rp is the (typically memoized) representative profile and q the
// query profile, built once per query and reused across a collision chain.
// It returns a witness τ with τ(rep) = g on success.
func (m *Matcher) MatchProfiled(rp *RepProfile, q *Profile) (npn.Transform, bool) {
	if rp.pos.n != m.n || q.p.n != m.n {
		panic("match: arity mismatch")
	}
	if rp.ones == q.ones {
		if tr, ok := m.matchProfiles(rp.pos, q.p, false); ok {
			return tr, true
		}
	}
	if rp.size-rp.ones == q.ones {
		if tr, ok := m.matchProfiles(rp.neg, q.p, true); ok {
			return tr, true
		}
	}
	return npn.Transform{}, false
}

// Equivalent reports whether f and g are NPN equivalent and, if so, returns
// a witness transform τ with τ(f) = g.
func (m *Matcher) Equivalent(f, g *tt.TT) (npn.Transform, bool) {
	if f.NumVars() != m.n || g.NumVars() != m.n {
		panic("match: arity mismatch")
	}
	onesF, onesG := f.CountOnes(), g.CountOnes()
	size := f.NumBits()
	// Candidate output phases: τ may complement the output, so |f| must
	// equal |g| (no output negation) or 2^n - |g| (output negation).
	if onesF != onesG && size-onesF != onesG {
		return npn.Transform{}, false
	}
	var pg *profile // g's profile serves both phases; built at most once
	if onesF == onesG {
		pg = newProfile(g, m.eng)
		if tr, ok := m.matchProfiles(newProfile(f, m.eng), pg, false); ok {
			return tr, true
		}
	}
	if size-onesF == onesG {
		if pg == nil {
			pg = newProfile(g, m.eng)
		}
		if tr, ok := m.matchProfiles(newProfile(f.Not(), m.eng), pg, true); ok {
			return tr, true
		}
	}
	return npn.Transform{}, false
}

// matchProfiles searches for a PN transform carrying pf.f into pg.f; outNeg
// records whether pf profiles the complemented phase of the original f, so
// the witness reported upward already contains the output negation.
func (m *Matcher) matchProfiles(pf, pg *profile, outNeg bool) (npn.Transform, bool) {
	if m.search(pf, pg, 0, 0) {
		n := m.n
		tr := npn.Identity(n)
		tr.OutNeg = outNeg
		for k := 0; k < n; k++ {
			tr.Perm[k] = uint8(m.assignVar[k])
			tr.NegMask |= uint32(m.assignNeg[k]) << uint(k)
		}
		return tr, true
	}
	return npn.Transform{}, false
}

// search backtracks over (variable, phase) assignments for position i, with
// used the bitmask of f-variables already taken. The assignment under
// construction lives in the matcher's scratch arrays, so a search allocates
// nothing.
func (m *Matcher) search(pf, pg *profile, i int, used uint32) bool {
	n := m.n
	if i == n {
		// Final exact verification keeps the matcher sound even if a
		// pruning rule were too weak. pf.f already carries the candidate
		// output phase, so the check is a pure PN application.
		inner := npn.Identity(n)
		for k := 0; k < n; k++ {
			inner.Perm[k] = uint8(m.assignVar[k])
			inner.NegMask |= uint32(m.assignNeg[k]) << uint(k)
		}
		if m.applyBuf == nil {
			m.applyBuf = tt.New(n)
		}
		return inner.ApplyInto(m.applyBuf, pf.f).Equal(pg.f)
	}
	for j := 0; j < n; j++ {
		if used>>uint(j)&1 == 1 {
			continue
		}
		if pf.inf[j] != pg.inf[i] {
			continue
		}
		for b := 0; b < 2; b++ {
			// 1-ary: |g|x_i=v| must equal |fc|x_j=v⊕b|.
			if pg.cof1[i][0] != pf.cof1[j][b] || pg.cof1[i][1] != pf.cof1[j][1^b] {
				continue
			}
			// Unateness: g's variable i behaves like fc's variable j
			// with the candidate phase applied.
			want := pf.unate[j]
			if b == 1 {
				want = want.Negate()
			}
			if pg.unate[i] != want {
				continue
			}
			// 2-ary against every already-assigned variable.
			ok := true
			for prev := 0; prev < i && ok; prev++ {
				jp, bp := m.assignVar[prev], m.assignNeg[prev]
				for vi := 0; vi < 2 && ok; vi++ {
					for vp := 0; vp < 2; vp++ {
						if pg.cof2At(i, vi, prev, vp) != pf.cof2At(j, vi^b, jp, vp^bp) {
							ok = false
							break
						}
					}
				}
			}
			if !ok {
				continue
			}
			m.assignVar[i], m.assignNeg[i] = j, b
			if m.search(pf, pg, i+1, used|1<<uint(j)) {
				return true
			}
		}
	}
	return false
}
