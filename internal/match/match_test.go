package match

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/npn"
	"repro/internal/tt"
)

func TestEquivalentFindsWitness(t *testing.T) {
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(80))}
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		m := NewMatcher(n)
		f := tt.Random(n, rng)
		g := npn.RandomTransform(n, rng).Apply(f)
		tr, ok := m.Equivalent(f, g)
		if !ok {
			return false
		}
		// The witness must actually carry f into g.
		return tr.Apply(f).Equal(g)
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestEquivalentAgreesWithExactCanon(t *testing.T) {
	// On random pairs (mostly inequivalent), matcher and exhaustive
	// canonicalization must return the same verdict.
	rng := rand.New(rand.NewSource(81))
	for n := 2; n <= 5; n++ {
		m := NewMatcher(n)
		for rep := 0; rep < 200; rep++ {
			f := tt.Random(n, rng)
			g := tt.Random(n, rng)
			want := npn.ExactCanon(f).Equal(npn.ExactCanon(g))
			_, got := m.Equivalent(f, g)
			if got != want {
				t.Fatalf("matcher verdict %v, canon verdict %v (n=%d, f=%s, g=%s)",
					got, want, n, f.Hex(), g.Hex())
			}
		}
	}
}

func TestEquivalentSatisfyCountFastReject(t *testing.T) {
	m := NewMatcher(4)
	f := tt.FromFunc(4, func(x int) bool { return x == 0 })                     // |f|=1
	g := tt.FromFunc(4, func(x int) bool { return x == 0 || x == 1 || x == 2 }) // |g|=3
	if _, ok := m.Equivalent(f, g); ok {
		t.Error("functions with incompatible satisfy counts matched")
	}
}

func TestEquivalentBalancedOutputNegation(t *testing.T) {
	// Balanced functions require trying both output phases.
	rng := rand.New(rand.NewSource(82))
	n := 4
	m := NewMatcher(n)
	found := 0
	for found < 20 {
		f := tt.Random(n, rng)
		if !f.IsBalanced() {
			continue
		}
		found++
		tr := npn.RandomTransform(n, rng)
		tr.OutNeg = true
		g := tr.Apply(f)
		w, ok := m.Equivalent(f, g)
		if !ok {
			t.Fatalf("balanced output-negated pair not matched (f=%s)", f.Hex())
		}
		if !w.Apply(f).Equal(g) {
			t.Fatalf("witness does not verify (f=%s)", f.Hex())
		}
	}
}

func TestExactClassifySmallMatchesCanon(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	var fs []*tt.TT
	for i := 0; i < 500; i++ {
		fs = append(fs, tt.Random(4, rng))
	}
	r := ExactClassify(fs)
	if r.NumClasses != npn.ClassCount(fs) {
		t.Errorf("ExactClassify count %d != canon count %d", r.NumClasses, npn.ClassCount(fs))
	}
	// Partition must agree with canonical forms pairwise on a sample.
	for rep := 0; rep < 300; rep++ {
		i, j := rng.Intn(len(fs)), rng.Intn(len(fs))
		same := r.ClassOf[i] == r.ClassOf[j]
		want := npn.ExactCanon(fs[i]).Equal(npn.ExactCanon(fs[j]))
		if same != want {
			t.Fatalf("partition disagrees with canon on pair (%d,%d)", i, j)
		}
	}
}

func TestExactClassifyLargeArity(t *testing.T) {
	// For n=7 (beyond exhaustive canonicalization) generate class structure
	// we control: a few seed functions plus random transforms of them.
	rng := rand.New(rand.NewSource(84))
	n := 7
	var fs []*tt.TT
	seeds := 12
	for s := 0; s < seeds; s++ {
		f := tt.Random(n, rng)
		fs = append(fs, f)
		for k := 0; k < 6; k++ {
			fs = append(fs, npn.RandomTransform(n, rng).Apply(f))
		}
	}
	r := ExactClassify(fs)
	if r.NumClasses > seeds {
		t.Errorf("found %d classes, expected at most %d (transforms of %d seeds)", r.NumClasses, seeds, seeds)
	}
	// Every transform of a seed must share the seed's class.
	per := len(fs) / seeds
	for s := 0; s < seeds; s++ {
		base := r.ClassOf[s*per]
		for k := 1; k < per; k++ {
			if r.ClassOf[s*per+k] != base {
				t.Fatalf("transform image of seed %d separated from its seed", s)
			}
		}
	}
}

func TestExactClassifyEmptyAndUniform(t *testing.T) {
	r := ExactClassify(nil)
	if r.NumClasses != 0 || len(r.ClassOf) != 0 {
		t.Error("empty classify wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("mixed arity accepted")
		}
	}()
	ExactClassify([]*tt.TT{tt.New(3), tt.New(4)})
}

// TestMatchProfiledAgreesWithEquivalent checks that the profiled path —
// representative profile built once, query profile built once — returns
// exactly the verdicts and valid witnesses of the one-shot Equivalent, on
// equivalent pairs, inequivalent pairs and output-negated pairs alike.
func TestMatchProfiledAgreesWithEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	for n := 2; n <= 8; n++ {
		m := NewMatcher(n)
		for rep := 0; rep < 60; rep++ {
			f := tt.Random(n, rng)
			var g *tt.TT
			switch rep % 3 {
			case 0:
				g = npn.RandomTransform(n, rng).Apply(f)
			case 1:
				tr := npn.RandomTransform(n, rng)
				tr.OutNeg = true
				g = tr.Apply(f)
			default:
				g = tt.Random(n, rng)
			}
			_, want := m.Equivalent(f, g)
			w, got := m.MatchProfiled(m.RepProfile(f), m.Profile(g))
			if got != want {
				t.Fatalf("n=%d f=%s g=%s: profiled verdict %v, Equivalent verdict %v",
					n, f.Hex(), g.Hex(), got, want)
			}
			if got && !w.Apply(f).Equal(g) {
				t.Fatalf("n=%d f=%s g=%s: profiled witness does not verify", n, f.Hex(), g.Hex())
			}
		}
	}
}

// TestRepProfileSharedAcrossMatchers checks that one memoized RepProfile is
// usable from a different Matcher instance (the store shares profiles
// across pooled engines) and across many queries.
func TestRepProfileSharedAcrossMatchers(t *testing.T) {
	rng := rand.New(rand.NewSource(86))
	n := 6
	f := tt.Random(n, rng)
	rp := NewMatcher(n).RepProfile(f)
	if !rp.Fn().Equal(f) {
		t.Fatal("RepProfile.Fn does not round-trip the representative")
	}
	other := NewMatcher(n)
	for i := 0; i < 30; i++ {
		g := npn.RandomTransform(n, rng).Apply(f)
		w, ok := other.MatchProfiled(rp, other.Profile(g))
		if !ok || !w.Apply(f).Equal(g) {
			t.Fatalf("query %d: shared profile failed (ok=%v)", i, ok)
		}
	}
}

func TestMatcherArityCheck(t *testing.T) {
	m := NewMatcher(4)
	defer func() {
		if recover() == nil {
			t.Error("arity mismatch not detected")
		}
	}()
	m.Equivalent(tt.New(4), tt.New(5))
}
