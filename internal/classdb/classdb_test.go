package classdb

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/npn"
	"repro/internal/tt"
)

func TestAddAndLookupWithWitness(t *testing.T) {
	rng := rand.New(rand.NewSource(220))
	n := 5
	l := New(n)
	base := make([]*tt.TT, 10)
	for i := range base {
		base[i] = tt.Random(n, rng)
		if _, isNew := l.Add(base[i]); !isNew && i == 0 {
			t.Fatal("first add not new")
		}
	}
	if l.Size() > 10 {
		t.Fatalf("library size %d > 10", l.Size())
	}
	// Every NPN variant must hit its class with a verifying witness.
	for _, f := range base {
		variant := npn.RandomTransform(n, rng).Apply(f)
		rep, w, ok, err := l.Lookup(variant)
		if err != nil {
			t.Fatalf("lookup error: %v", err)
		}
		if !ok {
			t.Fatalf("variant of stored class missed")
		}
		if !w.Apply(rep).Equal(variant) {
			t.Fatal("witness does not verify")
		}
	}
}

func TestLookupMiss(t *testing.T) {
	l := New(3)
	l.Add(tt.MustFromHex(3, "e8"))
	_, _, ok, err := l.Lookup(tt.MustFromHex(3, "96")) // parity: different class
	if err != nil || ok {
		t.Fatal("parity must miss a majority-only library")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(221))
	n := 4
	l := New(n)
	for i := 0; i < 30; i++ {
		l.Add(tt.Random(n, rng))
	}
	var buf bytes.Buffer
	if err := l.Save(&buf); err != nil {
		t.Fatal(err)
	}
	l2, err := Load(&buf, n)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Size() != l.Size() {
		t.Fatalf("size changed: %d -> %d", l.Size(), l2.Size())
	}
	k1, k2 := l.Keys(), l2.Keys()
	for i := range k1 {
		if k1[i] != k2[i] {
			t.Fatal("keys changed in round trip")
		}
	}
}

func TestLoadRejectsBadInput(t *testing.T) {
	if _, err := Load(strings.NewReader("zz\n"), 4); err == nil {
		t.Error("bad hex accepted")
	}
}

func TestAddIdempotent(t *testing.T) {
	l := New(3)
	f := tt.MustFromHex(3, "e8")
	k1, new1 := l.Add(f)
	k2, new2 := l.Add(f.FlipVar(1)) // same class
	if !new1 || new2 || k1 != k2 {
		t.Fatal("class identity not respected by Add")
	}
	if l.Size() != 1 {
		t.Fatal("duplicate class stored")
	}
}
