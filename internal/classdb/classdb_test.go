package classdb

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/match"
	"repro/internal/npn"
	"repro/internal/tt"
)

func TestAddAndLookupWithWitness(t *testing.T) {
	rng := rand.New(rand.NewSource(220))
	n := 5
	l := New(n)
	base := make([]*tt.TT, 10)
	for i := range base {
		base[i] = tt.Random(n, rng)
		if _, isNew := l.Add(base[i]); !isNew && i == 0 {
			t.Fatal("first add not new")
		}
	}
	if l.Size() > 10 {
		t.Fatalf("library size %d > 10", l.Size())
	}
	// Every NPN variant must hit its class with a verifying witness.
	for _, f := range base {
		variant := npn.RandomTransform(n, rng).Apply(f)
		rep, w, ok := l.Lookup(variant)
		if !ok {
			t.Fatalf("variant of stored class missed")
		}
		if !w.Apply(rep).Equal(variant) {
			t.Fatal("witness does not verify")
		}
	}
}

func TestLookupMiss(t *testing.T) {
	l := New(3)
	l.Add(tt.MustFromHex(3, "e8"))
	_, _, ok := l.Lookup(tt.MustFromHex(3, "96")) // parity: different class
	if ok {
		t.Fatal("parity must miss a majority-only library")
	}
}

// TestCollisionChain is the regression test for the silent class-merge bug:
// Add used to drop any function whose MSV key was already present, even
// when the function was not NPN-equivalent to the stored representative.
// The functions 0118 and 0182 share their full MSV under the OCV1+OIV
// configuration but are not NPN-equivalent, so both must be stored, as
// separate classes chained under one key.
func TestCollisionChain(t *testing.T) {
	n := 4
	a := tt.MustFromHex(n, "0118")
	b := tt.MustFromHex(n, "0182")
	cfg := core.Config{OCV1: true, OIV: true}

	// Self-check the pair so the test fails loudly if signatures change.
	cls := core.New(n, cfg)
	if string(cls.KeyBytes(a)) != string(cls.KeyBytes(b)) {
		t.Fatal("test pair no longer collides under OCV1+OIV")
	}
	if _, eq := match.NewMatcher(n).Equivalent(a, b); eq {
		t.Fatal("test pair is NPN equivalent; want inequivalent")
	}

	l := NewWithConfig(n, cfg)
	ka, newA := l.Add(a)
	kb, newB := l.Add(b)
	if !newA || !newB {
		t.Fatalf("both colliding functions must found classes: newA=%v newB=%v", newA, newB)
	}
	if ka != kb {
		t.Fatalf("pair must share a key: %016x vs %016x", ka, kb)
	}
	if l.Size() != 2 {
		t.Fatalf("library size %d, want 2 chained classes", l.Size())
	}
	if l.Collisions() != 1 {
		t.Fatalf("collisions %d, want 1", l.Collisions())
	}

	// Both classes must be retrievable, each with its own certified witness.
	for _, f := range []*tt.TT{a, b} {
		rep, w, ok := l.Lookup(f)
		if !ok {
			t.Fatalf("chained class %s missed", f.Hex())
		}
		if !w.Apply(rep).Equal(f) {
			t.Fatalf("witness for %s does not verify", f.Hex())
		}
	}

	// Re-adding either is idempotent.
	if _, isNew := l.Add(a.Clone()); isNew {
		t.Fatal("re-add of chained representative created a class")
	}
	if l.Size() != 2 {
		t.Fatalf("size changed on re-add: %d", l.Size())
	}
}

func TestCollisionChainSaveLoadRoundTrip(t *testing.T) {
	n := 4
	cfg := core.Config{OCV1: true, OIV: true}
	l := NewWithConfig(n, cfg)
	l.Add(tt.MustFromHex(n, "0118"))
	l.Add(tt.MustFromHex(n, "0182"))
	var buf bytes.Buffer
	if err := l.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Load uses the full-signature config, which separates the pair into
	// distinct keys — but both classes must survive the round trip.
	l2, err := Load(&buf, n)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Size() != 2 {
		t.Fatalf("collision chain lost in round trip: size %d", l2.Size())
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(221))
	n := 4
	l := New(n)
	for i := 0; i < 30; i++ {
		l.Add(tt.Random(n, rng))
	}
	var buf bytes.Buffer
	if err := l.Save(&buf); err != nil {
		t.Fatal(err)
	}
	l2, err := Load(&buf, n)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Size() != l.Size() {
		t.Fatalf("size changed: %d -> %d", l.Size(), l2.Size())
	}
	k1, k2 := l.Keys(), l2.Keys()
	for i := range k1 {
		if k1[i] != k2[i] {
			t.Fatal("keys changed in round trip")
		}
	}
}

func TestLoadRejectsBadInput(t *testing.T) {
	if _, err := Load(strings.NewReader("zz\n"), 4); err == nil {
		t.Error("bad hex accepted")
	}
}

func TestAddIdempotent(t *testing.T) {
	l := New(3)
	f := tt.MustFromHex(3, "e8")
	k1, new1 := l.Add(f)
	k2, new2 := l.Add(f.FlipVar(1)) // same class
	if !new1 || new2 || k1 != k2 {
		t.Fatal("class identity not respected by Add")
	}
	if l.Size() != 1 {
		t.Fatal("duplicate class stored")
	}
}
