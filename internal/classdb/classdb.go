// Package classdb maintains a persistent NPN class library: one
// representative function per class, keyed by the MSV signature. This is
// the object a technology-mapping flow keeps between runs — cells are
// characterized once per class, and Lookup rewires any later function onto
// its class representative with an explicit transform witness.
package classdb

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/match"
	"repro/internal/npn"
	"repro/internal/tt"
	"repro/internal/ttio"
)

// Library is an NPN class database for functions of a fixed arity.
type Library struct {
	n    int
	cls  *core.Classifier
	m    *match.Matcher
	reps map[uint64]*tt.TT
}

// New returns an empty library for n-variable functions.
func New(n int) *Library {
	cfg := core.ConfigAll()
	cfg.FastOSDV = true
	return &Library{
		n:    n,
		cls:  core.New(n, cfg),
		m:    match.NewMatcher(n),
		reps: make(map[uint64]*tt.TT),
	}
}

// NumVars returns the arity.
func (l *Library) NumVars() int { return l.n }

// Size returns the number of classes stored.
func (l *Library) Size() int { return len(l.reps) }

// Add inserts f's class if absent, returning the class key and whether a
// new class was created (f becomes the representative).
func (l *Library) Add(f *tt.TT) (key uint64, isNew bool) {
	key = l.cls.Hash(f)
	if _, ok := l.reps[key]; ok {
		return key, false
	}
	l.reps[key] = f.Clone()
	return key, true
}

// Lookup finds f's class. On a hit it returns the representative and a
// witness transform τ with τ(rep) = f, certified by the exact matcher.
// If the signature matches but exact matching fails — an MSV collision
// between inequivalent functions — Lookup returns a non-nil error so the
// caller can fall back to exact handling for that function; signatures are
// necessary conditions only, and the error is the honest signal.
func (l *Library) Lookup(f *tt.TT) (rep *tt.TT, witness npn.Transform, ok bool, err error) {
	key := l.cls.Hash(f)
	rep, hit := l.reps[key]
	if !hit {
		return nil, npn.Transform{}, false, nil
	}
	tr, eq := l.m.Equivalent(rep, f)
	if !eq {
		return nil, npn.Transform{}, false,
			fmt.Errorf("classdb: MSV collision: %s and %s share key %016x but are not NPN equivalent",
				rep.Hex(), f.Hex(), key)
	}
	return rep, tr, true, nil
}

// Keys returns the stored class keys in ascending order.
func (l *Library) Keys() []uint64 {
	out := make([]uint64, 0, len(l.reps))
	for k := range l.reps {
		out = append(out, k)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// Save writes the library as a ttio workload file (one representative per
// line) with an arity header comment.
func (l *Library) Save(w io.Writer) error {
	fs := make([]*tt.TT, 0, len(l.reps))
	for _, k := range l.Keys() {
		fs = append(fs, l.reps[k])
	}
	return ttio.Write(w, fs, fmt.Sprintf("classdb n=%d classes=%d", l.n, len(fs)))
}

// Load reads a library saved by Save (or any ttio workload of the right
// arity) and inserts every function as a class representative.
func Load(r io.Reader, n int) (*Library, error) {
	var sb strings.Builder
	if _, err := io.Copy(&sb, r); err != nil {
		return nil, fmt.Errorf("classdb: %w", err)
	}
	fs, err := ttio.Read(strings.NewReader(sb.String()), n)
	if err != nil {
		return nil, fmt.Errorf("classdb: %w", err)
	}
	l := New(n)
	for _, f := range fs {
		l.Add(f)
	}
	return l, nil
}
