// Package classdb maintains a persistent NPN class library: one
// representative function per class, keyed by the MSV signature. This is
// the object a technology-mapping flow keeps between runs — cells are
// characterized once per class, and Lookup rewires any later function onto
// its class representative with an explicit transform witness.
//
// Signatures are a necessary condition for NPN equivalence only, so two
// inequivalent functions may share an MSV key. The library resolves such
// collisions with a chain of representatives per key: Add verifies
// membership against every chained representative with the exact matcher
// before deciding a function founds a new class, and Lookup returns the
// chain member the matcher certifies. No class is ever silently merged.
// (internal/store is the concurrency-safe sharded variant of the same
// semantics; this package stays single-threaded and minimal.)
package classdb

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/match"
	"repro/internal/npn"
	"repro/internal/tt"
	"repro/internal/ttio"
)

// Library is an NPN class database for functions of a fixed arity.
type Library struct {
	n    int
	cls  *core.Classifier
	m    *match.Matcher
	reps map[uint64][]*tt.TT // collision chain: inequivalent reps per key
}

// New returns an empty library for n-variable functions using the paper's
// full signature configuration.
func New(n int) *Library {
	cfg := core.ConfigAll()
	cfg.FastOSDV = true
	return NewWithConfig(n, cfg)
}

// NewWithConfig returns an empty library keyed by the given signature
// selection. Weaker configurations collide more often and therefore grow
// longer chains; correctness is unaffected because membership is always
// certified by the exact matcher.
func NewWithConfig(n int, cfg core.Config) *Library {
	return &Library{
		n:    n,
		cls:  core.New(n, cfg),
		m:    match.NewMatcher(n),
		reps: make(map[uint64][]*tt.TT),
	}
}

// NumVars returns the arity.
func (l *Library) NumVars() int { return l.n }

// Size returns the number of classes stored (chained collision
// representatives count individually).
func (l *Library) Size() int {
	total := 0
	for _, chain := range l.reps {
		total += len(chain)
	}
	return total
}

// Collisions returns the number of representatives beyond the first of
// their key — the classes that would have been silently lost by a
// key-only store.
func (l *Library) Collisions() int {
	extra := 0
	for _, chain := range l.reps {
		extra += len(chain) - 1
	}
	return extra
}

// Add inserts f's class if absent, returning the class key and whether a
// new class was created (f becomes a representative). When the key is
// already present, f is checked against every chained representative with
// the exact matcher: an equivalent member means f's class is stored
// already; otherwise f is an MSV collision and is appended to the chain
// as a new class.
func (l *Library) Add(f *tt.TT) (key uint64, isNew bool) {
	key = l.cls.Hash(f)
	for _, rep := range l.reps[key] {
		if _, eq := l.m.Equivalent(rep, f); eq {
			return key, false
		}
	}
	l.reps[key] = append(l.reps[key], f.Clone())
	return key, true
}

// Lookup finds f's class. On a hit it returns the chain representative
// certified by the exact matcher and a witness transform τ with
// τ(rep) = f. A key hit whose chain holds no equivalent representative is
// a miss — f's class is simply not stored yet.
func (l *Library) Lookup(f *tt.TT) (rep *tt.TT, witness npn.Transform, ok bool) {
	key := l.cls.Hash(f)
	for _, r := range l.reps[key] {
		if tr, eq := l.m.Equivalent(r, f); eq {
			return r, tr, true
		}
	}
	return nil, npn.Transform{}, false
}

// Keys returns the stored class keys in ascending order. Keys with
// collision chains appear once.
func (l *Library) Keys() []uint64 {
	out := make([]uint64, 0, len(l.reps))
	for k := range l.reps {
		out = append(out, k)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// Save writes the library as a ttio workload file (one representative per
// line, chain members consecutively) with an arity header comment.
func (l *Library) Save(w io.Writer) error {
	fs := make([]*tt.TT, 0, l.Size())
	for _, k := range l.Keys() {
		fs = append(fs, l.reps[k]...)
	}
	return ttio.Write(w, fs, fmt.Sprintf("classdb n=%d classes=%d", l.n, len(fs)))
}

// Load reads a library saved by Save (or any ttio workload of the right
// arity) and inserts every function as a class representative.
func Load(r io.Reader, n int) (*Library, error) {
	fs, err := ttio.Read(r, n)
	if err != nil {
		return nil, fmt.Errorf("classdb: %w", err)
	}
	l := New(n)
	for _, f := range fs {
		l.Add(f)
	}
	return l, nil
}
