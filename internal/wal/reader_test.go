package wal

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/tt"
)

// readAllFrom decodes every record reachable from offset in the segment
// file, returning the records, the final boundary offset and the
// terminal error (io.EOF, ErrPartial, ...).
func readAllFrom(t *testing.T, path string, offset int64) ([]Record, int64, error) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Seek(offset, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	r := NewReader(f, offset)
	var recs []Record
	for {
		rec, err := r.Next()
		if err != nil {
			return recs, r.Offset(), err
		}
		recs = append(recs, rec)
	}
}

// TestReaderResumeAtEveryBoundary writes a mixed-arity segment and
// re-decodes it from every record boundary: a Reader resumed at boundary
// i must deliver exactly records i..K-1 and land on the same final
// offset — the property replication followers lean on when they resume a
// tail mid-segment.
func TestReaderResumeAtEveryBoundary(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(dir, Options{Meta: 99, SegmentBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	var fs []*tt.TT
	for i := 0; i < 24; i++ {
		fs = append(fs, tt.Random(4+i%5, rng)) // mixed arities, mixed record sizes
	}
	keys := appendAll(t, w, fs)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := ListSegments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments %v, %v", segs, err)
	}
	path := segs[0].Path

	// First pass from 0 records every boundary (and checks Meta).
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReader(f, 0)
	boundaries := []int64{0, headerSize}
	var all []Record
	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if meta, ok := r.Meta(); !ok || meta != 99 {
			t.Fatalf("meta %d,%v after first record", meta, ok)
		}
		all = append(all, rec)
		boundaries = append(boundaries, r.Offset())
	}
	f.Close()
	if len(all) != len(fs) {
		t.Fatalf("decoded %d records, want %d", len(all), len(fs))
	}
	end := boundaries[len(boundaries)-1]
	if end != segs[0].Size {
		t.Fatalf("final boundary %d, segment size %d", end, segs[0].Size)
	}

	for i, off := range boundaries {
		recs, final, err := readAllFrom(t, path, off)
		if !errors.Is(err, io.EOF) {
			t.Fatalf("resume at boundary %d (offset %d): terminal %v", i, off, err)
		}
		// boundaries[0] is offset 0 (header included) and boundaries[1] is
		// headerSize: both yield the full record list.
		wantFrom := i - 1
		if wantFrom < 0 {
			wantFrom = 0
		}
		if len(recs) != len(fs)-wantFrom || final != end {
			t.Fatalf("resume at boundary %d: %d records ending %d, want %d ending %d",
				i, len(recs), final, len(fs)-wantFrom, end)
		}
		for j, rec := range recs {
			k := wantFrom + j
			if rec.Key != keys[k] || !rec.TT.Equal(fs[k]) {
				t.Fatalf("resume at boundary %d: record %d mismatch", i, j)
			}
		}
	}
}

// TestReaderPartialAndFrameErrors crafts truncated and corrupted
// segment bytes and checks the error taxonomy: a short tail is
// ErrPartial (retryable, offset at the last whole record), a checksum
// flip is ErrFrame, and both leave Offset at the boundary before the
// damage.
func TestReaderPartialAndFrameErrors(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(dir, Options{Meta: 7})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	fs := []*tt.TT{tt.Random(6, rng), tt.Random(6, rng)}
	appendAll(t, w, fs)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := ListSegments(dir)
	raw, err := os.ReadFile(segs[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	recLen := (int64(len(raw)) - headerSize) / 2
	boundary := headerSize + recLen

	// Truncations anywhere inside the second record: one good record,
	// then ErrPartial at its boundary.
	for _, cut := range []int64{boundary + 1, boundary + frameSize, int64(len(raw)) - 1} {
		r := NewReader(bytes.NewReader(raw[:cut]), 0)
		if _, err := r.Next(); err != nil {
			t.Fatalf("cut %d: first record: %v", cut, err)
		}
		_, err := r.Next()
		if !errors.Is(err, ErrPartial) || r.Offset() != boundary {
			t.Fatalf("cut %d: got %v at offset %d, want ErrPartial at %d", cut, err, r.Offset(), boundary)
		}
	}

	// A flipped payload byte in the second record: ErrFrame (checksum).
	corrupt := append([]byte(nil), raw...)
	corrupt[boundary+frameSize+2] ^= 0x40
	r := NewReader(bytes.NewReader(corrupt), 0)
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, ErrFrame) || r.Offset() != boundary {
		t.Fatalf("checksum flip: got %v at offset %d, want ErrFrame at %d", err, r.Offset(), boundary)
	}

	// Bad magic: ErrFrame before any record.
	bad := append([]byte(nil), raw...)
	bad[0] ^= 0xff
	r = NewReader(bytes.NewReader(bad), 0)
	if _, err := r.Next(); !errors.Is(err, ErrFrame) {
		t.Fatalf("bad magic: %v", err)
	}

	// Empty stream: ErrPartial (header not yet written).
	r = NewReader(bytes.NewReader(nil), 0)
	if _, err := r.Next(); !errors.Is(err, ErrPartial) {
		t.Fatalf("empty stream: %v", err)
	}
}

// TestWriterDurableSize: the durable boundary trails appends in
// group-fsync mode and tracks them exactly in every-append mode — the
// contract that lets replication serve only what a power cut cannot
// take back.
func TestWriterDurableSize(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(dir, Options{Meta: 3, FsyncEvery: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if seq, size := w.DurableSize(); seq != 1 || size != headerSize {
		t.Fatalf("fresh writer durable (%d,%d), want (1,%d)", seq, size, headerSize)
	}
	rng := rand.New(rand.NewSource(14))
	f := tt.Random(6, rng)
	if err := w.Append(1, f); err != nil {
		t.Fatal(err)
	}
	if _, size := w.DurableSize(); size != headerSize {
		t.Fatalf("buffered append already durable at %d", size)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	_, size := w.DurableSize()
	if size <= headerSize {
		t.Fatalf("synced append not durable (size %d)", size)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the scanned on-disk prefix is the durable boundary.
	w2, err := OpenWriter(dir, Options{Meta: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if seq2, size2 := w2.DurableSize(); seq2 != 1 || size2 != size {
		t.Fatalf("reopened durable (%d,%d), want (1,%d)", seq2, size2, size)
	}
}

// TestReaderTailsConcurrentAppend tails a segment that a live Writer
// keeps appending to — the follower's steady state. The writer runs in
// group-fsync mode with records big enough to overflow its buffer, so
// the on-disk file regularly ends mid-record and the reader must stop at
// ErrPartial and resume from the boundary. Every record must arrive
// exactly once, in order.
func TestReaderTailsConcurrentAppend(t *testing.T) {
	const total = 300
	dir := t.TempDir()
	w, err := OpenWriter(dir, Options{Meta: 5, SegmentBytes: 1 << 30, FsyncEvery: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	fs := make([]*tt.TT, total)
	for i := range fs {
		fs[i] = tt.Random(12, rng) // 521-byte payloads overflow the 64KB buffer mid-record
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i, f := range fs {
			if err := w.Append(uint64(i), f); err != nil {
				t.Errorf("append %d: %v", i, err)
				return
			}
		}
		if err := w.Sync(); err != nil {
			t.Errorf("final sync: %v", err)
		}
	}()

	path := SegmentPath(dir, 1)
	var got []Record
	offset := int64(0)
	sawPartial := false
	deadline := time.Now().Add(30 * time.Second)
	for len(got) < total {
		if time.Now().After(deadline) {
			t.Fatalf("tailed only %d/%d records before deadline", len(got), total)
		}
		time.Sleep(2 * time.Millisecond)
		recs, final, err := readAllFrom(t, path, offset)
		switch {
		case errors.Is(err, io.EOF):
		case errors.Is(err, ErrPartial):
			sawPartial = true
		default:
			t.Fatalf("tail at offset %d: %v", offset, err)
		}
		got = append(got, recs...)
		offset = final
	}
	wg.Wait()
	for i, rec := range got {
		if rec.Key != uint64(i) || !rec.TT.Equal(fs[i]) {
			t.Fatalf("tailed record %d mismatch (key %d)", i, rec.Key)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// The buffered writer flushes 64KB chunks, so some poll must have
	// caught a record half-flushed; if not, this test lost its point.
	if !sawPartial {
		t.Log("warning: tail never observed a partial record; buffer sizes may have changed")
	}
}
