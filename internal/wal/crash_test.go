package wal

import (
	"math/rand"
	"os"
	"testing"

	"repro/internal/tt"
)

// buildLog writes count arity-n records into dir and returns them plus
// the final segment's path and the byte range [start, end) of the last
// record within it.
func buildLog(t *testing.T, dir string, n, count int) (fs []*tt.TT, lastSeg string, start, end int64) {
	t.Helper()
	w, err := OpenWriter(dir, Options{Meta: 3})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(int64(40 + n)))
	for i := 0; i < count; i++ {
		f := tt.Random(n, rng)
		fs = append(fs, f)
		if err := w.Append(uint64(i), f); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	last := segs[len(segs)-1]
	recLen := int64(frameSize + payloadSize(n))
	return fs, last.Path, last.Size - recLen, last.Size
}

// TestTornTailEveryOffset is the crash-recovery sweep: a WAL whose final
// record is cut at EVERY byte offset must replay exactly the preceding
// records — no error, no partial class — and report the torn length.
func TestTornTailEveryOffset(t *testing.T) {
	const count = 5
	for _, n := range []int{4, 7} {
		dir := t.TempDir()
		fs, lastSeg, start, end := buildLog(t, dir, n, count)
		intact, err := os.ReadFile(lastSeg)
		if err != nil {
			t.Fatal(err)
		}
		for off := start; off < end; off++ {
			if err := os.WriteFile(lastSeg, intact[:off], 0o644); err != nil {
				t.Fatal(err)
			}
			var got []*tt.TT
			st, err := Replay(dir, func(_ Segment, _ uint64, rec Record) error {
				got = append(got, rec.TT)
				return nil
			})
			if err != nil {
				t.Fatalf("n=%d cut at %d: replay error %v", n, off, err)
			}
			if len(got) != count-1 {
				t.Fatalf("n=%d cut at %d: replayed %d records, want %d", n, off, len(got), count-1)
			}
			for i, f := range got {
				if !f.Equal(fs[i]) {
					t.Fatalf("n=%d cut at %d: record %d corrupted", n, off, i)
				}
			}
			if st.TornBytes != off-start {
				t.Fatalf("n=%d cut at %d: torn bytes %d, want %d", n, off, st.TornBytes, off-start)
			}
		}
		// Restore and confirm the intact log still replays in full.
		if err := os.WriteFile(lastSeg, intact, 0o644); err != nil {
			t.Fatal(err)
		}
		recs, _, _ := collect(t, dir)
		if len(recs) != count {
			t.Fatalf("n=%d restored log replays %d records, want %d", n, len(recs), count)
		}
	}
}

// TestOpenWriterTruncatesTornTail: reopening a torn log must discard the
// partial record on disk and continue appending cleanly after it.
func TestOpenWriterTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	fs, lastSeg, start, end := buildLog(t, dir, 6, 4)
	if err := os.Truncate(lastSeg, (start+end)/2); err != nil {
		t.Fatal(err)
	}
	w, err := OpenWriter(dir, Options{Meta: 3})
	if err != nil {
		t.Fatal(err)
	}
	if info, err := os.Stat(lastSeg); err != nil || info.Size() != start {
		t.Fatalf("torn tail not truncated: size %d, want %d (err %v)", info.Size(), start, err)
	}
	extra := tt.Random(6, rand.New(rand.NewSource(99)))
	if err := w.Append(50, extra); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _, st := collect(t, dir)
	if len(recs) != 4 || st.TornBytes != 0 {
		t.Fatalf("after reopen: %d records, stats %+v (want 4 records, no torn tail)", len(recs), st)
	}
	for i := 0; i < 3; i++ {
		if !recs[i].TT.Equal(fs[i]) {
			t.Fatalf("record %d corrupted by truncation", i)
		}
	}
	if !recs[3].TT.Equal(extra) {
		t.Fatal("post-recovery append corrupted")
	}
}

// TestTornHeaderRebuilt: a crash before the active segment's header hit
// disk leaves a short file; reopening must rebuild it.
func TestTornHeaderRebuilt(t *testing.T) {
	dir := t.TempDir()
	_, lastSeg, _, _ := buildLog(t, dir, 5, 2)
	if err := os.WriteFile(lastSeg, []byte("npn"), 0o644); err != nil {
		t.Fatal(err)
	}
	// The torn header also replays as an empty final segment.
	recs, _, _ := collect(t, dir)
	if len(recs) != 0 {
		t.Fatalf("torn-header segment replayed %d records", len(recs))
	}
	w, err := OpenWriter(dir, Options{Meta: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(1, tt.New(5)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _, _ = collect(t, dir)
	if len(recs) != 1 {
		t.Fatalf("rebuilt segment replays %d records, want 1", len(recs))
	}
}

// TestSealedCorruptionFailsReplay: the torn-tail tolerance is strictly
// for the final segment — the same damage in a sealed segment is
// corruption and must fail.
func TestSealedCorruptionFailsReplay(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(dir, Options{SegmentBytes: headerSize + 40})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(55))
	for i := 0; i < 6; i++ {
		if err := w.Append(uint64(i), tt.Random(6, rng)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("need at least 2 segments, got %d", len(segs))
	}
	first := segs[0]
	if err := os.Truncate(first.Path, first.Size-3); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(dir, func(Segment, uint64, Record) error { return nil }); err == nil {
		t.Fatal("replay accepted a torn record in a sealed segment")
	}

	// A flipped payload byte in a sealed segment must also fail.
	dir2 := t.TempDir()
	w2, err := OpenWriter(dir2, Options{SegmentBytes: headerSize + 40})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := w2.Append(uint64(i), tt.Random(6, rng)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	segs2, err := ListSegments(dir2)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(segs2[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	raw[headerSize+frameSize+3] ^= 0xff
	if err := os.WriteFile(segs2[0].Path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(dir2, func(Segment, uint64, Record) error { return nil }); err == nil {
		t.Fatal("replay accepted a checksum-corrupt record in a sealed segment")
	}
}

// TestOfflineCompactorToleratesTornTail: with no live writer, the
// highest segment was active when its process died — a torn tail there
// is the ordinary crash artifact and must fold away, not fail the pass.
func TestOfflineCompactorToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	fs, lastSeg, start, end := buildLog(t, dir, 6, 4)
	if err := os.Truncate(lastSeg, (start+end)/2); err != nil {
		t.Fatal(err)
	}
	c := &Compactor{Dir: dir, N: 6}
	st, err := c.Compact()
	if err != nil {
		t.Fatalf("offline compaction of a crashed log: %v", err)
	}
	if st.RecordsFolded != 3 || st.Classes != 3 {
		t.Fatalf("compact stats %+v, want the 3 intact records folded", st)
	}
	snap, err := ReadSnapshot(dir, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range snap {
		if !f.Equal(fs[i]) {
			t.Fatalf("snapshot class %d corrupted", i)
		}
	}
}
