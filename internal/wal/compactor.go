package wal

import (
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/tt"
	"repro/internal/ttio"
)

// CompactStats summarizes one compaction pass.
type CompactStats struct {
	// SegmentsFolded and RecordsFolded count the sealed segments and the
	// records folded into the snapshot (and then deleted). Zero folded
	// segments means the pass was a no-op.
	SegmentsFolded int   `json:"segments_folded"`
	RecordsFolded  int64 `json:"records_folded"`
	// Duplicates counts folded records whose table was already in the
	// snapshot — the crash-window overlap compaction exists to absorb.
	Duplicates int64 `json:"duplicates"`
	// Classes is the class count of the resulting snapshot.
	Classes int `json:"classes"`
	// SnapshotBytes is the size of the snapshot written by this pass, zero
	// for a no-op pass.
	SnapshotBytes int64 `json:"snapshot_bytes"`
}

// Compactor folds a WAL directory's sealed segments, together with the
// previous snapshot, into a fresh snapshot, then deletes the folded
// segments. Recovery after compaction reads one snapshot plus whatever
// was appended since, instead of replaying the log's whole history.
//
// Dedup during the fold is by exact truth-table equality: every logged
// record was a distinct certified class in the store that wrote it, so
// the only overlap a fold can encounter is a record also present in the
// snapshot — the window where a previous compaction crashed between
// writing the snapshot and deleting the folded segments.
type Compactor struct {
	// Dir is the WAL directory.
	Dir string
	// N is the directory's arity; folded records of any other arity fail
	// the pass.
	N int
	// W, when set, is the live writer appending to Dir: Compact seals its
	// active segment first so every record logged so far is foldable, and
	// only segments below the writer's active sequence are touched. A nil
	// W compacts an offline directory (all segments are sealed).
	W *Writer

	mu sync.Mutex // serializes Compact passes
}

// Compact runs one compaction pass. It is safe to run while W keeps
// appending: live appends go to the active segment, which is never
// touched. A pass with nothing to fold returns a zero-fold CompactStats
// without rewriting the snapshot.
func (c *Compactor) Compact() (CompactStats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()

	activeSeq := uint64(math.MaxUint64)
	if c.W != nil {
		seq, err := c.W.Seal()
		if err != nil {
			return CompactStats{}, err
		}
		activeSeq = seq
	}
	segs, err := ListSegments(c.Dir)
	if err != nil {
		return CompactStats{}, err
	}
	sealed := segs[:0:0]
	for _, s := range segs {
		if s.Seq < activeSeq {
			sealed = append(sealed, s)
		}
	}
	var st CompactStats
	if len(sealed) == 0 {
		if classes, err := ReadSnapshot(c.Dir, c.N); err == nil {
			st.Classes = len(classes)
		}
		return st, nil
	}

	classes, err := ReadSnapshot(c.Dir, c.N)
	if err != nil {
		return st, err
	}
	seen := make(map[string]bool, len(classes))
	for _, f := range classes {
		seen[tableKey(f)] = true
	}
	// With a live writer every folded segment is genuinely sealed and a
	// torn record in one is corruption. Offline (no writer) the highest
	// segment was an active segment when its process died, so a torn tail
	// there is the ordinary crash artifact — tolerated and discarded, just
	// as OpenWriter would truncate it.
	rst, err := replaySegments(sealed, c.W == nil, func(seg Segment, _ uint64, rec Record) error {
		if rec.Arity != c.N {
			return fmt.Errorf("wal: %s holds an arity-%d record, directory serves arity %d", seg.Path, rec.Arity, c.N)
		}
		if k := tableKey(rec.TT); !seen[k] {
			seen[k] = true
			classes = append(classes, rec.TT)
		} else {
			st.Duplicates++
		}
		return nil
	})
	if err != nil {
		return st, err
	}
	st.SegmentsFolded = len(sealed)
	st.RecordsFolded = rst.Records
	st.Classes = len(classes)

	// Publish the fresh snapshot atomically: write aside, fsync, rename
	// over the old one, fsync the directory. A crash anywhere in this
	// sequence leaves either the old snapshot with all segments (nothing
	// lost) or the new snapshot with stale segments (the duplicates the
	// fold dedups next time).
	tmp := filepath.Join(c.Dir, SnapshotFile+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return st, fmt.Errorf("wal: %w", err)
	}
	werr := ttio.Write(f, classes, fmt.Sprintf("wal snapshot n=%d classes=%d folded=%d segments", c.N, len(classes), len(sealed)))
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return st, fmt.Errorf("wal: %w", werr)
	}
	if info, err := os.Stat(tmp); err == nil {
		st.SnapshotBytes = info.Size()
	}
	if err := os.Rename(tmp, filepath.Join(c.Dir, SnapshotFile)); err != nil {
		os.Remove(tmp)
		return st, fmt.Errorf("wal: %w", err)
	}
	syncDir(c.Dir)

	for _, s := range sealed {
		if err := os.Remove(s.Path); err != nil && !os.IsNotExist(err) {
			return st, fmt.Errorf("wal: %w", err)
		}
	}
	syncDir(c.Dir)
	return st, nil
}

// Run compacts every interval until ctx is cancelled — the background-
// goroutine mode. Pass errors are delivered to onErr (may be nil) and do
// not stop the loop.
func (c *Compactor) Run(ctx context.Context, every time.Duration, onErr func(error)) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if _, err := c.Compact(); err != nil && onErr != nil {
				onErr(err)
			}
		}
	}
}

// tableKey packs a table's words into a map key for exact-equality dedup.
func tableKey(f *tt.TT) string {
	words := f.Words()
	b := make([]byte, 0, 8*len(words))
	for _, w := range words {
		b = append(b,
			byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
			byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
	}
	return string(b)
}
