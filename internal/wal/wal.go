// Package wal implements the durability subsystem of the class store: a
// segmented append-only log of class-insert records plus the compaction
// that folds sealed segments into ttio snapshots.
//
// A WAL directory holds the state of one store:
//
//	snapshot.tt    ttio workload snapshot — the compacted base state
//	00000001.wal   log segments, replayed in sequence order after the
//	00000002.wal   snapshot; the highest sequence is the active segment
//	...            being appended, all lower sequences are sealed
//
// Each segment starts with a 16-byte header (magic + a caller-chosen
// 64-bit meta word, which the store uses as a fingerprint of the MSV key
// configuration) followed by CRC32-framed records. A record carries the
// arity, the 64-bit class key and the raw truth-table words of one
// certified new-class insert, so replay can rebuild a store without
// recomputing signatures: Writer appends them (buffered, group-fsynced,
// rotating segments at a size threshold), Replay streams them back in
// insertion order, tolerating a torn tail record in the final segment
// after a crash (OpenWriter truncates that tail before appending again),
// and Compactor folds the sealed segments together with the previous
// snapshot into a fresh snapshot and deletes the folded segments.
//
// Reader is the streaming form of the same framing: it decodes one
// segment's bytes incrementally from any record boundary, distinguishing
// a clean end (io.EOF), a stream caught mid-append (ErrPartial — resume
// later from Offset) and corruption (ErrFrame). Replay is built on it,
// and so is WAL-shipping replication (internal/replica), which tails a
// live primary's segments over HTTP with resumable offsets.
//
// The package is self-contained below internal/store: it knows truth
// tables and the snapshot file format (internal/tt, internal/ttio) but
// nothing about stores, services or federation, which layer recovery and
// per-arity directory management on top.
package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// SnapshotFile is the name of the compacted base snapshot within a WAL
// directory, a ttio workload file.
const SnapshotFile = "snapshot.tt"

// DefaultSegmentBytes is the segment rotation threshold used when
// Options.SegmentBytes is zero.
const DefaultSegmentBytes = 4 << 20

// segSuffix is the segment file extension; names are zero-padded decimal
// sequence numbers, so lexical order is sequence order.
const segSuffix = ".wal"

// Segment describes one log segment file on disk.
type Segment struct {
	// Seq is the segment's sequence number; replay order is increasing Seq.
	Seq uint64
	// Path is the segment file path.
	Path string
	// Size is the file size in bytes at listing time.
	Size int64
}

// SegmentPath names segment seq within dir. Segment files are zero-padded
// decimal sequence numbers with the .wal suffix, so lexical order is
// sequence order; the replication endpoints use this to serve a segment
// named only by its sequence number.
func SegmentPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%08d%s", seq, segSuffix))
}

// ListSegments returns the log segments in dir in replay (sequence)
// order. Files that do not look like segments are ignored. A missing
// directory lists as empty.
func ListSegments(dir string) ([]Segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs []Segment
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(name, segSuffix), 10, 64)
		if err != nil || seq == 0 {
			continue
		}
		info, err := e.Info()
		if err != nil {
			// Deleted between ReadDir and Info — a stats read racing a
			// concurrent compaction's segment removal. Not an error; the
			// segment is simply gone.
			if os.IsNotExist(err) {
				continue
			}
			return nil, fmt.Errorf("wal: %w", err)
		}
		segs = append(segs, Segment{Seq: seq, Path: filepath.Join(dir, name), Size: info.Size()})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].Seq < segs[j].Seq })
	return segs, nil
}

// syncDir fsyncs a directory so metadata operations (segment creation,
// snapshot rename, segment deletion) survive a crash. Best effort: some
// filesystems refuse directory fsync, and losing only metadata reverts to
// a state replay already handles.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
