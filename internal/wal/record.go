package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/tt"
)

// Segment header: 8 magic bytes then the caller's 64-bit meta word,
// little-endian. The magic doubles as a format version.
var segMagic = [8]byte{'n', 'p', 'n', 'w', 'a', 'l', '1', '\n'}

const headerSize = 16

// Record frame: a little-endian uint32 payload length, a uint32 CRC32
// (IEEE) of the payload, then the payload itself — one byte of arity, the
// little-endian uint64 class key, and the truth-table words little-endian.
// The frame is what makes a torn tail detectable: a record whose header,
// payload or checksum is incomplete or inconsistent marks the end of the
// valid prefix.
const frameSize = 8

// Record is one logged class insert.
type Record struct {
	// Arity is the function's variable count.
	Arity int
	// Key is the MSV class key the function was inserted under.
	Key uint64
	// TT is the inserted class representative.
	TT *tt.TT
}

// words returns the backing word count of an n-variable table, mirroring
// the tt package's layout (one word up to 6 variables, 2^(n-6) beyond).
func words(n int) int {
	if n <= 6 {
		return 1
	}
	return 1 << (n - 6)
}

// payloadSize returns the record payload length for arity n.
func payloadSize(n int) int { return 1 + 8 + 8*words(n) }

// maxPayload bounds a credible payload length; anything larger in a frame
// header is corruption.
var maxPayload = payloadSize(tt.MaxVars)

// appendRecord appends the framed record (key, f) to dst and returns the
// extended slice.
func appendRecord(dst []byte, key uint64, f *tt.TT) []byte {
	n := f.NumVars()
	size := payloadSize(n)
	start := len(dst)
	dst = append(dst, make([]byte, frameSize+size)...)
	payload := dst[start+frameSize:]
	payload[0] = byte(n)
	binary.LittleEndian.PutUint64(payload[1:9], key)
	for i, w := range f.Words() {
		binary.LittleEndian.PutUint64(payload[9+8*i:], w)
	}
	binary.LittleEndian.PutUint32(dst[start:], uint32(size))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.ChecksumIEEE(payload))
	return dst
}

// parsePayload decodes a CRC-verified record payload. A payload that
// checksums correctly but does not parse is not a torn tail — the bytes
// are what some writer framed — so parse errors are surfaced as
// corruption rather than tolerated.
func parsePayload(p []byte) (Record, error) {
	if len(p) < 9 {
		return Record{}, fmt.Errorf("wal: record payload of %d bytes is shorter than its fixed fields", len(p))
	}
	n := int(p[0])
	if n < 1 || n > tt.MaxVars {
		return Record{}, fmt.Errorf("wal: record arity %d out of range 1..%d", n, tt.MaxVars)
	}
	if len(p) != payloadSize(n) {
		return Record{}, fmt.Errorf("wal: record payload of %d bytes, want %d for arity %d", len(p), payloadSize(n), n)
	}
	key := binary.LittleEndian.Uint64(p[1:9])
	f := tt.New(n)
	w := f.Words()
	for i := range w {
		w[i] = binary.LittleEndian.Uint64(p[9+8*i:])
	}
	if n < 6 && w[0]>>(1<<n) != 0 {
		return Record{}, fmt.Errorf("wal: record table has bits above 2^%d", n)
	}
	return Record{Arity: n, Key: key, TT: f}, nil
}

// appendHeader appends a segment header with the given meta word.
func appendHeader(dst []byte, meta uint64) []byte {
	dst = append(dst, segMagic[:]...)
	var m [8]byte
	binary.LittleEndian.PutUint64(m[:], meta)
	return append(dst, m[:]...)
}

// parseHeader validates a segment header and returns its meta word.
func parseHeader(h []byte) (uint64, error) {
	if len(h) < headerSize {
		return 0, fmt.Errorf("wal: segment header of %d bytes, want %d", len(h), headerSize)
	}
	for i, b := range segMagic {
		if h[i] != b {
			return 0, fmt.Errorf("wal: bad segment magic %q", h[:8])
		}
	}
	return binary.LittleEndian.Uint64(h[8:16]), nil
}
