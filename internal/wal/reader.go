package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/tt"
	"repro/internal/ttio"
)

// ReplayStats summarizes one replay pass.
type ReplayStats struct {
	// Segments is the number of segment files visited.
	Segments int
	// Records is the number of valid records delivered.
	Records int64
	// Bytes is the total valid bytes read (headers and frames included).
	Bytes int64
	// TornBytes is the length of the discarded torn tail of the final
	// segment, zero after a clean shutdown.
	TornBytes int64
}

// Replay streams every record in dir's log to fn in insertion order:
// segments in sequence order, records in file order within each segment.
// fn receives the record's segment and the segment's meta word, so a
// caller can decide per segment whether to trust the logged keys.
//
// A torn tail — a record left incomplete by a crash mid-append — is
// tolerated only in the final segment: replay of that segment stops at
// the last valid record with no error and reports the discarded length in
// TornBytes. (Replay itself is read-only; OpenWriter truncates the tail
// before appending again.) The same damage in a sealed segment is real
// corruption and fails the replay. An error from fn aborts the replay.
func Replay(dir string, fn func(seg Segment, meta uint64, rec Record) error) (ReplayStats, error) {
	segs, err := ListSegments(dir)
	if err != nil {
		return ReplayStats{}, err
	}
	return replaySegments(segs, true, fn)
}

// ReplaySegments replays exactly the given segments in order. Unlike
// Replay it never tolerates a torn record: callers use it for sealed
// segments (compaction), where a short record means corruption.
func ReplaySegments(segs []Segment, fn func(seg Segment, meta uint64, rec Record) error) (ReplayStats, error) {
	return replaySegments(segs, false, fn)
}

func replaySegments(segs []Segment, tornTailOK bool, fn func(seg Segment, meta uint64, rec Record) error) (ReplayStats, error) {
	var st ReplayStats
	for i, seg := range segs {
		last := tornTailOK && i == len(segs)-1
		records, valid, torn, err := replaySegment(seg, last, fn)
		st.Segments++
		st.Records += records
		st.Bytes += valid
		st.TornBytes += torn
		if err != nil {
			return st, err
		}
	}
	return st, nil
}

// replaySegment streams one segment's records to fn. When last is true a
// torn tail ends the segment silently and its length is returned;
// otherwise it is an error. valid is the byte length of the intact prefix
// (header plus whole records).
func replaySegment(seg Segment, last bool, fn func(seg Segment, meta uint64, rec Record) error) (records, valid, torn int64, err error) {
	f, err := os.Open(seg.Path)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)

	tear := func(what string) (int64, int64, int64, error) {
		if last {
			return records, valid, seg.Size - valid, nil
		}
		return records, valid, 0, fmt.Errorf("wal: %s: %s at offset %d in sealed segment", seg.Path, what, valid)
	}

	var hdr [headerSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return tear("short or missing header")
	}
	meta, err := parseHeader(hdr[:])
	if err != nil {
		if last {
			return 0, 0, seg.Size, nil
		}
		return 0, 0, 0, fmt.Errorf("wal: %s: %w", seg.Path, err)
	}
	valid = headerSize

	var frame [frameSize]byte
	payload := make([]byte, maxPayload)
	for {
		if _, err := io.ReadFull(br, frame[:]); err != nil {
			if err == io.EOF {
				return records, valid, 0, nil // clean end of segment
			}
			return tear("torn record frame")
		}
		size := int(binary.LittleEndian.Uint32(frame[:4]))
		if size < 9 || size > maxPayload {
			return tear(fmt.Sprintf("implausible record length %d", size))
		}
		p := payload[:size]
		if _, err := io.ReadFull(br, p); err != nil {
			return tear("torn record payload")
		}
		if crc32.ChecksumIEEE(p) != binary.LittleEndian.Uint32(frame[4:8]) {
			return tear("record checksum mismatch")
		}
		rec, perr := parsePayload(p)
		if perr != nil {
			// CRC-valid but unparseable: corruption or format skew, never a
			// torn tail — fail loudly even in the final segment.
			return records, valid, 0, fmt.Errorf("wal: %s: offset %d: %w", seg.Path, valid, perr)
		}
		valid += frameSize + int64(size)
		records++
		if err := fn(seg, meta, rec); err != nil {
			return records, valid, 0, err
		}
	}
}

// scanSegment validates a segment without delivering records: it returns
// the segment's meta word, the length of its intact prefix and the record
// count within it. headerOK reports whether the header itself parsed; a
// false return means the file should be rebuilt from scratch. OpenWriter
// uses this to truncate a torn tail before resuming appends.
func scanSegment(path string) (meta uint64, valid int64, records int64, headerOK bool, err error) {
	info, err := os.Stat(path)
	if err != nil {
		return 0, 0, 0, false, fmt.Errorf("wal: %w", err)
	}
	seg := Segment{Path: path, Size: info.Size()}
	records, valid, _, err = replaySegment(seg, true, func(Segment, uint64, Record) error { return nil })
	if err != nil {
		return 0, 0, 0, false, err
	}
	if valid < headerSize {
		return 0, 0, 0, false, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, 0, false, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	var hdr [headerSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return 0, 0, 0, false, fmt.Errorf("wal: %w", err)
	}
	meta, err = parseHeader(hdr[:])
	if err != nil {
		return 0, 0, 0, false, err
	}
	return meta, valid, records, true, nil
}

// ReadSnapshot loads dir's base snapshot, the ttio workload the last
// compaction wrote (or an operator seeded). It returns nil with no error
// when no snapshot exists.
func ReadSnapshot(dir string, n int) ([]*tt.TT, error) {
	f, err := os.Open(filepath.Join(dir, SnapshotFile))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	return ttio.Read(f, n)
}
