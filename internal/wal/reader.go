package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/tt"
	"repro/internal/ttio"
)

// ErrPartial reports that a segment byte stream ended in the middle of a
// record (or of the header): the bytes so far are a valid prefix, but the
// tail is incomplete. When tailing a segment that is being appended to —
// a follower streaming a primary's active segment, or a reader racing the
// writer's buffered flushes — this is the ordinary "caught up mid-append"
// condition: resume later from Offset. In a sealed segment it is a torn
// tail (crash artifact) or corruption.
var ErrPartial = errors.New("wal: incomplete record at end of stream")

// ErrFrame reports bytes that are structurally not a valid record frame:
// bad segment magic, an implausible record length, or a checksum
// mismatch. Unlike ErrPartial it never resolves by reading further; in a
// final segment it is treated as a torn tail (interleaved page writes on
// power loss can corrupt the tail without shortening it), anywhere else
// it is corruption.
var ErrFrame = errors.New("wal: invalid record frame")

// Reader decodes one segment's byte stream incrementally — the streaming
// counterpart of Replay, and the framing shared by crash recovery,
// compaction and the replication endpoints. It consumes any io.Reader
// positioned at a record boundary within a segment: offset 0 (the whole
// segment, header included) or the Offset() a previous Reader reached
// (resuming a tail, e.g. an HTTP range read of a live segment).
//
// Next returns records until the stream ends: io.EOF at a clean record
// boundary, ErrPartial when the stream stops mid-record (retry later from
// Offset with a fresh stream — the Reader has buffered past the boundary,
// so it cannot itself continue), ErrFrame or a parse error on corrupt
// bytes. Offset always names the boundary after the last whole record, so
// a tailing caller can hand it straight back as the next resume point.
type Reader struct {
	br       *bufio.Reader
	offset   int64
	meta     uint64
	haveMeta bool
	payload  []byte
}

// NewReader decodes a segment stream. offset is the position of r within
// the segment file and must be a record boundary: 0 to read the header
// too, or a previous Reader's Offset() to resume mid-segment (the header
// is then not re-read, so Meta reports false).
func NewReader(r io.Reader, offset int64) *Reader {
	return &Reader{
		br:      bufio.NewReaderSize(r, 1<<16),
		offset:  offset,
		payload: make([]byte, maxPayload),
	}
}

// Offset returns the boundary after the last whole record (or header)
// consumed — the segment position to resume from after an io.EOF or
// ErrPartial.
func (r *Reader) Offset() int64 { return r.offset }

// Meta returns the segment header's meta word. It reports false until the
// header has been read, and always for a Reader resumed past the header
// (the caller learned the meta from the segment manifest instead).
func (r *Reader) Meta() (uint64, bool) { return r.meta, r.haveMeta }

// Next returns the next record. See the Reader doc for the error
// contract: io.EOF ends a clean stream, ErrPartial an incomplete one,
// ErrFrame and parse errors report corruption. After any error the Reader
// is positioned at Offset() logically but must be replaced (with a fresh
// stream) to continue.
func (r *Reader) Next() (Record, error) {
	if r.offset == 0 {
		var hdr [headerSize]byte
		if _, err := io.ReadFull(r.br, hdr[:]); err != nil {
			return Record{}, fmt.Errorf("%w: short or missing segment header", ErrPartial)
		}
		meta, err := parseHeader(hdr[:])
		if err != nil {
			return Record{}, fmt.Errorf("%w: %v", ErrFrame, err)
		}
		r.meta, r.haveMeta = meta, true
		r.offset = headerSize
	}
	var frame [frameSize]byte
	if _, err := io.ReadFull(r.br, frame[:]); err != nil {
		if err == io.EOF {
			return Record{}, io.EOF // clean end at a record boundary
		}
		return Record{}, fmt.Errorf("%w: torn record frame at offset %d", ErrPartial, r.offset)
	}
	size := int(binary.LittleEndian.Uint32(frame[:4]))
	if size < 9 || size > maxPayload {
		return Record{}, fmt.Errorf("%w: implausible record length %d at offset %d", ErrFrame, size, r.offset)
	}
	p := r.payload[:size]
	if _, err := io.ReadFull(r.br, p); err != nil {
		return Record{}, fmt.Errorf("%w: torn record payload at offset %d", ErrPartial, r.offset)
	}
	if crc32.ChecksumIEEE(p) != binary.LittleEndian.Uint32(frame[4:8]) {
		return Record{}, fmt.Errorf("%w: record checksum mismatch at offset %d", ErrFrame, r.offset)
	}
	rec, perr := parsePayload(p)
	if perr != nil {
		// CRC-valid but unparseable: corruption or format skew, never a
		// torn tail — fail loudly everywhere.
		return Record{}, fmt.Errorf("wal: offset %d: %w", r.offset, perr)
	}
	r.offset += frameSize + int64(size)
	return rec, nil
}

// ReadSegmentMeta returns the meta word of the segment file at path, read
// from its 16-byte header.
func ReadSegmentMeta(path string) (uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	var hdr [headerSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return 0, fmt.Errorf("wal: %s: short segment header: %w", path, err)
	}
	meta, err := parseHeader(hdr[:])
	if err != nil {
		return 0, fmt.Errorf("wal: %s: %w", path, err)
	}
	return meta, nil
}

// ReplayStats summarizes one replay pass.
type ReplayStats struct {
	// Segments is the number of segment files visited.
	Segments int
	// Records is the number of valid records delivered.
	Records int64
	// Bytes is the total valid bytes read (headers and frames included).
	Bytes int64
	// TornBytes is the length of the discarded torn tail of the final
	// segment, zero after a clean shutdown.
	TornBytes int64
}

// Replay streams every record in dir's log to fn in insertion order:
// segments in sequence order, records in file order within each segment.
// fn receives the record's segment and the segment's meta word, so a
// caller can decide per segment whether to trust the logged keys.
//
// A torn tail — a record left incomplete by a crash mid-append — is
// tolerated only in the final segment: replay of that segment stops at
// the last valid record with no error and reports the discarded length in
// TornBytes. (Replay itself is read-only; OpenWriter truncates the tail
// before appending again.) The same damage in a sealed segment is real
// corruption and fails the replay. An error from fn aborts the replay.
func Replay(dir string, fn func(seg Segment, meta uint64, rec Record) error) (ReplayStats, error) {
	segs, err := ListSegments(dir)
	if err != nil {
		return ReplayStats{}, err
	}
	return replaySegments(segs, true, fn)
}

// ReplaySegments replays exactly the given segments in order. Unlike
// Replay it never tolerates a torn record: callers use it for sealed
// segments (compaction), where a short record means corruption.
func ReplaySegments(segs []Segment, fn func(seg Segment, meta uint64, rec Record) error) (ReplayStats, error) {
	return replaySegments(segs, false, fn)
}

func replaySegments(segs []Segment, tornTailOK bool, fn func(seg Segment, meta uint64, rec Record) error) (ReplayStats, error) {
	var st ReplayStats
	for i, seg := range segs {
		last := tornTailOK && i == len(segs)-1
		records, valid, torn, err := replaySegment(seg, last, fn)
		st.Segments++
		st.Records += records
		st.Bytes += valid
		st.TornBytes += torn
		if err != nil {
			return st, err
		}
	}
	return st, nil
}

// replaySegment streams one segment's records to fn through a Reader.
// When last is true a torn tail (ErrPartial or ErrFrame) ends the segment
// silently and its length is returned; otherwise it is an error. valid is
// the byte length of the intact prefix (header plus whole records).
func replaySegment(seg Segment, last bool, fn func(seg Segment, meta uint64, rec Record) error) (records, valid, torn int64, err error) {
	f, err := os.Open(seg.Path)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	r := NewReader(f, 0)
	for {
		rec, rerr := r.Next()
		switch {
		case rerr == nil:
		case errors.Is(rerr, io.EOF):
			return records, r.Offset(), 0, nil // clean end of segment
		case errors.Is(rerr, ErrPartial) || errors.Is(rerr, ErrFrame):
			if last {
				return records, r.Offset(), seg.Size - r.Offset(), nil
			}
			return records, r.Offset(), 0, fmt.Errorf("wal: %s: %v in sealed segment", seg.Path, rerr)
		default:
			return records, r.Offset(), 0, fmt.Errorf("wal: %s: %w", seg.Path, rerr)
		}
		meta, _ := r.Meta()
		records++
		if err := fn(seg, meta, rec); err != nil {
			return records, r.Offset(), 0, err
		}
	}
}

// scanSegment validates a segment without delivering records: it returns
// the segment's meta word, the length of its intact prefix and the record
// count within it. headerOK reports whether the header itself parsed; a
// false return means the file should be rebuilt from scratch. OpenWriter
// uses this to truncate a torn tail before resuming appends.
func scanSegment(path string) (meta uint64, valid int64, records int64, headerOK bool, err error) {
	info, err := os.Stat(path)
	if err != nil {
		return 0, 0, 0, false, fmt.Errorf("wal: %w", err)
	}
	seg := Segment{Path: path, Size: info.Size()}
	records, valid, _, err = replaySegment(seg, true, func(Segment, uint64, Record) error { return nil })
	if err != nil {
		return 0, 0, 0, false, err
	}
	if valid < headerSize {
		return 0, 0, 0, false, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, 0, false, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	var hdr [headerSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return 0, 0, 0, false, fmt.Errorf("wal: %w", err)
	}
	meta, err = parseHeader(hdr[:])
	if err != nil {
		return 0, 0, 0, false, err
	}
	return meta, valid, records, true, nil
}

// ReadSnapshot loads dir's base snapshot, the ttio workload the last
// compaction wrote (or an operator seeded). It returns nil with no error
// when no snapshot exists.
func ReadSnapshot(dir string, n int) ([]*tt.TT, error) {
	f, err := os.Open(filepath.Join(dir, SnapshotFile))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	return ttio.Read(f, n)
}
