package wal

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/tt"
	"repro/internal/ttio"
)

// appendAll logs fs with synthetic keys i*31+7 and returns the keys.
func appendAll(t *testing.T, w *Writer, fs []*tt.TT) []uint64 {
	t.Helper()
	keys := make([]uint64, len(fs))
	for i, f := range fs {
		keys[i] = uint64(i)*31 + 7
		if err := w.Append(keys[i], f); err != nil {
			t.Fatal(err)
		}
	}
	return keys
}

// collect replays dir into a flat record slice.
func collect(t *testing.T, dir string) ([]Record, []uint64, ReplayStats) {
	t.Helper()
	var recs []Record
	var metas []uint64
	st, err := Replay(dir, func(_ Segment, meta uint64, rec Record) error {
		recs = append(recs, rec)
		metas = append(metas, meta)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return recs, metas, st
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(dir, Options{Meta: 42})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	var fs []*tt.TT
	for _, n := range []int{4, 6, 8, 4, 10} {
		fs = append(fs, tt.Random(n, rng))
	}
	keys := appendAll(t, w, fs)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := w.Append(1, fs[0]); err != ErrClosed {
		t.Fatalf("append after close: %v", err)
	}

	recs, metas, st := collect(t, dir)
	if len(recs) != len(fs) || st.Records != int64(len(fs)) || st.TornBytes != 0 {
		t.Fatalf("replayed %d records, stats %+v", len(recs), st)
	}
	for i, rec := range recs {
		if rec.Key != keys[i] || rec.Arity != fs[i].NumVars() || !rec.TT.Equal(fs[i]) {
			t.Fatalf("record %d mismatch: key %d arity %d", i, rec.Key, rec.Arity)
		}
		if metas[i] != 42 {
			t.Fatalf("record %d meta %d, want 42", i, metas[i])
		}
	}
}

func TestSegmentRotationAndReopen(t *testing.T) {
	dir := t.TempDir()
	// ~3 arity-6 records (33 bytes each) per segment.
	opts := Options{SegmentBytes: headerSize + 100, Meta: 7}
	w, err := OpenWriter(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	var fs []*tt.TT
	for i := 0; i < 20; i++ {
		fs = append(fs, tt.Random(6, rng))
	}
	appendAll(t, w, fs)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("got %d segments, want rotation to produce several", len(segs))
	}
	for i := 1; i < len(segs); i++ {
		if segs[i].Seq <= segs[i-1].Seq {
			t.Fatalf("segments out of order: %+v", segs)
		}
	}

	// Reopen and append more: replay must see old then new, in order.
	w2, err := OpenWriter(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	extra := tt.Random(6, rng)
	if err := w2.Append(999, extra); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _, _ := collect(t, dir)
	if len(recs) != len(fs)+1 {
		t.Fatalf("replayed %d records, want %d", len(recs), len(fs)+1)
	}
	for i, f := range fs {
		if !recs[i].TT.Equal(f) {
			t.Fatalf("record %d mismatch after reopen", i)
		}
	}
	if recs[len(fs)].Key != 999 || !recs[len(fs)].TT.Equal(extra) {
		t.Fatal("appended record mismatch after reopen")
	}
}

// TestMetaChangeRotates: reopening a log with a different Meta word must
// not append into the old segment — replay reports per-segment metas.
func TestMetaChangeRotates(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(3))
	w, err := OpenWriter(dir, Options{Meta: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(10, tt.Random(5, rng)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWriter(dir, Options{Meta: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Append(11, tt.Random(5, rng)); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	_, metas, _ := collect(t, dir)
	if len(metas) != 2 || metas[0] != 1 || metas[1] != 2 {
		t.Fatalf("metas %v, want [1 2]", metas)
	}
}

func TestGroupFsync(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(dir, Options{FsyncEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	rng := rand.New(rand.NewSource(4))
	if err := w.Append(1, tt.Random(6, rng)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		st := w.Stats()
		if st.FsyncLagMillis == 0 && st.Fsyncs >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("group fsync never caught up: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestStats(t *testing.T) {
	dir := t.TempDir()
	opts := Options{SegmentBytes: headerSize + 70}
	w, err := OpenWriter(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	var fs []*tt.TT
	for i := 0; i < 7; i++ {
		fs = append(fs, tt.Random(6, rng))
	}
	appendAll(t, w, fs)
	st := w.Stats()
	if st.Records != 7 || st.Segments < 2 || st.SealedSegments != st.Segments-1 || st.Bytes == 0 {
		t.Fatalf("stats %+v", st)
	}
	if st.Rotations == 0 || st.Fsyncs == 0 {
		t.Fatalf("stats %+v", st)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCompactor(t *testing.T) {
	dir := t.TempDir()
	opts := Options{SegmentBytes: headerSize + 70, Meta: 9}
	w, err := OpenWriter(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	want := make(map[string]bool)
	var fs []*tt.TT
	for i := 0; i < 12; i++ {
		f := tt.Random(6, rng)
		fs = append(fs, f)
		want[f.Hex()] = true
	}
	appendAll(t, w, fs)

	c := &Compactor{Dir: dir, N: 6, W: w}
	st, err := c.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if st.SegmentsFolded == 0 || st.RecordsFolded != 12 || st.Classes != len(want) || st.Duplicates != 0 {
		t.Fatalf("compact stats %+v (want %d classes)", st, len(want))
	}
	segs, err := ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("%d segments survive compaction, want only the active one", len(segs))
	}

	// Snapshot + remaining log must reproduce exactly the logged classes.
	got := make(map[string]bool)
	snap, err := ReadSnapshot(dir, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range snap {
		got[f.Hex()] = true
	}
	if _, err := Replay(dir, func(_ Segment, _ uint64, rec Record) error {
		got[rec.TT.Hex()] = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("after compaction %d classes, want %d", len(got), len(want))
	}
	for h := range want {
		if !got[h] {
			t.Fatalf("class %s lost by compaction", h)
		}
	}

	// Appends continue after compaction; a second pass folds them too and
	// dedups nothing new.
	extra := tt.Random(6, rng)
	if err := w.Append(77, extra); err != nil {
		t.Fatal(err)
	}
	st2, err := c.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if st2.RecordsFolded != 1 || st2.Classes != len(want)+1 || st2.Duplicates != 0 {
		t.Fatalf("second compact stats %+v", st2)
	}

	// A no-op pass folds nothing and leaves the snapshot alone.
	before, err := os.Stat(filepath.Join(dir, SnapshotFile))
	if err != nil {
		t.Fatal(err)
	}
	st3, err := c.Compact()
	if err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(filepath.Join(dir, SnapshotFile))
	if err != nil {
		t.Fatal(err)
	}
	if st3.SegmentsFolded != 0 || st3.Classes != len(want)+1 || !after.ModTime().Equal(before.ModTime()) {
		t.Fatalf("no-op compact stats %+v (snapshot rewritten: %v)", st3, !after.ModTime().Equal(before.ModTime()))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCompactorFoldsStaleDuplicates simulates the crash window between
// snapshot publication and segment deletion: a record present both in the
// snapshot and in a sealed segment must fold to one class.
func TestCompactorFoldsStaleDuplicates(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(7))
	f := tt.Random(6, rng)

	// Seed the snapshot with f, then log f again as a "stale" record.
	snap, err := os.Create(filepath.Join(dir, SnapshotFile))
	if err != nil {
		t.Fatal(err)
	}
	if err := ttio.Write(snap, []*tt.TT{f}); err != nil {
		t.Fatal(err)
	}
	if err := snap.Close(); err != nil {
		t.Fatal(err)
	}
	w, err := OpenWriter(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(5, f); err != nil {
		t.Fatal(err)
	}
	g := tt.Random(6, rng)
	if err := w.Append(6, g); err != nil {
		t.Fatal(err)
	}

	c := &Compactor{Dir: dir, N: 6, W: w}
	st, err := c.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if st.Duplicates != 1 || st.Classes != 2 {
		t.Fatalf("compact stats %+v, want 1 duplicate and 2 classes", st)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestOfflineCompactor compacts a directory with no live writer: every
// segment is sealed and folded.
func TestOfflineCompactor(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(8))
	w, err := OpenWriter(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var fs []*tt.TT
	for i := 0; i < 5; i++ {
		fs = append(fs, tt.Random(7, rng))
	}
	appendAll(t, w, fs)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	c := &Compactor{Dir: dir, N: 7}
	st, err := c.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if st.SegmentsFolded != 1 || st.RecordsFolded != 5 || st.Classes != 5 {
		t.Fatalf("offline compact stats %+v", st)
	}
	segs, err := ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 0 {
		t.Fatalf("%d segments survive offline compaction, want 0", len(segs))
	}
	snap, err := ReadSnapshot(dir, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 5 {
		t.Fatalf("snapshot holds %d classes, want 5", len(snap))
	}
}

// TestConcurrentAppends exercises the writer's locking under the race
// detector: parallel appenders, a compaction mid-stream, and a full
// replay that must account for every append exactly once.
func TestConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(dir, Options{SegmentBytes: 1 << 12, FsyncEvery: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, per = 8, 50
	done := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			rng := rand.New(rand.NewSource(int64(100 + g)))
			for i := 0; i < per; i++ {
				if err := w.Append(uint64(g*per+i), tt.Random(6, rng)); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(g)
	}
	c := &Compactor{Dir: dir, N: 6, W: w}
	if _, err := c.Compact(); err != nil {
		t.Fatal(err)
	}
	for g := 0; g < goroutines; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	seen := make(map[uint64]bool)
	snap, err := ReadSnapshot(dir, 6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(dir, func(_ Segment, _ uint64, rec Record) error {
		if seen[rec.Key] {
			t.Fatalf("key %d replayed twice", rec.Key)
		}
		seen[rec.Key] = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Every append is either in the snapshot or still in the log.
	if got := len(snap) + len(seen); got != goroutines*per {
		t.Fatalf("snapshot %d + log %d = %d records, want %d", len(snap), len(seen), got, goroutines*per)
	}
}
