package wal

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/tt"
)

// ErrClosed is returned by appends to a closed Writer.
var ErrClosed = errors.New("wal: writer is closed")

// Options configures a Writer.
type Options struct {
	// SegmentBytes is the rotation threshold: a segment that has reached
	// this size is sealed and a new one started before the next append.
	// Zero means DefaultSegmentBytes.
	SegmentBytes int64
	// FsyncEvery is the group-fsync interval: appends are buffered and a
	// background flusher syncs them to disk at this period, bounding the
	// post-crash loss window to at most one interval of appends. Zero (the
	// default) flushes and fsyncs every Append — and every journal Commit
	// — so nothing acknowledged is ever lost, at a per-operation latency
	// cost.
	FsyncEvery time.Duration
	// Meta is stamped into every segment header this writer creates.
	// internal/store uses it as a fingerprint of the MSV key configuration
	// so replay knows whether logged class keys can be trusted.
	Meta uint64
	// ObserveFsync, when set, is called with the duration of every fsync —
	// the hook internal/obs uses to feed the fsync-latency histogram. It
	// runs under the writer's mutex (on the append path in every-append
	// mode), so it must be cheap and must not call back into the writer.
	ObserveFsync func(d time.Duration)
}

func (o Options) segmentBytes() int64 {
	if o.SegmentBytes <= 0 {
		return DefaultSegmentBytes
	}
	return o.SegmentBytes
}

// Stats is a point-in-time snapshot of a writer's log.
type Stats struct {
	// Segments and SealedSegments count the directory's segment files; the
	// difference (at most one) is the active segment.
	Segments       int `json:"segments"`
	SealedSegments int `json:"sealed_segments"`
	// Bytes is the total size of all segment files.
	Bytes int64 `json:"bytes"`
	// Records counts appends since this writer opened.
	Records int64 `json:"records"`
	// Fsyncs and Rotations count syncs and segment rotations since open.
	Fsyncs    int64 `json:"fsyncs"`
	Rotations int64 `json:"rotations"`
	// FsyncLagMillis is the age of the oldest append not yet fsynced —
	// the data currently at risk — or zero when the log is clean.
	FsyncLagMillis float64 `json:"fsync_lag_ms"`
}

// Writer appends class-insert records to a segmented log. Appends are
// buffered; durability is governed by Options.FsyncEvery. All methods are
// safe for concurrent use.
type Writer struct {
	dir  string
	opts Options

	mu         sync.Mutex
	f          *os.File
	bw         *bufio.Writer
	seq        uint64 // active segment sequence
	size       int64  // active segment size including buffered bytes
	durable    int64  // active segment bytes known fsynced (a record boundary)
	segRecords int64  // records in the active segment
	scratch    []byte
	dirty      bool
	firstDirty time.Time
	closed     bool

	records   atomic.Int64
	fsyncs    atomic.Int64
	rotations atomic.Int64

	stop chan struct{}
	done chan struct{}
}

// OpenWriter opens dir's log for appending, creating the directory if
// needed. Crash recovery happens here: a torn tail record in the last
// segment is truncated away (Replay already refuses to deliver it), and a
// last segment whose header is unreadable is rebuilt. Appends continue in
// the last segment unless it is full or was written under a different
// Meta word, in which case a fresh segment is started.
func OpenWriter(dir string, o Options) (*Writer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	// A crashed compaction may leave a half-written snapshot behind.
	if tmps, err := filepath.Glob(filepath.Join(dir, "*.tmp")); err == nil {
		for _, tmp := range tmps {
			os.Remove(tmp)
		}
	}
	w := &Writer{dir: dir, opts: o}
	segs, err := ListSegments(dir)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		if err := w.createSegment(1); err != nil {
			return nil, err
		}
	} else {
		last := segs[len(segs)-1]
		meta, valid, records, headerOK, err := scanSegment(last.Path)
		if err != nil {
			return nil, err
		}
		switch {
		case !headerOK:
			// Crash before the header hit disk: rebuild the file in place.
			if err := os.Remove(last.Path); err != nil {
				return nil, fmt.Errorf("wal: %w", err)
			}
			if err := w.createSegment(last.Seq); err != nil {
				return nil, err
			}
		case meta != o.Meta || valid >= o.segmentBytes():
			// Stale configuration or already full: seal it as-is (after
			// dropping any torn tail) and start fresh.
			if valid < last.Size {
				if err := os.Truncate(last.Path, valid); err != nil {
					return nil, fmt.Errorf("wal: %w", err)
				}
			}
			if err := w.createSegment(last.Seq + 1); err != nil {
				return nil, err
			}
		default:
			if valid < last.Size {
				if err := os.Truncate(last.Path, valid); err != nil {
					return nil, fmt.Errorf("wal: %w", err)
				}
			}
			f, err := os.OpenFile(last.Path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return nil, fmt.Errorf("wal: %w", err)
			}
			w.f, w.bw = f, bufio.NewWriterSize(f, 1<<16)
			w.seq, w.size, w.segRecords = last.Seq, valid, records
			w.durable = valid // the scanned prefix is on disk
		}
	}
	if o.FsyncEvery > 0 {
		w.stop = make(chan struct{})
		w.done = make(chan struct{})
		go w.flusher(o.FsyncEvery)
	}
	return w, nil
}

// createSegment starts a new segment file with a fresh header, fsyncing
// the header and the directory entry so the segment itself is durable.
func (w *Writer) createSegment(seq uint64) error {
	path := SegmentPath(w.dir, seq)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	hdr := appendHeader(nil, w.opts.Meta)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	syncDir(w.dir)
	w.f, w.bw = f, bufio.NewWriterSize(f, 1<<16)
	w.seq, w.size, w.segRecords = seq, int64(len(hdr)), 0
	w.durable = int64(len(hdr)) // header was fsynced above
	return nil
}

// Append logs one class insert. With FsyncEvery zero the record is on
// disk when Append returns; otherwise it is durable after the next group
// fsync (at most one interval away).
func (w *Writer) Append(key uint64, f *tt.TT) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.rotateIfFullLocked(); err != nil {
		return err
	}
	if err := w.appendLocked(key, f); err != nil {
		return err
	}
	if w.opts.FsyncEvery <= 0 {
		return w.syncLocked()
	}
	return nil
}

// rotateIfFullLocked rotates when the active segment has reached the
// threshold. Rotation fsyncs and creates files, so the journal path must
// only reach it from Commit — after the store shard lock is released —
// never from LogInsert.
func (w *Writer) rotateIfFullLocked() error {
	if w.closed {
		return ErrClosed
	}
	if w.size >= w.opts.segmentBytes() && w.segRecords > 0 {
		return w.rotateLocked()
	}
	return nil
}

// appendLocked buffers one record. It never syncs and never rotates:
// it is the only WAL work allowed under a store shard lock.
func (w *Writer) appendLocked(key uint64, f *tt.TT) error {
	if w.closed {
		return ErrClosed
	}
	w.scratch = appendRecord(w.scratch[:0], key, f)
	n, err := w.bw.Write(w.scratch)
	w.size += int64(n)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	w.segRecords++
	w.records.Add(1)
	if !w.dirty {
		w.dirty = true
		w.firstDirty = time.Now()
	}
	return nil
}

// LogInsert and Commit are the store.Journal hook. LogInsert only
// buffers the record — it is called under a store shard lock, so it must
// never pay a disk sync or touch segment files there (the lockfsync
// analyzer enforces this). Commit, called by the store after the class
// is published and the lock released, owes the deferred work: it rotates
// a full segment, and in every-append mode fsyncs the acknowledged
// appends (group mode leaves durability to the background flusher). A
// segment can therefore overshoot SegmentBytes by the records buffered
// between commits — bounded by one insert batch.
func (w *Writer) LogInsert(key uint64, f *tt.TT) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appendLocked(key, f)
}

// Commit implements store.Journal; see LogInsert.
func (w *Writer) Commit() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if err := w.rotateIfFullLocked(); err != nil {
		return err
	}
	if w.opts.FsyncEvery > 0 {
		return nil
	}
	return w.syncLocked()
}

// LogInsertCtx implements store.CtxJournal: LogInsert under a wal.append
// tracing span, so a traced insert shows how long the buffered append
// took. With tracing off the span is nil and this is LogInsert plus a
// context lookup.
func (w *Writer) LogInsertCtx(ctx context.Context, key uint64, f *tt.TT) error {
	_, sp := obs.StartSpan(ctx, "wal.append")
	err := w.LogInsert(key, f)
	sp.End()
	return err
}

// CommitCtx implements store.CtxJournal: Commit under a wal.fsync span.
// In group-fsync mode the background flusher owns durability and the
// span records a zero-length wait (mode=group); in every-append mode it
// measures the request's actual fsync stall.
func (w *Writer) CommitCtx(ctx context.Context) error {
	_, sp := obs.StartSpan(ctx, "wal.fsync")
	if sp != nil {
		if w.opts.FsyncEvery > 0 {
			sp.SetAttr("mode", "group")
		} else {
			sp.SetAttr("mode", "every-append")
		}
	}
	err := w.Commit()
	sp.End()
	return err
}

// DurableSize returns the active segment's sequence and the length of
// its prefix known to be fsynced — always a record boundary, since every
// sync flushes whole buffered records. The replication endpoints serve
// the active segment only up to this boundary, so a follower can never
// apply a record its primary might lose to a power cut; sealed segments
// (sequence below the returned one) are durable in full.
func (w *Writer) DurableSize() (seq uint64, size int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq, w.durable
}

// Sync flushes buffered appends and fsyncs the active segment.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	return w.syncLocked()
}

func (w *Writer) syncLocked() error {
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	start := time.Now()
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if w.opts.ObserveFsync != nil {
		w.opts.ObserveFsync(time.Since(start))
	}
	w.fsyncs.Add(1)
	w.durable = w.size
	w.dirty = false
	return nil
}

// rotateLocked seals the active segment (flush, fsync, close) and starts
// the next one.
func (w *Writer) rotateLocked() error {
	if err := w.syncLocked(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	w.rotations.Add(1)
	return w.createSegment(w.seq + 1)
}

// Seal rotates the active segment if it holds any records, so that every
// record logged so far lives in a sealed segment, and returns the active
// (empty or fresh) segment's sequence. Compaction folds exactly the
// segments below the returned sequence.
func (w *Writer) Seal() (activeSeq uint64, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrClosed
	}
	if w.segRecords > 0 {
		if err := w.rotateLocked(); err != nil {
			return 0, err
		}
	}
	return w.seq, nil
}

// ActiveSeq returns the active segment's sequence number.
func (w *Writer) ActiveSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// Dir returns the log directory.
func (w *Writer) Dir() string { return w.dir }

// Close flushes and fsyncs outstanding appends, stops the background
// flusher and closes the active segment. Close is idempotent.
func (w *Writer) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	err := w.syncLocked()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.mu.Unlock()
	if w.stop != nil {
		close(w.stop)
		<-w.done
	}
	return err
}

// flusher is the group-fsync loop: every interval it syncs the log if any
// append landed since the last sync.
func (w *Writer) flusher(every time.Duration) {
	defer close(w.done)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			w.mu.Lock()
			if !w.closed && w.dirty {
				w.syncLocked() // next tick retries on error
			}
			w.mu.Unlock()
		}
	}
}

// Stats reports the log's current shape: segment counts and bytes are
// listed live from the directory (so compaction is reflected), counters
// are since this writer opened.
func (w *Writer) Stats() Stats {
	st := Stats{
		Records:   w.records.Load(),
		Fsyncs:    w.fsyncs.Load(),
		Rotations: w.rotations.Load(),
	}
	w.mu.Lock()
	if w.dirty {
		st.FsyncLagMillis = float64(time.Since(w.firstDirty).Nanoseconds()) / 1e6
	}
	buffered := int64(0)
	if w.bw != nil {
		buffered = int64(w.bw.Buffered())
	}
	w.mu.Unlock()
	if segs, err := ListSegments(w.dir); err == nil {
		st.Segments = len(segs)
		if st.Segments > 0 {
			st.SealedSegments = st.Segments - 1
		}
		for _, s := range segs {
			st.Bytes += s.Size
		}
		st.Bytes += buffered
	}
	return st
}
