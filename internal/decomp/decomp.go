// Package decomp extracts the top-level disjoint decomposition structure of
// Boolean functions: the maximal tree of AND/OR/XOR blocks with single-
// literal inputs above a prime (undecomposable) core. The shape of this
// tree is invariant under NPN transformations — input negation moves
// literal polarities, output negation dualizes AND/OR (normalized here as a
// complement flag) — so the skeleton doubles as a structural signature, and
// decomposition is the standard preprocessing step of canonical-form
// matchers (Bertacco–Damiani style DSD, restricted to literal extraction).
package decomp

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/tt"
)

// Kind labels a decomposition node.
type Kind uint8

const (
	// Const is a constant function (Value holds it).
	Const Kind = iota
	// Leaf is a single literal.
	Leaf
	// And is a conjunction of literals and an optional residue child.
	And
	// Xor is a parity of literals and an optional residue child.
	Xor
	// Prime is an undecomposable core over ≥ 3 variables.
	Prime
)

func (k Kind) String() string {
	switch k {
	case Const:
		return "CONST"
	case Leaf:
		return "LEAF"
	case And:
		return "AND"
	case Xor:
		return "XOR"
	default:
		return "PRIME"
	}
}

// Literal is a possibly complemented variable.
type Literal struct {
	Var int
	Neg bool
}

func (l Literal) String() string {
	if l.Neg {
		return fmt.Sprintf("¬x%d", l.Var)
	}
	return fmt.Sprintf("x%d", l.Var)
}

// Node is one level of the decomposition tree.
type Node struct {
	Kind  Kind
	Neg   bool      // output complement of this node
	Value bool      // Const: the constant
	Lit   Literal   // Leaf: the literal (Neg folded into Lit, node Neg unused)
	Lits  []Literal // And/Xor: stripped literal inputs, ascending by Var
	Child *Node     // And/Xor: residue after stripping (nil if none)
	Prime *tt.TT    // Prime: support-shrunk core function
	Vars  []int     // Prime: original variable indices of the core, ascending
}

// Decompose extracts the decomposition tree of f.
func Decompose(f *tt.TT) *Node {
	if f.IsConst0() {
		return &Node{Kind: Const, Value: false}
	}
	if f.IsConst1() {
		return &Node{Kind: Const, Value: true}
	}
	sup := f.Support()
	if len(sup) == 1 {
		v := sup[0]
		// f is x_v (off-face empty) or ¬x_v.
		if f.CofactorCount(v, false) == 0 {
			return &Node{Kind: Leaf, Lit: Literal{Var: v}}
		}
		return &Node{Kind: Leaf, Lit: Literal{Var: v, Neg: true}}
	}

	// AND block: literals whose off-face is empty.
	if lits, residue := stripAnd(f); len(lits) > 0 {
		return andNode(lits, residue, false)
	}
	// OR block = complemented AND block of ¬f.
	if lits, residue := stripAnd(f.Not()); len(lits) > 0 {
		return andNode(lits, residue, true)
	}
	// XOR block: variables with complementary cofactors.
	if lits, residue := stripXor(f); len(lits) > 0 {
		return xorNode(lits, residue)
	}
	return &Node{Kind: Prime, Prime: f.ShrinkSupport(), Vars: sup}
}

// stripAnd removes every literal l with f = l ∧ g, returning the literals
// and the residue g (with the stripped variables vacuous).
func stripAnd(f *tt.TT) ([]Literal, *tt.TT) {
	var lits []Literal
	g := f
	for {
		found := false
		for _, v := range g.Support() {
			switch {
			case g.CofactorCount(v, false) == 0:
				lits = append(lits, Literal{Var: v})
				g = g.Cofactor(v, true)
				found = true
			case g.CofactorCount(v, true) == 0:
				lits = append(lits, Literal{Var: v, Neg: true})
				g = g.Cofactor(v, false)
				found = true
			}
			if found {
				break
			}
		}
		if !found {
			break
		}
	}
	sort.Slice(lits, func(a, b int) bool { return lits[a].Var < lits[b].Var })
	return lits, g
}

// stripXor removes every variable v with f = x_v ⊕ g, returning positive
// literals and the residue with those variables set to 0.
func stripXor(f *tt.TT) ([]Literal, *tt.TT) {
	var lits []Literal
	g := f
	for {
		found := false
		for _, v := range g.Support() {
			c0 := g.Cofactor(v, false)
			if c0.Equal(g.Cofactor(v, true).Not()) {
				lits = append(lits, Literal{Var: v})
				g = c0
				found = true
				break
			}
		}
		if !found {
			break
		}
	}
	sort.Slice(lits, func(a, b int) bool { return lits[a].Var < lits[b].Var })
	return lits, g
}

// andNode builds the And node. Semantics: value = (∧ Lits ∧ Child) ⊕ Neg.
// For orDual the strip ran on ¬f, so Lits and residue describe ¬f and the
// complement flag restores f = ¬(∧ …) — an OR block by De Morgan.
func andNode(lits []Literal, residue *tt.TT, orDual bool) *Node {
	n := &Node{Kind: And, Lits: lits, Neg: orDual}
	if !residue.IsConst1() {
		// residue const0 is impossible: f (or ¬f) would be constant.
		n.Child = Decompose(residue)
	}
	return n
}

func xorNode(lits []Literal, residue *tt.TT) *Node {
	n := &Node{Kind: Xor, Lits: lits}
	if residue.IsConst0() {
		return n
	}
	if residue.IsConst1() {
		n.Neg = true
		return n
	}
	n.Child = Decompose(residue)
	return n
}

// Eval reconstructs the function the tree denotes, over n variables.
func (nd *Node) Eval(n int) *tt.TT {
	var out *tt.TT
	switch nd.Kind {
	case Const:
		out = tt.Const(n, nd.Value)
	case Leaf:
		out = tt.CofactorMask(n, nd.Lit.Var, !nd.Lit.Neg)
	case And:
		acc := tt.Const(n, true)
		for _, l := range nd.Lits {
			acc = acc.And(tt.CofactorMask(n, l.Var, !l.Neg))
		}
		if nd.Child != nil {
			acc = acc.And(nd.Child.Eval(n))
		}
		out = acc
		if nd.Neg {
			out = out.Not()
		}
	case Xor:
		acc := tt.New(n)
		for _, l := range nd.Lits {
			acc = acc.Xor(tt.CofactorMask(n, l.Var, !l.Neg))
		}
		if nd.Child != nil {
			acc = acc.Xor(nd.Child.Eval(n))
		}
		out = acc
		if nd.Neg {
			out = out.Not()
		}
	case Prime:
		out = tt.New(n)
		for x := 0; x < out.NumBits(); x++ {
			idx := 0
			for k, v := range nd.Vars {
				idx |= x >> uint(v) & 1 << uint(k)
			}
			if nd.Prime.Get(idx) {
				out.Set(x, true)
			}
		}
	}
	return out
}

// Shape serializes the NPN-invariant skeleton: node kinds, literal counts,
// and prime arities — no variable names, no polarities.
func (nd *Node) Shape() string {
	var b strings.Builder
	nd.shape(&b)
	return b.String()
}

func (nd *Node) shape(b *strings.Builder) {
	switch nd.Kind {
	case Const:
		b.WriteString("CONST")
	case Leaf:
		b.WriteString("LEAF")
	case And, Xor:
		fmt.Fprintf(b, "%s(%d", nd.Kind, len(nd.Lits))
		if nd.Child != nil {
			b.WriteByte(',')
			nd.Child.shape(b)
		}
		b.WriteByte(')')
	case Prime:
		fmt.Fprintf(b, "PRIME%d", nd.Prime.NumVars())
	}
}

// String renders the tree with literals, e.g. "x0·¬x2·XOR(x1,x3)".
func (nd *Node) String() string {
	switch nd.Kind {
	case Const:
		if nd.Value {
			return "1"
		}
		return "0"
	case Leaf:
		return nd.Lit.String()
	case And:
		var parts []string
		for _, l := range nd.Lits {
			parts = append(parts, l.String())
		}
		if nd.Child != nil {
			parts = append(parts, nd.Child.String())
		}
		s := strings.Join(parts, "·")
		if nd.Neg {
			return "¬(" + s + ")"
		}
		return s
	case Xor:
		var parts []string
		for _, l := range nd.Lits {
			parts = append(parts, l.String())
		}
		if nd.Child != nil {
			parts = append(parts, nd.Child.String())
		}
		s := "XOR(" + strings.Join(parts, ",") + ")"
		if nd.Neg {
			return "¬" + s
		}
		return s
	default:
		return fmt.Sprintf("PRIME%d%v", nd.Prime.NumVars(), nd.Vars)
	}
}
