package decomp

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/npn"
	"repro/internal/tt"
)

func TestEvalReconstructsFunction(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(210))}
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		f := tt.Random(n, rng)
		return Decompose(f).Eval(n).Equal(f)
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestEvalReconstructsStructuredFunctions(t *testing.T) {
	// Structured functions hit the AND/OR/XOR strip paths deliberately.
	n := 6
	cases := []func(x int) bool{
		func(x int) bool { return x&0b111 == 0b111 },                         // AND of 3
		func(x int) bool { return x&0b111 != 0 },                             // OR of 3
		func(x int) bool { return (x&1)^(x>>1&1)^(x>>2&1) == 1 },             // XOR of 3
		func(x int) bool { return x&1 == 1 && (x>>1&1)^(x>>2&1) == 1 },       // x0 ∧ XOR
		func(x int) bool { return x&1 == 1 || (x>>1&1 == 1 && x>>2&1 == 1) }, // x0 ∨ AND
		func(x int) bool { return (x&1)^(x>>1&1&(x>>2&1)) == 1 },             // x0 ⊕ AND
		func(x int) bool { return x>>5&1 == 0 && (x&3 == 3 || x>>2&3 == 3) }, // ¬x5 ∧ prime-ish
	}
	for i, fn := range cases {
		f := tt.FromFunc(n, fn)
		if !Decompose(f).Eval(n).Equal(f) {
			t.Errorf("case %d not reconstructed", i)
		}
	}
}

func TestKnownShapes(t *testing.T) {
	and3 := tt.FromFunc(3, func(x int) bool { return x == 7 })
	if s := Decompose(and3).Shape(); s != "AND(3)" {
		t.Errorf("and3 shape = %q", s)
	}
	or3 := tt.FromFunc(3, func(x int) bool { return x != 0 })
	if s := Decompose(or3).Shape(); s != "AND(3)" {
		t.Errorf("or3 shape = %q (OR normalizes to complemented AND)", s)
	}
	xor4 := tt.FromFunc(4, func(x int) bool {
		v := 0
		for b := 0; b < 4; b++ {
			v ^= x >> b & 1
		}
		return v == 1
	})
	if s := Decompose(xor4).Shape(); s != "XOR(4)" {
		t.Errorf("xor4 shape = %q", s)
	}
	maj := tt.MustFromHex(3, "e8")
	if s := Decompose(maj).Shape(); s != "PRIME3" {
		t.Errorf("majority shape = %q", s)
	}
	mixed := tt.FromFunc(5, func(x int) bool {
		maj3 := x&1 + x>>1&1 + x>>2&1
		return x>>4&1 == 1 && x>>3&1 == 1 && maj3 >= 2
	})
	if s := Decompose(mixed).Shape(); s != "AND(2,PRIME3)" {
		t.Errorf("x4·x3·maj shape = %q", s)
	}
	if Decompose(tt.New(4)).Shape() != "CONST" {
		t.Error("const shape wrong")
	}
	if Decompose(tt.Projection(4, 2)).Shape() != "LEAF" {
		t.Error("leaf shape wrong")
	}
}

func TestShapeNPNInvariant(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(211))}
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		// Bias toward structured functions: AND a random function with a
		// literal or XOR it with one, so strip paths are exercised.
		f := tt.Random(n, rng)
		switch rng.Intn(3) {
		case 0:
			f = f.And(tt.Projection(n, rng.Intn(n)))
		case 1:
			f = f.Xor(tt.Projection(n, rng.Intn(n)))
		}
		g := npn.RandomTransform(n, rng).Apply(f)
		return Decompose(f).Shape() == Decompose(g).Shape()
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestStringRendering(t *testing.T) {
	f := tt.FromFunc(4, func(x int) bool { return x&1 == 1 && (x>>1&1)^(x>>2&1) == 1 })
	s := Decompose(f).String()
	if !strings.Contains(s, "x0") || !strings.Contains(s, "XOR") {
		t.Errorf("rendering %q missing parts", s)
	}
	if Decompose(tt.New(2)).String() != "0" || Decompose(tt.Const(2, true)).String() != "1" {
		t.Error("const rendering wrong")
	}
	neg := tt.FromFunc(2, func(x int) bool { return x != 3 }) // NAND
	sn := Decompose(neg).String()
	if !strings.HasPrefix(sn, "¬(") {
		t.Errorf("nand rendering %q missing complement", sn)
	}
	lit := Literal{Var: 3, Neg: true}
	if lit.String() != "¬x3" {
		t.Error("literal rendering wrong")
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{Const: "CONST", Leaf: "LEAF", And: "AND", Xor: "XOR", Prime: "PRIME"} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}

func TestShapeAsClassifierSignature(t *testing.T) {
	// Shape never splits an NPN class (it is invariant), so bucketing by
	// (exact canon, shape) has exactly as many classes as exact canon.
	rng := rand.New(rand.NewSource(212))
	seen := make(map[uint64]string)
	for rep := 0; rep < 500; rep++ {
		f := tt.Random(4, rng)
		canon := npn.CanonWord(f.Word(), 4)
		shape := Decompose(f).Shape()
		if prev, ok := seen[canon]; ok && prev != shape {
			t.Fatalf("shape split an NPN class: %q vs %q", prev, shape)
		}
		seen[canon] = shape
	}
}
