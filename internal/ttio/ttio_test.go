package ttio

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/gen"
)

func TestRoundTrip(t *testing.T) {
	fs := gen.UniformRandom(6, 50, 1)
	var buf bytes.Buffer
	if err := Write(&buf, fs, "kind=test", "n=6"); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(fs) {
		t.Fatalf("read %d, wrote %d", len(got), len(fs))
	}
	for i := range fs {
		if !got[i].Equal(fs[i]) {
			t.Fatalf("table %d changed in round trip", i)
		}
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\n  e8\n#mid\nf0\n\n"
	fs, err := Read(strings.NewReader(in), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 2 || fs[0].Hex() != "e8" || fs[1].Hex() != "f0" {
		t.Fatalf("parsed %v", fs)
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read(strings.NewReader("e8"), 0); err == nil {
		t.Error("arity 0 accepted")
	}
	if _, err := Read(strings.NewReader("zz"), 3); err == nil {
		t.Error("bad hex accepted")
	}
	if _, err := Read(strings.NewReader("e8\nfff\n"), 3); err == nil {
		t.Error("overlong table accepted")
	} else if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error missing line number: %v", err)
	}
}

func TestGuessArity(t *testing.T) {
	cases := []struct {
		in   string
		want int
		ok   bool
	}{
		{"# c\ne8\n", 3, true},
		{"cafecafe\n", 5, true},
		{"0xdead_beef\n", 5, true},
		{"a\n", 2, true},
		{"abc\n", 0, false},    // 3 digits: not a power of two
		{"# only\n", 0, false}, // no data
	}
	for _, tc := range cases {
		got, err := GuessArity(tc.in)
		if tc.ok && (err != nil || got != tc.want) {
			t.Errorf("GuessArity(%q) = %d, %v; want %d", tc.in, got, err, tc.want)
		}
		if !tc.ok && err == nil {
			t.Errorf("GuessArity(%q) accepted", tc.in)
		}
	}
}
