// Package ttio reads and writes truth-table workload files: one hexadecimal
// truth table per line, blank lines and '#' comments ignored — the format
// shared by the npngen, npnclassify and npnexact commands.
package ttio

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/tt"
)

// Read parses all truth tables of arity n from r. Lines are 1-indexed in
// error messages. Reading stops at the first malformed line.
func Read(r io.Reader, n int) ([]*tt.TT, error) {
	if n <= 0 || n > tt.MaxVars {
		return nil, fmt.Errorf("ttio: arity %d out of range 1..%d", n, tt.MaxVars)
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<22)
	var fs []*tt.TT
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		f, err := tt.FromHex(n, s)
		if err != nil {
			return nil, fmt.Errorf("ttio: line %d: %w", line, err)
		}
		fs = append(fs, f)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ttio: %w", err)
	}
	return fs, nil
}

// Write emits the tables one hex string per line, with an optional comment
// header (written as "# ..." lines).
func Write(w io.Writer, fs []*tt.TT, header ...string) error {
	bw := bufio.NewWriter(w)
	for _, h := range header {
		if _, err := fmt.Fprintf(bw, "# %s\n", h); err != nil {
			return err
		}
	}
	for _, f := range fs {
		if _, err := fmt.Fprintln(bw, f.Hex()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// GuessArity infers the number of variables from the first data line of a
// workload file: a table of 2^n bits uses max(1, 2^n/4) hex digits. It
// rewinds nothing — callers pass the raw content.
func GuessArity(content string) (int, error) {
	for _, line := range strings.Split(content, "\n") {
		s := strings.TrimSpace(line)
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		s = strings.TrimPrefix(strings.TrimPrefix(s, "0x"), "0X")
		digits := len(strings.ReplaceAll(s, "_", ""))
		switch {
		case digits == 1:
			return 2, nil // 1 digit covers n ≤ 2; pick the largest
		case digits >= 2 && digits <= 1<<(tt.MaxVars-2):
			n := 2
			for 1<<(n-2) < digits {
				n++
			}
			if 1<<(n-2) != digits {
				return 0, fmt.Errorf("ttio: %d hex digits is not a power-of-two table", digits)
			}
			return n, nil
		default:
			return 0, fmt.Errorf("ttio: cannot infer arity from %d hex digits", digits)
		}
	}
	return 0, fmt.Errorf("ttio: no data lines")
}
