// Package replica implements the follower side of WAL-shipping
// replication: a read-only npnserve that multiplies read throughput by
// tailing a durable primary's write-ahead log over HTTP and applying the
// records into local stores while it serves.
//
// The protocol is the primary's three WAL endpoints
// (internal/federation): the follower polls GET /v1/wal/segments for the
// per-arity manifest, bootstraps each arity from GET /v1/wal/snapshot/
// {arity} (the compacted base, applied through store.ApplySnapshot so
// collision-chain indices — part of a class's identity — come back
// exactly as the primary serves them), then tails GET /v1/wal/segment/
// {arity}/{seq}?offset= with resumable record-boundary offsets, decoding
// the byte stream with wal.Reader and publishing each record through
// store.ApplyLogRecord (key-trusting when the segment's meta word matches
// the follower's configuration fingerprint, certified re-hash otherwise).
// A poll that catches the primary mid-append simply stops at the last
// whole record (wal.ErrPartial) and resumes from that offset next time;
// a segment that vanished (primary compaction) re-bootstraps the arity
// from the fresh snapshot, which is safe because every apply path dedups
// by exact table equality.
//
// Proxy mode speaks the primary's /v2 API through pkg/client, so a
// follower requires a primary of the same API generation — the two are
// components of one deployment, shipped together like the WAL framing
// they already share. Upgrade primaries before followers.
//
// Followers are eventually consistent: the primary ships only its
// fsynced prefix (never a record it could still lose to a power cut, so
// a follower's state is always a prefix of the primary's durable
// history), and a class is visible locally at most one poll interval
// plus one primary fsync interval after it was acknowledged.
// Lag is tracked per arity in segments and bytes and exposed through
// Stats (the follower handler's /v1/stats replication section); when the
// primary stops answering, the follower keeps serving its replicated
// classes — reads never depend on the primary being alive.
package replica

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/federation"
	"repro/internal/store"
	"repro/internal/ttio"
	"repro/internal/wal"

	apiclient "repro/pkg/client"
)

// DefaultInterval is the poll period used when Options.Interval is zero.
const DefaultInterval = 200 * time.Millisecond

// Mode selects how the follower answers what its replicated stores do
// not hold.
type Mode int

const (
	// ModeProxy forwards classify misses and every insert to the primary;
	// when the primary is unreachable the follower degrades gracefully to
	// local answers (misses stay misses, inserts fail with 502).
	ModeProxy Mode = iota
	// ModeLocal answers misses locally and refuses inserts (403): the
	// follower is a pure read replica and never contacts the primary
	// outside the tail loop.
	ModeLocal
)

// String returns the flag spelling of the mode.
func (m Mode) String() string {
	if m == ModeLocal {
		return "local"
	}
	return "proxy"
}

// ParseMode parses the -follow-mode flag value.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "proxy":
		return ModeProxy, nil
	case "local":
		return ModeLocal, nil
	}
	return 0, fmt.Errorf("follow mode %q: want \"proxy\" or \"local\"", s)
}

// Options configures a Follower.
type Options struct {
	// Primary is the primary's base URL (e.g. "http://primary:8080").
	Primary string
	// Interval is the tail-poll period; zero means DefaultInterval.
	Interval time.Duration
	// Mode selects proxy or local handling of misses and inserts.
	Mode Mode
	// StaleAfter, when positive, is the staleness gate: once the last
	// successful sync is older than this (or none has succeeded yet) the
	// follower reports itself stale and its /healthz answers 503, so load
	// balancers stop routing to a replica that lost its primary. Zero
	// disables the gate — the follower serves its last replicated state
	// indefinitely.
	StaleAfter time.Duration
	// Client is the HTTP client for primary requests; nil uses a client
	// with a 30s timeout.
	Client *http.Client
	// Logf, when set, receives tail-loop diagnostics (error transitions,
	// re-bootstraps). Nil silences them.
	Logf func(format string, args ...any)
}

func (o Options) interval() time.Duration {
	if o.Interval <= 0 {
		return DefaultInterval
	}
	return o.Interval
}

// arityState is the follower's replication cursor for one arity.
type arityState struct {
	bootstrapped bool
	// nextSeq/offset name the next byte to fetch: the record-boundary
	// offset within segment nextSeq.
	nextSeq uint64
	offset  int64
	// applied counts records published into this arity's store.
	applied int64
	// lagSegments/lagBytes measure how far behind the last manifest this
	// cursor ended up — zero right after a complete sync.
	lagSegments int
	lagBytes    int64
}

// Follower tails a primary into the read-only stores of a local
// federation registry. All methods are safe for concurrent use; the tail
// loop (Run or SyncOnce) applies records while the registry serves reads.
type Follower struct {
	reg    *federation.Registry
	opts   Options
	client *http.Client
	// api is the official typed client (pkg/client) every proxy-mode
	// request to the primary goes through. The tail loop keeps the raw
	// client: segment tailing streams bodies the typed client would
	// buffer.
	api *apiclient.Client

	mu         sync.Mutex
	arities    map[int]arityState
	lastSync   time.Time // last fully successful SyncOnce
	lastErr    string
	loggedErr  string
	syncs      int64
	syncErrors int64

	applied       atomic.Int64
	snapshotLoads atomic.Int64

	// Proxy counters, bumped by the follower HTTP handler.
	proxiedClassifies atomic.Int64
	proxiedInserts    atomic.Int64
	proxyErrors       atomic.Int64
}

// New returns a follower tailing opts.Primary into reg. The registry
// should be memory-only with read-only stores (store.Options.ReadOnly):
// the follower's apply path bypasses the gate, everything else is a read.
func New(reg *federation.Registry, opts Options) *Follower {
	client := opts.Client
	if client == nil {
		// No whole-request timeout: a snapshot or segment body may be
		// arbitrarily large and must be allowed to stream for as long as
		// it takes (a body deadline would wedge bootstrap forever on big
		// stores). Dials and response headers are bounded instead; a
		// mid-body stall is bounded by the request context.
		client = &http.Client{Transport: &http.Transport{
			Proxy:                 http.ProxyFromEnvironment,
			DialContext:           (&net.Dialer{Timeout: 10 * time.Second, KeepAlive: 30 * time.Second}).DialContext,
			ResponseHeaderTimeout: 15 * time.Second,
			MaxIdleConnsPerHost:   4,
			IdleConnTimeout:       90 * time.Second,
		}}
	}
	f := &Follower{reg: reg, opts: opts, client: client, arities: map[int]arityState{}}
	// Proxying does not retry: a dead primary must degrade to local
	// answers within one round trip, not after a retry budget.
	f.api = apiclient.New(opts.Primary, apiclient.WithHTTPClient(client), apiclient.WithRetries(0))
	return f
}

// Registry returns the local registry the follower applies into.
func (f *Follower) Registry() *federation.Registry { return f.reg }

// Primary returns the primary's base URL.
func (f *Follower) Primary() string { return f.opts.Primary }

// Mode returns the follower's miss/insert handling mode.
func (f *Follower) Mode() Mode { return f.opts.Mode }

func (f *Follower) logf(format string, args ...any) {
	if f.opts.Logf != nil {
		f.opts.Logf(format, args...)
	}
}

// Run polls the primary every interval until ctx is cancelled — the
// follower's background tail loop. Sync errors do not stop the loop (the
// primary being down is an expected state a follower rides out serving
// its replicated classes); error transitions are reported through
// Options.Logf so a flapping primary does not flood the log.
func (f *Follower) Run(ctx context.Context) {
	t := time.NewTicker(f.opts.interval())
	defer t.Stop()
	f.syncAndLog(ctx)
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			f.syncAndLog(ctx)
		}
	}
}

// syncAndLog runs one sync and logs only error transitions: the first
// occurrence of a failure, and the recovery after one.
func (f *Follower) syncAndLog(ctx context.Context) {
	err := f.SyncOnce(ctx)
	f.mu.Lock()
	defer f.mu.Unlock()
	switch {
	case err != nil && err.Error() != f.loggedErr:
		f.loggedErr = err.Error()
		f.logf("replica: sync: %v", err)
	case err == nil && f.loggedErr != "":
		f.loggedErr = ""
		f.logf("replica: sync recovered (primary %s)", f.opts.Primary)
	}
}

// SyncOnce performs one tail pass: fetch the manifest, then bootstrap or
// advance every listed arity. It returns the first per-arity error after
// attempting every arity (one broken arity does not starve the others);
// the sync counts as successful — refreshing the staleness clock — only
// when every arity advanced cleanly.
func (f *Follower) SyncOnce(ctx context.Context) error {
	var m federation.Manifest
	if err := f.getJSON(ctx, "/v1/wal/segments", &m); err != nil {
		f.noteSync(err)
		return err
	}
	var firstErr error
	for _, am := range m.Arities {
		// A primary federating a wider range than this follower is fine:
		// the out-of-range arities simply are not replicated here, and
		// must not poison the staleness clock of the ones that are.
		if am.Arity < f.reg.MinVars() || am.Arity > f.reg.MaxVars() {
			continue
		}
		if err := f.syncArity(ctx, am); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("arity %d: %w", am.Arity, err)
		}
	}
	f.noteSync(firstErr)
	return firstErr
}

// noteSync records a sync outcome for staleness and stats.
func (f *Follower) noteSync(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncs++
	if err != nil {
		f.syncErrors++
		f.lastErr = err.Error()
		return
	}
	f.lastErr = ""
	f.lastSync = time.Now()
}

// cursor returns a copy of arity n's replication cursor; commit stores
// an updated copy back. The tail loop is the only writer (one Run
// goroutine), working on its private copy between the two calls, so
// Stats can read consistent cursors under the same mutex at any time.
func (f *Follower) cursor(n int) arityState {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.arities[n]
}

func (f *Follower) commit(n int, a arityState) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.arities[n] = a
}

// syncArity advances one arity's cursor through the manifest: bootstrap
// from the snapshot if this is the first sight of the arity (or our
// position was compacted away), then tail every listed segment from the
// saved offset. The cursor — including partial progress before an error
// — is committed on every exit path.
func (f *Follower) syncArity(ctx context.Context, am federation.ArityManifest) (err error) {
	svc, err := f.reg.Service(am.Arity)
	if err != nil {
		return err // primary serves an arity outside the follower's range
	}
	st := svc.Store()
	a := f.cursor(am.Arity)
	defer func() {
		a.updateLag(am)
		f.commit(am.Arity, a)
	}()

	if !a.bootstrapped {
		if am.HasSnapshot {
			if err := f.loadSnapshot(ctx, am.Arity, st, &a); err != nil {
				return err
			}
		} else if len(am.Segments) > 0 && am.Segments[0].Seq > 1 {
			// Segments were compacted away but no snapshot is listed: an
			// inconsistent manifest (a compaction raced it, or the
			// snapshot was lost). Starting at the listed segments would
			// silently skip every compacted class — wait for a manifest
			// that accounts for the full history.
			return fmt.Errorf("manifest lists segments from %d but no snapshot; waiting for a consistent manifest", am.Segments[0].Seq)
		}
		a.nextSeq, a.offset = am.ActiveSeq, 0
		if len(am.Segments) > 0 {
			a.nextSeq = am.Segments[0].Seq
		}
		a.bootstrapped = true
	} else if len(am.Segments) > 0 && a.nextSeq < am.Segments[0].Seq {
		// The segment we were positioned in was compacted into the
		// snapshot. Re-apply the snapshot (idempotent: apply dedups by
		// exact table) and resume at the first surviving segment. Without
		// a listed snapshot the jump would drop the compacted records —
		// hold position and retry when the manifest is consistent.
		if !am.HasSnapshot {
			return fmt.Errorf("segments below %d vanished but manifest lists no snapshot; waiting for a consistent manifest", am.Segments[0].Seq)
		}
		f.logf("replica: arity %d segment %d compacted away, re-bootstrapping from snapshot", am.Arity, a.nextSeq)
		if err := f.loadSnapshot(ctx, am.Arity, st, &a); err != nil {
			return err
		}
		a.nextSeq, a.offset = am.Segments[0].Seq, 0
	}

	for _, seg := range am.Segments {
		if seg.Seq < a.nextSeq {
			continue
		}
		if seg.Seq > a.nextSeq {
			// The cursor's segment is not done (a rotation listed its
			// successor before the cursor finished it, or a truncated
			// fetch left an unread tail). Never jump past it — that would
			// silently drop its remaining records; stop here and let the
			// next manifest poll resolve it (as sealed, or as compacted
			// via the re-bootstrap branch above).
			break
		}
		if err := f.tailSegment(ctx, am.Arity, st, seg, &a); err != nil {
			return err
		}
		if seg.Sealed {
			a.nextSeq, a.offset = seg.Seq+1, 0
		}
	}
	return nil
}

// updateLag measures the cursor against the manifest it just consumed:
// bytes listed that the cursor has not passed. Zero after a clean pass
// (the cursor read to each segment's live end, which is at or past the
// manifest size).
func (a *arityState) updateLag(am federation.ArityManifest) {
	a.lagSegments, a.lagBytes = 0, 0
	for _, s := range am.Segments {
		var behind int64
		switch {
		case s.Seq < a.nextSeq:
			continue
		case s.Seq == a.nextSeq:
			behind = s.Size - a.offset
		default:
			behind = s.Size
		}
		if behind > 0 {
			a.lagSegments++
			a.lagBytes += behind
		}
	}
}

// loadSnapshot fetches and applies one arity's base snapshot. A 404 (no
// compaction has run on the primary yet) applies nothing.
func (f *Follower) loadSnapshot(ctx context.Context, n int, st *store.Store, a *arityState) error {
	resp, err := f.get(ctx, fmt.Sprintf("/v1/wal/snapshot/%d", n))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("snapshot fetch: %s", resp.Status)
	}
	fs, err := ttio.Read(resp.Body, n)
	if err != nil {
		return fmt.Errorf("snapshot parse: %w", err)
	}
	applied := int64(st.ApplySnapshot(fs))
	f.applied.Add(applied)
	f.snapshotLoads.Add(1)
	a.applied += applied
	return nil
}

// tailSegment streams one segment from the cursor's offset to its
// current end, applying every whole record and advancing the offset. A
// partial tail is the clean stop condition on the active segment (the
// primary is mid-append; resume next poll) and an error on a sealed one.
func (f *Follower) tailSegment(ctx context.Context, n int, st *store.Store, seg federation.SegmentInfo, a *arityState) error {
	if seg.Sealed && a.offset >= seg.Size {
		return nil // already consumed in a previous pass
	}
	meta, err := strconv.ParseUint(seg.Meta, 16, 64)
	if err != nil {
		return fmt.Errorf("segment %d: bad manifest meta %q", seg.Seq, seg.Meta)
	}
	resp, err := f.get(ctx, fmt.Sprintf("/v1/wal/segment/%d/%d?offset=%d", n, seg.Seq, a.offset))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return fmt.Errorf("segment %d gone (compacted); will re-bootstrap", seg.Seq)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("segment %d fetch: %s", seg.Seq, resp.Status)
	}
	r := wal.NewReader(resp.Body, a.offset)
	applied := int64(0)
	defer func() {
		f.applied.Add(applied)
		a.applied += applied
	}()
	for {
		rec, rerr := r.Next()
		switch {
		case rerr == nil:
		case errors.Is(rerr, io.EOF):
			a.offset = r.Offset()
			return nil
		case errors.Is(rerr, wal.ErrPartial):
			a.offset = r.Offset()
			if seg.Sealed {
				// A sealed segment is complete on the primary's disk; a
				// short stream here is a truncated response — retry from
				// the boundary next poll.
				return fmt.Errorf("segment %d: sealed but incomplete: %w", seg.Seq, rerr)
			}
			return nil // caught the primary mid-append
		default:
			return fmt.Errorf("segment %d: %w", seg.Seq, rerr)
		}
		if rec.Arity != n {
			return fmt.Errorf("segment %d holds an arity-%d record, arity %d expected", seg.Seq, rec.Arity, n)
		}
		if hm, ok := r.Meta(); ok {
			meta = hm // offset 0: the stream's own header wins
		}
		if st.ApplyLogRecord(meta, rec.Key, rec.TT) {
			applied++
		}
		a.offset = r.Offset()
	}
}

// get issues one GET against the primary.
func (f *Follower) get(ctx context.Context, path string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.opts.Primary+path, nil)
	if err != nil {
		return nil, err
	}
	return f.client.Do(req)
}

// getJSON issues one GET and decodes a JSON body.
func (f *Follower) getJSON(ctx context.Context, path string, v any) error {
	resp, err := f.get(ctx, path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// Stale reports whether the staleness gate is tripped: StaleAfter is set
// and no sync has succeeded within it. A follower that has never synced
// is stale until its first successful pass, so a load balancer never
// routes to an empty replica.
func (f *Follower) Stale() bool {
	if f.opts.StaleAfter <= 0 {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lastSync.IsZero() || time.Since(f.lastSync) > f.opts.StaleAfter
}

// ArityLag is one arity's replication cursor and lag, as exposed in
// stats.
type ArityLag struct {
	Arity          int    `json:"arity"`
	Bootstrapped   bool   `json:"bootstrapped"`
	NextSeq        uint64 `json:"next_seq"`
	Offset         int64  `json:"offset"`
	AppliedRecords int64  `json:"applied_records"`
	LagSegments    int    `json:"lag_segments"`
	LagBytes       int64  `json:"lag_bytes"`
}

// Stats is the replication section of a follower's /v1/stats: the
// primary, the tail loop's health and the per-arity cursors with their
// lag in segments and bytes.
type Stats struct {
	Primary       string  `json:"primary"`
	Mode          string  `json:"mode"`
	Syncs         int64   `json:"syncs"`
	SyncErrors    int64   `json:"sync_errors"`
	LastError     string  `json:"last_error,omitempty"`
	LastSyncAgeMs float64 `json:"last_sync_age_ms"` // -1 before the first success
	Stale         bool    `json:"stale"`

	AppliedRecords int64 `json:"applied_records"`
	SnapshotLoads  int64 `json:"snapshot_loads"`

	ProxiedClassifies int64 `json:"proxied_classifies"`
	ProxiedInserts    int64 `json:"proxied_inserts"`
	ProxyErrors       int64 `json:"proxy_errors"`

	LagSegments int        `json:"lag_segments"`
	LagBytes    int64      `json:"lag_bytes"`
	Arities     []ArityLag `json:"arities"`
}

// Stats returns a snapshot of the replication state.
func (f *Follower) Stats() Stats {
	st := Stats{
		Primary:           f.opts.Primary,
		Mode:              f.opts.Mode.String(),
		Stale:             f.Stale(),
		AppliedRecords:    f.applied.Load(),
		SnapshotLoads:     f.snapshotLoads.Load(),
		ProxiedClassifies: f.proxiedClassifies.Load(),
		ProxiedInserts:    f.proxiedInserts.Load(),
		ProxyErrors:       f.proxyErrors.Load(),
		LastSyncAgeMs:     -1,
		Arities:           []ArityLag{},
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	st.Syncs, st.SyncErrors, st.LastError = f.syncs, f.syncErrors, f.lastErr
	if !f.lastSync.IsZero() {
		st.LastSyncAgeMs = float64(time.Since(f.lastSync).Nanoseconds()) / 1e6
	}
	for n := f.reg.MinVars(); n <= f.reg.MaxVars(); n++ {
		a, ok := f.arities[n]
		if !ok {
			continue
		}
		st.Arities = append(st.Arities, ArityLag{
			Arity:          n,
			Bootstrapped:   a.bootstrapped,
			NextSeq:        a.nextSeq,
			Offset:         a.offset,
			AppliedRecords: a.applied,
			LagSegments:    a.lagSegments,
			LagBytes:       a.lagBytes,
		})
		st.LagSegments += a.lagSegments
		st.LagBytes += a.lagBytes
	}
	return st
}
