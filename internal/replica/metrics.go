// Prometheus export of the follower's replication state (internal/obs):
// lag gauges per arity, tail-loop health and the proxy counters — the
// same numbers the stats "replication" section serves, read from the
// same snapshot, so /metrics and /v2/stats can never disagree.
package replica

import (
	"context"
	"strconv"

	"repro/internal/federation"
	"repro/internal/obs"
)

// Family indices of the follower's pull collector.
const (
	famLagSegments = iota
	famLagBytes
	famAppliedRecords
	famSyncs
	famSyncErrors
	famSnapshotLoads
	famProxiedClassifies
	famProxiedInserts
	famProxyErrors
	famStale
	famLastSyncAge
)

func followerFams() []obs.FuncFamily {
	arity := []string{"arity"}
	return []obs.FuncFamily{
		famLagSegments:       {Name: "npn_replica_lag_segments", Help: "Manifest segments the replication cursor has not passed, by arity.", Kind: obs.KindGauge, Labels: arity},
		famLagBytes:          {Name: "npn_replica_lag_bytes", Help: "Manifest bytes the replication cursor has not passed, by arity.", Kind: obs.KindGauge, Labels: arity},
		famAppliedRecords:    {Name: "npn_replica_applied_records_total", Help: "Records published into the local store, by arity.", Kind: obs.KindCounter, Labels: arity},
		famSyncs:             {Name: "npn_replica_syncs_total", Help: "Tail-loop passes attempted.", Kind: obs.KindCounter},
		famSyncErrors:        {Name: "npn_replica_sync_errors_total", Help: "Tail-loop passes that failed.", Kind: obs.KindCounter},
		famSnapshotLoads:     {Name: "npn_replica_snapshot_loads_total", Help: "Base snapshots fetched and applied.", Kind: obs.KindCounter},
		famProxiedClassifies: {Name: "npn_replica_proxied_classifies_total", Help: "Classify misses re-asked of the primary.", Kind: obs.KindCounter},
		famProxiedInserts:    {Name: "npn_replica_proxied_inserts_total", Help: "Insert batches forwarded to the primary.", Kind: obs.KindCounter},
		famProxyErrors:       {Name: "npn_replica_proxy_errors_total", Help: "Proxy requests the primary failed to answer usably.", Kind: obs.KindCounter},
		famStale:             {Name: "npn_replica_stale", Help: "1 when the staleness gate is tripped, 0 otherwise.", Kind: obs.KindGauge},
		famLastSyncAge:       {Name: "npn_replica_last_sync_age_seconds", Help: "Age of the last fully successful sync; -1 before the first.", Kind: obs.KindGauge},
	}
}

// RegisterMetrics exports the follower's replication state on m as a
// pull collector over the Stats snapshot. The local federation's own
// metrics are registered separately (Registry.RegisterMetrics), usually
// through the handler options.
func (f *Follower) RegisterMetrics(m *obs.Registry) {
	m.RegisterFunc(followerFams(), func(emit func(int, []string, float64)) {
		st := f.Stats()
		emit(famSyncs, nil, float64(st.Syncs))
		emit(famSyncErrors, nil, float64(st.SyncErrors))
		emit(famSnapshotLoads, nil, float64(st.SnapshotLoads))
		emit(famProxiedClassifies, nil, float64(st.ProxiedClassifies))
		emit(famProxiedInserts, nil, float64(st.ProxiedInserts))
		emit(famProxyErrors, nil, float64(st.ProxyErrors))
		emit(famStale, nil, b2f(st.Stale))
		age := -1.0
		if st.LastSyncAgeMs >= 0 {
			age = st.LastSyncAgeMs / 1e3
		}
		emit(famLastSyncAge, nil, age)
		for _, a := range st.Arities {
			l := []string{strconv.Itoa(a.Arity)}
			emit(famLagSegments, l, float64(a.LagSegments))
			emit(famLagBytes, l, float64(a.LagBytes))
			emit(famAppliedRecords, l, float64(a.AppliedRecords))
		}
	})
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// RefreshLag re-measures every bootstrapped arity's lag against a fresh
// manifest without tailing anything: one GET /v1/wal/segments, then the
// same cursor-vs-manifest arithmetic a sync pass runs. A sync pass reads
// to the live end of every segment and so reports zero lag by
// construction; RefreshLag is how lag becomes observable between passes
// — the lag gauges go nonzero the moment the primary appends, and back
// to zero after the next catch-up. It never advances a cursor, applies
// no records, and does not touch the staleness clock.
func (f *Follower) RefreshLag(ctx context.Context) error {
	var m federation.Manifest
	if err := f.getJSON(ctx, "/v1/wal/segments", &m); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, am := range m.Arities {
		a, ok := f.arities[am.Arity]
		if !ok || !a.bootstrapped {
			continue
		}
		a.updateLag(am)
		f.arities[am.Arity] = a
	}
	return nil
}
