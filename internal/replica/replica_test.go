package replica_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/federation"
	"repro/internal/npn"
	"repro/internal/replica"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/tt"
	"repro/internal/wal"
)

// newPrimary builds a durable federated registry (tiny segments so
// rotation and compaction kick in fast) behind a real HTTP server.
func newPrimary(t *testing.T) (*federation.Registry, *httptest.Server) {
	t.Helper()
	reg, err := federation.New(4, 6, federation.Options{
		Store: store.Options{Shards: 4},
		Data:  t.TempDir(),
		WAL:   wal.Options{SegmentBytes: 256},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { reg.Close() })
	srv := httptest.NewServer(federation.NewHandler(reg))
	t.Cleanup(srv.Close)
	return reg, srv
}

// newFollower builds a read-only follower registry over the primary URL.
func newFollower(t *testing.T, primary string, mode replica.Mode, stale time.Duration) (*replica.Follower, *httptest.Server) {
	t.Helper()
	reg, err := federation.New(4, 6, federation.Options{
		Store: store.Options{Shards: 4, ReadOnly: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	f := replica.New(reg, replica.Options{Primary: primary, Mode: mode, StaleAfter: stale})
	srv := httptest.NewServer(replica.NewHandler(f))
	t.Cleanup(srv.Close)
	return f, srv
}

func post(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func classify(t *testing.T, url string, fns []string) service.ClassifyResponse {
	t.Helper()
	resp, body := post(t, url+"/v1/classify", service.ClassifyRequest{Functions: fns})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("classify status %d: %s", resp.StatusCode, body)
	}
	var cls service.ClassifyResponse
	if err := json.Unmarshal(body, &cls); err != nil {
		t.Fatal(err)
	}
	return cls
}

// followerStats decodes the follower's /v1/stats: federation stats plus
// the replication section.
type followerStats struct {
	federation.Stats
	Replication replica.Stats `json:"replication"`
}

func getStats(t *testing.T, url string) followerStats {
	t.Helper()
	resp, err := http.Get(url + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st followerStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestFollowerEndToEnd is the replication acceptance scenario: a
// follower started after N inserts converges to the primary's classes
// with identical (class, index) identities, resumes tailing across new
// inserts and a compaction, reports lag in its stats, and keeps serving
// reads after the primary dies.
func TestFollowerEndToEnd(t *testing.T) {
	preg, psrv := newPrimary(t)
	ctx := context.Background()
	rng := rand.New(rand.NewSource(41))

	// N inserts before the follower exists, enough to rotate segments.
	var fs []*tt.TT
	for i := 0; i < 60; i++ {
		fs = append(fs, tt.Random(4+i%3, rng))
	}
	ins, err := preg.Insert(fs)
	if err != nil {
		t.Fatal(err)
	}

	fol, fsrv := newFollower(t, psrv.URL, replica.ModeLocal, 0)
	if err := fol.SyncOnce(ctx); err != nil {
		t.Fatal(err)
	}

	// Convergence: same class count...
	pTotal, fTotal := preg.Stats().Totals.Classes, fol.Registry().Stats().Totals.Classes
	if pTotal == 0 || fTotal != pTotal {
		t.Fatalf("follower holds %d classes, primary %d", fTotal, pTotal)
	}
	// ...and identical identities for NPN variants, served locally.
	var variants []string
	for _, f := range fs {
		variants = append(variants, npn.RandomTransform(f.NumVars(), rng).Apply(f).Hex())
	}
	cls := classify(t, fsrv.URL, variants)
	for i, r := range cls.Results {
		if !r.Hit {
			t.Fatalf("variant %d missed on follower", i)
		}
		want := fmt.Sprintf("%016x", ins[i].Key)
		if r.Class != want || *r.Index != ins[i].Index {
			t.Fatalf("variant %d identity (%s,%d), primary inserted (%s,%d)", i, r.Class, *r.Index, want, ins[i].Index)
		}
	}

	// Tail resume: more inserts land, the next sync picks them up from
	// the saved mid-segment offset.
	extra := []*tt.TT{tt.Random(5, rng), tt.Random(6, rng)}
	if _, err := preg.Insert(extra); err != nil {
		t.Fatal(err)
	}
	if err := fol.SyncOnce(ctx); err != nil {
		t.Fatal(err)
	}
	cls = classify(t, fsrv.URL, []string{extra[0].Hex(), extra[1].Hex()})
	for i, r := range cls.Results {
		if !r.Hit {
			t.Fatalf("post-resume insert %d missed on follower", i)
		}
	}

	// Compaction: sealed segments fold into the snapshot and vanish; the
	// follower re-bootstraps (idempotently) and keeps converging.
	if _, err := preg.CompactAll(); err != nil {
		t.Fatal(err)
	}
	after := []*tt.TT{tt.Random(4, rng)}
	if _, err := preg.Insert(after); err != nil {
		t.Fatal(err)
	}
	if err := fol.SyncOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if got, want := fol.Registry().Stats().Totals.Classes, preg.Stats().Totals.Classes; got != want {
		t.Fatalf("after compaction follower holds %d classes, primary %d", got, want)
	}

	// Stats surface: replication section with lag in segments/bytes.
	st := getStats(t, fsrv.URL)
	if st.Replication.Primary != psrv.URL || st.Replication.Syncs == 0 {
		t.Fatalf("replication stats %+v", st.Replication)
	}
	if st.Replication.LagSegments != 0 || st.Replication.LagBytes != 0 {
		t.Fatalf("caught-up follower reports lag %d segments / %d bytes",
			st.Replication.LagSegments, st.Replication.LagBytes)
	}
	if len(st.Replication.Arities) == 0 || st.Replication.AppliedRecords == 0 {
		t.Fatalf("replication stats %+v", st.Replication)
	}

	// Primary dies. Sync fails, reads keep working — the whole point.
	psrv.Close()
	if err := fol.SyncOnce(ctx); err == nil {
		t.Fatal("sync against a dead primary succeeded")
	}
	cls = classify(t, fsrv.URL, variants[:5])
	for i, r := range cls.Results {
		if !r.Hit {
			t.Fatalf("variant %d lost after primary death", i)
		}
	}
	if st := getStats(t, fsrv.URL); st.Replication.LastError == "" {
		t.Fatal("sync failure not visible in stats")
	}
}

// TestFollowerProxyMode covers the -follow-mode proxy path: misses are
// answered by the primary before the tail loop has applied them, inserts
// are forwarded, and a dead primary degrades to local answers instead of
// failing reads.
func TestFollowerProxyMode(t *testing.T) {
	preg, psrv := newPrimary(t)
	ctx := context.Background()
	rng := rand.New(rand.NewSource(42))

	f0 := tt.Random(5, rng)
	if _, err := preg.Insert([]*tt.TT{f0}); err != nil {
		t.Fatal(err)
	}

	fol, fsrv := newFollower(t, psrv.URL, replica.ModeProxy, 0)

	// No sync yet: a local miss, proxied to the primary, comes back a hit.
	cls := classify(t, fsrv.URL, []string{f0.Hex()})
	if !cls.Results[0].Hit {
		t.Fatal("proxied classify missed a class the primary holds")
	}
	if fol.Stats().ProxiedClassifies == 0 {
		t.Fatal("proxy counter not bumped")
	}

	// Inserts forward to the primary, then replicate back on the next sync.
	f1 := tt.Random(6, rng)
	resp, body := post(t, fsrv.URL+"/v1/insert", service.ClassifyRequest{Functions: []string{f1.Hex()}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proxied insert status %d: %s", resp.StatusCode, body)
	}
	var ins service.InsertResponse
	if err := json.Unmarshal(body, &ins); err != nil {
		t.Fatal(err)
	}
	if !ins.Results[0].New {
		t.Fatal("proxied insert not created on primary")
	}
	if err := fol.SyncOnce(ctx); err != nil {
		t.Fatal(err)
	}
	svc, err := fol.Registry().Service(6)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, _, ok := svc.Store().Lookup(f1); !ok {
		t.Fatal("proxied insert did not replicate back")
	}

	// Dead primary: classify still answers (miss), insert fails loudly.
	psrv.Close()
	unknown := tt.Random(4, rng)
	cls = classify(t, fsrv.URL, []string{unknown.Hex()})
	if cls.Results[0].Hit {
		t.Fatal("unknown function hit")
	}
	if fol.Stats().ProxyErrors == 0 {
		t.Fatal("proxy failure not counted")
	}
	resp, _ = post(t, fsrv.URL+"/v1/insert", service.ClassifyRequest{Functions: []string{unknown.Hex()}})
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("insert against dead primary: status %d, want 502", resp.StatusCode)
	}
}

// TestFollowerReadOnlySurface: local mode refuses inserts and compaction
// outright.
func TestFollowerReadOnlySurface(t *testing.T) {
	_, psrv := newPrimary(t)
	_, fsrv := newFollower(t, psrv.URL, replica.ModeLocal, 0)

	resp, _ := post(t, fsrv.URL+"/v1/insert", service.ClassifyRequest{Functions: []string{"1ee1"}})
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("local-mode insert status %d, want 403", resp.StatusCode)
	}
	resp, _ = post(t, fsrv.URL+"/v1/compact", struct{}{})
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("follower compact status %d, want 403", resp.StatusCode)
	}
}

// TestFollowerStaleGate: with StaleAfter set, /healthz is 503 before the
// first successful sync, 200 right after one, and 503 again once the
// primary has been unreachable past the threshold — while classify keeps
// serving.
func TestFollowerStaleGate(t *testing.T) {
	preg, psrv := newPrimary(t)
	ctx := context.Background()
	rng := rand.New(rand.NewSource(43))
	f0 := tt.Random(4, rng)
	if _, err := preg.Insert([]*tt.TT{f0}); err != nil {
		t.Fatal(err)
	}

	fol, fsrv := newFollower(t, psrv.URL, replica.ModeLocal, 50*time.Millisecond)
	health := func() int {
		resp, err := http.Get(fsrv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := health(); got != http.StatusServiceUnavailable {
		t.Fatalf("never-synced follower healthz %d, want 503", got)
	}
	if err := fol.SyncOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if got := health(); got != http.StatusOK {
		t.Fatalf("fresh follower healthz %d, want 200", got)
	}
	psrv.Close()
	time.Sleep(80 * time.Millisecond)
	if got := health(); got != http.StatusServiceUnavailable {
		t.Fatalf("stale follower healthz %d, want 503", got)
	}
	// Stale gates routing, not serving: reads still answer.
	if cls := classify(t, fsrv.URL, []string{f0.Hex()}); !cls.Results[0].Hit {
		t.Fatal("stale follower dropped its replicated class")
	}
}

// TestFollowerNarrowerRange: a follower federating a subset of the
// primary's arities replicates its subset and stays healthy — the
// out-of-range arities are skipped, not treated as sync failures that
// would keep the staleness gate tripped forever.
func TestFollowerNarrowerRange(t *testing.T) {
	preg, psrv := newPrimary(t) // arities 4-6
	ctx := context.Background()
	rng := rand.New(rand.NewSource(45))
	in4, in6 := tt.Random(4, rng), tt.Random(6, rng)
	if _, err := preg.Insert([]*tt.TT{in4, in6}); err != nil {
		t.Fatal(err)
	}

	reg, err := federation.New(4, 5, federation.Options{Store: store.Options{ReadOnly: true}})
	if err != nil {
		t.Fatal(err)
	}
	fol := replica.New(reg, replica.Options{Primary: psrv.URL, Mode: replica.ModeLocal, StaleAfter: time.Minute})
	if err := fol.SyncOnce(ctx); err != nil {
		t.Fatalf("narrow-range sync failed: %v", err)
	}
	if fol.Stale() {
		t.Fatal("narrow-range follower stale after a clean sync")
	}
	svc, err := reg.Service(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, _, ok := svc.Store().Lookup(in4); !ok {
		t.Fatal("in-range arity did not replicate")
	}
	st := fol.Stats()
	for _, a := range st.Arities {
		if a.Arity > 5 {
			t.Fatalf("out-of-range arity %d has a cursor", a.Arity)
		}
	}
}

// TestFollowerOfRestartedIdlePrimary: a primary that restarted over its
// data directory and received no traffic must still ship its whole
// history — the manifest wakes on-disk arities, so a fresh follower
// converges instead of syncing to an empty manifest.
func TestFollowerOfRestartedIdlePrimary(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(46))
	dir := t.TempDir()
	mk := func() *federation.Registry {
		reg, err := federation.New(4, 6, federation.Options{
			Store: store.Options{Shards: 4},
			Data:  dir,
			WAL:   wal.Options{SegmentBytes: 256},
		})
		if err != nil {
			t.Fatal(err)
		}
		return reg
	}
	first := mk()
	fs := []*tt.TT{tt.Random(4, rng), tt.Random(5, rng), tt.Random(6, rng)}
	if _, err := first.Insert(fs); err != nil {
		t.Fatal(err)
	}
	if err := first.Close(); err != nil {
		t.Fatal(err)
	}

	restarted := mk() // no traffic: no services constructed yet
	defer restarted.Close()
	psrv := httptest.NewServer(federation.NewHandler(restarted))
	defer psrv.Close()

	fol, fsrv := newFollower(t, psrv.URL, replica.ModeLocal, 0)
	if err := fol.SyncOnce(ctx); err != nil {
		t.Fatal(err)
	}
	cls := classify(t, fsrv.URL, []string{fs[0].Hex(), fs[1].Hex(), fs[2].Hex()})
	for i, r := range cls.Results {
		if !r.Hit {
			t.Fatalf("class %d not replicated from a restarted idle primary", i)
		}
	}
}

// TestFollowerRunLoop drives the background loop end to end: inserts on
// the primary become follower hits within a few poll intervals, with no
// manual SyncOnce.
func TestFollowerRunLoop(t *testing.T) {
	preg, psrv := newPrimary(t)
	rng := rand.New(rand.NewSource(44))
	f0 := tt.Random(5, rng)
	if _, err := preg.Insert([]*tt.TT{f0}); err != nil {
		t.Fatal(err)
	}

	reg, err := federation.New(4, 6, federation.Options{Store: store.Options{ReadOnly: true}})
	if err != nil {
		t.Fatal(err)
	}
	fol := replica.New(reg, replica.Options{Primary: psrv.URL, Interval: 20 * time.Millisecond, Mode: replica.ModeLocal})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); fol.Run(ctx) }()

	deadline := time.Now().Add(10 * time.Second)
	for {
		svc, err := reg.Service(5)
		if err == nil {
			if _, _, _, _, ok := svc.Store().Lookup(f0); ok {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("follower run loop never converged")
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	<-done
}
