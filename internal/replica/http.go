package replica

import (
	"context"
	"io"
	"net/http"
	"strconv"

	"repro/internal/api"
	"repro/internal/federation"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/tt"
)

// NewHandler returns the follower HTTP surface over f with the default
// body bound for uploads and streams; see NewHandlerWith.
func NewHandler(f *Follower) http.Handler {
	return NewHandlerWith(f, api.DefaultMaxBody)
}

// NewHandlerWith returns the follower's versioned API, mounted on the
// shared api.Router. It speaks the same wire format as the primary's
// federated handler, with the follower's read/write role distinction
// threaded through every route:
//
//	POST /v2/classify (+ /v1, + /stream)
//	                   served from the local replicated stores; in proxy
//	                   mode, misses are re-asked of the primary through
//	                   pkg/client and the answers merged (a fresh class
//	                   the tail loop has not applied yet still hits).
//	                   Primary unreachable: local answers stand — reads
//	                   never fail over a dead primary.
//	POST /v2/insert (+ /v1, + /stream)
//	                   proxy mode: forwarded to the primary
//	                   (primary_unreachable/502 when it is gone); local
//	                   mode: read_only/403 — the follower is read-only.
//	POST /v2/map       mapped locally; ?insert=true forwards the LUT
//	                   classes in proxy mode and is read_only in local.
//	POST /v2/compact (+ /v1)
//	                   read_only/403 always; compaction is the primary's.
//	GET  /v2/stats (+ /v1)
//	                   the federation stats plus a "replication" section
//	                   (lag in segments/bytes per arity, sync health,
//	                   proxy counters).
//	GET  /v2/spec      routes + error codes.
//	GET  /healthz      role and primary; 503 with status "stale" when
//	                   the staleness gate (Options.StaleAfter) is
//	                   tripped, so load balancers drain a follower that
//	                   lost its primary.
func NewHandlerWith(f *Follower, maxBody int64) http.Handler {
	return NewHandlerOpts(f, federation.HandlerOptions{MaxBody: maxBody})
}

// NewHandlerOpts is NewHandlerWith plus the observability surface (the
// same options struct the federated handler takes): with Metrics set the
// follower serves GET /metrics carrying both the local federation's
// series and the replication lag/sync/proxy series, and with HTTP set
// every route is traced and measured by the obs middleware.
func NewHandlerOpts(f *Follower, o federation.HandlerOptions) http.Handler {
	maxBody := o.MaxBody
	if maxBody <= 0 {
		maxBody = api.DefaultMaxBody
	}
	rt := api.NewRouter("follower")
	reg := f.Registry()
	if o.HTTP != nil {
		rt.Use(o.HTTP.Wrap)
	}
	if o.Guard != nil {
		rt.Use(o.Guard)
	}
	if o.Metrics != nil {
		reg.RegisterMetrics(o.Metrics)
		f.RegisterMetrics(o.Metrics)
		rt.Handle("GET", "/metrics", "Prometheus metrics exposition", obs.Handler(o.Metrics))
	}
	if o.Trace != nil {
		rt.Handle("GET", "/v2/debug/traces", "flight recorder: retained request traces, newest first (?min_ms=&route=)",
			api.HandleTraces(o.Trace))
		rt.Handle("GET", "/v2/debug/traces/{id}", "flight recorder: one trace's span tree, by request ID",
			api.HandleTrace(o.Trace))
	}
	b := replicaBackend{f}
	jsonBody := service.MaxBodyBytes(reg.MaxVars())

	rt.HandleDeprecated("POST", "/v1/classify", "local lookup, proxy-merged misses (use /v2/classify)",
		func(w http.ResponseWriter, r *http.Request) {
			if !api.CheckContentType(w, r, "application/json") {
				return
			}
			fs, raw, ok := decodeMixedBatch(w, r, reg)
			if !ok {
				return
			}
			results, err := reg.ClassifyCtx(r.Context(), fs)
			if err != nil {
				service.WriteError(w, http.StatusBadRequest, "%v", err)
				return
			}
			resp := service.EncodeClassifyResults(raw, results)
			if f.Mode() == ModeProxy {
				f.proxyMisses(r.Context(), raw, &resp)
			}
			service.WriteJSON(w, http.StatusOK, resp)
		})
	rt.HandleDeprecated("POST", "/v1/insert", "proxy-forwarded insert (use /v2/insert)",
		func(w http.ResponseWriter, r *http.Request) {
			if !api.CheckContentType(w, r, "application/json") {
				return
			}
			if f.Mode() != ModeProxy {
				service.WriteError(w, http.StatusForbidden,
					"follower is read-only (mode local); insert on the primary %s", f.Primary())
				return
			}
			f.relayInsert(w, r)
		})
	rt.HandleDeprecated("POST", "/v1/compact", "refused on a follower",
		func(w http.ResponseWriter, r *http.Request) {
			service.WriteError(w, http.StatusForbidden,
				"follower holds no write-ahead log; compact on the primary %s", f.Primary())
		})
	rt.HandleDeprecated("GET", "/v1/stats", "federation + replication counters (use /v2/stats)",
		func(w http.ResponseWriter, r *http.Request) {
			service.WriteJSON(w, http.StatusOK, statsResponse{
				Stats:       reg.Stats(),
				Replication: f.Stats(),
			})
		})

	rt.Handle("POST", "/v2/classify", "local lookup with per-item errors, proxy-merged misses",
		api.HandleClassify(b, jsonBody))
	rt.Handle("POST", "/v2/insert", "insert forwarded to the primary (read_only in local mode)",
		api.HandleInsert(b, jsonBody))
	rt.Handle("POST", "/v2/classify/stream", "NDJSON streaming lookup", api.HandleClassifyStream(b, maxBody))
	rt.Handle("POST", "/v2/insert/stream", "NDJSON streaming insert", api.HandleInsertStream(b, maxBody))
	// A local-mode follower mounts no map-insert hook at all, so
	// ?insert=true is refused before any mapping work; in proxy mode the
	// discovered classes are forwarded to the primary.
	mapInsert := b.insertMapped
	if f.Mode() != ModeProxy {
		mapInsert = nil
	}
	rt.Handle("POST", "/v2/map", "map an ASCII-AIGER circuit to k-LUTs",
		api.HandleMap(api.MapConfig{MaxBody: maxBody, Insert: mapInsert}))
	rt.Handle("POST", "/v2/compact", "refused on a follower",
		func(w http.ResponseWriter, r *http.Request) {
			api.WriteError(w, api.Errf(api.CodeReadOnly,
				"follower holds no write-ahead log; compact on the primary %s", f.Primary()))
		})
	rt.Handle("GET", "/v2/stats", "federation + replication counters",
		func(w http.ResponseWriter, r *http.Request) {
			api.WriteJSON(w, http.StatusOK, statsResponse{
				Stats:       reg.Stats(),
				Replication: f.Stats(),
			})
		})
	rt.Handle("GET", "/healthz", "role, primary, staleness gate",
		func(w http.ResponseWriter, r *http.Request) {
			body := map[string]any{
				"status":   "ok",
				"role":     "follower",
				"primary":  f.Primary(),
				"mode":     f.Mode().String(),
				"min_vars": reg.MinVars(),
				"max_vars": reg.MaxVars(),
				"active":   reg.Active(),
			}
			if f.Stale() {
				body["status"] = "stale"
				service.WriteJSON(w, http.StatusServiceUnavailable, body)
				return
			}
			service.WriteJSON(w, http.StatusOK, body)
		})
	rt.MountSpec()
	return rt
}

// statsResponse is the follower's stats body: the flat federation stats
// with the replication section alongside.
type statsResponse struct {
	federation.Stats
	Replication Stats `json:"replication"`
}

// replicaBackend adapts the follower to the shared /v2 handlers: reads
// come from the local replicated stores, writes go through the primary.
type replicaBackend struct{ f *Follower }

func (b replicaBackend) Resolve(s string) (*tt.TT, *api.Error) {
	reg := b.f.Registry()
	n, err := reg.ArityOfHex(s)
	if err != nil {
		return nil, api.Errf(api.CodeArityOutOfRange,
			"hex truth table of %d digits matches no federated arity %d..%d",
			len(s), reg.MinVars(), reg.MaxVars())
	}
	if _, err := reg.Service(n); err != nil {
		return nil, api.Errf(api.CodeInternal, "%v", err)
	}
	f, err := tt.FromHex(n, s)
	if err != nil {
		return nil, api.Errf(api.CodeBadHex, "%v", err)
	}
	return f, nil
}

// CheckArity implements api.ArityBackend for the binary transport: the
// arity must be inside the replicated federated range and its service
// ready, mirroring Resolve.
func (b replicaBackend) CheckArity(n int) *api.Error {
	reg := b.f.Registry()
	if n < reg.MinVars() || n > reg.MaxVars() {
		return api.Errf(api.CodeArityOutOfRange,
			"function of arity %d outside the federated range %d..%d",
			n, reg.MinVars(), reg.MaxVars())
	}
	if _, err := reg.Service(n); err != nil {
		return api.Errf(api.CodeInternal, "%v", err)
	}
	return nil
}

// Classify answers from the replicated stores; in proxy mode the misses
// are re-asked of the primary and merged, and a proxy failure leaves the
// local misses standing — the graceful degradation that keeps a follower
// serving when its primary is gone.
func (b replicaBackend) Classify(ctx context.Context, fs []*tt.TT) ([]api.Result, *api.Error) {
	results, err := b.f.Registry().ClassifyCtx(ctx, fs)
	if err != nil {
		return nil, api.Errf(api.CodeInternal, "%v", err)
	}
	out := service.ToAPIResults(results)
	if b.f.Mode() == ModeProxy {
		b.f.proxyMissResults(ctx, fs, out)
	}
	return out, nil
}

// Insert forwards the batch to the primary in proxy mode and refuses it
// in local mode.
func (b replicaBackend) Insert(ctx context.Context, fs []*tt.TT) ([]api.InsertOutcome, *api.Error) {
	if b.f.Mode() != ModeProxy {
		return nil, api.Errf(api.CodeReadOnly,
			"follower is read-only (mode local); insert on the primary %s", b.f.Primary())
	}
	hexes := make([]string, len(fs))
	for i, fn := range fs {
		hexes[i] = fn.Hex()
	}
	b.f.proxiedInserts.Add(1)
	hctx, sp := obs.StartSpan(ctx, "replica.primary_hop")
	sp.SetAttr("op", "insert")
	sp.SetInt("items", int64(len(hexes)))
	resp, err := b.f.api.Insert(hctx, hexes)
	sp.SetBool("ok", err == nil)
	sp.End()
	if err != nil {
		b.f.proxyErrors.Add(1)
		if e, ok := err.(*api.Error); ok {
			return nil, e // the primary's own refusal, relayed with its code
		}
		return nil, api.Errf(api.CodePrimaryUnreachable, "primary unreachable: %v", err)
	}
	if len(resp.Results) != len(fs) {
		b.f.proxyErrors.Add(1)
		return nil, api.Errf(api.CodeInternal,
			"primary answered %d results for %d inserts", len(resp.Results), len(fs))
	}
	out := make([]api.InsertOutcome, len(resp.Results))
	for i, it := range resp.Results {
		o := api.InsertOutcome{Index: it.Index, New: it.New, Err: it.Error}
		if key, perr := strconv.ParseUint(it.Class, 16, 64); perr == nil {
			o.Key = key
		}
		out[i] = o
	}
	return out, nil
}

// insertMapped forwards a mapping's LUT classes to the primary; a
// local-mode follower cannot warm anything (its handler mounts no hook).
func (b replicaBackend) insertMapped(ctx context.Context, fs []*tt.TT) ([]api.InsertOutcome, *api.Error) {
	return b.Insert(ctx, fs)
}

// askPrimary is the one miss-proxy algorithm both API versions share:
// re-ask the primary about the functions at missIdx and return its items
// aligned with missIdx, or nil when the answers are unusable (primary
// unreachable, response shape wrong) — the caller's local misses then
// stand, the graceful degradation that keeps a follower serving when its
// primary is gone. Failures are counted in ProxyErrors.
func (f *Follower) askPrimary(ctx context.Context, missFns []string) []api.ClassifyItem {
	if len(missFns) == 0 {
		return nil
	}
	f.proxiedClassifies.Add(int64(len(missFns)))
	hctx, sp := obs.StartSpan(ctx, "replica.primary_hop")
	sp.SetAttr("op", "classify")
	sp.SetInt("items", int64(len(missFns)))
	resp, err := f.api.Classify(hctx, missFns)
	sp.SetBool("ok", err == nil)
	sp.End()
	if err != nil {
		f.proxyErrors.Add(1)
		f.logf("replica: proxy classify: %v", err)
		return nil
	}
	if len(resp.Results) != len(missFns) {
		f.proxyErrors.Add(1)
		return nil
	}
	return resp.Results
}

// proxyMissResults re-asks the primary about every miss and merges hits
// back in place, converting wire items to pipeline results. Conversion
// failures (a malformed witness from a foreign primary) leave the local
// miss standing.
func (f *Follower) proxyMissResults(ctx context.Context, fs []*tt.TT, out []api.Result) {
	var missIdx []int
	var missFns []string
	for i, r := range out {
		if !r.Hit {
			missIdx = append(missIdx, i)
			missFns = append(missFns, fs[i].Hex())
		}
	}
	items := f.askPrimary(ctx, missFns)
	if items == nil {
		return
	}
	for j, i := range missIdx {
		it := items[j]
		if it.Error != nil || !it.Hit || it.Witness == nil || it.Index == nil {
			continue
		}
		key, kerr := strconv.ParseUint(it.Class, 16, 64)
		tr, terr := it.Witness.Transform()
		if kerr != nil || terr != nil {
			f.proxyErrors.Add(1)
			continue
		}
		out[i] = api.Result{Key: key, Index: *it.Index, Hit: true, RepHex: it.Rep, Witness: tr}
	}
}

// proxyMisses is the /v1 twin of proxyMissResults, splicing primary hits
// into the v1 response shape through the same askPrimary core.
func (f *Follower) proxyMisses(ctx context.Context, raw []string, resp *service.ClassifyResponse) {
	var missIdx []int
	var missFns []string
	for i, res := range resp.Results {
		if !res.Hit {
			missIdx = append(missIdx, i)
			missFns = append(missFns, raw[i])
		}
	}
	items := f.askPrimary(ctx, missFns)
	if items == nil {
		return
	}
	for j, i := range missIdx {
		it := items[j]
		if it.Error != nil {
			continue
		}
		// service.WitnessJSON is an alias of api.Witness, so the primary's
		// witness carries over as-is.
		resp.Results[i] = service.ClassifyResultJSON{
			Function: raw[i],
			Hit:      it.Hit,
			Class:    it.Class,
			Index:    it.Index,
			Rep:      it.Rep,
			Witness:  it.Witness,
		}
	}
}

// relayInsert forwards a /v1 insert request body verbatim to the primary
// through the raw escape hatch of pkg/client and relays status and body,
// so the v1 shim stays byte-compatible. The inserted classes reach the
// follower's own stores through the tail loop, usually within one poll
// interval.
func (f *Follower) relayInsert(w http.ResponseWriter, r *http.Request) {
	reg := f.Registry()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, service.MaxBodyBytes(reg.MaxVars())))
	if err != nil {
		service.WriteError(w, http.StatusRequestEntityTooLarge, "%v", err)
		return
	}
	f.proxiedInserts.Add(1)
	hctx, sp := obs.StartSpan(r.Context(), "replica.primary_hop")
	sp.SetAttr("op", "insert")
	status, respBody, err := f.api.Post(hctx, "/v1/insert", "application/json", body)
	sp.SetBool("ok", err == nil)
	sp.End()
	if err != nil {
		f.proxyErrors.Add(1)
		service.WriteError(w, http.StatusBadGateway, "primary unreachable: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(respBody)
}

// decodeMixedBatch parses a mixed-arity batch exactly as the federated
// handler does: shared envelope rules, arity inferred per function from
// its hex length.
func decodeMixedBatch(w http.ResponseWriter, r *http.Request, reg *federation.Registry) (fs []*tt.TT, raw []string, ok bool) {
	return service.DecodeBatchWith(w, r, service.MaxBodyBytes(reg.MaxVars()),
		func(_ int, s string) (*tt.TT, error) {
			n, err := reg.ArityOfHex(s)
			if err != nil {
				return nil, err
			}
			return tt.FromHex(n, s)
		})
}
