package replica

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/internal/federation"
	"repro/internal/service"
	"repro/internal/tt"
)

// NewHandler returns the follower HTTP surface over f. It speaks the
// same wire format as the primary's federated handler, with the
// follower's read/write role distinction threaded through every route:
//
//	POST /v1/classify  served from the local replicated stores; in proxy
//	                   mode, misses are re-asked of the primary and the
//	                   answers merged (a fresh class the tail loop has
//	                   not applied yet still hits). Primary unreachable:
//	                   local answers stand — reads never fail over a
//	                   dead primary.
//	POST /v1/insert    proxy mode: forwarded verbatim to the primary
//	                   (502 when unreachable); local mode: 403 — the
//	                   follower is read-only.
//	POST /v1/compact   403 always; compaction is the primary's.
//	GET  /v1/stats     the federation stats plus a "replication" section
//	                   (lag in segments/bytes per arity, sync health,
//	                   proxy counters).
//	GET  /healthz      role and primary; 503 with status "stale" when
//	                   the staleness gate (Options.StaleAfter) is
//	                   tripped, so load balancers drain a follower that
//	                   lost its primary.
func NewHandler(f *Follower) http.Handler {
	reg := f.Registry()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/classify", func(w http.ResponseWriter, r *http.Request) {
		fs, raw, ok := decodeMixedBatch(w, r, reg)
		if !ok {
			return
		}
		results, err := reg.Classify(fs)
		if err != nil {
			service.WriteError(w, http.StatusBadRequest, "%v", err)
			return
		}
		resp := service.EncodeClassifyResults(raw, results)
		if f.Mode() == ModeProxy {
			f.proxyMisses(r, raw, &resp)
		}
		service.WriteJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /v1/insert", func(w http.ResponseWriter, r *http.Request) {
		if f.Mode() != ModeProxy {
			service.WriteError(w, http.StatusForbidden,
				"follower is read-only (mode local); insert on the primary %s", f.Primary())
			return
		}
		f.proxyInsert(w, r)
	})
	mux.HandleFunc("POST /v1/compact", func(w http.ResponseWriter, r *http.Request) {
		service.WriteError(w, http.StatusForbidden,
			"follower holds no write-ahead log; compact on the primary %s", f.Primary())
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		service.WriteJSON(w, http.StatusOK, statsResponse{
			Stats:       reg.Stats(),
			Replication: f.Stats(),
		})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		body := map[string]any{
			"status":   "ok",
			"role":     "follower",
			"primary":  f.Primary(),
			"mode":     f.Mode().String(),
			"min_vars": reg.MinVars(),
			"max_vars": reg.MaxVars(),
			"active":   reg.Active(),
		}
		if f.Stale() {
			body["status"] = "stale"
			service.WriteJSON(w, http.StatusServiceUnavailable, body)
			return
		}
		service.WriteJSON(w, http.StatusOK, body)
	})
	return mux
}

// statsResponse is the follower's /v1/stats body: the flat federation
// stats with the replication section alongside.
type statsResponse struct {
	federation.Stats
	Replication Stats `json:"replication"`
}

// proxyMisses re-asks the primary about every miss in a classify
// response and merges the hits back in place. A proxy failure leaves the
// local misses standing — the graceful degradation that keeps a follower
// serving when its primary is gone — and is counted in ProxyErrors.
func (f *Follower) proxyMisses(r *http.Request, raw []string, resp *service.ClassifyResponse) {
	var missIdx []int
	var missFns []string
	for i, res := range resp.Results {
		if !res.Hit {
			missIdx = append(missIdx, i)
			missFns = append(missFns, raw[i])
		}
	}
	if len(missIdx) == 0 {
		return
	}
	f.proxiedClassifies.Add(int64(len(missIdx)))
	body, err := json.Marshal(service.ClassifyRequest{Functions: missFns})
	if err != nil {
		f.proxyErrors.Add(1)
		return
	}
	var primary service.ClassifyResponse
	if err := f.postJSON(r, "/v1/classify", body, &primary); err != nil {
		f.proxyErrors.Add(1)
		f.logf("replica: proxy classify: %v", err)
		return
	}
	if len(primary.Results) != len(missIdx) {
		f.proxyErrors.Add(1)
		return
	}
	for j, i := range missIdx {
		resp.Results[i] = primary.Results[j]
	}
}

// proxyInsert forwards an insert request body verbatim to the primary
// and relays its response. The inserted classes reach the follower's own
// stores through the tail loop, usually within one poll interval.
func (f *Follower) proxyInsert(w http.ResponseWriter, r *http.Request) {
	reg := f.Registry()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, service.MaxBodyBytes(reg.MaxVars())))
	if err != nil {
		service.WriteError(w, http.StatusRequestEntityTooLarge, "%v", err)
		return
	}
	f.proxiedInserts.Add(1)
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, f.Primary()+"/v1/insert", bytes.NewReader(body))
	if err != nil {
		f.proxyErrors.Add(1)
		service.WriteError(w, http.StatusBadGateway, "proxy insert: %v", err)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := f.client.Do(req)
	if err != nil {
		f.proxyErrors.Add(1)
		service.WriteError(w, http.StatusBadGateway, "primary unreachable: %v", err)
		return
	}
	defer resp.Body.Close()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// postJSON posts a JSON body to the primary and decodes a JSON response,
// failing on any non-200.
func (f *Follower) postJSON(r *http.Request, path string, body []byte, v any) error {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, f.Primary()+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := f.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST %s: %s", path, resp.Status)
	}
	return decodeJSON(resp.Body, v)
}

// decodeJSON decodes one JSON value from r.
func decodeJSON(r io.Reader, v any) error {
	return json.NewDecoder(r).Decode(v)
}

// decodeMixedBatch parses a mixed-arity batch exactly as the federated
// handler does: shared envelope rules, arity inferred per function from
// its hex length.
func decodeMixedBatch(w http.ResponseWriter, r *http.Request, reg *federation.Registry) (fs []*tt.TT, raw []string, ok bool) {
	return service.DecodeBatchWith(w, r, service.MaxBodyBytes(reg.MaxVars()),
		func(_ int, s string) (*tt.TT, error) {
			n, err := reg.ArityOfHex(s)
			if err != nil {
				return nil, err
			}
			return tt.FromHex(n, s)
		})
}
