package cut

import (
	"testing"

	"repro/internal/aig"
	"repro/internal/tt"
)

// buildXorChain returns an AIG computing x0⊕x1⊕...⊕x_{n-1} plus the graph.
func buildXorChain(n int) (*aig.AIG, aig.Lit) {
	g := aig.New(n)
	acc := g.PI(0)
	for i := 1; i < n; i++ {
		acc = g.Xor(acc, g.PI(i))
	}
	g.AddPO(acc)
	return g, acc
}

func TestEnumerateLeafSets(t *testing.T) {
	g := aig.New(2)
	a, b := g.PI(0), g.PI(1)
	x := g.And(a, b)
	cuts := Enumerate(g, Options{K: 2})
	set := cuts[x.Node()]
	// Expect the structural cut {a,b} and the trivial cut {x}.
	if len(set) != 2 {
		t.Fatalf("AND node has %d cuts, want 2", len(set))
	}
	if set[0].Size() != 2 || set[0].Leaves[0] != a.Node() || set[0].Leaves[1] != b.Node() {
		t.Errorf("structural cut = %v", set[0].Leaves)
	}
	if set[1].Size() != 1 || set[1].Leaves[0] != x.Node() {
		t.Errorf("trivial cut = %v", set[1].Leaves)
	}
}

func TestEnumerateRespectsK(t *testing.T) {
	g, out := buildXorChain(6)
	for k := 2; k <= 6; k++ {
		cuts := Enumerate(g, Options{K: k, MaxPerNode: 100})
		for n := uint32(0); int(n) < g.NumNodes(); n++ {
			for _, c := range cuts[n] {
				if c.Size() > k {
					t.Fatalf("cut of size %d found with K=%d", c.Size(), k)
				}
			}
		}
	}
	_ = out
}

func TestDominanceFiltering(t *testing.T) {
	// addCut must drop supersets of existing cuts and evict dominated ones.
	a := newCut([]uint32{1, 2})
	b := newCut([]uint32{1, 2, 3})
	set := addCut(nil, a)
	set = addCut(set, b)
	if len(set) != 1 {
		t.Fatalf("dominated cut kept: %v", set)
	}
	set = addCut(nil, b)
	set = addCut(set, a)
	if len(set) != 1 || set[0].Size() != 2 {
		t.Fatalf("dominating cut did not evict: %v", set)
	}
	if !a.dominates(b) || b.dominates(a) || !a.dominates(a) {
		t.Error("dominates verdicts wrong")
	}
}

func TestFunctionXor(t *testing.T) {
	g, out := buildXorChain(3)
	cuts := Enumerate(g, Options{K: 3, MaxPerNode: 50})
	want := tt.FromFunc(3, func(x int) bool {
		return (x&1)^(x>>1&1)^(x>>2&1) == 1
	})
	found := false
	for _, c := range cuts[out.Node()] {
		if c.Size() != 3 {
			continue
		}
		f := Function(g, out.Node(), c.Leaves)
		// Leaves of the 3-cut over PIs are the PIs in ascending node order,
		// which matches variable order 0,1,2.
		allPI := true
		for _, l := range c.Leaves {
			if !g.IsPI(l) {
				allPI = false
			}
		}
		if allPI {
			found = true
			// Function computes the node's polarity; the xor output literal
			// may be complemented.
			if out.Compl() {
				f = f.Not()
			}
			if !f.Equal(want) {
				t.Errorf("xor cut function = %s, want %s", f.Hex(), want.Hex())
			}
		}
	}
	if !found {
		t.Error("no full-PI 3-cut found for xor chain")
	}
}

func TestFunctionMatchesGlobalSimulation(t *testing.T) {
	// For cuts whose leaves are exactly the PIs, Function must agree with
	// the AIG's global simulation.
	g := aig.New(4)
	p := []aig.Lit{g.PI(0), g.PI(1), g.PI(2), g.PI(3)}
	n1 := g.And(p[0], p[1].Not())
	n2 := g.Or(n1, p[2])
	n3 := g.Mux(p[3], n2, n1)
	g.AddPO(n3)
	cuts := Enumerate(g, Options{K: 4, MaxPerNode: 64})
	checked := 0
	for node := uint32(1 + g.NumPIs()); int(node) < g.NumNodes(); node++ {
		for _, c := range cuts[node] {
			allPI := c.Size() == 4
			for _, l := range c.Leaves {
				if !g.IsPI(l) {
					allPI = false
				}
			}
			if !allPI {
				continue
			}
			got := Function(g, node, c.Leaves)
			want := g.GlobalFunc(aig.MakeLit(node, false))
			if !got.Equal(want) {
				t.Fatalf("cut function differs from global at node %d", node)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Error("no full-PI cuts checked")
	}
}

func TestHarvestProperties(t *testing.T) {
	g, _ := buildXorChain(8)
	for n := 2; n <= 5; n++ {
		fs := Harvest(g, n, Options{K: n, MaxPerNode: 32})
		seen := map[string]bool{}
		for _, f := range fs {
			if f.NumVars() != n {
				t.Fatalf("harvested function has %d vars, want %d", f.NumVars(), n)
			}
			if f.SupportSize() != n {
				t.Fatalf("harvested function has support %d, want %d", f.SupportSize(), n)
			}
			if seen[f.Hex()] {
				t.Fatalf("duplicate truth table %s in harvest", f.Hex())
			}
			seen[f.Hex()] = true
		}
		if n <= 4 && len(fs) == 0 {
			t.Errorf("harvest empty at n=%d", n)
		}
	}
}

func TestEnumerateKValidation(t *testing.T) {
	g := aig.New(1)
	defer func() {
		if recover() == nil {
			t.Error("K=0 accepted")
		}
	}()
	Enumerate(g, Options{K: 0})
}

func TestFunctionPanicsOnBadLeaves(t *testing.T) {
	g := aig.New(2)
	x := g.And(g.PI(0), g.PI(1))
	defer func() {
		if recover() == nil {
			t.Error("cone escaping the cut accepted")
		}
	}()
	Function(g, x.Node(), []uint32{g.PI(0).Node()}) // PI(1) not a leaf
}
