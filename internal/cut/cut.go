// Package cut enumerates k-feasible cuts of an AIG and computes each cut's
// local Boolean function. This is the workload-extraction pipeline of the
// paper's evaluation: "the truth tables are extracted from these benchmarks
// using cut enumeration" (§V-A). The enumeration is the standard bottom-up
// priority-cut algorithm used by technology mappers: a node's cuts are the
// pairwise unions of its fanins' cuts, filtered to at most k leaves,
// dominance-pruned, and truncated to a per-node limit; every node also keeps
// its trivial cut {node}.
package cut

import (
	"sort"

	"repro/internal/aig"
	"repro/internal/tt"
)

// Cut is a set of at most k leaf nodes, sorted ascending, with a 64-bit
// Bloom-style signature for fast dominance tests.
type Cut struct {
	Leaves []uint32
	sign   uint64
}

func newCut(leaves []uint32) Cut {
	c := Cut{Leaves: leaves}
	for _, l := range leaves {
		c.sign |= 1 << (l & 63)
	}
	return c
}

// Size returns the number of leaves.
func (c Cut) Size() int { return len(c.Leaves) }

// dominates reports whether c's leaves are a subset of o's (c dominates o:
// o is redundant).
func (c Cut) dominates(o Cut) bool {
	if len(c.Leaves) > len(o.Leaves) || c.sign&^o.sign != 0 {
		return false
	}
	i := 0
	for _, l := range o.Leaves {
		if i < len(c.Leaves) && c.Leaves[i] == l {
			i++
		}
	}
	return i == len(c.Leaves)
}

// mergeLeaves unions two sorted leaf lists, returning nil if the union
// exceeds k leaves.
func mergeLeaves(a, b []uint32, k int) []uint32 {
	out := make([]uint32, 0, k)
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		var v uint32
		switch {
		case i == len(a):
			v = b[j]
			j++
		case j == len(b):
			v = a[i]
			i++
		case a[i] < b[j]:
			v = a[i]
			i++
		case a[i] > b[j]:
			v = b[j]
			j++
		default:
			v = a[i]
			i++
			j++
		}
		if len(out) == k {
			return nil
		}
		out = append(out, v)
	}
	return out
}

// addCut inserts c into set with dominance filtering: if an existing cut is
// a subset of c, c is redundant and dropped; any existing cut that c
// dominates is removed. Duplicate leaf sets are kept once.
func addCut(set []Cut, c Cut) []Cut {
	for _, o := range set {
		if o.dominates(c) {
			return set
		}
	}
	out := set[:0]
	for _, o := range set {
		if !c.dominates(o) {
			out = append(out, o)
		}
	}
	return append(out, c)
}

// addCutDedup inserts c unless an identical leaf set is already present
// (harvest mode: dominated cuts are kept on purpose).
func addCutDedup(set []Cut, c Cut) []Cut {
	for _, o := range set {
		if o.sign == c.sign && len(o.Leaves) == len(c.Leaves) {
			same := true
			for i := range o.Leaves {
				if o.Leaves[i] != c.Leaves[i] {
					same = false
					break
				}
			}
			if same {
				return set
			}
		}
	}
	return append(set, c)
}

// Options controls the enumeration.
type Options struct {
	K          int // maximum cut size (leaves)
	MaxPerNode int // priority-cut limit per node (0 = default 16)

	// PreferLarge keeps the largest cuts per node instead of the smallest
	// and skips dominance pruning. Technology mappers want small cuts; the
	// workload harvester wants wide ones — an n-variable function can only
	// come from a cut with at least n leaves.
	PreferLarge bool
}

// Enumerate returns, for every node id, its cut set. PIs and the constant
// node get only their trivial cut.
func Enumerate(g *aig.AIG, opt Options) [][]Cut {
	if opt.K < 1 || opt.K > tt.MaxVars {
		panic("cut: K out of range")
	}
	limit := opt.MaxPerNode
	if limit <= 0 {
		limit = 16
	}
	cuts := make([][]Cut, g.NumNodes())
	cuts[0] = []Cut{newCut(nil)} // constant: empty cut
	for i := 0; i < g.NumPIs(); i++ {
		n := g.PI(i).Node()
		cuts[n] = []Cut{newCut([]uint32{n})}
	}
	for n := uint32(1 + g.NumPIs()); int(n) < g.NumNodes(); n++ {
		f0, f1 := g.Fanins(n)
		var set []Cut
		for _, c0 := range cuts[f0.Node()] {
			for _, c1 := range cuts[f1.Node()] {
				leaves := mergeLeaves(c0.Leaves, c1.Leaves, opt.K)
				if leaves == nil {
					continue
				}
				if opt.PreferLarge {
					set = addCutDedup(set, newCut(leaves))
				} else {
					set = addCut(set, newCut(leaves))
				}
			}
		}
		// Priority: smaller cuts first (mapping mode) or larger first
		// (harvest mode), then lexicographic for determinism.
		sort.Slice(set, func(a, b int) bool {
			if len(set[a].Leaves) != len(set[b].Leaves) {
				if opt.PreferLarge {
					return len(set[a].Leaves) > len(set[b].Leaves)
				}
				return len(set[a].Leaves) < len(set[b].Leaves)
			}
			for i := range set[a].Leaves {
				if set[a].Leaves[i] != set[b].Leaves[i] {
					return set[a].Leaves[i] < set[b].Leaves[i]
				}
			}
			return false
		})
		if len(set) > limit {
			set = set[:limit]
		}
		// The trivial cut keeps the node composable as a leaf upstream.
		set = append(set, newCut([]uint32{n}))
		cuts[n] = set
	}
	return cuts
}

// Function computes the local function of root expressed over the cut
// leaves, in leaf order: variable i of the result is leaves[i].
func Function(g *aig.AIG, root uint32, leaves []uint32) *tt.TT {
	k := len(leaves)
	memo := make(map[uint32]*tt.TT)
	for i, l := range leaves {
		memo[l] = tt.Projection(k, i)
	}
	memo[0] = tt.New(k) // constant false

	var eval func(n uint32) *tt.TT
	eval = func(n uint32) *tt.TT {
		if f, ok := memo[n]; ok {
			return f
		}
		if !g.IsAnd(n) {
			panic("cut: cone reaches a PI outside the cut leaves")
		}
		f0, f1 := g.Fanins(n)
		a := eval(f0.Node())
		if f0.Compl() {
			a = a.Not()
		}
		b := eval(f1.Node())
		if f1.Compl() {
			b = b.Not()
		}
		r := a.And(b)
		memo[n] = r
		return r
	}
	return eval(root)
}

// Harvest enumerates cuts of at least n leaves (up to opt.K), computes each
// cut's local function, minimizes its support, and returns the deduplicated
// functions that depend on exactly n variables. This mirrors the paper's
// workload construction — truth tables extracted by cut enumeration with
// duplicates deleted — and letting K exceed n admits cuts whose function
// collapses onto an n-variable support, enriching the population.
func Harvest(g *aig.AIG, n int, opt Options) []*tt.TT {
	if opt.K < n {
		opt.K = n
	}
	all := Enumerate(g, opt)
	seen := make(map[string]bool)
	var out []*tt.TT
	for node := uint32(1 + g.NumPIs()); int(node) < g.NumNodes(); node++ {
		for _, c := range all[node] {
			if c.Size() < n || (c.Size() == 1 && c.Leaves[0] == node) {
				continue
			}
			f := Function(g, node, c.Leaves)
			if f.SupportSize() != n {
				continue // support too small or spread over more leaves
			}
			if c.Size() != n {
				f = f.ShrinkSupport()
			}
			key := f.Hex()
			if seen[key] {
				continue
			}
			seen[key] = true
			out = append(out, f)
		}
	}
	return out
}
