// Package hypercube provides the hypercube-graph view of Boolean functions
// used throughout the paper's exposition (Figs. 1–4): a function f is the
// subgraph of the n-cube Q_n induced by its 1-minterms (the "onset graph").
// NPN transformations act on Q_n as automorphisms composed with complement,
// so induced subgraphs of NPN-equivalent functions are isomorphic — every
// graph invariant of the onset graph is an NPN signature. The package ties
// the graph picture to the paper's point characteristics: the degree of a
// 1-minterm X in the onset graph is exactly n − sen(f, X).
package hypercube

import (
	"math/bits"
	"sort"

	"repro/internal/tt"
)

// OnsetDegrees returns, for each 1-minterm of f in increasing minterm order,
// its degree in the induced subgraph (number of adjacent 1-minterms).
func OnsetDegrees(f *tt.TT) []int {
	n := f.NumVars()
	var deg []int
	for x := 0; x < f.NumBits(); x++ {
		if !f.Get(x) {
			continue
		}
		d := 0
		for i := 0; i < n; i++ {
			if f.Get(x ^ 1<<uint(i)) {
				d++
			}
		}
		deg = append(deg, d)
	}
	return deg
}

// DegreeSequence returns the sorted degree multiset of the onset graph — a
// graph invariant and hence an NPN signature (for fixed output phase).
func DegreeSequence(f *tt.TT) []int {
	deg := OnsetDegrees(f)
	sort.Ints(deg)
	return deg
}

// EdgeCount returns the number of edges of the onset graph. Each edge joins
// two adjacent 1-minterms; the count equals (Σ_i (|f| - inf'(f,i)))/... —
// directly: half the sum of onset degrees.
func EdgeCount(f *tt.TT) int {
	total := 0
	for _, d := range OnsetDegrees(f) {
		total += d
	}
	return total / 2
}

// Components returns the sizes of the connected components of the onset
// graph, sorted ascending — another invariant usable as a signature.
func Components(f *tt.TT) []int {
	n := f.NumVars()
	size := f.NumBits()
	visited := make([]bool, size)
	var sizes []int
	stack := make([]int, 0, 64)
	for s := 0; s < size; s++ {
		if !f.Get(s) || visited[s] {
			continue
		}
		count := 0
		stack = append(stack[:0], s)
		visited[s] = true
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			count++
			for i := 0; i < n; i++ {
				y := x ^ 1<<uint(i)
				if f.Get(y) && !visited[y] {
					visited[y] = true
					stack = append(stack, y)
				}
			}
		}
		sizes = append(sizes, count)
	}
	sort.Ints(sizes)
	return sizes
}

// IsConnected reports whether the onset graph is connected (constant-0 is
// vacuously connected).
func IsConnected(f *tt.TT) bool {
	return len(Components(f)) <= 1
}

// DistanceDistribution returns, for the onset vertices, the number of
// unordered pairs at each Hamming distance j = 1..n (index j-1). This is
// the same quantity the OSDV uses per sensitivity class, here over the whole
// onset.
func DistanceDistribution(f *tt.TT) []int {
	n := f.NumVars()
	var points []int
	for x := 0; x < f.NumBits(); x++ {
		if f.Get(x) {
			points = append(points, x)
		}
	}
	out := make([]int, n)
	for a := 0; a < len(points); a++ {
		for b := a + 1; b < len(points); b++ {
			j := bits.OnesCount(uint(points[a] ^ points[b]))
			out[j-1]++
		}
	}
	return out
}
