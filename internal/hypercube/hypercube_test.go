package hypercube

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/npn"
	"repro/internal/sig"
	"repro/internal/tt"
)

func TestDegreeVsSensitivity(t *testing.T) {
	// For every 1-minterm X: onset degree = n - sen(f, X). This is the
	// paper's bridge between the graph view and the point characteristic.
	rng := rand.New(rand.NewSource(120))
	for n := 1; n <= 8; n++ {
		for rep := 0; rep < 5; rep++ {
			f := tt.Random(n, rng)
			degIdx := 0
			for x := 0; x < f.NumBits(); x++ {
				if !f.Get(x) {
					continue
				}
				deg := OnsetDegrees(f)[degIdx]
				degIdx++
				if deg != n-sig.LocalSensitivity(f, x) {
					t.Fatalf("degree %d != n - sen = %d at x=%d (n=%d)", deg, n-sig.LocalSensitivity(f, x), x, n)
				}
			}
		}
	}
}

func TestMajorityOnsetGraph(t *testing.T) {
	maj := tt.MustFromHex(3, "e8")
	// Onset = {011,101,110,111}: 111 adjacent to the other three; they are
	// pairwise non-adjacent. Degrees sorted: 1,1,1,3. Edges: 3. Connected.
	if got := DegreeSequence(maj); !reflect.DeepEqual(got, []int{1, 1, 1, 3}) {
		t.Errorf("majority degree sequence = %v", got)
	}
	if EdgeCount(maj) != 3 {
		t.Errorf("majority edges = %d", EdgeCount(maj))
	}
	if !IsConnected(maj) {
		t.Error("majority onset must be connected")
	}
	if got := Components(maj); !reflect.DeepEqual(got, []int{4}) {
		t.Errorf("majority components = %v", got)
	}
}

func TestParityOnsetIsIsolatedVertices(t *testing.T) {
	// Parity's 1-minterms are pairwise at distance ≥ 2: the onset graph has
	// no edges and 2^(n-1) singleton components.
	for n := 2; n <= 6; n++ {
		p := tt.FromFunc(n, func(x int) bool {
			v := 0
			for b := 0; b < n; b++ {
				v ^= x >> b & 1
			}
			return v == 1
		})
		if EdgeCount(p) != 0 {
			t.Errorf("parity onset has edges at n=%d", n)
		}
		comp := Components(p)
		if len(comp) != 1<<(n-1) {
			t.Errorf("parity components = %d, want %d", len(comp), 1<<(n-1))
		}
	}
}

func TestInvariantsUnderNPTransforms(t *testing.T) {
	// Degree sequence, component sizes and distance distribution must be
	// invariant under input negation/permutation (output fixed).
	rng := rand.New(rand.NewSource(121))
	for rep := 0; rep < 30; rep++ {
		n := 2 + rng.Intn(5)
		f := tt.Random(n, rng)
		tr := npn.RandomTransform(n, rng)
		tr.OutNeg = false
		g := tr.Apply(f)
		if !reflect.DeepEqual(DegreeSequence(f), DegreeSequence(g)) {
			t.Fatal("degree sequence not NP-invariant")
		}
		if !reflect.DeepEqual(Components(f), Components(g)) {
			t.Fatal("component sizes not NP-invariant")
		}
		if !reflect.DeepEqual(DistanceDistribution(f), DistanceDistribution(g)) {
			t.Fatal("distance distribution not NP-invariant")
		}
	}
}

func TestEdgeCountMatchesInfluenceIdentity(t *testing.T) {
	// Σ_i |{X : f sensitive at i}| counts the boundary edges between onset
	// and offset. Total cube edges incident to onset = Σ degrees(onset) +
	// boundary = n·|f| ... verify: onset-internal edges = (n·|f| − 2·Σ_i inf(f,i))/2.
	rng := rand.New(rand.NewSource(122))
	for n := 1; n <= 8; n++ {
		f := tt.Random(n, rng)
		e := sig.NewEngine(n)
		boundary := 0
		for i := 0; i < n; i++ {
			boundary += 2 * e.Influence(f, i) // sensitive words, both sides
		}
		// Each boundary adjacency involves one onset endpoint.
		onsetBoundary := boundary / 2
		internal := (n*f.CountOnes() - onsetBoundary) / 2
		if got := EdgeCount(f); got != internal {
			t.Fatalf("edge count %d != influence identity %d (n=%d)", got, internal, n)
		}
	}
}

func TestDistanceDistributionEmptyAndFull(t *testing.T) {
	zero := tt.New(3)
	if got := DistanceDistribution(zero); !reflect.DeepEqual(got, []int{0, 0, 0}) {
		t.Errorf("const0 distance distribution = %v", got)
	}
	one := tt.Const(3, true)
	// All 28 pairs of Q3: 12 at distance 1, 12 at 2, 4 at 3.
	if got := DistanceDistribution(one); !reflect.DeepEqual(got, []int{12, 12, 4}) {
		t.Errorf("const1 distance distribution = %v", got)
	}
	if !IsConnected(zero) {
		t.Error("const0 vacuously connected")
	}
}
