// Package bench reproduces the paper's experimental evaluation: Table II
// (discriminating power of signature-vector combinations), Table III
// (runtime and accuracy of classifiers), Fig. 4 (existence of functions
// separated by point characteristics but not by cofactors), and Fig. 5
// (runtime stability and linearity). Each experiment is a pure function
// from parameters to a result struct with a paper-style text rendering, so
// the same code backs the npnbench CLI and the root testing.B benchmarks.
package bench

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/tt"
)

// WorkloadKind selects how classification inputs are produced.
type WorkloadKind int

const (
	// WorkloadCircuit harvests deduplicated cut functions from the synthetic
	// EPFL-like circuit suite (the paper's §V-A pipeline).
	WorkloadCircuit WorkloadKind = iota
	// WorkloadUniform draws uniform random truth tables.
	WorkloadUniform
	// WorkloadConsecutive draws consecutive-binary-encoding truth tables
	// (the Fig. 5 stream).
	WorkloadConsecutive
)

// WorkloadOpts parameterizes workload construction.
type WorkloadOpts struct {
	Kind WorkloadKind
	// MaxFuncs truncates the workload (0 = no limit). Random kinds generate
	// exactly MaxFuncs functions.
	MaxFuncs int
	Seed     int64
	// MaxPerNode bounds priority cuts per node for the circuit kind.
	MaxPerNode int
}

// Workload builds the n-variable function list.
func Workload(n int, o WorkloadOpts) []*tt.TT {
	switch o.Kind {
	case WorkloadCircuit:
		fs := gen.CircuitWorkload(n, o.MaxPerNode, o.Seed)
		if o.MaxFuncs > 0 && len(fs) > o.MaxFuncs {
			fs = fs[:o.MaxFuncs]
		}
		return fs
	case WorkloadUniform:
		count := o.MaxFuncs
		if count == 0 {
			count = 1000
		}
		return gen.Dedup(gen.UniformRandom(n, count, o.Seed))
	case WorkloadConsecutive:
		count := o.MaxFuncs
		if count == 0 {
			count = 1000
		}
		return gen.Consecutive(n, count, o.Seed)
	default:
		panic(fmt.Sprintf("bench: unknown workload kind %d", o.Kind))
	}
}
