package bench

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/match"
	"repro/internal/tt"
)

// Table2Configs are the signature-vector combinations of the paper's
// Table II, in column order.
func Table2Configs() []core.Config {
	return []core.Config{
		{OIV: true},
		{OCV1: true},
		{OSV: true},
		{OIV: true, OSV: true},
		{OCV1: true, OSV: true},
		{OCV1: true, OCV2: true, OSV: true},
		{OIV: true, OSV: true, OSDV: true},
		core.ConfigAll(),
	}
}

// Table2Row is one arity row of Table II.
type Table2Row struct {
	N        int
	NumFuncs int
	Exact    int
	Labels   []string
	Counts   []int
}

// RunTable2 reproduces Table II for the given arities: the number of classes
// produced by each signature combination versus the exact NPN class count.
func RunTable2(ns []int, opts WorkloadOpts) []Table2Row {
	var rows []Table2Row
	for _, n := range ns {
		fs := Workload(n, opts)
		row := Table2Row{N: n, NumFuncs: len(fs)}
		row.Exact = exactCount(fs)
		for _, cfg := range Table2Configs() {
			cfg.FastOSDV = true
			cls := core.New(n, cfg)
			row.Labels = append(row.Labels, cfg.Enabled())
			row.Counts = append(row.Counts, cls.NumClasses(fs))
		}
		rows = append(rows, row)
	}
	return rows
}

// exactCount picks the exact classifier appropriate for the arity, matching
// the paper's "Kitty when n ≤ 6 and the exact version in [19] when n > 6".
func exactCount(fs []*tt.TT) int {
	if len(fs) == 0 {
		return 0
	}
	return match.ExactClassCount(fs)
}

// FormatTable2 renders rows in the paper's layout.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-3s %-8s %-8s", "n", "#Func", "#Exact")
	if len(rows) > 0 {
		for _, l := range rows[0].Labels {
			fmt.Fprintf(&b, " %-18s", l)
		}
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%-3d %-8d %-8d", r.N, r.NumFuncs, r.Exact)
		for _, c := range r.Counts {
			fmt.Fprintf(&b, " %-18d", c)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
