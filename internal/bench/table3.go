package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/npn"
)

// Table3Entry is one classifier's measurement in a Table III row.
type Table3Entry struct {
	Name    string
	Classes int
	Seconds float64
	Skipped bool // classifier not applicable at this arity (like Kitty n>6)
}

// Table3Row is one arity row of Table III.
type Table3Row struct {
	N        int
	NumFuncs int
	Exact    int
	Entries  []Table3Entry
}

// RunTable3 reproduces Table III: class counts and wall-clock runtime of the
// exact (kitty-like) canonicalizer, the three testnpn-analogue baselines,
// and the paper's signature classifier ("ours").
func RunTable3(ns []int, opts WorkloadOpts) []Table3Row {
	var rows []Table3Row
	for _, n := range ns {
		fs := Workload(n, opts)
		row := Table3Row{N: n, NumFuncs: len(fs)}
		row.Exact = exactCount(fs)

		// Kitty-like exhaustive canonicalization, n ≤ 6 only.
		if n <= npn.MaxExactVars {
			classes, secs := timeIt(func() int { return npn.ClassCount(fs) })
			row.Entries = append(row.Entries, Table3Entry{Name: "kitty", Classes: classes, Seconds: secs})
		} else {
			row.Entries = append(row.Entries, Table3Entry{Name: "kitty", Skipped: true})
		}

		for _, bl := range []*baseline.Classifier{
			baseline.NewHuang(), baseline.NewHierarchical(), baseline.NewHybrid(),
		} {
			bl := bl
			classes, secs := timeIt(func() int { return bl.NumClasses(fs) })
			row.Entries = append(row.Entries, Table3Entry{Name: bl.Name(), Classes: classes, Seconds: secs})
		}

		cfg := core.ConfigAll()
		cfg.FastOSDV = true
		ours := core.New(n, cfg)
		classes, secs := timeIt(func() int { return ours.NumClasses(fs) })
		row.Entries = append(row.Entries, Table3Entry{Name: "ours", Classes: classes, Seconds: secs})

		rows = append(rows, row)
	}
	return rows
}

func timeIt(f func() int) (int, float64) {
	start := time.Now()
	v := f()
	return v, time.Since(start).Seconds()
}

// FormatTable3 renders rows in the paper's layout.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-3s %-8s %-8s", "n", "#Func", "#Exact")
	if len(rows) > 0 {
		for _, e := range rows[0].Entries {
			fmt.Fprintf(&b, " %-10s %-9s", e.Name+"#cls", "time(s)")
		}
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%-3d %-8d %-8d", r.N, r.NumFuncs, r.Exact)
		for _, e := range r.Entries {
			if e.Skipped {
				fmt.Fprintf(&b, " %-10s %-9s", "-", "-")
			} else {
				fmt.Fprintf(&b, " %-10d %-9.4f", e.Classes, e.Seconds)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Accuracy returns |classes - exact| / exact as a relative class-count error
// for reporting in EXPERIMENTS.md.
func Accuracy(classes, exact int) float64 {
	if exact == 0 {
		return 0
	}
	d := classes - exact
	if d < 0 {
		d = -d
	}
	return float64(d) / float64(exact)
}
