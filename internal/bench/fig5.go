package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/gen"
)

// Fig5Point is one measurement of Fig. 5: classifying `Count` functions of
// arity N, repeated over `Sets` different random sets; Min/Mean/Max expose
// the runtime variance that distinguishes the signature classifier (stable)
// from the hybrid canonical-form baseline (workload-dependent).
type Fig5Point struct {
	N     int
	Count int
	Ours  Stats
	Hyb   Stats
}

// Stats summarizes repeated timings in seconds.
type Stats struct {
	Min, Mean, Max float64
}

func summarize(xs []float64) Stats {
	s := Stats{Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		sum += x
	}
	s.Mean = sum / float64(len(xs))
	return s
}

// RunFig5 measures classification runtime versus workload size for
// consecutive-encoding random functions, for the paper's two arities
// (5-bit and 7-bit by default). sets controls how many differently-seeded
// workloads are timed per point.
func RunFig5(ns []int, counts []int, sets int, seed int64) []Fig5Point {
	var out []Fig5Point
	for _, n := range ns {
		for _, count := range counts {
			var oursT, hybT []float64
			for s := 0; s < sets; s++ {
				fs := gen.Consecutive(n, count, seed+int64(100*s))

				cfg := core.ConfigAll()
				cfg.FastOSDV = true
				ours := core.New(n, cfg)
				start := time.Now()
				ours.NumClasses(fs)
				oursT = append(oursT, time.Since(start).Seconds())

				hyb := baseline.NewHybrid()
				start = time.Now()
				hyb.NumClasses(fs)
				hybT = append(hybT, time.Since(start).Seconds())
			}
			out = append(out, Fig5Point{N: n, Count: count, Ours: summarize(oursT), Hyb: summarize(hybT)})
		}
	}
	return out
}

// FormatFig5 renders the series.
func FormatFig5(points []Fig5Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-9s  %-28s  %-28s\n", "n", "#funcs", "ours min/mean/max (s)", "hybrid min/mean/max (s)")
	for _, p := range points {
		fmt.Fprintf(&b, "%-4d %-9d  %-8.4f %-8.4f %-8.4f    %-8.4f %-8.4f %-8.4f\n",
			p.N, p.Count, p.Ours.Min, p.Ours.Mean, p.Ours.Max, p.Hyb.Min, p.Hyb.Mean, p.Hyb.Max)
	}
	return b.String()
}

// Spread returns (max-min)/mean, the relative runtime variability used to
// verify the stability claim.
func (s Stats) Spread() float64 {
	if s.Mean == 0 {
		return 0
	}
	return (s.Max - s.Min) / s.Mean
}
