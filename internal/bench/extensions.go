package bench

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// ExtRow measures the extension signatures beyond the paper's MSV — the
// Walsh weight moments (related work [7]) and a higher-order cofactor vector
// — quantifying the paper's closing remark that the approach "still has
// great potential to be extended".
type ExtRow struct {
	N        int
	NumFuncs int
	Exact    int
	Labels   []string
	Counts   []int
	Seconds  []float64
}

// ExtConfigs returns the extension ladder: the paper's full MSV, then MSV
// plus spectral moments, plus 3-ary cofactors, plus both.
func ExtConfigs() []core.Config {
	all := core.ConfigAll()
	all.FastOSDV = true
	spec := all
	spec.Spectral = true
	ocv3 := all
	ocv3.OCVL = 3
	both := spec
	both.OCVL = 3
	return []core.Config{all, spec, ocv3, both}
}

// RunExtensions measures class counts and runtime of the extension ladder.
func RunExtensions(ns []int, opts WorkloadOpts) []ExtRow {
	var rows []ExtRow
	for _, n := range ns {
		fs := Workload(n, opts)
		row := ExtRow{N: n, NumFuncs: len(fs), Exact: exactCount(fs)}
		for _, cfg := range ExtConfigs() {
			cls := core.New(n, cfg)
			classes, secs := timeIt(func() int { return cls.NumClasses(fs) })
			row.Labels = append(row.Labels, cfg.Enabled())
			row.Counts = append(row.Counts, classes)
			row.Seconds = append(row.Seconds, secs)
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatExtensions renders the ladder.
func FormatExtensions(rows []ExtRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-3s %-8s %-8s", "n", "#Func", "#Exact")
	if len(rows) > 0 {
		for _, l := range rows[0].Labels {
			fmt.Fprintf(&b, " %-32s", l)
		}
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%-3d %-8d %-8d", r.N, r.NumFuncs, r.Exact)
		for i := range r.Counts {
			fmt.Fprintf(&b, " %-20d (%.3fs)    ", r.Counts[i], r.Seconds[i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
