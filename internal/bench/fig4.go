package bench

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/tt"
)

// Fig4Report quantifies the claim of Fig. 4: there exist nonequivalent
// functions indistinguishable by cofactor vectors but separated by influence
// or sensitivity. Scanning a population of 4-input functions, it counts
// cofactor-key groups that the point characteristics refine further, and
// records one witness pair per phenomenon.
type Fig4Report struct {
	N            int
	NumFuncs     int
	OCV12Groups  int // groups under OCV1+OCV2
	SplitByOIV   int // of those, groups containing ≥ 2 distinct OIV keys
	OIVWitness   [2]string
	OCV12OIVGrps int // groups under OCV1+OCV2+OIV
	SplitByOSV   int // of those, groups containing ≥ 2 distinct OSV keys
	OSVWitness   [2]string
}

// RunFig4 scans all 2^16 4-variable functions when exhaustive is true, or
// the provided workload otherwise.
func RunFig4(fs []*tt.TT, exhaustive bool) Fig4Report {
	n := 4
	if exhaustive {
		fs = nil
		for w := uint64(0); w < 1<<16; w++ {
			fs = append(fs, tt.FromWord(n, w))
		}
	}
	r := Fig4Report{N: n, NumFuncs: len(fs)}

	cCof := core.New(n, core.Config{OCV1: true, OCV2: true})
	cOIV := core.New(n, core.Config{OIV: true})
	cCofOIV := core.New(n, core.Config{OCV1: true, OCV2: true, OIV: true})
	cOSV := core.New(n, core.Config{OSV: true})

	type group struct {
		subKeys map[string]*tt.TT
	}
	byCof := make(map[string]*group)
	byCofOIV := make(map[string]*group)
	for _, f := range fs {
		k := string(cCof.KeyBytes(f))
		g, ok := byCof[k]
		if !ok {
			g = &group{subKeys: make(map[string]*tt.TT)}
			byCof[k] = g
		}
		sub := string(cOIV.KeyBytes(f))
		if _, dup := g.subKeys[sub]; !dup {
			g.subKeys[sub] = f
		}

		k2 := string(cCofOIV.KeyBytes(f))
		g2, ok := byCofOIV[k2]
		if !ok {
			g2 = &group{subKeys: make(map[string]*tt.TT)}
			byCofOIV[k2] = g2
		}
		sub2 := string(cOSV.KeyBytes(f))
		if _, dup := g2.subKeys[sub2]; !dup {
			g2.subKeys[sub2] = f
		}
	}

	r.OCV12Groups = len(byCof)
	for _, g := range byCof {
		if len(g.subKeys) >= 2 {
			r.SplitByOIV++
			if r.OIVWitness[0] == "" {
				i := 0
				for _, f := range g.subKeys {
					if i < 2 {
						r.OIVWitness[i] = f.Hex()
					}
					i++
				}
			}
		}
	}
	r.OCV12OIVGrps = len(byCofOIV)
	for _, g := range byCofOIV {
		if len(g.subKeys) >= 2 {
			r.SplitByOSV++
			if r.OSVWitness[0] == "" {
				i := 0
				for _, f := range g.subKeys {
					if i < 2 {
						r.OSVWitness[i] = f.Hex()
					}
					i++
				}
			}
		}
	}
	return r
}

// Format renders the report.
func (r Fig4Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig.4 discriminator scan over %d functions of %d variables\n", r.NumFuncs, r.N)
	fmt.Fprintf(&b, "  OCV1+OCV2 groups:                 %d\n", r.OCV12Groups)
	fmt.Fprintf(&b, "  ... refined further by OIV:       %d (witness pair: %s, %s)\n",
		r.SplitByOIV, r.OIVWitness[0], r.OIVWitness[1])
	fmt.Fprintf(&b, "  OCV1+OCV2+OIV groups:             %d\n", r.OCV12OIVGrps)
	fmt.Fprintf(&b, "  ... refined further by OSV:       %d (witness pair: %s, %s)\n",
		r.SplitByOSV, r.OSVWitness[0], r.OSVWitness[1])
	return b.String()
}
