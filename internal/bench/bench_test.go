package bench

import (
	"strings"
	"testing"
)

func smallOpts() WorkloadOpts {
	return WorkloadOpts{Kind: WorkloadCircuit, MaxPerNode: 6, Seed: 7, MaxFuncs: 400}
}

func TestWorkloadKinds(t *testing.T) {
	circ := Workload(4, smallOpts())
	if len(circ) == 0 {
		t.Fatal("circuit workload empty")
	}
	uni := Workload(5, WorkloadOpts{Kind: WorkloadUniform, MaxFuncs: 200, Seed: 1})
	if len(uni) == 0 || len(uni) > 200 {
		t.Fatalf("uniform workload size %d", len(uni))
	}
	cons := Workload(5, WorkloadOpts{Kind: WorkloadConsecutive, MaxFuncs: 150, Seed: 1})
	if len(cons) != 150 {
		t.Fatalf("consecutive workload size %d", len(cons))
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown workload kind accepted")
		}
	}()
	Workload(4, WorkloadOpts{Kind: WorkloadKind(99)})
}

func TestRunTable2ShapeAndOrdering(t *testing.T) {
	rows := RunTable2([]int{4}, smallOpts())
	if len(rows) != 1 {
		t.Fatal("wrong row count")
	}
	r := rows[0]
	if len(r.Counts) != len(Table2Configs()) {
		t.Fatal("wrong column count")
	}
	// Every signature combination must under-count or equal the exact count
	// (signatures never split classes), and the all-signatures column must
	// dominate each single-vector column.
	all := r.Counts[len(r.Counts)-1]
	for i, c := range r.Counts {
		if c > r.Exact {
			t.Errorf("column %s produced %d classes > exact %d", r.Labels[i], c, r.Exact)
		}
		if c > all {
			t.Errorf("column %s produced %d classes > all-signatures %d", r.Labels[i], c, all)
		}
	}
	// The paper's qualitative ordering: OIV alone is weakest of the three
	// single vectors; OSV beats OCV1.
	byLabel := map[string]int{}
	for i, l := range r.Labels {
		byLabel[l] = r.Counts[i]
	}
	if byLabel["OSV"] < byLabel["OCV1"] {
		t.Errorf("expected OSV (%d) ≥ OCV1 (%d) on circuit workloads", byLabel["OSV"], byLabel["OCV1"])
	}
	if s := FormatTable2(rows); !strings.Contains(s, "#Exact") {
		t.Error("FormatTable2 missing header")
	}
}

func TestRunTable3ShapeAndAccuracy(t *testing.T) {
	rows := RunTable3([]int{4}, smallOpts())
	r := rows[0]
	if len(r.Entries) != 5 {
		t.Fatalf("expected 5 classifiers, got %d", len(r.Entries))
	}
	names := []string{"kitty", "huang13", "hier16", "hybrid20", "ours"}
	for i, e := range r.Entries {
		if e.Name != names[i] {
			t.Fatalf("entry %d = %s, want %s", i, e.Name, names[i])
		}
	}
	kitty, huang, hybrid, ours := r.Entries[0], r.Entries[1], r.Entries[3], r.Entries[4]
	if kitty.Classes != r.Exact {
		t.Errorf("kitty (exhaustive) %d != exact %d", kitty.Classes, r.Exact)
	}
	// Canonical-form baselines over-split; ours under-splits.
	if huang.Classes < r.Exact {
		t.Errorf("huang %d < exact %d: canonical form cannot merge classes", huang.Classes, r.Exact)
	}
	if hybrid.Classes < r.Exact {
		t.Errorf("hybrid %d < exact %d", hybrid.Classes, r.Exact)
	}
	if ours.Classes > r.Exact {
		t.Errorf("ours %d > exact %d: signatures cannot split classes", ours.Classes, r.Exact)
	}
	if s := FormatTable3(rows); !strings.Contains(s, "ours") {
		t.Error("FormatTable3 missing classifier name")
	}
}

func TestRunTable3SkipsKittyBeyondSix(t *testing.T) {
	rows := RunTable3([]int{7}, WorkloadOpts{Kind: WorkloadUniform, MaxFuncs: 60, Seed: 3})
	if !rows[0].Entries[0].Skipped {
		t.Error("kitty must be skipped at n=7")
	}
	if strings.Count(FormatTable3(rows), "-") < 2 {
		t.Error("skipped cells not rendered")
	}
}

func TestRunFig4FindsWitnesses(t *testing.T) {
	r := RunFig4(nil, true)
	if r.NumFuncs != 1<<16 {
		t.Fatalf("exhaustive scan covered %d functions", r.NumFuncs)
	}
	// The paper's Fig. 4 exhibits both phenomena; the exhaustive scan over
	// all 4-input functions must find them.
	if r.SplitByOIV == 0 || r.OIVWitness[0] == "" {
		t.Error("no OCV12-equal/OIV-different pair found; Fig. 4 claim not reproduced")
	}
	if r.SplitByOSV == 0 || r.OSVWitness[0] == "" {
		t.Error("no OCV12+OIV-equal/OSV-different pair found; Fig. 4 claim not reproduced")
	}
	if !strings.Contains(r.Format(), "witness") {
		t.Error("Format missing witnesses")
	}
}

func TestRunFig5StabilityShape(t *testing.T) {
	pts := RunFig5([]int{5}, []int{300, 600}, 2, 11)
	if len(pts) != 2 {
		t.Fatal("wrong point count")
	}
	for _, p := range pts {
		if p.Ours.Mean <= 0 || p.Hyb.Mean <= 0 {
			t.Error("timings must be positive")
		}
		if p.Ours.Min > p.Ours.Mean || p.Ours.Mean > p.Ours.Max {
			t.Error("stats ordering violated")
		}
	}
	if s := FormatFig5(pts); !strings.Contains(s, "ours") {
		t.Error("FormatFig5 missing header")
	}
}

func TestRunExtensionsLadder(t *testing.T) {
	rows := RunExtensions([]int{4}, smallOpts())
	r := rows[0]
	if len(r.Counts) != 4 {
		t.Fatalf("ladder has %d rungs", len(r.Counts))
	}
	base := r.Counts[0]
	for i, c := range r.Counts {
		// Extensions refine: counts are non-decreasing along the ladder and
		// never exceed exact.
		if c < base {
			t.Errorf("extension %s decreased classes: %d < %d", r.Labels[i], c, base)
		}
		if c > r.Exact {
			t.Errorf("extension %s exceeded exact: %d > %d", r.Labels[i], c, r.Exact)
		}
	}
	if s := FormatExtensions(rows); !strings.Contains(s, "SPEC") {
		t.Error("FormatExtensions missing labels")
	}
}

func TestAccuracyHelper(t *testing.T) {
	if Accuracy(100, 100) != 0 {
		t.Error("exact accuracy must be 0")
	}
	if Accuracy(110, 100) != 0.1 || Accuracy(90, 100) != 0.1 {
		t.Error("relative error wrong")
	}
	if Accuracy(5, 0) != 0 {
		t.Error("zero exact must not divide")
	}
}

func TestStatsSpread(t *testing.T) {
	s := summarize([]float64{1, 2, 3})
	if s.Min != 1 || s.Max != 3 || s.Mean != 2 {
		t.Error("summarize wrong")
	}
	if s.Spread() != 1 {
		t.Errorf("spread = %f, want 1", s.Spread())
	}
	if (Stats{}).Spread() != 0 {
		t.Error("zero-mean spread must be 0")
	}
}
