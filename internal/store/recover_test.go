package store

import (
	"errors"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/npn"
	"repro/internal/tt"
	"repro/internal/wal"
)

// classSet returns the store's representatives as a sorted hex list —
// the exact identity a recovery must reproduce.
func classSet(s *Store) []string {
	var out []string
	for _, f := range s.Snapshot() {
		out = append(out, f.Hex())
	}
	sort.Strings(out)
	return out
}

func sameClassSet(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRecoverKillDuringInserts is the acceptance scenario: a simulated
// kill -9 during a steady concurrent insert load must lose zero fsynced
// classes. The journal fsyncs every append, the writer is abandoned
// without Close (its buffers and file are simply dropped, as a SIGKILL
// drops them), and a fresh Recover must reproduce the exact class set —
// representatives and counts — of the pre-kill store.
func TestRecoverKillDuringInserts(t *testing.T) {
	dir := t.TempDir()
	n := 6
	s, _, err := Recover(dir, n, Options{Shards: 4}, wal.Options{SegmentBytes: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}

	const goroutines, per = 6, 40
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(500 + g)))
			for i := 0; i < per; i++ {
				f := tt.Random(n, rng)
				s.Add(f)
				// Also insert an NPN variant: a certified hit, must not
				// create (or log) a second class.
				s.Add(npn.RandomTransform(n, rng).Apply(f))
			}
		}(g)
	}
	wg.Wait()

	want := classSet(s)
	wantSize := s.Size()
	// Kill: no Close, no flush — every append was already fsynced.

	r, w2, err := Recover(dir, n, Options{Shards: 4}, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if r.Size() != wantSize {
		t.Fatalf("recovered %d classes, pre-kill store held %d", r.Size(), wantSize)
	}
	if got := classSet(r); !sameClassSet(got, want) {
		t.Fatalf("recovered class set differs: %d vs %d reps", len(got), len(want))
	}
	// The recovered store still serves: variants of recovered classes hit.
	rng := rand.New(rand.NewSource(9))
	for _, f := range r.Snapshot()[:10] {
		if _, _, _, _, ok := r.Lookup(npn.RandomTransform(n, rng).Apply(f)); !ok {
			t.Fatal("recovered store misses a variant of its own class")
		}
	}
	// Replay must not have re-journaled recovered classes: a second
	// recovery sees the same set, not a doubled log.
	r2, w3, err := Recover(dir, n, Options{Shards: 4}, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	if !sameClassSet(classSet(r2), want) {
		t.Fatal("second recovery diverged — recovery is re-logging classes")
	}
}

// TestRecoverLosesOnlyUnsyncedTail: with a long group-fsync interval, a
// kill drops whatever sat in the buffer — but recovery must still load a
// clean prefix, never a corrupt or partial class.
func TestRecoverLosesOnlyUnsyncedTail(t *testing.T) {
	dir := t.TempDir()
	n := 5
	s, w, err := Recover(dir, n, Options{}, wal.Options{FsyncEvery: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	inserted := make(map[string]bool)
	for i := 0; i < 50; i++ {
		f := tt.Random(n, rng)
		if _, _, isNew := s.Add(f); isNew {
			inserted[f.Hex()] = true
		}
		if i == 24 {
			if err := w.Sync(); err != nil { // an explicit group fsync mid-stream
				t.Fatal(err)
			}
		}
	}
	// Kill without Close: appends after the explicit Sync may be lost.
	r, w2, err := Recover(dir, n, Options{}, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if r.Size() == 0 || r.Size() > s.Size() {
		t.Fatalf("recovered %d classes from a store of %d", r.Size(), s.Size())
	}
	for _, f := range r.Snapshot() {
		if !inserted[f.Hex()] {
			t.Fatalf("recovery invented class %s", f.Hex())
		}
	}
}

// TestRecoverConfigMismatch: a log written under one MSV configuration
// must recover correctly into a store keyed by another — the logged keys
// are untrusted and every record takes the re-hash path.
func TestRecoverConfigMismatch(t *testing.T) {
	dir := t.TempDir()
	n := 6
	s, w, err := Recover(dir, n, Options{}, wal.Options{}) // full config
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	var fs []*tt.TT
	for i := 0; i < 20; i++ {
		f := tt.Random(n, rng)
		fs = append(fs, f)
		s.Add(f)
	}
	size := s.Size()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, w2, err := Recover(dir, n, Options{Config: ServingConfig()}, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if r.Size() != size {
		t.Fatalf("recovered %d classes under new config, want %d", r.Size(), size)
	}
	for _, f := range fs {
		if _, _, _, _, ok := r.Lookup(npn.RandomTransform(n, rng).Apply(f)); !ok {
			t.Fatal("class lost across a configuration change")
		}
	}
}

// TestRecoverAfterCompaction: snapshot + remaining log must recover the
// same store as the log alone did, including when stale segments overlap
// the snapshot after a crashed compaction.
func TestRecoverAfterCompaction(t *testing.T) {
	dir := t.TempDir()
	n := 7
	s, w, err := Recover(dir, n, Options{}, wal.Options{SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(29))
	for i := 0; i < 30; i++ {
		s.Add(tt.Random(n, rng))
	}
	want := classSet(s)

	c := &wal.Compactor{Dir: dir, N: n, W: w}
	if _, err := c.Compact(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ { // post-compaction inserts land in the log
		s.Add(tt.Random(n, rng))
	}
	want = classSet(s)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, w2, err := Recover(dir, n, Options{}, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameClassSet(classSet(r), want) {
		t.Fatal("recovery after compaction diverged")
	}
	w2.Close()
}

// failingJournal refuses every insert at log time.
type failingJournal struct{ calls int }

func (j *failingJournal) LogInsert(uint64, *tt.TT) error {
	j.calls++
	return errors.New("disk full")
}

func (j *failingJournal) Commit() error { return nil }

// TestJournalFailureRefusesInsert: write-ahead ordering means a class the
// journal cannot log is never published.
func TestJournalFailureRefusesInsert(t *testing.T) {
	s := New(5, Options{})
	j := &failingJournal{}
	s.SetJournal(j)
	f := tt.Random(5, rand.New(rand.NewSource(31)))
	key, index, isNew := s.Add(f)
	if isNew || index != -1 {
		t.Fatalf("Add published despite journal failure: key=%d index=%d new=%v", key, index, isNew)
	}
	if s.Size() != 0 {
		t.Fatalf("store holds %d classes after refused insert", s.Size())
	}
	if s.JournalErrors() != 1 || j.calls != 1 {
		t.Fatalf("journal errors %d (calls %d), want 1", s.JournalErrors(), j.calls)
	}
	if _, _, _, _, ok := s.Lookup(f); ok {
		t.Fatal("refused insert is servable")
	}
}

// commitFailJournal logs fine but cannot make the log durable.
type commitFailJournal struct{}

func (commitFailJournal) LogInsert(uint64, *tt.TT) error { return nil }
func (commitFailJournal) Commit() error                  { return errors.New("fsync failed") }

// TestCommitFailureReportsRefusal: a commit (fsync) failure happens after
// publication, so the class serves until restart — but the insert must
// still be reported refused (index -1) and counted, because it is not
// durable.
func TestCommitFailureReportsRefusal(t *testing.T) {
	s := New(5, Options{})
	s.SetJournal(commitFailJournal{})
	f := tt.Random(5, rand.New(rand.NewSource(37)))
	_, index, isNew := s.Add(f)
	if isNew || index != -1 {
		t.Fatalf("commit failure acknowledged as success: index=%d new=%v", index, isNew)
	}
	if s.JournalErrors() != 1 {
		t.Fatalf("journal errors %d, want 1", s.JournalErrors())
	}
	// Published-but-not-durable: served until restart, by design.
	if _, _, _, _, ok := s.Lookup(f); !ok {
		t.Fatal("committed-failed class should still serve until restart")
	}
}

// TestRecoverPreservesChainOrder: collision-chain indices are part of a
// class's served identity (key, index), so both recovery paths — log
// replay and snapshot re-add — must reproduce them exactly. Uses the
// known OCV1+OIV key collision pair 0118/0182.
func TestRecoverPreservesChainOrder(t *testing.T) {
	cfg := core.Config{OCV1: true, OIV: true}
	a := tt.MustFromHex(4, "0118")
	b := tt.MustFromHex(4, "0182")
	dir := t.TempDir()

	s, w, err := Recover(dir, 4, Options{Config: cfg}, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ka, ia, _ := s.Add(a)
	kb, ib, _ := s.Add(b)
	if ka != kb || ia != 0 || ib != 1 {
		t.Fatalf("pair no longer collides as (0,1): (%d,%d)", ia, ib)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	check := func(stage string) {
		t.Helper()
		r, w, err := Recover(dir, 4, Options{Config: cfg}, wal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		if _, key, idx, _, ok := r.Lookup(a); !ok || key != ka || idx != 0 {
			t.Fatalf("%s: a recovered as (%016x,%d), want (%016x,0)", stage, key, idx, ka)
		}
		if _, key, idx, _, ok := r.Lookup(b); !ok || key != kb || idx != 1 {
			t.Fatalf("%s: b recovered as (%016x,%d), want (%016x,1)", stage, key, idx, kb)
		}
	}
	check("log replay")

	c := &wal.Compactor{Dir: dir, N: 4}
	if _, err := c.Compact(); err != nil {
		t.Fatal(err)
	}
	check("snapshot re-add")
}

// TestRecoverEmptyDir: recovering a fresh directory yields an empty,
// journaled store whose inserts survive the next recovery.
func TestRecoverEmptyDir(t *testing.T) {
	dir := t.TempDir()
	s, w, err := Recover(dir+"/sub", 4, Options{}, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 0 {
		t.Fatalf("fresh recovery holds %d classes", s.Size())
	}
	s.Add(tt.MustFromHex(4, "1ee1"))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, w2, err := Recover(dir+"/sub", 4, Options{}, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if r.Size() != 1 {
		t.Fatalf("recovered %d classes, want 1", r.Size())
	}
}
