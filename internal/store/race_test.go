//go:build race

package store

// raceEnabled reports that the race detector is instrumenting this build;
// allocation gates skip under it because the instrumentation itself
// allocates on the measured path.
const raceEnabled = true
