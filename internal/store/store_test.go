package store

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/match"
	"repro/internal/npn"
	"repro/internal/tt"
)

func TestAddLookupWitness(t *testing.T) {
	rng := rand.New(rand.NewSource(300))
	n := 5
	s := New(n, Options{Shards: 4})
	base := make([]*tt.TT, 12)
	for i := range base {
		base[i] = tt.Random(n, rng)
		s.Add(base[i])
	}
	if s.Size() > len(base) {
		t.Fatalf("size %d > %d inserted", s.Size(), len(base))
	}
	for _, f := range base {
		variant := npn.RandomTransform(n, rng).Apply(f)
		rep, _, _, w, ok := s.Lookup(variant)
		if !ok {
			t.Fatalf("variant of stored class missed")
		}
		if !w.Apply(rep).Equal(variant) {
			t.Fatal("witness does not verify")
		}
	}
}

func TestLookupMissReturnsKey(t *testing.T) {
	s := New(3, Options{})
	s.Add(tt.MustFromHex(3, "e8"))
	f := tt.MustFromHex(3, "96") // parity: different class
	rep, key, index, _, ok := s.Lookup(f)
	if ok || rep != nil || index != -1 {
		t.Fatal("parity must miss a majority-only store")
	}
	if wantKey, _, _ := s.keyOf(f), 0, 0; key != wantKey {
		t.Fatalf("miss key %016x, want %016x", key, wantKey)
	}
}

// keyOf is a test helper computing the class key the way the store does.
func (s *Store) keyOf(f *tt.TT) uint64 {
	e := s.borrow()
	defer s.release(e)
	return e.cls.Hash(f)
}

// TestCollisionChain verifies the chained-representative semantics with a
// known MSV collision: 0118 and 0182 share their full MSV under OCV1+OIV
// but are not NPN-equivalent, so both must be stored as separate classes
// under one key.
func TestCollisionChain(t *testing.T) {
	n := 4
	a := tt.MustFromHex(n, "0118")
	b := tt.MustFromHex(n, "0182")
	cfg := core.Config{OCV1: true, OIV: true}

	cls := core.New(n, cfg)
	if string(cls.KeyBytes(a)) != string(cls.KeyBytes(b)) {
		t.Fatal("test pair no longer collides under OCV1+OIV")
	}
	if _, eq := match.NewMatcher(n).Equivalent(a, b); eq {
		t.Fatal("test pair is NPN equivalent; want inequivalent")
	}

	s := New(n, Options{Shards: 2, Config: cfg})
	ka, ia, newA := s.Add(a)
	kb, ib, newB := s.Add(b)
	if !newA || !newB {
		t.Fatalf("both colliding functions must found classes: newA=%v newB=%v", newA, newB)
	}
	if ka != kb {
		t.Fatalf("pair must share a key: %016x vs %016x", ka, kb)
	}
	if ia != 0 || ib != 1 {
		t.Fatalf("chain indices (%d,%d), want (0,1)", ia, ib)
	}
	if s.Size() != 2 || s.Collisions() != 1 {
		t.Fatalf("size=%d collisions=%d, want 2 and 1", s.Size(), s.Collisions())
	}
	for want, f := range []*tt.TT{a, b} {
		rep, _, idx, w, ok := s.Lookup(f)
		if !ok || idx != want {
			t.Fatalf("chained class %s: ok=%v idx=%d, want hit at %d", f.Hex(), ok, idx, want)
		}
		if !w.Apply(rep).Equal(f) {
			t.Fatalf("witness for %s does not verify", f.Hex())
		}
	}
	// Idempotence across the chain.
	if _, _, isNew := s.Add(a.Clone()); isNew {
		t.Fatal("re-add of chained representative created a class")
	}
}

// TestConcurrentAddLookup hammers the store from many goroutines (run
// under -race). Writers insert NPN variants of a shared set of base
// functions; readers look up other variants. At the end every base class
// must be present exactly once.
func TestConcurrentAddLookup(t *testing.T) {
	n := 5
	const (
		numBase    = 24
		goroutines = 8
		opsPerG    = 60
	)
	seedRng := rand.New(rand.NewSource(301))
	base := make([]*tt.TT, numBase)
	for i := range base {
		base[i] = tt.Random(n, seedRng)
	}

	s := New(n, Options{Shards: 8})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(400 + g)))
			for op := 0; op < opsPerG; op++ {
				f := npn.RandomTransform(n, rng).Apply(base[rng.Intn(numBase)])
				if op%2 == 0 {
					s.Add(f)
				} else {
					if rep, _, _, w, ok := s.Lookup(f); ok && !w.Apply(rep).Equal(f) {
						t.Error("concurrent witness does not verify")
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// Every class inserted at most once: the store must not exceed the
	// number of distinct base classes (variants of one base are one class).
	ref := New(n, Options{})
	distinct := 0
	for _, f := range base {
		if _, _, isNew := ref.Add(f); isNew {
			distinct++
		}
	}
	if s.Size() > distinct {
		t.Fatalf("store size %d exceeds %d distinct classes: duplicate class created under concurrency", s.Size(), distinct)
	}
	// And every base class must now be found.
	for _, f := range base {
		if _, _, _, _, ok := s.Lookup(f); !ok {
			// A base function is only guaranteed present if some goroutine
			// added one of its variants; with 480 adds over 24 classes this
			// is morally certain, so treat a miss as a real failure.
			t.Fatalf("base class %s missing after concurrent inserts", f.Hex())
		}
	}
}

// TestConcurrentCollisionChain races many writers on a single colliding
// key (run under -race): the chain must end up with exactly the two
// inequivalent classes no matter the interleaving.
func TestConcurrentCollisionChain(t *testing.T) {
	n := 4
	cfg := core.Config{OCV1: true, OIV: true}
	a := tt.MustFromHex(n, "0118")
	b := tt.MustFromHex(n, "0182")

	for trial := 0; trial < 10; trial++ {
		s := New(n, Options{Shards: 1, Config: cfg})
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				f := a
				if g%2 == 1 {
					f = b
				}
				for i := 0; i < 20; i++ {
					s.Add(f.Clone())
				}
			}(g)
		}
		wg.Wait()
		if s.Size() != 2 || s.Collisions() != 1 {
			t.Fatalf("trial %d: size=%d collisions=%d, want exactly the 2 chained classes",
				trial, s.Size(), s.Collisions())
		}
	}
}

// TestProfileCacheCounters checks the memoization contract: the first
// certification against a representative builds its profile (miss), later
// ones reuse it (hit), entries never exceed the class count, and verdicts
// are bit-identical to the uncached store.
func TestProfileCacheCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(310))
	n := 6
	cached := New(n, Options{Shards: 4})
	uncached := New(n, Options{Shards: 4, DisableProfileCache: true})
	base := make([]*tt.TT, 10)
	for i := range base {
		base[i] = tt.Random(n, rng)
		cached.Add(base[i])
		uncached.Add(base[i])
	}
	for round := 0; round < 3; round++ {
		for _, f := range base {
			v := npn.RandomTransform(n, rng).Apply(f)
			repC, keyC, idxC, wC, okC := cached.Lookup(v)
			repU, keyU, idxU, _, okU := uncached.Lookup(v)
			if okC != okU || keyC != keyU || idxC != idxU {
				t.Fatalf("cached and uncached stores disagree: (%v,%016x,%d) vs (%v,%016x,%d)",
					okC, keyC, idxC, okU, keyU, idxU)
			}
			if !okC {
				t.Fatal("variant of stored class missed")
			}
			if !repC.Equal(repU) || !wC.Apply(repC).Equal(v) {
				t.Fatal("cached witness or representative does not verify")
			}
		}
	}
	hits, misses, entries := cached.ProfileCacheStats()
	if misses != entries {
		t.Fatalf("misses %d != entries %d (each miss must memoize exactly one profile)", misses, entries)
	}
	if entries > int64(cached.Size()) {
		t.Fatalf("entries %d exceed class count %d", entries, cached.Size())
	}
	if hits == 0 {
		t.Fatal("repeated lookups produced no profile-cache hits")
	}
	if h, m, e := uncached.ProfileCacheStats(); h != 0 || m != 0 || e != 0 {
		t.Fatalf("disabled cache reported activity: hits=%d misses=%d entries=%d", h, m, e)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(302))
	n := 4
	s := New(n, Options{Shards: 4})
	for i := 0; i < 40; i++ {
		s.Add(tt.Random(n, rng))
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	s2, err := Load(&buf, n, Options{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Size() != s.Size() {
		t.Fatalf("size changed in round trip: %d -> %d", s.Size(), s2.Size())
	}
}

func TestShardSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	n := 5
	s := New(n, Options{Shards: 4})
	for i := 0; i < 50; i++ {
		s.Add(tt.Random(n, rng))
	}
	total := 0
	for _, c := range s.ShardSizes() {
		total += c
	}
	if total != s.Size() {
		t.Fatalf("shard sizes sum %d != size %d", total, s.Size())
	}
	if got := s.NumShards(); got != 4 {
		t.Fatalf("NumShards %d, want 4", got)
	}
}

func TestShardRounding(t *testing.T) {
	if got := New(3, Options{Shards: 5}).NumShards(); got != 8 {
		t.Fatalf("shards rounded to %d, want 8", got)
	}
	if got := New(3, Options{}).NumShards(); got != DefaultShards {
		t.Fatalf("default shards %d, want %d", got, DefaultShards)
	}
}

func TestArityMismatchPanics(t *testing.T) {
	s := New(4, Options{})
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch must panic")
		}
	}()
	s.Add(tt.MustFromHex(3, "e8"))
}

// TestSaveDuringConcurrentInserts pins down Save's doc-comment promise:
// concurrent inserts during Save/Snapshot never corrupt the snapshot —
// every snapshot taken mid-load parses cleanly, and every class it holds
// is a class the live store certifies as present.
func TestSaveDuringConcurrentInserts(t *testing.T) {
	n := 5
	s := New(n, Options{Shards: 4})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(800 + g)))
			for {
				select {
				case <-stop:
					return
				default:
					s.Add(tt.Random(n, rng))
				}
			}
		}(g)
	}

	prev := 0
	for i := 0; i < 25; i++ {
		var buf bytes.Buffer
		if err := s.Save(&buf); err != nil {
			t.Fatalf("save %d during inserts: %v", i, err)
		}
		loaded, err := Load(bytes.NewReader(buf.Bytes()), n, Options{})
		if err != nil {
			t.Fatalf("snapshot %d does not reload: %v", i, err)
		}
		if loaded.Size() < prev {
			t.Fatalf("snapshot %d shrank: %d classes after %d", i, loaded.Size(), prev)
		}
		prev = loaded.Size()
		for _, f := range loaded.Snapshot() {
			if _, _, _, _, ok := s.Lookup(f); !ok {
				t.Fatalf("snapshot %d holds class %s the live store cannot certify", i, f.Hex())
			}
		}
	}
	close(stop)
	wg.Wait()
}
