package store

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// noallocGated is the canonical list of //npn:noalloc-annotated
// functions: the PR 9 zero-alloc serving hot path behind a cached
// Store.Lookup hit. The same list is guarded twice — dynamically by the
// testing.AllocsPerRun gates (TestLookupHitAllocs here drives the whole
// chain; the sig and api alloc gates cover their pieces directly) and
// statically by the noalloc analyzer in cmd/npnlint, which checks each
// annotation against `go build -gcflags=-m`. TestNoallocParity pins the
// annotation set in the source tree to this list so the static and
// dynamic guards cannot silently diverge: adding or dropping an
// annotation without updating the canonical list (and asking whether
// the alloc gates still exercise the new set) fails here.
var noallocGated = []string{
	"internal/core.(*Classifier).Hash",
	"internal/core.(*Classifier).keyView",
	"internal/match.(*Matcher).QueryProfile",
	"internal/npn.(Transform).ApplyInto",
	"internal/service.(*lruCache).getBytes",
	"internal/service.appendCacheKey",
	"internal/sig.(*Engine).AppendOCV1",
	"internal/sig.(*Engine).AppendOCV2",
	"internal/sig.(*Engine).AppendOIV",
	"internal/store.(*Store).LookupCtx",
	"internal/store.(*Store).certifyChain",
	"internal/store.(*shard).snapshot",
}

// TestNoallocParity diffs the //npn:noalloc annotations found in the
// module source against noallocGated, both ways.
func TestNoallocParity(t *testing.T) {
	root := moduleRootDir(t)
	got := scanNoallocAnnotations(t, root)
	want := append([]string(nil), noallocGated...)
	sort.Strings(got)
	sort.Strings(want)

	gotSet := map[string]bool{}
	for _, g := range got {
		gotSet[g] = true
	}
	wantSet := map[string]bool{}
	for _, w := range want {
		wantSet[w] = true
	}
	for _, w := range want {
		if !gotSet[w] {
			t.Errorf("noallocGated lists %s but no //npn:noalloc annotation was found on it", w)
		}
	}
	for _, g := range got {
		if !wantSet[g] {
			t.Errorf("%s is annotated //npn:noalloc but missing from the canonical noallocGated list; add it (and check the AllocsPerRun gates still cover it)", g)
		}
	}
}

// moduleRootDir walks up from the test's working directory to go.mod.
func moduleRootDir(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test working directory")
		}
		dir = parent
	}
}

// scanNoallocAnnotations parses every non-test module source file
// (skipping testdata fixtures, which annotate deliberately-escaping
// functions) and returns "pkgdir.(Recv).Name" identifiers for each
// function carrying the //npn:noalloc directive in its doc comment.
func scanNoallocAnnotations(t *testing.T, root string) []string {
	t.Helper()
	const directive = "//npn:noalloc" // == noalloc.Directive; kept literal to avoid a lint dependency
	var out []string
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || strings.HasPrefix(name, ".") && path != root {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return err
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			annotated := false
			for _, c := range fd.Doc.List {
				if c.Text == directive || strings.HasPrefix(c.Text, directive+" ") {
					annotated = true
					break
				}
			}
			if !annotated {
				continue
			}
			rel, err := filepath.Rel(root, filepath.Dir(path))
			if err != nil {
				return err
			}
			id := filepath.ToSlash(rel) + "."
			if fd.Recv != nil && len(fd.Recv.List) == 1 {
				id += "(" + types.ExprString(fd.Recv.List[0].Type) + ")."
			}
			out = append(out, id+fd.Name.Name)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	return out
}
