//go:build !race

package store

const raceEnabled = false
