package store

import (
	"math/rand"
	"testing"

	"repro/internal/npn"
	"repro/internal/tt"
)

// TestLookupHitAllocs gates the zero-alloc serving hot path: a cached
// Lookup hit against a warm store — MSV hashing, query profile build, and
// matcher certification included — must not allocate in steady state.
// The bound is 2 (not 0) only to absorb a GC emptying the engine pool
// mid-measurement; the steady-state path itself allocates nothing.
//
// The functions on this path carry //npn:noalloc annotations checked
// statically by cmd/npnlint against the compiler's escape analysis;
// TestNoallocParity (noalloc_parity_test.go) keeps the annotation set
// and this dynamic gate covering the same canonical list.
func TestLookupHitAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates on the measured path")
	}
	for _, n := range []int{6, 8} {
		s := New(n, Options{Config: ServingConfig()})
		rng := rand.New(rand.NewSource(int64(900 + n)))
		fs := make([]*tt.TT, 64)
		for i := range fs {
			fs[i] = tt.Random(n, rng)
			s.Add(fs[i])
		}
		// Disguised queries exercise real certification, not Equal fast
		// paths; a warm pass populates the profile cache and engine pool.
		queries := make([]*tt.TT, len(fs))
		for i, f := range fs {
			tr := npn.Identity(n)
			tr.Perm[0], tr.Perm[n-1] = uint8(n-1), 0
			tr.NegMask = 0b11
			tr.OutNeg = i%2 == 1
			queries[i] = tr.Apply(f)
		}
		for _, q := range queries {
			if _, _, _, _, ok := s.Lookup(q); !ok {
				t.Fatalf("n=%d: warm lookup missed", n)
			}
		}
		i := 0
		allocs := testing.AllocsPerRun(200, func() {
			q := queries[i%len(queries)]
			i++
			if _, _, _, _, ok := s.Lookup(q); !ok {
				t.Fatalf("n=%d: lookup missed", n)
			}
		})
		if allocs > 2 {
			t.Errorf("n=%d: cached serving Lookup allocates %.1f/op, want ~0", n, allocs)
		}
	}
}
