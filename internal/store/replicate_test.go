package store

import (
	"math/rand"
	"testing"

	"repro/internal/tt"
)

// TestReadOnlyStoreRefusesAdd: a read-only store refuses the public
// insert path but accepts replicated applies, and serves lookups for
// what arrived through them.
func TestReadOnlyStoreRefusesAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	primary := New(6, Options{})
	follower := New(6, Options{ReadOnly: true})
	if !follower.ReadOnly() {
		t.Fatal("ReadOnly not reported")
	}

	f := tt.Random(6, rng)
	if key, idx, isNew := follower.Add(f); isNew || idx != -1 || key != 0 {
		t.Fatalf("read-only Add returned (%d,%d,%v), want refusal", key, idx, isNew)
	}
	if follower.Size() != 0 {
		t.Fatal("refused Add still published")
	}

	// Replicate through the trusted path: same config, so the primary's
	// key is trusted verbatim.
	key, idx, isNew := primary.Add(f)
	if !isNew {
		t.Fatal("primary insert not new")
	}
	if !follower.ApplyLogRecord(primary.Fingerprint(), key, f) {
		t.Fatal("trusted apply not published")
	}
	if follower.ApplyLogRecord(primary.Fingerprint(), key, f) {
		t.Fatal("duplicate apply published twice")
	}
	rep, gotKey, gotIdx, _, ok := follower.Lookup(f)
	if !ok || gotKey != key || gotIdx != idx || !rep.Equal(f) {
		t.Fatalf("replicated lookup (%v, %d, %d)", ok, gotKey, gotIdx)
	}
}

// TestApplyLogRecordUntrusted: a record whose segment meta does not match
// the applying store's fingerprint must be re-hashed — the bogus logged
// key is ignored and the class lands under the store's own key.
func TestApplyLogRecordUntrusted(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	s := New(5, Options{ReadOnly: true})
	f := tt.Random(5, rng)
	const bogusKey = 0xdeadbeef
	if !s.ApplyLogRecord(s.Fingerprint()+1, bogusKey, f) {
		t.Fatal("untrusted apply not published")
	}
	rep, key, _, _, ok := s.Lookup(f)
	if !ok || !rep.Equal(f) {
		t.Fatal("untrusted apply not servable")
	}
	if key == bogusKey {
		t.Fatal("bogus logged key was trusted")
	}
	// Idempotent for NPN-equivalent duplicates too (certified path).
	if s.ApplyLogRecord(s.Fingerprint()+1, bogusKey, f) {
		t.Fatal("duplicate untrusted apply published twice")
	}
}

// TestApplySnapshotDeterministicChains: applying the same snapshot twice
// publishes once, and chain indices reproduce the snapshot order — the
// identity contract followers rely on.
func TestApplySnapshotDeterministicChains(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	var fs []*tt.TT
	for i := 0; i < 40; i++ {
		fs = append(fs, tt.Random(4, rng))
	}
	// Dedup exact tables so the published count is predictable.
	seen := map[string]bool{}
	uniq := fs[:0]
	for _, f := range fs {
		if h := f.Hex(); !seen[h] {
			seen[h] = true
			uniq = append(uniq, f)
		}
	}

	a := New(4, Options{})
	b := New(4, Options{ReadOnly: true})
	if got := a.ApplySnapshot(uniq); got != len(uniq) {
		t.Fatalf("first apply published %d, want %d", got, len(uniq))
	}
	if got := a.ApplySnapshot(uniq); got != 0 {
		t.Fatalf("re-apply published %d, want 0", got)
	}
	b.ApplySnapshot(uniq)
	for _, f := range uniq {
		_, ka, ia, _, oka := a.Lookup(f)
		_, kb, ib, _, okb := b.Lookup(f)
		if !oka || !okb || ka != kb || ia != ib {
			t.Fatalf("identity diverged: (%v %d %d) vs (%v %d %d)", oka, ka, ia, okb, kb, ib)
		}
	}
}
