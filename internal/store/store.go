// Package store implements a sharded, concurrency-safe NPN class store —
// the online counterpart of internal/classdb. Functions are keyed by the
// 64-bit hash of their canonical MSV (internal/core); the key selects one
// of N shards, each guarded by its own RWMutex, so lookups and inserts of
// unrelated classes never contend.
//
// Signatures are a necessary condition for NPN equivalence only, so two
// inequivalent functions may share a key. Every key therefore holds a
// collision chain of representatives: Add certifies f against each chain
// member with the exact matcher before founding a new class, and Lookup
// returns the member the matcher certifies together with a witness
// transform. No class is ever silently merged and no false equivalence is
// ever reported — the matcher has the last word on every hit.
//
// The signature engines (core.Classifier, match.Matcher) reuse scratch
// buffers and must not be shared between goroutines; the store keeps a
// sync.Pool of engine pairs so concurrent callers each borrow a private
// pair for the duration of one operation. All heavy work — MSV hashing and
// exact matching — runs outside the shard locks: locks are held only to
// read or append a chain slice. Representatives are cloned on insert and
// never mutated, so a chain header copied under RLock stays valid after
// the lock is released.
package store

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/core"
	"repro/internal/match"
	"repro/internal/npn"
	"repro/internal/tt"
	"repro/internal/ttio"
)

// DefaultShards is the shard count used when Options.Shards is zero.
const DefaultShards = 16

// Options configures a Store.
type Options struct {
	// Shards is the number of lock shards, rounded up to a power of two.
	// Zero means DefaultShards.
	Shards int
	// Config selects the signature vectors of the MSV key. The zero value
	// means the paper's full configuration (ConfigAll + FastOSDV). Weaker
	// configurations collide more often and grow longer chains; correctness
	// is unaffected because membership is always matcher-certified.
	Config core.Config
}

// engines is one borrowed pair of stateful signature engines.
type engines struct {
	cls *core.Classifier
	m   *match.Matcher
}

// shard is one lock domain: a chain map for the keys that hash into it.
type shard struct {
	mu     sync.RWMutex
	chains map[uint64][]*tt.TT
}

// Store is a sharded NPN class store for functions of a fixed arity. All
// methods are safe for concurrent use.
type Store struct {
	n      int
	cfg    core.Config
	mask   uint64
	shards []shard
	pool   sync.Pool
}

// New returns an empty store for n-variable functions.
func New(n int, o Options) *Store {
	cfg := o.Config
	if cfg == (core.Config{}) {
		cfg = core.ConfigAll()
		cfg.FastOSDV = true
	}
	shards := o.Shards
	if shards <= 0 {
		shards = DefaultShards
	}
	size := 1
	for size < shards {
		size <<= 1
	}
	s := &Store{n: n, cfg: cfg, mask: uint64(size - 1), shards: make([]shard, size)}
	for i := range s.shards {
		s.shards[i].chains = make(map[uint64][]*tt.TT)
	}
	s.pool.New = func() any {
		return &engines{cls: core.New(n, cfg), m: match.NewMatcher(n)}
	}
	return s
}

// NumVars returns the arity the store serves.
func (s *Store) NumVars() int { return s.n }

// NumShards returns the number of lock shards.
func (s *Store) NumShards() int { return len(s.shards) }

// Config returns the signature selection of the MSV key.
func (s *Store) Config() core.Config { return s.cfg }

// borrow gets a private engine pair; release returns it to the pool.
func (s *Store) borrow() *engines   { return s.pool.Get().(*engines) }
func (s *Store) release(e *engines) { s.pool.Put(e) }

// shardFor maps a class key to its shard.
func (s *Store) shardFor(key uint64) *shard { return &s.shards[key&s.mask] }

// Add inserts f's class if absent, returning the class key, the position
// of its representative in the key's collision chain, and whether a new
// class was created (f becomes a representative). f is certified against
// every chain member with the exact matcher, so an MSV collision founds a
// new chained class rather than silently merging.
func (s *Store) Add(f *tt.TT) (key uint64, index int, isNew bool) {
	if f.NumVars() != s.n {
		panic("store: function arity does not match store")
	}
	e := s.borrow()
	defer s.release(e)

	key = e.cls.Hash(f)
	sh := s.shardFor(key)

	// Fast path: scan the chain as published so far without holding any
	// lock during the (expensive) exact matching.
	sh.mu.RLock()
	chain := sh.chains[key]
	sh.mu.RUnlock()
	for i, rep := range chain {
		if _, eq := e.m.Equivalent(rep, f); eq {
			return key, i, false
		}
	}

	// Slow path: take the write lock, certify only against members that
	// raced in since the snapshot, then append. Chain elements are
	// immutable, so the earlier scan stays valid.
	sh.mu.Lock()
	cur := sh.chains[key]
	for i := len(chain); i < len(cur); i++ {
		if _, eq := e.m.Equivalent(cur[i], f); eq {
			sh.mu.Unlock()
			return key, i, false
		}
	}
	sh.chains[key] = append(cur, f.Clone())
	sh.mu.Unlock()
	return key, len(cur), true
}

// Lookup finds f's class. On a hit it returns the chain representative
// certified by the exact matcher, the class identity (key, chain index),
// and a witness transform τ with τ(rep) = f. A key hit whose chain holds
// no equivalent representative is a miss: f's class is not stored. The
// returned key is valid even on a miss (it identifies where f's class
// would live).
func (s *Store) Lookup(f *tt.TT) (rep *tt.TT, key uint64, index int, witness npn.Transform, ok bool) {
	if f.NumVars() != s.n {
		panic("store: function arity does not match store")
	}
	e := s.borrow()
	defer s.release(e)

	key = e.cls.Hash(f)
	sh := s.shardFor(key)
	sh.mu.RLock()
	chain := sh.chains[key]
	sh.mu.RUnlock()
	for i, r := range chain {
		if tr, eq := e.m.Equivalent(r, f); eq {
			return r, key, i, tr, true
		}
	}
	return nil, key, -1, npn.Transform{}, false
}

// forEachChain visits every collision chain, holding one shard's read
// lock at a time.
func (s *Store) forEachChain(fn func(shardIdx int, chain []*tt.TT)) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, chain := range sh.chains {
			fn(i, chain)
		}
		sh.mu.RUnlock()
	}
}

// Size returns the number of classes stored (chained collision
// representatives count individually).
func (s *Store) Size() int {
	total := 0
	s.forEachChain(func(_ int, chain []*tt.TT) { total += len(chain) })
	return total
}

// Collisions returns the number of representatives beyond the first of
// their key — classes a key-only store would have silently merged.
func (s *Store) Collisions() int {
	extra := 0
	s.forEachChain(func(_ int, chain []*tt.TT) { extra += len(chain) - 1 })
	return extra
}

// ShardSizes returns the per-shard class counts, for load-balance
// introspection.
func (s *Store) ShardSizes() []int {
	out := make([]int, len(s.shards))
	s.forEachChain(func(i int, chain []*tt.TT) { out[i] += len(chain) })
	return out
}

// Snapshot returns a point-in-time copy of every representative. The
// returned tables are the store's own (immutable) clones; callers must
// not modify them.
func (s *Store) Snapshot() []*tt.TT {
	var fs []*tt.TT
	s.forEachChain(func(_ int, chain []*tt.TT) { fs = append(fs, chain...) })
	return fs
}

// Save writes a point-in-time snapshot as a ttio workload file (one
// representative per line) with an arity header comment. Concurrent
// inserts during Save land in or after the snapshot, never corrupt it.
func (s *Store) Save(w io.Writer) error {
	fs := s.Snapshot()
	return ttio.Write(w, fs, fmt.Sprintf("store n=%d shards=%d classes=%d", s.n, len(s.shards), len(fs)))
}

// Load reads a snapshot written by Save (or any ttio workload of the
// right arity) into a fresh store with the given options.
func Load(r io.Reader, n int, o Options) (*Store, error) {
	fs, err := ttio.Read(r, n)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := New(n, o)
	for _, f := range fs {
		s.Add(f)
	}
	return s, nil
}
