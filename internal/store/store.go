// Package store implements a sharded, concurrency-safe NPN class store —
// the online counterpart of internal/classdb. Functions are keyed by the
// 64-bit hash of their canonical MSV (internal/core); the key selects one
// of N shards, each guarded by its own RWMutex, so lookups and inserts of
// unrelated classes never contend.
//
// Signatures are a necessary condition for NPN equivalence only, so two
// inequivalent functions may share a key. Every key therefore holds a
// collision chain of representatives: Add certifies f against each chain
// member with the exact matcher before founding a new class, and Lookup
// returns the member the matcher certifies together with a witness
// transform. No class is ever silently merged and no false equivalence is
// ever reported — the matcher has the last word on every hit.
//
// The signature engines (core.Classifier, match.Matcher) reuse scratch
// buffers and must not be shared between goroutines; the store keeps a
// sync.Pool of engine pairs so concurrent callers each borrow a private
// pair for the duration of one operation. All heavy work — MSV hashing and
// exact matching — runs outside the shard locks: locks are held only to
// read or append a chain slice. Representatives are cloned on insert and
// never mutated, so a chain header copied under RLock stays valid after
// the lock is released.
//
// Certification is profile-cached: each shard keeps a map of memoized
// match.RepProfile values parallel to its chains, guarded by the same
// RWMutex. The first query against a representative builds its profile
// (a miss); every later query reuses it (a hit), so the hot serve path
// stops rebuilding the representative's signature profile per query and
// builds only the query's own profile — once per Lookup, shared across
// the whole collision chain and both output phases. Profiles are keyed by
// (class key, chain index) and representatives are immutable and never
// removed, so a memoized profile can never go stale; chain growth only
// appends fresh slots. Options.DisableProfileCache restores the original
// rebuild-per-query path for comparison.
//
// Durability is layered on through two hooks. A Journal (internal/wal's
// Writer in production) receives every certified new-class insert under
// the shard write lock, before the class is published — write-ahead
// ordering, so a crash can lose an unacknowledged insert but never hold a
// served class that was not logged. Recover rebuilds a store from a WAL
// directory: the base snapshot is re-added in parallel, then the log is
// replayed — trusting each record's logged class key when the segment was
// written under the same MSV configuration (skipping signature hashing
// and matcher certification entirely), re-hashing otherwise — and finally
// a fresh Writer is attached as the journal.
package store

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/match"
	"repro/internal/npn"
	"repro/internal/obs"
	"repro/internal/tt"
	"repro/internal/ttio"
)

// DefaultShards is the shard count used when Options.Shards is zero.
const DefaultShards = 16

// ServingConfig returns the MSV selection tuned for the online serve
// path: only the cheap vectors (OCV1 + OIV), so the per-query key costs a
// fraction of the paper's full configuration. The weaker key collides
// more often and grows longer chains, but chain certification is exactly
// what the representative-profile cache makes cheap — the trade the cache
// exists to enable. Correctness is unaffected: membership is always
// matcher-certified.
func ServingConfig() core.Config {
	return core.Config{OCV1: true, OIV: true}
}

// Options configures a Store.
type Options struct {
	// Shards is the number of lock shards, rounded up to a power of two.
	// Zero means DefaultShards.
	Shards int
	// Config selects the signature vectors of the MSV key. The zero value
	// means the paper's full configuration (ConfigAll + FastOSDV). Weaker
	// configurations collide more often and grow longer chains; correctness
	// is unaffected because membership is always matcher-certified.
	Config core.Config
	// DisableProfileCache turns off the per-shard memo of representative
	// profiles: every Lookup/Add rebuilds both sides' signature profiles
	// per chain member, as the store did before caching. Useful for
	// benchmarking the cache and for memory-constrained deployments.
	DisableProfileCache bool
	// ReadOnly refuses every Add: the public insert path returns a
	// refusal (index -1) without touching the store. Replication followers
	// run read-only stores — classes arrive only through the replicated
	// apply path (ApplySnapshot, ApplyLogRecord), which bypasses the gate.
	ReadOnly bool
}

// Journal receives every certified new-class insert before it is
// published. LogInsert is called under the owning shard's write lock, so
// implementations must buffer cheaply and must not call back into the
// store; an error refuses the insert (the class is not published).
// Commit is called once per logged insert after publication, outside any
// lock — it is where a sync-every-append journal pays its fsync, so disk
// latency never stalls the shard. internal/wal's Writer implements both.
type Journal interface {
	LogInsert(key uint64, f *tt.TT) error
	Commit() error
}

// CtxJournal is an optional Journal extension: a journal implementing it
// receives the request context on both phases so it can attach tracing
// spans to the append and the fsync wait. internal/wal's Writer
// implements it; plain Journals keep working unchanged.
type CtxJournal interface {
	Journal
	LogInsertCtx(ctx context.Context, key uint64, f *tt.TT) error
	CommitCtx(ctx context.Context) error
}

// logInsertCtx routes a journal append through the context-aware variant
// when the journal offers one.
func logInsertCtx(ctx context.Context, j Journal, key uint64, f *tt.TT) error {
	if cj, ok := j.(CtxJournal); ok {
		return cj.LogInsertCtx(ctx, key, f)
	}
	return j.LogInsert(key, f)
}

// commitCtx routes a journal commit through the context-aware variant
// when the journal offers one.
func commitCtx(ctx context.Context, j Journal) error {
	if cj, ok := j.(CtxJournal); ok {
		return cj.CommitCtx(ctx)
	}
	return j.Commit()
}

// engines is one borrowed pair of stateful signature engines.
type engines struct {
	cls *core.Classifier
	m   *match.Matcher
}

// chain is one key's collision chain: the certified representatives and
// their memoized matcher profiles, index-parallel. The profiles slice may
// lag reps (new representatives start unprofiled) and holds nil in
// not-yet-built slots; both slices are read and grown only under the
// owning shard's mutex, and their elements are immutable once published.
type chain struct {
	reps  []*tt.TT
	profs []*match.RepProfile
}

// shard is one lock domain: the chain-and-profile map for the keys that
// hash into it, guarded by one RWMutex.
type shard struct {
	mu     sync.RWMutex
	chains map[uint64]*chain
}

// Store is a sharded NPN class store for functions of a fixed arity. All
// methods are safe for concurrent use.
type Store struct {
	n         int
	cfg       core.Config
	fp        uint64 // configFingerprint(cfg), the segment meta word
	mask      uint64
	shards    []shard
	pool      sync.Pool
	noProfile bool
	readOnly  bool

	// journal, when set, is the write-ahead hook for new-class inserts.
	// Written once by SetJournal before concurrent use, read by Add.
	journal     Journal
	journalErrs atomic.Int64

	// Profile-cache counters: a hit reuses a memoized representative
	// profile, a miss builds one, entries counts memoized profiles.
	profHits    atomic.Int64
	profMisses  atomic.Int64
	profEntries atomic.Int64
}

// New returns an empty store for n-variable functions.
func New(n int, o Options) *Store {
	cfg := o.Config
	if cfg == (core.Config{}) {
		cfg = core.ConfigAll()
		cfg.FastOSDV = true
	}
	shards := o.Shards
	if shards <= 0 {
		shards = DefaultShards
	}
	size := 1
	for size < shards {
		size <<= 1
	}
	s := &Store{n: n, cfg: cfg, fp: configFingerprint(cfg), mask: uint64(size - 1),
		shards: make([]shard, size), noProfile: o.DisableProfileCache, readOnly: o.ReadOnly}
	for i := range s.shards {
		s.shards[i].chains = make(map[uint64]*chain)
	}
	s.pool.New = func() any {
		return &engines{cls: core.New(n, cfg), m: match.NewMatcher(n)}
	}
	return s
}

// NumVars returns the arity the store serves.
func (s *Store) NumVars() int { return s.n }

// NumShards returns the number of lock shards.
func (s *Store) NumShards() int { return len(s.shards) }

// Config returns the signature selection of the MSV key.
func (s *Store) Config() core.Config { return s.cfg }

// Fingerprint returns the 64-bit hash of the store's MSV configuration —
// the meta word stamped on WAL segments, which replay and replication
// compare to decide whether a logged class key can be trusted.
func (s *Store) Fingerprint() uint64 { return s.fp }

// ReadOnly reports whether the public Add path is gated off.
func (s *Store) ReadOnly() bool { return s.readOnly }

// SetJournal installs the write-ahead hook: every subsequent certified
// new-class insert is logged through j before being published. It must be
// called before the store is shared between goroutines (Recover calls it
// after replay, before returning the store).
func (s *Store) SetJournal(j Journal) { s.journal = j }

// JournalErrors returns the number of inserts refused because the journal
// failed to log them. Always zero without a journal.
func (s *Store) JournalErrors() int64 { return s.journalErrs.Load() }

// borrow gets a private engine pair; release returns it to the pool.
func (s *Store) borrow() *engines   { return s.pool.Get().(*engines) }
func (s *Store) release(e *engines) { s.pool.Put(e) }

// shardFor maps a class key to its shard.
func (s *Store) shardFor(key uint64) *shard { return &s.shards[key&s.mask] }

// ProfileCacheStats returns the representative-profile cache counters:
// hits (queries served from a memoized profile), misses (profiles built on
// demand) and entries (profiles currently memoized). All zero when the
// cache is disabled.
func (s *Store) ProfileCacheStats() (hits, misses, entries int64) {
	return s.profHits.Load(), s.profMisses.Load(), s.profEntries.Load()
}

// snapshot copies the chain header for key under one read lock. The
// returned slices are immutable views: appends under the write lock go
// through growth copies, so published elements never move or change.
//
//npn:noalloc
func (sh *shard) snapshot(key uint64) (reps []*tt.TT, profs []*match.RepProfile) {
	sh.mu.RLock()
	if c := sh.chains[key]; c != nil {
		reps, profs = c.reps, c.profs
	}
	sh.mu.RUnlock()
	return reps, profs
}

// publishProfile memoizes the profile of chain member i under key, built
// by the caller outside the lock. The profiles slice is replaced
// copy-on-write so headers handed out by snapshot stay immutable after
// the read lock is dropped; slots are nil-padded so indices always stay
// aligned with the chain even when it grew since the caller's snapshot.
// If two goroutines race on the same unbuilt slot, the first publication
// wins and the duplicate build is dropped.
func (s *Store) publishProfile(sh *shard, key uint64, i int, rp *match.RepProfile) *match.RepProfile {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	c := sh.chains[key]
	if i < len(c.profs) && c.profs[i] != nil {
		return c.profs[i]
	}
	size := len(c.profs)
	if i+1 > size {
		size = i + 1
	}
	ps := make([]*match.RepProfile, size)
	copy(ps, c.profs)
	ps[i] = rp
	c.profs = ps
	s.profEntries.Add(1)
	return rp
}

// certifyChain scans the snapshotted chain for a member NPN-equivalent to
// f, returning its index and a witness τ with τ(reps[i]) = f. It is the
// shared certification core of Add and Lookup: with the profile cache
// enabled it builds f's query profile once and matches it against each
// member's memoized profile (building and publishing missing ones);
// disabled, it falls back to the rebuild-per-query Equivalent path.
// A traced context records the chain walk as a store.certify span with
// the chain length and profile-cache outcome.
//
//npn:noalloc
func (s *Store) certifyChain(ctx context.Context, sh *shard, key uint64, reps []*tt.TT, profs []*match.RepProfile, f *tt.TT, e *engines) (int, npn.Transform, bool) {
	var pHits, pMisses int64
	if _, sp := obs.StartSpan(ctx, "store.certify"); sp != nil {
		defer func() {
			sp.SetInt("chain", int64(len(reps)))
			sp.SetInt("profile_hits", pHits)
			sp.SetInt("profile_misses", pMisses)
			sp.End()
		}()
	}
	if s.noProfile {
		for i, rep := range reps {
			if tr, eq := e.m.Equivalent(rep, f); eq {
				return i, tr, true
			}
		}
		return -1, npn.Transform{}, false
	}
	// Satisfy-count gate first, so a count-incompatible miss never pays
	// for a profile; the query profile is built on the first candidate
	// that survives and then reused for the rest of the chain.
	ones, size := f.CountOnes(), f.NumBits()
	var q *match.Profile
	for i, rep := range reps {
		if ro := rep.CountOnes(); ro != ones && size-ro != ones {
			continue
		}
		if q == nil {
			// Scratch-backed: valid until e.m's next QueryProfile call,
			// which cannot happen while this engine set is borrowed.
			q = e.m.QueryProfile(f)
		}
		var rp *match.RepProfile
		if i < len(profs) {
			rp = profs[i]
		}
		if rp != nil {
			s.profHits.Add(1)
			pHits++
		} else {
			s.profMisses.Add(1)
			pMisses++
			rp = s.publishProfile(sh, key, i, e.m.RepProfile(rep))
		}
		if tr, eq := e.m.MatchProfiled(rp, q); eq {
			return i, tr, true
		}
	}
	return -1, npn.Transform{}, false
}

// Add inserts f's class if absent, returning the class key, the position
// of its representative in the key's collision chain, and whether a new
// class was created (f becomes a representative). f is certified against
// every chain member with the exact matcher, so an MSV collision founds a
// new chained class rather than silently merging.
//
// With a journal installed, a new class is logged before it is published
// and committed (made durable) before Add returns. A logging failure
// refuses the insert — Add returns index -1 with isNew false, the class
// is not published, and the failure is counted in JournalErrors. A
// commit failure is also reported as a refusal (index -1, counted), but
// the class is already published: it will serve lookups until the next
// restart, after which only what the log durably holds survives —
// callers seeing a refusal must treat the insert as not persisted.
//
// On a read-only store Add refuses immediately (key 0, index -1) without
// hashing; only the replicated apply path can publish into it.
func (s *Store) Add(f *tt.TT) (key uint64, index int, isNew bool) {
	return s.AddCtx(context.Background(), f)
}

// AddCtx is Add with the request context threaded through for tracing:
// the insert runs under a store.add span, the chain certification under
// store.certify, and a context-aware journal (CtxJournal) records its
// append and fsync phases as wal.* spans.
func (s *Store) AddCtx(ctx context.Context, f *tt.TT) (key uint64, index int, isNew bool) {
	if s.readOnly {
		return 0, -1, false
	}
	return s.addCertified(ctx, f)
}

// addCertified is the certified insert path shared by Add and the
// untrusted branch of ApplyLogRecord: hash, chain certification, journal,
// publication. It ignores the read-only gate, which governs only the
// public surface.
func (s *Store) addCertified(ctx context.Context, f *tt.TT) (key uint64, index int, isNew bool) {
	if f.NumVars() != s.n {
		panic("store: function arity does not match store")
	}
	ctx, sp := obs.StartSpan(ctx, "store.add")
	defer sp.End()
	e := s.borrow()
	defer s.release(e)

	key = e.cls.Hash(f)
	sh := s.shardFor(key)

	// Fast path: scan the chain as published so far without holding any
	// lock during the (expensive) exact matching.
	reps, profs := sh.snapshot(key)
	if i, _, eq := s.certifyChain(ctx, sh, key, reps, profs, f, e); eq {
		return key, i, false
	}

	// Slow path: take the write lock, certify only against members that
	// raced in since the snapshot, then append. Chain elements are
	// immutable, so the earlier scan stays valid.
	sh.mu.Lock()
	c := sh.chains[key]
	if c == nil {
		c = &chain{}
		sh.chains[key] = c
	}
	for i := len(reps); i < len(c.reps); i++ {
		if _, eq := e.m.Equivalent(c.reps[i], f); eq {
			sh.mu.Unlock()
			return key, i, false
		}
	}
	j := s.journal
	if j != nil {
		if err := logInsertCtx(ctx, j, key, f); err != nil {
			sh.mu.Unlock()
			s.journalErrs.Add(1)
			return key, -1, false
		}
	}
	c.reps = append(c.reps, f.Clone())
	index = len(c.reps) - 1
	sh.mu.Unlock()
	if j != nil {
		if err := commitCtx(ctx, j); err != nil {
			s.journalErrs.Add(1)
			return key, -1, false
		}
	}
	return key, index, true
}

// addRecovered appends f as a representative of key, trusting a replayed
// log record: no signature hashing, no matcher certification, no journal
// write. Every logged record was a distinct certified class in the store
// that wrote it, so the only duplication replay can encounter is the
// exact same table arriving twice (a snapshot overlapping stale segments
// after a crashed compaction) — filtered here by table equality. It
// returns whether f was published.
func (s *Store) addRecovered(key uint64, f *tt.TT) bool {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	c := sh.chains[key]
	if c == nil {
		c = &chain{}
		sh.chains[key] = c
	}
	for _, rep := range c.reps {
		if rep.Equal(f) {
			return false
		}
	}
	c.reps = append(c.reps, f.Clone())
	return true
}

// ApplyLogRecord publishes one replayed or replicated log record,
// choosing the trust level replay and followers share: when meta (the
// record's segment meta word) matches this store's configuration
// fingerprint the logged class key is trusted and the record is published
// directly — no signature hashing, no matcher certification — otherwise
// the table is re-hashed through the certified insert path. It reports
// whether a new representative was published (false when the exact table
// was already present, the idempotence that makes replicated re-delivery
// — a follower re-bootstrapping after primary compaction — safe).
// ApplyLogRecord bypasses the read-only gate: it is how classes enter a
// follower's store. Safe for concurrent use with Lookup, so a follower
// keeps serving while records stream in.
func (s *Store) ApplyLogRecord(meta uint64, key uint64, f *tt.TT) bool {
	if f.NumVars() != s.n {
		panic("store: function arity does not match store")
	}
	if meta == s.fp {
		return s.addRecovered(key, f)
	}
	_, _, isNew := s.addCertified(context.Background(), f)
	return isNew
}

// ApplySnapshot publishes a compacted snapshot's tables through the
// trusted replay path: MSV keys are computed in parallel (hashing
// dominates and is embarrassingly parallel), then every table is
// published sequentially in snapshot order, so two tables sharing a key
// re-form their collision chain in the same order every time — chain
// indices are part of a class's served identity (key, index), and
// followers must reproduce the primary's. Publication dedups by exact
// table equality, so re-applying an overlapping snapshot (a follower
// re-bootstrapping after the primary compacted) publishes only what is
// missing. It returns the number of tables published and bypasses the
// read-only gate.
func (s *Store) ApplySnapshot(fs []*tt.TT) int {
	if len(fs) == 0 {
		return 0
	}
	keys := make([]uint64, len(fs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(fs) {
		workers = len(fs)
	}
	if workers <= 1 {
		e := s.borrow()
		for i, f := range fs {
			keys[i] = e.cls.Hash(f)
		}
		s.release(e)
	} else {
		var wg sync.WaitGroup
		chunk := (len(fs) + workers - 1) / workers
		for lo := 0; lo < len(fs); lo += chunk {
			hi := lo + chunk
			if hi > len(fs) {
				hi = len(fs)
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				e := s.borrow()
				defer s.release(e)
				for i := lo; i < hi; i++ {
					keys[i] = e.cls.Hash(fs[i])
				}
			}(lo, hi)
		}
		wg.Wait()
	}
	published := 0
	for i, f := range fs {
		if s.addRecovered(keys[i], f) {
			published++
		}
	}
	return published
}

// Lookup finds f's class. On a hit it returns the chain representative
// certified by the exact matcher, the class identity (key, chain index),
// and a witness transform τ with τ(rep) = f. A key hit whose chain holds
// no equivalent representative is a miss: f's class is not stored. The
// returned key is valid even on a miss (it identifies where f's class
// would live).
func (s *Store) Lookup(f *tt.TT) (rep *tt.TT, key uint64, index int, witness npn.Transform, ok bool) {
	return s.LookupCtx(context.Background(), f)
}

// LookupCtx is Lookup with the request context threaded through for
// tracing: the shard probe runs under a store.lookup span (shard index
// and chain length as attributes) with the chain walk nested as
// store.certify.
//
//npn:noalloc
func (s *Store) LookupCtx(ctx context.Context, f *tt.TT) (rep *tt.TT, key uint64, index int, witness npn.Transform, ok bool) {
	if f.NumVars() != s.n {
		panic("store: function arity does not match store")
	}
	ctx, sp := obs.StartSpan(ctx, "store.lookup")
	e := s.borrow()
	defer s.release(e)

	key = e.cls.Hash(f)
	sh := s.shardFor(key)
	reps, profs := sh.snapshot(key)
	if sp != nil {
		sp.SetInt("shard", int64(key&s.mask))
		sp.SetInt("chain", int64(len(reps)))
	}
	if i, tr, eq := s.certifyChain(ctx, sh, key, reps, profs, f, e); eq {
		sp.SetBool("hit", true)
		sp.End()
		return reps[i], key, i, tr, true
	}
	sp.SetBool("hit", false)
	sp.End()
	return nil, key, -1, npn.Transform{}, false
}

// forEachChain visits every collision chain, holding one shard's read
// lock at a time.
func (s *Store) forEachChain(fn func(shardIdx int, reps []*tt.TT)) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, c := range sh.chains {
			fn(i, c.reps)
		}
		sh.mu.RUnlock()
	}
}

// Size returns the number of classes stored (chained collision
// representatives count individually).
func (s *Store) Size() int {
	total := 0
	s.forEachChain(func(_ int, chain []*tt.TT) { total += len(chain) })
	return total
}

// Collisions returns the number of representatives beyond the first of
// their key — classes a key-only store would have silently merged.
func (s *Store) Collisions() int {
	extra := 0
	s.forEachChain(func(_ int, chain []*tt.TT) { extra += len(chain) - 1 })
	return extra
}

// ShardSizes returns the per-shard class counts, for load-balance
// introspection.
func (s *Store) ShardSizes() []int {
	out := make([]int, len(s.shards))
	s.forEachChain(func(i int, chain []*tt.TT) { out[i] += len(chain) })
	return out
}

// ChainStats reports the collision-chain shape: how many distinct keys
// are stored and the longest chain behind any one key. A growing maximum
// means lookups on that key certify more candidates per probe — the
// signal /metrics exports as npn_store_chain_max_length.
func (s *Store) ChainStats() (chains, maxLen int) {
	s.forEachChain(func(_ int, chain []*tt.TT) {
		chains++
		if len(chain) > maxLen {
			maxLen = len(chain)
		}
	})
	return chains, maxLen
}

// Snapshot returns a point-in-time copy of every representative. The
// returned tables are the store's own (immutable) clones; callers must
// not modify them.
func (s *Store) Snapshot() []*tt.TT {
	var fs []*tt.TT
	s.forEachChain(func(_ int, chain []*tt.TT) { fs = append(fs, chain...) })
	return fs
}

// Save writes a point-in-time snapshot as a ttio workload file (one
// representative per line) with an arity header comment. Concurrent
// inserts during Save land in or after the snapshot, never corrupt it.
func (s *Store) Save(w io.Writer) error {
	fs := s.Snapshot()
	return ttio.Write(w, fs, fmt.Sprintf("store n=%d shards=%d classes=%d", s.n, len(s.shards), len(fs)))
}

// Load reads a snapshot written by Save (or any ttio workload of the
// right arity) into a fresh store with the given options.
func Load(r io.Reader, n int, o Options) (*Store, error) {
	fs, err := ttio.Read(r, n)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := New(n, o)
	for _, f := range fs {
		s.Add(f)
	}
	return s, nil
}
