package store

import (
	"math/rand"
	"testing"

	"repro/internal/npn"
	"repro/internal/tt"
)

// FuzzStoreLookupWitness fuzzes the store's certification invariant: for
// random truth tables and random NPN disguises of them, every Lookup hit
// must return a witness τ that actually transforms the returned
// representative into the query (replayed with npn.Transform.Apply and
// compared bit-for-bit), and a disguise of an inserted function must never
// miss. The fuzz inputs drive the arity, the table bits and the transform
// stream, so the corpus explores collision chains, balanced functions
// (both output phases) and degenerate (constant) tables alike.
func FuzzStoreLookupWitness(f *testing.F) {
	f.Add(uint8(4), uint64(0xcafef00dcafef00d), uint64(0x0118), int64(1))
	f.Add(uint8(6), uint64(0), uint64(^uint64(0)), int64(2))
	f.Add(uint8(3), uint64(0x96), uint64(0xe8), int64(3))
	f.Add(uint8(5), uint64(0x123456789abcdef0), uint64(0xaaaaaaaaaaaaaaaa), int64(4))

	f.Fuzz(func(t *testing.T, nRaw uint8, bitsA, bitsB uint64, seed int64) {
		n := 3 + int(nRaw%4) // arity 3..6: one-word tables, chains still reachable
		a := tt.FromUint64Seq(n, bitsA)
		b := tt.FromUint64Seq(n, bitsB)
		rng := rand.New(rand.NewSource(seed))

		s := New(n, Options{Shards: 2})
		s.Add(a)
		s.Add(b)

		for i := 0; i < 4; i++ {
			base := a
			if i%2 == 1 {
				base = b
			}
			query := npn.RandomTransform(n, rng).Apply(base)
			rep, _, index, w, ok := s.Lookup(query)
			if !ok {
				t.Fatalf("n=%d disguise %s of inserted %s missed", n, query.Hex(), base.Hex())
			}
			if index < 0 || rep == nil {
				t.Fatalf("n=%d hit with index=%d rep=%v", n, index, rep)
			}
			if got := w.Apply(rep); !got.Equal(query) {
				t.Fatalf("n=%d witness does not verify: τ(%s) = %s, want %s",
					n, rep.Hex(), got.Hex(), query.Hex())
			}
		}

		// A function NPN-inequivalent to both must miss; certify via the
		// cached and uncached paths agreeing.
		probe := tt.FromUint64Seq(n, bitsA^(bitsB<<1|1))
		u := New(n, Options{Shards: 2, DisableProfileCache: true})
		u.Add(a)
		u.Add(b)
		_, keyC, idxC, _, okC := s.Lookup(probe)
		_, keyU, idxU, _, okU := u.Lookup(probe)
		if okC != okU || keyC != keyU || idxC != idxU {
			t.Fatalf("n=%d probe %s: cached (%v,%016x,%d) != uncached (%v,%016x,%d)",
				n, probe.Hex(), okC, keyC, idxC, okU, keyU, idxU)
		}
	})
}
