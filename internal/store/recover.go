// Crash recovery: rebuilding a warm store from a WAL directory
// (internal/wal) — snapshot first, then log replay, then a fresh journal.
package store

import (
	"fmt"
	"hash/fnv"
	"os"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/tt"
	"repro/internal/wal"
)

// Recover rebuilds an n-variable store from the WAL directory dir and
// reopens the directory's log for writing, so the returned store both
// holds every durable class and journals every future insert. The
// directory is created if missing (an empty durable store).
//
// Replay has a fast and a slow path per log segment. Segments whose meta
// word matches the fingerprint of this store's MSV configuration carry
// trustworthy class keys: their records are published directly under the
// logged key with no signature hashing and no matcher certification —
// the reason WAL replay beats re-classifying the same functions by a
// wide margin (see BenchmarkWALReplay). Segments written under any other
// configuration are re-hashed through the ordinary certified Add path.
// The base snapshot, which stores plain truth tables, is hashed in
// parallel across GOMAXPROCS workers but published sequentially in file
// order, so collision-chain indices — part of a class's served identity
// (key, index) — come back exactly as the compaction wrote them. Matcher
// certification is skipped for snapshot entries too: every entry was a
// distinct certified class in the store lineage that produced it, a
// property compaction's exact-duplicate folding preserves.
//
// The caller owns the returned writer and must Close it to flush the log
// on shutdown; the store must not be used after its journal is closed.
func Recover(dir string, n int, o Options, wo wal.Options) (*Store, *wal.Writer, error) {
	s := New(n, o)
	fp := configFingerprint(s.cfg)

	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("store: recover: %w", err)
	}
	snap, err := wal.ReadSnapshot(dir, n)
	if err != nil {
		return nil, nil, fmt.Errorf("store: recover: %w", err)
	}
	s.recoverSnapshot(snap)

	if _, err := wal.Replay(dir, func(seg wal.Segment, meta uint64, rec wal.Record) error {
		if rec.Arity != n {
			return fmt.Errorf("%s holds an arity-%d record, store serves arity %d", seg.Path, rec.Arity, n)
		}
		if meta == fp {
			s.addRecovered(rec.Key, rec.TT)
		} else {
			s.Add(rec.TT)
		}
		return nil
	}); err != nil {
		return nil, nil, fmt.Errorf("store: recover: %w", err)
	}

	wo.Meta = fp
	w, err := wal.OpenWriter(dir, wo)
	if err != nil {
		return nil, nil, fmt.Errorf("store: recover: %w", err)
	}
	s.SetJournal(w)
	return s, w, nil
}

// recoverSnapshot re-adds a snapshot: MSV keys are computed in parallel
// (hashing dominates and is embarrassingly parallel), then every table is
// published sequentially in snapshot order via the trusted-replay path.
// Sequential publication is what makes recovery deterministic — two
// tables sharing a key re-form their collision chain in the same order
// every restart.
func (s *Store) recoverSnapshot(fs []*tt.TT) {
	if len(fs) == 0 {
		return
	}
	keys := make([]uint64, len(fs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(fs) {
		workers = len(fs)
	}
	if workers <= 1 {
		e := s.borrow()
		for i, f := range fs {
			keys[i] = e.cls.Hash(f)
		}
		s.release(e)
	} else {
		var wg sync.WaitGroup
		chunk := (len(fs) + workers - 1) / workers
		for lo := 0; lo < len(fs); lo += chunk {
			hi := lo + chunk
			if hi > len(fs) {
				hi = len(fs)
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				e := s.borrow()
				defer s.release(e)
				for i := lo; i < hi; i++ {
					keys[i] = e.cls.Hash(fs[i])
				}
			}(lo, hi)
		}
		wg.Wait()
	}
	for i, f := range fs {
		s.addRecovered(keys[i], f)
	}
}

// configFingerprint hashes an MSV configuration into the 64-bit meta word
// stamped on every log segment. Class keys are only portable between
// identical configurations, so replay trusts a segment's logged keys
// exactly when its fingerprint matches the recovering store's. The
// fingerprint covers every Config field; a change that does not alter key
// values (e.g. FastOSDV) merely costs a re-hash on the next recovery.
func configFingerprint(cfg core.Config) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", cfg)
	return h.Sum64()
}
