// Crash recovery: rebuilding a warm store from a WAL directory
// (internal/wal) — snapshot first, then log replay, then a fresh journal.
// The snapshot and record application logic itself lives on the Store
// (ApplySnapshot, ApplyLogRecord) because replication followers
// (internal/replica) apply the same bytes live over HTTP.
package store

import (
	"fmt"
	"hash/fnv"
	"os"

	"repro/internal/core"
	"repro/internal/wal"
)

// Recover rebuilds an n-variable store from the WAL directory dir and
// reopens the directory's log for writing, so the returned store both
// holds every durable class and journals every future insert. The
// directory is created if missing (an empty durable store).
//
// Replay has a fast and a slow path per log segment, chosen by
// ApplyLogRecord: segments whose meta word matches the fingerprint of
// this store's MSV configuration carry trustworthy class keys and their
// records are published directly — no signature hashing, no matcher
// certification — the reason WAL replay beats re-classifying the same
// functions by a wide margin (see BenchmarkWALReplay); segments written
// under any other configuration are re-hashed through the certified
// insert path. The base snapshot goes through ApplySnapshot: hashed in
// parallel, published sequentially in file order, so collision-chain
// indices — part of a class's served identity (key, index) — come back
// exactly as the compaction wrote them.
//
// The caller owns the returned writer and must Close it to flush the log
// on shutdown; the store must not be used after its journal is closed.
func Recover(dir string, n int, o Options, wo wal.Options) (*Store, *wal.Writer, error) {
	s := New(n, o)

	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("store: recover: %w", err)
	}
	snap, err := wal.ReadSnapshot(dir, n)
	if err != nil {
		return nil, nil, fmt.Errorf("store: recover: %w", err)
	}
	s.ApplySnapshot(snap)

	if _, err := wal.Replay(dir, func(seg wal.Segment, meta uint64, rec wal.Record) error {
		if rec.Arity != n {
			return fmt.Errorf("%s holds an arity-%d record, store serves arity %d", seg.Path, rec.Arity, n)
		}
		s.ApplyLogRecord(meta, rec.Key, rec.TT)
		return nil
	}); err != nil {
		return nil, nil, fmt.Errorf("store: recover: %w", err)
	}

	wo.Meta = s.fp
	w, err := wal.OpenWriter(dir, wo)
	if err != nil {
		return nil, nil, fmt.Errorf("store: recover: %w", err)
	}
	s.SetJournal(w)
	return s, w, nil
}

// configFingerprint hashes an MSV configuration into the 64-bit meta word
// stamped on every log segment. Class keys are only portable between
// identical configurations, so replay trusts a segment's logged keys
// exactly when its fingerprint matches the recovering store's. The
// fingerprint covers every Config field; a change that does not alter key
// values (e.g. FastOSDV) merely costs a re-hash on the next recovery.
func configFingerprint(cfg core.Config) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", cfg)
	return h.Sum64()
}
