package core

import (
	"runtime"
	"sync"

	"repro/internal/tt"
)

// ClassifyParallel computes the classification of fs using `workers`
// goroutines (0 = GOMAXPROCS). Key hashing — the dominant cost — is
// embarrassingly parallel because every worker owns a private Classifier
// with its own signature engine; only the final bucket assembly is
// sequential. The result is identical to Classify. The paper's testbed is a
// 20-core machine; this is the corresponding throughput mode.
func ClassifyParallel(n int, cfg Config, fs []*tt.TT, workers int) *Result {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(fs) {
		workers = len(fs)
	}
	if workers <= 1 {
		return New(n, cfg).Classify(fs)
	}

	type keyed struct {
		hash uint64
		key  string // only populated in strict mode
	}
	keys := make([]keyed, len(fs))
	var wg sync.WaitGroup
	chunk := (len(fs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(fs) {
			hi = len(fs)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			cls := New(n, cfg)
			for i := lo; i < hi; i++ {
				if cfg.StrictKeys {
					keys[i].key = string(cls.KeyBytes(fs[i]))
				} else {
					keys[i].hash = cls.Hash(fs[i])
				}
			}
		}(lo, hi)
	}
	wg.Wait()

	r := &Result{ClassOf: make([]int, len(fs))}
	if cfg.StrictKeys {
		ids := make(map[string]int)
		for i := range fs {
			id, ok := ids[keys[i].key]
			if !ok {
				id = len(ids)
				ids[keys[i].key] = id
				r.Sizes = append(r.Sizes, 0)
			}
			r.ClassOf[i] = id
			r.Sizes[id]++
		}
		r.NumClasses = len(ids)
		return r
	}
	ids := make(map[uint64]int)
	for i := range fs {
		id, ok := ids[keys[i].hash]
		if !ok {
			id = len(ids)
			ids[keys[i].hash] = id
			r.Sizes = append(r.Sizes, 0)
		}
		r.ClassOf[i] = id
		r.Sizes[id]++
	}
	r.NumClasses = len(ids)
	return r
}
