package core

import "repro/internal/tt"

// DefaultStages orders the signature vectors cheap-to-expensive for
// refinement classification: 1-ary cofactors and influence are linear scans,
// sensitivity histograms cost one bit-sliced pass, 2-ary cofactors are
// quadratic in n, and sensitivity-distance vectors are the most expensive.
// The order matches the monolithic MSV serialization, which makes staged and
// monolithic classification provably identical (see ClassifyRefined).
func DefaultStages() []Config {
	return []Config{
		{OCV1: true},
		{OIV: true},
		{OSV: true},
		{OCV2: true},
		{OSDV: true, FastOSDV: true},
	}
}

// ClassifyRefined performs staged classification: functions are first
// bucketed by the cheapest signature stage; only buckets still holding more
// than one function have the next stage computed, and so on. Expensive
// vectors are therefore computed only for the small fraction of functions
// that cheap vectors fail to separate — the "runtime saving" variant
// sketched in §IV-B of the paper.
//
// Output-phase handling for balanced functions is propagated across stages:
// a function starts with both phases as candidates, each stage keeps the
// phases whose stage key is minimal, and later stages only consider the
// survivors. This is exactly the greedy evaluation of the lexicographic
// phase minimum over the concatenated key, so when the stages partition the
// components of a monolithic Config in serialization order, ClassifyRefined
// returns the same partition as Classify with the combined Config.
func ClassifyRefined(n int, stages []Config, fs []*tt.TT) *Result {
	r := &Result{ClassOf: make([]int, len(fs))}
	if len(fs) == 0 {
		return r
	}
	if len(stages) == 0 {
		panic("core: ClassifyRefined needs at least one stage")
	}

	// Per-function phase state: the function, its complement (lazily
	// built), and the surviving phase candidates (bit 0: as-is, bit 1:
	// complemented).
	type state struct {
		f, fn *tt.TT
		cand  uint8
	}
	states := make([]state, len(fs))
	for i, f := range fs {
		ones := f.CountOnes()
		half := f.NumBits() / 2
		switch {
		case ones > half:
			states[i] = state{f: f, cand: 2}
		case ones < half:
			states[i] = state{f: f, cand: 1}
		default:
			states[i] = state{f: f, cand: 3}
		}
	}
	complemented := func(i int) *tt.TT {
		if states[i].fn == nil {
			states[i].fn = states[i].f.Not()
		}
		return states[i].fn
	}

	classifiers := make([]*Classifier, len(stages))
	for s, cfg := range stages {
		classifiers[s] = New(n, cfg)
	}

	// stageKey returns the minimal stage-s key over surviving phases and
	// narrows the candidate set to the argmin phases.
	stageKey := func(s, i int) string {
		c := classifiers[s]
		var k0, k1 []byte
		if states[i].cand&1 != 0 {
			k0 = c.rawKey(nil, states[i].f)
		}
		if states[i].cand&2 != 0 {
			k1 = c.rawKey(nil, complemented(i))
		}
		switch {
		case k1 == nil:
			return string(k0)
		case k0 == nil:
			return string(k1)
		case lexLess(k0, k1):
			states[i].cand = 1
			return string(k0)
		case lexLess(k1, k0):
			states[i].cand = 2
			return string(k1)
		default:
			return string(k0) // tie: both phases stay alive
		}
	}

	groups := [][]int{make([]int, len(fs))}
	for i := range fs {
		groups[0][i] = i
	}
	var final [][]int
	for s := range stages {
		var next [][]int
		for _, g := range groups {
			if len(g) == 1 {
				final = append(final, g)
				continue
			}
			split := make(map[string][]int)
			for _, idx := range g {
				k := stageKey(s, idx)
				split[k] = append(split[k], idx)
			}
			for _, sub := range split {
				next = append(next, sub)
			}
		}
		groups = next
		if len(groups) == 0 {
			break
		}
	}
	final = append(final, groups...)

	// Assign dense ids in first-seen input order, matching Classify.
	groupOf := make([]int, len(fs))
	for gi, g := range final {
		for _, i := range g {
			groupOf[i] = gi
		}
	}
	idOfGroup := make(map[int]int, len(final))
	for i := range fs {
		gi := groupOf[i]
		id, ok := idOfGroup[gi]
		if !ok {
			id = len(idOfGroup)
			idOfGroup[gi] = id
			r.Sizes = append(r.Sizes, len(final[gi]))
		}
		r.ClassOf[i] = id
	}
	r.NumClasses = len(idOfGroup)
	return r
}
