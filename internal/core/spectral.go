package core

import (
	"repro/internal/spectra"
	"repro/internal/tt"
)

// appendSpectral serializes the Walsh weight-moment signature (the related-
// work spectral signature [Clarke'93] offered as an MSV extension). The
// moments Σ_{wt(s)=w} Ŝ(s)² are invariant under input permutation and
// negation, and — because the spectrum is ±1-encoded — under output negation
// as well, so they can join the MSV without phase handling.
func appendSpectral(k []byte, f *tt.TT) []byte {
	m := spectra.WeightMoments(f.NumVars(), spectra.Spectrum(f))
	for _, v := range m {
		k = appendInt(k, int(v&0xFFFFFFFF))
		k = appendInt(k, int(v>>32))
	}
	return k
}
