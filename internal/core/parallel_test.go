package core

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/npn"
	"repro/internal/tt"
)

func TestClassifyParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(130))
	var fs []*tt.TT
	for i := 0; i < 3000; i++ {
		fs = append(fs, tt.Random(6, rng))
	}
	cfg := ConfigAll()
	cfg.FastOSDV = true
	seq := New(6, cfg).Classify(fs)
	for _, workers := range []int{0, 1, 2, 4, 7} {
		par := ClassifyParallel(6, cfg, fs, workers)
		if par.NumClasses != seq.NumClasses {
			t.Fatalf("workers=%d: %d classes, sequential %d", workers, par.NumClasses, seq.NumClasses)
		}
		// Partitions must be identical as set partitions (ids may renumber,
		// but we assemble in input order, so they should match exactly).
		for i := range fs {
			if par.ClassOf[i] != seq.ClassOf[i] {
				t.Fatalf("workers=%d: assignment differs at %d", workers, i)
			}
		}
	}
}

func TestClassifyParallelStrict(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	var fs []*tt.TT
	for i := 0; i < 500; i++ {
		fs = append(fs, tt.Random(5, rng))
	}
	cfg := ConfigAll()
	cfg.StrictKeys = true
	seq := New(5, cfg).Classify(fs)
	par := ClassifyParallel(5, cfg, fs, 3)
	if par.NumClasses != seq.NumClasses {
		t.Fatalf("strict parallel %d != sequential %d", par.NumClasses, seq.NumClasses)
	}
}

func TestClassifyParallelSmallInputs(t *testing.T) {
	cfg := ConfigAll()
	if got := ClassifyParallel(4, cfg, nil, 4); got.NumClasses != 0 {
		t.Error("empty input should produce 0 classes")
	}
	f := tt.MustFromHex(4, "e8e8")
	r := ClassifyParallel(4, cfg, []*tt.TT{f}, 8)
	if r.NumClasses != 1 || r.ClassOf[0] != 0 {
		t.Error("singleton classification wrong")
	}
}

func TestSpectralConfigInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(132))
	cfg := Config{Spectral: true, OCV1: true}
	if cfg.Enabled() != "OCV1+SPEC" {
		t.Errorf("label = %q", cfg.Enabled())
	}
	for rep := 0; rep < 50; rep++ {
		n := 2 + rng.Intn(5)
		c := New(n, cfg)
		f := tt.Random(n, rng)
		g := npn.RandomTransform(n, rng).Apply(f)
		if !bytes.Equal(c.KeyBytes(f), c.KeyBytes(g)) {
			t.Fatalf("spectral MSV not NPN-invariant (n=%d, f=%s)", n, f.Hex())
		}
	}
}

func TestSpectralRefinesClassification(t *testing.T) {
	// Adding the spectral moments can never decrease the class count.
	rng := rand.New(rand.NewSource(133))
	var fs []*tt.TT
	for i := 0; i < 2000; i++ {
		fs = append(fs, tt.Random(4, rng))
	}
	base := New(4, Config{OCV1: true}).NumClasses(fs)
	withSpec := New(4, Config{OCV1: true, Spectral: true}).NumClasses(fs)
	if withSpec < base {
		t.Errorf("spectral config decreased classes: %d -> %d", base, withSpec)
	}
}
