// Package core implements the paper's NPN classifier (Algorithm 1).
//
// For each function the classifier computes a Mixed Signature Vector (MSV) —
// a configurable concatenation of the NPN-invariant signature vectors from
// internal/sig (OCV1, OCV2, OIV, OSV0/OSV1, OSDV0/OSDV1) — canonicalizes the
// output phase, and buckets functions by a hash of the serialized MSV. Two
// functions receive the same class exactly when their MSVs agree, which by
// Theorems 1–4 is a necessary condition for NPN equivalence: the classifier
// never separates NPN-equivalent functions, but may merge inequivalent ones
// whose signatures collide (measured in EXPERIMENTS.md against the exact
// classifier, reproducing Tables II and III).
//
// Output-phase canonicalization: signatures are invariant under input
// negation and permutation (PN) but not under output negation. For an
// unbalanced function the phase is normalized by satisfy count (complement
// when |f| > 2^(n-1)); for a balanced function both phases are serialized
// and the lexicographically smaller MSV is used, which subsumes the paper's
// rule of ordering the (OSV1, OSV0) pair (Theorems 3–4).
package core

import (
	"encoding/binary"
	"fmt"

	"repro/internal/sig"
	"repro/internal/tt"
)

// Config selects which signature vectors participate in the MSV.
type Config struct {
	OCV1 bool // 1-ary ordered cofactor vector
	OCV2 bool // 2-ary ordered cofactor vector
	OIV  bool // ordered influence vector
	OSV  bool // ordered 0-/1-sensitivity vectors
	OSDV bool // ordered 0-/1-sensitivity distance vectors

	// OSDVCombined additionally includes the all-minterms OSDV, whose
	// cross-polarity pairs are not derivable from OSDV0/OSDV1.
	OSDVCombined bool

	// Spectral additionally includes the Walsh weight-moment signature
	// (related-work extension; see internal/spectra).
	Spectral bool

	// OCVL, when ≥ 3, additionally includes the ℓ-ary ordered cofactor
	// vector of that order. All-ary cofactor vectors form a canonical form
	// (Abdollahi'08); a single higher order is a cheap step toward it.
	OCVL int

	// FastOSDV computes sensitivity-distance vectors via the spectral
	// (Krawtchouk) path instead of pair enumeration.
	FastOSDV bool

	// StrictKeys buckets by the full serialized MSV instead of its 64-bit
	// FNV hash, eliminating any possibility of hash collisions.
	StrictKeys bool
}

// ConfigAll enables every signature vector — the paper's "All" column and
// the configuration of the final classifier ("Ours" in Table III).
func ConfigAll() Config {
	return Config{OCV1: true, OCV2: true, OIV: true, OSV: true, OSDV: true}
}

// Enabled returns a short label of the enabled components, e.g.
// "OCV1+OSV".
func (c Config) Enabled() string {
	s := ""
	add := func(on bool, name string) {
		if on {
			if s != "" {
				s += "+"
			}
			s += name
		}
	}
	add(c.OCV1, "OCV1")
	add(c.OCV2, "OCV2")
	add(c.OIV, "OIV")
	add(c.OSV, "OSV")
	add(c.OSDV, "OSDV")
	add(c.Spectral, "SPEC")
	if c.OCVL >= 3 {
		add(true, fmt.Sprintf("OCV%d", c.OCVL))
	}
	if s == "" {
		s = "none"
	}
	return s
}

// Classifier computes MSV keys for functions of a fixed arity. It reuses
// scratch buffers and is not safe for concurrent use.
type Classifier struct {
	n   int
	cfg Config
	eng *sig.Engine

	// Hot-path scratch, reused across Hash calls so the serving lookup
	// path computes keys without allocating: two key buffers (balanced
	// functions serialize both output phases), an int buffer for the
	// sorted signature vectors, and a lazily-built table for the
	// complemented phase.
	keyBuf  []byte
	keyBuf2 []byte
	intBuf  []int
	phase   *tt.TT
}

// New returns a classifier for n-variable functions.
func New(n int, cfg Config) *Classifier {
	return &Classifier{n: n, cfg: cfg, eng: sig.NewEngine(n)}
}

// NumVars returns the arity this classifier serves.
func (c *Classifier) NumVars() int { return c.n }

// Config returns the signature selection.
func (c *Classifier) Config() Config { return c.cfg }

// KeyBytes returns the canonical serialized MSV of f. The returned slice is
// freshly allocated and owned by the caller.
func (c *Classifier) KeyBytes(f *tt.TT) []byte {
	return append([]byte(nil), c.keyView(f)...)
}

// Hash returns the 64-bit FNV-1a hash of the canonical MSV. It reuses the
// classifier's scratch buffers and allocates nothing in steady state.
//
//npn:noalloc
func (c *Classifier) Hash(f *tt.TT) uint64 { return fnv1a(c.keyView(f)) }

// keyView computes the canonical serialized MSV of f into the classifier's
// scratch buffers. The returned slice aliases that scratch: it is valid
// only until the next keyView/Hash/KeyBytes call.
//
//npn:noalloc
func (c *Classifier) keyView(f *tt.TT) []byte {
	if f.NumVars() != c.n {
		panic("core: function arity does not match classifier")
	}
	ones := f.CountOnes()
	half := f.NumBits() / 2
	switch {
	case ones > half:
		c.keyBuf = c.rawKey(c.keyBuf[:0], c.notScratch(f))
		return c.keyBuf
	case ones < half:
		c.keyBuf = c.rawKey(c.keyBuf[:0], f)
		return c.keyBuf
	default:
		// Balanced: output negation cannot be resolved by satisfy count
		// (Theorems 3–4); take the lexicographically smaller serialization.
		c.keyBuf = c.rawKey(c.keyBuf[:0], f)
		c.keyBuf2 = c.rawKey(c.keyBuf2[:0], c.notScratch(f))
		if lexLess(c.keyBuf2, c.keyBuf) {
			return c.keyBuf2
		}
		return c.keyBuf
	}
}

// notScratch returns ¬f in the classifier's reusable phase table.
func (c *Classifier) notScratch(f *tt.TT) *tt.TT {
	if c.phase == nil {
		c.phase = tt.New(c.n)
	}
	c.phase.CopyFrom(f)
	c.phase.NotInPlace()
	return c.phase
}

// ints borrows the classifier's reusable int scratch, emptied.
func (c *Classifier) ints() []int { return c.intBuf[:0] }

// rawKey serializes the MSV of f in its given output phase, appending to k
// (pass a scratch buffer truncated to zero length to avoid allocation).
func (c *Classifier) rawKey(k []byte, f *tt.TT) []byte {
	// Component order is cheap-to-expensive so that staged refinement
	// (ClassifyRefined) and the monolithic key agree on the lexicographic
	// phase choice for balanced functions.
	k = appendInt(k, f.CountOnes())
	if c.cfg.OCV1 {
		c.intBuf = c.eng.AppendOCV1(c.ints(), f)
		k = appendInts(k, c.intBuf)
	}
	if c.cfg.OIV {
		c.intBuf = c.eng.AppendOIV(c.ints(), f)
		k = appendInts(k, c.intBuf)
	}
	if c.cfg.OSV {
		h0, h1 := c.eng.OSV01(f)
		k = appendInts(k, h0)
		k = appendInts(k, h1)
	}
	if c.cfg.OCV2 {
		c.intBuf = c.eng.AppendOCV2(c.ints(), f)
		k = appendInts(k, c.intBuf)
	}
	if c.cfg.OCVL >= 3 && c.cfg.OCVL <= f.NumVars() {
		k = appendInts(k, c.eng.OCVL(f, c.cfg.OCVL))
	}
	if c.cfg.OSDV {
		var d0, d1 sig.SDV
		if c.cfg.FastOSDV {
			d0, d1 = c.eng.OSDV01Fast(f)
		} else {
			d0, d1 = c.eng.OSDV01(f)
		}
		k = appendSDV(k, d0)
		k = appendSDV(k, d1)
		if c.cfg.OSDVCombined {
			if c.cfg.FastOSDV {
				k = appendSDV(k, c.eng.OSDVFast(f))
			} else {
				k = appendSDV(k, c.eng.OSDV(f))
			}
		}
	}
	if c.cfg.Spectral {
		k = appendSpectral(k, f)
	}
	return k
}

func appendInt(k []byte, v int) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(v))
	return append(k, b[:]...)
}

func appendInts(k []byte, vs []int) []byte {
	for _, v := range vs {
		k = appendInt(k, v)
	}
	return k
}

func appendSDV(k []byte, d sig.SDV) []byte {
	for _, row := range d {
		k = appendInts(k, row)
	}
	return k
}

func lexLess(a, b []byte) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// fnv1a is the 64-bit FNV-1a hash.
func fnv1a(data []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, b := range data {
		h ^= uint64(b)
		h *= prime
	}
	return h
}
