package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/npn"
	"repro/internal/tt"
)

// TestKeyNPNInvariance is the central soundness property: the MSV key must
// be identical for every member of an NPN class, for every configuration.
func TestKeyNPNInvariance(t *testing.T) {
	configs := []Config{
		{OIV: true},
		{OCV1: true},
		{OSV: true},
		{OCV1: true, OCV2: true},
		{OIV: true, OSV: true},
		{OCV1: true, OSV: true},
		{OIV: true, OSV: true, OSDV: true},
		ConfigAll(),
		func() Config { c := ConfigAll(); c.OSDVCombined = true; return c }(),
		func() Config { c := ConfigAll(); c.FastOSDV = true; return c }(),
	}
	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.Enabled(), func(t *testing.T) {
			qc := &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(70))}
			err := quick.Check(func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				n := 1 + rng.Intn(7)
				c := New(n, cfg)
				f := tt.Random(n, rng)
				g := npn.RandomTransform(n, rng).Apply(f)
				return bytes.Equal(c.KeyBytes(f), c.KeyBytes(g))
			}, qc)
			if err != nil {
				t.Error(err)
			}
		})
	}
}

// TestSoundnessNeverSplitsClasses verifies on an exhaustive small universe
// that the classifier never assigns two different classes to NPN-equivalent
// functions: its class count is ≤ the exact count and its partition is a
// coarsening of the exact partition.
func TestSoundnessNeverSplitsClasses(t *testing.T) {
	n := 3
	c := New(n, ConfigAll())
	keyOf := make(map[uint64]string) // exact canon word -> MSV key
	for w := uint64(0); w < 1<<(1<<n); w++ {
		f := tt.FromWord(n, w)
		canon := npn.CanonWord(w, n)
		key := string(c.KeyBytes(f))
		if prev, ok := keyOf[canon]; ok {
			if prev != key {
				t.Fatalf("NPN class of %02x split: two different MSV keys", canon)
			}
		} else {
			keyOf[canon] = key
		}
	}
}

// TestExactOnSmallUniverse: with all signatures, 3-variable classification
// is exact (14 classes over all 256 functions), mirroring the paper's
// finding that the combination achieves exact classification for small n.
func TestExactOnSmallUniverse(t *testing.T) {
	n := 3
	var fs []*tt.TT
	for w := uint64(0); w < 256; w++ {
		fs = append(fs, tt.FromWord(n, w))
	}
	c := New(n, ConfigAll())
	if got := c.NumClasses(fs); got != 14 {
		t.Errorf("all-signature classification of all 3-var functions: %d classes, want 14", got)
	}
	// Weaker configurations can only merge further (≤ exact count ≤ all).
	weak := New(n, Config{OIV: true})
	if got := weak.NumClasses(fs); got > 14 {
		t.Errorf("OIV-only produced %d classes > exact 14; signatures must never split classes", got)
	}
}

func TestSignatureHierarchy(t *testing.T) {
	// Adding signature vectors can never decrease the class count.
	rng := rand.New(rand.NewSource(71))
	n := 4
	var fs []*tt.TT
	for i := 0; i < 3000; i++ {
		fs = append(fs, tt.Random(n, rng))
	}
	seq := []Config{
		{OIV: true},
		{OIV: true, OSV: true},
		{OIV: true, OSV: true, OCV1: true},
		{OIV: true, OSV: true, OCV1: true, OCV2: true},
		ConfigAll(),
	}
	prev := -1
	for _, cfg := range seq {
		got := New(n, cfg).NumClasses(fs)
		if got < prev {
			t.Errorf("config %s decreased class count: %d < %d", cfg.Enabled(), got, prev)
		}
		prev = got
	}
}

func TestBalancedOutputNegation(t *testing.T) {
	// For any balanced function, f and ¬f must share a key (they are NPN
	// equivalent via output negation alone).
	rng := rand.New(rand.NewSource(72))
	c := New(4, ConfigAll())
	found := 0
	for found < 50 {
		f := tt.Random(4, rng)
		if !f.IsBalanced() {
			continue
		}
		found++
		if !bytes.Equal(c.KeyBytes(f), c.KeyBytes(f.Not())) {
			t.Fatalf("balanced f=%s and ¬f got different keys", f.Hex())
		}
	}
}

// TestFig3BalancedPair reproduces Fig. 3: a balanced pair f, g = NPN
// transform with output negation, where OSV1(f) = OSV0(g) and
// OSV0(f) = OSV1(g) — yet the classifier must place them together.
func TestFig3BalancedPair(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	c := New(4, ConfigAll())
	for tries := 0; tries < 2000; tries++ {
		f := tt.Random(4, rng)
		if !f.IsBalanced() {
			continue
		}
		tr := npn.RandomTransform(4, rng)
		tr.OutNeg = true
		g := tr.Apply(f)
		// Only interesting when the sensitivity split actually swaps.
		e := New(4, Config{OSV: true})
		if bytes.Equal(e.rawKey(nil, f), e.rawKey(nil, g)) {
			continue
		}
		if !bytes.Equal(c.KeyBytes(f), c.KeyBytes(g)) {
			t.Fatalf("balanced NPN pair with swapped OSV polarity separated (f=%s)", f.Hex())
		}
		return // found and verified a genuine Fig. 3 instance
	}
	t.Skip("no Fig.3-style pair found in budget (unlikely)")
}

func TestPartitionerStreaming(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	c := New(5, ConfigAll())
	p := NewPartitioner(c)
	f := tt.Random(5, rng)
	g := npn.RandomTransform(5, rng).Apply(f)
	idF := p.Add(f)
	idG := p.Add(g)
	if idF != idG {
		t.Error("NPN-equivalent functions got different streaming ids")
	}
	if p.NumSeen() != 2 || p.NumClasses() != 1 || p.Sizes()[0] != 2 {
		t.Error("partitioner bookkeeping wrong")
	}
}

func TestStrictKeysMatchesHashed(t *testing.T) {
	// At test scale, hashed and strict bucketing must agree exactly.
	rng := rand.New(rand.NewSource(75))
	var fs []*tt.TT
	for i := 0; i < 4000; i++ {
		fs = append(fs, tt.Random(5, rng))
	}
	hashed := New(5, ConfigAll()).NumClasses(fs)
	strictCfg := ConfigAll()
	strictCfg.StrictKeys = true
	strict := New(5, strictCfg).NumClasses(fs)
	if hashed != strict {
		t.Errorf("hashed (%d) and strict (%d) class counts differ", hashed, strict)
	}
}

func TestClassifyResultShape(t *testing.T) {
	rng := rand.New(rand.NewSource(76))
	var fs []*tt.TT
	for i := 0; i < 100; i++ {
		fs = append(fs, tt.Random(4, rng))
	}
	r := New(4, ConfigAll()).Classify(fs)
	if len(r.ClassOf) != len(fs) {
		t.Fatal("ClassOf length mismatch")
	}
	total := 0
	for _, s := range r.Sizes {
		total += s
	}
	if total != len(fs) {
		t.Error("class sizes do not sum to input count")
	}
	for _, id := range r.ClassOf {
		if id < 0 || id >= r.NumClasses {
			t.Fatal("class id out of range")
		}
	}
}

func TestArityMismatchPanics(t *testing.T) {
	c := New(4, ConfigAll())
	defer func() {
		if recover() == nil {
			t.Error("arity mismatch not detected")
		}
	}()
	c.KeyBytes(tt.New(5))
}

func TestConfigEnabledLabels(t *testing.T) {
	if got := (Config{}).Enabled(); got != "none" {
		t.Errorf("empty config label = %q", got)
	}
	if got := ConfigAll().Enabled(); got != "OCV1+OCV2+OIV+OSV+OSDV" {
		t.Errorf("all config label = %q", got)
	}
}
