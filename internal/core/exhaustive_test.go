package core

import (
	"testing"

	"repro/internal/npn"
	"repro/internal/tt"
)

// TestExhaustive4VarUniverse verifies the headline accuracy property on the
// complete 4-variable universe: the full MSV classifies all 65 536 functions
// into exactly the 222 true NPN classes (the classical count), i.e. the
// classifier is exact at n=4 — matching the paper's Table II finding that
// the combination achieves exact classification for small n.
func TestExhaustive4VarUniverse(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive universe scan skipped in -short mode")
	}
	n := 4
	cfg := ConfigAll()
	cfg.FastOSDV = true
	cls := New(n, cfg)

	classOfCanon := make(map[uint64]uint64) // exact canon -> MSV hash
	hashes := make(map[uint64]bool)
	for w := uint64(0); w < 1<<16; w++ {
		f := tt.FromWord(n, w)
		h := cls.Hash(f)
		hashes[h] = true
		canon := npn.CanonWord(w, n)
		if prev, ok := classOfCanon[canon]; ok {
			if prev != h {
				t.Fatalf("NPN class %04x split by MSV", canon)
			}
		} else {
			classOfCanon[canon] = h
		}
	}
	if len(classOfCanon) != 222 {
		t.Fatalf("exact NPN classes of 4-var universe = %d, want 222", len(classOfCanon))
	}
	if len(hashes) != 222 {
		t.Fatalf("MSV classes of 4-var universe = %d, want 222 (exact)", len(hashes))
	}
}
