package core

import (
	"math/rand"
	"testing"

	"repro/internal/npn"
	"repro/internal/tt"
)

func TestClassifyRefinedMatchesMonolithic(t *testing.T) {
	// Refinement with the default stages must produce exactly the partition
	// of the combined all-signature strict classifier.
	rng := rand.New(rand.NewSource(150))
	for _, n := range []int{4, 5, 6} {
		var fs []*tt.TT
		for i := 0; i < 2500; i++ {
			fs = append(fs, tt.Random(n, rng))
		}
		cfg := ConfigAll()
		cfg.FastOSDV = true
		cfg.StrictKeys = true
		mono := New(n, cfg).Classify(fs)
		ref := ClassifyRefined(n, DefaultStages(), fs)
		if mono.NumClasses != ref.NumClasses {
			t.Fatalf("n=%d: refined %d classes, monolithic %d", n, ref.NumClasses, mono.NumClasses)
		}
		for i := range fs {
			if mono.ClassOf[i] != ref.ClassOf[i] {
				t.Fatalf("n=%d: assignment differs at %d", n, i)
			}
		}
	}
}

func TestClassifyRefinedInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(151))
	n := 5
	var fs []*tt.TT
	for i := 0; i < 200; i++ {
		f := tt.Random(n, rng)
		fs = append(fs, f, npn.RandomTransform(n, rng).Apply(f))
	}
	r := ClassifyRefined(n, DefaultStages(), fs)
	for i := 0; i < len(fs); i += 2 {
		if r.ClassOf[i] != r.ClassOf[i+1] {
			t.Fatalf("refined classification split an NPN pair at %d", i)
		}
	}
}

func TestClassifyRefinedEdgeCases(t *testing.T) {
	if r := ClassifyRefined(4, DefaultStages(), nil); r.NumClasses != 0 {
		t.Error("empty input wrong")
	}
	f := tt.MustFromHex(4, "00ff")
	r := ClassifyRefined(4, DefaultStages(), []*tt.TT{f, f.Clone()})
	if r.NumClasses != 1 || r.Sizes[0] != 2 {
		t.Error("duplicate input classification wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("no stages accepted")
		}
	}()
	ClassifyRefined(4, nil, []*tt.TT{f})
}

func TestClassifyRefinedSingleStage(t *testing.T) {
	rng := rand.New(rand.NewSource(152))
	var fs []*tt.TT
	for i := 0; i < 800; i++ {
		fs = append(fs, tt.Random(4, rng))
	}
	stage := Config{OCV1: true, StrictKeys: true}
	ref := ClassifyRefined(4, []Config{{OCV1: true}}, fs)
	mono := New(4, stage).Classify(fs)
	if ref.NumClasses != mono.NumClasses {
		t.Fatalf("single-stage refined %d != monolithic %d", ref.NumClasses, mono.NumClasses)
	}
}
