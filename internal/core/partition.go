package core

import "repro/internal/tt"

// Partitioner assigns class ids to a stream of functions, bucketing by the
// classifier's MSV key. It is the runtime object behind Algorithm 1's
// "hash(MSV)" step and supports both hashed and strict (full-key) modes.
type Partitioner struct {
	c       *Classifier
	byHash  map[uint64]int
	byKey   map[string]int
	sizes   []int
	strict  bool
	numSeen int
}

// NewPartitioner returns an empty partition over the classifier's key space.
func NewPartitioner(c *Classifier) *Partitioner {
	p := &Partitioner{c: c, strict: c.cfg.StrictKeys}
	if p.strict {
		p.byKey = make(map[string]int)
	} else {
		p.byHash = make(map[uint64]int)
	}
	return p
}

// Add classifies f and returns its class id (dense, starting at 0).
func (p *Partitioner) Add(f *tt.TT) int {
	p.numSeen++
	if p.strict {
		key := string(p.c.KeyBytes(f))
		if id, ok := p.byKey[key]; ok {
			p.sizes[id]++
			return id
		}
		id := len(p.byKey)
		p.byKey[key] = id
		p.sizes = append(p.sizes, 1)
		return id
	}
	h := p.c.Hash(f)
	if id, ok := p.byHash[h]; ok {
		p.sizes[id]++
		return id
	}
	id := len(p.byHash)
	p.byHash[h] = id
	p.sizes = append(p.sizes, 1)
	return id
}

// NumClasses returns the number of distinct classes seen so far.
func (p *Partitioner) NumClasses() int { return len(p.sizes) }

// NumSeen returns how many functions have been added.
func (p *Partitioner) NumSeen() int { return p.numSeen }

// Sizes returns the per-class function counts (indexed by class id).
func (p *Partitioner) Sizes() []int { return p.sizes }

// Result is the outcome of classifying a function list.
type Result struct {
	// ClassOf[i] is the class id of input i.
	ClassOf []int
	// NumClasses is the number of distinct classes.
	NumClasses int
	// Sizes[id] is the number of inputs in class id.
	Sizes []int
}

// Classify buckets the whole list and returns the dense class assignment.
func (c *Classifier) Classify(fs []*tt.TT) *Result {
	p := NewPartitioner(c)
	r := &Result{ClassOf: make([]int, len(fs))}
	for i, f := range fs {
		r.ClassOf[i] = p.Add(f)
	}
	r.NumClasses = p.NumClasses()
	r.Sizes = p.Sizes()
	return r
}

// NumClasses is a convenience wrapper returning only the class count.
func (c *Classifier) NumClasses(fs []*tt.TT) int {
	p := NewPartitioner(c)
	for _, f := range fs {
		p.Add(f)
	}
	return p.NumClasses()
}
