package sig

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/tt"
)

// refOCV1 computes the 1-ary ordered cofactor vector by direct iteration.
func refOCV1(f *tt.TT) []int {
	n := f.NumVars()
	var v []int
	for i := 0; i < n; i++ {
		for _, val := range []bool{false, true} {
			c := 0
			for x := 0; x < f.NumBits(); x++ {
				if (x>>uint(i)&1 == 1) == val && f.Get(x) {
					c++
				}
			}
			v = append(v, c)
		}
	}
	sort.Ints(v)
	return v
}

// refInfluence computes |{X : f(X) ≠ f(X^i)}|/2 by direct iteration.
func refInfluence(f *tt.TT, i int) int {
	c := 0
	for x := 0; x < f.NumBits(); x++ {
		if f.Get(x) != f.Get(x^1<<uint(i)) {
			c++
		}
	}
	return c / 2
}

func TestOCV1AgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for n := 1; n <= 8; n++ {
		e := NewEngine(n)
		for rep := 0; rep < 10; rep++ {
			f := tt.Random(n, rng)
			if got, want := e.OCV1(f), refOCV1(f); !reflect.DeepEqual(got, want) {
				t.Fatalf("OCV1 mismatch n=%d: %v vs %v", n, got, want)
			}
		}
	}
}

func TestOCVLMatchesSpecialCases(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for n := 2; n <= 7; n++ {
		e := NewEngine(n)
		f := tt.Random(n, rng)
		if got, want := e.OCVL(f, 1), e.OCV1(f); !reflect.DeepEqual(got, want) {
			t.Fatalf("OCVL(1) != OCV1 at n=%d", n)
		}
		if got, want := e.OCVL(f, 2), e.OCV2(f); !reflect.DeepEqual(got, want) {
			t.Fatalf("OCVL(2) != OCV2 at n=%d", n)
		}
		if got := e.OCVL(f, 0); len(got) != 1 || got[0] != f.CountOnes() {
			t.Fatalf("OCVL(0) wrong at n=%d", n)
		}
		// ℓ = n: every cofactor fixes all variables, so counts are the
		// function's bits themselves: 2^n values in {0,1}, |f| of them ones.
		full := e.OCVL(f, n)
		if len(full) != 1<<n {
			t.Fatalf("OCVL(n) has %d entries", len(full))
		}
		ones := 0
		for _, c := range full {
			if c != 0 && c != 1 {
				t.Fatalf("OCVL(n) entry %d not boolean", c)
			}
			ones += c
		}
		if ones != f.CountOnes() {
			t.Fatalf("OCVL(n) ones mismatch at n=%d", n)
		}
	}
}

func TestInfluenceAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for n := 1; n <= 8; n++ {
		e := NewEngine(n)
		for rep := 0; rep < 5; rep++ {
			f := tt.Random(n, rng)
			for i := 0; i < n; i++ {
				if got, want := e.Influence(f, i), refInfluence(f, i); got != want {
					t.Fatalf("Influence(%d) = %d, want %d (n=%d)", i, got, want, n)
				}
			}
		}
	}
}

func TestInfluenceOfNamedFunctions(t *testing.T) {
	// Parity: every variable has full influence 2^n/2 (integer convention
	// divides the 2^n sensitive words by 2).
	for n := 2; n <= 6; n++ {
		e := NewEngine(n)
		parity := tt.FromFunc(n, func(x int) bool {
			p := 0
			for b := 0; b < n; b++ {
				p ^= x >> b & 1
			}
			return p == 1
		})
		for i := 0; i < n; i++ {
			if got := e.Influence(parity, i); got != 1<<(n-1) {
				t.Errorf("parity influence var %d = %d, want %d (n=%d)", i, got, 1<<(n-1), n)
			}
		}
		if e.TotalInfluence(parity) != n<<(n-1) {
			t.Errorf("parity total influence wrong at n=%d", n)
		}
	}
	// A vacuous variable has influence 0.
	e := NewEngine(4)
	f := tt.Projection(4, 1)
	for i := 0; i < 4; i++ {
		want := 0
		if i == 1 {
			want = 8
		}
		if got := e.Influence(f, i); got != want {
			t.Errorf("projection influence var %d = %d, want %d", i, got, want)
		}
	}
}

func TestSenProfileScalarVsBitSliced(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for n := 1; n <= 9; n++ {
		e := NewEngine(n)
		for rep := 0; rep < 5; rep++ {
			f := tt.Random(n, rng)
			scalar := append([]uint8(nil), e.SenProfileScalar(f)...)
			fast := e.SenProfile(f)
			for x := 0; x < 1<<n; x++ {
				if scalar[x] != fast[x] {
					t.Fatalf("sen profile mismatch n=%d x=%d: %d vs %d", n, x, scalar[x], fast[x])
				}
				if int(fast[x]) != LocalSensitivity(f, x) {
					t.Fatalf("sen profile vs LocalSensitivity n=%d x=%d", n, x)
				}
			}
		}
	}
}

func TestOSV01MatchesProfile(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	for n := 1; n <= 9; n++ {
		e := NewEngine(n)
		for rep := 0; rep < 5; rep++ {
			f := tt.Random(n, rng)
			h0, h1 := e.OSV01(f)
			w0 := make(SenHist, n+1)
			w1 := make(SenHist, n+1)
			for x := 0; x < 1<<n; x++ {
				s := LocalSensitivity(f, x)
				if f.Get(x) {
					w1[s]++
				} else {
					w0[s]++
				}
			}
			if !h0.Equal(w0) || !h1.Equal(w1) {
				t.Fatalf("OSV01 mismatch n=%d: got (%v,%v) want (%v,%v)", n, h0, h1, w0, w1)
			}
			if h0.Total()+h1.Total() != 1<<n {
				t.Fatalf("OSV totals do not cover the cube at n=%d", n)
			}
		}
	}
}

func TestSensitivityNamedFunctions(t *testing.T) {
	// Parity has sensitivity n at every point; AND has sen 1-points n.
	for n := 2; n <= 7; n++ {
		e := NewEngine(n)
		parity := tt.FromFunc(n, func(x int) bool {
			p := 0
			for b := 0; b < n; b++ {
				p ^= x >> b & 1
			}
			return p == 1
		})
		if got := e.Sensitivity(parity); got != n {
			t.Errorf("sen(parity) = %d, want %d", got, n)
		}
		and := tt.FromFunc(n, func(x int) bool { return x == 1<<n-1 })
		s0, s1 := e.Sensitivity01(and)
		if s1 != n {
			t.Errorf("sen1(AND) = %d, want %d", s1, n)
		}
		if s0 != 1 {
			t.Errorf("sen0(AND) = %d, want 1", s0)
		}
	}
}

func TestSenHistLessAndAdd(t *testing.T) {
	a := SenHist{1, 2, 0}
	b := SenHist{1, 3, 0}
	if !a.Less(b) || b.Less(a) || a.Less(a) {
		t.Error("SenHist.Less ordering wrong")
	}
	sum := a.Add(b)
	if !sum.Equal(SenHist{2, 5, 0}) {
		t.Error("SenHist.Add wrong")
	}
	if a.Equal(SenHist{1, 2}) {
		t.Error("Equal must compare lengths")
	}
}

func TestEngineArityCheck(t *testing.T) {
	e := NewEngine(4)
	defer func() {
		if recover() == nil {
			t.Error("engine accepted wrong arity")
		}
	}()
	e.OCV1(tt.New(5))
}
