package sig

import (
	"math/rand"
	"testing"

	"repro/internal/tt"
)

func TestUnatenessNamedFunctions(t *testing.T) {
	// AND is positive unate in every variable.
	and3 := tt.FromFunc(3, func(x int) bool { return x == 7 })
	for i := 0; i < 3; i++ {
		if got := VarUnateness(and3, i); got != PosUnate {
			t.Errorf("AND var %d = %v, want pos-unate", i, got)
		}
	}
	if !IsUnate(and3) {
		t.Error("AND must be unate")
	}
	// x0 ∧ ¬x1 is negative unate in x1.
	f := tt.FromFunc(2, func(x int) bool { return x&1 == 1 && x>>1&1 == 0 })
	if VarUnateness(f, 0) != PosUnate || VarUnateness(f, 1) != NegUnate {
		t.Error("x0∧¬x1 unateness wrong")
	}
	// XOR is binate everywhere.
	xor2 := tt.MustFromHex(2, "6")
	for i := 0; i < 2; i++ {
		if VarUnateness(xor2, i) != Binate {
			t.Errorf("XOR var %d not binate", i)
		}
	}
	if IsUnate(xor2) {
		t.Error("XOR must not be unate")
	}
	// Vacuous variable.
	g := tt.Projection(3, 0)
	if VarUnateness(g, 2) != Vacuous {
		t.Error("vacuous variable not detected")
	}
	// Majority is positive unate in all variables.
	if !IsUnate(tt.MustFromHex(3, "e8")) {
		t.Error("majority must be unate")
	}
}

func TestUnatenessFlipsUnderNegation(t *testing.T) {
	rng := rand.New(rand.NewSource(160))
	for rep := 0; rep < 40; rep++ {
		n := 2 + rng.Intn(5)
		f := tt.Random(n, rng)
		i := rng.Intn(n)
		u := VarUnateness(f, i)
		uNeg := VarUnateness(f.FlipVar(i), i)
		if uNeg != u.Negate() {
			t.Fatalf("unateness after negation: %v -> %v, want %v", u, uNeg, u.Negate())
		}
	}
}

func TestUnateCountsNPNInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(161))
	for rep := 0; rep < 40; rep++ {
		n := 2 + rng.Intn(5)
		f := tt.Random(n, rng)
		g := f.FlipVar(rng.Intn(n)).SwapVars(rng.Intn(n), rng.Intn(n)).Not()
		b1, u1, v1 := UnateCounts(f)
		// Output negation swaps pos/neg unate but preserves the counts.
		b2, u2, v2 := UnateCounts(g)
		if b1 != b2 || u1 != u2 || v1 != v2 {
			t.Fatalf("unate counts not NPN-invariant: (%d,%d,%d) vs (%d,%d,%d)", b1, u1, v1, b2, u2, v2)
		}
	}
}

func TestUnatenessStrings(t *testing.T) {
	names := map[Unateness]string{
		Binate: "binate", PosUnate: "pos-unate", NegUnate: "neg-unate", Vacuous: "vacuous",
	}
	for u, want := range names {
		if u.String() != want {
			t.Errorf("%d.String() = %q", u, u.String())
		}
	}
	if Binate.Negate() != Binate || Vacuous.Negate() != Vacuous {
		t.Error("Negate must fix binate/vacuous")
	}
}

func TestUnatenessProfileLength(t *testing.T) {
	f := tt.New(5)
	p := UnatenessProfile(f)
	if len(p) != 5 {
		t.Fatal("profile length wrong")
	}
	for _, u := range p {
		if u != Vacuous {
			t.Error("const0 must be vacuous in every variable")
		}
	}
}

// TestEngineUnatenessMatchesVarUnateness checks the word-level in-place
// unateness against the cofactor-table reference on random functions of
// every supported arity, including the multi-word n > 6 stride path.
func TestEngineUnatenessMatchesVarUnateness(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for n := 1; n <= 9; n++ {
		e := NewEngine(n)
		for trial := 0; trial < 50; trial++ {
			f := tt.Random(n, rng)
			for i := 0; i < n; i++ {
				want := VarUnateness(f, i)
				if got := e.Unateness(f, i); got != want {
					t.Fatalf("n=%d var=%d f=%s: Engine.Unateness=%v, VarUnateness=%v",
						n, i, f.Hex(), got, want)
				}
			}
		}
	}
}

// TestEngineUnatenessAllocs gates the in-place path: it must not allocate.
func TestEngineUnatenessAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	e := NewEngine(8)
	f := tt.Random(8, rng)
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 8; i++ {
			e.Unateness(f, i)
		}
	})
	if allocs != 0 {
		t.Errorf("Engine.Unateness allocates %.1f/run, want 0", allocs)
	}
}
