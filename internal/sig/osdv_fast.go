package sig

import (
	"math/bits"

	"repro/internal/spectra"
	"repro/internal/tt"
)

// calc lazily builds the engine's reusable pair-distance calculator (its
// Krawtchouk table, WHT scratch and hybrid small-class dispatch).
func (e *Engine) calc() *spectra.PairDistCalc {
	if e.pairCalc == nil {
		e.pairCalc = spectra.NewPairDistCalc(e.n)
	}
	return e.pairCalc
}

// OSDVFast computes OSDV via the spectral (MacWilliams) pair-distance path:
// O(n·2^n) per large sensitivity class instead of quadratic pair
// enumeration, direct enumeration for classes below the crossover.
// Results are identical to OSDV; the benchmark ablation compares the two.
func (e *Engine) OSDVFast(f *tt.TT) SDV {
	sen := e.SenProfile(f)
	return e.fastFromClasses(e.classListsScratch(sen, nil, false))
}

// OSDV01Fast is the spectral counterpart of OSDV01.
func (e *Engine) OSDV01Fast(f *tt.TT) (d0, d1 SDV) {
	sen := e.SenProfile(f)
	d0 = e.fastFromClasses(e.classListsScratch(sen, f, false))
	d1 = e.fastFromClasses(e.classListsScratch(sen, f, true))
	return d0, d1
}

func (e *Engine) fastFromClasses(classes [][]int32) SDV {
	d := newSDV(e.n)
	c := e.calc()
	for s, members := range classes {
		if len(members) < 2 {
			continue
		}
		c.Distribution(members, d[s])
	}
	return d
}

// classListsScratch is classLists on the engine's reusable buffers: a
// counting pass sizes the buckets, a fill pass places every minterm, and
// no per-call allocation happens. The f-restricted passes iterate the
// function's words bit-parallel (TrailingZeros over the selected phase)
// instead of calling Get per minterm. The returned slices alias engine
// scratch and are valid until the next classListsScratch call.
func (e *Engine) classListsScratch(sen []uint8, f *tt.TT, val bool) [][]int32 {
	n := e.n
	size := 1 << uint(n)
	cnt := e.classCnt
	for i := range cnt {
		cnt[i] = 0
	}
	if f == nil {
		for x := 0; x < size; x++ {
			cnt[sen[x]]++
		}
	} else {
		e.forEachMinterm(f, val, func(x int32) { cnt[sen[x]]++ })
	}
	off := 0
	for s := 0; s <= n; s++ {
		e.classes[s] = e.classBuf[off : off : off+int(cnt[s])]
		off += int(cnt[s])
	}
	if f == nil {
		for x := 0; x < size; x++ {
			s := sen[x]
			e.classes[s] = append(e.classes[s], int32(x))
		}
	} else {
		e.forEachMinterm(f, val, func(x int32) {
			s := sen[x]
			e.classes[s] = append(e.classes[s], int32(x))
		})
	}
	return e.classes
}

// forEachMinterm calls fn for every minterm x with f(x) == val, in
// increasing order, by scanning the truth-table words and peeling set
// bits with TrailingZeros.
func (e *Engine) forEachMinterm(f *tt.TT, val bool, fn func(x int32)) {
	size := 1 << uint(e.n)
	for wi, w := range f.Words() {
		if !val {
			w = ^w
		}
		if size < 64 {
			w &= (uint64(1) << uint(size)) - 1
		}
		base := int32(wi << 6)
		for w != 0 {
			fn(base + int32(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
}
