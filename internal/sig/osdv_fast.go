package sig

import (
	"repro/internal/spectra"
	"repro/internal/tt"
)

// kraw lazily builds and caches the Krawtchouk table for the engine arity.
func (e *Engine) kraw() [][]int64 {
	if e.krawTab == nil {
		e.krawTab = spectra.Krawtchouk(e.n)
	}
	return e.krawTab
}

// OSDVFast computes OSDV via the spectral (MacWilliams) pair-distance path:
// O(n·2^n) per sensitivity class instead of quadratic pair enumeration.
// Results are identical to OSDV; the benchmark ablation compares the two.
func (e *Engine) OSDVFast(f *tt.TT) SDV {
	sen := e.SenProfile(f)
	return e.fastFromClasses(classLists(e.n, sen, nil, false))
}

// OSDV01Fast is the spectral counterpart of OSDV01.
func (e *Engine) OSDV01Fast(f *tt.TT) (d0, d1 SDV) {
	sen := e.SenProfile(f)
	d0 = e.fastFromClasses(classLists(e.n, sen, f, false))
	d1 = e.fastFromClasses(classLists(e.n, sen, f, true))
	return d0, d1
}

func (e *Engine) fastFromClasses(classes [][]int32) SDV {
	d := newSDV(e.n)
	k := e.kraw()
	for s, members := range classes {
		if len(members) < 2 {
			continue
		}
		copy(d[s], spectra.PairDistanceDistribution(e.n, members, k))
	}
	return d
}
