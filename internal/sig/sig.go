// Package sig computes the NPN-invariant signature vectors of the paper
// "Rethinking NPN Classification from Face and Point Characteristics of
// Boolean Functions" (DATE 2023):
//
//   - OCV1, OCV2, OCVL — ordered cofactor vectors (face characteristic,
//     Definition 6): sorted multisets of cofactor satisfy counts.
//   - OIV — ordered influence vector (point-face characteristic,
//     Definition 7): sorted per-variable influences, using the paper's
//     integer convention inf(f,i) = |{X : f(X) ≠ f(X^i)}| / 2.
//   - OSV, OSV0, OSV1 — ordered sensitivity vectors (point characteristic,
//     Definition 8): sorted multisets of local sensitivities over all
//     minterms / 0-minterms / 1-minterms. Represented compactly as
//     histograms indexed by sensitivity value; Expand produces the sorted
//     multiset of the paper's tables.
//   - OSDV, OSDV0, OSDV1 — ordered sensitivity distance vectors
//     (Definitions 9–10): δ[i][j] counts unordered minterm pairs with equal
//     local sensitivity i at Hamming distance j.
//
// Equality of each vector is a necessary condition for NPN equivalence
// (Theorems 1–4), which is what makes them usable as classification keys.
//
// An Engine carries reusable scratch buffers so that classifying large
// function populations does not allocate per function.
package sig

import (
	"math/bits"
	"sort"

	"repro/internal/spectra"
	"repro/internal/tt"
)

// Engine computes signature vectors for functions of a fixed arity n,
// reusing internal scratch space across calls. An Engine is not safe for
// concurrent use; create one per goroutine.
type Engine struct {
	n     int
	nw    int
	diff  []uint64 // scratch: XOR difference table of one variable
	flip  []uint64 // scratch: flipped copy
	plane [5][]uint64
	carry []uint64
	sen   []uint8 // per-minterm local sensitivity, valid after senProfile

	// OSDV fast-path scratch: pair-distance calculator (lazy) and the
	// counting-sort buffers behind classListsScratch.
	pairCalc *spectra.PairDistCalc
	classBuf []int32
	classCnt []int32
	classes  [][]int32

	// sortBuf is the lazily-grown bucket array behind sortCounts.
	sortBuf []int32
}

// NewEngine returns an Engine for n-variable functions.
func NewEngine(n int) *Engine {
	nw := 1
	if n > 6 {
		nw = 1 << (n - 6)
	}
	e := &Engine{n: n, nw: nw}
	e.diff = make([]uint64, nw)
	e.flip = make([]uint64, nw)
	for k := range e.plane {
		e.plane[k] = make([]uint64, nw)
	}
	e.carry = make([]uint64, nw)
	e.sen = make([]uint8, 1<<n)
	e.classBuf = make([]int32, 1<<n)
	e.classCnt = make([]int32, n+1)
	e.classes = make([][]int32, n+1)
	return e
}

// NumVars returns the arity this engine serves.
func (e *Engine) NumVars() int { return e.n }

// sortCounts sorts a vector of satisfy counts (non-negative, at most
// 2^n) in non-decreasing order: insertion sort for the short vectors
// (OIV, OCV1), counting sort over a bucket array bounded by the actual
// maximum for the longer ones (OCV2, OCVL) — both beat comparison
// sorting on these small-valued inputs, which the profiler shows on the
// MSV hot path. When the value range dwarfs the vector (large n, short
// vector) the bucket sweep would lose, so it falls back to sort.Ints.
func (e *Engine) sortCounts(v []int) {
	if len(v) <= 32 {
		for i := 1; i < len(v); i++ {
			x := v[i]
			j := i - 1
			for j >= 0 && v[j] > x {
				v[j+1] = v[j]
				j--
			}
			v[j+1] = x
		}
		return
	}
	max := 0
	for _, x := range v {
		if x > max {
			max = x
		}
	}
	if max+1 > 32*len(v) {
		sort.Ints(v)
		return
	}
	if max+1 > len(e.sortBuf) {
		e.sortBuf = make([]int32, max+1)
	}
	buckets := e.sortBuf[:max+1]
	for i := range buckets {
		buckets[i] = 0
	}
	for _, x := range v {
		buckets[x]++
	}
	k := 0
	for val, c := range buckets {
		for ; c > 0; c-- {
			v[k] = val
			k++
		}
	}
}

func (e *Engine) check(f *tt.TT) {
	if f.NumVars() != e.n {
		panic("sig: function arity does not match engine")
	}
}

// SatCount returns the 0-ary cofactor signature |f|.
func SatCount(f *tt.TT) int { return f.CountOnes() }

// OCV1 returns the 1-ary ordered cofactor vector: the 2n cofactor satisfy
// counts |f|x_i=v| sorted in non-decreasing order.
func (e *Engine) OCV1(f *tt.TT) []int {
	return e.AppendOCV1(make([]int, 0, 2*e.n), f)
}

// AppendOCV1 appends the 1-ary ordered cofactor vector to v and returns
// the extended slice — the allocation-free form of OCV1 for callers that
// reuse a scratch slice across functions (the serving hot path). Only the
// appended tail is sorted; v's existing prefix is untouched.
//
//npn:noalloc
func (e *Engine) AppendOCV1(v []int, f *tt.TT) []int {
	e.check(f)
	lo := len(v)
	total := f.CountOnes()
	for i := 0; i < e.n; i++ {
		c1 := f.CofactorCount(i, true)
		v = append(v, total-c1, c1)
	}
	e.sortCounts(v[lo:])
	return v
}

// OCV2 returns the 2-ary ordered cofactor vector: the C(n,2)·4 two-variable
// cofactor satisfy counts sorted in non-decreasing order.
func (e *Engine) OCV2(f *tt.TT) []int {
	return e.AppendOCV2(make([]int, 0, e.n*(e.n-1)*2), f)
}

// AppendOCV2 appends the 2-ary ordered cofactor vector to v and returns
// the extended slice; see AppendOCV1 for the scratch-reuse contract.
//
//npn:noalloc
func (e *Engine) AppendOCV2(v []int, f *tt.TT) []int {
	e.check(f)
	lo := len(v)
	total := f.CountOnes()
	for i := 0; i < e.n; i++ {
		for j := i + 1; j < e.n; j++ {
			c11 := f.CofactorCount2(i, true, j, true)
			c01 := f.CofactorCount2(i, false, j, true)
			c10 := f.CofactorCount2(i, true, j, false)
			c00 := total - c11 - c01 - c10
			v = append(v, c00, c01, c10, c11)
		}
	}
	e.sortCounts(v[lo:])
	return v
}

// OCVL returns the ℓ-ary ordered cofactor vector: satisfy counts of all
// C(n,ℓ)·2^ℓ cofactors with respect to ℓ-variable subsets, sorted.
func (e *Engine) OCVL(f *tt.TT, l int) []int {
	e.check(f)
	if l < 0 || l > e.n {
		panic("sig: OCVL order out of range")
	}
	if l == 0 {
		return []int{f.CountOnes()}
	}
	vars := make([]int, l)
	var v []int
	var rec func(start, k int)
	rec = func(start, k int) {
		if k == l {
			for vals := 0; vals < 1<<l; vals++ {
				v = append(v, f.CofactorCountSet(vars, vals))
			}
			return
		}
		for i := start; i < e.n; i++ {
			vars[k] = i
			rec(i+1, k+1)
		}
	}
	rec(0, 0)
	e.sortCounts(v)
	return v
}

// Influence returns the paper's integer influence of variable i:
// |{X : f(X) ≠ f(X^i)}| / 2 = 2^n · inf(f,i) / 2.
func (e *Engine) Influence(f *tt.TT, i int) int {
	e.check(f)
	return e.diffCount(f, i) / 2
}

// diffCount returns |{X : f(X) ≠ f(X^i)}| (always even).
func (e *Engine) diffCount(f *tt.TT, i int) int {
	e.fillDiff(f, i)
	c := 0
	for _, w := range e.diff {
		c += bits.OnesCount64(w)
	}
	return c
}

// fillDiff computes e.diff = T(f) ⊕ T(f with variable i flipped).
func (e *Engine) fillDiff(f *tt.TT, i int) {
	words := f.Words()
	if i < 6 {
		s := uint(1) << uint(i)
		p := tt.VarMaskWord(i)
		for wi, w := range words {
			fl := (w&p)>>s | (w&^p)<<s
			e.diff[wi] = (w ^ fl) & lastMask(e.n, wi, e.nw)
		}
		return
	}
	stride := 1 << (uint(i) - 6)
	for wi, w := range words {
		e.diff[wi] = w ^ words[wi^stride]
	}
}

// lastMask masks unused high bits of the final word when n < 6.
func lastMask(n, wi, nw int) uint64 {
	if wi == nw-1 && n < 6 {
		return tt.WordMask(n)
	}
	return ^uint64(0)
}

// OIV returns the ordered influence vector: the n integer influences sorted
// in non-decreasing order.
func (e *Engine) OIV(f *tt.TT) []int {
	return e.AppendOIV(make([]int, 0, e.n), f)
}

// AppendOIV appends the ordered influence vector to v and returns the
// extended slice; see AppendOCV1 for the scratch-reuse contract.
//
//npn:noalloc
func (e *Engine) AppendOIV(v []int, f *tt.TT) []int {
	e.check(f)
	lo := len(v)
	for i := 0; i < e.n; i++ {
		v = append(v, e.Influence(f, i))
	}
	e.sortCounts(v[lo:])
	return v
}

// TotalInfluence returns Σ_i inf(f, i) under the integer convention.
func (e *Engine) TotalInfluence(f *tt.TT) int {
	s := 0
	for i := 0; i < e.n; i++ {
		s += e.Influence(f, i)
	}
	return s
}
