package sig

import (
	"repro/internal/tt"
)

// Unateness classifies how a function depends on one variable. It is a face
// characteristic derivable from cofactors — f is positive unate in x_i when
// f|x_i=0 ≤ f|x_i=1 pointwise — and a classical matching signature: an NP
// transform maps positive-unate variables to positive-unate variables (or to
// negative-unate ones when the input is negated), so the unateness profile
// prunes variable correspondences.
type Unateness uint8

const (
	// Binate: the variable appears in both polarities.
	Binate Unateness = iota
	// PosUnate: increasing the variable never turns the output off.
	PosUnate
	// NegUnate: increasing the variable never turns the output on.
	NegUnate
	// Vacuous: the function does not depend on the variable (both unate).
	Vacuous
)

// String names the unateness class.
func (u Unateness) String() string {
	switch u {
	case PosUnate:
		return "pos-unate"
	case NegUnate:
		return "neg-unate"
	case Vacuous:
		return "vacuous"
	default:
		return "binate"
	}
}

// Negate returns the unateness of the variable after input negation.
func (u Unateness) Negate() Unateness {
	switch u {
	case PosUnate:
		return NegUnate
	case NegUnate:
		return PosUnate
	default:
		return u
	}
}

// VarUnateness returns the unateness of f in variable i.
func VarUnateness(f *tt.TT, i int) Unateness {
	neg := f.Cofactor(i, false)
	pos := f.Cofactor(i, true)
	le := implies(neg, pos) // neg ≤ pos
	ge := implies(pos, neg)
	switch {
	case le && ge:
		return Vacuous
	case le:
		return PosUnate
	case ge:
		return NegUnate
	default:
		return Binate
	}
}

// Unateness returns VarUnateness(f, i) computed directly on the truth-table
// words: the two cofactor halves are compared in place instead of being
// materialized as tables, so the call allocates nothing — this is the form
// the matcher's profile fill uses on the serving hot path.
func (e *Engine) Unateness(f *tt.TT, i int) Unateness {
	e.check(f)
	words := f.Words()
	le, ge := true, true
	if i < 6 {
		s := uint(1) << uint(i)
		p := tt.VarMaskWord(i)
		for wi, w := range words {
			w &= lastMask(e.n, wi, e.nw)
			lo := w &^ p       // minterms with x_i = 0
			hi := (w & p) >> s // minterms with x_i = 1, aligned onto them
			le = le && lo&^hi == 0
			ge = ge && hi&^lo == 0
			if !le && !ge {
				return Binate
			}
		}
	} else {
		stride := 1 << (uint(i) - 6)
		for wi := 0; wi < len(words); wi++ {
			if wi&stride != 0 {
				continue
			}
			lo, hi := words[wi], words[wi|stride]
			le = le && lo&^hi == 0
			ge = ge && hi&^lo == 0
			if !le && !ge {
				return Binate
			}
		}
	}
	switch {
	case le && ge:
		return Vacuous
	case le:
		return PosUnate
	default:
		return NegUnate
	}
}

// implies reports a ≤ b pointwise (a → b is a tautology).
func implies(a, b *tt.TT) bool {
	aw, bw := a.Words(), b.Words()
	for i := range aw {
		if aw[i]&^bw[i] != 0 {
			return false
		}
	}
	return true
}

// UnatenessProfile returns the per-variable unateness of f.
func UnatenessProfile(f *tt.TT) []Unateness {
	out := make([]Unateness, f.NumVars())
	for i := range out {
		out[i] = VarUnateness(f, i)
	}
	return out
}

// UnateCounts returns (#binate, #unate, #vacuous) where unate counts both
// polarities together — the polarity-insensitive summary that is invariant
// under full NPN transformation and can join an MSV.
func UnateCounts(f *tt.TT) (binate, unate, vacuous int) {
	for _, u := range UnatenessProfile(f) {
		switch u {
		case Binate:
			binate++
		case Vacuous:
			vacuous++
		default:
			unate++
		}
	}
	return binate, unate, vacuous
}

// IsUnate reports whether f is unate in every variable.
func IsUnate(f *tt.TT) bool {
	b, _, _ := UnateCounts(f)
	return b == 0
}
