package sig

import (
	"reflect"
	"testing"

	"repro/internal/tt"
)

// Table I of the paper lists every signature vector for two 3-input
// functions: f1, the 3-majority (truth table 0xE8, Fig. 1a), and f3 = x1
// (truth table 0xF0 in our variable numbering x1 = variable 2... the paper's
// f3 depends on a single variable; any single-variable function has the
// listed signatures, we use f3(x) = x3, hex "f0"). These tests pin our
// implementation to the paper's published numbers.

func table1Engine() *Engine { return NewEngine(3) }

func f1Maj() *tt.TT { return tt.MustFromHex(3, "e8") }
func f3Var() *tt.TT { return tt.MustFromHex(3, "f0") } // f3 = x3 (variable index 2)

func TestTable1OCV1(t *testing.T) {
	e := table1Engine()
	if got, want := e.OCV1(f1Maj()), []int{1, 1, 1, 3, 3, 3}; !reflect.DeepEqual(got, want) {
		t.Errorf("OCV1(f1) = %v, want %v", got, want)
	}
	if got, want := e.OCV1(f3Var()), []int{0, 2, 2, 2, 2, 4}; !reflect.DeepEqual(got, want) {
		t.Errorf("OCV1(f3) = %v, want %v", got, want)
	}
}

func TestTable1OCV2(t *testing.T) {
	e := table1Engine()
	if got, want := e.OCV2(f1Maj()), []int{0, 0, 0, 1, 1, 1, 1, 1, 1, 2, 2, 2}; !reflect.DeepEqual(got, want) {
		t.Errorf("OCV2(f1) = %v, want %v", got, want)
	}
	if got, want := e.OCV2(f3Var()), []int{0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2}; !reflect.DeepEqual(got, want) {
		t.Errorf("OCV2(f3) = %v, want %v", got, want)
	}
}

func TestTable1OIV(t *testing.T) {
	e := table1Engine()
	if got, want := e.OIV(f1Maj()), []int{2, 2, 2}; !reflect.DeepEqual(got, want) {
		t.Errorf("OIV(f1) = %v, want %v", got, want)
	}
	if got, want := e.OIV(f3Var()), []int{0, 0, 4}; !reflect.DeepEqual(got, want) {
		t.Errorf("OIV(f3) = %v, want %v", got, want)
	}
}

func TestTable1OSV(t *testing.T) {
	e := table1Engine()
	h0, h1 := e.OSV01(f1Maj())
	if got, want := h1.Expand(), []int{0, 2, 2, 2}; !reflect.DeepEqual(got, want) {
		t.Errorf("OSV1(f1) = %v, want %v", got, want)
	}
	if got, want := h0.Expand(), []int{0, 2, 2, 2}; !reflect.DeepEqual(got, want) {
		t.Errorf("OSV0(f1) = %v, want %v", got, want)
	}
	if got, want := h0.Add(h1).Expand(), []int{0, 0, 2, 2, 2, 2, 2, 2}; !reflect.DeepEqual(got, want) {
		t.Errorf("OSV(f1) = %v, want %v", got, want)
	}

	h0, h1 = e.OSV01(f3Var())
	if got, want := h1.Expand(), []int{1, 1, 1, 1}; !reflect.DeepEqual(got, want) {
		t.Errorf("OSV1(f3) = %v, want %v", got, want)
	}
	if got, want := h0.Expand(), []int{1, 1, 1, 1}; !reflect.DeepEqual(got, want) {
		t.Errorf("OSV0(f3) = %v, want %v", got, want)
	}
	if got, want := h0.Add(h1).Expand(), []int{1, 1, 1, 1, 1, 1, 1, 1}; !reflect.DeepEqual(got, want) {
		t.Errorf("OSV(f3) = %v, want %v", got, want)
	}
}

func TestTable1OSDV1(t *testing.T) {
	e := table1Engine()
	_, d1 := e.OSDV01(f1Maj())
	if got, want := d1.Flatten(), []int{0, 0, 0, 0, 0, 0, 0, 3, 0, 0, 0, 0}; !reflect.DeepEqual(got, want) {
		t.Errorf("OSDV1(f1) = %v, want %v", got, want)
	}
	_, d1 = e.OSDV01(f3Var())
	if got, want := d1.Flatten(), []int{0, 0, 0, 4, 2, 0, 0, 0, 0, 0, 0, 0}; !reflect.DeepEqual(got, want) {
		t.Errorf("OSDV1(f3) = %v, want %v", got, want)
	}
}

func TestTable1OSDV(t *testing.T) {
	e := table1Engine()
	if got, want := e.OSDV(f1Maj()).Flatten(), []int{0, 0, 1, 0, 0, 0, 6, 6, 3, 0, 0, 0}; !reflect.DeepEqual(got, want) {
		t.Errorf("OSDV(f1) = %v, want %v", got, want)
	}
	if got, want := e.OSDV(f3Var()).Flatten(), []int{0, 0, 0, 12, 12, 4, 0, 0, 0, 0, 0, 0}; !reflect.DeepEqual(got, want) {
		t.Errorf("OSDV(f3) = %v, want %v", got, want)
	}
}

// Fig. 1 of the paper: f1 (majority) and f2 are NPN equivalent; f2 can be
// obtained from f1 by an NP transformation, so all signature vectors agree.
func TestFig1EquivalentPairSharesSignatures(t *testing.T) {
	e := table1Engine()
	f1 := f1Maj()
	f2 := f1.FlipVar(0).SwapVars(1, 2) // an arbitrary NP transform of f1
	if f2.Equal(f1) {
		t.Fatal("transform did not change the table; test vacuous")
	}
	if !reflect.DeepEqual(e.OCV1(f1), e.OCV1(f2)) {
		t.Error("OCV1 differs across NP transform")
	}
	if !reflect.DeepEqual(e.OIV(f1), e.OIV(f2)) {
		t.Error("OIV differs across NP transform")
	}
	a0, a1 := e.OSV01(f1)
	b0, b1 := e.OSV01(f2)
	if !a0.Equal(b0) || !a1.Equal(b1) {
		t.Error("OSV differs across NP transform")
	}
	if !e.OSDV(f1).Equal(e.OSDV(f2)) {
		t.Error("OSDV differs across NP transform")
	}
}
