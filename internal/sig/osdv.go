package sig

import (
	"math/bits"

	"repro/internal/tt"
)

// SDV is a sensitivity distance vector (Definition 10): SDV[i][j-1] = δij is
// the number of unordered minterm pairs (X, Y), X < Y, with equal local
// sensitivity sen(f,X) = sen(f,Y) = i and Hamming distance h(X, Y) = j.
// Rows run over sensitivity values 0..n, columns over distances 1..n.
type SDV [][]int

func newSDV(n int) SDV {
	s := make(SDV, n+1)
	for i := range s {
		s[i] = make([]int, n)
	}
	return s
}

// Flatten returns the row-major flattening (σ0, σ1, ..., σn) the paper
// prints in Table I.
func (s SDV) Flatten() []int {
	var v []int
	for _, row := range s {
		v = append(v, row...)
	}
	return v
}

// Equal reports elementwise equality.
func (s SDV) Equal(o SDV) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if len(s[i]) != len(o[i]) {
			return false
		}
		for j := range s[i] {
			if s[i][j] != o[i][j] {
				return false
			}
		}
	}
	return true
}

// Less orders SDVs lexicographically in row-major order; used to place the
// smaller of (OSDV0, OSDV1) first for balanced functions (Theorem 4).
func (s SDV) Less(o SDV) bool {
	for i := range s {
		for j := range s[i] {
			if s[i][j] != o[i][j] {
				return s[i][j] < o[i][j]
			}
		}
	}
	return false
}

// OSDV returns the ordered sensitivity distance vector over all minterms.
func (e *Engine) OSDV(f *tt.TT) SDV {
	sen := e.SenProfile(f)
	return pairDistances(e.n, classLists(e.n, sen, nil, false))
}

// OSDV01 returns the ordered 0-sensitivity and 1-sensitivity distance
// vectors (pairs restricted to 0-minterms and to 1-minterms respectively).
func (e *Engine) OSDV01(f *tt.TT) (d0, d1 SDV) {
	sen := e.SenProfile(f)
	d0 = pairDistances(e.n, classLists(e.n, sen, f, false))
	d1 = pairDistances(e.n, classLists(e.n, sen, f, true))
	return d0, d1
}

// classLists buckets minterm indices by local sensitivity. If f is non-nil,
// only minterms with f(x) == val are included.
func classLists(n int, sen []uint8, f *tt.TT, val bool) [][]int32 {
	classes := make([][]int32, n+1)
	for x := 0; x < 1<<n; x++ {
		if f != nil && f.Get(x) != val {
			continue
		}
		s := sen[x]
		classes[s] = append(classes[s], int32(x))
	}
	return classes
}

// pairDistances counts, for each sensitivity class, the unordered pairs at
// each Hamming distance by direct enumeration.
func pairDistances(n int, classes [][]int32) SDV {
	d := newSDV(n)
	for s, members := range classes {
		row := d[s]
		for a := 0; a < len(members); a++ {
			xa := members[a]
			for b := a + 1; b < len(members); b++ {
				j := bits.OnesCount32(uint32(xa ^ members[b]))
				row[j-1]++
			}
		}
	}
	return d
}
