package sig

import (
	"math/bits"
	"math/rand"
	"testing"

	"repro/internal/tt"
)

// refOSDV computes an SDV by brute-force pair enumeration over a filter.
func refOSDV(f *tt.TT, filter func(x int) bool) SDV {
	n := f.NumVars()
	d := newSDV(n)
	for x := 0; x < f.NumBits(); x++ {
		if !filter(x) {
			continue
		}
		sx := LocalSensitivity(f, x)
		for y := x + 1; y < f.NumBits(); y++ {
			if !filter(y) {
				continue
			}
			if LocalSensitivity(f, y) != sx {
				continue
			}
			j := bits.OnesCount(uint(x ^ y))
			d[sx][j-1]++
		}
	}
	return d
}

func TestOSDVAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	for n := 1; n <= 6; n++ {
		e := NewEngine(n)
		for rep := 0; rep < 5; rep++ {
			f := tt.Random(n, rng)
			all := e.OSDV(f)
			want := refOSDV(f, func(int) bool { return true })
			if !all.Equal(want) {
				t.Fatalf("OSDV mismatch n=%d:\n got %v\nwant %v", n, all, want)
			}
			d0, d1 := e.OSDV01(f)
			w0 := refOSDV(f, func(x int) bool { return !f.Get(x) })
			w1 := refOSDV(f, func(x int) bool { return f.Get(x) })
			if !d0.Equal(w0) || !d1.Equal(w1) {
				t.Fatalf("OSDV01 mismatch n=%d", n)
			}
		}
	}
}

func TestOSDVFastAgreesWithNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for n := 1; n <= 9; n++ {
		e := NewEngine(n)
		for rep := 0; rep < 4; rep++ {
			f := tt.Random(n, rng)
			if !e.OSDVFast(f).Equal(e.OSDV(f)) {
				t.Fatalf("OSDVFast != OSDV at n=%d (f=%s)", n, f.Hex())
			}
			f0, f1 := e.OSDV01Fast(f)
			n0, n1 := e.OSDV01(f)
			if !f0.Equal(n0) || !f1.Equal(n1) {
				t.Fatalf("OSDV01Fast != OSDV01 at n=%d (f=%s)", n, f.Hex())
			}
		}
	}
}

func TestSDVTotalPairs(t *testing.T) {
	// Row sums of the combined OSDV must equal C(class size, 2) per class.
	rng := rand.New(rand.NewSource(42))
	for n := 2; n <= 8; n++ {
		e := NewEngine(n)
		f := tt.Random(n, rng)
		h0, h1 := e.OSV01(f)
		h := h0.Add(h1)
		d := e.OSDV(f)
		for s := 0; s <= n; s++ {
			rowSum := 0
			for _, c := range d[s] {
				rowSum += c
			}
			want := h[s] * (h[s] - 1) / 2
			if rowSum != want {
				t.Fatalf("class %d row sum %d, want C(%d,2)=%d (n=%d)", s, rowSum, h[s], want, n)
			}
		}
	}
}

func TestSDVFlattenAndLess(t *testing.T) {
	a := newSDV(2)
	b := newSDV(2)
	a[1][0] = 1
	b[1][0] = 2
	if !a.Less(b) || b.Less(a) || a.Less(a) {
		t.Error("SDV.Less ordering wrong")
	}
	if got := a.Flatten(); len(got) != 6 || got[2] != 1 {
		t.Errorf("Flatten = %v", got)
	}
	if a.Equal(newSDV(3)) {
		t.Error("Equal must compare shapes")
	}
}
