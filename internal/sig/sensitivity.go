package sig

import (
	"math/bits"

	"repro/internal/tt"
)

// SenHist is a sensitivity histogram: SenHist[s] is the number of minterms
// with local sensitivity s. It is the compact form of an ordered sensitivity
// vector — two histograms are equal exactly when the sorted multisets are.
type SenHist []int

// Expand returns the sorted multiset the paper prints (e.g. Table I), i.e.
// each sensitivity value s repeated SenHist[s] times, non-decreasing.
func (h SenHist) Expand() []int {
	var v []int
	for s, c := range h {
		for k := 0; k < c; k++ {
			v = append(v, s)
		}
	}
	return v
}

// Total returns the number of minterms counted.
func (h SenHist) Total() int {
	t := 0
	for _, c := range h {
		t += c
	}
	return t
}

// Equal reports elementwise equality.
func (h SenHist) Equal(o SenHist) bool {
	if len(h) != len(o) {
		return false
	}
	for i := range h {
		if h[i] != o[i] {
			return false
		}
	}
	return true
}

// Less orders histograms lexicographically; used to place the smaller of
// (OSV0, OSV1) first for balanced functions (Theorem 3).
func (h SenHist) Less(o SenHist) bool {
	for i := range h {
		if h[i] != o[i] {
			return h[i] < o[i]
		}
	}
	return false
}

// Add returns the elementwise sum (OSV = OSV0 + OSV1).
func (h SenHist) Add(o SenHist) SenHist {
	r := make(SenHist, len(h))
	for i := range h {
		r[i] = h[i] + o[i]
	}
	return r
}

// OSV01 returns the ordered 0-sensitivity and 1-sensitivity vectors of f as
// histograms (h0[s] = #0-minterms with local sensitivity s, h1 likewise for
// 1-minterms). This is the bit-sliced fast path: per-variable difference
// tables are accumulated into vertical counters, and the histogram is read
// off with masked popcounts instead of per-minterm extraction.
func (e *Engine) OSV01(f *tt.TT) (h0, h1 SenHist) {
	e.check(f)
	e.accumulatePlanes(f)
	h0 = make(SenHist, e.n+1)
	h1 = make(SenHist, e.n+1)
	words := f.Words()
	planes := e.planesNeeded()
	for s := 0; s <= e.n; s++ {
		for wi := range words {
			m := lastMask(e.n, wi, e.nw)
			for k := 0; k < planes; k++ {
				pw := e.plane[k][wi]
				if s>>uint(k)&1 == 0 {
					pw = ^pw
				}
				m &= pw
			}
			h1[s] += bits.OnesCount64(m & words[wi])
			h0[s] += bits.OnesCount64(m &^ words[wi] & lastMask(e.n, wi, e.nw))
		}
	}
	return h0, h1
}

// planesNeeded returns how many counter bit-planes can be non-zero for
// sensitivities up to n.
func (e *Engine) planesNeeded() int {
	p := bits.Len(uint(e.n))
	if p == 0 {
		p = 1
	}
	return p
}

// accumulatePlanes computes, for every minterm position, the vertical binary
// counter Σ_i D_i where D_i is the indicator that f is sensitive at variable
// i. plane[k] holds bit k of the counter.
func (e *Engine) accumulatePlanes(f *tt.TT) {
	for k := range e.plane {
		for wi := range e.plane[k] {
			e.plane[k][wi] = 0
		}
	}
	for i := 0; i < e.n; i++ {
		e.fillDiff(f, i)
		// Ripple-carry add of the 1-bit addend diff into the counter planes.
		for wi := range e.diff {
			e.carry[wi] = e.diff[wi]
		}
		for k := 0; k < len(e.plane); k++ {
			done := true
			for wi := range e.carry {
				c := e.carry[wi]
				if c == 0 {
					continue
				}
				done = false
				nc := e.plane[k][wi] & c
				e.plane[k][wi] ^= c
				e.carry[wi] = nc
			}
			if done {
				break
			}
		}
	}
}

// SenProfileScalar fills and returns the per-minterm local sensitivity array
// sen[x] = sen(f, x) using the straightforward per-bit accumulation. The
// returned slice aliases engine scratch; callers must copy it if they need it
// past the next engine call.
func (e *Engine) SenProfileScalar(f *tt.TT) []uint8 {
	e.check(f)
	for x := range e.sen {
		e.sen[x] = 0
	}
	for i := 0; i < e.n; i++ {
		e.fillDiff(f, i)
		for wi, w := range e.diff {
			base := wi << 6
			for w != 0 {
				b := bits.TrailingZeros64(w)
				e.sen[base+b]++
				w &= w - 1
			}
		}
	}
	return e.sen
}

// SenProfile fills the per-minterm sensitivity array from the bit-sliced
// counters (fast path) and returns it. Aliases engine scratch.
func (e *Engine) SenProfile(f *tt.TT) []uint8 {
	e.check(f)
	e.accumulatePlanes(f)
	planes := e.planesNeeded()
	for x := range e.sen {
		e.sen[x] = 0
	}
	for k := 0; k < planes; k++ {
		pw := e.plane[k]
		for wi, w := range pw {
			base := wi << 6
			for w != 0 {
				b := bits.TrailingZeros64(w)
				e.sen[base+b] |= 1 << uint(k)
				w &= w - 1
			}
		}
	}
	return e.sen[:1<<e.n]
}

// Sensitivity returns sen(f) = max over all minterms of the local
// sensitivity (Definition 4).
func (e *Engine) Sensitivity(f *tt.TT) int {
	h0, h1 := e.OSV01(f)
	h := h0.Add(h1)
	for s := len(h) - 1; s >= 0; s-- {
		if h[s] > 0 {
			return s
		}
	}
	return 0
}

// Sensitivity01 returns (sen0(f), sen1(f)): the maximum local sensitivity
// over 0-minterms and over 1-minterms.
func (e *Engine) Sensitivity01(f *tt.TT) (s0, s1 int) {
	h0, h1 := e.OSV01(f)
	for s := len(h0) - 1; s >= 0; s-- {
		if h0[s] > 0 {
			s0 = s
			break
		}
	}
	for s := len(h1) - 1; s >= 0; s-- {
		if h1[s] > 0 {
			s1 = s
			break
		}
	}
	return s0, s1
}

// LocalSensitivity returns sen(f, x) for a single minterm by direct probing.
func LocalSensitivity(f *tt.TT, x int) int {
	s := 0
	v := f.Get(x)
	for i := 0; i < f.NumVars(); i++ {
		if f.Get(x^1<<uint(i)) != v {
			s++
		}
	}
	return s
}
