package obs

import (
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestMiddlewareStampsAndEchoesRequestID(t *testing.T) {
	r := NewRegistry()
	m := NewHTTPMetrics(r, HTTPOptions{})
	var seen string
	h := m.Wrap("/v2/classify", func(w http.ResponseWriter, req *http.Request) {
		seen = RequestIDFromContext(req.Context())
		w.WriteHeader(http.StatusOK)
	})

	// Minted ID: present in context, echoed on the response.
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest(http.MethodPost, "/v2/classify", nil))
	if seen == "" {
		t.Fatal("no request ID in context")
	}
	if got := rec.Header().Get(RequestIDHeader); got != seen {
		t.Fatalf("echoed ID %q != context ID %q", got, seen)
	}

	// Caller-supplied ID: honored verbatim.
	rec = httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v2/classify", nil)
	req.Header.Set(RequestIDHeader, "caller-chosen-id")
	h(rec, req)
	if seen != "caller-chosen-id" || rec.Header().Get(RequestIDHeader) != "caller-chosen-id" {
		t.Fatalf("caller ID not honored: context %q, header %q", seen, rec.Header().Get(RequestIDHeader))
	}

	// Oversized ID: truncated, not rejected.
	rec = httptest.NewRecorder()
	req = httptest.NewRequest(http.MethodPost, "/v2/classify", nil)
	req.Header.Set(RequestIDHeader, strings.Repeat("x", 200))
	h(rec, req)
	if len(seen) != MaxRequestIDLen {
		t.Fatalf("oversized ID: len %d, want %d", len(seen), MaxRequestIDLen)
	}
}

func TestMiddlewareCountsByRouteMethodClass(t *testing.T) {
	r := NewRegistry()
	m := NewHTTPMetrics(r, HTTPOptions{})
	ok := m.Wrap("/v2/classify", func(w http.ResponseWriter, req *http.Request) {
		w.Write([]byte("hi")) // implicit 200
	})
	bad := m.Wrap("/v2/insert", func(w http.ResponseWriter, req *http.Request) {
		http.Error(w, "nope", http.StatusBadRequest)
	})
	for i := 0; i < 3; i++ {
		ok(httptest.NewRecorder(), httptest.NewRequest(http.MethodPost, "/v2/classify", nil))
	}
	bad(httptest.NewRecorder(), httptest.NewRequest(http.MethodPost, "/v2/insert", nil))

	if got := m.requests.With("/v2/classify", "POST", "2xx").Value(); got != 3 {
		t.Errorf("classify 2xx = %v, want 3", got)
	}
	if got := m.requests.With("/v2/insert", "POST", "4xx").Value(); got != 1 {
		t.Errorf("insert 4xx = %v, want 1", got)
	}
	if got := m.latency.With("/v2/classify", "POST", "2xx").Count(); got != 3 {
		t.Errorf("latency count = %v, want 3", got)
	}
	if got := m.inflight.Value(); got != 0 {
		t.Errorf("inflight after completion = %v, want 0", got)
	}
}

func TestMiddlewareSlowLog(t *testing.T) {
	var buf strings.Builder
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	r := NewRegistry()
	m := NewHTTPMetrics(r, HTTPOptions{SlowRequest: time.Nanosecond, Logger: logger})
	h := m.Wrap("/v2/map", func(w http.ResponseWriter, req *http.Request) {
		time.Sleep(time.Millisecond)
	})
	req := httptest.NewRequest(http.MethodPost, "/v2/map", nil)
	req.Header.Set(RequestIDHeader, "slow-req-1")
	h(httptest.NewRecorder(), req)

	out := buf.String()
	for _, want := range []string{"slow request", "request_id=slow-req-1", "route=/v2/map"} {
		if !strings.Contains(out, want) {
			t.Errorf("slow log missing %q: %s", want, out)
		}
	}
	if got := m.slow.With("/v2/map").Value(); got != 1 {
		t.Errorf("slow counter = %v, want 1", got)
	}
}

func TestStatusRecorderPreservesFlusher(t *testing.T) {
	r := NewRegistry()
	m := NewHTTPMetrics(r, HTTPOptions{})
	flushed := false
	h := m.Wrap("/v2/stream", func(w http.ResponseWriter, req *http.Request) {
		f, ok := w.(http.Flusher)
		if !ok {
			t.Fatal("wrapped writer lost http.Flusher")
		}
		w.Write([]byte("line\n"))
		f.Flush()
		flushed = true
	})
	// httptest.ResponseRecorder implements Flusher, so the wrapper must too.
	h(httptest.NewRecorder(), httptest.NewRequest(http.MethodPost, "/v2/stream", nil))
	if !flushed {
		t.Fatal("handler did not flush")
	}
}

func TestMetricsHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_handler_total", "x").Inc()
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	sc, err := Parse(strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := sc.Value("test_handler_total"); !ok || v != 1 {
		t.Errorf("scraped = %v,%v want 1,true", v, ok)
	}
}

func TestSanitizeRequestID(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"plain-id-123", "plain-id-123"},
		{"", ""},
		{"evil\r\nSet-Cookie: x=1", "evilSet-Cookie: x=1"}, // CRLF stripped: no log/header injection
		{"tab\there", "tabhere"},
		{"\x00\x1b[31m\x7f", "[31m"}, // NUL, ESC, DEL stripped
		{"\x00\x01\x02", ""},         // nothing printable remains
		{"héllo", "hllo"},            // non-ASCII stripped, not mangled
		{strings.Repeat("a", 200), strings.Repeat("a", MaxRequestIDLen)},
		{"\n" + strings.Repeat("b", 200), strings.Repeat("b", MaxRequestIDLen)},
	} {
		if got := SanitizeRequestID(tc.in); got != tc.want {
			t.Errorf("SanitizeRequestID(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestMiddlewareMintsIDForUnprintableHeader(t *testing.T) {
	r := NewRegistry()
	m := NewHTTPMetrics(r, HTTPOptions{})
	var seen string
	h := m.Wrap("/v2/classify", func(w http.ResponseWriter, req *http.Request) {
		seen = RequestIDFromContext(req.Context())
	})
	req := httptest.NewRequest(http.MethodPost, "/v2/classify", nil)
	req.Header.Set(RequestIDHeader, "\x01\x02\x03")
	h(httptest.NewRecorder(), req)
	if seen == "" || strings.ContainsAny(seen, "\x01\x02\x03") {
		t.Fatalf("unprintable header: context ID %q, want fresh minted ID", seen)
	}
}

func TestMiddlewarePanicKeepsAccountingStraight(t *testing.T) {
	r := NewRegistry()
	m := NewHTTPMetrics(r, HTTPOptions{})
	h := m.Wrap("/v2/classify", func(w http.ResponseWriter, req *http.Request) {
		panic("handler exploded")
	})

	func() {
		defer func() {
			// The middleware must NOT swallow the panic — net/http owns
			// the recovery policy (tear the connection down).
			if recover() == nil {
				t.Error("panic did not propagate through the middleware")
			}
		}()
		h(httptest.NewRecorder(), httptest.NewRequest(http.MethodPost, "/v2/classify", nil))
	}()

	if got := m.inflight.Value(); got != 0 {
		t.Errorf("inflight after panic = %v, want 0", got)
	}
	if got := m.requests.With("/v2/classify", "POST", "5xx").Value(); got != 1 {
		t.Errorf("5xx count after panic = %v, want 1", got)
	}
	if got := m.latency.With("/v2/classify", "POST", "5xx").Count(); got != 1 {
		t.Errorf("latency observations after panic = %v, want 1", got)
	}
}
