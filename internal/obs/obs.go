// Package obs is the observability layer of the serving stack: a
// dependency-free metrics registry (atomic counters, gauges and
// fixed-bucket latency histograms with quantile estimation) rendered in
// the Prometheus text exposition format, a matching parser (the scrape
// side pkg/client and the CI smoke use), and the HTTP middleware that
// stamps every request with a request ID and records per-route latency
// distributions.
//
// The registry is deliberately a *view*, not a second source of truth:
// every layer of the stack (internal/service, internal/store,
// internal/wal, internal/federation, internal/replica) already keeps its
// own atomic counters, and those layers register pull collectors
// (RegisterFunc) that read the very same atomics at scrape time. The
// /v1/stats and /v2/stats JSON bodies and the /metrics exposition are
// therefore three renderings of one set of counters and can never
// disagree. Only genuinely new measurements — latency distributions —
// live in the registry itself, as push-updated histograms.
//
// Instruments are safe for concurrent use; Observe/Add/Set are a handful
// of atomic operations and are safe to call from hot paths, including
// while another goroutine renders the registry.
package obs

import (
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Kind is a metric family's type, as published on its # TYPE line.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the exposition-format spelling of the kind.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// validName matches legal metric and label names.
var validName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// Registry holds metric families and renders them in the Prometheus text
// exposition format. The zero value is not usable; call NewRegistry.
// Registration (typically at process start) and rendering are guarded by
// one mutex; instrument updates are lock-free.
type Registry struct {
	mu    sync.Mutex
	names map[string]Kind // every registered family name, for dup detection
	insts []*family       // instrument-backed families
	funcs []*funcSource   // pull collectors
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: map[string]Kind{}}
}

// family is one instrument-backed metric family: a name, help text, kind,
// label schema and its children (one per label-value combination).
type family struct {
	name       string
	help       string
	kind       Kind
	labelNames []string
	buckets    []float64 // histograms only

	mu       sync.Mutex
	children map[string]*child
}

// child is one labeled series of a family.
type child struct {
	labelValues []string
	val         atomicFloat // counters and gauges
	hist        *Histogram  // histograms
}

// FuncFamily declares one family a pull collector emits into.
type FuncFamily struct {
	Name   string
	Help   string
	Kind   Kind // KindCounter or KindGauge
	Labels []string
}

// funcSource is a registered pull collector: the families it declares and
// the collect closure that emits their samples at render time.
type funcSource struct {
	fams    []FuncFamily
	collect func(emit func(fam int, labelValues []string, value float64))
}

// register adds a family name, panicking on duplicates or bad names —
// both are programmer errors, caught at process start like the Router's
// duplicate-route panic.
func (r *Registry) register(name string, kind Kind, labelNames []string) {
	if !validName.MatchString(name) {
		panic("obs: bad metric name " + name)
	}
	for _, l := range labelNames {
		if !validName.MatchString(l) || l == "le" {
			panic("obs: bad label name " + l + " on " + name)
		}
	}
	if _, dup := r.names[name]; dup {
		panic("obs: duplicate metric " + name)
	}
	r.names[name] = kind
}

func (r *Registry) newFamily(name, help string, kind Kind, buckets []float64, labelNames ...string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(name, kind, labelNames)
	f := &family{name: name, help: help, kind: kind, labelNames: labelNames,
		buckets: buckets, children: map[string]*child{}}
	r.insts = append(r.insts, f)
	return f
}

// childFor returns (creating if needed) the series for one label-value
// combination.
func (f *family) childFor(labelValues []string) *child {
	if len(labelValues) != len(f.labelNames) {
		panic(fmt.Sprintf("obs: %s wants %d label values, got %d", f.name, len(f.labelNames), len(labelValues)))
	}
	key := labelKey(labelValues)
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.children[key]
	if !ok {
		c = &child{labelValues: append([]string(nil), labelValues...)}
		if f.kind == KindHistogram {
			c.hist = newHistogram(f.buckets)
		}
		f.children[key] = c
	}
	return c
}

// labelKey joins label values into a map key; 0x1f never appears in
// sane label values and keeps distinct tuples distinct.
func labelKey(values []string) string {
	out := ""
	for i, v := range values {
		if i > 0 {
			out += "\x1f"
		}
		out += v
	}
	return out
}

// Counter is a monotonically increasing series.
type Counter struct{ c *child }

// Inc adds one.
func (c *Counter) Inc() { c.c.val.add(1) }

// Add adds v, which must not be negative.
func (c *Counter) Add(v float64) { c.c.val.add(v) }

// Value returns the current value.
func (c *Counter) Value() float64 { return c.c.val.load() }

// Gauge is a series that can go up and down.
type Gauge struct{ c *child }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.c.val.store(v) }

// Add adds v (may be negative).
func (g *Gauge) Add(v float64) { g.c.val.add(v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.c.val.load() }

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// With returns the series for the given label values, creating it on
// first use.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return &Counter{v.f.childFor(labelValues)}
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// With returns the series for the given label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return &Gauge{v.f.childFor(labelValues)}
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.f.childFor(labelValues).hist
}

// Counter registers an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return &Counter{r.newFamily(name, help, KindCounter, nil).childFor(nil)}
}

// Gauge registers an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return &Gauge{r.newFamily(name, help, KindGauge, nil).childFor(nil)}
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{r.newFamily(name, help, KindCounter, nil, labelNames...)}
}

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{r.newFamily(name, help, KindGauge, nil, labelNames...)}
}

// Histogram registers an unlabeled fixed-bucket histogram. Buckets are
// upper bounds in increasing order; the +Inf bucket is implicit.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.newFamily(name, help, KindHistogram, checkBuckets(buckets)).childFor(nil).hist
}

// HistogramVec registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	return &HistogramVec{r.newFamily(name, help, KindHistogram, checkBuckets(buckets), labelNames...)}
}

// GaugeFunc registers a gauge whose value is computed at render time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.RegisterFunc([]FuncFamily{{Name: name, Help: help, Kind: KindGauge}},
		func(emit func(int, []string, float64)) { emit(0, nil, fn()) })
}

// RegisterFunc registers a pull collector: fams declares the families it
// serves, collect is called once per Render and emits samples by family
// index. This is how the serving layers export their existing atomic
// counters without keeping a second copy — one snapshot feeds many
// families.
func (r *Registry) RegisterFunc(fams []FuncFamily, collect func(emit func(fam int, labelValues []string, value float64))) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range fams {
		if f.Kind == KindHistogram {
			panic("obs: func collectors cannot serve histograms (" + f.Name + ")")
		}
		r.register(f.Name, f.Kind, f.Labels)
	}
	r.funcs = append(r.funcs, &funcSource{fams: fams, collect: collect})
}

// atomicFloat is a float64 updated with CAS on its bit pattern.
type atomicFloat struct{ bits atomic.Uint64 }

func (a *atomicFloat) load() float64   { return math.Float64frombits(a.bits.Load()) }
func (a *atomicFloat) store(v float64) { a.bits.Store(math.Float64bits(v)) }
func (a *atomicFloat) add(v float64) {
	for {
		old := a.bits.Load()
		if a.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Histogram is a fixed-bucket distribution: per-bucket atomic counters, a
// running sum, and quantile estimation by linear interpolation within the
// bucket the rank falls into. Observe is a bucket search plus three
// atomic adds — cheap enough for per-request paths.
type Histogram struct {
	buckets []float64       // upper bounds, increasing; +Inf implicit
	counts  []atomic.Uint64 // len(buckets)+1, last is +Inf
	count   atomic.Uint64
	sum     atomicFloat
}

func newHistogram(buckets []float64) *Histogram {
	return &Histogram{buckets: buckets, counts: make([]atomic.Uint64, len(buckets)+1)}
}

func checkBuckets(buckets []float64) []float64 {
	if len(buckets) == 0 {
		panic("obs: histogram needs at least one bucket")
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic("obs: histogram buckets must increase")
		}
	}
	if math.IsInf(buckets[len(buckets)-1], +1) {
		panic("obs: +Inf bucket is implicit")
	}
	return append([]float64(nil), buckets...)
}

// Observe records one value. NaN and negative inputs are clamped to
// zero — they land in the first bucket and contribute nothing to the
// sum — so a bad caller cannot poison the +Inf bucket or the quantile
// estimates (NaN would otherwise sort past every bound and corrupt the
// running sum permanently).
func (h *Histogram) Observe(v float64) {
	if v != v || v < 0 {
		v = 0
	}
	i := sort.SearchFloat64s(h.buckets, v) // first bucket with bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
}

// ObserveDuration records a duration in seconds — the Prometheus base
// unit for time.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.load() }

// snapshot returns cumulative bucket counts (aligned with buckets, plus
// +Inf last), the total count and the sum. Under concurrent Observe the
// three are not one atomic cut; the render tolerates the skew the same
// way Prometheus client libraries do, but cumulative counts are clamped
// monotone so the exposition is always a valid histogram.
func (h *Histogram) snapshot() (cum []uint64, count uint64, sum float64) {
	cum = make([]uint64, len(h.counts))
	var run uint64
	for i := range h.counts {
		run += h.counts[i].Load()
		cum[i] = run
	}
	count = h.count.Load()
	if count < run {
		count = run // a racing Observe bumped a bucket first
	}
	cum[len(cum)-1] = count
	return cum, count, h.sum.load()
}

// Quantile estimates the q-quantile (0 < q < 1) of the observed
// distribution: the rank is located in its bucket and interpolated
// linearly between the bucket's bounds. Values in the +Inf bucket
// estimate as the highest finite bound. Returns 0 on an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	cum, count, _ := h.snapshot()
	return QuantileFromBuckets(h.buckets, cum, count, q)
}

// QuantileFromBuckets estimates a quantile from cumulative bucket counts
// — the same estimation Histogram.Quantile uses, exported so scraped
// histograms (Scrape, the bench trajectory) share one definition.
// buckets are the finite upper bounds; cum is cumulative and one longer
// (the +Inf bucket); count is the total observation count.
func QuantileFromBuckets(buckets []float64, cum []uint64, count uint64, q float64) float64 {
	if count == 0 || len(buckets) == 0 {
		return 0
	}
	if q <= 0 {
		q = 0
	}
	if q >= 1 {
		q = 1
	}
	rank := q * float64(count)
	for i, ub := range buckets {
		c := float64(cum[i])
		if c < rank {
			continue
		}
		lb, prev := 0.0, 0.0
		if i > 0 {
			lb, prev = buckets[i-1], float64(cum[i-1])
		}
		if c == prev {
			return ub
		}
		return lb + (ub-lb)*(rank-prev)/(c-prev)
	}
	// Rank falls in the +Inf bucket: the highest finite bound is the best
	// defensible estimate.
	return buckets[len(buckets)-1]
}

// DurationBuckets are the default latency buckets in seconds: 100µs to
// 10s, roughly exponential — wide enough for a cached lookup and a cold
// mapping alike.
func DurationBuckets() []float64 {
	return []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
		0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
}

// SizeBuckets are the default size buckets (batch lengths, byte counts):
// powers of four from 1 to 64k.
func SizeBuckets() []float64 {
	return []float64{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536}
}

// sample is one rendered series line.
type sample struct {
	suffix string // "", "_bucket", "_sum", "_count"
	labels []labelPair
	value  float64
}

type labelPair struct{ name, value string }

// Render writes the registry in the Prometheus text exposition format
// (version 0.0.4): families sorted by name, each with its # HELP and
// # TYPE line, children sorted by label values, histograms expanded into
// cumulative _bucket/_sum/_count series.
func (r *Registry) Render(w io.Writer) error {
	r.mu.Lock()
	type fam struct {
		name, help string
		kind       Kind
		samples    []sample
	}
	fams := map[string]*fam{}
	order := []string{}
	add := func(name, help string, kind Kind) *fam {
		f, ok := fams[name]
		if !ok {
			f = &fam{name: name, help: help, kind: kind}
			fams[name] = f
			order = append(order, name)
		}
		return f
	}
	for _, inst := range r.insts {
		f := add(inst.name, inst.help, inst.kind)
		inst.mu.Lock()
		children := make([]*child, 0, len(inst.children))
		for _, c := range inst.children {
			children = append(children, c)
		}
		inst.mu.Unlock()
		sort.Slice(children, func(i, j int) bool {
			return labelKey(children[i].labelValues) < labelKey(children[j].labelValues)
		})
		for _, c := range children {
			base := pairs(inst.labelNames, c.labelValues)
			if inst.kind != KindHistogram {
				f.samples = append(f.samples, sample{labels: base, value: c.val.load()})
				continue
			}
			cum, count, sum := c.hist.snapshot()
			for i, ub := range inst.buckets {
				f.samples = append(f.samples, sample{suffix: "_bucket",
					labels: append(append([]labelPair{}, base...), labelPair{"le", formatFloat(ub)}),
					value:  float64(cum[i])})
			}
			f.samples = append(f.samples, sample{suffix: "_bucket",
				labels: append(append([]labelPair{}, base...), labelPair{"le", "+Inf"}),
				value:  float64(count)})
			f.samples = append(f.samples, sample{suffix: "_sum", labels: base, value: sum})
			f.samples = append(f.samples, sample{suffix: "_count", labels: base, value: float64(count)})
		}
	}
	for _, fs := range r.funcs {
		for i := range fs.fams {
			add(fs.fams[i].Name, fs.fams[i].Help, fs.fams[i].Kind)
		}
		fs.collect(func(i int, labelValues []string, v float64) {
			decl := fs.fams[i]
			if len(labelValues) != len(decl.Labels) {
				panic(fmt.Sprintf("obs: %s wants %d label values, got %d", decl.Name, len(decl.Labels), len(labelValues)))
			}
			fams[decl.Name].samples = append(fams[decl.Name].samples,
				sample{labels: pairs(decl.Labels, labelValues), value: v})
		})
	}
	r.mu.Unlock()

	sort.Strings(order)
	for _, name := range order {
		f := fams[name]
		sort.SliceStable(f.samples, func(i, j int) bool {
			return sampleKey(f.samples[i]) < sampleKey(f.samples[j])
		})
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, escapeHelp(f.help), f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.samples {
			if _, err := io.WriteString(w, renderSample(f.name, s)); err != nil {
				return err
			}
		}
	}
	return nil
}

// sampleKey orders a family's samples: label values first so one child's
// bucket/sum/count lines stay grouped, then the suffix (buckets are
// already in le order from construction; stable sort preserves it).
func sampleKey(s sample) string {
	key := ""
	for _, p := range s.labels {
		if p.name == "le" {
			continue
		}
		key += p.value + "\x1f"
	}
	switch s.suffix {
	case "_bucket":
		return key + "0"
	case "_sum":
		return key + "1"
	case "_count":
		return key + "2"
	}
	return key
}

func pairs(names, values []string) []labelPair {
	out := make([]labelPair, len(names))
	for i := range names {
		out[i] = labelPair{names[i], values[i]}
	}
	return out
}

func renderSample(name string, s sample) string {
	out := name + s.suffix
	if len(s.labels) > 0 {
		out += "{"
		for i, p := range s.labels {
			if i > 0 {
				out += ","
			}
			out += p.name + `="` + escapeLabel(p.value) + `"`
		}
		out += "}"
	}
	return out + " " + formatFloat(s.value) + "\n"
}

func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(v string) string {
	out := make([]byte, 0, len(v))
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '"':
			out = append(out, '\\', '"')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, v[i])
		}
	}
	return string(out)
}

func escapeHelp(v string) string {
	out := make([]byte, 0, len(v))
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, v[i])
		}
	}
	return string(out)
}
