package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is the scrape side of the exposition format: a parser for the
// Prometheus text format the registry renders. pkg/client's Metrics()
// helper, the E2E tests and the bench-trajectory loadgen all read a live
// server through it, and the registry's own golden-file test round-trips
// Render output through Parse to lint the exposition.

// Sample is one parsed series: a metric name (including any _bucket /
// _sum / _count suffix), its label set and the value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Label returns a label's value, or "" when absent.
func (s Sample) Label(name string) string { return s.Labels[name] }

// Scrape is a parsed /metrics payload.
type Scrape struct {
	// Samples holds every series line in document order.
	Samples []Sample
	// Types maps family name to the declared # TYPE ("counter", "gauge",
	// "histogram").
	Types map[string]string
}

// Value returns the value of the series with the given name whose labels
// include every given pair ("k=v"), and whether exactly such a series
// exists. Extra labels on the series are ignored, so callers can match
// on the labels they care about.
func (s *Scrape) Value(name string, labelPairs ...string) (float64, bool) {
	for _, sm := range s.Samples {
		if sm.Name != name || !matchLabels(sm.Labels, labelPairs) {
			continue
		}
		return sm.Value, true
	}
	return 0, false
}

// Sum sums every series of the given name whose labels include the given
// pairs — e.g. Sum("npn_http_requests_total", "route=/v2/classify")
// across methods and status classes.
func (s *Scrape) Sum(name string, labelPairs ...string) float64 {
	total := 0.0
	for _, sm := range s.Samples {
		if sm.Name == name && matchLabels(sm.Labels, labelPairs) {
			total += sm.Value
		}
	}
	return total
}

// Has reports whether any series of the given name with the given label
// pairs exists.
func (s *Scrape) Has(name string, labelPairs ...string) bool {
	for _, sm := range s.Samples {
		if sm.Name == name && matchLabels(sm.Labels, labelPairs) {
			return true
		}
	}
	return false
}

// Names returns the sorted set of distinct series names in the scrape.
func (s *Scrape) Names() []string {
	set := map[string]bool{}
	for _, sm := range s.Samples {
		set[sm.Name] = true
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Quantile estimates quantile q of the named histogram family (pass the
// base name, without _bucket), restricted to series matching the given
// label pairs — the scrape-side twin of Histogram.Quantile, sharing
// QuantileFromBuckets. Returns 0 when the family is absent or empty.
func (s *Scrape) Quantile(name string, q float64, labelPairs ...string) float64 {
	// Collect per-le totals: multiple children (e.g. status classes) of
	// one family merge by summing, which is exactly how histogram
	// aggregation works.
	byLE := map[float64]float64{}
	for _, sm := range s.Samples {
		if sm.Name != name+"_bucket" || !matchLabels(sm.Labels, labelPairs) {
			continue
		}
		le, err := parseLE(sm.Labels["le"])
		if err != nil {
			continue
		}
		byLE[le] += sm.Value
	}
	var inf float64
	bounds := make([]float64, 0, len(byLE))
	for le, v := range byLE {
		if le == leInf {
			inf = v
			continue
		}
		bounds = append(bounds, le)
	}
	if len(bounds) == 0 {
		return 0
	}
	sort.Float64s(bounds)
	cum := make([]uint64, len(bounds)+1)
	for i, b := range bounds {
		cum[i] = uint64(byLE[b])
	}
	count := uint64(inf)
	cum[len(cum)-1] = count
	return QuantileFromBuckets(bounds, cum, count, q)
}

// leInf is the sentinel bound for the +Inf bucket in byLE maps.
var leInf = math.Inf(1)

func parseLE(s string) (float64, error) {
	if s == "+Inf" {
		return leInf, nil
	}
	return strconv.ParseFloat(s, 64)
}

func matchLabels(have map[string]string, wantPairs []string) bool {
	for _, p := range wantPairs {
		k, v, ok := strings.Cut(p, "=")
		if !ok || have[k] != v {
			return false
		}
	}
	return true
}

// Parse reads a Prometheus text-format exposition. It is strict about
// the shapes the registry renders (and Prometheus accepts): bad lines
// return an error rather than being skipped, so the golden-file test
// doubles as an exposition lint.
func Parse(r io.Reader) (*Scrape, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	out := &Scrape{Types: map[string]string{}}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(line, out); err != nil {
				return nil, fmt.Errorf("obs: line %d: %w", lineNo, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", lineNo, err)
		}
		out.Samples = append(out.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: %w", err)
	}
	return out, nil
}

func parseComment(line string, out *Scrape) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		out.Types[fields[2]] = fields[3]
	case "HELP":
		if len(fields) < 3 {
			return fmt.Errorf("malformed HELP line %q", line)
		}
	}
	return nil
}

func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	brace := strings.IndexByte(rest, '{')
	var name string
	if brace >= 0 {
		name = rest[:brace]
		var err error
		rest, err = parseLabels(rest[brace+1:], s.Labels)
		if err != nil {
			return s, err
		}
	} else {
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			return s, fmt.Errorf("no value on %q", line)
		}
		name, rest = rest[:sp], rest[sp:]
	}
	if !validName.MatchString(name) {
		return s, fmt.Errorf("bad metric name %q", name)
	}
	s.Name = name
	rest = strings.TrimSpace(rest)
	// A timestamp may follow the value; the registry never writes one but
	// accept it for forward compatibility.
	if sp := strings.IndexByte(rest, ' '); sp >= 0 {
		rest = rest[:sp]
	}
	v, err := parseValue(rest)
	if err != nil {
		return s, fmt.Errorf("bad value %q on %q", rest, line)
	}
	s.Value = v
	return s, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return leInf, nil
	case "-Inf":
		return -leInf, nil
	}
	return strconv.ParseFloat(s, 64)
}

// parseLabels consumes `name="value",...}` and returns the remainder of
// the line (the value part).
func parseLabels(rest string, into map[string]string) (string, error) {
	for {
		rest = strings.TrimLeft(rest, ", ")
		if rest == "" {
			return "", fmt.Errorf("unterminated label set")
		}
		if rest[0] == '}' {
			return rest[1:], nil
		}
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return "", fmt.Errorf("malformed label in %q", rest)
		}
		name := rest[:eq]
		if !validName.MatchString(name) && name != "le" {
			return "", fmt.Errorf("bad label name %q", name)
		}
		rest = rest[eq+1:]
		if rest == "" || rest[0] != '"' {
			return "", fmt.Errorf("unquoted label value in %q", rest)
		}
		val, rem, err := parseQuoted(rest)
		if err != nil {
			return "", err
		}
		into[name] = val
		rest = rem
	}
}

// parseQuoted consumes a leading double-quoted, backslash-escaped string
// and returns its unescaped value and the remainder.
func parseQuoted(s string) (string, string, error) {
	if s == "" || s[0] != '"' {
		return "", "", fmt.Errorf("expected quoted string in %q", s)
	}
	var b strings.Builder
	i := 1
	for i < len(s) {
		switch s[i] {
		case '"':
			return b.String(), s[i+1:], nil
		case '\\':
			if i+1 >= len(s) {
				return "", "", fmt.Errorf("dangling escape in %q", s)
			}
			switch s[i+1] {
			case 'n':
				b.WriteByte('\n')
			case '\\', '"':
				b.WriteByte(s[i+1])
			default:
				return "", "", fmt.Errorf("bad escape \\%c in %q", s[i+1], s)
			}
			i += 2
		default:
			b.WriteByte(s[i])
			i++
		}
	}
	return "", "", fmt.Errorf("unterminated quoted string in %q", s)
}
