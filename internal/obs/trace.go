package obs

import (
	"context"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// TraceParentHeader carries trace context across a proxy hop: a follower
// forwarding a request to its primary stamps "<trace id>/<span id>" so
// the primary's trace records which remote span it serves under. The two
// processes keep separate traces (there is no server-side merge); the
// shared request ID and the recorded parent are the join key.
const TraceParentHeader = "X-Trace-Parent"

// DefaultTraceBuffer is the flight recorder's default capacity in
// retained traces.
const DefaultTraceBuffer = 256

// defaultMaxSpans bounds one trace's span count so a pathological batch
// cannot turn a single request into an unbounded allocation; spans past
// the cap are counted, not recorded.
const defaultMaxSpans = 512

const activeSpanKey ctxKey = 1

// Attr is one span attribute, recorded in insertion order.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed stage of a traced request. The zero-cost contract:
// every method is safe (and a no-op) on a nil receiver, and StartSpan
// returns a nil span outside a traced request, so instrumentation points
// cost one context lookup when tracing is off.
type Span struct {
	tr     *Trace
	id     int
	parent int // index into the trace's span list; -1 for the root
	name   string
	start  time.Time
	dur    time.Duration
	attrs  []Attr
	ended  bool
}

// End marks the span finished, capturing its duration from the monotonic
// clock. Ending twice keeps the first duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.start)
	}
	s.tr.mu.Unlock()
}

// SetAttr attaches a string attribute to the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.attrs = append(s.attrs, Attr{key, value})
	s.tr.mu.Unlock()
}

// SetInt attaches an integer attribute to the span.
func (s *Span) SetInt(key string, value int64) {
	s.SetAttr(key, strconv.FormatInt(value, 10))
}

// SetBool attaches a boolean attribute to the span.
func (s *Span) SetBool(key string, value bool) {
	if value {
		s.SetAttr(key, "true")
	} else {
		s.SetAttr(key, "false")
	}
}

// StartSpan starts a child span under ctx's active span and returns a
// context carrying the new span as the active one. Outside a traced
// request (or past the per-trace span cap) the span is nil and the
// context is returned unchanged; nil spans swallow End and Set* calls,
// so call sites never branch on whether tracing is on.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent, _ := ctx.Value(activeSpanKey).(*Span)
	if parent == nil {
		return ctx, nil
	}
	sp := parent.tr.startSpan(name, parent.id)
	if sp == nil {
		return ctx, nil
	}
	return context.WithValue(ctx, activeSpanKey, sp), sp
}

// TraceParent returns the X-Trace-Parent value propagating ctx's active
// span across a process hop ("<trace id>/<span id>"), or "" outside a
// traced request.
func TraceParent(ctx context.Context) string {
	sp, _ := ctx.Value(activeSpanKey).(*Span)
	if sp == nil {
		return ""
	}
	return sp.tr.id + "/" + strconv.Itoa(sp.id)
}

// Trace is one request's span timeline. Spans live in a flat list (index
// 0 is the root) with parent indices; the tree is materialized only when
// a debug endpoint renders it. All span mutation is guarded by one mutex
// because batch fan-out creates spans from worker goroutines.
type Trace struct {
	tracer *Tracer
	id     string // the request's X-Request-Id
	route  string
	method string
	remote string // received X-Trace-Parent, "" when this is a fresh root
	start  time.Time

	mu      sync.Mutex
	spans   []*Span
	dropped int // spans rejected by the per-trace cap

	// Set at Finish.
	status int
	dur    time.Duration
	reason string // why the recorder kept it: "error", "slow", "sampled"
}

func (t *Trace) startSpan(name string, parent int) *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= t.tracer.maxSpans {
		t.dropped++
		return nil
	}
	sp := &Span{tr: t, id: len(t.spans), parent: parent, name: name, start: time.Now()}
	t.spans = append(t.spans, sp)
	return sp
}

// ID returns the trace's identifier — the request's X-Request-Id.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// TopSelf returns up to k "name=1.234ms" strings, the span names ranked
// by total self-time (duration minus direct children) — the slow-request
// log's attribution line. Unended spans contribute their elapsed time.
func (t *Trace) TopSelf(k int) []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	durs := make([]time.Duration, len(t.spans))
	for i, sp := range t.spans {
		if sp.ended {
			durs[i] = sp.dur
		} else {
			durs[i] = time.Since(sp.start)
		}
	}
	childSum := make([]time.Duration, len(t.spans))
	for i, sp := range t.spans {
		if sp.parent >= 0 && sp.parent < len(t.spans) {
			childSum[sp.parent] += durs[i]
		}
	}
	byName := map[string]time.Duration{}
	for i, sp := range t.spans {
		self := durs[i] - childSum[i]
		if self < 0 {
			self = 0
		}
		byName[sp.name] += self
	}
	type nameSelf struct {
		name string
		d    time.Duration
	}
	ranked := make([]nameSelf, 0, len(byName))
	for n, d := range byName {
		ranked = append(ranked, nameSelf{n, d})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].d != ranked[j].d {
			return ranked[i].d > ranked[j].d
		}
		return ranked[i].name < ranked[j].name
	})
	if len(ranked) > k {
		ranked = ranked[:k]
	}
	out := make([]string, len(ranked))
	for i, r := range ranked {
		out[i] = r.name + "=" + strconv.FormatFloat(float64(r.d.Nanoseconds())/1e6, 'f', 3, 64) + "ms"
	}
	return out
}

// TraceSummary is one row of the flight recorder listing
// (GET /v2/debug/traces).
type TraceSummary struct {
	ID         string  `json:"id"`
	Route      string  `json:"route"`
	Method     string  `json:"method"`
	Status     int     `json:"status"`
	Start      string  `json:"start"` // RFC3339Nano
	DurationMs float64 `json:"duration_ms"`
	Spans      int     `json:"spans"`
	Reason     string  `json:"reason"` // "error" | "slow" | "sampled"
	// Remote is the X-Trace-Parent this trace was rooted under, empty for
	// a fresh root. A follower-proxied request leaves the primary's trace
	// pointing at the follower's hop span.
	Remote string `json:"remote,omitempty"`
}

// TraceList is the body of GET /v2/debug/traces.
type TraceList struct {
	Traces []TraceSummary `json:"traces"`
}

// SpanNode is one span in the rendered tree of GET /v2/debug/traces/{id}.
// Offsets and durations are microseconds: fine enough for a µs-scale
// cached lookup, and integers keep the JSON stable.
type SpanNode struct {
	Name       string     `json:"name"`
	StartUs    int64      `json:"start_us"` // offset from trace start
	DurationUs int64      `json:"duration_us"`
	SelfUs     int64      `json:"self_us"` // duration minus direct children
	Attrs      []Attr     `json:"attrs,omitempty"`
	Children   []SpanNode `json:"children,omitempty"`
}

// TraceDetail is the body of GET /v2/debug/traces/{id}: the summary plus
// the full span tree.
type TraceDetail struct {
	TraceSummary
	DroppedSpans int      `json:"dropped_spans,omitempty"`
	Root         SpanNode `json:"root"`
}

func (t *Trace) summaryLocked() TraceSummary {
	return TraceSummary{
		ID:         t.id,
		Route:      t.route,
		Method:     t.method,
		Status:     t.status,
		Start:      t.start.Format(time.RFC3339Nano),
		DurationMs: float64(t.dur.Nanoseconds()) / 1e6,
		Spans:      len(t.spans),
		Reason:     t.reason,
		Remote:     t.remote,
	}
}

// Summary renders the trace's listing row.
func (t *Trace) Summary() TraceSummary {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.summaryLocked()
}

// Detail renders the trace's full span tree.
func (t *Trace) Detail() TraceDetail {
	t.mu.Lock()
	defer t.mu.Unlock()
	d := TraceDetail{TraceSummary: t.summaryLocked(), DroppedSpans: t.dropped}
	if len(t.spans) > 0 {
		d.Root = t.buildNodeLocked(0)
	}
	return d
}

func (t *Trace) buildNodeLocked(i int) SpanNode {
	sp := t.spans[i]
	n := SpanNode{
		Name:       sp.name,
		StartUs:    sp.start.Sub(t.start).Microseconds(),
		DurationUs: sp.dur.Microseconds(),
		Attrs:      sp.attrs,
	}
	var childSum time.Duration
	for j := i + 1; j < len(t.spans); j++ {
		if t.spans[j].parent == i {
			n.Children = append(n.Children, t.buildNodeLocked(j))
			childSum += t.spans[j].dur
		}
	}
	self := sp.dur - childSum
	if self < 0 {
		self = 0
	}
	n.SelfUs = self.Microseconds()
	return n
}

// TraceOptions configures a Tracer.
type TraceOptions struct {
	// Buffer is the flight recorder's capacity in retained traces; the
	// ring evicts oldest-first. Zero means DefaultTraceBuffer.
	Buffer int
	// Sample is the probability an unremarkable trace (fast, non-error)
	// is retained, 0..1. Error traces and traces at least Slow are always
	// retained — that is the tail-based part — except guard rejections
	// (401/429), which an unauthenticated client can mint for free and
	// which therefore only qualify through the slow or sampled criteria.
	// Sampling is deterministic: every round(1/Sample)-th unremarkable
	// trace is kept.
	Sample float64
	// Slow is the duration at or above which a trace is always retained.
	// Zero disables the slow criterion.
	Slow time.Duration
	// MaxSpans caps one trace's recorded spans; zero means the default.
	MaxSpans int
}

// Tracer roots per-request traces and retains a tail-sampled subset in a
// bounded ring buffer — the flight recorder behind /v2/debug/traces.
type Tracer struct {
	capacity int
	slow     time.Duration
	every    uint64 // keep 1 in `every` unremarkable traces; 0 keeps none
	maxSpans int
	seq      atomic.Uint64

	mu   sync.Mutex
	ring []*Trace
	next int // overwrite cursor once the ring is full

	sampled  *Counter
	retained *Counter
	dropped  *Counter
}

// NewTracer builds a tracer and, when r is non-nil, registers its health
// counters: npn_trace_sampled_total (traces finished and offered to the
// recorder), npn_trace_retained_total (kept) and npn_trace_dropped_total
// (discarded by sampling).
func NewTracer(r *Registry, o TraceOptions) *Tracer {
	t := &Tracer{capacity: o.Buffer, slow: o.Slow, maxSpans: o.MaxSpans}
	if t.capacity <= 0 {
		t.capacity = DefaultTraceBuffer
	}
	if t.maxSpans <= 0 {
		t.maxSpans = defaultMaxSpans
	}
	switch {
	case o.Sample >= 1:
		t.every = 1
	case o.Sample > 0:
		t.every = uint64(1/o.Sample + 0.5)
	}
	if r != nil {
		t.sampled = r.Counter("npn_trace_sampled_total",
			"Traces finished and offered to the flight recorder.")
		t.retained = r.Counter("npn_trace_retained_total",
			"Traces the flight recorder kept (error, slow, or sampled).")
		t.dropped = r.Counter("npn_trace_dropped_total",
			"Traces discarded by tail sampling.")
	}
	return t
}

// StartTrace roots a new trace: the returned context carries the root
// span as the active one, so every StartSpan below nests under it. id is
// the request's X-Request-Id; parentHeader is the raw X-Trace-Parent (""
// or garbage degrades to a fresh root). Safe on a nil tracer, returning
// ctx unchanged and a nil trace.
func (t *Tracer) StartTrace(ctx context.Context, route, method, id, parentHeader string) (context.Context, *Trace) {
	if t == nil {
		return ctx, nil
	}
	tr := &Trace{
		tracer: t,
		id:     id,
		route:  route,
		method: method,
		remote: SanitizeRequestID(parentHeader),
		start:  time.Now(),
	}
	root := &Span{tr: tr, id: 0, parent: -1, name: route, start: tr.start}
	tr.spans = []*Span{root}
	return context.WithValue(ctx, activeSpanKey, root), tr
}

// Finish completes a trace and applies the tail-sampling decision:
// retain on error status (>= 400), on duration at or past the slow
// threshold, or when the deterministic sampler picks it; drop otherwise.
// Guard rejections — 401 unauthorized and 429 rate_limited — are not
// errors for retention purposes: they cost an attacker nothing, so 256
// cheap probes must not flush the ring of the slow and failing traces
// an operator actually needs. They still qualify as slow or sampled.
// Safe on a nil tracer or nil trace.
func (t *Tracer) Finish(tr *Trace, status int, d time.Duration) {
	if t == nil || tr == nil {
		return
	}
	tr.mu.Lock()
	root := tr.spans[0]
	if !root.ended {
		root.ended = true
		root.dur = d
	}
	tr.status = status
	tr.dur = d

	reason := ""
	switch {
	case status >= 400 && status != 401 && status != 429:
		reason = "error"
	case t.slow > 0 && d >= t.slow:
		reason = "slow"
	case t.every == 1:
		reason = "sampled"
	case t.every > 1 && t.seq.Add(1)%t.every == 0:
		reason = "sampled"
	}
	tr.reason = reason
	tr.mu.Unlock()

	if t.sampled != nil {
		t.sampled.Inc()
	}
	if reason == "" {
		if t.dropped != nil {
			t.dropped.Inc()
		}
		return
	}
	if t.retained != nil {
		t.retained.Inc()
	}
	t.mu.Lock()
	if len(t.ring) < t.capacity {
		t.ring = append(t.ring, tr)
	} else {
		t.ring[t.next] = tr
		t.next = (t.next + 1) % t.capacity
	}
	t.mu.Unlock()
}

// snapshot returns the retained traces newest-first.
func (t *Tracer) snapshot() []*Trace {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := len(t.ring)
	out := make([]*Trace, 0, n)
	start := 0
	if n == t.capacity {
		start = t.next // oldest slot once the ring has wrapped
	}
	for i := n - 1; i >= 0; i-- {
		out = append(out, t.ring[(start+i)%n])
	}
	return out
}

// List renders the retained traces newest-first, filtered to traces at
// least minMs milliseconds long and (when route != "") to one route
// pattern. The Traces slice is always non-nil so the JSON is stable.
func (t *Tracer) List(minMs float64, route string) TraceList {
	out := TraceList{Traces: []TraceSummary{}}
	if t == nil {
		return out
	}
	for _, tr := range t.snapshot() {
		s := tr.Summary()
		if minMs > 0 && s.DurationMs < minMs {
			continue
		}
		if route != "" && s.Route != route {
			continue
		}
		out.Traces = append(out.Traces, s)
	}
	return out
}

// Get returns the full span tree of the retained trace with the given
// request ID. When the same ID was retained more than once the newest
// wins.
func (t *Tracer) Get(id string) (TraceDetail, bool) {
	if t == nil {
		return TraceDetail{}, false
	}
	for _, tr := range t.snapshot() {
		if tr.ID() == id {
			return tr.Detail(), true
		}
	}
	return TraceDetail{}, false
}
