package obs

import "runtime"

// RegisterRuntime exports the Go runtime's own health signals —
// goroutine count, heap size, GC totals — alongside the serving metrics,
// so one scrape answers both "is the store slow" and "is the process
// sick".
func RegisterRuntime(r *Registry) {
	fams := []FuncFamily{
		{Name: "npn_go_goroutines", Help: "Live goroutines.", Kind: KindGauge},
		{Name: "npn_go_heap_alloc_bytes", Help: "Heap bytes allocated and in use.", Kind: KindGauge},
		{Name: "npn_go_heap_objects", Help: "Live heap objects.", Kind: KindGauge},
		{Name: "npn_go_gc_total", Help: "Completed GC cycles.", Kind: KindCounter},
		{Name: "npn_go_gc_pause_seconds_total", Help: "Cumulative GC stop-the-world pause time.", Kind: KindCounter},
		{Name: "npn_go_alloc_bytes_total", Help: "Cumulative bytes allocated.", Kind: KindCounter},
	}
	r.RegisterFunc(fams, func(emit func(int, []string, float64)) {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		emit(0, nil, float64(runtime.NumGoroutine()))
		emit(1, nil, float64(ms.HeapAlloc))
		emit(2, nil, float64(ms.HeapObjects))
		emit(3, nil, float64(ms.NumGC))
		emit(4, nil, float64(ms.PauseTotalNs)/1e9)
		emit(5, nil, float64(ms.TotalAlloc))
	})
}
