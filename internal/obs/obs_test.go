package obs

import (
	"math"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "A counter.")
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	g := r.Gauge("test_gauge", "A gauge.")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %v, want 7", got)
	}
}

func TestVecChildrenAreStable(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_labeled_total", "Labeled.", "route", "method")
	v.With("/v2/classify", "POST").Inc()
	v.With("/v2/classify", "POST").Inc()
	v.With("/v2/insert", "POST").Inc()
	if got := v.With("/v2/classify", "POST").Value(); got != 2 {
		t.Fatalf("child = %v, want 2 (With must return the same series)", got)
	}
}

func TestRegistryPanicsOnDuplicateAndBadNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_dup_total", "x")
	for name, fn := range map[string]func(){
		"duplicate":  func() { r.Gauge("test_dup_total", "x") },
		"bad name":   func() { r.Counter("0bad", "x") },
		"le label":   func() { r.CounterVec("test_le_total", "x", "le") },
		"func histo": func() { r.RegisterFunc([]FuncFamily{{Name: "test_fh", Kind: KindHistogram}}, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// Satellite: empty histogram must render validly and estimate 0.
func TestHistogramEmpty(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_empty_seconds", "Empty.", DurationBuckets())
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
	var b strings.Builder
	if err := r.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`test_empty_seconds_bucket{le="+Inf"} 0`,
		"test_empty_seconds_sum 0",
		"test_empty_seconds_count 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if _, err := Parse(strings.NewReader(out)); err != nil {
		t.Fatalf("empty render does not parse: %v", err)
	}
}

// Satellite: a value exactly on a bucket boundary counts into that
// bucket (le is an upper *inclusive* bound).
func TestHistogramBucketBoundary(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_bound", "Boundary.", []float64{1, 2, 5})
	h.Observe(1) // exactly le=1
	h.Observe(2) // exactly le=2
	h.Observe(5) // exactly le=5
	h.Observe(7) // +Inf
	cum, count, sum := h.snapshot()
	if want := []uint64{1, 2, 3, 4}; !equalU64(cum, want) {
		t.Fatalf("cumulative = %v, want %v", cum, want)
	}
	if count != 4 || sum != 15 {
		t.Fatalf("count,sum = %d,%v want 4,15", count, sum)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_q", "Quantiles.", []float64{0.01, 0.1, 1})
	// 90 observations in (0, 0.01], 10 in (0.1, 1].
	for i := 0; i < 90; i++ {
		h.Observe(0.005)
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
	}
	if p50 := h.Quantile(0.50); p50 <= 0 || p50 > 0.01 {
		t.Errorf("p50 = %v, want within first bucket (0, 0.01]", p50)
	}
	if p99 := h.Quantile(0.99); p99 <= 0.1 || p99 > 1 {
		t.Errorf("p99 = %v, want within last bucket (0.1, 1]", p99)
	}
	// Everything beyond +Inf's finite floor estimates as the top bound.
	h2 := r.Histogram("test_q2", "Overflow.", []float64{1})
	h2.Observe(100)
	if got := h2.Quantile(0.5); got != 1 {
		t.Errorf("overflow quantile = %v, want 1 (highest finite bound)", got)
	}
}

// Satellite: concurrent Observe during Render must be race-free (run
// under -race) and every intermediate render must parse.
func TestHistogramConcurrentObserveRender(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_conc_seconds", "Concurrent.", DurationBuckets())
	c := r.Counter("test_conc_total", "Concurrent counter.")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(seed float64) {
			defer wg.Done()
			v := seed
			for {
				select {
				case <-stop:
					return
				default:
				}
				h.Observe(math.Mod(v, 1))
				c.Inc()
				v += 0.000123
			}
		}(float64(i))
	}
	for i := 0; i < 50; i++ {
		var b strings.Builder
		if err := r.Render(&b); err != nil {
			t.Fatal(err)
		}
		sc, err := Parse(strings.NewReader(b.String()))
		if err != nil {
			t.Fatalf("mid-flight render does not parse: %v", err)
		}
		// The exposition must always be internally consistent: cumulative
		// buckets monotone, +Inf equal to _count.
		assertHistogramConsistent(t, sc, "test_conc_seconds")
	}
	close(stop)
	wg.Wait()
}

func assertHistogramConsistent(t *testing.T, sc *Scrape, name string) {
	t.Helper()
	prev := -1.0
	var inf, count float64
	for _, s := range sc.Samples {
		switch s.Name {
		case name + "_bucket":
			if s.Value < prev {
				t.Fatalf("%s buckets not monotone: %v after %v", name, s.Value, prev)
			}
			prev = s.Value
			if s.Label("le") == "+Inf" {
				inf = s.Value
			}
		case name + "_count":
			count = s.Value
		}
	}
	if inf != count {
		t.Fatalf("%s: +Inf bucket %v != _count %v", name, inf, count)
	}
}

// Satellite: exposition lint via golden-file parse — a fixed registry
// renders byte-for-byte the committed golden file, and the golden file
// itself parses.
func TestRenderGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("golden_requests_total", "Requests served.").Add(42)
	g := r.Gauge("golden_depth", "Queue depth.")
	g.Set(3)
	v := r.CounterVec("golden_labeled_total", "By route.", "route", "method")
	v.With("/v2/classify", "POST").Add(7)
	v.With(`/quo"te`, "GET\n").Inc() // escaping
	h := r.Histogram("golden_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.0625) // exact in binary, so the rendered _sum is stable
	h.Observe(0.5)
	h.Observe(2)
	r.GaugeFunc("golden_func", "From a func.", func() float64 { return 1.5 })

	var b strings.Builder
	if err := r.Render(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	want, err := os.ReadFile("testdata/golden.prom")
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("render differs from golden file:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	sc, err := Parse(strings.NewReader(got))
	if err != nil {
		t.Fatalf("golden render does not parse: %v", err)
	}
	if val, ok := sc.Value("golden_labeled_total", "route=/v2/classify", "method=POST"); !ok || val != 7 {
		t.Errorf("parsed labeled counter = %v,%v want 7,true", val, ok)
	}
	if val, ok := sc.Value("golden_labeled_total", `route=/quo"te`, "method=GET\n"); !ok || val != 1 {
		t.Errorf("escaped labels did not round-trip: %v,%v", val, ok)
	}
	if sc.Types["golden_seconds"] != "histogram" {
		t.Errorf("TYPE golden_seconds = %q, want histogram", sc.Types["golden_seconds"])
	}
	if val, ok := sc.Value("golden_seconds_count"); !ok || val != 3 {
		t.Errorf("histogram count = %v,%v want 3,true", val, ok)
	}
}

func TestFuncCollectorMultiFamily(t *testing.T) {
	r := NewRegistry()
	r.RegisterFunc([]FuncFamily{
		{Name: "test_func_a", Help: "A.", Kind: KindGauge, Labels: []string{"arity"}},
		{Name: "test_func_b_total", Help: "B.", Kind: KindCounter},
	}, func(emit func(int, []string, float64)) {
		emit(0, []string{"4"}, 12)
		emit(0, []string{"6"}, 34)
		emit(1, nil, 9)
	})
	var b strings.Builder
	if err := r.Render(&b); err != nil {
		t.Fatal(err)
	}
	sc, err := Parse(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := sc.Value("test_func_a", "arity=6"); !ok || v != 34 {
		t.Errorf("func gauge = %v,%v want 34,true", v, ok)
	}
	if v, ok := sc.Value("test_func_b_total"); !ok || v != 9 {
		t.Errorf("func counter = %v,%v want 9,true", v, ok)
	}
	if sc.Types["test_func_a"] != "gauge" || sc.Types["test_func_b_total"] != "counter" {
		t.Errorf("TYPE lines wrong: %v", sc.Types)
	}
}

func TestScrapeQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_sq_seconds", "x", []float64{0.01, 0.1, 1})
	for i := 0; i < 99; i++ {
		h.Observe(0.005)
	}
	h.Observe(0.5)
	var b strings.Builder
	if err := r.Render(&b); err != nil {
		t.Fatal(err)
	}
	sc, err := Parse(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	direct := h.Quantile(0.99)
	scraped := sc.Quantile("test_sq_seconds", 0.99)
	if math.Abs(direct-scraped) > 1e-9 {
		t.Errorf("scrape quantile %v != direct quantile %v", scraped, direct)
	}
}

func TestQuantileFromBucketsEdges(t *testing.T) {
	buckets := []float64{1, 2}
	if got := QuantileFromBuckets(buckets, []uint64{0, 0, 0}, 0, 0.5); got != 0 {
		t.Errorf("empty = %v, want 0", got)
	}
	// All mass in first bucket: q=1 interpolates to the bucket's top.
	if got := QuantileFromBuckets(buckets, []uint64{4, 4, 4}, 4, 1); got != 1 {
		t.Errorf("q=1 = %v, want 1", got)
	}
	if got := QuantileFromBuckets(buckets, []uint64{4, 4, 4}, 4, 0); got != 0 {
		t.Errorf("q=0 = %v, want 0 (bottom of first bucket)", got)
	}
}

func TestObserveDuration(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_dur_seconds", "x", DurationBuckets())
	h.ObserveDuration(250 * time.Millisecond)
	if got := h.Sum(); math.Abs(got-0.25) > 1e-9 {
		t.Errorf("sum = %v, want 0.25", got)
	}
	if h.Count() != 1 {
		t.Errorf("count = %d, want 1", h.Count())
	}
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
