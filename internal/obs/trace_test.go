package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

// finish runs one trace through the tracer and returns it: route/method
// fixed, the caller picks id, status and duration.
func finishOne(t *Tracer, id string, status int, d time.Duration) *Trace {
	_, tr := t.StartTrace(context.Background(), "/v2/classify", "POST", id, "")
	t.Finish(tr, status, d)
	return tr
}

func TestStartSpanOutsideTraceIsNil(t *testing.T) {
	ctx := context.Background()
	octx, sp := StartSpan(ctx, "store.lookup")
	if sp != nil {
		t.Fatalf("StartSpan outside a trace: got span %v, want nil", sp)
	}
	if octx != ctx {
		t.Fatal("StartSpan outside a trace must return ctx unchanged")
	}
	// The whole nil-span surface must be no-ops, not panics.
	sp.End()
	sp.SetAttr("k", "v")
	sp.SetInt("n", 1)
	sp.SetBool("b", true)
	if got := TraceParent(ctx); got != "" {
		t.Fatalf("TraceParent outside a trace = %q, want \"\"", got)
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tracer *Tracer
	ctx, tr := tracer.StartTrace(context.Background(), "/v2/classify", "POST", "id", "")
	if tr != nil {
		t.Fatalf("nil tracer StartTrace: got trace %v, want nil", tr)
	}
	if _, sp := StartSpan(ctx, "x"); sp != nil {
		t.Fatal("nil tracer context must not carry an active span")
	}
	tracer.Finish(tr, 200, time.Millisecond)
	if got := tracer.List(0, ""); len(got.Traces) != 0 || got.Traces == nil {
		t.Fatalf("nil tracer List = %+v, want empty non-nil slice", got)
	}
	if _, ok := tracer.Get("id"); ok {
		t.Fatal("nil tracer Get must report not found")
	}
	if tr.ID() != "" {
		t.Fatal("nil trace ID must be empty")
	}
	if tr.TopSelf(3) != nil {
		t.Fatal("nil trace TopSelf must be nil")
	}
}

func TestSpanTreeDetail(t *testing.T) {
	tracer := NewTracer(nil, TraceOptions{Sample: 1})
	ctx, tr := tracer.StartTrace(context.Background(), "/v2/insert", "POST", "req-1", "")

	bctx, batch := StartSpan(ctx, "service.batch")
	batch.SetAttr("op", "insert")
	cctx, certify := StartSpan(bctx, "service.certify")
	certify.SetBool("new", true)
	_, fsync := StartSpan(cctx, "wal.fsync")
	fsync.End()
	certify.End()
	batch.End()

	tracer.Finish(tr, 200, 2*time.Millisecond)

	d, ok := tracer.Get("req-1")
	if !ok {
		t.Fatal("trace req-1 not retained at sample 1")
	}
	if d.Route != "/v2/insert" || d.Method != "POST" || d.Status != 200 {
		t.Fatalf("summary = %+v", d.TraceSummary)
	}
	if d.Reason != "sampled" {
		t.Fatalf("reason = %q, want sampled", d.Reason)
	}
	if d.Spans != 4 {
		t.Fatalf("spans = %d, want 4 (root + 3)", d.Spans)
	}
	if d.Root.Name != "/v2/insert" {
		t.Fatalf("root name = %q, want the route", d.Root.Name)
	}
	if len(d.Root.Children) != 1 || d.Root.Children[0].Name != "service.batch" {
		t.Fatalf("root children = %+v", d.Root.Children)
	}
	b := d.Root.Children[0]
	if len(b.Attrs) != 1 || b.Attrs[0] != (Attr{"op", "insert"}) {
		t.Fatalf("batch attrs = %+v", b.Attrs)
	}
	if len(b.Children) != 1 || b.Children[0].Name != "service.certify" {
		t.Fatalf("batch children = %+v", b.Children)
	}
	c := b.Children[0]
	if len(c.Children) != 1 || c.Children[0].Name != "wal.fsync" {
		t.Fatalf("certify children = %+v", c.Children)
	}
}

func TestTraceParentPropagation(t *testing.T) {
	tracer := NewTracer(nil, TraceOptions{Sample: 1})
	ctx, tr := tracer.StartTrace(context.Background(), "/v2/insert", "POST", "req-hop", "")
	if got := TraceParent(ctx); got != "req-hop/0" {
		t.Fatalf("root TraceParent = %q, want req-hop/0", got)
	}
	hctx, hop := StartSpan(ctx, "replica.primary_hop")
	parent := TraceParent(hctx)
	if parent != "req-hop/1" {
		t.Fatalf("hop TraceParent = %q, want req-hop/1", parent)
	}
	hop.End()
	tracer.Finish(tr, 200, time.Millisecond)

	// The primary side roots a fresh trace under the received header and
	// records it as the remote parent.
	_, ptr := tracer.StartTrace(context.Background(), "/v2/insert", "POST", "req-hop", parent)
	tracer.Finish(ptr, 200, time.Millisecond)
	d, ok := tracer.Get("req-hop")
	if !ok {
		t.Fatal("primary trace not retained")
	}
	if d.Remote != "req-hop/1" {
		t.Fatalf("remote = %q, want req-hop/1", d.Remote)
	}
}

func TestTailSamplingKeepsErrorsAndSlow(t *testing.T) {
	reg := NewRegistry()
	tracer := NewTracer(reg, TraceOptions{Sample: 0, Slow: 10 * time.Millisecond})

	finishOne(tracer, "fast-ok", 200, time.Millisecond)
	finishOne(tracer, "err", 500, time.Millisecond)
	finishOne(tracer, "slow", 200, 20*time.Millisecond)

	if _, ok := tracer.Get("fast-ok"); ok {
		t.Fatal("fast successful trace retained at sample 0")
	}
	d, ok := tracer.Get("err")
	if !ok || d.Reason != "error" {
		t.Fatalf("error trace: ok=%v reason=%q, want retained with reason error", ok, d.Reason)
	}
	d, ok = tracer.Get("slow")
	if !ok || d.Reason != "slow" {
		t.Fatalf("slow trace: ok=%v reason=%q, want retained with reason slow", ok, d.Reason)
	}
	if got := tracer.sampled.Value(); got != 3 {
		t.Fatalf("npn_trace_sampled_total = %v, want 3", got)
	}
	if got := tracer.retained.Value(); got != 2 {
		t.Fatalf("npn_trace_retained_total = %v, want 2", got)
	}
	if got := tracer.dropped.Value(); got != 1 {
		t.Fatalf("npn_trace_dropped_total = %v, want 1", got)
	}
}

// TestGuardRejectionsNotUnconditionallyRetained: 401/429 responses are
// mintable for free by an unauthenticated client, so they must not ride
// the always-keep-errors rule and flush the ring — they only qualify
// through the slow and sampled criteria like a successful request.
func TestGuardRejectionsNotUnconditionallyRetained(t *testing.T) {
	tracer := NewTracer(nil, TraceOptions{Sample: 0, Slow: 10 * time.Millisecond})

	finishOne(tracer, "probe-401", 401, time.Millisecond)
	finishOne(tracer, "probe-429", 429, time.Millisecond)
	if _, ok := tracer.Get("probe-401"); ok {
		t.Fatal("cheap 401 probe retained at sample 0")
	}
	if _, ok := tracer.Get("probe-429"); ok {
		t.Fatal("cheap 429 probe retained at sample 0")
	}

	// A genuinely slow rejection is still interesting — the slow
	// criterion keeps it.
	d, ok := finishAndGet(tracer, "slow-429", 429, 20*time.Millisecond)
	if !ok || d.Reason != "slow" {
		t.Fatalf("slow 429: ok=%v reason=%q, want retained as slow", ok, d.Reason)
	}

	// Other 4xx/5xx remain unconditional: the error rule is untouched for
	// statuses a probe cannot mint without doing real work.
	d, ok = finishAndGet(tracer, "real-err", 400, time.Millisecond)
	if !ok || d.Reason != "error" {
		t.Fatalf("400: ok=%v reason=%q, want retained as error", ok, d.Reason)
	}

	// And at sample 1 a rejection is kept, but as an unremarkable sample.
	all := NewTracer(nil, TraceOptions{Sample: 1})
	d, ok = finishAndGet(all, "sampled-401", 401, time.Millisecond)
	if !ok || d.Reason != "sampled" {
		t.Fatalf("401 at sample 1: ok=%v reason=%q, want retained as sampled", ok, d.Reason)
	}
}

// finishAndGet runs one trace through the tracer and fetches it back.
func finishAndGet(t *Tracer, id string, status int, d time.Duration) (TraceDetail, bool) {
	finishOne(t, id, status, d)
	return t.Get(id)
}

func TestDeterministicSampling(t *testing.T) {
	tracer := NewTracer(nil, TraceOptions{Sample: 0.5})
	if tracer.every != 2 {
		t.Fatalf("every = %d for sample 0.5, want 2", tracer.every)
	}
	for i := 0; i < 4; i++ {
		finishOne(tracer, "s", 200, time.Millisecond)
	}
	if got := len(tracer.List(0, "").Traces); got != 2 {
		t.Fatalf("retained %d of 4 at sample 0.5, want 2", got)
	}
}

func TestRingEvictsOldestNewestFirst(t *testing.T) {
	tracer := NewTracer(nil, TraceOptions{Sample: 1, Buffer: 2})
	finishOne(tracer, "a", 200, time.Millisecond)
	finishOne(tracer, "b", 200, time.Millisecond)
	finishOne(tracer, "c", 200, time.Millisecond)

	got := tracer.List(0, "")
	if len(got.Traces) != 2 {
		t.Fatalf("ring holds %d, want 2", len(got.Traces))
	}
	if got.Traces[0].ID != "c" || got.Traces[1].ID != "b" {
		t.Fatalf("listing = [%s %s], want newest-first [c b]",
			got.Traces[0].ID, got.Traces[1].ID)
	}
	if _, ok := tracer.Get("a"); ok {
		t.Fatal("oldest trace survived a full ring")
	}
}

func TestListFilters(t *testing.T) {
	tracer := NewTracer(nil, TraceOptions{Sample: 1})
	_, tr := tracer.StartTrace(context.Background(), "/v2/classify", "POST", "fast", "")
	tracer.Finish(tr, 200, time.Millisecond)
	_, tr = tracer.StartTrace(context.Background(), "/v2/insert", "POST", "slow", "")
	tracer.Finish(tr, 200, 50*time.Millisecond)

	if got := tracer.List(10, ""); len(got.Traces) != 1 || got.Traces[0].ID != "slow" {
		t.Fatalf("min_ms filter = %+v, want only the slow trace", got.Traces)
	}
	if got := tracer.List(0, "/v2/classify"); len(got.Traces) != 1 || got.Traces[0].ID != "fast" {
		t.Fatalf("route filter = %+v, want only /v2/classify", got.Traces)
	}
}

func TestMaxSpansCap(t *testing.T) {
	tracer := NewTracer(nil, TraceOptions{Sample: 1, MaxSpans: 3})
	ctx, tr := tracer.StartTrace(context.Background(), "/v2/classify", "POST", "cap", "")
	for i := 0; i < 5; i++ {
		_, sp := StartSpan(ctx, "service.certify")
		if i < 2 && sp == nil {
			t.Fatalf("span %d rejected below the cap", i)
		}
		if i >= 2 && sp != nil {
			t.Fatalf("span %d recorded past the cap", i)
		}
		sp.End()
	}
	tracer.Finish(tr, 200, time.Millisecond)
	d, ok := tracer.Get("cap")
	if !ok {
		t.Fatal("capped trace not retained")
	}
	if d.Spans != 3 {
		t.Fatalf("spans = %d, want 3 (the cap)", d.Spans)
	}
	if d.DroppedSpans != 3 {
		t.Fatalf("dropped_spans = %d, want 3", d.DroppedSpans)
	}
}

func TestTopSelf(t *testing.T) {
	tracer := NewTracer(nil, TraceOptions{Sample: 1})
	ctx, tr := tracer.StartTrace(context.Background(), "/v2/classify", "POST", "top", "")
	_, a := StartSpan(ctx, "store.lookup")
	a.End()
	tracer.Finish(tr, 200, 10*time.Millisecond)

	top := tr.TopSelf(3)
	if len(top) != 2 {
		t.Fatalf("TopSelf = %v, want 2 entries", top)
	}
	for _, s := range top {
		if !strings.Contains(s, "=") || !strings.HasSuffix(s, "ms") {
			t.Fatalf("TopSelf entry %q not name=N.NNNms shaped", s)
		}
	}
	if tr.TopSelf(1)[0] == "" {
		t.Fatal("TopSelf(1) empty")
	}
}

// TestHistogramObserveClampsGarbage pins the guard satellite: NaN and
// negative observations land in the first bucket with zero sum
// contribution instead of poisoning the +Inf bucket and the running sum.
func TestHistogramObserveClampsGarbage(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	nan := 0.0
	h.Observe(nan / nan) // NaN
	h.Observe(-5)
	h.Observe(1.5)

	cum, count, sum := h.snapshot()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if cum[0] != 2 {
		t.Fatalf("first bucket = %d, want the 2 clamped observations", cum[0])
	}
	if cum[len(cum)-1] != 3 {
		t.Fatalf("+Inf bucket = %d, want 3", cum[len(cum)-1])
	}
	if sum != 1.5 {
		t.Fatalf("sum = %v, want 1.5 (clamped values contribute nothing)", sum)
	}
	if q := h.Quantile(0.99); q != q {
		t.Fatal("quantile is NaN after garbage observations")
	}
}
