package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// RequestIDHeader is the header a request ID arrives in and is echoed on.
// A caller-supplied ID is honored after sanitization (control and
// non-printable bytes stripped, truncated to MaxRequestIDLen); absent or
// entirely unprintable, the middleware mints a fresh random ID. Either
// way every response carries the header, so a client can quote the ID
// when reporting a failure and the slow-request log line is greppable by
// it.
const RequestIDHeader = "X-Request-Id"

// MaxRequestIDLen bounds accepted caller-supplied request IDs; longer
// values are truncated rather than rejected (an ID is a correlation aid,
// not a protocol field).
const MaxRequestIDLen = 64

// SanitizeRequestID makes a caller-supplied request ID safe to echo and
// log: bytes outside printable ASCII (control characters, DEL, anything
// non-ASCII) are stripped and the result is truncated to MaxRequestIDLen.
// Untrusted header bytes reach the slow-request slog line and the
// response header only through this filter. Returns "" when nothing safe
// remains.
func SanitizeRequestID(id string) string {
	clean := true
	for i := 0; i < len(id); i++ {
		if id[i] < 0x20 || id[i] > 0x7e {
			clean = false
			break
		}
	}
	if clean {
		if len(id) > MaxRequestIDLen {
			return id[:MaxRequestIDLen]
		}
		return id
	}
	b := make([]byte, 0, MaxRequestIDLen)
	for i := 0; i < len(id) && len(b) < MaxRequestIDLen; i++ {
		if c := id[i]; c >= 0x20 && c <= 0x7e {
			b = append(b, c)
		}
	}
	return string(b)
}

type ctxKey int

const requestIDKey ctxKey = 0

// RequestIDFromContext returns the request ID the HTTP middleware stamped
// on the request's context, or "" outside an instrumented request.
func RequestIDFromContext(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// ContextWithRequestID returns ctx carrying the given request ID; tests
// and non-HTTP entry points use it to exercise ID propagation.
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey, id)
}

// newRequestID mints a 16-hex-digit random ID.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing means the process is in serious trouble; a
		// constant ID still keeps responses well-formed.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// HTTPOptions configures HTTPMetrics.
type HTTPOptions struct {
	// SlowRequest is the latency threshold above which a structured
	// slow-request log line is emitted. Zero disables slow logging.
	SlowRequest time.Duration
	// Logger receives slow-request lines; nil means slog.Default.
	Logger *slog.Logger
	// Tracer, when non-nil, roots a span timeline per request under the
	// request ID (honoring an X-Trace-Parent from an upstream hop) and
	// hands finished traces to its flight recorder. Nil keeps tracing
	// entirely off: StartSpan below the handler sees no active span and
	// returns nil spans.
	Tracer *Tracer
}

// HTTPMetrics is the per-request instrumentation middleware: it stamps
// request IDs, counts requests by route × method × status class, records
// latency histograms with the same labels, tracks in-flight requests and
// logs slow requests. Its Wrap method structurally matches the Router
// middleware shape of internal/api without obs importing it.
type HTTPMetrics struct {
	opts     HTTPOptions
	requests *CounterVec
	latency  *HistogramVec
	inflight *Gauge
	slow     *CounterVec
}

// NewHTTPMetrics registers the HTTP metric families on r and returns the
// middleware.
func NewHTTPMetrics(r *Registry, opts HTTPOptions) *HTTPMetrics {
	if opts.Logger == nil {
		opts.Logger = slog.Default()
	}
	return &HTTPMetrics{
		opts: opts,
		requests: r.CounterVec("npn_http_requests_total",
			"HTTP requests served, by route, method and status class.",
			"route", "method", "code"),
		latency: r.HistogramVec("npn_http_request_duration_seconds",
			"HTTP request latency, by route, method and status class.",
			DurationBuckets(), "route", "method", "code"),
		inflight: r.Gauge("npn_http_inflight_requests",
			"HTTP requests currently being served."),
		slow: r.CounterVec("npn_http_slow_requests_total",
			"HTTP requests slower than the slow-request threshold, by route.",
			"route"),
	}
}

// Wrap instruments one route's handler. The signature matches
// api.Middleware structurally, so a Router can take the method value
// directly: rt.Use(m.Wrap).
func (m *HTTPMetrics) Wrap(route string, next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := SanitizeRequestID(r.Header.Get(RequestIDHeader))
		if id == "" {
			id = newRequestID()
		}
		w.Header().Set(RequestIDHeader, id)
		r = r.WithContext(ContextWithRequestID(r.Context(), id))

		var tr *Trace
		if m.opts.Tracer != nil {
			tctx, t := m.opts.Tracer.StartTrace(r.Context(), route, r.Method, id,
				r.Header.Get(TraceParentHeader))
			tr = t
			r = r.WithContext(tctx)
		}

		sr := &statusRecorder{ResponseWriter: w}
		m.inflight.Add(1)
		start := time.Now()
		// The accounting runs in a defer so a panicking handler cannot
		// leak the in-flight gauge or drop the request from the counters:
		// the panic propagates to net/http (which tears the connection
		// down) after the request is recorded as a 5xx.
		panicked := true
		defer func() {
			d := time.Since(start)
			m.inflight.Add(-1)
			status := sr.code()
			if panicked {
				status = http.StatusInternalServerError
			}
			code := statusClass(status)
			m.requests.With(route, r.Method, code).Inc()
			m.latency.With(route, r.Method, code).ObserveDuration(d)
			m.opts.Tracer.Finish(tr, status, d)
			if m.opts.SlowRequest > 0 && d >= m.opts.SlowRequest {
				m.slow.With(route).Inc()
				args := []any{
					"request_id", id,
					"route", route,
					"method", r.Method,
					"status", status,
					"duration_ms", float64(d.Nanoseconds()) / 1e6,
					"threshold_ms", float64(m.opts.SlowRequest.Nanoseconds()) / 1e6,
				}
				// With tracing on, name the stages the time actually went to.
				if top := tr.TopSelf(3); len(top) > 0 {
					args = append(args, "top_spans", strings.Join(top, ","))
				}
				m.opts.Logger.Warn("slow request", args...)
			}
		}()
		next(sr, r)
		panicked = false
	}
}

// statusClass folds a status code into its Prometheus-friendly class
// label ("2xx", "4xx", ...): full codes would explode series cardinality
// without adding alerting value.
func statusClass(code int) string {
	if code < 100 || code > 599 {
		return "other"
	}
	return strconv.Itoa(code/100) + "xx"
}

// statusRecorder captures the status code a handler writes. It preserves
// http.Flusher — the NDJSON stream endpoint flushes between chunks — and
// exposes Unwrap for http.ResponseController users.
type statusRecorder struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (s *statusRecorder) WriteHeader(code int) {
	if !s.wrote {
		s.status, s.wrote = code, true
	}
	s.ResponseWriter.WriteHeader(code)
}

func (s *statusRecorder) Write(b []byte) (int, error) {
	if !s.wrote {
		s.status, s.wrote = http.StatusOK, true
	}
	return s.ResponseWriter.Write(b)
}

func (s *statusRecorder) Flush() {
	if f, ok := s.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (s *statusRecorder) Unwrap() http.ResponseWriter { return s.ResponseWriter }

// code returns the recorded status, defaulting to 200 for handlers that
// never explicitly wrote one.
func (s *statusRecorder) code() int {
	if !s.wrote {
		return http.StatusOK
	}
	return s.status
}

// Handler returns the /metrics endpoint for a registry: the Prometheus
// text exposition of every registered family.
func Handler(r *Registry) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.Render(w)
	}
}
