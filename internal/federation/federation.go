// Package federation fronts one classification service per arity: a
// registry of service.Service instances for n = MinVars..MaxVars, each
// backed by its own sharded store and constructed lazily on the first
// function of that arity. A mixed-arity batch is routed per function to
// the right arity's worker pool — arity groups run concurrently, each
// group fanned out by its own service — and results are scattered back
// into input order, so one server handles every federated arity behind a
// single API.
//
// The federated HTTP surface in http.go infers each function's arity from
// its hex truth-table length, which is why MinVars must be at least 2:
// below that, distinct arities share the one-digit encoding and the wire
// form would be ambiguous.
//
// With Options.Data set the federation is durable: each arity keeps a WAL
// directory (snapshot + log segments, internal/wal) under
// <Data>/n<arity>/, its store is rebuilt from that directory on first use
// (store.Recover) and journals every certified new-class insert from then
// on. CompactAll folds every arity's sealed segments into its snapshot —
// on demand (the POST /v1/compact admin endpoint) or periodically
// (StartAutoCompact) — and the per-arity stats gain the log's shape:
// segments, bytes, fsync lag.
package federation

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/tt"
	"repro/internal/wal"
)

// MinFederatedArity is the smallest MinVars New accepts; hex truth-table
// lengths are unique per arity only from 2 variables up.
const MinFederatedArity = 2

// Options configures every per-arity service in a Registry.
type Options struct {
	// Store configures each arity's backing store (shards, MSV config,
	// profile cache).
	Store store.Options
	// Service configures each arity's pipeline (workers, LRU capacity).
	Service service.Options
	// Data, when non-empty, makes the federation durable: each arity's
	// store recovers from and journals to the WAL directory
	// <Data>/n<arity>/. Empty keeps stores memory-only.
	Data string
	// WAL configures each arity's log writer — segment rotation threshold
	// and group-fsync interval. Meta is overwritten per store with its MSV
	// configuration fingerprint. Ignored when Data is empty.
	WAL wal.Options
}

// ErrNotDurable is returned by durability operations on a registry built
// without a data directory.
var ErrNotDurable = errors.New("federation: durability disabled (no data directory)")

// Registry is a federated classification front: one lazily-constructed
// service per arity in [MinVars, MaxVars]. All methods are safe for
// concurrent use.
type Registry struct {
	lo, hi int
	opts   Options

	mu      sync.RWMutex
	svcs    []*service.Service // index n-lo; nil until first use
	writers []*wal.Writer      // index n-lo; non-nil iff durable and constructed

	// obs holds the push instruments RegisterMetrics installed; services
	// and writers constructed afterwards observe through them.
	obs           *obsHooks
	obsRegistered bool

	compactMu sync.Mutex // serializes CompactAll passes

	// metaCache memoizes immutable segment header meta words for the
	// replication manifest (replication.go).
	metaMu    sync.Mutex
	metaCache map[metaKey]uint64
}

// metaKey identifies one segment of one arity in the meta cache.
type metaKey struct {
	arity int
	seq   uint64
}

// New returns a registry federating arities lo..hi inclusive.
func New(lo, hi int, o Options) (*Registry, error) {
	if lo < MinFederatedArity || hi > tt.MaxVars || lo > hi {
		return nil, fmt.Errorf("federation: arity range %d..%d outside %d..%d",
			lo, hi, MinFederatedArity, tt.MaxVars)
	}
	return &Registry{
		lo: lo, hi: hi, opts: o,
		svcs:      make([]*service.Service, hi-lo+1),
		writers:   make([]*wal.Writer, hi-lo+1),
		metaCache: make(map[metaKey]uint64),
	}, nil
}

// Durable reports whether the registry persists classes to WAL
// directories.
func (r *Registry) Durable() bool { return r.opts.Data != "" }

// ArityDir returns arity n's WAL directory under the data directory.
func (r *Registry) ArityDir(n int) string {
	return filepath.Join(r.opts.Data, fmt.Sprintf("n%d", n))
}

// MinVars returns the smallest federated arity.
func (r *Registry) MinVars() int { return r.lo }

// MaxVars returns the largest federated arity.
func (r *Registry) MaxVars() int { return r.hi }

// Service returns arity n's service, constructing its store on first use.
func (r *Registry) Service(n int) (*service.Service, error) {
	if n < r.lo || n > r.hi {
		return nil, fmt.Errorf("federation: arity %d outside federated range %d..%d", n, r.lo, r.hi)
	}
	r.mu.RLock()
	svc := r.svcs[n-r.lo]
	r.mu.RUnlock()
	if svc != nil {
		return svc, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.svcs[n-r.lo] == nil {
		svcOpts, walOpts := r.opts.Service, r.opts.WAL
		if ob, of := r.hooksFor(n); ob != nil {
			svcOpts.ObserveBatch, walOpts.ObserveFsync = ob, of
		}
		var st *store.Store
		if r.Durable() {
			recovered, w, err := store.Recover(r.ArityDir(n), n, r.opts.Store, walOpts)
			if err != nil {
				return nil, fmt.Errorf("federation: recover arity %d: %w", n, err)
			}
			st = recovered
			r.writers[n-r.lo] = w
		} else {
			st = store.New(n, r.opts.Store)
		}
		r.svcs[n-r.lo] = service.New(st, svcOpts)
	}
	return r.svcs[n-r.lo], nil
}

// writer returns arity n's log writer, nil when not durable or not yet
// constructed.
func (r *Registry) writer(n int) *wal.Writer {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if n < r.lo || n > r.hi {
		return nil
	}
	return r.writers[n-r.lo]
}

// Close flushes and closes every constructed arity's log writer. A
// durable registry must not serve inserts after Close; Close on a
// memory-only registry is a no-op. The first error is returned, but every
// writer is closed regardless.
func (r *Registry) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var first error
	for _, w := range r.writers {
		if w == nil {
			continue
		}
		if err := w.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// CompactResult is one arity's compaction outcome.
type CompactResult struct {
	Arity int `json:"arity"`
	wal.CompactStats
}

// CompactAll folds every active arity's sealed log segments (plus its
// previous snapshot) into a fresh snapshot and deletes the folded
// segments — the federation-wide persistence compaction. Passes are
// serialized; concurrent inserts proceed against the active segments. The
// slice holds one entry per arity compacted before any error.
func (r *Registry) CompactAll() ([]CompactResult, error) {
	if !r.Durable() {
		return nil, ErrNotDurable
	}
	r.compactMu.Lock()
	defer r.compactMu.Unlock()
	out := []CompactResult{}
	for _, n := range r.Active() {
		w := r.writer(n)
		if w == nil {
			continue
		}
		c := &wal.Compactor{Dir: r.ArityDir(n), N: n, W: w}
		st, err := c.Compact()
		if err != nil {
			return out, fmt.Errorf("federation: compact arity %d: %w", n, err)
		}
		out = append(out, CompactResult{Arity: n, CompactStats: st})
	}
	return out, nil
}

// StartAutoCompact runs CompactAll every interval on a background
// goroutine until the returned stop function is called (the goroutine's
// only exit). Pass errors are delivered to onErr (may be nil) and do not
// stop the loop.
func (r *Registry) StartAutoCompact(every time.Duration, onErr func(error)) (stop func()) {
	quit := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-quit:
				return
			case <-t.C:
				if _, err := r.CompactAll(); err != nil && onErr != nil {
					onErr(err)
				}
			}
		}
	}()
	return func() {
		close(quit)
		<-done
	}
}

// InflightBatches sums the batches currently executing across every
// active arity's worker pool — the live depth the load shedder
// (internal/auth) compares against its admission limit. A handful of
// atomic loads, cheap enough for every request.
func (r *Registry) InflightBatches() int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var total int64
	for _, svc := range r.svcs {
		if svc != nil {
			total += svc.InflightBatches()
		}
	}
	return total
}

// Active returns the arities whose services have been constructed, in
// increasing order. The slice is always non-nil so it encodes as a JSON
// array even when empty.
func (r *Registry) Active() []int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]int, 0, len(r.svcs))
	for i, svc := range r.svcs {
		if svc != nil {
			out = append(out, r.lo+i)
		}
	}
	return out
}

// group is one arity's slice of a mixed batch: the functions and their
// positions in the input.
type group struct {
	svc *service.Service
	fs  []*tt.TT
	idx []int
}

// route partitions a mixed-arity batch by arity, constructing each needed
// service, and returns the groups in increasing arity order.
func (r *Registry) route(fs []*tt.TT) ([]group, error) {
	byArity := make(map[int]*group)
	for i, f := range fs {
		n := f.NumVars()
		g, ok := byArity[n]
		if !ok {
			svc, err := r.Service(n)
			if err != nil {
				return nil, fmt.Errorf("functions[%d]: %w", i, err)
			}
			g = &group{svc: svc}
			byArity[n] = g
		}
		g.fs = append(g.fs, f)
		g.idx = append(g.idx, i)
	}
	arities := make([]int, 0, len(byArity))
	for n := range byArity {
		arities = append(arities, n)
	}
	sort.Ints(arities)
	out := make([]group, 0, len(arities))
	for _, n := range arities {
		out = append(out, *byArity[n])
	}
	return out, nil
}

// Classify looks up every function's class in its arity's service. The
// batch may mix arities freely; results keep input order. It fails as a
// whole if any function's arity is outside the federated range.
func (r *Registry) Classify(fs []*tt.TT) ([]service.Result, error) {
	return r.ClassifyCtx(context.Background(), fs)
}

// ClassifyCtx is Classify with the request context threaded through for
// tracing: the arity partition and group fan-out run under a
// federation.route span, and each arity group's pipeline spans nest
// beneath it.
func (r *Registry) ClassifyCtx(ctx context.Context, fs []*tt.TT) ([]service.Result, error) {
	out := make([]service.Result, len(fs))
	err := r.fanOut(ctx, fs, func(ctx context.Context, g group) {
		for j, res := range g.svc.ClassifyCtx(ctx, g.fs) {
			out[g.idx[j]] = res
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Insert adds every function's class if absent, routed by arity. Results
// keep input order.
func (r *Registry) Insert(fs []*tt.TT) ([]service.InsertResult, error) {
	return r.InsertCtx(context.Background(), fs)
}

// InsertCtx is Insert with the request context threaded through for
// tracing; see ClassifyCtx.
func (r *Registry) InsertCtx(ctx context.Context, fs []*tt.TT) ([]service.InsertResult, error) {
	out := make([]service.InsertResult, len(fs))
	err := r.fanOut(ctx, fs, func(ctx context.Context, g group) {
		for j, res := range g.svc.InsertCtx(ctx, g.fs) {
			out[g.idx[j]] = res
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// fanOut routes the batch and runs fn once per arity group, groups in
// parallel (each group's service fans its sub-batch across its own worker
// pool), all under one federation.route span.
func (r *Registry) fanOut(ctx context.Context, fs []*tt.TT, fn func(context.Context, group)) error {
	ctx, sp := obs.StartSpan(ctx, "federation.route")
	defer sp.End()
	groups, err := r.route(fs)
	if err != nil {
		return err
	}
	sp.SetInt("groups", int64(len(groups)))
	if len(groups) == 1 {
		fn(ctx, groups[0])
		return nil
	}
	var wg sync.WaitGroup
	for _, g := range groups {
		wg.Add(1)
		go func(g group) {
			defer wg.Done()
			fn(ctx, g)
		}(g)
	}
	wg.Wait()
	return nil
}

// Totals aggregates counters across every active arity.
type Totals struct {
	Classes         int   `json:"classes"`
	StoreCollisions int   `json:"store_collisions"`
	Lookups         int64 `json:"lookups"`
	Hits            int64 `json:"hits"`
	Misses          int64 `json:"misses"`
	CacheHits       int64 `json:"cache_hits"`
	Inserts         int64 `json:"inserts"`
	Created         int64 `json:"created"`
	Collisions      int64 `json:"insert_collisions"`
	ProfileHits     int64 `json:"profile_hits"`
	ProfileMisses   int64 `json:"profile_misses"`
	ProfileEntries  int64 `json:"profile_entries"`
	Deduped         int64 `json:"deduped_keys"`
	JournalErrors   int64 `json:"journal_errors"`
	WALSegments     int   `json:"wal_segments"`
	WALBytes        int64 `json:"wal_bytes"`
	InflightBatches int64 `json:"inflight_batches"`
}

// ArityStats is one arity's stats row: the service counters plus, on a
// durable registry, the arity's WAL shape.
type ArityStats struct {
	service.Stats
	// WAL is the arity's log shape (segments, bytes, fsync lag); nil on a
	// memory-only registry.
	WAL *wal.Stats `json:"wal,omitempty"`
}

// Stats is a point-in-time snapshot of the whole federation: the arity
// range, aggregate totals and the per-arity breakdown for every arity
// whose service has been constructed.
type Stats struct {
	MinVars       int          `json:"min_vars"`
	MaxVars       int          `json:"max_vars"`
	Durable       bool         `json:"durable"`
	ActiveArities []int        `json:"active_arities"`
	Totals        Totals       `json:"totals"`
	PerArity      []ArityStats `json:"per_arity"`
}

// Stats returns the aggregate and per-arity counters. The slice fields
// are always non-nil so they encode as JSON arrays even when empty.
func (r *Registry) Stats() Stats {
	st := Stats{
		MinVars:       r.lo,
		MaxVars:       r.hi,
		Durable:       r.Durable(),
		ActiveArities: []int{},
		PerArity:      []ArityStats{},
	}
	for _, n := range r.Active() {
		svc, _ := r.Service(n)
		s := svc.Stats()
		row := ArityStats{Stats: s}
		if w := r.writer(n); w != nil {
			ws := w.Stats()
			row.WAL = &ws
			st.Totals.WALSegments += ws.Segments
			st.Totals.WALBytes += ws.Bytes
		}
		st.ActiveArities = append(st.ActiveArities, n)
		st.PerArity = append(st.PerArity, row)
		st.Totals.Classes += s.Classes
		st.Totals.StoreCollisions += s.StoreCollisions
		st.Totals.Lookups += s.Lookups
		st.Totals.Hits += s.Hits
		st.Totals.Misses += s.Misses
		st.Totals.CacheHits += s.CacheHits
		st.Totals.Inserts += s.Inserts
		st.Totals.Created += s.Created
		st.Totals.Collisions += s.Collisions
		st.Totals.ProfileHits += s.ProfileHits
		st.Totals.ProfileMisses += s.ProfileMisses
		st.Totals.ProfileEntries += s.ProfileEntries
		st.Totals.Deduped += s.Deduped
		st.Totals.JournalErrors += s.JournalErrors
		st.Totals.InflightBatches += s.InflightBatches
	}
	return st
}
