// Package federation fronts one classification service per arity: a
// registry of service.Service instances for n = MinVars..MaxVars, each
// backed by its own sharded store and constructed lazily on the first
// function of that arity. A mixed-arity batch is routed per function to
// the right arity's worker pool — arity groups run concurrently, each
// group fanned out by its own service — and results are scattered back
// into input order, so one server handles every federated arity behind a
// single API.
//
// The federated HTTP surface in http.go infers each function's arity from
// its hex truth-table length, which is why MinVars must be at least 2:
// below that, distinct arities share the one-digit encoding and the wire
// form would be ambiguous.
package federation

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/tt"
)

// MinFederatedArity is the smallest MinVars New accepts; hex truth-table
// lengths are unique per arity only from 2 variables up.
const MinFederatedArity = 2

// Options configures every per-arity service in a Registry.
type Options struct {
	// Store configures each arity's backing store (shards, MSV config,
	// profile cache).
	Store store.Options
	// Service configures each arity's pipeline (workers, LRU capacity).
	Service service.Options
}

// Registry is a federated classification front: one lazily-constructed
// service per arity in [MinVars, MaxVars]. All methods are safe for
// concurrent use.
type Registry struct {
	lo, hi int
	opts   Options

	mu   sync.RWMutex
	svcs []*service.Service // index n-lo; nil until first use
}

// New returns a registry federating arities lo..hi inclusive.
func New(lo, hi int, o Options) (*Registry, error) {
	if lo < MinFederatedArity || hi > tt.MaxVars || lo > hi {
		return nil, fmt.Errorf("federation: arity range %d..%d outside %d..%d",
			lo, hi, MinFederatedArity, tt.MaxVars)
	}
	return &Registry{lo: lo, hi: hi, opts: o, svcs: make([]*service.Service, hi-lo+1)}, nil
}

// MinVars returns the smallest federated arity.
func (r *Registry) MinVars() int { return r.lo }

// MaxVars returns the largest federated arity.
func (r *Registry) MaxVars() int { return r.hi }

// Service returns arity n's service, constructing its store on first use.
func (r *Registry) Service(n int) (*service.Service, error) {
	if n < r.lo || n > r.hi {
		return nil, fmt.Errorf("federation: arity %d outside federated range %d..%d", n, r.lo, r.hi)
	}
	r.mu.RLock()
	svc := r.svcs[n-r.lo]
	r.mu.RUnlock()
	if svc != nil {
		return svc, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.svcs[n-r.lo] == nil {
		r.svcs[n-r.lo] = service.New(store.New(n, r.opts.Store), r.opts.Service)
	}
	return r.svcs[n-r.lo], nil
}

// Active returns the arities whose services have been constructed, in
// increasing order. The slice is always non-nil so it encodes as a JSON
// array even when empty.
func (r *Registry) Active() []int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]int, 0, len(r.svcs))
	for i, svc := range r.svcs {
		if svc != nil {
			out = append(out, r.lo+i)
		}
	}
	return out
}

// group is one arity's slice of a mixed batch: the functions and their
// positions in the input.
type group struct {
	svc *service.Service
	fs  []*tt.TT
	idx []int
}

// route partitions a mixed-arity batch by arity, constructing each needed
// service, and returns the groups in increasing arity order.
func (r *Registry) route(fs []*tt.TT) ([]group, error) {
	byArity := make(map[int]*group)
	for i, f := range fs {
		n := f.NumVars()
		g, ok := byArity[n]
		if !ok {
			svc, err := r.Service(n)
			if err != nil {
				return nil, fmt.Errorf("functions[%d]: %w", i, err)
			}
			g = &group{svc: svc}
			byArity[n] = g
		}
		g.fs = append(g.fs, f)
		g.idx = append(g.idx, i)
	}
	arities := make([]int, 0, len(byArity))
	for n := range byArity {
		arities = append(arities, n)
	}
	sort.Ints(arities)
	out := make([]group, 0, len(arities))
	for _, n := range arities {
		out = append(out, *byArity[n])
	}
	return out, nil
}

// Classify looks up every function's class in its arity's service. The
// batch may mix arities freely; results keep input order. It fails as a
// whole if any function's arity is outside the federated range.
func (r *Registry) Classify(fs []*tt.TT) ([]service.Result, error) {
	out := make([]service.Result, len(fs))
	err := r.fanOut(fs, func(g group) {
		for j, res := range g.svc.Classify(g.fs) {
			out[g.idx[j]] = res
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Insert adds every function's class if absent, routed by arity. Results
// keep input order.
func (r *Registry) Insert(fs []*tt.TT) ([]service.InsertResult, error) {
	out := make([]service.InsertResult, len(fs))
	err := r.fanOut(fs, func(g group) {
		for j, res := range g.svc.Insert(g.fs) {
			out[g.idx[j]] = res
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// fanOut routes the batch and runs fn once per arity group, groups in
// parallel (each group's service fans its sub-batch across its own worker
// pool).
func (r *Registry) fanOut(fs []*tt.TT, fn func(group)) error {
	groups, err := r.route(fs)
	if err != nil {
		return err
	}
	if len(groups) == 1 {
		fn(groups[0])
		return nil
	}
	var wg sync.WaitGroup
	for _, g := range groups {
		wg.Add(1)
		go func(g group) {
			defer wg.Done()
			fn(g)
		}(g)
	}
	wg.Wait()
	return nil
}

// Totals aggregates counters across every active arity.
type Totals struct {
	Classes         int   `json:"classes"`
	StoreCollisions int   `json:"store_collisions"`
	Lookups         int64 `json:"lookups"`
	Hits            int64 `json:"hits"`
	Misses          int64 `json:"misses"`
	CacheHits       int64 `json:"cache_hits"`
	Inserts         int64 `json:"inserts"`
	Created         int64 `json:"created"`
	Collisions      int64 `json:"insert_collisions"`
	ProfileHits     int64 `json:"profile_hits"`
	ProfileMisses   int64 `json:"profile_misses"`
	ProfileEntries  int64 `json:"profile_entries"`
}

// Stats is a point-in-time snapshot of the whole federation: the arity
// range, aggregate totals and the per-arity breakdown for every arity
// whose service has been constructed.
type Stats struct {
	MinVars       int             `json:"min_vars"`
	MaxVars       int             `json:"max_vars"`
	ActiveArities []int           `json:"active_arities"`
	Totals        Totals          `json:"totals"`
	PerArity      []service.Stats `json:"per_arity"`
}

// Stats returns the aggregate and per-arity counters. The slice fields
// are always non-nil so they encode as JSON arrays even when empty.
func (r *Registry) Stats() Stats {
	st := Stats{
		MinVars:       r.lo,
		MaxVars:       r.hi,
		ActiveArities: []int{},
		PerArity:      []service.Stats{},
	}
	for _, n := range r.Active() {
		svc, _ := r.Service(n)
		s := svc.Stats()
		st.ActiveArities = append(st.ActiveArities, n)
		st.PerArity = append(st.PerArity, s)
		st.Totals.Classes += s.Classes
		st.Totals.StoreCollisions += s.StoreCollisions
		st.Totals.Lookups += s.Lookups
		st.Totals.Hits += s.Hits
		st.Totals.Misses += s.Misses
		st.Totals.CacheHits += s.CacheHits
		st.Totals.Inserts += s.Inserts
		st.Totals.Created += s.Created
		st.Totals.Collisions += s.Collisions
		st.Totals.ProfileHits += s.ProfileHits
		st.Totals.ProfileMisses += s.ProfileMisses
		st.Totals.ProfileEntries += s.ProfileEntries
	}
	return st
}
