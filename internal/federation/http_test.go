package federation

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/npn"
	"repro/internal/service"
	"repro/internal/tt"
)

func newTestServer(t *testing.T, lo, hi int) *httptest.Server {
	t.Helper()
	reg, err := New(lo, hi, Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(reg))
	t.Cleanup(srv.Close)
	return srv
}

func postJSON(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

// TestHandlerMixedArityRoundTrip drives the federated handler end to end
// over HTTP: a mixed insert, a mixed classify of disguises with witness
// replay, and a per-arity stats read.
func TestHandlerMixedArityRoundTrip(t *testing.T) {
	srv := newTestServer(t, 4, 8)
	rng := rand.New(rand.NewSource(510))

	var base []*tt.TT
	var hexes []string
	for n := 4; n <= 8; n++ {
		f := tt.Random(n, rng)
		base = append(base, f)
		hexes = append(hexes, f.Hex())
	}
	body, _ := json.Marshal(service.ClassifyRequest{Functions: hexes})
	resp, raw := postJSON(t, srv.URL+"/v1/insert", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert status %d: %s", resp.StatusCode, raw)
	}

	queries := make([]string, len(base))
	queryTT := make([]*tt.TT, len(base))
	for i, f := range base {
		queryTT[i] = npn.RandomTransform(f.NumVars(), rng).Apply(f)
		queries[i] = queryTT[i].Hex()
	}
	body, _ = json.Marshal(service.ClassifyRequest{Functions: queries})
	resp, raw = postJSON(t, srv.URL+"/v1/classify", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("classify status %d: %s", resp.StatusCode, raw)
	}
	var cls service.ClassifyResponse
	if err := json.Unmarshal(raw, &cls); err != nil {
		t.Fatal(err)
	}
	for i, r := range cls.Results {
		n := base[i].NumVars()
		if !r.Hit {
			t.Fatalf("query %d (n=%d) missed", i, n)
		}
		tr, err := r.Witness.Transform()
		if err != nil {
			t.Fatal(err)
		}
		if !tr.Apply(tt.MustFromHex(n, r.Rep)).Equal(queryTT[i]) {
			t.Fatalf("query %d (n=%d): wire witness does not verify", i, n)
		}
	}

	stResp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer stResp.Body.Close()
	var st Stats
	if err := json.NewDecoder(stResp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if len(st.ActiveArities) != 5 || st.Totals.Hits != int64(len(base)) {
		t.Fatalf("stats %+v", st)
	}
}

// TestHandlerErrorPaths is the table of malformed requests the HTTP layer
// must reject: each case asserts the status code and that the body is the
// standard {"error": "..."} shape with a non-empty message.
func TestHandlerErrorPaths(t *testing.T) {
	srv := newTestServer(t, 4, 6)

	hugeBody := func() []byte {
		// One batch entry far past the body byte bound for MaxVars=6.
		return []byte(`{"functions":["` + strings.Repeat("f", int(service.MaxBodyBytes(6))+1024) + `"]}`)
	}

	cases := []struct {
		name       string
		path       string
		body       []byte
		wantStatus int
		wantSubstr string
	}{
		{
			name:       "oversized body",
			path:       "/v1/classify",
			body:       hugeBody(),
			wantStatus: http.StatusRequestEntityTooLarge,
			wantSubstr: "exceeds",
		},
		{
			name:       "malformed JSON",
			path:       "/v1/classify",
			body:       []byte(`{"functions": [`),
			wantStatus: http.StatusBadRequest,
			wantSubstr: "bad request body",
		},
		{
			name:       "unknown field",
			path:       "/v1/classify",
			body:       []byte(`{"funcs":["cafef00dcafef00d"]}`),
			wantStatus: http.StatusBadRequest,
			wantSubstr: "bad request body",
		},
		{
			name:       "empty batch",
			path:       "/v1/classify",
			body:       []byte(`{"functions":[]}`),
			wantStatus: http.StatusBadRequest,
			wantSubstr: "non-empty",
		},
		{
			name:       "empty batch on insert",
			path:       "/v1/insert",
			body:       []byte(`{"functions":[]}`),
			wantStatus: http.StatusBadRequest,
			wantSubstr: "non-empty",
		},
		{
			name:       "malformed witness hex",
			path:       "/v1/classify",
			body:       []byte(`{"functions":["zzzzzzzzzzzzzzzz"]}`),
			wantStatus: http.StatusBadRequest,
			wantSubstr: "functions[0]",
		},
		{
			name:       "arity below federated range",
			path:       "/v1/classify",
			body:       []byte(`{"functions":["e8"]}`), // 2 digits = n=3 < 4
			wantStatus: http.StatusBadRequest,
			wantSubstr: "no federated arity",
		},
		{
			name:       "arity above federated range",
			path:       "/v1/insert",
			body:       []byte(`{"functions":["` + strings.Repeat("a", 32) + `"]}`), // n=7 > 6
			wantStatus: http.StatusBadRequest,
			wantSubstr: "no federated arity",
		},
		{
			name:       "second function bad in mixed batch",
			path:       "/v1/classify",
			body:       []byte(`{"functions":["cafef00dcafef00d","123"]}`),
			wantStatus: http.StatusBadRequest,
			wantSubstr: "functions[1]",
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, srv.URL+tc.path, tc.body)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d (body %s)", resp.StatusCode, tc.wantStatus, body)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Fatalf("Content-Type %q, want application/json", ct)
			}
			var e service.ErrorJSON
			if err := json.Unmarshal(body, &e); err != nil {
				t.Fatalf("error body is not the standard shape: %v (%s)", err, body)
			}
			if e.Error == "" {
				t.Fatal("error message empty")
			}
			if !strings.Contains(e.Error, tc.wantSubstr) {
				t.Fatalf("error %q does not mention %q", e.Error, tc.wantSubstr)
			}
		})
	}
}

// TestHandlerHealthz reports the federated range and the lazily active set.
func TestHandlerHealthz(t *testing.T) {
	srv := newTestServer(t, 4, 10)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var h struct {
		Status  string `json:"status"`
		MinVars int    `json:"min_vars"`
		MaxVars int    `json:"max_vars"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.MinVars != 4 || h.MaxVars != 10 {
		t.Fatalf("healthz %+v", h)
	}
}

// TestHandlerCompact drives the admin compaction endpoint: 409 on a
// memory-only registry, and a folded-segment report on a durable one.
func TestHandlerCompact(t *testing.T) {
	srv := newTestServer(t, 4, 6)
	resp, raw := postJSON(t, srv.URL+"/v1/compact", nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("compact on memory-only registry: status %d (%s)", resp.StatusCode, raw)
	}
	var e service.ErrorJSON
	if err := json.Unmarshal(raw, &e); err != nil || e.Error == "" {
		t.Fatalf("compact error body %s", raw)
	}

	reg := durableRegistry(t, t.TempDir(), 4, 6)
	t.Cleanup(func() { reg.Close() })
	dsrv := httptest.NewServer(NewHandler(reg))
	t.Cleanup(dsrv.Close)

	rng := rand.New(rand.NewSource(62))
	var hexes []string
	for i := 0; i < 4; i++ {
		hexes = append(hexes, tt.Random(5, rng).Hex())
	}
	body, _ := json.Marshal(service.ClassifyRequest{Functions: hexes})
	if resp, raw := postJSON(t, dsrv.URL+"/v1/insert", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("insert status %d: %s", resp.StatusCode, raw)
	}
	resp, raw = postJSON(t, dsrv.URL+"/v1/compact", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compact status %d: %s", resp.StatusCode, raw)
	}
	var report struct {
		Arities []CompactResult `json:"arities"`
	}
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatal(err)
	}
	if len(report.Arities) != 1 || report.Arities[0].Arity != 5 || report.Arities[0].RecordsFolded != 4 {
		t.Fatalf("compact report %s", raw)
	}

	// The durable stats now show the log's shape.
	stResp, err := http.Get(dsrv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer stResp.Body.Close()
	var st Stats
	if err := json.NewDecoder(stResp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if !st.Durable || len(st.PerArity) != 1 || st.PerArity[0].WAL == nil {
		t.Fatalf("durable stats %+v", st)
	}
}
