// Prometheus export of the federation's counters (internal/obs). The
// registry keeps exactly one source of truth — the same atomic counters
// and Stats() snapshots /v1/stats and /v2/stats serve — and exposes them
// as pull collectors read at scrape time, so the JSON stats and the
// /metrics exposition can never disagree. Only latency and size
// distributions (batch size/duration, fsync duration), which no JSON
// counter carries, are push-updated histograms fed through the
// service.Options.ObserveBatch and wal.Options.ObserveFsync hooks.
package federation

import (
	"strconv"
	"time"

	"repro/internal/obs"
)

// obsHooks holds the push-side instruments installed into every
// lazily-constructed service and WAL writer.
type obsHooks struct {
	batchSize *obs.HistogramVec // op, arity
	batchDur  *obs.HistogramVec // op, arity
	fsyncDur  *obs.HistogramVec // arity
}

// Family indices of the pull collector, aligned with registryFams.
const (
	famSvcLookups = iota
	famSvcHits
	famSvcMisses
	famSvcCacheHits
	famSvcInserts
	famSvcCreated
	famSvcCollisions
	famSvcDeduped
	famSvcBatches
	famSvcInflight
	famSvcCacheEntries
	famStoreClasses
	famStoreCollisions
	famStoreChains
	famStoreChainMax
	famStoreShard
	famProfHits
	famProfMisses
	famProfEntries
	famJournalErrs
	famWALSegments
	famWALSealed
	famWALBytes
	famWALRecords
	famWALFsyncs
	famWALRotations
	famWALFsyncLag
	famFedActive
	famFedDurable
)

func registryFams() []obs.FuncFamily {
	arity := []string{"arity"}
	return []obs.FuncFamily{
		famSvcLookups:      {Name: "npn_service_lookups_total", Help: "Functions looked up, by arity.", Kind: obs.KindCounter, Labels: arity},
		famSvcHits:         {Name: "npn_service_hits_total", Help: "Lookups whose class was stored, by arity.", Kind: obs.KindCounter, Labels: arity},
		famSvcMisses:       {Name: "npn_service_misses_total", Help: "Lookups whose class was absent, by arity.", Kind: obs.KindCounter, Labels: arity},
		famSvcCacheHits:    {Name: "npn_service_cache_hits_total", Help: "Lookups answered by the function->result LRU cache, by arity.", Kind: obs.KindCounter, Labels: arity},
		famSvcInserts:      {Name: "npn_service_inserts_total", Help: "Functions submitted for insert, by arity.", Kind: obs.KindCounter, Labels: arity},
		famSvcCreated:      {Name: "npn_service_classes_created_total", Help: "Inserts that founded a new class, by arity.", Kind: obs.KindCounter, Labels: arity},
		famSvcCollisions:   {Name: "npn_service_insert_collisions_total", Help: "New classes landing on an occupied key (chained), by arity.", Kind: obs.KindCounter, Labels: arity},
		famSvcDeduped:      {Name: "npn_service_deduped_keys_total", Help: "Batch members answered by a duplicate in their own batch, by arity.", Kind: obs.KindCounter, Labels: arity},
		famSvcBatches:      {Name: "npn_service_batches_total", Help: "Batches processed, by arity.", Kind: obs.KindCounter, Labels: arity},
		famSvcInflight:     {Name: "npn_service_inflight_batches", Help: "Batches executing on the worker pool right now, by arity.", Kind: obs.KindGauge, Labels: arity},
		famSvcCacheEntries: {Name: "npn_service_cache_entries", Help: "Entries in the function->result LRU cache, by arity.", Kind: obs.KindGauge, Labels: arity},
		famStoreClasses:    {Name: "npn_store_classes", Help: "Classes stored, by arity.", Kind: obs.KindGauge, Labels: arity},
		famStoreCollisions: {Name: "npn_store_collisions", Help: "Representatives beyond the first of their key, by arity.", Kind: obs.KindGauge, Labels: arity},
		famStoreChains:     {Name: "npn_store_chains", Help: "Distinct collision chains (keys), by arity.", Kind: obs.KindGauge, Labels: arity},
		famStoreChainMax:   {Name: "npn_store_chain_max_length", Help: "Longest collision chain behind any one key, by arity.", Kind: obs.KindGauge, Labels: arity},
		famStoreShard:      {Name: "npn_store_shard_classes", Help: "Classes per lock shard, by arity and shard.", Kind: obs.KindGauge, Labels: []string{"arity", "shard"}},
		famProfHits:        {Name: "npn_store_profile_cache_hits_total", Help: "Lookups reusing a memoized representative profile, by arity.", Kind: obs.KindCounter, Labels: arity},
		famProfMisses:      {Name: "npn_store_profile_cache_misses_total", Help: "Lookups that built a representative profile, by arity.", Kind: obs.KindCounter, Labels: arity},
		famProfEntries:     {Name: "npn_store_profile_cache_entries", Help: "Memoized representative profiles, by arity.", Kind: obs.KindGauge, Labels: arity},
		famJournalErrs:     {Name: "npn_store_journal_errors_total", Help: "Inserts refused because the write-ahead journal failed, by arity.", Kind: obs.KindCounter, Labels: arity},
		famWALSegments:     {Name: "npn_wal_segments", Help: "Log segment files on disk, by arity.", Kind: obs.KindGauge, Labels: arity},
		famWALSealed:       {Name: "npn_wal_sealed_segments", Help: "Sealed (rotation-complete) log segments, by arity.", Kind: obs.KindGauge, Labels: arity},
		famWALBytes:        {Name: "npn_wal_bytes", Help: "Total log bytes on disk (plus buffered), by arity.", Kind: obs.KindGauge, Labels: arity},
		famWALRecords:      {Name: "npn_wal_records_total", Help: "Records appended since the writer opened, by arity.", Kind: obs.KindCounter, Labels: arity},
		famWALFsyncs:       {Name: "npn_wal_fsyncs_total", Help: "Fsyncs since the writer opened, by arity.", Kind: obs.KindCounter, Labels: arity},
		famWALRotations:    {Name: "npn_wal_rotations_total", Help: "Segment rotations since the writer opened, by arity.", Kind: obs.KindCounter, Labels: arity},
		famWALFsyncLag:     {Name: "npn_wal_fsync_lag_seconds", Help: "Age of the oldest append not yet fsynced (data at risk), by arity.", Kind: obs.KindGauge, Labels: arity},
		famFedActive:       {Name: "npn_federation_active_arities", Help: "Arities whose service has been constructed.", Kind: obs.KindGauge},
		famFedDurable:      {Name: "npn_federation_durable", Help: "1 when classes persist to WAL directories, 0 when memory-only.", Kind: obs.KindGauge},
	}
}

// RegisterMetrics exports the federation on m: push histograms for batch
// size/duration and fsync latency (installed into every service and WAL
// writer constructed afterwards — call before serving traffic), and a
// pull collector for everything the stats snapshots already count.
// Idempotent: a second call is a no-op, so handler construction and cmd
// wiring can both call it safely.
func (r *Registry) RegisterMetrics(m *obs.Registry) {
	r.mu.Lock()
	if r.obsRegistered {
		r.mu.Unlock()
		return
	}
	r.obsRegistered = true
	r.mu.Unlock()

	h := &obsHooks{
		batchSize: m.HistogramVec("npn_service_batch_size",
			"Functions per batch, by operation and arity.", obs.SizeBuckets(), "op", "arity"),
		batchDur: m.HistogramVec("npn_service_batch_duration_seconds",
			"Wall time per batch, by operation and arity.", obs.DurationBuckets(), "op", "arity"),
		fsyncDur: m.HistogramVec("npn_wal_fsync_duration_seconds",
			"WAL fsync latency, by arity.", obs.DurationBuckets(), "arity"),
	}
	r.mu.Lock()
	r.obs = h
	r.mu.Unlock()
	m.RegisterFunc(registryFams(), r.collectMetrics)
}

// hooksFor builds arity n's service and WAL observation hooks from the
// installed instruments, or returns nil funcs when metrics are off.
// Called under r.mu from the lazy construction path.
func (r *Registry) hooksFor(n int) (observeBatch func(string, int, time.Duration), observeFsync func(time.Duration)) {
	h := r.obs
	if h == nil {
		return nil, nil
	}
	arity := strconv.Itoa(n)
	observeBatch = func(op string, size int, d time.Duration) {
		h.batchSize.With(op, arity).Observe(float64(size))
		h.batchDur.With(op, arity).ObserveDuration(d)
	}
	observeFsync = func(d time.Duration) {
		h.fsyncDur.With(arity).ObserveDuration(d)
	}
	return observeBatch, observeFsync
}

// collectMetrics is the pull collector: one Stats-style snapshot per
// scrape, fanned into every registered family.
func (r *Registry) collectMetrics(emit func(fam int, labelValues []string, value float64)) {
	active := r.Active()
	emit(famFedActive, nil, float64(len(active)))
	emit(famFedDurable, nil, b2f(r.Durable()))
	for _, n := range active {
		svc, err := r.Service(n)
		if err != nil {
			continue
		}
		a := []string{strconv.Itoa(n)}
		s := svc.Stats()
		emit(famSvcLookups, a, float64(s.Lookups))
		emit(famSvcHits, a, float64(s.Hits))
		emit(famSvcMisses, a, float64(s.Misses))
		emit(famSvcCacheHits, a, float64(s.CacheHits))
		emit(famSvcInserts, a, float64(s.Inserts))
		emit(famSvcCreated, a, float64(s.Created))
		emit(famSvcCollisions, a, float64(s.Collisions))
		emit(famSvcDeduped, a, float64(s.Deduped))
		emit(famSvcBatches, a, float64(s.Batches))
		emit(famSvcInflight, a, float64(s.InflightBatches))
		emit(famSvcCacheEntries, a, float64(s.CacheEntries))
		emit(famStoreClasses, a, float64(s.Classes))
		emit(famStoreCollisions, a, float64(s.StoreCollisions))
		emit(famProfHits, a, float64(s.ProfileHits))
		emit(famProfMisses, a, float64(s.ProfileMisses))
		emit(famProfEntries, a, float64(s.ProfileEntries))
		emit(famJournalErrs, a, float64(s.JournalErrors))

		st := svc.Store()
		chains, maxLen := st.ChainStats()
		emit(famStoreChains, a, float64(chains))
		emit(famStoreChainMax, a, float64(maxLen))
		for i, sz := range st.ShardSizes() {
			emit(famStoreShard, []string{a[0], strconv.Itoa(i)}, float64(sz))
		}

		if w := r.writer(n); w != nil {
			ws := w.Stats()
			emit(famWALSegments, a, float64(ws.Segments))
			emit(famWALSealed, a, float64(ws.SealedSegments))
			emit(famWALBytes, a, float64(ws.Bytes))
			emit(famWALRecords, a, float64(ws.Records))
			emit(famWALFsyncs, a, float64(ws.Fsyncs))
			emit(famWALRotations, a, float64(ws.Rotations))
			emit(famWALFsyncLag, a, ws.FsyncLagMillis/1e3)
		}
	}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
