package federation

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/npn"
	"repro/internal/tt"
)

func mustNew(t *testing.T, lo, hi int) *Registry {
	t.Helper()
	r, err := New(lo, hi, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewValidatesRange(t *testing.T) {
	for _, bad := range [][2]int{{1, 6}, {4, tt.MaxVars + 1}, {8, 4}, {0, 0}} {
		if _, err := New(bad[0], bad[1], Options{}); err == nil {
			t.Errorf("range %d..%d accepted", bad[0], bad[1])
		}
	}
	if _, err := New(4, 10, Options{}); err != nil {
		t.Fatalf("valid range rejected: %v", err)
	}
}

// TestLazyConstruction checks that per-arity services appear only when
// their arity is first used.
func TestLazyConstruction(t *testing.T) {
	r := mustNew(t, 4, 10)
	if active := r.Active(); len(active) != 0 {
		t.Fatalf("fresh registry has active arities %v", active)
	}
	if _, err := r.Insert([]*tt.TT{tt.MustFromHex(6, "cafef00dcafef00d")}); err != nil {
		t.Fatal(err)
	}
	if active := r.Active(); len(active) != 1 || active[0] != 6 {
		t.Fatalf("active arities %v, want [6]", active)
	}
	if _, err := r.Service(3); err == nil {
		t.Fatal("out-of-range Service(3) accepted")
	}
}

// TestMixedBatchRouting inserts one known function per arity in a single
// mixed batch, then classifies NPN disguises of all of them in one mixed
// batch: every result must land at its input position with a verifying
// witness from the right arity's store.
func TestMixedBatchRouting(t *testing.T) {
	r := mustNew(t, 4, 10)
	rng := rand.New(rand.NewSource(500))

	var base []*tt.TT
	for n := 4; n <= 10; n++ {
		base = append(base, tt.Random(n, rng))
	}
	// Shuffle so consecutive batch entries hop between arities.
	rng.Shuffle(len(base), func(i, j int) { base[i], base[j] = base[j], base[i] })

	ins, err := r.Insert(base)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range ins {
		if !res.New {
			t.Fatalf("insert %d (n=%d) did not found a class", i, base[i].NumVars())
		}
	}

	queries := make([]*tt.TT, len(base))
	for i, f := range base {
		queries[i] = npn.RandomTransform(f.NumVars(), rng).Apply(f)
	}
	cls, err := r.Classify(queries)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range cls {
		if !res.Hit {
			t.Fatalf("query %d (n=%d) missed", i, queries[i].NumVars())
		}
		if res.Key != ins[i].Key || res.Index != ins[i].Index {
			t.Fatalf("query %d classified as (%016x,%d), inserted as (%016x,%d)",
				i, res.Key, res.Index, ins[i].Key, ins[i].Index)
		}
		if !res.Witness.Apply(res.Rep).Equal(queries[i]) {
			t.Fatalf("query %d witness does not verify", i)
		}
	}
	if active := r.Active(); len(active) != 7 {
		t.Fatalf("active arities %v, want all of 4..10", active)
	}

	st := r.Stats()
	if st.Totals.Inserts != int64(len(base)) || st.Totals.Hits != int64(len(base)) {
		t.Fatalf("totals %+v", st.Totals)
	}
	if len(st.PerArity) != 7 {
		t.Fatalf("per-arity breakdown has %d entries, want 7", len(st.PerArity))
	}
	for i, s := range st.PerArity {
		if s.Arity != 4+i {
			t.Fatalf("per-arity entry %d has arity %d", i, s.Arity)
		}
		if s.Inserts != 1 || s.Hits != 1 {
			t.Fatalf("arity %d stats %+v, want 1 insert and 1 hit", s.Arity, s)
		}
	}
}

// TestClassifyRejectsOutOfRangeArity fails the whole batch when any
// function's arity is outside the federated range.
func TestClassifyRejectsOutOfRangeArity(t *testing.T) {
	r := mustNew(t, 5, 8)
	batch := []*tt.TT{tt.New(6), tt.New(4)}
	if _, err := r.Classify(batch); err == nil {
		t.Fatal("out-of-range arity classified")
	}
	if _, err := r.Insert(batch); err == nil {
		t.Fatal("out-of-range arity inserted")
	}
}

// TestConcurrentMixedArity hammers the registry from many goroutines with
// mixed-arity classify and insert batches across all federated arities
// (run under -race): lazy construction, routing and the per-arity
// pipelines must all be safe, and every hit's witness must verify.
func TestConcurrentMixedArity(t *testing.T) {
	const (
		lo, hi     = 4, 10
		goroutines = 8
		rounds     = 12
		perArity   = 2
	)
	r := mustNew(t, lo, hi)

	seedRng := rand.New(rand.NewSource(501))
	base := make(map[int][]*tt.TT)
	for n := lo; n <= hi; n++ {
		for k := 0; k < perArity; k++ {
			base[n] = append(base[n], tt.Random(n, seedRng))
		}
	}

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(600 + g)))
			for round := 0; round < rounds; round++ {
				var batch []*tt.TT
				for n := lo; n <= hi; n++ {
					f := base[n][rng.Intn(perArity)]
					batch = append(batch, npn.RandomTransform(n, rng).Apply(f))
				}
				rng.Shuffle(len(batch), func(i, j int) { batch[i], batch[j] = batch[j], batch[i] })
				if round%2 == 0 {
					if _, err := r.Insert(batch); err != nil {
						t.Error(err)
						return
					}
					continue
				}
				res, err := r.Classify(batch)
				if err != nil {
					t.Error(err)
					return
				}
				for i, c := range res {
					if c.Hit && !c.Witness.Apply(c.Rep).Equal(batch[i]) {
						t.Errorf("concurrent witness does not verify (n=%d)", batch[i].NumVars())
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// Every arity must have ended with at most perArity classes: variants
	// of one base function are one class, and inserts across goroutines
	// must never duplicate one.
	for n := lo; n <= hi; n++ {
		svc, err := r.Service(n)
		if err != nil {
			t.Fatal(err)
		}
		if got := svc.Store().Size(); got > perArity {
			t.Fatalf("arity %d holds %d classes, want at most %d: duplicate class under concurrency",
				n, got, perArity)
		}
	}
}

// TestStatsAggregation cross-checks totals against the per-arity rows.
func TestStatsAggregation(t *testing.T) {
	r := mustNew(t, 4, 6)
	rng := rand.New(rand.NewSource(502))
	var batch []*tt.TT
	for n := 4; n <= 6; n++ {
		for k := 0; k < 3; k++ {
			batch = append(batch, tt.Random(n, rng))
		}
	}
	if _, err := r.Insert(batch); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Classify(batch); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	var lookups, inserts, classes int64
	for _, s := range st.PerArity {
		lookups += s.Lookups
		inserts += s.Inserts
		classes += int64(s.Classes)
	}
	if st.Totals.Lookups != lookups || st.Totals.Inserts != inserts || int64(st.Totals.Classes) != classes {
		t.Fatalf("totals %+v disagree with per-arity sums (%d lookups, %d inserts, %d classes)",
			st.Totals, lookups, inserts, classes)
	}
	if st.MinVars != 4 || st.MaxVars != 6 {
		t.Fatalf("range %d..%d, want 4..6", st.MinVars, st.MaxVars)
	}
}

// TestArityOfHex checks the hex-length → arity inference table.
func TestArityOfHex(t *testing.T) {
	r := mustNew(t, 2, 10)
	for n := 2; n <= 10; n++ {
		d := (1 << n) / 4
		if d == 0 {
			d = 1
		}
		s := ""
		for len(s) < d {
			s += "0"
		}
		got, err := r.ArityOfHex(s)
		if err != nil || got != n {
			t.Fatalf("length %d resolved to (%d, %v), want arity %d", d, got, err, n)
		}
	}
	for _, bad := range []string{"", "000", fmt.Sprintf("%0512d", 0)} {
		if _, err := r.ArityOfHex(bad); err == nil {
			t.Fatalf("length %d accepted", len(bad))
		}
	}
}
