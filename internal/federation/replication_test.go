package federation

import (
	"encoding/json"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"repro/internal/store"
	"repro/internal/tt"
	"repro/internal/wal"
)

// TestWALEndpoints drives the primary-side replication surface directly:
// the manifest names every segment with its meta word, the segment
// endpoint serves wal.Reader-decodable bytes from arbitrary offsets, and
// the error statuses (409 non-durable, 404 missing, 400/416 bad request)
// hold.
func TestWALEndpoints(t *testing.T) {
	mem, err := New(4, 6, Options{})
	if err != nil {
		t.Fatal(err)
	}
	memSrv := httptest.NewServer(NewHandler(mem))
	defer memSrv.Close()
	for _, path := range []string{"/v1/wal/segments", "/v1/wal/snapshot/4", "/v1/wal/segment/4/1"} {
		resp, err := http.Get(memSrv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("%s on memory-only registry: %d, want 409", path, resp.StatusCode)
		}
	}

	reg, err := New(4, 6, Options{Data: t.TempDir(), WAL: wal.Options{SegmentBytes: 1 << 20}})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	srv := httptest.NewServer(NewHandler(reg))
	defer srv.Close()

	rng := rand.New(rand.NewSource(51))
	var fs []*tt.TT
	for i := 0; i < 10; i++ {
		fs = append(fs, tt.Random(5, rng))
	}
	ins, err := reg.Insert(fs)
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/v1/wal/segments")
	if err != nil {
		t.Fatal(err)
	}
	var m Manifest
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(m.Arities) != 1 || m.Arities[0].Arity != 5 || len(m.Arities[0].Segments) != 1 {
		t.Fatalf("manifest %+v", m)
	}
	am := m.Arities[0]
	if am.Segments[0].Meta != am.Fingerprint || am.Segments[0].Sealed {
		t.Fatalf("segment info %+v vs fingerprint %s", am.Segments[0], am.Fingerprint)
	}
	if am.HasSnapshot {
		t.Fatal("snapshot listed before any compaction")
	}
	resp, err = http.Get(srv.URL + "/v1/wal/snapshot/5")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing snapshot: %d, want 404", resp.StatusCode)
	}

	// The segment bytes decode with the shared framing and carry exactly
	// the inserted records; the class keys match the insert results.
	seg := am.Segments[0]
	resp, err = http.Get(srv.URL + "/v1/wal/segment/5/" + strconv.FormatUint(seg.Seq, 10))
	if err != nil {
		t.Fatal(err)
	}
	r := wal.NewReader(resp.Body, 0)
	var recs []wal.Record
	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
	}
	offsetMid := r.Offset()
	resp.Body.Close()
	if len(recs) != len(fs) {
		t.Fatalf("segment served %d records, want %d", len(recs), len(fs))
	}
	for i, rec := range recs {
		if rec.Key != ins[i].Key || !rec.TT.Equal(fs[i]) {
			t.Fatalf("served record %d mismatch", i)
		}
	}

	// Offset resume: more inserts, then a range read from the previous
	// end yields exactly the new records.
	more := []*tt.TT{tt.Random(5, rng)}
	if _, err := reg.Insert(more); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(srv.URL + "/v1/wal/segment/5/1?offset=" + strconv.FormatInt(offsetMid, 10))
	if err != nil {
		t.Fatal(err)
	}
	r = wal.NewReader(resp.Body, offsetMid)
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("range read past new record: %v", err)
	}
	resp.Body.Close()
	if !rec.TT.Equal(more[0]) {
		t.Fatal("range read returned the wrong record")
	}

	// Error statuses.
	for path, want := range map[string]int{
		"/v1/wal/segment/9/1":             http.StatusBadRequest, // arity outside range
		"/v1/wal/segment/5/0":             http.StatusBadRequest, // bad sequence
		"/v1/wal/segment/5/1?offset=-1":   http.StatusBadRequest, // bad offset
		"/v1/wal/segment/5/7":             http.StatusNotFound,   // no such segment
		"/v1/wal/segment/5/1?offset=1e18": http.StatusBadRequest, // non-integer offset
		"/v1/wal/snapshot/99":             http.StatusBadRequest, // arity outside range
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("%s: %d, want %d", path, resp.StatusCode, want)
		}
	}
	resp, err = http.Get(srv.URL + "/v1/wal/segment/5/1?offset=999999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestedRangeNotSatisfiable {
		t.Fatalf("oversized offset: %d, want 416", resp.StatusCode)
	}

	// Durability gate: a group-fsync registry with everything still
	// buffered advertises only the fsynced prefix (the 16-byte header) of
	// its active segment, and serves no more than that.
	lazy, err := New(4, 6, Options{Data: t.TempDir(), WAL: wal.Options{FsyncEvery: time.Hour}})
	if err != nil {
		t.Fatal(err)
	}
	defer lazy.Close()
	if _, err := lazy.Insert([]*tt.TT{tt.Random(4, rng)}); err != nil {
		t.Fatal(err)
	}
	lm, err := lazy.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if len(lm.Arities) != 1 || len(lm.Arities[0].Segments) != 1 || lm.Arities[0].Segments[0].Size != 16 {
		t.Fatalf("unfsynced manifest %+v, want the active segment capped at its 16-byte header", lm)
	}
	lazySrv := httptest.NewServer(NewHandler(lazy))
	defer lazySrv.Close()
	body, err := http.Get(lazySrv.URL + "/v1/wal/segment/4/1")
	if err != nil {
		t.Fatal(err)
	}
	served, err := io.ReadAll(body.Body)
	body.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(served) != 16 {
		t.Fatalf("segment endpoint served %d unfsynced bytes, want the 16-byte header only", len(served))
	}

	// Restart scenario: a fresh registry over the same data directory has
	// constructed no services, but the manifest must still surface every
	// arity that left state on disk — otherwise a follower of a just-
	// restarted idle primary would sync "successfully" to nothing.
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}
	reg2, err := New(4, 6, Options{Data: reg.opts.Data, WAL: wal.Options{SegmentBytes: 1 << 20}})
	if err != nil {
		t.Fatal(err)
	}
	defer reg2.Close()
	if len(reg2.Active()) != 0 {
		t.Fatal("restarted registry has active services before any traffic")
	}
	m2, err := reg2.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if len(m2.Arities) != 1 || m2.Arities[0].Arity != 5 || len(m2.Arities[0].Segments) == 0 {
		t.Fatalf("post-restart manifest %+v, want arity 5 with its on-disk segments", m2)
	}

	// A read-only store option on a durable registry is the follower
	// half; sanity-check the two compose (store gate refuses inserts).
	ro, err := New(4, 6, Options{Store: store.Options{ReadOnly: true}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ro.Insert([]*tt.TT{fs[0]})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Index != -1 || res[0].New {
		t.Fatalf("read-only registry insert %+v, want refusal", res[0])
	}
}
