// Primary-side WAL shipping: the segment manifest and the raw-byte
// endpoints a replication follower (internal/replica) tails. The registry
// owns the per-arity WAL directories and writers, so it is the natural
// place to expose them: the manifest lists every arity's snapshot and
// segments (with sizes and meta words, so a follower can resume at exact
// byte offsets and decide key trust per segment), and the segment
// endpoint serves a range read of one segment file. The active segment
// is listed and served only up to the writer's fsynced boundary
// (wal.Writer.DurableSize): replication never ships a record the primary
// could still lose to a power cut, so a follower can never hold phantom
// classes its primary forgot — its state is always a prefix of the
// primary's durable history.
package federation

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/service"
	"repro/internal/wal"
)

// SegmentInfo describes one WAL segment in a replication manifest.
type SegmentInfo struct {
	// Seq is the segment's sequence number; replay order is increasing Seq.
	Seq uint64 `json:"seq"`
	// Size is the file size in bytes at manifest time. Sizes only grow
	// (for the active segment) or vanish (compaction), never shrink, so a
	// follower can treat Size as a low-water mark.
	Size int64 `json:"size"`
	// Meta is the segment header's meta word in %016x hex — the writing
	// store's MSV configuration fingerprint, which decides whether the
	// segment's logged class keys can be trusted.
	Meta string `json:"meta"`
	// Sealed reports whether the segment will never be appended to again.
	Sealed bool `json:"sealed"`
}

// ArityManifest is one arity's replication state: its snapshot (if any)
// and the log segments to tail after it.
type ArityManifest struct {
	Arity int `json:"arity"`
	// Fingerprint is the arity's store configuration fingerprint (%016x),
	// the meta word new segments are written under.
	Fingerprint string `json:"fingerprint"`
	// HasSnapshot and SnapshotBytes describe the compacted base snapshot.
	HasSnapshot   bool  `json:"has_snapshot"`
	SnapshotBytes int64 `json:"snapshot_bytes"`
	// ActiveSeq is the segment currently being appended to.
	ActiveSeq uint64 `json:"active_seq"`
	// Segments lists the directory's segments in replay order.
	Segments []SegmentInfo `json:"segments"`
}

// Manifest is the GET /v1/wal/segments response: the replication state of
// every constructed arity.
type Manifest struct {
	MinVars int             `json:"min_vars"`
	MaxVars int             `json:"max_vars"`
	Arities []ArityManifest `json:"arities"`
}

// Manifest returns the replication manifest for every durable arity —
// constructed services and arities whose WAL directory exists on disk
// but has not been touched since the last restart (those are recovered
// on the spot, so a primary that restarted into silence still ships its
// whole history to followers instead of an empty manifest). The active
// segment is listed at its fsynced size, so followers only ever chase
// durable bytes. On a non-durable registry it returns ErrNotDurable.
func (r *Registry) Manifest() (Manifest, error) {
	if !r.Durable() {
		return Manifest{}, ErrNotDurable
	}
	m := Manifest{MinVars: r.lo, MaxVars: r.hi, Arities: []ArityManifest{}}
	active := make(map[int]bool)
	for _, n := range r.Active() {
		active[n] = true
	}
	for n := r.lo; n <= r.hi; n++ {
		dir := r.ArityDir(n)
		if !active[n] {
			// Only wake arities that left state behind; a Stat miss means
			// the arity has never served and has nothing to replicate.
			if _, err := os.Stat(dir); err != nil {
				continue
			}
		}
		svc, err := r.Service(n) // recovers the store + reopens the writer if needed
		if err != nil {
			return m, err
		}
		w := r.writer(n)
		if w == nil {
			continue
		}
		// List the segments before stat-ing the snapshot: a compaction
		// completing in between then yields an old segment list with the
		// new snapshot (harmless — a bootstrapping follower applies the
		// snapshot and dedups the overlap, or 404s and re-polls), never a
		// post-compaction segment list without the snapshot, which would
		// make it silently skip every compacted class. DurableSize is read
		// after the listing so a rotation in between can only under-list
		// (a sealed segment briefly capped at its old durable size), never
		// advertise unfsynced bytes of a newer active segment.
		segs, err := wal.ListSegments(dir)
		if err != nil {
			return m, fmt.Errorf("federation: list arity %d: %w", n, err)
		}
		activeSeq, durable := w.DurableSize()
		am := ArityManifest{
			Arity:       n,
			Fingerprint: fmt.Sprintf("%016x", svc.Store().Fingerprint()),
			ActiveSeq:   activeSeq,
			Segments:    []SegmentInfo{},
		}
		for _, s := range segs {
			meta, ok := r.segmentMeta(n, s)
			if !ok {
				continue
			}
			size := s.Size
			if s.Seq == activeSeq && durable < size {
				size = durable // never advertise unfsynced bytes
			}
			am.Segments = append(am.Segments, SegmentInfo{
				Seq:    s.Seq,
				Size:   size,
				Meta:   fmt.Sprintf("%016x", meta),
				Sealed: s.Seq < activeSeq,
			})
		}
		r.pruneMetaCache(n, am.Segments)
		if info, err := os.Stat(filepath.Join(dir, wal.SnapshotFile)); err == nil {
			am.HasSnapshot, am.SnapshotBytes = true, info.Size()
		}
		m.Arities = append(m.Arities, am)
	}
	return m, nil
}

// segmentMeta returns a segment's header meta word through the
// registry's cache: the word is immutable and sequences are never
// reused, so each segment's header is read from disk at most once per
// process instead of once per follower poll. ok is false when the file
// vanished (or tore) between listing and the read — a compaction race
// the follower's next poll resolves.
func (r *Registry) segmentMeta(n int, s wal.Segment) (uint64, bool) {
	key := metaKey{arity: n, seq: s.Seq}
	r.metaMu.Lock()
	meta, ok := r.metaCache[key]
	r.metaMu.Unlock()
	if ok {
		return meta, true
	}
	meta, err := wal.ReadSegmentMeta(s.Path)
	if err != nil {
		return 0, false
	}
	r.metaMu.Lock()
	r.metaCache[key] = meta
	r.metaMu.Unlock()
	return meta, true
}

// pruneMetaCache drops cached meta words for arity n's segments that are
// no longer listed (compacted away), keeping the cache bounded by the
// live segment count.
func (r *Registry) pruneMetaCache(n int, listed []SegmentInfo) {
	live := make(map[uint64]bool, len(listed))
	for _, s := range listed {
		live[s.Seq] = true
	}
	r.metaMu.Lock()
	for key := range r.metaCache {
		if key.arity == n && !live[key.seq] {
			delete(r.metaCache, key)
		}
	}
	r.metaMu.Unlock()
}

// handleWALManifest is GET /v1/wal/segments.
func handleWALManifest(reg *Registry) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		m, err := reg.Manifest()
		if errors.Is(err, ErrNotDurable) {
			service.WriteError(w, http.StatusConflict, "%v", err)
			return
		}
		if err != nil {
			service.WriteError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		service.WriteJSON(w, http.StatusOK, m)
	}
}

// walArity validates the {arity} path value of a WAL endpoint against the
// durable registry. On failure it writes the error response and returns
// ok=false.
func walArity(w http.ResponseWriter, r *http.Request, reg *Registry) (int, bool) {
	if !reg.Durable() {
		service.WriteError(w, http.StatusConflict, "%v", ErrNotDurable)
		return 0, false
	}
	n, err := strconv.Atoi(r.PathValue("arity"))
	if err != nil || n < reg.lo || n > reg.hi {
		service.WriteError(w, http.StatusBadRequest, "arity %q outside federated range %d..%d",
			r.PathValue("arity"), reg.lo, reg.hi)
		return 0, false
	}
	return n, true
}

// handleWALSnapshot is GET /v1/wal/snapshot/{arity}: the arity's base
// snapshot file (a ttio workload), 404 when no compaction has run yet.
func handleWALSnapshot(reg *Registry) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		n, ok := walArity(w, r, reg)
		if !ok {
			return
		}
		f, err := os.Open(filepath.Join(reg.ArityDir(n), wal.SnapshotFile))
		if os.IsNotExist(err) {
			service.WriteError(w, http.StatusNotFound, "arity %d has no snapshot", n)
			return
		}
		if err != nil {
			service.WriteError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		defer f.Close()
		w.Header().Set("Content-Type", "application/octet-stream")
		io.Copy(w, f)
	}
}

// handleWALSegment is GET /v1/wal/segment/{arity}/{seq}?offset=N: the raw
// bytes of one segment from the given record-boundary offset to the
// current end of file. The arity's writer is flushed first, so a follower
// polling this endpoint sees every acknowledged append; the stream may
// end mid-record when an append races the copy, which the wal.Reader
// framing reports as a retryable ErrPartial. A 404 means the segment was
// compacted away — the follower re-reads the manifest and re-bootstraps
// from the snapshot.
func handleWALSegment(reg *Registry) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		n, ok := walArity(w, r, reg)
		if !ok {
			return
		}
		seq, err := strconv.ParseUint(r.PathValue("seq"), 10, 64)
		if err != nil || seq == 0 {
			service.WriteError(w, http.StatusBadRequest, "bad segment sequence %q", r.PathValue("seq"))
			return
		}
		offset := int64(0)
		if o := r.URL.Query().Get("offset"); o != "" {
			offset, err = strconv.ParseInt(o, 10, 64)
			if err != nil || offset < 0 {
				service.WriteError(w, http.StatusBadRequest, "bad offset %q", o)
				return
			}
		}
		// The durable boundary is read before opening the file, so the
		// file is always at least `end` bytes long: fsyncs only grow it.
		end := int64(-1) // -1: serve to EOF (sealed or writerless segments are durable in full)
		if wr := reg.writer(n); wr != nil {
			if activeSeq, durable := wr.DurableSize(); seq == activeSeq {
				end = durable
			}
		}
		path := wal.SegmentPath(reg.ArityDir(n), seq)
		f, err := os.Open(path)
		if os.IsNotExist(err) {
			service.WriteError(w, http.StatusNotFound, "arity %d segment %d is gone (compacted)", n, seq)
			return
		}
		if err != nil {
			service.WriteError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		defer f.Close()
		info, err := f.Stat()
		if err != nil {
			service.WriteError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		if end < 0 || end > info.Size() {
			end = info.Size()
		}
		if offset > end {
			service.WriteError(w, http.StatusRequestedRangeNotSatisfiable,
				"offset %d beyond durable segment size %d", offset, end)
			return
		}
		if _, err := f.Seek(offset, io.SeekStart); err != nil {
			service.WriteError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		// The segment's meta word and sealedness travel in the manifest;
		// the body is nothing but raw durable bytes for
		// wal.NewReader(r, offset).
		w.Header().Set("Content-Type", "application/octet-stream")
		io.CopyN(w, f, end-offset)
	}
}
