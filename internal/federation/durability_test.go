package federation

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/npn"
	"repro/internal/tt"
	"repro/internal/wal"
)

// durableRegistry builds a registry persisting under dir.
func durableRegistry(t *testing.T, dir string, lo, hi int) *Registry {
	t.Helper()
	reg, err := New(lo, hi, Options{
		Data: dir,
		WAL:  wal.Options{SegmentBytes: 1 << 12},
	})
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

// TestDurableRestart drives the federated durability lifecycle: insert a
// mixed-arity batch into a durable registry, close it (a graceful stop),
// reopen the same data directory and verify every arity's classes
// survive — then compact, restart again, and verify once more, so both
// the log-replay and the snapshot-plus-log recovery paths are exercised.
func TestDurableRestart(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(60))
	var fs []*tt.TT
	for n := 4; n <= 7; n++ {
		for k := 0; k < 6; k++ {
			fs = append(fs, tt.Random(n, rng))
		}
	}

	reg := durableRegistry(t, dir, 4, 7)
	if !reg.Durable() {
		t.Fatal("registry with Data is not durable")
	}
	ins, err := reg.Insert(fs)
	if err != nil {
		t.Fatal(err)
	}
	classOf := make([]string, len(fs))
	for i, r := range ins {
		if r.Index < 0 {
			t.Fatalf("insert %d refused (journal error?)", i)
		}
		classOf[i] = keyIndex(r.Key, r.Index)
	}
	st := reg.Stats()
	if !st.Durable || len(st.PerArity) != 4 {
		t.Fatalf("stats %+v", st)
	}
	for _, row := range st.PerArity {
		if row.WAL == nil || row.WAL.Segments == 0 || row.WAL.Records == 0 {
			t.Fatalf("arity %d has no WAL stats: %+v", row.Arity, row.WAL)
		}
	}
	if st.Totals.WALSegments == 0 || st.Totals.WALBytes == 0 {
		t.Fatalf("totals missing WAL shape: %+v", st.Totals)
	}
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}

	verify := func(reg *Registry, stage string) {
		t.Helper()
		queries := make([]*tt.TT, len(fs))
		for i, f := range fs {
			queries[i] = npn.RandomTransform(f.NumVars(), rng).Apply(f)
		}
		res, err := reg.Classify(queries)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range res {
			if !r.Hit {
				t.Fatalf("%s: class %d lost", stage, i)
			}
			if keyIndex(r.Key, r.Index) != classOf[i] {
				t.Fatalf("%s: class %d identity changed", stage, i)
			}
		}
	}

	reg2 := durableRegistry(t, dir, 4, 7)
	verify(reg2, "after restart")

	results, err := reg2.CompactAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("compacted %d arities, want 4", len(results))
	}
	folded := int64(0)
	for _, r := range results {
		folded += r.RecordsFolded
	}
	if folded == 0 {
		t.Fatal("compaction folded nothing")
	}
	verify(reg2, "after compaction")
	if err := reg2.Close(); err != nil {
		t.Fatal(err)
	}

	reg3 := durableRegistry(t, dir, 4, 7)
	defer reg3.Close()
	verify(reg3, "after compaction and restart")
}

// TestDurableCrashRestart: closing nothing at all (the kill -9 shape,
// with per-append fsync) must also lose nothing.
func TestDurableCrashRestart(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(61))
	var fs []*tt.TT
	for k := 0; k < 10; k++ {
		fs = append(fs, tt.Random(5, rng))
	}
	reg := durableRegistry(t, dir, 4, 6)
	if _, err := reg.Insert(fs); err != nil {
		t.Fatal(err)
	}
	// No Close: the writer is abandoned mid-flight.

	reg2 := durableRegistry(t, dir, 4, 6)
	defer reg2.Close()
	res, err := reg2.Classify(fs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if !r.Hit {
			t.Fatalf("class %d lost across simulated crash", i)
		}
	}
}

// TestCompactAllRequiresDurability: CompactAll on a memory-only registry
// fails with ErrNotDurable.
func TestCompactAllRequiresDurability(t *testing.T) {
	reg, err := New(4, 6, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.CompactAll(); !errors.Is(err, ErrNotDurable) {
		t.Fatalf("CompactAll on memory-only registry: %v, want ErrNotDurable", err)
	}
	if err := reg.Close(); err != nil {
		t.Fatalf("Close on memory-only registry: %v", err)
	}
}

func keyIndex(key uint64, index int) string {
	return fmt.Sprintf("%016x:%d", key, index)
}
