package federation

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/api"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/tt"
)

// NewHandler returns the federated HTTP/JSON API over reg with the
// default body bound for uploads and streams; see NewHandlerWith.
func NewHandler(reg *Registry) http.Handler {
	return NewHandlerWith(reg, api.DefaultMaxBody)
}

// HandlerOptions configures the observability surface of a federated (or,
// via internal/replica, follower) handler.
type HandlerOptions struct {
	// MaxBody bounds the AIGER upload and NDJSON stream bodies; zero means
	// api.DefaultMaxBody.
	MaxBody int64
	// Metrics, when non-nil, mounts GET /metrics (Prometheus text
	// exposition) and registers the registry's collectors on it.
	Metrics *obs.Registry
	// HTTP, when non-nil, is installed as the router middleware: request
	// IDs, per-route latency histograms, the slow-request log.
	HTTP *obs.HTTPMetrics
	// Guard, when non-nil, is the admission-control middleware
	// (internal/auth): API-key authentication, per-client rate limiting
	// and load shedding. Mounted inside the obs middleware, so refused
	// requests are still traced and counted (as 4xx), and exempt routes
	// (/healthz, /metrics) keep answering through overload.
	Guard api.Middleware
	// Trace, when non-nil, is the flight recorder behind the HTTP
	// middleware's per-request traces (it must also be HTTP's
	// HTTPOptions.Tracer); mounting it adds GET /v2/debug/traces and
	// GET /v2/debug/traces/{id}. By default the guard authenticates both
	// (trace details name client identities) but never rate-limits or
	// sheds them (auth.DefaultAuthOnly).
	Trace *obs.Tracer
}

func (o HandlerOptions) maxBody() int64 {
	if o.MaxBody <= 0 {
		return api.DefaultMaxBody
	}
	return o.MaxBody
}

// mount wires o's observability and admission control onto a router:
// middleware first (obs outermost so even guarded-away requests are
// traced, the guard inside it), then the /metrics route and the registry
// collectors.
func (o HandlerOptions) mount(rt *api.Router, reg *Registry) {
	if o.HTTP != nil {
		rt.Use(o.HTTP.Wrap)
	}
	if o.Guard != nil {
		rt.Use(o.Guard)
	}
	if o.Metrics != nil {
		reg.RegisterMetrics(o.Metrics)
		rt.Handle("GET", "/metrics", "Prometheus metrics exposition", obs.Handler(o.Metrics))
	}
	if o.Trace != nil {
		rt.Handle("GET", "/v2/debug/traces",
			"flight recorder: retained request traces, newest first (?min_ms=&route=)",
			api.HandleTraces(o.Trace))
		rt.Handle("GET", "/v2/debug/traces/{id}",
			"flight recorder: one trace's span tree, by request ID",
			api.HandleTrace(o.Trace))
	}
}

// NewHandlerWith returns the federated versioned API over reg, mounted
// on the shared api.Router (JSON 404/405 fallback, GET /v2/spec
// self-description). The wire format is the single-arity service API
// with one relaxation: a batch may mix arities, and each function's
// arity is inferred from its hex length (2^n/4 digits, unique per arity
// for n ≥ 2).
//
//	POST /v2/classify         mixed-arity batch lookup, per-item errors
//	POST /v2/insert           mixed-arity batch insert, per-item errors
//	POST /v2/classify/stream  NDJSON variant for unbuffered batches
//	POST /v2/insert/stream    NDJSON variant for unbuffered batches
//	POST /v2/map              map an ASCII-AIGER circuit to k-LUTs;
//	                          ?insert=true warms the store with the
//	                          discovered LUT classes
//	POST /v2/compact          admin: fold sealed WAL segments (409 via
//	                          code not_durable on a memory-only registry)
//	GET  /v2/stats            aggregate totals + per-arity breakdown
//	GET  /v2/spec             routes + error codes
//	GET  /healthz             liveness + federated range
//
// plus the deprecated /v1 shims (classify, insert, compact, stats),
// byte-compatible for valid requests, and the replication endpoints a
// durable registry serves to followers (all three answer 409 on a
// non-durable registry):
//
//	GET /v1/wal/segments             per-arity segment manifest
//	GET /v1/wal/snapshot/{arity}     the arity's base snapshot file
//	GET /v1/wal/segment/{arity}/{seq}?offset=N
//	                                 raw segment bytes from offset
//
// maxBody bounds the AIGER upload and NDJSON stream bodies (npnserve's
// -max-body flag); the JSON batch endpoints keep their arity-derived
// bound.
func NewHandlerWith(reg *Registry, maxBody int64) http.Handler {
	return NewHandlerOpts(reg, HandlerOptions{MaxBody: maxBody})
}

// NewHandlerOpts is NewHandlerWith plus the observability surface: with
// HandlerOptions.Metrics set the stack additionally serves GET /metrics
// (listed in /v2/spec like every route), and with HandlerOptions.HTTP set
// every route — the /v1 shims, the 404 fallback and /metrics itself
// included — is traced and measured by the obs middleware.
func NewHandlerOpts(reg *Registry, o HandlerOptions) http.Handler {
	maxBody := o.maxBody()
	rt := api.NewRouter("federated")
	o.mount(rt, reg)
	b := fedBackend{reg}
	jsonBody := service.MaxBodyBytes(reg.MaxVars())

	rt.HandleDeprecated("POST", "/v1/classify", "mixed-arity batch lookup (use /v2/classify)",
		func(w http.ResponseWriter, r *http.Request) {
			if !api.CheckContentType(w, r, "application/json") {
				return
			}
			fs, raw, ok := decodeMixedBatch(w, r, reg)
			if !ok {
				return
			}
			results, err := reg.ClassifyCtx(r.Context(), fs)
			if err != nil {
				service.WriteError(w, http.StatusBadRequest, "%v", err)
				return
			}
			service.WriteJSON(w, http.StatusOK, service.EncodeClassifyResults(raw, results))
		})
	rt.HandleDeprecated("POST", "/v1/insert", "mixed-arity batch insert (use /v2/insert)",
		func(w http.ResponseWriter, r *http.Request) {
			if !api.CheckContentType(w, r, "application/json") {
				return
			}
			fs, raw, ok := decodeMixedBatch(w, r, reg)
			if !ok {
				return
			}
			results, err := reg.InsertCtx(r.Context(), fs)
			if err != nil {
				service.WriteError(w, http.StatusBadRequest, "%v", err)
				return
			}
			if refused := service.CountRefusedInserts(results); refused > 0 {
				service.WriteError(w, http.StatusInternalServerError,
					"%d of %d inserts refused: journal failure, classes not durable", refused, len(results))
				return
			}
			service.WriteJSON(w, http.StatusOK, service.EncodeInsertResults(raw, results))
		})
	rt.HandleDeprecated("POST", "/v1/compact", "fold sealed WAL segments (use /v2/compact)",
		func(w http.ResponseWriter, r *http.Request) {
			results, err := reg.CompactAll()
			if errors.Is(err, ErrNotDurable) {
				service.WriteError(w, http.StatusConflict, "%v", err)
				return
			}
			if err != nil {
				service.WriteError(w, http.StatusInternalServerError, "%v", err)
				return
			}
			service.WriteJSON(w, http.StatusOK, map[string]any{"arities": results})
		})
	rt.HandleDeprecated("GET", "/v1/stats", "aggregate + per-arity counters (use /v2/stats)",
		func(w http.ResponseWriter, r *http.Request) {
			service.WriteJSON(w, http.StatusOK, reg.Stats())
		})
	rt.Handle("GET", "/v1/wal/segments", "replication: per-arity segment manifest", handleWALManifest(reg))
	rt.Handle("GET", "/v1/wal/snapshot/{arity}", "replication: base snapshot file", handleWALSnapshot(reg))
	rt.Handle("GET", "/v1/wal/segment/{arity}/{seq}", "replication: raw segment bytes from ?offset=", handleWALSegment(reg))

	rt.Handle("POST", "/v2/classify", "mixed-arity batch lookup with per-item errors", api.HandleClassify(b, jsonBody))
	rt.Handle("POST", "/v2/insert", "mixed-arity batch insert with per-item errors", api.HandleInsert(b, jsonBody))
	rt.Handle("POST", "/v2/classify/stream", "NDJSON streaming lookup", api.HandleClassifyStream(b, maxBody))
	rt.Handle("POST", "/v2/insert/stream", "NDJSON streaming insert", api.HandleInsertStream(b, maxBody))
	rt.Handle("POST", "/v2/map", "map an ASCII-AIGER circuit to k-LUTs; ?insert=true warms the store",
		api.HandleMap(api.MapConfig{MaxBody: maxBody, Insert: b.insertMapped}))
	rt.Handle("POST", "/v2/compact", "fold every arity's sealed WAL segments into its snapshot",
		func(w http.ResponseWriter, r *http.Request) {
			results, err := reg.CompactAll()
			if errors.Is(err, ErrNotDurable) {
				api.WriteError(w, api.Errf(api.CodeNotDurable, "%v", err))
				return
			}
			if err != nil {
				api.WriteError(w, api.Errf(api.CodeInternal, "%v", err))
				return
			}
			api.WriteJSON(w, http.StatusOK, map[string]any{"arities": results})
		})
	rt.Handle("GET", "/v2/stats", "aggregate totals + per-arity breakdown",
		func(w http.ResponseWriter, r *http.Request) {
			api.WriteJSON(w, http.StatusOK, reg.Stats())
		})
	rt.Handle("GET", "/healthz", "liveness + federated range",
		func(w http.ResponseWriter, r *http.Request) {
			service.WriteJSON(w, http.StatusOK, map[string]any{
				"status":   "ok",
				"min_vars": reg.MinVars(),
				"max_vars": reg.MaxVars(),
				"active":   reg.Active(),
			})
		})
	rt.MountSpec()
	return rt
}

// fedBackend adapts the registry to the shared /v2 handlers.
type fedBackend struct{ reg *Registry }

// Resolve infers the arity from the hex length, constructs that arity's
// service (so Classify/Insert cannot fail later) and parses the table.
func (b fedBackend) Resolve(s string) (*tt.TT, *api.Error) {
	n, err := b.reg.ArityOfHex(s)
	if err != nil {
		return nil, api.Errf(api.CodeArityOutOfRange,
			"hex truth table of %d digits matches no federated arity %d..%d",
			len(s), b.reg.MinVars(), b.reg.MaxVars()).
			WithDetail("want one of %s hex digits", b.reg.arityLengths())
	}
	if _, err := b.reg.Service(n); err != nil {
		return nil, api.Errf(api.CodeInternal, "%v", err)
	}
	f, err := tt.FromHex(n, s)
	if err != nil {
		return nil, api.Errf(api.CodeBadHex, "%v", err)
	}
	return f, nil
}

// CheckArity implements api.ArityBackend for the binary transport: the
// arity must be federated, and its service is constructed up front so
// Classify/Insert cannot fail later — the same readiness contract as
// Resolve, minus the hex round-trip.
func (b fedBackend) CheckArity(n int) *api.Error {
	if n < b.reg.MinVars() || n > b.reg.MaxVars() {
		return api.Errf(api.CodeArityOutOfRange,
			"function of arity %d outside the federated range %d..%d",
			n, b.reg.MinVars(), b.reg.MaxVars())
	}
	if _, err := b.reg.Service(n); err != nil {
		return api.Errf(api.CodeInternal, "%v", err)
	}
	return nil
}

func (b fedBackend) Classify(ctx context.Context, fs []*tt.TT) ([]api.Result, *api.Error) {
	results, err := b.reg.ClassifyCtx(ctx, fs)
	if err != nil {
		return nil, api.Errf(api.CodeInternal, "%v", err)
	}
	return service.ToAPIResults(results), nil
}

func (b fedBackend) Insert(ctx context.Context, fs []*tt.TT) ([]api.InsertOutcome, *api.Error) {
	results, err := b.reg.InsertCtx(ctx, fs)
	if err != nil {
		return nil, api.Errf(api.CodeInternal, "%v", err)
	}
	return service.ToAPIOutcomes(results), nil
}

// insertMapped stores a mapping's K-ary LUT functions, provided K is a
// federated arity.
func (b fedBackend) insertMapped(ctx context.Context, fs []*tt.TT) ([]api.InsertOutcome, *api.Error) {
	if len(fs) > 0 {
		if k := fs[0].NumVars(); k < b.reg.MinVars() || k > b.reg.MaxVars() {
			return nil, api.Errf(api.CodeArityOutOfRange,
				"mapped LUTs have arity %d, outside the federated range %d..%d (retry with a federated k or without insert=true)",
				k, b.reg.MinVars(), b.reg.MaxVars())
		}
	}
	return b.Insert(ctx, fs)
}

// ArityOfHex maps a hex truth table to the unique federated arity whose
// encoding has its length (service.HexDigits, unique per arity for
// n ≥ 2).
func (r *Registry) ArityOfHex(s string) (int, error) {
	for n := r.lo; n <= r.hi; n++ {
		if service.HexDigits(n) == len(s) {
			return n, nil
		}
	}
	return 0, fmt.Errorf("hex truth table of %d digits matches no federated arity %d..%d (want one of %s)",
		len(s), r.lo, r.hi, r.arityLengths())
}

// arityLengths renders the accepted hex lengths, for error messages.
func (r *Registry) arityLengths() string {
	out := ""
	for n := r.lo; n <= r.hi; n++ {
		if n > r.lo {
			out += ","
		}
		out += fmt.Sprint(service.HexDigits(n))
	}
	return out
}

// decodeMixedBatch parses and validates a mixed-arity ClassifyRequest
// body: the shared service envelope rules, with each function's arity
// resolved from its hex length. On failure it writes the error response
// and returns ok=false.
func decodeMixedBatch(w http.ResponseWriter, r *http.Request, reg *Registry) (fs []*tt.TT, raw []string, ok bool) {
	return service.DecodeBatchWith(w, r, service.MaxBodyBytes(reg.MaxVars()),
		func(_ int, s string) (*tt.TT, error) {
			n, err := reg.ArityOfHex(s)
			if err != nil {
				return nil, err
			}
			return tt.FromHex(n, s)
		})
}
