package federation

import (
	"errors"
	"fmt"
	"net/http"

	"repro/internal/service"
	"repro/internal/tt"
)

// NewHandler returns the federated HTTP/JSON API over reg. The wire
// format is the single-arity service API with one relaxation: a batch may
// mix arities, and each function's arity is inferred from its hex length
// (2^n/4 digits, unique per arity for n ≥ 2).
//
//	POST /v1/classify  mixed-arity batch lookup (read-only)
//	POST /v1/insert    mixed-arity batch insert
//	POST /v1/compact   admin: fold every arity's sealed WAL segments into
//	                   its snapshot (409 on a non-durable registry)
//	GET  /v1/stats     aggregate totals + per-arity breakdown
//	GET  /healthz      liveness + federated range
//
// A durable registry additionally serves its write-ahead log to
// replication followers (internal/replica); all three answer 409 on a
// non-durable registry:
//
//	GET /v1/wal/segments             per-arity segment manifest
//	GET /v1/wal/snapshot/{arity}     the arity's base snapshot file
//	GET /v1/wal/segment/{arity}/{seq}?offset=N
//	                                 raw segment bytes from offset
func NewHandler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/classify", func(w http.ResponseWriter, r *http.Request) {
		fs, raw, ok := decodeMixedBatch(w, r, reg)
		if !ok {
			return
		}
		results, err := reg.Classify(fs)
		if err != nil {
			service.WriteError(w, http.StatusBadRequest, "%v", err)
			return
		}
		service.WriteJSON(w, http.StatusOK, service.EncodeClassifyResults(raw, results))
	})
	mux.HandleFunc("POST /v1/insert", func(w http.ResponseWriter, r *http.Request) {
		fs, raw, ok := decodeMixedBatch(w, r, reg)
		if !ok {
			return
		}
		results, err := reg.Insert(fs)
		if err != nil {
			service.WriteError(w, http.StatusBadRequest, "%v", err)
			return
		}
		if refused := service.CountRefusedInserts(results); refused > 0 {
			service.WriteError(w, http.StatusInternalServerError,
				"%d of %d inserts refused: journal failure, classes not durable", refused, len(results))
			return
		}
		service.WriteJSON(w, http.StatusOK, service.EncodeInsertResults(raw, results))
	})
	mux.HandleFunc("POST /v1/compact", func(w http.ResponseWriter, r *http.Request) {
		results, err := reg.CompactAll()
		if errors.Is(err, ErrNotDurable) {
			service.WriteError(w, http.StatusConflict, "%v", err)
			return
		}
		if err != nil {
			service.WriteError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		service.WriteJSON(w, http.StatusOK, map[string]any{"arities": results})
	})
	mux.HandleFunc("GET /v1/wal/segments", handleWALManifest(reg))
	mux.HandleFunc("GET /v1/wal/snapshot/{arity}", handleWALSnapshot(reg))
	mux.HandleFunc("GET /v1/wal/segment/{arity}/{seq}", handleWALSegment(reg))
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		service.WriteJSON(w, http.StatusOK, reg.Stats())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		service.WriteJSON(w, http.StatusOK, map[string]any{
			"status":   "ok",
			"min_vars": reg.MinVars(),
			"max_vars": reg.MaxVars(),
			"active":   reg.Active(),
		})
	})
	return mux
}

// ArityOfHex maps a hex truth table to the unique federated arity whose
// encoding has its length (service.HexDigits, unique per arity for
// n ≥ 2).
func (r *Registry) ArityOfHex(s string) (int, error) {
	for n := r.lo; n <= r.hi; n++ {
		if service.HexDigits(n) == len(s) {
			return n, nil
		}
	}
	return 0, fmt.Errorf("hex truth table of %d digits matches no federated arity %d..%d (want one of %s)",
		len(s), r.lo, r.hi, r.arityLengths())
}

// arityLengths renders the accepted hex lengths, for error messages.
func (r *Registry) arityLengths() string {
	out := ""
	for n := r.lo; n <= r.hi; n++ {
		if n > r.lo {
			out += ","
		}
		out += fmt.Sprint(service.HexDigits(n))
	}
	return out
}

// decodeMixedBatch parses and validates a mixed-arity ClassifyRequest
// body: the shared service envelope rules, with each function's arity
// resolved from its hex length. On failure it writes the error response
// and returns ok=false.
func decodeMixedBatch(w http.ResponseWriter, r *http.Request, reg *Registry) (fs []*tt.TT, raw []string, ok bool) {
	return service.DecodeBatchWith(w, r, service.MaxBodyBytes(reg.MaxVars()),
		func(_ int, s string) (*tt.TT, error) {
			n, err := reg.ArityOfHex(s)
			if err != nil {
				return nil, err
			}
			return tt.FromHex(n, s)
		})
}
