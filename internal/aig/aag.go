package aig

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements the ASCII AIGER format ("aag"), the interchange
// format the EPFL benchmark suite ships in. Supporting it means the paper's
// original workload pipeline can be run unchanged on the real benchmark
// files when they are available: ReadAAG → cut.Harvest → core.Classify.
// Only combinational AIGs are supported (latches are rejected).
//
// AIGER literal convention: variable v ↦ literals 2v (positive) and 2v+1
// (negated); variable 0 is constant false. Inputs are variables 1..I; AND
// definitions follow in topological order. This matches the package's own
// literal packing, so conversion is direct.

// WriteAAG serializes g in ASCII AIGER format.
func WriteAAG(w io.Writer, g *AIG) error {
	bw := bufio.NewWriter(w)
	maxVar := g.NumNodes() - 1
	fmt.Fprintf(bw, "aag %d %d 0 %d %d\n", maxVar, g.NumPIs(), len(g.pos), g.NumAnds())
	for i := 0; i < g.NumPIs(); i++ {
		fmt.Fprintln(bw, uint32(g.PI(i)))
	}
	for _, po := range g.pos {
		fmt.Fprintln(bw, uint32(po))
	}
	for n := uint32(1 + g.NumPIs()); int(n) < g.NumNodes(); n++ {
		f0, f1 := g.Fanins(n)
		fmt.Fprintf(bw, "%d %d %d\n", n<<1, uint32(f0), uint32(f1))
	}
	return bw.Flush()
}

// ReadAAG parses an ASCII AIGER file. Latches are rejected; AND definitions
// must be in topological order with ascending left-hand sides, as the
// format requires for reencoded files.
func ReadAAG(r io.Reader) (*AIG, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<22)
	if !sc.Scan() {
		return nil, fmt.Errorf("aig: empty AAG input")
	}
	fields := strings.Fields(sc.Text())
	if len(fields) != 6 || fields[0] != "aag" {
		return nil, fmt.Errorf("aig: bad AAG header %q", sc.Text())
	}
	nums := make([]int, 5)
	for i := 0; i < 5; i++ {
		v, err := strconv.Atoi(fields[i+1])
		if err != nil || v < 0 {
			return nil, fmt.Errorf("aig: bad AAG header field %q", fields[i+1])
		}
		nums[i] = v
	}
	maxVar, numIn, numLatch, numOut, numAnd := nums[0], nums[1], nums[2], nums[3], nums[4]
	if numLatch != 0 {
		return nil, fmt.Errorf("aig: sequential AAG not supported (%d latches)", numLatch)
	}
	if maxVar != numIn+numAnd {
		return nil, fmt.Errorf("aig: AAG header inconsistent: M=%d, I+A=%d", maxVar, numIn+numAnd)
	}

	readLine := func() (string, error) {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return "", err
			}
			return "", io.ErrUnexpectedEOF
		}
		return strings.TrimSpace(sc.Text()), nil
	}

	g := New(numIn)
	for i := 0; i < numIn; i++ {
		line, err := readLine()
		if err != nil {
			return nil, fmt.Errorf("aig: reading input %d: %v", i, err)
		}
		v, err := strconv.Atoi(line)
		if err != nil || v != int(uint32(g.PI(i))) {
			return nil, fmt.Errorf("aig: input %d has literal %q, want %d", i, line, uint32(g.PI(i)))
		}
	}
	outLits := make([]uint32, numOut)
	for i := 0; i < numOut; i++ {
		line, err := readLine()
		if err != nil {
			return nil, fmt.Errorf("aig: reading output %d: %v", i, err)
		}
		v, err := strconv.Atoi(line)
		if err != nil || v < 0 || v > 2*maxVar+1 {
			return nil, fmt.Errorf("aig: output %d literal %q out of range", i, line)
		}
		outLits[i] = uint32(v)
	}
	for i := 0; i < numAnd; i++ {
		line, err := readLine()
		if err != nil {
			return nil, fmt.Errorf("aig: reading AND %d: %v", i, err)
		}
		parts := strings.Fields(line)
		if len(parts) != 3 {
			return nil, fmt.Errorf("aig: AND line %q malformed", line)
		}
		vals := make([]int, 3)
		for k, p := range parts {
			v, err := strconv.Atoi(p)
			if err != nil || v < 0 {
				return nil, fmt.Errorf("aig: AND literal %q invalid", p)
			}
			vals[k] = v
		}
		lhs, rhs0, rhs1 := vals[0], vals[1], vals[2]
		wantLHS := 2 * (1 + numIn + i)
		if lhs != wantLHS {
			return nil, fmt.Errorf("aig: AND %d lhs %d, want %d (reencoded topological order required)", i, lhs, wantLHS)
		}
		if rhs0 >= lhs || rhs1 >= lhs {
			return nil, fmt.Errorf("aig: AND %d fanins (%d, %d) not earlier than lhs %d", i, rhs0, rhs1, lhs)
		}
		// Insert without strashing/rewrite so node numbering is preserved.
		g.nodes = append(g.nodes, node{fan0: Lit(rhs0), fan1: Lit(rhs1)})
	}
	for _, l := range outLits {
		if int(l>>1) >= g.NumNodes() {
			return nil, fmt.Errorf("aig: output literal %d references missing node", l)
		}
		g.AddPO(Lit(l))
	}
	return g, nil
}
