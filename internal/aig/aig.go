// Package aig implements structurally hashed And-Inverter Graphs, the
// circuit representation the paper's benchmark pipeline is built on: EPFL
// benchmark circuits are represented as AIGs, k-feasible cuts are enumerated
// over them (internal/cut), and each cut's local function becomes one truth
// table of the classification workload.
//
// Representation: node 0 is the constant-false node, nodes 1..NumPIs are
// primary inputs, and the remaining nodes are two-input AND gates created in
// topological order. A literal packs a node id with a complement bit.
package aig

import "fmt"

// Lit is a literal: node id << 1 | complement bit.
type Lit uint32

// MakeLit builds a literal from a node id and complement flag.
func MakeLit(node uint32, compl bool) Lit {
	l := Lit(node << 1)
	if compl {
		l |= 1
	}
	return l
}

// Node returns the node id of the literal.
func (l Lit) Node() uint32 { return uint32(l) >> 1 }

// Compl reports whether the literal is complemented.
func (l Lit) Compl() bool { return l&1 == 1 }

// Not returns the complemented literal.
func (l Lit) Not() Lit { return l ^ 1 }

// ConstFalse and ConstTrue are the constant literals of node 0.
const (
	ConstFalse = Lit(0)
	ConstTrue  = Lit(1)
)

type node struct {
	fan0, fan1 Lit
}

// AIG is a combinational and-inverter graph.
type AIG struct {
	nodes  []node
	numPIs int
	pos    []Lit
	strash map[[2]Lit]uint32
}

// New returns an empty AIG with the given number of primary inputs.
func New(numPIs int) *AIG {
	g := &AIG{numPIs: numPIs, strash: make(map[[2]Lit]uint32)}
	g.nodes = make([]node, 1+numPIs) // const + PIs
	return g
}

// NumPIs returns the number of primary inputs.
func (g *AIG) NumPIs() int { return g.numPIs }

// NumNodes returns the total node count (constant + PIs + ANDs).
func (g *AIG) NumNodes() int { return len(g.nodes) }

// NumAnds returns the number of AND nodes.
func (g *AIG) NumAnds() int { return len(g.nodes) - 1 - g.numPIs }

// PI returns the literal of primary input i (0-based).
func (g *AIG) PI(i int) Lit {
	if i < 0 || i >= g.numPIs {
		panic(fmt.Sprintf("aig: PI %d out of range", i))
	}
	return MakeLit(uint32(1+i), false)
}

// IsPI reports whether the node id is a primary input.
func (g *AIG) IsPI(n uint32) bool { return n >= 1 && int(n) <= g.numPIs }

// IsAnd reports whether the node id is an AND gate.
func (g *AIG) IsAnd(n uint32) bool { return int(n) > g.numPIs && int(n) < len(g.nodes) }

// Fanins returns the two fanin literals of an AND node.
func (g *AIG) Fanins(n uint32) (Lit, Lit) {
	if !g.IsAnd(n) {
		panic(fmt.Sprintf("aig: node %d is not an AND", n))
	}
	nd := g.nodes[n]
	return nd.fan0, nd.fan1
}

// And returns a literal for a∧b, applying constant/idempotence rules and
// structural hashing before creating a node.
func (g *AIG) And(a, b Lit) Lit {
	// Trivial rules.
	switch {
	case a == ConstFalse || b == ConstFalse:
		return ConstFalse
	case a == ConstTrue:
		return b
	case b == ConstTrue:
		return a
	case a == b:
		return a
	case a == b.Not():
		return ConstFalse
	}
	if a > b {
		a, b = b, a
	}
	key := [2]Lit{a, b}
	if n, ok := g.strash[key]; ok {
		return MakeLit(n, false)
	}
	n := uint32(len(g.nodes))
	g.nodes = append(g.nodes, node{fan0: a, fan1: b})
	g.strash[key] = n
	return MakeLit(n, false)
}

// Or returns a∨b.
func (g *AIG) Or(a, b Lit) Lit { return g.And(a.Not(), b.Not()).Not() }

// Xor returns a⊕b (two AND nodes).
func (g *AIG) Xor(a, b Lit) Lit {
	return g.Or(g.And(a, b.Not()), g.And(a.Not(), b))
}

// Xnor returns ¬(a⊕b).
func (g *AIG) Xnor(a, b Lit) Lit { return g.Xor(a, b).Not() }

// Mux returns s ? t : e.
func (g *AIG) Mux(s, t, e Lit) Lit {
	return g.Or(g.And(s, t), g.And(s.Not(), e))
}

// Maj returns the majority of three literals.
func (g *AIG) Maj(a, b, c Lit) Lit {
	return g.Or(g.And(a, b), g.Or(g.And(a, c), g.And(b, c)))
}

// AddPO registers a primary output literal.
func (g *AIG) AddPO(l Lit) { g.pos = append(g.pos, l) }

// POs returns the registered primary outputs.
func (g *AIG) POs() []Lit { return g.pos }

// Level returns the per-node logic depth (PIs and constant at level 0).
func (g *AIG) Level() []int {
	lv := make([]int, len(g.nodes))
	for n := uint32(1 + g.numPIs); int(n) < len(g.nodes); n++ {
		nd := g.nodes[n]
		l0, l1 := lv[nd.fan0.Node()], lv[nd.fan1.Node()]
		if l0 > l1 {
			lv[n] = l0 + 1
		} else {
			lv[n] = l1 + 1
		}
	}
	return lv
}

// ConeSize returns the number of AND nodes in the transitive fanin cone of
// the given node.
func (g *AIG) ConeSize(root uint32) int {
	seen := make(map[uint32]bool)
	var dfs func(n uint32)
	count := 0
	dfs = func(n uint32) {
		if seen[n] || !g.IsAnd(n) {
			return
		}
		seen[n] = true
		count++
		nd := g.nodes[n]
		dfs(nd.fan0.Node())
		dfs(nd.fan1.Node())
	}
	dfs(root)
	return count
}
