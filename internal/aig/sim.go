package aig

import "repro/internal/tt"

// Simulate evaluates every node under word-parallel input patterns: pi[i] is
// the bit-pattern slice of primary input i (all the same length). The result
// is indexed by node id; each entry has the same word length.
func (g *AIG) Simulate(pi [][]uint64) [][]uint64 {
	if len(pi) != g.numPIs {
		panic("aig: Simulate needs one pattern per PI")
	}
	nw := 0
	if g.numPIs > 0 {
		nw = len(pi[0])
	}
	vals := make([][]uint64, len(g.nodes))
	vals[0] = make([]uint64, nw) // constant false
	for i := 0; i < g.numPIs; i++ {
		if len(pi[i]) != nw {
			panic("aig: Simulate pattern lengths differ")
		}
		vals[1+i] = pi[i]
	}
	fetch := func(l Lit, w int) uint64 {
		v := vals[l.Node()][w]
		if l.Compl() {
			return ^v
		}
		return v
	}
	for n := 1 + g.numPIs; n < len(g.nodes); n++ {
		nd := g.nodes[n]
		row := make([]uint64, nw)
		for w := 0; w < nw; w++ {
			row[w] = fetch(nd.fan0, w) & fetch(nd.fan1, w)
		}
		vals[n] = row
	}
	return vals
}

// GlobalFunc computes the truth table of a literal in terms of all primary
// inputs. The PI count must be at most tt.MaxVars.
func (g *AIG) GlobalFunc(l Lit) *tt.TT {
	n := g.numPIs
	pi := make([][]uint64, n)
	for i := 0; i < n; i++ {
		pi[i] = tt.Projection(n, i).Words()
	}
	vals := g.Simulate(pi)
	out := tt.New(n)
	copy(out.Words(), vals[l.Node()])
	if l.Compl() {
		out.NotInPlace() // also clears padding
	} else {
		out.Normalize()
	}
	return out
}
