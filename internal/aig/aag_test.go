package aig

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func buildSample() *AIG {
	g := New(3)
	a, b, c := g.PI(0), g.PI(1), g.PI(2)
	m := g.Maj(a, b, c)
	x := g.Xor(a, b)
	g.AddPO(m)
	g.AddPO(x.Not())
	return g
}

func TestAAGRoundTrip(t *testing.T) {
	g := buildSample()
	var buf bytes.Buffer
	if err := WriteAAG(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := ReadAAG(&buf)
	if err != nil {
		t.Fatalf("ReadAAG: %v", err)
	}
	if h.NumPIs() != g.NumPIs() || h.NumAnds() != g.NumAnds() || len(h.POs()) != len(g.POs()) {
		t.Fatal("shape changed in round trip")
	}
	for i, po := range g.POs() {
		want := g.GlobalFunc(po)
		got := h.GlobalFunc(h.POs()[i])
		if !got.Equal(want) {
			t.Fatalf("PO %d function changed: %s vs %s", i, got.Hex(), want.Hex())
		}
	}
}

func TestReadAAGMinimal(t *testing.T) {
	// Single AND of two inputs, output the AND.
	src := "aag 3 2 0 1 1\n2\n4\n6\n6 2 4\n"
	g, err := ReadAAG(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	f := g.GlobalFunc(g.POs()[0])
	if f.Hex() != "8" {
		t.Errorf("and2 = %s, want 8", f.Hex())
	}
}

func TestReadAAGConstantOutputs(t *testing.T) {
	// Outputs may reference constants: 0 = false, 1 = true.
	src := "aag 1 1 0 2 0\n2\n0\n1\n"
	g, err := ReadAAG(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if !g.GlobalFunc(g.POs()[0]).IsConst0() || !g.GlobalFunc(g.POs()[1]).IsConst1() {
		t.Error("constant outputs wrong")
	}
}

func TestReadAAGErrors(t *testing.T) {
	cases := map[string]string{
		"empty":            "",
		"bad magic":        "aig 1 1 0 0 0\n2\n",
		"short header":     "aag 1 1 0\n",
		"negative field":   "aag 1 -1 0 0 0\n",
		"latches":          "aag 2 1 1 0 0\n2\n4 2\n",
		"inconsistent M":   "aag 5 1 0 0 1\n2\n4 2 2\n",
		"bad input lit":    "aag 3 2 0 1 1\n2\n5\n6\n6 2 4\n",
		"output range":     "aag 3 2 0 1 1\n2\n4\n99\n6 2 4\n",
		"and lhs order":    "aag 3 2 0 1 1\n2\n4\n6\n8 2 4\n",
		"and fanin fwd":    "aag 3 2 0 1 1\n2\n4\n6\n6 6 4\n",
		"and malformed":    "aag 3 2 0 1 1\n2\n4\n6\n6 2\n",
		"truncated inputs": "aag 3 2 0 1 1\n2\n",
		"truncated ands":   "aag 3 2 0 1 1\n2\n4\n6\n",
	}
	for name, src := range cases {
		if _, err := ReadAAG(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestWriteAAGHeaderShape(t *testing.T) {
	g := buildSample()
	var buf bytes.Buffer
	if err := WriteAAG(&buf, g); err != nil {
		t.Fatal(err)
	}
	first := strings.SplitN(buf.String(), "\n", 2)[0]
	var m, i, l, o, a int
	if _, err := fmt.Sscanf(first, "aag %d %d %d %d %d", &m, &i, &l, &o, &a); err != nil {
		t.Fatalf("header %q: %v", first, err)
	}
	if i != 3 || l != 0 || o != 2 || m != i+a {
		t.Errorf("header fields wrong: %q", first)
	}
}
