package aig

import (
	"math/rand"
	"testing"

	"repro/internal/tt"
)

func TestLitPacking(t *testing.T) {
	l := MakeLit(5, true)
	if l.Node() != 5 || !l.Compl() {
		t.Error("MakeLit/Node/Compl wrong")
	}
	if l.Not().Compl() || l.Not().Node() != 5 {
		t.Error("Not wrong")
	}
	if ConstTrue != ConstFalse.Not() {
		t.Error("constants wrong")
	}
}

func TestAndTrivialRules(t *testing.T) {
	g := New(2)
	a, b := g.PI(0), g.PI(1)
	if g.And(a, ConstFalse) != ConstFalse {
		t.Error("a∧0 != 0")
	}
	if g.And(ConstTrue, b) != b {
		t.Error("1∧b != b")
	}
	if g.And(a, a) != a {
		t.Error("a∧a != a")
	}
	if g.And(a, a.Not()) != ConstFalse {
		t.Error("a∧¬a != 0")
	}
	if g.NumAnds() != 0 {
		t.Error("trivial rules created nodes")
	}
}

func TestStructuralHashing(t *testing.T) {
	g := New(2)
	a, b := g.PI(0), g.PI(1)
	x := g.And(a, b)
	y := g.And(b, a) // commuted
	if x != y {
		t.Error("strashing missed commuted AND")
	}
	if g.NumAnds() != 1 {
		t.Errorf("NumAnds = %d, want 1", g.NumAnds())
	}
}

func TestGlobalFuncGates(t *testing.T) {
	g := New(3)
	a, b, c := g.PI(0), g.PI(1), g.PI(2)

	cases := []struct {
		lit  Lit
		want func(x int) bool
	}{
		{g.And(a, b), func(x int) bool { return x&1 == 1 && x>>1&1 == 1 }},
		{g.Or(a, b), func(x int) bool { return x&1 == 1 || x>>1&1 == 1 }},
		{g.Xor(a, b), func(x int) bool { return x&1 != x>>1&1 }},
		{g.Xnor(a, c), func(x int) bool { return x&1 == x>>2&1 }},
		{g.Mux(a, b, c), func(x int) bool {
			if x&1 == 1 {
				return x>>1&1 == 1
			}
			return x>>2&1 == 1
		}},
		{g.Maj(a, b, c), func(x int) bool { return x&1+x>>1&1+x>>2&1 >= 2 }},
		{a.Not(), func(x int) bool { return x&1 == 0 }},
		{ConstTrue, func(x int) bool { return true }},
	}
	for i, tc := range cases {
		got := g.GlobalFunc(tc.lit)
		want := tt.FromFunc(3, tc.want)
		if !got.Equal(want) {
			t.Errorf("case %d: got %s want %s", i, got.Hex(), want.Hex())
		}
	}
}

func TestMaj3MatchesPaperTable(t *testing.T) {
	g := New(3)
	m := g.Maj(g.PI(0), g.PI(1), g.PI(2))
	if got := g.GlobalFunc(m).Hex(); got != "e8" {
		t.Errorf("majority = %s, want e8", got)
	}
}

func TestSimulateRandomAgainstGlobalFunc(t *testing.T) {
	rng := rand.New(rand.NewSource(110))
	g := New(4)
	lits := []Lit{g.PI(0), g.PI(1), g.PI(2), g.PI(3)}
	// Build a random layered circuit.
	for i := 0; i < 30; i++ {
		a := lits[rng.Intn(len(lits))]
		b := lits[rng.Intn(len(lits))]
		if rng.Intn(2) == 0 {
			a = a.Not()
		}
		if rng.Intn(2) == 0 {
			b = b.Not()
		}
		lits = append(lits, g.And(a, b))
	}
	out := lits[len(lits)-1]
	g.AddPO(out)
	f := g.GlobalFunc(out)
	// Evaluate pointwise through Simulate with unit patterns.
	for x := 0; x < 16; x++ {
		pi := make([][]uint64, 4)
		for i := range pi {
			v := uint64(0)
			if x>>i&1 == 1 {
				v = 1
			}
			pi[i] = []uint64{v}
		}
		vals := g.Simulate(pi)
		got := vals[out.Node()][0]&1 == 1
		if out.Compl() {
			got = !got
		}
		if got != f.Get(x) {
			t.Fatalf("simulate disagrees with GlobalFunc at %d", x)
		}
	}
	if len(g.POs()) != 1 || g.POs()[0] != out {
		t.Error("PO bookkeeping wrong")
	}
}

func TestLevelAndConeSize(t *testing.T) {
	g := New(2)
	a, b := g.PI(0), g.PI(1)
	x := g.Xor(a, b) // 3 AND nodes, depth 2
	lv := g.Level()
	if lv[x.Node()] != 2 {
		t.Errorf("xor depth = %d, want 2", lv[x.Node()])
	}
	if got := g.ConeSize(x.Node()); got != 3 {
		t.Errorf("xor cone size = %d, want 3", got)
	}
	if g.ConeSize(a.Node()) != 0 {
		t.Error("PI cone size must be 0")
	}
}

func TestPIBoundsPanic(t *testing.T) {
	g := New(2)
	defer func() {
		if recover() == nil {
			t.Error("PI out of range accepted")
		}
	}()
	g.PI(2)
}

func TestFaninsPanicsOnPI(t *testing.T) {
	g := New(1)
	defer func() {
		if recover() == nil {
			t.Error("Fanins of PI accepted")
		}
	}()
	g.Fanins(1)
}
