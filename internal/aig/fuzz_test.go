package aig

import (
	"strings"
	"testing"
)

// FuzzReadAAG checks the AIGER parser never panics on malformed input and
// that every accepted graph re-serializes to something it accepts again.
func FuzzReadAAG(f *testing.F) {
	f.Add("aag 3 2 0 1 1\n2\n4\n6\n6 2 4\n")
	f.Add("aag 1 1 0 2 0\n2\n0\n1\n")
	f.Add("")
	f.Add("aag x")
	f.Add("aag 2 1 1 0 0\n2\n4 2\n")
	f.Fuzz(func(t *testing.T, src string) {
		g, err := ReadAAG(strings.NewReader(src))
		if err != nil {
			return
		}
		var sb strings.Builder
		if err := WriteAAG(&sb, g); err != nil {
			t.Fatalf("accepted graph failed to serialize: %v", err)
		}
		if _, err := ReadAAG(strings.NewReader(sb.String())); err != nil {
			t.Fatalf("own serialization rejected: %v", err)
		}
	})
}
