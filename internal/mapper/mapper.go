// Package mapper implements cut-based k-LUT technology mapping over AIGs —
// the paper's headline application: a mapper enumerates cuts, and NPN
// classification of each cut function is what makes cell-library lookup
// feasible (one pre-characterized implementation per class instead of per
// function). The mapper here is the standard two-pass algorithm: a forward
// pass chooses each node's best cut by arrival time (depth mode) or
// area-flow (area mode); a backward pass covers the network from the
// primary outputs. The result carries every chosen LUT's local function and
// the NPN class census of the mapping.
package mapper

import (
	"fmt"

	"repro/internal/aig"
	"repro/internal/core"
	"repro/internal/cut"
	"repro/internal/tt"
)

// Mode selects the optimization objective.
type Mode int

const (
	// Depth minimizes the LUT-level depth of the mapping.
	Depth Mode = iota
	// Area greedily minimizes area flow (a proxy for LUT count).
	Area
)

// Options configures the mapper.
type Options struct {
	K           int // LUT size (cut width), 2..8 typical
	CutsPerNode int // priority cuts kept per node (0 = 8)
	Mode        Mode
}

// LUT is one lookup table of the mapping.
type LUT struct {
	Root     uint32   // AIG node implemented by this LUT
	Leaves   []uint32 // AIG nodes feeding the LUT, in function variable order
	Function *tt.TT   // local function of Root over Leaves
	ClassKey uint64   // NPN class of the function (MSV hash)
}

// Result is a complete LUT mapping.
type Result struct {
	LUTs  []LUT
	Depth int // LUT levels on the longest PO path
	// Classes counts mapped LUT functions per NPN class key: the size of a
	// cell library needed to implement the mapping.
	Classes map[uint64]int
	// Funcs counts distinct local functions before classification.
	Funcs int
}

// Area returns the number of LUTs.
func (r *Result) Area() int { return len(r.LUTs) }

// NumClasses returns the NPN class census size.
func (r *Result) NumClasses() int { return len(r.Classes) }

// Map computes a k-LUT mapping of every primary output cone of g.
func Map(g *aig.AIG, opt Options) (*Result, error) {
	if opt.K < 2 || opt.K > tt.MaxVars {
		return nil, fmt.Errorf("mapper: K=%d out of range", opt.K)
	}
	if opt.CutsPerNode <= 0 {
		opt.CutsPerNode = 8
	}
	cuts := cut.Enumerate(g, cut.Options{K: opt.K, MaxPerNode: opt.CutsPerNode})

	// Forward pass: best cut and label per node.
	numNodes := g.NumNodes()
	arrival := make([]int, numNodes)
	flow := make([]float64, numNodes)
	bestCut := make([]int, numNodes) // index into cuts[n]
	for n := uint32(1 + g.NumPIs()); int(n) < numNodes; n++ {
		bestArr, bestFlow, bestIdx := int(^uint(0)>>1), 0.0, -1
		for ci, c := range cuts[n] {
			if c.Size() == 1 && c.Leaves[0] == n {
				continue // trivial self-cut cannot implement the node
			}
			arr := 0
			fl := 1.0
			for _, l := range c.Leaves {
				if arrival[l] > arr {
					arr = arrival[l]
				}
				fl += flow[l]
			}
			arr++
			better := false
			switch opt.Mode {
			case Depth:
				better = arr < bestArr || (arr == bestArr && fl < bestFlow)
			case Area:
				better = bestIdx == -1 || fl < bestFlow || (fl == bestFlow && arr < bestArr)
			}
			if bestIdx == -1 || better {
				bestArr, bestFlow, bestIdx = arr, fl, ci
			}
		}
		if bestIdx == -1 {
			return nil, fmt.Errorf("mapper: node %d has no implementable cut", n)
		}
		arrival[n] = bestArr
		flow[n] = bestFlow
		bestCut[n] = bestIdx
	}

	// Backward pass: cover from the POs.
	needed := make([]bool, numNodes)
	var order []uint32
	var visit func(n uint32)
	visit = func(n uint32) {
		if needed[n] || !g.IsAnd(n) {
			return
		}
		needed[n] = true
		order = append(order, n)
		for _, l := range cuts[n][bestCut[n]].Leaves {
			visit(l)
		}
	}
	for _, po := range g.POs() {
		visit(po.Node())
	}

	cls := core.New(opt.K, coreConfig())
	res := &Result{Classes: make(map[uint64]int)}
	funcs := make(map[string]bool)
	for _, n := range order {
		c := cuts[n][bestCut[n]]
		f := cut.Function(g, n, c.Leaves)
		// Pad to K variables so one classifier serves all LUTs.
		fk := f
		if f.NumVars() < opt.K {
			fk = f.Extend(opt.K)
		}
		key := cls.Hash(fk)
		res.LUTs = append(res.LUTs, LUT{Root: n, Leaves: c.Leaves, Function: f, ClassKey: key})
		res.Classes[key]++
		funcs[fk.Hex()] = true
	}
	res.Funcs = len(funcs)
	for _, po := range g.POs() {
		if n := po.Node(); g.IsAnd(n) && arrival[n] > res.Depth {
			res.Depth = arrival[n]
		}
	}
	return res, nil
}

func coreConfig() core.Config {
	cfg := core.ConfigAll()
	cfg.FastOSDV = true
	return cfg
}

// Verify checks the mapping functionally and exhaustively: the global
// function of every primary output of the LUT network must equal the
// original AIG's. It requires the PI count to fit in a truth table
// (≤ tt.MaxVars); use VerifySampled beyond that.
func Verify(g *aig.AIG, r *Result) error {
	if g.NumPIs() > tt.MaxVars {
		return fmt.Errorf("mapper: %d PIs exceed exhaustive verification limit %d; use VerifySampled", g.NumPIs(), tt.MaxVars)
	}
	// Global function of every mapped root via its LUT structure.
	val := make(map[uint32]*tt.TT)
	nPI := g.NumPIs()
	for i := 0; i < nPI; i++ {
		val[g.PI(i).Node()] = tt.Projection(nPI, i)
	}
	val[0] = tt.New(nPI)

	var eval func(n uint32) (*tt.TT, error)
	lutOf := make(map[uint32]*LUT)
	for i := range r.LUTs {
		lutOf[r.LUTs[i].Root] = &r.LUTs[i]
	}
	eval = func(n uint32) (*tt.TT, error) {
		if v, ok := val[n]; ok {
			return v, nil
		}
		l, ok := lutOf[n]
		if !ok {
			return nil, fmt.Errorf("mapper: node %d not covered by any LUT", n)
		}
		// Compose: substitute each leaf's global function into the LUT's
		// local function by Shannon-style evaluation over minterms.
		leafFns := make([]*tt.TT, len(l.Leaves))
		for i, leaf := range l.Leaves {
			lf, err := eval(leaf)
			if err != nil {
				return nil, err
			}
			leafFns[i] = lf
		}
		out := tt.New(nPI)
		for x := 0; x < out.NumBits(); x++ {
			idx := 0
			for i, lf := range leafFns {
				if lf.Get(x) {
					idx |= 1 << uint(i)
				}
			}
			if l.Function.Get(idx) {
				out.Set(x, true)
			}
		}
		val[n] = out
		return out, nil
	}

	for i, po := range g.POs() {
		want := g.GlobalFunc(po)
		n := po.Node()
		var got *tt.TT
		if g.IsAnd(n) {
			v, err := eval(n)
			if err != nil {
				return err
			}
			got = v
		} else if g.IsPI(n) {
			got = tt.Projection(nPI, int(n-1))
		} else {
			got = tt.New(nPI) // constant node
		}
		if po.Compl() {
			got = got.Not()
		}
		if !got.Equal(want) {
			return fmt.Errorf("mapper: PO %d function mismatch after mapping", i)
		}
	}
	return nil
}
