package mapper

import (
	"fmt"
	"math/rand"

	"repro/internal/aig"
)

// VerifySampled checks the mapping against the original AIG on `words`
// 64-bit random input patterns per primary input (so words·64 random
// vectors total). It works for any PI count; a mismatch is a definite
// mapping bug, agreement is probabilistic evidence (standard random
// simulation equivalence checking).
func VerifySampled(g *aig.AIG, r *Result, words int, seed int64) error {
	if words <= 0 {
		words = 16
	}
	rng := rand.New(rand.NewSource(seed))
	nPI := g.NumPIs()
	pi := make([][]uint64, nPI)
	for i := range pi {
		row := make([]uint64, words)
		for w := range row {
			row[w] = rng.Uint64()
		}
		pi[i] = row
	}

	// Reference: simulate the AIG.
	ref := g.Simulate(pi)

	// Simulate the LUT network in dependency order.
	lutOf := make(map[uint32]*LUT, len(r.LUTs))
	for i := range r.LUTs {
		lutOf[r.LUTs[i].Root] = &r.LUTs[i]
	}
	val := make(map[uint32][]uint64, len(r.LUTs)+nPI+1)
	val[0] = make([]uint64, words)
	for i := 0; i < nPI; i++ {
		val[g.PI(i).Node()] = pi[i]
	}
	var eval func(n uint32) ([]uint64, error)
	eval = func(n uint32) ([]uint64, error) {
		if v, ok := val[n]; ok {
			return v, nil
		}
		l, ok := lutOf[n]
		if !ok {
			return nil, fmt.Errorf("mapper: node %d not covered by any LUT", n)
		}
		leafVals := make([][]uint64, len(l.Leaves))
		for i, leaf := range l.Leaves {
			lv, err := eval(leaf)
			if err != nil {
				return nil, err
			}
			leafVals[i] = lv
		}
		out := make([]uint64, words)
		for w := 0; w < words; w++ {
			var word uint64
			for b := 0; b < 64; b++ {
				idx := 0
				for i := range leafVals {
					idx |= int(leafVals[i][w]>>uint(b)&1) << uint(i)
				}
				if l.Function.Get(idx) {
					word |= 1 << uint(b)
				}
			}
			out[w] = word
		}
		val[n] = out
		return out, nil
	}

	for i, po := range g.POs() {
		n := po.Node()
		var got []uint64
		if g.IsAnd(n) {
			v, err := eval(n)
			if err != nil {
				return err
			}
			got = v
		} else {
			got = val[n]
		}
		// The PO complement applies to both sides equally, so the node
		// values themselves must agree.
		for w := 0; w < words; w++ {
			if got[w] != ref[n][w] {
				return fmt.Errorf("mapper: PO %d mismatch on sampled patterns (word %d)", i, w)
			}
		}
	}
	return nil
}
