package mapper

import (
	"testing"

	"repro/internal/aig"
	"repro/internal/gen"
)

func TestMapAndVerifyArithmetic(t *testing.T) {
	circuits := map[string]func() *aig.AIG{
		"adder8":  func() *aig.AIG { return gen.RippleCarryAdder(8) },
		"mult4":   func() *aig.AIG { return gen.ArrayMultiplier(4) },
		"cmp6":    func() *aig.AIG { return gen.Comparator(6) },
		"alu4":    func() *aig.AIG { return gen.ALUSlice(4) },
		"shift8":  func() *aig.AIG { return gen.BarrelShifter(8) },
		"parity9": func() *aig.AIG { return gen.ParityTree(9) },
	}
	for name, mk := range circuits {
		for _, k := range []int{4, 6} {
			g := mk()
			r, err := Map(g, Options{K: k, Mode: Depth})
			if err != nil {
				t.Fatalf("%s k=%d: %v", name, k, err)
			}
			if r.Area() == 0 {
				t.Fatalf("%s k=%d: empty mapping", name, k)
			}
			if err := Verify(g, r); err != nil {
				t.Fatalf("%s k=%d: %v", name, k, err)
			}
			// Classification must compress the library: classes ≤ functions.
			if r.NumClasses() > r.Funcs {
				t.Fatalf("%s k=%d: %d classes > %d functions", name, k, r.NumClasses(), r.Funcs)
			}
		}
	}
}

func TestDepthVsAreaMode(t *testing.T) {
	g := gen.ArrayMultiplier(5)
	depth, err := Map(g, Options{K: 5, Mode: Depth})
	if err != nil {
		t.Fatal(err)
	}
	area, err := Map(g, Options{K: 5, Mode: Area})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, depth); err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, area); err != nil {
		t.Fatal(err)
	}
	// Depth mode must not be deeper than area mode.
	if depth.Depth > area.Depth {
		t.Errorf("depth mode deeper (%d) than area mode (%d)", depth.Depth, area.Depth)
	}
	// Area mode should not use more LUTs than depth mode (usually fewer).
	if area.Area() > depth.Area()*2 {
		t.Errorf("area mode used %d LUTs vs depth mode %d", area.Area(), depth.Area())
	}
}

func TestDepthBound(t *testing.T) {
	// A parity tree of 16 inputs maps into 6-LUTs with depth 2
	// (16 = 6·... first level covers ≤6 inputs: depth ≥ 2; mapper must hit 2).
	g := gen.ParityTree(16)
	r, err := Map(g, Options{K: 6, Mode: Depth})
	if err != nil {
		t.Fatal(err)
	}
	if r.Depth > 3 {
		t.Errorf("parity16 mapped to depth %d, expected ≤ 3", r.Depth)
	}
	if err := Verify(g, r); err != nil {
		t.Fatal(err)
	}
}

func TestClassCensusCompression(t *testing.T) {
	// A multiplier's mapping should reuse classes heavily: the census must
	// be far smaller than the LUT count.
	g := gen.ArrayMultiplier(6)
	r, err := Map(g, Options{K: 4, Mode: Area})
	if err != nil {
		t.Fatal(err)
	}
	if r.NumClasses()*2 > r.Area() {
		t.Errorf("little class reuse: %d classes for %d LUTs", r.NumClasses(), r.Area())
	}
}

func TestVerifySampledLargeCircuit(t *testing.T) {
	g := gen.RippleCarryAdder(16) // 32 PIs: beyond exhaustive verification
	r, err := Map(g, Options{K: 6, Mode: Depth})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, r); err == nil {
		t.Error("exhaustive verify must refuse 32 PIs")
	}
	if err := VerifySampled(g, r, 32, 7); err != nil {
		t.Fatalf("sampled verification failed: %v", err)
	}
}

func TestVerifySampledDetectsCorruption(t *testing.T) {
	g := gen.ArrayMultiplier(5)
	r, err := Map(g, Options{K: 5, Mode: Depth})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one LUT's function: verification must notice.
	victim := &r.LUTs[len(r.LUTs)/2]
	victim.Function = victim.Function.Not()
	if err := VerifySampled(g, r, 8, 3); err == nil {
		t.Error("sampled verification missed a corrupted LUT")
	}
	if err := Verify(g, r); err == nil {
		t.Error("exhaustive verification missed a corrupted LUT")
	}
}

func TestVerifyDetectsMissingLUT(t *testing.T) {
	g := gen.Comparator(4)
	r, err := Map(g, Options{K: 4, Mode: Depth})
	if err != nil {
		t.Fatal(err)
	}
	// Drop a LUT whose root is a PO cone member: coverage hole.
	r.LUTs = r.LUTs[:len(r.LUTs)-1]
	errV := Verify(g, r)
	errS := VerifySampled(g, r, 4, 4)
	if errV == nil && errS == nil {
		t.Error("verification missed a coverage hole")
	}
}

func TestMapValidation(t *testing.T) {
	g := gen.RippleCarryAdder(2)
	if _, err := Map(g, Options{K: 1}); err == nil {
		t.Error("K=1 accepted")
	}
	if _, err := Map(g, Options{K: 99}); err == nil {
		t.Error("K=99 accepted")
	}
}
