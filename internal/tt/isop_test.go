package tt

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestISOPExactCover(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(170))}
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		f := Random(n, rng)
		cubes := f.ISOP()
		return CubesCover(cubes, n).Equal(f)
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestISOPIrredundant(t *testing.T) {
	rng := rand.New(rand.NewSource(171))
	for rep := 0; rep < 30; rep++ {
		n := 2 + rng.Intn(5)
		f := Random(n, rng)
		cubes := f.ISOP()
		for drop := range cubes {
			reduced := make([]Cube, 0, len(cubes)-1)
			reduced = append(reduced, cubes[:drop]...)
			reduced = append(reduced, cubes[drop+1:]...)
			if CubesCover(reduced, n).Equal(f) {
				t.Fatalf("cube %v redundant in ISOP of %s", cubes[drop], f.Hex())
			}
		}
	}
}

func TestISOPNamedFunctions(t *testing.T) {
	// Majority has the 3-cube cover {x0x1, x0x2, x1x2}.
	maj := MustFromHex(3, "e8")
	if got := len(maj.ISOP()); got != 3 {
		t.Errorf("majority ISOP has %d cubes, want 3", got)
	}
	// n-input XOR needs 2^(n-1) minterm cubes.
	for n := 2; n <= 5; n++ {
		xor := FromFunc(n, func(x int) bool {
			v := 0
			for b := 0; b < n; b++ {
				v ^= x >> b & 1
			}
			return v == 1
		})
		if got := len(xor.ISOP()); got != 1<<(n-1) {
			t.Errorf("xor%d ISOP has %d cubes, want %d", n, got, 1<<(n-1))
		}
	}
	// Constants.
	if len(New(3).ISOP()) != 0 {
		t.Error("const0 ISOP not empty")
	}
	one := Const(3, true)
	if c := one.ISOP(); len(c) != 1 || c[0].Mask != 0 {
		t.Error("const1 ISOP not the unit cube")
	}
}

func TestISOPAllSmallFunctions(t *testing.T) {
	// Exhaustive over all 3-variable functions: cover must be exact.
	for w := uint64(0); w < 256; w++ {
		f := FromWord(3, w)
		if !CubesCover(f.ISOP(), 3).Equal(f) {
			t.Fatalf("ISOP wrong for %02x", w)
		}
	}
}

func TestCubeStringAndEval(t *testing.T) {
	c := Cube{Mask: 0b101, Lits: 0b001}
	s := c.String()
	if !strings.Contains(s, "x0") || !strings.Contains(s, "¬x2") {
		t.Errorf("cube string = %q", s)
	}
	if c.NumLits() != 2 {
		t.Error("NumLits wrong")
	}
	ev := c.Eval(3)
	for x := 0; x < 8; x++ {
		want := x&1 == 1 && x>>2&1 == 0
		if ev.Get(x) != want {
			t.Fatalf("cube eval wrong at %d", x)
		}
	}
	if (Cube{}).String() != "1" {
		t.Error("empty cube string")
	}
}

func TestSOPString(t *testing.T) {
	if New(2).SOPString() != "0" {
		t.Error("const0 SOP string")
	}
	and2 := MustFromHex(2, "8")
	if got := and2.SOPString(); got != "x0·x1" {
		t.Errorf("and2 SOP = %q", got)
	}
	if !strings.Contains(MustFromHex(2, "6").SOPString(), " + ") {
		t.Error("xor2 SOP missing sum")
	}
}
