package tt

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// refFlip negates variable i by explicit minterm remapping.
func refFlip(f *TT, i int) *TT {
	r := New(f.NumVars())
	for x := 0; x < f.NumBits(); x++ {
		if f.Get(x ^ 1<<uint(i)) {
			r.Set(x, true)
		}
	}
	return r
}

// refSwap exchanges variables i and j by explicit minterm remapping.
func refSwap(f *TT, i, j int) *TT {
	r := New(f.NumVars())
	for x := 0; x < f.NumBits(); x++ {
		bi, bj := x>>uint(i)&1, x>>uint(j)&1
		y := x&^(1<<uint(i)|1<<uint(j)) | bi<<uint(j) | bj<<uint(i)
		if f.Get(y) {
			r.Set(x, true)
		}
	}
	return r
}

func TestFlipVarAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for n := 1; n <= 9; n++ {
		for rep := 0; rep < 5; rep++ {
			f := Random(n, rng)
			for i := 0; i < n; i++ {
				got := f.FlipVar(i)
				want := refFlip(f, i)
				if !got.Equal(want) {
					t.Fatalf("FlipVar(%d) wrong for n=%d", i, n)
				}
				if !got.FlipVar(i).Equal(f) {
					t.Fatalf("FlipVar(%d) not involutive for n=%d", i, n)
				}
			}
		}
	}
}

func TestSwapVarsAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for n := 2; n <= 9; n++ {
		for rep := 0; rep < 3; rep++ {
			f := Random(n, rng)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					got := f.SwapVars(i, j)
					want := refSwap(f, i, j)
					if !got.Equal(want) {
						t.Fatalf("SwapVars(%d,%d) wrong for n=%d", i, j, n)
					}
					if !got.SwapVars(i, j).Equal(f) {
						t.Fatalf("SwapVars(%d,%d) not involutive for n=%d", i, j, n)
					}
				}
			}
		}
	}
}

func TestPermuteIdentityAndComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for n := 1; n <= 8; n++ {
		f := Random(n, rng)
		id := make([]int, n)
		for i := range id {
			id[i] = i
		}
		if !f.Permute(id).Equal(f) {
			t.Fatalf("identity permutation changed table at n=%d", n)
		}
		perm := rng.Perm(n)
		g := f.Permute(perm)
		// Permuting by the inverse must restore f.
		inv := make([]int, n)
		for k, p := range perm {
			inv[p] = k
		}
		if !g.Permute(inv).Equal(f) {
			t.Fatalf("inverse permutation does not restore at n=%d", n)
		}
	}
}

func TestPermuteMatchesSwapChain(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	f := Random(7, rng)
	// A transposition as a permutation must equal SwapVars.
	perm := []int{0, 1, 2, 3, 4, 5, 6}
	perm[2], perm[6] = 6, 2
	if !f.Permute(perm).Equal(f.SwapVars(2, 6)) {
		t.Error("Permute transposition disagrees with SwapVars")
	}
}

func TestPermuteValidation(t *testing.T) {
	f := New(3)
	for _, perm := range [][]int{{0, 1}, {0, 0, 1}, {0, 1, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Permute(%v) did not panic", perm)
				}
			}()
			f.Permute(perm)
		}()
	}
}

func TestFlipMask(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for n := 1; n <= 8; n++ {
		f := Random(n, rng)
		mask := rng.Intn(1 << n)
		got := f.FlipMask(mask)
		for x := 0; x < f.NumBits(); x++ {
			if got.Get(x) != f.Get(x^mask) {
				t.Fatalf("FlipMask(%b) wrong at n=%d x=%d", mask, n, x)
			}
		}
	}
}

func TestWordOpsAgreeWithTableOps(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(15))}
	err := quick.Check(func(w uint64, iRaw, jRaw uint8) bool {
		n := 6
		i, j := int(iRaw)%n, int(jRaw)%n
		f := FromWord(n, w)
		if FlipVarWord(f.Word(), i) != f.FlipVar(i).Word() {
			return false
		}
		if SwapVarsWord(f.Word(), i, j) != f.SwapVars(i, j).Word() {
			return false
		}
		return CofactorCountWord(f.Word(), n, i, true) == f.CofactorCount(i, true)
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestSwapAdjacentWord(t *testing.T) {
	w := uint64(0xE8) // maj3
	for i := 0; i < 5; i++ {
		if SwapAdjacentWord(w, i) != SwapVarsWord(w, i, i+1) {
			t.Errorf("SwapAdjacentWord(%d) mismatch", i)
		}
	}
	// Majority is totally symmetric: any swap preserves it (within 3 vars).
	f := maj3()
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if !f.SwapVars(i, j).Equal(f) {
				t.Errorf("majority not symmetric under swap(%d,%d)", i, j)
			}
		}
	}
}
