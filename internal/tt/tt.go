// Package tt implements bit-parallel truth tables for Boolean functions of up
// to MaxVars variables.
//
// A truth table stores the 2^n output bits of an n-variable Boolean function
// f(x1, ..., xn) packed into 64-bit words, little-endian: bit i of the table
// is f((i)₂) where (i)₂ is the little-endian binary encoding of i, i.e. bit j
// of i is the value of variable x_{j+1}. Variables are indexed 0-based in the
// API (variable 0 is the paper's x1).
//
// The package provides the bitwise primitives the NPN classifier is built on:
// satisfy counts, cofactor masks, input negation (FlipVar), variable
// permutation (SwapVars, Permute), output negation (Not), and support
// minimization. All operations keep the invariant that bits above position
// 2^n-1 are zero, so whole-word comparisons and popcounts are exact.
package tt

import (
	"fmt"
	"math/bits"
)

// MaxVars is the largest supported number of variables. 16 variables means a
// 65536-bit truth table (1024 words), which covers every experiment in the
// paper (n ≤ 10) with headroom.
const MaxVars = 16

// TT is the truth table of an n-variable Boolean function.
//
// The zero value is not usable; construct values with New, FromHex, FromBits,
// FromFunc or Random.
type TT struct {
	n     int
	words []uint64
}

// New returns the constant-0 function of n variables.
func New(n int) *TT {
	if n < 0 || n > MaxVars {
		panic(fmt.Sprintf("tt: number of variables %d out of range [0,%d]", n, MaxVars))
	}
	return &TT{n: n, words: make([]uint64, wordCount(n))}
}

// wordCount returns the number of 64-bit words backing an n-variable table.
func wordCount(n int) int {
	if n <= 6 {
		return 1
	}
	return 1 << (n - 6)
}

// NumVars returns the number of variables n.
func (t *TT) NumVars() int { return t.n }

// NumBits returns the table length 2^n.
func (t *TT) NumBits() int { return 1 << t.n }

// Words returns the backing word slice. The slice is shared, not copied;
// callers must not modify it unless they own the table.
func (t *TT) Words() []uint64 { return t.words }

// Clone returns an independent copy of t.
func (t *TT) Clone() *TT {
	w := make([]uint64, len(t.words))
	copy(w, t.words)
	return &TT{n: t.n, words: w}
}

// CopyFrom overwrites t with the contents of src. The tables must have the
// same number of variables.
func (t *TT) CopyFrom(src *TT) {
	t.mustSameSize(src)
	copy(t.words, src.words)
}

// Get reports the function value at minterm x (0 ≤ x < 2^n).
func (t *TT) Get(x int) bool {
	return t.words[x>>6]>>(uint(x)&63)&1 == 1
}

// Set assigns the function value at minterm x.
func (t *TT) Set(x int, v bool) {
	if v {
		t.words[x>>6] |= 1 << (uint(x) & 63)
	} else {
		t.words[x>>6] &^= 1 << (uint(x) & 63)
	}
}

// Equal reports whether t and o denote the same function on the same number
// of variables.
func (t *TT) Equal(o *TT) bool {
	if t.n != o.n {
		return false
	}
	for i, w := range t.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// Compare orders truth tables of equal arity lexicographically by their
// big-endian word sequence (most significant word first), which matches the
// usual "smallest truth table" canonical-form convention. It returns -1, 0,
// or +1.
func (t *TT) Compare(o *TT) int {
	t.mustSameSize(o)
	for i := len(t.words) - 1; i >= 0; i-- {
		switch {
		case t.words[i] < o.words[i]:
			return -1
		case t.words[i] > o.words[i]:
			return 1
		}
	}
	return 0
}

// Less reports whether t orders before o under Compare.
func (t *TT) Less(o *TT) bool { return t.Compare(o) < 0 }

// IsConst0 reports whether t is the constant-0 function.
func (t *TT) IsConst0() bool {
	for _, w := range t.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// IsConst1 reports whether t is the constant-1 function.
func (t *TT) IsConst1() bool {
	m := t.lastWordMask()
	for i, w := range t.words {
		want := ^uint64(0)
		if i == len(t.words)-1 {
			want = m
		}
		if w != want {
			return false
		}
	}
	return true
}

// CountOnes returns the satisfy count |f|, the number of 1-minterms.
func (t *TT) CountOnes() int {
	c := 0
	for _, w := range t.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// IsBalanced reports whether |f| = 2^(n-1).
func (t *TT) IsBalanced() bool { return t.CountOnes()*2 == t.NumBits() }

// lastWordMask returns the mask of valid bits in the last word: all bits for
// n ≥ 6, the low 2^n bits for smaller n.
func (t *TT) lastWordMask() uint64 {
	if t.n >= 6 {
		return ^uint64(0)
	}
	return (uint64(1) << (1 << t.n)) - 1
}

// maskValid clears the unused high bits (only meaningful for n < 6).
func (t *TT) maskValid() {
	t.words[len(t.words)-1] &= t.lastWordMask()
}

// Normalize clears padding bits above position 2^n-1. Call it after writing
// the backing Words slice directly (e.g. from a simulator).
func (t *TT) Normalize() { t.maskValid() }

func (t *TT) mustSameSize(o *TT) {
	if t.n != o.n {
		panic(fmt.Sprintf("tt: arity mismatch %d vs %d", t.n, o.n))
	}
}

// FromFunc builds the truth table of n variables from an evaluator. Bit j of
// the minterm index is the value of variable j.
func FromFunc(n int, f func(x int) bool) *TT {
	t := New(n)
	for x := 0; x < t.NumBits(); x++ {
		if f(x) {
			t.Set(x, true)
		}
	}
	return t
}

// FromBits builds an n-variable table from an explicit bit slice of length
// 2^n (bits[i] ∈ {0,1}).
func FromBits(n int, bitsIn []int) (*TT, error) {
	t := New(n)
	if len(bitsIn) != t.NumBits() {
		return nil, fmt.Errorf("tt: FromBits needs %d bits, got %d", t.NumBits(), len(bitsIn))
	}
	for i, b := range bitsIn {
		switch b {
		case 0:
		case 1:
			t.Set(i, true)
		default:
			return nil, fmt.Errorf("tt: FromBits bit %d is %d, want 0 or 1", i, b)
		}
	}
	return t, nil
}

// FromWord builds a table of n ≤ 6 variables from the low 2^n bits of w.
func FromWord(n int, w uint64) *TT {
	if n > 6 {
		panic("tt: FromWord supports at most 6 variables")
	}
	t := New(n)
	t.words[0] = w
	t.maskValid()
	return t
}

// Word returns the single backing word of a table with n ≤ 6 variables.
func (t *TT) Word() uint64 {
	if t.n > 6 {
		panic("tt: Word requires at most 6 variables")
	}
	return t.words[0]
}
