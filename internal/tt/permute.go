package tt

// FlipVar returns the function with variable i negated: g(x) = f(x^i), where
// x^i is x with bit i complemented. This is the input-negation primitive of
// NP transformations.
func (t *TT) FlipVar(i int) *TT {
	r := t.Clone()
	r.FlipVarInPlace(i)
	return r
}

// FlipVarInPlace negates variable i of t.
func (t *TT) FlipVarInPlace(i int) {
	if i < 0 || i >= t.n {
		panic("tt: FlipVar variable out of range")
	}
	if i < 6 {
		s := uint(1) << uint(i)
		p := projections[i]
		for wi, w := range t.words {
			t.words[wi] = (w&p)>>s | (w&^p)<<s
		}
		t.maskValid()
		return
	}
	stride := 1 << (uint(i) - 6)
	for base := 0; base < len(t.words); base += 2 * stride {
		for k := 0; k < stride; k++ {
			a, b := base+k, base+k+stride
			t.words[a], t.words[b] = t.words[b], t.words[a]
		}
	}
}

// SwapVars returns the function with variables i and j exchanged.
func (t *TT) SwapVars(i, j int) *TT {
	r := t.Clone()
	r.SwapVarsInPlace(i, j)
	return r
}

// SwapVarsInPlace exchanges variables i and j of t.
func (t *TT) SwapVarsInPlace(i, j int) {
	if i == j {
		return
	}
	if i > j {
		i, j = j, i
	}
	if j >= t.n {
		panic("tt: SwapVars variable out of range")
	}
	switch {
	case j < 6:
		// Delta-swap inside each word: positions with x_i=1, x_j=0 trade
		// places with the position d higher that has x_i=0, x_j=1.
		d := uint(1)<<uint(j) - uint(1)<<uint(i)
		m := projections[i] &^ projections[j]
		for wi, w := range t.words {
			x := (w ^ w>>d) & m
			t.words[wi] = w ^ x ^ x<<d
		}
	case i >= 6:
		// Both variables select whole words; swap word pairs.
		si := 1 << (uint(i) - 6)
		sj := 1 << (uint(j) - 6)
		for wi := range t.words {
			if wi&si != 0 && wi&sj == 0 {
				other := wi - si + sj
				t.words[wi], t.words[other] = t.words[other], t.words[wi]
			}
		}
	default:
		// i < 6 ≤ j: in-word bits with x_i=1 of an x_j=0 word trade with the
		// x_i=0 bits of its x_j=1 partner word.
		s := uint(1) << uint(i)
		p := projections[i]
		stride := 1 << (uint(j) - 6)
		for wi := range t.words {
			if wi&stride != 0 {
				continue
			}
			lo, hi := t.words[wi], t.words[wi+stride]
			t.words[wi] = lo&^p | (hi&^p)<<s
			t.words[wi+stride] = hi&p | (lo&p)>>s
		}
	}
}

// Permute returns g with g(x) = f(y) where bit perm[k] of y equals bit k of
// x: variable k of the argument is routed to position perm[k] of f. perm must
// be a permutation of 0..n-1.
func (t *TT) Permute(perm []int) *TT {
	if len(perm) != t.n {
		panic("tt: Permute length mismatch")
	}
	seen := 0
	for _, p := range perm {
		if p < 0 || p >= t.n || seen>>uint(p)&1 == 1 {
			panic("tt: Permute argument is not a permutation")
		}
		seen |= 1 << uint(p)
	}
	r := New(t.n)
	for x := 0; x < t.NumBits(); x++ {
		y := 0
		for k := 0; k < t.n; k++ {
			y |= x >> uint(k) & 1 << uint(perm[k])
		}
		if t.Get(y) {
			r.Set(x, true)
		}
	}
	return r
}

// FlipMask negates every variable whose bit is set in mask: g(x) = f(x ⊕ mask).
func (t *TT) FlipMask(mask int) *TT {
	r := t.Clone()
	for i := 0; i < t.n; i++ {
		if mask>>uint(i)&1 == 1 {
			r.FlipVarInPlace(i)
		}
	}
	return r
}
