package tt

// DependsOn reports whether the function actually depends on variable i,
// i.e. whether f|x_i=0 differs from f|x_i=1 anywhere.
func (t *TT) DependsOn(i int) bool {
	if i < 6 {
		s := uint(1) << uint(i)
		p := projections[i]
		for _, w := range t.words {
			if (w&p)>>s != w&^p {
				return true
			}
		}
		return false
	}
	stride := 1 << (uint(i) - 6)
	for base := 0; base < len(t.words); base += 2 * stride {
		for k := 0; k < stride; k++ {
			if t.words[base+k] != t.words[base+k+stride] {
				return true
			}
		}
	}
	return false
}

// Support returns the indices of the variables the function depends on, in
// increasing order.
func (t *TT) Support() []int {
	var s []int
	for i := 0; i < t.n; i++ {
		if t.DependsOn(i) {
			s = append(s, i)
		}
	}
	return s
}

// SupportSize returns the number of variables the function depends on.
func (t *TT) SupportSize() int {
	c := 0
	for i := 0; i < t.n; i++ {
		if t.DependsOn(i) {
			c++
		}
	}
	return c
}

// ShrinkSupport returns an equivalent function over exactly its support
// variables: vacuous variables are projected away and the remaining variables
// are renumbered 0..k-1 preserving order. If the function already depends on
// all its variables, a clone is returned.
func (t *TT) ShrinkSupport() *TT {
	sup := t.Support()
	if len(sup) == t.n {
		return t.Clone()
	}
	r := New(len(sup))
	for x := 0; x < r.NumBits(); x++ {
		y := 0
		for k, v := range sup {
			y |= x >> uint(k) & 1 << uint(v)
		}
		if t.Get(y) {
			r.Set(x, true)
		}
	}
	return r
}

// Extend returns the same function formally defined over m ≥ n variables;
// the added variables are vacuous.
func (t *TT) Extend(m int) *TT {
	if m < t.n {
		panic("tt: Extend target smaller than current arity")
	}
	if m == t.n {
		return t.Clone()
	}
	r := New(m)
	period := t.NumBits()
	for x := 0; x < r.NumBits(); x++ {
		if t.Get(x & (period - 1)) {
			r.Set(x, true)
		}
	}
	return r
}
