package tt

import (
	"math/rand"
	"testing"
)

// refCofCount counts 1-minterms on the face x_i = v by iteration.
func refCofCount(f *TT, i int, v bool) int {
	c := 0
	for x := 0; x < f.NumBits(); x++ {
		if (x>>uint(i)&1 == 1) == v && f.Get(x) {
			c++
		}
	}
	return c
}

func TestCofactorCountAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for n := 1; n <= 9; n++ {
		f := Random(n, rng)
		for i := 0; i < n; i++ {
			for _, v := range []bool{false, true} {
				if got, want := f.CofactorCount(i, v), refCofCount(f, i, v); got != want {
					t.Fatalf("CofactorCount(%d,%v) = %d, want %d (n=%d)", i, v, got, want, n)
				}
			}
		}
	}
}

func TestCofactorCountPairsSumToSatisfyCount(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for n := 1; n <= 10; n++ {
		f := Random(n, rng)
		total := f.CountOnes()
		for i := 0; i < n; i++ {
			if f.CofactorCount(i, false)+f.CofactorCount(i, true) != total {
				t.Fatalf("cofactor counts of var %d do not sum to |f| (n=%d)", i, n)
			}
		}
	}
}

func TestCofactorCount2AgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for n := 2; n <= 9; n++ {
		f := Random(n, rng)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				for vi := 0; vi < 2; vi++ {
					for vj := 0; vj < 2; vj++ {
						want := 0
						for x := 0; x < f.NumBits(); x++ {
							if x>>uint(i)&1 == vi && x>>uint(j)&1 == vj && f.Get(x) {
								want++
							}
						}
						got := f.CofactorCount2(i, vi == 1, j, vj == 1)
						if got != want {
							t.Fatalf("CofactorCount2(%d,%d,%d,%d) = %d, want %d (n=%d)", i, vi, j, vj, got, want, n)
						}
					}
				}
			}
		}
	}
}

func TestCofactorCount2RejectsSameVar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("CofactorCount2 with i==j did not panic")
		}
	}()
	New(3).CofactorCount2(1, true, 1, false)
}

func TestCofactorCountSet(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for n := 3; n <= 9; n += 3 {
		f := Random(n, rng)
		// ℓ=1 and ℓ=2 must agree with the dedicated routines.
		for i := 0; i < n; i++ {
			for v := 0; v < 2; v++ {
				if f.CofactorCountSet([]int{i}, v) != f.CofactorCount(i, v == 1) {
					t.Fatalf("CofactorCountSet ℓ=1 mismatch (n=%d, i=%d)", n, i)
				}
			}
		}
		for vals := 0; vals < 4; vals++ {
			got := f.CofactorCountSet([]int{0, n - 1}, vals)
			want := f.CofactorCount2(0, vals&1 == 1, n-1, vals>>1&1 == 1)
			if got != want {
				t.Fatalf("CofactorCountSet ℓ=2 mismatch (n=%d, vals=%d): %d vs %d", n, vals, got, want)
			}
		}
		// ℓ=3 against direct iteration.
		vars := []int{0, 1, n - 1}
		for vals := 0; vals < 8; vals++ {
			want := 0
			for x := 0; x < f.NumBits(); x++ {
				ok := true
				for k, vi := range vars {
					if x>>uint(vi)&1 != vals>>uint(k)&1 {
						ok = false
						break
					}
				}
				if ok && f.Get(x) {
					want++
				}
			}
			if got := f.CofactorCountSet(vars, vals); got != want {
				t.Fatalf("CofactorCountSet ℓ=3 mismatch (n=%d, vals=%d): %d vs %d", n, vals, got, want)
			}
		}
	}
}

func TestCofactorTable(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for n := 1; n <= 9; n++ {
		f := Random(n, rng)
		for i := 0; i < n; i++ {
			for _, v := range []bool{false, true} {
				cf := f.Cofactor(i, v)
				if cf.DependsOn(i) {
					t.Fatalf("cofactor still depends on var %d (n=%d)", i, n)
				}
				for x := 0; x < f.NumBits(); x++ {
					y := x &^ (1 << uint(i))
					if v {
						y |= 1 << uint(i)
					}
					if cf.Get(x) != f.Get(y) {
						t.Fatalf("Cofactor(%d,%v) wrong at x=%d (n=%d)", i, v, x, n)
					}
				}
			}
		}
	}
}

func TestCofactorMask(t *testing.T) {
	for n := 1; n <= 8; n++ {
		for i := 0; i < n; i++ {
			m := CofactorMask(n, i, true)
			if m.CountOnes() != 1<<(n-1) {
				t.Fatalf("mask has %d ones, want %d", m.CountOnes(), 1<<(n-1))
			}
			if !m.Equal(Projection(n, i)) {
				t.Fatalf("CofactorMask(true) != Projection (n=%d i=%d)", n, i)
			}
			if !CofactorMask(n, i, false).Equal(m.Not()) {
				t.Fatalf("CofactorMask(false) != ¬mask (n=%d i=%d)", n, i)
			}
		}
	}
}

func TestSupport(t *testing.T) {
	// f = x0 ⊕ x2 over 4 variables: depends on 0 and 2 only.
	f := FromFunc(4, func(x int) bool { return (x&1)^(x>>2&1) == 1 })
	sup := f.Support()
	if len(sup) != 2 || sup[0] != 0 || sup[1] != 2 {
		t.Fatalf("Support = %v, want [0 2]", sup)
	}
	if f.SupportSize() != 2 {
		t.Fatal("SupportSize wrong")
	}
	s := f.ShrinkSupport()
	if s.NumVars() != 2 || s.Hex() != "6" {
		t.Fatalf("ShrinkSupport = %d vars %s, want 2 vars 6 (xor)", s.NumVars(), s.Hex())
	}
	// Extending back keeps the function (modulo vacuous vars).
	e := s.Extend(4)
	for x := 0; x < 16; x++ {
		if e.Get(x) != ((x&1)^(x>>1&1) == 1) {
			t.Fatalf("Extend wrong at %d", x)
		}
	}
}

func TestSupportFullAndEmpty(t *testing.T) {
	f := maj3()
	if got := f.SupportSize(); got != 3 {
		t.Errorf("maj3 support = %d", got)
	}
	if s := f.ShrinkSupport(); !s.Equal(f) {
		t.Error("ShrinkSupport of full-support function must be identity")
	}
	c := Const(5, true)
	if c.SupportSize() != 0 {
		t.Error("const has nonempty support")
	}
	if s := c.ShrinkSupport(); s.NumVars() != 0 || !s.IsConst1() {
		t.Error("ShrinkSupport of const1 wrong")
	}
}

func TestDependsOnLargeVars(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	for n := 7; n <= 10; n++ {
		f := Random(n, rng)
		for i := 0; i < n; i++ {
			want := !f.Cofactor(i, false).Equal(f.Cofactor(i, true))
			if f.DependsOn(i) != want {
				t.Fatalf("DependsOn(%d) wrong at n=%d", i, n)
			}
		}
	}
}
