package tt

import "math/bits"

func onesCount(w uint64) int { return bits.OnesCount64(w) }

// Not returns the output-negated function ¬f.
func (t *TT) Not() *TT {
	r := t.Clone()
	r.NotInPlace()
	return r
}

// NotInPlace complements t.
func (t *TT) NotInPlace() {
	for i := range t.words {
		t.words[i] = ^t.words[i]
	}
	t.maskValid()
}

// And returns f ∧ g.
func (t *TT) And(o *TT) *TT {
	t.mustSameSize(o)
	r := t.Clone()
	for i := range r.words {
		r.words[i] &= o.words[i]
	}
	return r
}

// Or returns f ∨ g.
func (t *TT) Or(o *TT) *TT {
	t.mustSameSize(o)
	r := t.Clone()
	for i := range r.words {
		r.words[i] |= o.words[i]
	}
	return r
}

// Xor returns f ⊕ g.
func (t *TT) Xor(o *TT) *TT {
	t.mustSameSize(o)
	r := t.Clone()
	for i := range r.words {
		r.words[i] ^= o.words[i]
	}
	return r
}

// XorCount returns |f ⊕ g| without materializing the XOR table.
func (t *TT) XorCount(o *TT) int {
	t.mustSameSize(o)
	c := 0
	for i, w := range t.words {
		c += onesCount(w ^ o.words[i])
	}
	return c
}

// Projection returns the truth table of the bare variable x_i on n variables.
func Projection(n, i int) *TT {
	if i < 0 || i >= n {
		panic("tt: Projection variable out of range")
	}
	return CofactorMask(n, i, true)
}

// Const returns the constant function of n variables with the given value.
func Const(n int, v bool) *TT {
	t := New(n)
	if v {
		t.NotInPlace()
	}
	return t
}
