package tt

// projections[i] has a 1 in every bit position whose minterm sets variable i,
// for the six variables that live inside a single 64-bit word. For variables
// i ≥ 6 the distinction is between whole words: word w belongs to the x_i = 1
// half iff bit (i-6) of w is set.
var projections = [6]uint64{
	0xAAAAAAAAAAAAAAAA, // x0: ...10101010
	0xCCCCCCCCCCCCCCCC, // x1: ...11001100
	0xF0F0F0F0F0F0F0F0, // x2
	0xFF00FF00FF00FF00, // x3
	0xFFFF0000FFFF0000, // x4
	0xFFFFFFFF00000000, // x5
}

// VarMaskWord returns the in-word projection mask of variable i < 6: the bits
// of a word whose minterms have x_i = 1.
func VarMaskWord(i int) uint64 { return projections[i] }

// wordHasVar reports whether word index w lies in the x_i = 1 half for a
// variable i ≥ 6.
func wordHasVar(w, i int) bool { return w>>(uint(i)-6)&1 == 1 }

// CofactorMask writes into dst the indicator of the face x_i = v: dst bit x
// is 1 iff minterm x has variable i equal to v. dst must have the same arity
// as the table the mask is intended for. It returns dst.
func CofactorMask(n, i int, v bool) *TT {
	m := New(n)
	if i < 6 {
		p := projections[i]
		if !v {
			p = ^p
		}
		for w := range m.words {
			m.words[w] = p
		}
	} else {
		for w := range m.words {
			if wordHasVar(w, i) == v {
				m.words[w] = ^uint64(0)
			}
		}
	}
	m.maskValid()
	return m
}

// CofactorCount returns the satisfy count of the cofactor f|x_i=v, i.e. the
// number of 1-minterms on the face x_i = v. This is the 1-ary cofactor
// signature of the literal (Definition 2 of the paper).
func (t *TT) CofactorCount(i int, v bool) int {
	c := 0
	if i < 6 {
		p := projections[i]
		if !v {
			p = ^p
		}
		for _, w := range t.words {
			c += onesCount(w & p)
		}
		return c
	}
	for wi, w := range t.words {
		if wordHasVar(wi, i) == v {
			c += onesCount(w)
		}
	}
	return c
}

// CofactorCount2 returns the satisfy count of the 2-ary cofactor
// f|x_i=vi, x_j=vj with i ≠ j.
func (t *TT) CofactorCount2(i int, vi bool, j int, vj bool) int {
	if i == j {
		panic("tt: CofactorCount2 requires distinct variables")
	}
	c := 0
	switch {
	case i < 6 && j < 6:
		p := projMask(i, vi) & projMask(j, vj)
		for _, w := range t.words {
			c += onesCount(w & p)
		}
	case i < 6: // j ≥ 6
		p := projMask(i, vi)
		for wi, w := range t.words {
			if wordHasVar(wi, j) == vj {
				c += onesCount(w & p)
			}
		}
	case j < 6: // i ≥ 6
		return t.CofactorCount2(j, vj, i, vi)
	default:
		for wi, w := range t.words {
			if wordHasVar(wi, i) == vi && wordHasVar(wi, j) == vj {
				c += onesCount(w)
			}
		}
	}
	return c
}

// projMask returns the in-word mask selecting x_i = v for i < 6.
func projMask(i int, v bool) uint64 {
	if v {
		return projections[i]
	}
	return ^projections[i]
}

// CofactorCountSet returns the satisfy count of the ℓ-ary cofactor obtained
// by fixing each variable vars[k] to value (vals>>k)&1. The variables must be
// distinct. This generalizes CofactorCount to arbitrary arity and is the
// basis of the OCVℓ signature.
func (t *TT) CofactorCountSet(vars []int, vals int) int {
	var inWord uint64 = ^uint64(0)
	wordSel, wordVal := 0, 0
	for k, v := range vars {
		bit := vals >> uint(k) & 1
		if v < 6 {
			inWord &= projMask(v, bit == 1)
		} else {
			wordSel |= 1 << (uint(v) - 6)
			if bit == 1 {
				wordVal |= 1 << (uint(v) - 6)
			}
		}
	}
	c := 0
	for wi, w := range t.words {
		if wi&wordSel == wordVal {
			c += onesCount(w & inWord)
		}
	}
	return c
}

// Cofactor returns f|x_i=v as a function that still formally depends on n
// variables (variable i becomes vacuous): every minterm takes the value its
// projection onto the face x_i = v has.
func (t *TT) Cofactor(i int, v bool) *TT {
	r := t.Clone()
	if i < 6 {
		s := uint(1) << uint(i)
		p := projections[i]
		for wi, w := range r.words {
			if v {
				keep := w & p
				r.words[wi] = keep | keep>>s
			} else {
				keep := w & ^p
				r.words[wi] = keep | keep<<s
			}
		}
		return r
	}
	stride := 1 << (uint(i) - 6)
	for wi := range r.words {
		if wordHasVar(wi, i) != v {
			if v {
				r.words[wi] = r.words[wi+stride]
			} else {
				r.words[wi] = r.words[wi-stride]
			}
		}
	}
	return r
}
