package tt

import "testing"

// FuzzFromHex checks that arbitrary strings never crash the parser and that
// every accepted string round-trips through Hex.
func FuzzFromHex(f *testing.F) {
	f.Add("e8", 3)
	f.Add("0xcafe", 4)
	f.Add("", 2)
	f.Add("zz", 3)
	f.Add("ffff_ffff", 5)
	f.Fuzz(func(t *testing.T, s string, n int) {
		if n < 0 || n > MaxVars {
			return
		}
		tab, err := FromHex(n, s)
		if err != nil {
			return
		}
		back, err := FromHex(n, tab.Hex())
		if err != nil || !back.Equal(tab) {
			t.Fatalf("accepted %q but round trip failed", s)
		}
	})
}

// FuzzBinaryRoundTrip checks Binary/FromBinary against arbitrary tables.
func FuzzBinaryRoundTrip(f *testing.F) {
	f.Add(uint64(0xE8), 3)
	f.Add(uint64(0), 0)
	f.Fuzz(func(t *testing.T, w uint64, n int) {
		if n < 0 || n > 6 {
			return
		}
		tab := FromWord(n, w)
		back, err := FromBinary(n, tab.Binary())
		if err != nil || !back.Equal(tab) {
			t.Fatal("binary round trip failed")
		}
	})
}
