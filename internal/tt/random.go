package tt

import "math/rand"

// Random returns a uniformly random n-variable truth table drawn from rng.
func Random(n int, rng *rand.Rand) *TT {
	t := New(n)
	for i := range t.words {
		t.words[i] = rng.Uint64()
	}
	t.maskValid()
	return t
}

// FromUint64Seq fills an n ≤ 6 variable table from the low bits of v; used by
// the consecutive-encoding workload generator (Fig 5 of the paper, where
// truth tables are consecutive binary encodings of integers).
func FromUint64Seq(n int, v uint64) *TT {
	t := New(n)
	t.words[0] = v
	t.maskValid()
	return t
}

// SetSeqValue writes the 2^n-bit little-endian integer value encoded by words
// seq into t; seq supplies as many words as the table has. This extends the
// consecutive encoding beyond 6 variables.
func (t *TT) SetSeqValue(seq []uint64) {
	for i := range t.words {
		if i < len(seq) {
			t.words[i] = seq[i]
		} else {
			t.words[i] = 0
		}
	}
	t.maskValid()
}
