package tt

import (
	"fmt"
	"strings"
)

const hexDigits = "0123456789abcdef"

// Hex renders the truth table as a hexadecimal string, most significant
// nibble first (the conventional kitty/ABC format): an n-variable table uses
// max(1, 2^n/4) digits.
func (t *TT) Hex() string {
	nibbles := t.NumBits() / 4
	if nibbles == 0 {
		nibbles = 1
	}
	var b strings.Builder
	b.Grow(nibbles)
	for i := nibbles - 1; i >= 0; i-- {
		nib := t.words[i/16] >> (uint(i) % 16 * 4) & 0xF
		b.WriteByte(hexDigits[nib])
	}
	return b.String()
}

// String implements fmt.Stringer as the hex rendering.
func (t *TT) String() string { return t.Hex() }

// Binary renders the table as a 2^n-character binary string, most significant
// bit (minterm 2^n-1) first.
func (t *TT) Binary() string {
	var b strings.Builder
	b.Grow(t.NumBits())
	for i := t.NumBits() - 1; i >= 0; i-- {
		if t.Get(i) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// FromHex parses a hexadecimal truth table of n variables. The string may be
// shorter than 2^n/4 digits, in which case it is zero-extended at the most
// significant end; it must not be longer. An optional "0x" prefix and
// embedded underscores are accepted.
func FromHex(n int, s string) (*TT, error) {
	s = strings.TrimPrefix(strings.TrimPrefix(s, "0x"), "0X")
	s = strings.ReplaceAll(s, "_", "")
	if s == "" {
		return nil, fmt.Errorf("tt: empty hex truth table")
	}
	t := New(n)
	maxNibbles := t.NumBits() / 4
	if maxNibbles == 0 {
		maxNibbles = 1
	}
	if len(s) > maxNibbles {
		return nil, fmt.Errorf("tt: hex table %q has %d digits, max %d for %d variables", s, len(s), maxNibbles, n)
	}
	for pos, i := 0, len(s)-1; i >= 0; i, pos = i-1, pos+1 {
		v := hexVal(s[i])
		if v < 0 {
			return nil, fmt.Errorf("tt: invalid hex digit %q", s[i])
		}
		t.words[pos/16] |= uint64(v) << (uint(pos) % 16 * 4)
	}
	if n < 2 {
		// 1 hex digit holds up to 4 bits; reject bits beyond 2^n for tiny n.
		if t.words[0] != t.words[0]&t.lastWordMask() {
			return nil, fmt.Errorf("tt: hex table %q overflows %d-variable table", s, n)
		}
	}
	t.maskValid()
	return t, nil
}

// MustFromHex is FromHex that panics on error; intended for constants in
// tests and examples.
func MustFromHex(n int, s string) *TT {
	t, err := FromHex(n, s)
	if err != nil {
		panic(err)
	}
	return t
}

// FromBinary parses a binary string of exactly 2^n characters, most
// significant minterm first (the reverse of minterm order).
func FromBinary(n int, s string) (*TT, error) {
	t := New(n)
	if len(s) != t.NumBits() {
		return nil, fmt.Errorf("tt: binary table needs %d bits, got %d", t.NumBits(), len(s))
	}
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '0':
		case '1':
			t.Set(len(s)-1-i, true)
		default:
			return nil, fmt.Errorf("tt: invalid binary digit %q", s[i])
		}
	}
	return t, nil
}

func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	}
	return -1
}
