package tt

import (
	"math/rand"
	"testing"
)

// maj3 is the 3-input majority function (f1 in Fig. 1a of the paper).
func maj3() *TT { return MustFromHex(3, "e8") }

func TestNewIsConst0(t *testing.T) {
	for n := 0; n <= 10; n++ {
		f := New(n)
		if !f.IsConst0() {
			t.Errorf("New(%d) not const 0", n)
		}
		if f.NumBits() != 1<<n {
			t.Errorf("NumBits(%d) = %d", n, f.NumBits())
		}
		if f.CountOnes() != 0 {
			t.Errorf("CountOnes on const0 = %d", f.CountOnes())
		}
	}
}

func TestNewOutOfRangePanics(t *testing.T) {
	for _, n := range []int{-1, MaxVars + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", n)
				}
			}()
			New(n)
		}()
	}
}

func TestGetSet(t *testing.T) {
	f := New(8)
	idx := []int{0, 1, 63, 64, 127, 255}
	for _, i := range idx {
		f.Set(i, true)
	}
	for _, i := range idx {
		if !f.Get(i) {
			t.Errorf("bit %d not set", i)
		}
	}
	if f.CountOnes() != len(idx) {
		t.Errorf("CountOnes = %d, want %d", f.CountOnes(), len(idx))
	}
	f.Set(63, false)
	if f.Get(63) {
		t.Error("bit 63 still set after clear")
	}
}

func TestMajorityBasics(t *testing.T) {
	f := maj3()
	if got := f.CountOnes(); got != 4 {
		t.Errorf("|maj3| = %d, want 4", got)
	}
	if !f.IsBalanced() {
		t.Error("maj3 should be balanced")
	}
	// Majority is 1 exactly on minterms with ≥ 2 ones.
	for x := 0; x < 8; x++ {
		ones := 0
		for b := 0; b < 3; b++ {
			ones += x >> b & 1
		}
		if f.Get(x) != (ones >= 2) {
			t.Errorf("maj3(%03b) = %v", x, f.Get(x))
		}
	}
}

func TestHexRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for n := 2; n <= 9; n++ {
		for k := 0; k < 20; k++ {
			f := Random(n, rng)
			g, err := FromHex(n, f.Hex())
			if err != nil {
				t.Fatalf("FromHex(%q): %v", f.Hex(), err)
			}
			if !f.Equal(g) {
				t.Fatalf("hex round trip failed for n=%d: %s", n, f.Hex())
			}
		}
	}
}

func TestFromHexErrors(t *testing.T) {
	if _, err := FromHex(3, ""); err == nil {
		t.Error("empty hex accepted")
	}
	if _, err := FromHex(3, "xyz"); err == nil {
		t.Error("invalid digit accepted")
	}
	if _, err := FromHex(3, "fff"); err == nil {
		t.Error("overlong hex accepted")
	}
	if _, err := FromHex(1, "5"); err == nil {
		t.Error("hex overflowing 1-var table accepted")
	}
	if f, err := FromHex(4, "1"); err != nil || f.CountOnes() != 1 || !f.Get(0) {
		t.Error("short hex not zero-extended correctly")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	f := maj3()
	if got := f.Binary(); got != "11101000" {
		t.Errorf("Binary() = %q, want 11101000", got)
	}
	g, err := FromBinary(3, "11101000")
	if err != nil || !g.Equal(f) {
		t.Errorf("FromBinary round trip failed: %v", err)
	}
	if _, err := FromBinary(3, "110"); err == nil {
		t.Error("short binary accepted")
	}
	if _, err := FromBinary(3, "1110100x"); err == nil {
		t.Error("invalid binary digit accepted")
	}
}

func TestNot(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for n := 1; n <= 8; n++ {
		f := Random(n, rng)
		g := f.Not()
		if f.CountOnes()+g.CountOnes() != f.NumBits() {
			t.Errorf("n=%d: |f| + |¬f| != 2^n", n)
		}
		if !g.Not().Equal(f) {
			t.Errorf("n=%d: double negation not identity", n)
		}
		for x := 0; x < f.NumBits(); x++ {
			if f.Get(x) == g.Get(x) {
				t.Fatalf("n=%d: ¬f agrees with f at %d", n, x)
			}
		}
	}
}

func TestConstAndProjection(t *testing.T) {
	one := Const(4, true)
	if !one.IsConst1() || one.CountOnes() != 16 {
		t.Error("Const(4, true) wrong")
	}
	for i := 0; i < 8; i++ {
		p := Projection(8, i)
		if p.CountOnes() != 128 {
			t.Errorf("projection %d has %d ones", i, p.CountOnes())
		}
		for x := 0; x < 256; x++ {
			if p.Get(x) != (x>>i&1 == 1) {
				t.Fatalf("projection %d wrong at %d", i, x)
			}
		}
	}
}

func TestBoolOps(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for n := 1; n <= 8; n++ {
		f, g := Random(n, rng), Random(n, rng)
		and, or, xor := f.And(g), f.Or(g), f.Xor(g)
		for x := 0; x < f.NumBits(); x++ {
			if and.Get(x) != (f.Get(x) && g.Get(x)) {
				t.Fatalf("And wrong at n=%d x=%d", n, x)
			}
			if or.Get(x) != (f.Get(x) || g.Get(x)) {
				t.Fatalf("Or wrong at n=%d x=%d", n, x)
			}
			if xor.Get(x) != (f.Get(x) != g.Get(x)) {
				t.Fatalf("Xor wrong at n=%d x=%d", n, x)
			}
		}
		if xor.CountOnes() != f.XorCount(g) {
			t.Fatalf("XorCount mismatch at n=%d", n)
		}
	}
}

func TestCompare(t *testing.T) {
	a := MustFromHex(3, "01")
	b := MustFromHex(3, "02")
	if a.Compare(b) != -1 || b.Compare(a) != 1 || a.Compare(a) != 0 {
		t.Error("Compare basic ordering wrong")
	}
	if !a.Less(b) || b.Less(a) {
		t.Error("Less wrong")
	}
	// High words dominate.
	c, d := New(8), New(8)
	c.Set(255, true) // highest word
	d.Set(0, true)
	if !d.Less(c) {
		t.Error("Compare must order by most significant word first")
	}
}

func TestCloneIndependence(t *testing.T) {
	f := maj3()
	g := f.Clone()
	g.Set(0, true)
	if f.Get(0) {
		t.Error("Clone shares storage")
	}
	h := New(3)
	h.CopyFrom(f)
	if !h.Equal(f) {
		t.Error("CopyFrom failed")
	}
}

func TestFromBitsAndFunc(t *testing.T) {
	f, err := FromBits(2, []int{0, 1, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if f.Hex() != "6" {
		t.Errorf("xor2 = %s, want 6", f.Hex())
	}
	if _, err := FromBits(2, []int{0, 1}); err == nil {
		t.Error("short FromBits accepted")
	}
	if _, err := FromBits(2, []int{0, 1, 2, 0}); err == nil {
		t.Error("non-binary FromBits accepted")
	}
	g := FromFunc(2, func(x int) bool { return x == 1 || x == 2 })
	if !g.Equal(f) {
		t.Error("FromFunc xor2 mismatch")
	}
}
