package tt

import (
	"fmt"
	"strings"
)

// Cube is a product term over up to MaxVars variables: variable i appears
// when bit i of Mask is set, with positive polarity when bit i of Lits is
// set. The empty cube (Mask 0) is the constant-1 product.
type Cube struct {
	Mask uint32
	Lits uint32
}

// Eval returns the cube's truth table on n variables.
func (c Cube) Eval(n int) *TT {
	t := Const(n, true)
	for i := 0; i < n; i++ {
		if c.Mask>>uint(i)&1 == 0 {
			continue
		}
		p := CofactorMask(n, i, c.Lits>>uint(i)&1 == 1)
		t = t.And(p)
	}
	return t
}

// NumLits returns the number of literals in the cube.
func (c Cube) NumLits() int {
	count := 0
	for m := c.Mask; m != 0; m &= m - 1 {
		count++
	}
	return count
}

// String renders the cube like "x0·¬x2" ("1" for the empty cube).
func (c Cube) String() string {
	if c.Mask == 0 {
		return "1"
	}
	var parts []string
	for i := 0; i < 32; i++ {
		if c.Mask>>uint(i)&1 == 0 {
			continue
		}
		if c.Lits>>uint(i)&1 == 1 {
			parts = append(parts, fmt.Sprintf("x%d", i))
		} else {
			parts = append(parts, fmt.Sprintf("¬x%d", i))
		}
	}
	return strings.Join(parts, "·")
}

// ISOP computes an irredundant sum-of-products cover of f with the
// Minato–Morreale interval algorithm (the same procedure kitty exposes as
// isop): every cube is prime within the interval and no cube is redundant.
func (f *TT) ISOP() []Cube {
	cubes, _ := isop(f, f, f.NumVars()-1)
	return cubes
}

// SOPString renders the ISOP like "x0·x1 + x0·¬x2" ("0" for const-0).
func (f *TT) SOPString() string {
	cubes := f.ISOP()
	if len(cubes) == 0 {
		return "0"
	}
	parts := make([]string, len(cubes))
	for i, c := range cubes {
		parts[i] = c.String()
	}
	return strings.Join(parts, " + ")
}

// CubesCover evaluates a cube list back into a truth table (the union).
func CubesCover(cubes []Cube, n int) *TT {
	t := New(n)
	for _, c := range cubes {
		t = t.Or(c.Eval(n))
	}
	return t
}

// isop computes an ISOP of any function in the interval [lower, upper]
// using variables 0..top. It returns the cubes and the exact cover they
// realize (lower ⊆ cover ⊆ upper).
func isop(lower, upper *TT, top int) ([]Cube, *TT) {
	n := lower.NumVars()
	if lower.IsConst0() {
		return nil, New(n)
	}
	if upper.IsConst1() {
		return []Cube{{}}, Const(n, true)
	}
	// Find the highest variable the interval actually depends on.
	x := top
	for x >= 0 && !lower.DependsOn(x) && !upper.DependsOn(x) {
		x--
	}
	if x < 0 {
		// No free variable left: lower ≤ upper with both constant on the
		// remaining space — lower non-0 means upper is 1 here, handled
		// above; reaching this point means the interval is inconsistent.
		panic("tt: isop interval inconsistent")
	}

	l0, l1 := lower.Cofactor(x, false), lower.Cofactor(x, true)
	u0, u1 := upper.Cofactor(x, false), upper.Cofactor(x, true)

	// Cubes that must contain the literal ¬x / x.
	c0, g0 := isop(l0.And(u1.Not()), u0, x-1)
	c1, g1 := isop(l1.And(u0.Not()), u1, x-1)

	// Remaining onset coverable without mentioning x.
	lr := l0.And(g0.Not()).Or(l1.And(g1.Not()))
	cr, gr := isop(lr, u0.And(u1), x-1)

	cubes := make([]Cube, 0, len(c0)+len(c1)+len(cr))
	for _, c := range c0 {
		c.Mask |= 1 << uint(x)
		cubes = append(cubes, c)
	}
	for _, c := range c1 {
		c.Mask |= 1 << uint(x)
		c.Lits |= 1 << uint(x)
		cubes = append(cubes, c)
	}
	cubes = append(cubes, cr...)

	nx := CofactorMask(n, x, false)
	px := CofactorMask(n, x, true)
	cover := nx.And(g0).Or(px.And(g1)).Or(gr)
	return cubes, cover
}
