package tt

// Single-word fast paths for functions of at most 6 variables. The exhaustive
// NPN canonicalizer enumerates tens of thousands of flip/swap steps per
// function, so these operate directly on uint64 values with no allocation.

// WordMask returns the mask of the low 2^n bits for n ≤ 6.
func WordMask(n int) uint64 {
	if n >= 6 {
		return ^uint64(0)
	}
	return uint64(1)<<(1<<uint(n)) - 1
}

// FlipVarWord negates variable i (< 6) in the single-word table w.
func FlipVarWord(w uint64, i int) uint64 {
	s := uint(1) << uint(i)
	p := projections[i]
	return (w&p)>>s | (w&^p)<<s
}

// SwapAdjacentWord exchanges variables i and i+1 (i+1 < 6) in w.
func SwapAdjacentWord(w uint64, i int) uint64 {
	return SwapVarsWord(w, i, i+1)
}

// SwapVarsWord exchanges variables i and j (both < 6) in w.
func SwapVarsWord(w uint64, i, j int) uint64 {
	if i == j {
		return w
	}
	if i > j {
		i, j = j, i
	}
	d := uint(1)<<uint(j) - uint(1)<<uint(i)
	m := projections[i] &^ projections[j]
	x := (w ^ w>>d) & m
	return w ^ x ^ x<<d
}

// CofactorCountWord returns |f|x_i=v| for a single-word table of n ≤ 6
// variables.
func CofactorCountWord(w uint64, n, i int, v bool) int {
	p := projections[i]
	if !v {
		p = ^p
	}
	return onesCount(w & p & WordMask(n))
}
