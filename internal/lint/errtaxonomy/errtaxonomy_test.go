package errtaxonomy_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/errtaxonomy"
)

// TestFixture diffs the analyzer against the `// want` expectations in
// testdata/src: Code constants missing from Codes() and/or HTTPStatus
// are flagged at their declarations, inline-minted code strings are
// flagged at their literals, and declared codes (including conversions
// that land on declared values) stay clean.
func TestFixture(t *testing.T) {
	if nonGo := lint.RunFixture(t, errtaxonomy.Analyzer, "testdata", "a", "repro/internal/api"); len(nonGo) != 0 {
		t.Errorf("unexpected non-Go findings: %v", nonGo)
	}
}
