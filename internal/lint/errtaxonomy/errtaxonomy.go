// Package errtaxonomy keeps the error-code taxonomy closed: every
// api.Code constant must be published by api.Codes() (which feeds
// GET /v2/spec and docs/WIRE.md) and must have an explicit case in
// (*Error).HTTPStatus — a code that falls through to the default status
// is wrong on the wire the day someone assumes the default. Conversely,
// no package may mint an error code string that is not a declared
// constant: `api.Code("oops")` or `api.Error{Code: "oops"}` anywhere in
// the module is a finding, because such a code is invisible to the spec
// endpoint, the docs, and the client SDK's switch statements.
package errtaxonomy

import (
	"go/ast"
	"go/constant"
	"go/types"

	"repro/internal/lint"
)

// Analyzer is the errtaxonomy analyzer.
var Analyzer = &lint.Analyzer{
	Name: "errtaxonomy",
	Doc:  "api error codes must be registered in Codes() and HTTPStatus, and never minted ad hoc",
	Run:  run,
}

func run(pass *lint.Pass) error {
	apiPath := pass.Module + "/internal/api"
	apiPkg := pass.Package(apiPath)
	if apiPkg == nil {
		return nil // api package not under analysis
	}
	codeObj, ok := apiPkg.Types.Scope().Lookup("Code").(*types.TypeName)
	if !ok {
		return nil
	}
	codeType := codeObj.Type()

	// The declared taxonomy: every package-level constant of type Code.
	declared := map[types.Object]string{} // object -> string value
	values := map[string]bool{}
	scope := apiPkg.Types.Scope()
	for _, name := range scope.Names() {
		cst, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(cst.Type(), codeType) {
			continue
		}
		v := constant.StringVal(cst.Val())
		declared[cst] = v
		values[v] = true
	}

	published := identsResolvingTo(pass, apiPkg, "Codes", declared)
	cased := httpStatusCases(pass, apiPkg, declared)

	for obj, val := range declared {
		if !published[obj] {
			pass.Reportf(obj.Pos(), "api.Code %s (%q) is not returned by api.Codes(); it is invisible to GET /v2/spec", obj.Name(), val)
		}
		if !cased[obj] {
			pass.Reportf(obj.Pos(), "api.Code %s (%q) has no explicit case in (*Error).HTTPStatus; it would silently take the default status", obj.Name(), val)
		}
	}

	// Ad-hoc minting: any string literal the type-checker assigned the
	// Code type whose value is outside the declared set. Declared
	// constants pass by construction (their values define the set).
	for _, pkg := range pass.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				expr, ok := n.(ast.Expr)
				if !ok {
					return true
				}
				switch expr.(type) {
				case *ast.BasicLit, *ast.CallExpr: // literals and conversions
				default:
					return true
				}
				tv, ok := pass.Info.Types[expr]
				if !ok || tv.Type == nil || !types.Identical(tv.Type, codeType) {
					return true
				}
				if tv.Value == nil || tv.Value.Kind() != constant.String {
					return true
				}
				if v := constant.StringVal(tv.Value); !values[v] {
					pass.Reportf(expr.Pos(), "error code %q is not a declared api.Code constant; register it in the api taxonomy instead of minting it inline", v)
					return false // don't double-report the literal inside a conversion
				}
				return true
			})
		}
	}
	return nil
}

// identsResolvingTo collects, inside the named function of pkg, every
// identifier that resolves to one of the declared Code constants.
func identsResolvingTo(pass *lint.Pass, pkg *lint.Package, funcName string, declared map[types.Object]string) map[types.Object]bool {
	out := map[types.Object]bool{}
	fd := findFunc(pkg, funcName)
	if fd == nil {
		return out
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.Info.Uses[id]; obj != nil {
				if _, isCode := declared[obj]; isCode {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// httpStatusCases collects the Code constants that appear in the case
// lists of switch statements inside the HTTPStatus method.
func httpStatusCases(pass *lint.Pass, pkg *lint.Package, declared map[types.Object]string) map[types.Object]bool {
	out := map[types.Object]bool{}
	fd := findFunc(pkg, "HTTPStatus")
	if fd == nil {
		return out
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		cc, ok := n.(*ast.CaseClause)
		if !ok {
			return true
		}
		for _, e := range cc.List {
			if id, ok := ast.Unparen(e).(*ast.Ident); ok {
				if obj := pass.Info.Uses[id]; obj != nil {
					if _, isCode := declared[obj]; isCode {
						out[obj] = true
					}
				}
			}
		}
		return true
	})
	return out
}

// findFunc returns the function or method declaration named name in pkg.
func findFunc(pkg *lint.Package, name string) *ast.FuncDecl {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Name == name && fd.Body != nil {
				return fd
			}
		}
	}
	return nil
}
