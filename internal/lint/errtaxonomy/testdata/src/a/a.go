// Package a is the minting half of the errtaxonomy fixture: error code
// strings outside the declared taxonomy are findings, declared
// constants (and conversions that land on declared values) are not.
package a

import "repro/internal/api"

func bad() api.Code {
	return api.Code("minted_inline") // want `error code "minted_inline" is not a declared api\.Code constant`
}

func badLit() *api.Error {
	return &api.Error{Code: "also_minted", Msg: "x"} // want `error code "also_minted" is not a declared api\.Code constant`
}

func good() api.Code {
	return api.CodeOK
}

func goodConv() api.Code {
	return api.Code("ok_code") // conversion to a declared value: clean
}

func goodLit() *api.Error {
	return &api.Error{Code: api.CodeUncased, Msg: "x"}
}
