// Package api is the errtaxonomy fixture: a Code taxonomy where one
// constant is fully registered, one is missing from Codes(), one has no
// HTTPStatus case, and one is missing from both.
package api

import "net/http"

// Code is a machine-readable error code.
type Code string

const (
	CodeOK      Code = "ok_code"     // published and cased: clean
	CodeUnpub   Code = "unpublished" // want `not returned by api\.Codes`
	CodeUncased Code = "uncased"     // want `no explicit case in \(\*Error\)\.HTTPStatus`
	CodeOrphan  Code = "orphan_code" // want `not returned by api\.Codes` `no explicit case`
)

// Codes publishes the registered taxonomy.
func Codes() []Code {
	return []Code{CodeOK, CodeUncased}
}

// Error is a wire error.
type Error struct {
	Code Code
	Msg  string
}

// HTTPStatus maps a code to its transport status.
func (e *Error) HTTPStatus() int {
	switch e.Code {
	case CodeOK:
		return http.StatusOK
	case CodeUnpub:
		return http.StatusTeapot
	default:
		return http.StatusInternalServerError
	}
}
