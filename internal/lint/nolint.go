// nolint handling: a finding is suppressed by `//nolint:npn/<analyzer>`
// on the flagged line or on a whole-line comment directly above it, and
// the directive must carry a justification — `//nolint:npn/lockfsync`
// alone is itself reported, `//nolint:npn/lockfsync -- the sync here is
// bounded by X` suppresses. The justification requirement is the point:
// every silenced invariant violation documents why it is safe, in the
// code, where the next refactor will read it.
package lint

import (
	"go/ast"
	"os"
	"strings"
)

// nolintDirective is one parsed //nolint:npn/<name> comment.
type nolintDirective struct {
	analyzer      string
	line          int // line the comment sits on
	file          string
	justification string
	ownLine       bool // the comment is alone on its line (suppresses the line below)
}

const nolintPrefix = "//nolint:npn/"

// collectNolint scans every file's comments for npn nolint directives.
func collectNolint(prog *Program) []nolintDirective {
	var out []nolintDirective
	lines := map[string][]string{}
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					d, ok := parseNolint(c)
					if !ok {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					d.file = pos.Filename
					d.line = pos.Line
					// Standalone (suppresses the next line) when nothing but
					// whitespace precedes it on its source line.
					if _, ok := lines[d.file]; !ok {
						data, err := os.ReadFile(d.file)
						if err == nil {
							lines[d.file] = strings.Split(string(data), "\n")
						} else {
							lines[d.file] = nil
						}
					}
					if ls := lines[d.file]; d.line-1 < len(ls) && pos.Column > 0 {
						prefix := ls[d.line-1]
						if pos.Column-1 <= len(prefix) {
							d.ownLine = strings.TrimSpace(prefix[:pos.Column-1]) == ""
						}
					}
					out = append(out, d)
				}
			}
		}
	}
	return out
}

// parseNolint extracts the analyzer name and justification from one
// comment, if it is an npn nolint directive.
func parseNolint(c *ast.Comment) (nolintDirective, bool) {
	text := c.Text
	if !strings.HasPrefix(text, nolintPrefix) {
		return nolintDirective{}, false
	}
	rest := text[len(nolintPrefix):]
	name := rest
	just := ""
	for i, r := range rest {
		if r == ' ' || r == '\t' {
			name, just = rest[:i], strings.TrimSpace(rest[i:])
			break
		}
	}
	just = strings.TrimLeft(just, "-— \t")
	return nolintDirective{analyzer: name, justification: strings.TrimSpace(just)}, true
}

// applyNolint filters diags through the directives for one analyzer and
// appends findings for bare directives that lack a justification.
func applyNolint(prog *Program, analyzer string, diags []Diagnostic) []Diagnostic {
	dirs := collectNolint(prog)
	var out []Diagnostic
	suppressed := func(d Diagnostic) bool {
		for _, dir := range dirs {
			if dir.analyzer != analyzer || dir.file != d.File || dir.justification == "" {
				continue
			}
			if dir.line == d.Line || (dir.ownLine && dir.line == d.Line-1) {
				return true
			}
		}
		return false
	}
	for _, d := range diags {
		if !suppressed(d) {
			out = append(out, d)
		}
	}
	for _, dir := range dirs {
		if dir.analyzer == analyzer && dir.justification == "" {
			out = append(out, Diagnostic{
				Analyzer: analyzer, File: dir.file, Line: dir.line,
				Msg: "nolint:npn/" + analyzer + " needs a justification after the analyzer name",
			})
		}
	}
	return out
}
