// Shared semantic helpers for the analyzers: resolving call expressions
// to their callee objects, indexing function bodies by object, and
// devirtualizing interface method calls to the module types that
// implement them — the machinery behind lockfsync's interprocedural
// reachability.
package lint

import (
	"go/ast"
	"go/types"
)

// FuncBodies indexes every function and method declaration in the
// program by its types object, so analyzers can walk from a call site
// into the callee's body.
func FuncBodies(pass *Pass) map[*types.Func]*ast.FuncDecl {
	out := map[*types.Func]*ast.FuncDecl{}
	for _, pkg := range pass.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Name == nil {
					continue
				}
				if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
					out[obj] = fd
				}
			}
		}
	}
	return out
}

// CalleeOf resolves a call expression to the *types.Func it statically
// invokes: a package function, a method on a concrete receiver, or an
// interface method (the caller decides whether to devirtualize). It
// returns nil for calls through function values, builtins and type
// conversions.
func CalleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Qualified identifier: pkg.Func.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// IsInterfaceCall reports whether call invokes a method through an
// interface value.
func IsInterfaceCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	_, isIface := s.Recv().Underlying().(*types.Interface)
	return isIface
}

// Implementations returns, for an interface method obj, the concrete
// methods of module types that implement it — the devirtualization set a
// whole-module analysis may assume the call dispatches into. Types are
// drawn from every loaded package's scope (including unexported ones).
func Implementations(pass *Pass, iface *types.Interface, method *types.Func) []*types.Func {
	var out []*types.Func
	seen := map[*types.Func]bool{}
	for _, pkg := range pass.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if types.IsInterface(named) {
				continue
			}
			for _, typ := range []types.Type{named, types.NewPointer(named)} {
				if !types.Implements(typ, iface) {
					continue
				}
				obj, _, _ := types.LookupFieldOrMethod(typ, true, method.Pkg(), method.Name())
				if fn, ok := obj.(*types.Func); ok && !seen[fn] {
					seen[fn] = true
					out = append(out, fn)
				}
			}
		}
	}
	return out
}

// FuncID renders a stable human-readable identifier for fn:
// pkg.Func or pkg.(*Recv).Method.
func FuncID(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	if ok && sig.Recv() != nil {
		return pkg + ".(" + types.TypeString(sig.Recv().Type(), func(p *types.Package) string { return "" }) + ")." + fn.Name()
	}
	if pkg != "" {
		return pkg + "." + fn.Name()
	}
	return fn.Name()
}
