// A small statement-level control-flow graph over go/ast, sufficient for
// the path questions the analyzers ask ("is a function exit reachable
// from this statement without passing through that one?"). It models if,
// for, range, switch, type switch, select, block nesting, return, and
// unlabeled break/continue/fallthrough. Functions using goto or labeled
// branches set OK=false and the analyzers skip them rather than guess —
// the repo has none, and the conservative bail-out keeps the analysis
// honest if one ever appears.
package lint

import (
	"go/ast"
	"go/token"
)

// EdgeKind annotates a CFG edge with the branch it takes.
type EdgeKind int

const (
	// EdgeNormal is ordinary fallthrough control flow.
	EdgeNormal EdgeKind = iota
	// EdgeTrue leaves an if node when its condition held.
	EdgeTrue
	// EdgeFalse leaves an if node when its condition did not hold.
	EdgeFalse
)

// Edge is one directed CFG edge.
type Edge struct {
	To   *CFGNode
	Kind EdgeKind
}

// CFGNode is one statement (Stmt == nil for the synthetic exit node).
type CFGNode struct {
	Stmt  ast.Stmt
	Succs []Edge
	// Cond is set on if nodes: the branch condition governing EdgeTrue
	// and EdgeFalse successors.
	Cond ast.Expr
}

// CFG is the graph of one function body.
type CFG struct {
	Entry *CFGNode // synthetic; its successors start the body
	Exit  *CFGNode // synthetic; reached by every return and by falling off the end
	Nodes []*CFGNode
	// OK is false when the body uses control flow the builder does not
	// model (goto, labeled branches); analyzers must then skip the body.
	OK bool
}

// EnclosingStmt returns the innermost non-block statement ancestor of n
// within body — the statement the CFG builder models as n's node (block
// statements are flattened and never get nodes of their own).
func EnclosingStmt(body *ast.BlockStmt, n ast.Node) ast.Stmt {
	var found ast.Stmt
	var stack []ast.Node
	ast.Inspect(body, func(m ast.Node) bool {
		if found != nil {
			return false
		}
		if m == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, m)
		if m == n {
			for i := len(stack) - 1; i >= 0; i-- {
				s, ok := stack[i].(ast.Stmt)
				if !ok {
					continue
				}
				if _, isBlock := s.(*ast.BlockStmt); isBlock {
					continue
				}
				found = s
				return false
			}
		}
		return true
	})
	return found
}

// NodeFor returns the CFG node for stmt, or nil.
func (g *CFG) NodeFor(stmt ast.Stmt) *CFGNode {
	for _, n := range g.Nodes {
		if n.Stmt == stmt {
			return n
		}
	}
	return nil
}

// BuildCFG builds the graph of body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{g: &CFG{OK: true}}
	b.g.Entry = b.newNode(nil)
	b.g.Exit = b.newNode(nil)
	frontier := b.stmtList(body.List, []*CFGNode{b.g.Entry}, EdgeNormal)
	b.connect(frontier, b.g.Exit, EdgeNormal)
	return b.g
}

type loopCtx struct {
	breakTo    *CFGNode
	continueTo *CFGNode
	isSwitch   bool // break targets switches/selects too
}

type cfgBuilder struct {
	g     *CFG
	loops []loopCtx
	// pendingFallthrough collects fallthrough nodes awaiting the next
	// case clause's first node.
	pendingFallthrough []*CFGNode
}

func (b *cfgBuilder) newNode(s ast.Stmt) *CFGNode {
	n := &CFGNode{Stmt: s}
	b.g.Nodes = append(b.g.Nodes, n)
	return n
}

func (b *cfgBuilder) connect(from []*CFGNode, to *CFGNode, kind EdgeKind) {
	for _, f := range from {
		f.Succs = append(f.Succs, Edge{To: to, Kind: kind})
	}
}

// stmtList threads the frontier through a statement list.
func (b *cfgBuilder) stmtList(list []ast.Stmt, from []*CFGNode, kind EdgeKind) []*CFGNode {
	cur, curKind := from, kind
	for _, s := range list {
		cur = b.stmt(s, cur, curKind)
		curKind = EdgeNormal
	}
	return cur
}

// stmt wires one statement into the graph and returns the new frontier —
// the nodes whose control continues to whatever follows s.
func (b *cfgBuilder) stmt(s ast.Stmt, from []*CFGNode, kind EdgeKind) []*CFGNode {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmtList(s.List, from, kind)

	case *ast.IfStmt:
		if s.Init != nil {
			init := b.newNode(s.Init)
			b.connect(from, init, kind)
			from, kind = []*CFGNode{init}, EdgeNormal
		}
		cond := b.newNode(s)
		cond.Cond = s.Cond
		b.connect(from, cond, kind)
		thenOut := b.stmtList(s.Body.List, []*CFGNode{cond}, EdgeTrue)
		var elseOut []*CFGNode
		if s.Else != nil {
			elseOut = b.stmt(s.Else, []*CFGNode{cond}, EdgeFalse)
		} else {
			elseOut = []*CFGNode{cond}
			// The implicit-else edge kind is applied when the frontier is
			// next connected; record it by a synthetic join node so the
			// EdgeFalse annotation is not lost.
			join := b.newNode(nil)
			b.connect(elseOut, join, EdgeFalse)
			elseOut = []*CFGNode{join}
		}
		return append(thenOut, elseOut...)

	case *ast.ForStmt:
		if s.Init != nil {
			init := b.newNode(s.Init)
			b.connect(from, init, kind)
			from, kind = []*CFGNode{init}, EdgeNormal
		}
		head := b.newNode(s)
		head.Cond = s.Cond
		b.connect(from, head, kind)
		var post *CFGNode
		if s.Post != nil {
			post = b.newNode(s.Post)
			post.Succs = append(post.Succs, Edge{To: head})
		}
		continueTo := head
		if post != nil {
			continueTo = post
		}
		after := b.newNode(nil) // synthetic loop-exit join
		b.loops = append(b.loops, loopCtx{breakTo: after, continueTo: continueTo})
		bodyKind := EdgeNormal
		if s.Cond != nil {
			bodyKind = EdgeTrue
		}
		bodyOut := b.stmtList(s.Body.List, []*CFGNode{head}, bodyKind)
		b.loops = b.loops[:len(b.loops)-1]
		b.connect(bodyOut, continueTo, EdgeNormal)
		if s.Cond != nil {
			head.Succs = append(head.Succs, Edge{To: after, Kind: EdgeFalse})
		}
		return []*CFGNode{after}

	case *ast.RangeStmt:
		head := b.newNode(s)
		b.connect(from, head, kind)
		after := b.newNode(nil)
		head.Succs = append(head.Succs, Edge{To: after}) // empty collection
		b.loops = append(b.loops, loopCtx{breakTo: after, continueTo: head})
		bodyOut := b.stmtList(s.Body.List, []*CFGNode{head}, EdgeNormal)
		b.loops = b.loops[:len(b.loops)-1]
		b.connect(bodyOut, head, EdgeNormal)
		return []*CFGNode{after}

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return b.switchLike(s, from, kind)

	case *ast.ReturnStmt:
		n := b.newNode(s)
		b.connect(from, n, kind)
		n.Succs = append(n.Succs, Edge{To: b.g.Exit})
		return nil

	case *ast.BranchStmt:
		n := b.newNode(s)
		b.connect(from, n, kind)
		if s.Label != nil {
			b.g.OK = false
			return nil
		}
		switch s.Tok {
		case token.BREAK:
			if len(b.loops) > 0 {
				n.Succs = append(n.Succs, Edge{To: b.loops[len(b.loops)-1].breakTo})
				return nil
			}
			b.g.OK = false
		case token.CONTINUE:
			for i := len(b.loops) - 1; i >= 0; i-- {
				if b.loops[i].isSwitch {
					continue
				}
				n.Succs = append(n.Succs, Edge{To: b.loops[i].continueTo})
				return nil
			}
			b.g.OK = false
		case token.FALLTHROUGH:
			b.pendingFallthrough = append(b.pendingFallthrough, n)
		case token.GOTO:
			b.g.OK = false
		}
		return nil

	case *ast.LabeledStmt:
		b.g.OK = false
		return b.stmt(s.Stmt, from, kind)

	default:
		// Plain statements: assignments, expressions, declarations, defer,
		// go, send, incdec. One node, straight through.
		n := b.newNode(s)
		b.connect(from, n, kind)
		return []*CFGNode{n}
	}
}

// switchLike wires switch, type switch and select: every clause body
// starts at the head node; the frontier is the union of clause exits,
// plus the head itself when there is no default clause.
func (b *cfgBuilder) switchLike(s ast.Stmt, from []*CFGNode, kind EdgeKind) []*CFGNode {
	var init ast.Stmt
	var clauses []ast.Stmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		init = s.Init
		clauses = s.Body.List
	case *ast.TypeSwitchStmt:
		init = s.Init
		clauses = s.Body.List
	case *ast.SelectStmt:
		clauses = s.Body.List
	}
	if init != nil {
		n := b.newNode(init)
		b.connect(from, n, kind)
		from, kind = []*CFGNode{n}, EdgeNormal
	}
	head := b.newNode(s)
	b.connect(from, head, kind)
	after := b.newNode(nil)
	b.loops = append(b.loops, loopCtx{breakTo: after, isSwitch: true})
	var out []*CFGNode
	hasDefault := false
	// One synthetic entry node per clause, so a fallthrough from clause i
	// can target clause i+1's body precisely.
	entries := make([]*CFGNode, len(clauses))
	for i := range clauses {
		entries[i] = b.newNode(nil)
		head.Succs = append(head.Succs, Edge{To: entries[i]})
	}
	var carried []*CFGNode
	for i, c := range clauses {
		var body []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			body = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
				body = c.Body
			} else {
				// The comm statement itself executes when the case fires.
				body = append([]ast.Stmt{c.Comm}, c.Body...)
			}
		}
		for _, ft := range carried {
			ft.Succs = append(ft.Succs, Edge{To: entries[i]})
		}
		carried = nil
		clauseOut := b.stmtList(body, []*CFGNode{entries[i]}, EdgeNormal)
		carried = b.pendingFallthrough
		b.pendingFallthrough = nil
		out = append(out, clauseOut...)
	}
	if len(carried) > 0 {
		// fallthrough in the final clause is a compile error; be safe.
		b.g.OK = false
	}
	b.loops = b.loops[:len(b.loops)-1]
	b.connect(out, after, EdgeNormal)
	if !hasDefault {
		head.Succs = append(head.Succs, Edge{To: after})
	}
	return []*CFGNode{after}
}
