// The multichecker engine behind cmd/npnlint: flag parsing, program
// loading, analyzer dispatch and finding output, factored here so the
// cmd smoke test can run the identical logic in-process.
package lint

import (
	"flag"
	"fmt"
	"io"
	"strings"
)

// Main loads the packages matched by the positional patterns, runs the
// given analyzers and prints findings to stdout. It returns the process
// exit code: 0 clean, 1 findings, 2 usage or load failure.
func Main(analyzers []*Analyzer, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("npnlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	dir := fs.String("C", ".", "directory to run in (module root is found from here)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: npnlint [-only a,b] [-C dir] packages...\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(stderr, "  %-12s %s\n", a.Name, firstLine(a.Doc))
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, firstLine(a.Doc))
		}
		return 0
	}
	selected := analyzers
	if *only != "" {
		byName := map[string]*Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		selected = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "npnlint: unknown analyzer %q\n", name)
				return 2
			}
			selected = append(selected, a)
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		fs.Usage()
		return 2
	}

	prog, err := Load(*dir, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "npnlint: %v\n", err)
		return 2
	}
	var escapes []Escape
	for _, a := range selected {
		if a.NeedEscapes {
			escapes, err = EscapeDiagnostics(*dir, patterns)
			if err != nil {
				fmt.Fprintf(stderr, "npnlint: %v\n", err)
				return 2
			}
			break
		}
	}

	var all []Diagnostic
	for _, a := range selected {
		diags, err := RunAnalyzer(a, prog, escapes)
		if err != nil {
			fmt.Fprintf(stderr, "npnlint: %v\n", err)
			return 2
		}
		all = append(all, diags...)
	}
	sortDiags(all)
	for _, d := range all {
		fmt.Fprintln(stdout, d.String())
	}
	if len(all) > 0 {
		fmt.Fprintf(stderr, "npnlint: %d finding(s)\n", len(all))
		return 1
	}
	return 0
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
