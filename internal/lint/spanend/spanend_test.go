package spanend_test

import (
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/spanend"
)

// TestFixture diffs the analyzer against the `// want` expectations in
// testdata/src: leaked spans on every shape (discard, blank, no End,
// path-sensitive leak) and silence on every handled shape (defer,
// all-paths End, nil guards, escape, closure, method value, justified
// nolint).
func TestFixture(t *testing.T) {
	if nonGo := lint.RunFixture(t, spanend.Analyzer, "testdata", "a"); len(nonGo) != 0 {
		t.Errorf("unexpected non-Go findings: %v", nonGo)
	}
}

// TestBareNolint checks that a //nolint:npn/spanend directive without a
// justification is itself reported.
func TestBareNolint(t *testing.T) {
	diags, _ := lint.FixtureDiagnostics(t, spanend.Analyzer, "testdata/nolint", "a")
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want exactly the bare-directive one: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Msg, "needs a justification") {
		t.Errorf("unexpected finding: %v", diags[0])
	}
}
