// Package a is the spanend fixture: each function exercises one
// handled-or-leaked span shape the analyzer must classify correctly.
package a

import (
	"context"
	"sync"

	"repro/internal/obs"
)

func use(ctx context.Context) {}

// goodDefer ends via defer: clean on every path.
func goodDefer(ctx context.Context) {
	ctx, sp := obs.StartSpan(ctx, "good-defer")
	defer sp.End()
	use(ctx)
}

// goodAllPaths ends explicitly on both branches.
func goodAllPaths(ctx context.Context, fast bool) {
	_, sp := obs.StartSpan(ctx, "good-all-paths")
	if fast {
		sp.End()
		return
	}
	sp.End()
}

// goodNilGuardReturn returns early only when sp is nil, where End is
// unnecessary; the non-nil path always ends.
func goodNilGuardReturn(ctx context.Context) {
	_, sp := obs.StartSpan(ctx, "good-nil-guard")
	if sp == nil {
		return
	}
	sp.End()
}

// goodNilGuardEnd ends inside the non-nil guard, which covers every
// span that actually exists.
func goodNilGuardEnd(ctx context.Context) {
	_, sp := obs.StartSpan(ctx, "good-nil-guard-end")
	use(ctx)
	if sp != nil {
		sp.End()
	}
}

// goodEscape returns the span: ownership moves to the caller.
func goodEscape(ctx context.Context) *obs.Span {
	_, sp := obs.StartSpan(ctx, "good-escape")
	return sp
}

// goodClosure defers a cleanup literal that ends the span.
func goodClosure(ctx context.Context) {
	_, sp := obs.StartSpan(ctx, "good-closure")
	defer func() {
		sp.End()
	}()
	use(ctx)
}

// goodMethodValue hands sp.End off as a method value.
func goodMethodValue(ctx context.Context, once *sync.Once) {
	_, sp := obs.StartSpan(ctx, "good-method-value")
	once.Do(sp.End)
}

// badDiscard drops both StartSpan results on the floor.
func badDiscard(ctx context.Context) {
	obs.StartSpan(ctx, "bad-discard") // want `result of obs\.StartSpan is discarded`
}

// badBlank discards the span with the blank identifier.
func badBlank(ctx context.Context) {
	ctx, _ = obs.StartSpan(ctx, "bad-blank") // want `discarded with _`
	use(ctx)
}

// badNeverEnded uses the span but never ends it.
func badNeverEnded(ctx context.Context) {
	_, sp := obs.StartSpan(ctx, "bad-never") // want `span sp is never ended on any path`
	sp.SetAttr("k", "v")
}

// badLeakPath ends the span only on the slow path; the fast return
// leaks it.
func badLeakPath(ctx context.Context, fast bool) {
	_, sp := obs.StartSpan(ctx, "bad-leak") // want `span sp is not ended on all paths`
	if fast {
		return
	}
	sp.End()
}

// suppressed is badNeverEnded under a justified nolint: no finding.
func suppressed(ctx context.Context) {
	//nolint:npn/spanend -- fixture: exercises justified suppression
	_, sp := obs.StartSpan(ctx, "suppressed")
	sp.SetAttr("k", "v")
}
