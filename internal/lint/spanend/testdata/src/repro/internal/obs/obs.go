// Package obs is a fixture stub of the real tracing API: StartSpan
// returns a nil-safe span whose End the spanend analyzer requires on
// every return path. Only the shapes the analyzer matches are stubbed.
package obs

import "context"

// Span is one fixture span. A nil *Span is valid: End on nil is a no-op.
type Span struct{ name string }

// End closes the span.
func (s *Span) End() {}

// SetAttr records an attribute (a non-End method use of the span).
func (s *Span) SetAttr(key, value string) {}

// StartSpan opens a span; the analyzer matches this by package path and
// name.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return ctx, &Span{name: name}
}
