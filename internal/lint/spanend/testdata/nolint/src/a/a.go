// Package a exercises the bare-nolint rule: a directive that names the
// analyzer but carries no justification is itself a finding.
package a

//nolint:npn/spanend
func unjustified() {}
