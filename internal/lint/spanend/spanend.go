// Package spanend checks that every span returned by obs.StartSpan has
// End() called on every path out of the function that started it. The
// span API is nil-safe by design (tracing off => nil span, End on nil is
// a no-op), which means a forgotten End never crashes — it silently
// truncates the timeline and pins the span's slot until the trace is
// evicted. This analyzer makes the leak loud.
//
// A span is considered handled when any of these hold:
//
//   - sp.End() (or `defer sp.End()`) is reached on every path to every
//     return, proven over the statement CFG; the nil-guard idiom
//     `if sp != nil { ... }` is understood, so paths where sp is nil do
//     not require an End;
//   - sp.End is taken as a method value (sync.Once.Do(sp.End) etc.);
//   - sp is captured by a function literal that calls End, or escapes
//     the function (returned, passed as an argument, stored into a
//     struct, map or global) — ownership moved, the analysis stops.
//
// Discarding the span result with `_` or calling StartSpan as a bare
// statement is always a finding.
package spanend

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint"
)

// Analyzer is the spanend analyzer.
var Analyzer = &lint.Analyzer{
	Name: "spanend",
	Doc:  "obs.StartSpan results must be ended on every return path",
	Run:  run,
}

func run(pass *lint.Pass) error {
	obsPath := pass.Module + "/internal/obs"
	for _, pkg := range pass.Pkgs {
		if pkg.Path == obsPath {
			continue // the span implementation manages its own lifecycle
		}
		for _, f := range pkg.Files {
			checkFile(pass, f, obsPath)
		}
	}
	return nil
}

// checkFile visits every function-like body (declarations and literals)
// in f and checks each StartSpan call it directly contains.
func checkFile(pass *lint.Pass, f *ast.File, obsPath string) {
	var visit func(body *ast.BlockStmt)
	visit = func(body *ast.BlockStmt) {
		if body == nil {
			return
		}
		// Recurse into nested literals first; each body is analyzed as its
		// own function with its own CFG.
		ast.Inspect(body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok && lit.Body != body {
				visit(lit.Body)
				return false
			}
			return true
		})
		for _, call := range directStartSpanCalls(pass, body, obsPath) {
			checkSpan(pass, body, call, obsPath)
		}
	}
	for _, decl := range f.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok {
			visit(fd.Body)
		}
	}
}

// isStartSpan reports whether call invokes obs.StartSpan.
func isStartSpan(pass *lint.Pass, call *ast.CallExpr, obsPath string) bool {
	fn := lint.CalleeOf(pass.Info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == obsPath && fn.Name() == "StartSpan"
}

// directStartSpanCalls returns the StartSpan calls lexically inside body
// but not inside a nested function literal.
func directStartSpanCalls(pass *lint.Pass, body *ast.BlockStmt, obsPath string) []*ast.CallExpr {
	var out []*ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != body {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isStartSpan(pass, call, obsPath) {
			out = append(out, call)
		}
		return true
	})
	return out
}

// checkSpan analyzes one StartSpan call inside body.
func checkSpan(pass *lint.Pass, body *ast.BlockStmt, call *ast.CallExpr, obsPath string) {
	asg := enclosingAssign(body, call)
	if asg == nil || len(asg.Lhs) != 2 {
		pass.Reportf(call.Pos(), "result of obs.StartSpan is discarded; the span is never ended")
		return
	}
	spIdent, ok := asg.Lhs[1].(*ast.Ident)
	if !ok {
		return // sp assigned through a selector/index: treat as escaped
	}
	if spIdent.Name == "_" {
		pass.Reportf(call.Pos(), "span returned by obs.StartSpan is discarded with _; it is never ended")
		return
	}
	sp, _ := pass.Info.Defs[spIdent].(*types.Var)
	if sp == nil {
		sp, _ = pass.Info.Uses[spIdent].(*types.Var) // plain = assignment
	}
	if sp == nil {
		return
	}

	u := classifyUses(pass, body, call, sp)
	if u.escapes || u.closureEnd || u.methodValue {
		return
	}
	if len(u.endStmts) == 0 {
		pass.Reportf(call.Pos(), "span %s is never ended on any path (no %s.End() call)", sp.Name(), sp.Name())
		return
	}

	// Path-sensitivity: is Exit reachable from the StartSpan statement
	// without passing an End (or a reassignment, or a path where sp is
	// provably nil)?
	g := lint.BuildCFG(body)
	if !g.OK {
		return // unmodeled control flow; stay quiet rather than guess
	}
	start := g.NodeFor(lint.EnclosingStmt(body, call))
	if start == nil {
		return
	}
	if leakNode := findLeakPath(pass, g, start, sp, u); leakNode != nil {
		line := pass.Fset.Position(exitExamplePos(leakNode, body)).Line
		pass.Reportf(call.Pos(), "span %s is not ended on all paths: a return around line %d is reachable without %s.End()", sp.Name(), line, sp.Name())
	}
}

// spanUses is what classifyUses learned about sp inside the body.
type spanUses struct {
	endStmts    map[ast.Stmt]bool // statements that call sp.End() directly
	killStmts   map[ast.Stmt]bool // endStmts plus reassignments and panics
	escapes     bool
	closureEnd  bool
	methodValue bool
}

// classifyUses scans body for every use of sp and buckets each one.
func classifyUses(pass *lint.Pass, body *ast.BlockStmt, start *ast.CallExpr, sp *types.Var) spanUses {
	u := spanUses{endStmts: map[ast.Stmt]bool{}, killStmts: map[ast.Stmt]bool{}}
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch n := n.(type) {
		case *ast.FuncLit:
			// A closure capturing sp: if it ends the span, ownership is
			// handled (the closure is typically deferred); if it uses sp
			// any other way, that is an escape.
			usesSp, endsSp := false, false
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && pass.Info.Uses[id] == sp {
					usesSp = true
				}
				if c, ok := m.(*ast.CallExpr); ok {
					if sel, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "End" {
						if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && pass.Info.Uses[id] == sp {
							endsSp = true
						}
					}
				}
				return true
			})
			if endsSp {
				u.closureEnd = true
			} else if usesSp {
				u.escapes = true
			}
			return false
		case *ast.Ident:
			if pass.Info.Uses[n] != sp {
				return true
			}
			classifyOneUse(pass, &u, stack, body)
		case *ast.AssignStmt:
			// Reassignment of sp kills tracking of the old span value.
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && pass.Info.Uses[id] == sp {
					if !containsCall(n, start) {
						u.killStmts[lint.EnclosingStmt(body, n)] = true
					}
				}
			}
		case *ast.CallExpr:
			if fn := lint.CalleeOf(pass.Info, n); fn != nil && fn.Pkg() == nil && fn.Name() == "panic" {
				u.killStmts[lint.EnclosingStmt(body, n)] = true
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin && id.Name == "panic" {
					u.killStmts[lint.EnclosingStmt(body, n)] = true
				}
			}
		}
		return true
	})
	for s := range u.endStmts {
		u.killStmts[s] = true
	}
	return u
}

// classifyOneUse inspects the ancestor chain of one identifier use of sp
// (stack[len(stack)-1] is the ident itself).
func classifyOneUse(pass *lint.Pass, u *spanUses, stack []ast.Node, body *ast.BlockStmt) {
	// Walk up: ident -> (selector) -> (call) ...
	parent := func(i int) ast.Node {
		if len(stack)-1-i < 0 {
			return nil
		}
		return stack[len(stack)-1-i]
	}
	if sel, ok := parent(1).(*ast.SelectorExpr); ok {
		if sel.Sel.Name == "End" {
			if call, ok := parent(2).(*ast.CallExpr); ok && ast.Unparen(call.Fun) == sel {
				u.endStmts[lint.EnclosingStmt(body, call)] = true
				return
			}
			// sp.End as a method value (e.g. once.Do(sp.End)).
			u.methodValue = true
			return
		}
		// Another method or field on sp: fine, not an End, not an escape.
		if call, ok := parent(2).(*ast.CallExpr); ok && ast.Unparen(call.Fun) == sel {
			return
		}
	}
	// Comparisons with nil are the guard idiom, not an escape.
	if bin, ok := parent(1).(*ast.BinaryExpr); ok {
		if isNilCheck(pass, bin) != nil {
			return
		}
	}
	// The defining assignment itself.
	if asg, ok := parent(1).(*ast.AssignStmt); ok {
		for _, lhs := range asg.Lhs {
			if lhs == parent(0) {
				return
			}
		}
	}
	// Anything else — argument, return value, composite literal, field
	// store, address-of — moves ownership out of this function.
	u.escapes = true
}

// isNilCheck returns the non-nil operand ident if bin is `x == nil` or
// `x != nil`, else nil.
func isNilCheck(pass *lint.Pass, bin *ast.BinaryExpr) *ast.Ident {
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return false
		}
		_, isNilObj := pass.Info.Uses[id].(*types.Nil)
		return isNilObj
	}
	var other ast.Expr
	if isNil(bin.X) {
		other = bin.Y
	} else if isNil(bin.Y) {
		other = bin.X
	} else {
		return nil
	}
	id, _ := ast.Unparen(other).(*ast.Ident)
	return id
}

// findLeakPath searches the CFG from start for a path to Exit that does
// not pass a kill statement, pruning branches where sp is known nil.
// It returns a node on the leaking path (a return or the exit), or nil.
func findLeakPath(pass *lint.Pass, g *lint.CFG, start *lint.CFGNode, sp *types.Var, u spanUses) *lint.CFGNode {
	seen := map[*lint.CFGNode]bool{}
	var last *lint.CFGNode
	var dfs func(n *lint.CFGNode) bool
	dfs = func(n *lint.CFGNode) bool {
		if n == g.Exit {
			return true
		}
		if seen[n] {
			return false
		}
		seen[n] = true
		if n != start && n.Stmt != nil && u.killStmts[n.Stmt] {
			return false
		}
		for _, e := range n.Succs {
			// Prune the sp-is-nil side of a nil guard: End on a nil span is
			// both a no-op and unnecessary.
			if n.Cond != nil {
				if bin, ok := ast.Unparen(n.Cond).(*ast.BinaryExpr); ok {
					if id := isNilCheck(pass, bin); id != nil && pass.Info.Uses[id] == sp {
						nilKind := lint.EdgeTrue // x == nil: true branch has sp nil
						if bin.Op.String() == "!=" {
							nilKind = lint.EdgeFalse
						}
						if e.Kind == nilKind {
							continue
						}
					}
				}
			}
			last = n
			if dfs(e.To) {
				return true
			}
		}
		return false
	}
	if dfs(start) {
		if last != nil {
			return last
		}
		return g.Exit
	}
	return nil
}

// exitExamplePos picks a position to cite for the leaking node: the
// return statement on the path when one exists, else the body's end.
func exitExamplePos(n *lint.CFGNode, body *ast.BlockStmt) token.Pos {
	if n != nil && n.Stmt != nil {
		return n.Stmt.Pos()
	}
	return body.Rbrace
}

// enclosingAssign returns the assignment whose RHS is exactly the call,
// or nil.
func enclosingAssign(body *ast.BlockStmt, call *ast.CallExpr) *ast.AssignStmt {
	var found *ast.AssignStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if asg, ok := n.(*ast.AssignStmt); ok && len(asg.Rhs) == 1 && ast.Unparen(asg.Rhs[0]) == call {
			found = asg
			return false
		}
		return true
	})
	return found
}

// containsCall reports whether node contains call.
func containsCall(node ast.Node, call *ast.CallExpr) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if n == call {
			found = true
		}
		return !found
	})
	return found
}
