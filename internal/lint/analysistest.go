// A stdlib-only analogue of golang.org/x/tools/go/analysis/analysistest:
// fixture packages live under <analyzer>/testdata/src/<importpath>/ and
// carry `// want "regexp"` comments on the lines where findings are
// expected. Fixture import paths shadow real ones (a fixture declares its
// own repro/internal/obs stub), so analyzers match the same package paths
// they match in the real module; imports the fixture tree does not
// provide resolve through the compiler's export data.
package lint

import (
	"fmt"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// FixtureDiagnostics loads the fixture packages rooted at
// fixtureRoot/src and runs a over them, returning every finding (nolint
// already applied) and the loaded program.
func FixtureDiagnostics(t *testing.T, a *Analyzer, fixtureRoot string, pkgPaths ...string) ([]Diagnostic, *Program) {
	t.Helper()
	prog, err := loadFixture(fixtureRoot, pkgPaths)
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	diags, err := RunAnalyzer(a, prog, nil)
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}
	return diags, prog
}

// RunFixture runs a over the fixture tree and diffs its findings in Go
// files against the `// want` expectations. Findings against non-Go
// files (docs) are returned for the caller to assert.
func RunFixture(t *testing.T, a *Analyzer, fixtureRoot string, pkgPaths ...string) []Diagnostic {
	t.Helper()
	diags, prog := FixtureDiagnostics(t, a, fixtureRoot, pkgPaths...)
	wants := collectWants(t, prog)
	var nonGo []Diagnostic
	matched := map[int]bool{}
	for _, d := range diags {
		if !strings.HasSuffix(d.File, ".go") {
			nonGo = append(nonGo, d)
			continue
		}
		ok := false
		for i, w := range wants {
			if matched[i] || w.file != d.File || w.line != d.Line {
				continue
			}
			if w.re.MatchString(d.Msg) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.re)
		}
	}
	return nonGo
}

type wantExpect struct {
	file string
	line int
	re   *regexp.Regexp
}

var wantRE = regexp.MustCompile(`// want (.*)$`)
var quotedRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"|` + "`[^`]*`")

// collectWants parses `// want "re" ["re"...]` comments from every
// loaded fixture file.
func collectWants(t *testing.T, prog *Program) []wantExpect {
	t.Helper()
	var out []wantExpect
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					for _, q := range quotedRE.FindAllString(m[1], -1) {
						s, err := strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, q, err)
						}
						re, err := regexp.Compile(s)
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, s, err)
						}
						out = append(out, wantExpect{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}
	return out
}

// loadFixture loads pkgPaths (and their fixture-tree dependency closure)
// from fixtureRoot/src, with export data covering out-of-tree imports.
func loadFixture(fixtureRoot string, pkgPaths []string) (*Program, error) {
	root, err := filepath.Abs(fixtureRoot)
	if err != nil {
		return nil, err
	}
	overlay := func(path string) (string, []string, bool) {
		dir := filepath.Join(root, "src", filepath.FromSlash(path))
		ents, err := os.ReadDir(dir)
		if err != nil {
			return "", nil, false
		}
		var files []string
		for _, e := range ents {
			name := e.Name()
			if strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
				files = append(files, filepath.Join(dir, name))
			}
		}
		if len(files) == 0 {
			return "", nil, false
		}
		return dir, files, true
	}

	// Walk the overlay import closure to learn which imports need export
	// data, then resolve those through one `go list -export -deps` run.
	external := map[string]bool{}
	seen := map[string]bool{}
	queue := append([]string(nil), pkgPaths...)
	for len(queue) > 0 {
		path := queue[0]
		queue = queue[1:]
		if seen[path] {
			continue
		}
		seen[path] = true
		_, files, ok := overlay(path)
		if !ok {
			return nil, fmt.Errorf("fixture package %q not found under %s/src", path, fixtureRoot)
		}
		fset := token.NewFileSet()
		for _, file := range files {
			af, err := parser.ParseFile(fset, file, nil, parser.ImportsOnly)
			if err != nil {
				return nil, err
			}
			for _, imp := range af.Imports {
				p, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if _, _, ok := overlay(p); ok {
					if !seen[p] {
						queue = append(queue, p)
					}
				} else if p != "unsafe" {
					external[p] = true
				}
			}
		}
	}
	exports := map[string]string{}
	if len(external) > 0 {
		var paths []string
		for p := range external {
			paths = append(paths, p)
		}
		sortStrings(paths)
		// Run from this module's root so `go list` has a module context.
		modRoot, err := moduleRoot(".")
		if err != nil {
			return nil, err
		}
		listed, err := goList(modRoot, paths)
		if err != nil {
			return nil, err
		}
		for path, p := range listed {
			if p.Export != "" {
				exports[path] = p.Export
			}
		}
	}

	prog := &Program{
		Fset:   token.NewFileSet(),
		Dir:    root,
		Module: "repro",
		Info:   newTypesInfo(),
		byPath: map[string]*Package{},
	}
	gcImp := newExportImporter(prog.Fset, exports)
	ld := &sourceLoader{
		prog:     prog,
		fallback: gcImp,
		checked:  map[string]*types.Package{},
		resolve:  func(string) (*listedPkg, bool) { return nil, false },
		overlay:  overlay,
	}
	var roots []string
	for p := range seen {
		roots = append(roots, p)
	}
	sortStrings(roots)
	for _, p := range roots {
		if _, err := ld.load(p); err != nil {
			return nil, err
		}
	}
	return prog, nil
}
