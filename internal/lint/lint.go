// Package lint is the repo's domain-aware static-analysis suite: a small
// stdlib-only framework in the shape of golang.org/x/tools/go/analysis
// (which the offline toolchain cannot vendor) plus the five analyzers
// that machine-check serving invariants accumulated over PRs 1-9 —
// invariants generic lint (vet, staticcheck) cannot see because they are
// about *this* codebase's contracts, not the language's.
//
// The analyzers (each in its own subpackage, registered in Analyzers):
//
//   - lockfsync:    no blocking I/O (fsync, file create/rename, HTTP,
//     sleeps) reachable while a store shard mutex is held — the PR 3
//     LogInsert/Commit split, generalized and enforced interprocedurally.
//   - spanend:      every obs.StartSpan result has End() called on all
//     return paths; the nil-safe span API makes a leak silent otherwise.
//   - errtaxonomy:  every api.Code constant is published by api.Codes()
//     and has an explicit HTTPStatus case, and no ad-hoc code strings are
//     minted outside the registered taxonomy — so a new code cannot skip
//     GET /v2/spec or docs/WIRE.md.
//   - metricsdrift: every metric family registered with internal/obs
//     follows the npn_ naming rules and appears in docs/OPERATIONS.md's
//     metric-family table, and every npn_* family the docs mention is
//     actually registered (dead docs fail too).
//   - noalloc:      functions annotated //npn:noalloc are checked against
//     the compiler's -gcflags=-m escape diagnostics, so a heap escape on
//     the PR 9 zero-alloc hot path fails lint at compile time instead of
//     only when alloc_test.go happens to run.
//
// cmd/npnlint is the multichecker driver; Main in this package is its
// engine, so `go test` can run the same binary logic in-process.
//
// Suppression: a finding is silenced by a `//nolint:npn/<name>` comment
// on the flagged line (or the whole-line comment directly above it), and
// the directive must carry a justification after the analyzer name — a
// bare nolint is itself a finding. See docs/DEVELOPMENT.md.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named invariant check. Run is invoked once with a Pass
// holding the whole loaded program (not once per package): the repo's
// invariants are cross-package by nature, so the framework hands every
// analyzer the full module view.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
	// NeedEscapes asks the driver to populate Pass.Escapes by compiling
	// the analyzed patterns with -gcflags=-m (noalloc).
	NeedEscapes bool
}

// Package is one module package loaded from source: its syntax trees and
// its type-checked package object. Type information lives in the shared
// Pass.Info.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
}

// Escape is one compiler escape diagnostic from `go build -gcflags=-m`,
// positioned in module-root-relative file coordinates.
type Escape struct {
	File string // module-root-relative path
	Line int
	Col  int
	Msg  string
}

// Pass is the program view handed to each analyzer.
type Pass struct {
	// Fset positions every file in Pkgs.
	Fset *token.FileSet
	// Pkgs are the module packages under analysis, in dependency order.
	Pkgs []*Package
	// Dir is the root directory for non-Go artifacts the invariants span
	// (docs/OPERATIONS.md); the module root in real runs, the fixture root
	// under analysistest.
	Dir string
	// Module is the module path ("repro"); analyzers anchor package
	// lookups like Module+"/internal/obs" on it.
	Module string
	// Info is the merged type information of every package in Pkgs.
	Info *types.Info
	// Escapes holds the compiler's escape diagnostics for Pkgs; populated
	// only for analyzers that declare NeedEscapes (noalloc).
	Escapes []Escape

	byPath map[string]*Package
	diags  *[]Diagnostic
	name   string
}

// Package returns the loaded package with the given import path, or nil.
func (p *Pass) Package(path string) *Package { return p.byPath[path] }

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.name, File: position.Filename,
		Line: position.Line, Col: position.Column,
		Msg: fmt.Sprintf(format, args...),
	})
}

// ReportFilef records a finding against a non-Go file (a docs table row);
// such findings cannot be nolint-suppressed.
func (p *Pass) ReportFilef(file string, line int, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.name, File: file, Line: line,
		Msg: fmt.Sprintf(format, args...),
	})
}

// PosForLine maps a (line, col) coordinate in the file containing n
// back to a token.Pos, so findings sourced from external tool output
// (compiler diagnostics) participate in position-based suppression.
func PosForLine(fset *token.FileSet, n ast.Node, line, col int) token.Pos {
	tf := fset.File(n.Pos())
	if tf == nil || line < 1 || line > tf.LineCount() {
		return n.Pos()
	}
	p := tf.LineStart(line)
	if col > 1 {
		p += token.Pos(col - 1)
	}
	if p > token.Pos(tf.Base()+tf.Size()) {
		p = tf.LineStart(line)
	}
	return p
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Analyzer string
	File     string
	Line     int
	Col      int
	Msg      string
}

func (d Diagnostic) String() string {
	if d.Col > 0 {
		return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Analyzer, d.Msg)
	}
	return fmt.Sprintf("%s:%d: [%s] %s", d.File, d.Line, d.Analyzer, d.Msg)
}

// sortDiags orders findings by file, line, column, analyzer.
func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
}

// RunAnalyzer executes a on the loaded program and returns its findings
// with nolint suppression already applied.
func RunAnalyzer(a *Analyzer, prog *Program, escapes []Escape) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Fset:    prog.Fset,
		Pkgs:    prog.Pkgs,
		Dir:     prog.Dir,
		Module:  prog.Module,
		Info:    prog.Info,
		Escapes: escapes,
		byPath:  prog.byPath,
		diags:   &diags,
		name:    a.Name,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	diags = applyNolint(prog, a.Name, diags)
	sortDiags(diags)
	return diags, nil
}
