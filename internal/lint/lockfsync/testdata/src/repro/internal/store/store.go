// Package store is the lockfsync fixture: a shard guarded by a mutex,
// with critical sections that block directly, through helpers, and
// through a devirtualized interface — plus clean sections that release
// first, write buffered data, or hand the work to a goroutine.
package store

import (
	"os"
	"sync"
	"time"
)

type shard struct {
	mu   sync.RWMutex
	vals map[string]string
}

// journal abstracts durability; the analyzer must devirtualize calls
// through it to the one module implementation.
type journal interface {
	flush() error
}

type fileJournal struct{ f *os.File }

func (j *fileJournal) flush() error { return j.f.Sync() }

// badDirect fsyncs while the shard lock is held.
func (s *shard) badDirect(f *os.File) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return f.Sync() // want `blocking I/O reachable while s\.mu\.Lock\(\) is held: os\.\(\*File\)\.Sync \(fsyncs\)`
}

// badSleep sleeps under the read lock.
func (s *shard) badSleep() {
	s.mu.RLock()
	time.Sleep(time.Millisecond) // want `while s\.mu\.RLock\(\) is held: time\.Sleep \(sleeps\)`
	s.mu.RUnlock()
}

// badHelper reaches a rename two calls deep: the finding must carry the
// whole chain.
func (s *shard) badHelper() {
	s.mu.Lock()
	s.rotate() // want `s\.mu\.Lock\(\) is held: .*\(\*shard\)\.rotate -> .*store\.swapFiles -> os\.Rename \(renames a file\)`
	s.mu.Unlock()
}

func (s *shard) rotate() {
	swapFiles("seg.0", "seg.1")
}

func swapFiles(a, b string) {
	_ = os.Rename(a, b)
}

// badIface fsyncs through the journal interface.
func (s *shard) badIface(j journal) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.flush() // want `\(journal\)\.flush \(via .*\(\*fileJournal\)\.flush\) -> os\.\(\*File\)\.Sync \(fsyncs\)`
}

// goodAfterUnlock releases before blocking: clean.
func (s *shard) goodAfterUnlock(f *os.File) error {
	s.mu.Lock()
	s.vals["k"] = "v"
	s.mu.Unlock()
	return f.Sync()
}

// goodBranchUnlock releases inside a branch before blocking on that
// path: the region must not leak past the in-branch unlock.
func (s *shard) goodBranchUnlock(f *os.File, fast bool) error {
	s.mu.Lock()
	if fast {
		s.mu.Unlock()
		return f.Sync()
	}
	s.vals["k"] = "v"
	s.mu.Unlock()
	return f.Sync()
}

// goodBufferedWrite writes under the lock: page-cache writes are part
// of the design, only durability barriers block.
func (s *shard) goodBufferedWrite(f *os.File) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, _ = f.Write([]byte("x"))
}

// goodGoroutine spawns the fsync: the goroutine does not hold the lock.
func (s *shard) goodGoroutine(f *os.File) {
	s.mu.Lock()
	go func() {
		_ = f.Sync()
	}()
	s.mu.Unlock()
}
