// Package lockfsync enforces the store's oldest serving invariant: no
// blocking I/O — fsync, file create/rename/remove, HTTP round-trips,
// sleeps — may be reachable while a store shard mutex is held. PR 3
// split the WAL's LogInsert (under lock, buffered append only) from
// Commit (after unlock, fsync) exactly to keep lock hold times bounded
// by memory speed; this analyzer re-proves that split on every build,
// interprocedurally, so a helper that grows an fsync three calls deep
// cannot silently reintroduce a tail-latency cliff.
//
// Mechanics: a lock region starts at any Lock/RLock call on a mutex
// field of a struct declared in <module>/internal/store and extends
// along the control-flow graph until the matching Unlock/RUnlock on the
// same receiver expression (a deferred Unlock extends the region to
// function end). Every call statically reachable from the region is
// checked against a table of blocking stdlib roots; interface calls are
// devirtualized to every module type that implements them, which is how
// the analysis sees through store.Journal into *wal.Writer. Calls
// through plain function values and calls inside nested function
// literals are not followed.
//
// (*os.File).Write and Read are deliberately not roots: buffered
// page-cache writes under lock are part of the PR 3 design; only
// durability barriers and metadata operations block unboundedly.
package lockfsync

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint"
)

// Analyzer is the lockfsync analyzer.
var Analyzer = &lint.Analyzer{
	Name: "lockfsync",
	Doc:  "no blocking I/O reachable while a store shard mutex is held",
	Run:  run,
}

// blockingRoots maps lint.FuncID renderings of stdlib functions to a
// short reason. Entries are matched after the callee resolves to a
// non-module package.
var blockingRoots = map[string]string{
	"os.OpenFile":                 "opens a file",
	"os.Open":                     "opens a file",
	"os.Create":                   "creates a file",
	"os.ReadFile":                 "reads a file",
	"os.WriteFile":                "writes a file",
	"os.Remove":                   "removes a file",
	"os.RemoveAll":                "removes files",
	"os.Rename":                   "renames a file",
	"os.Truncate":                 "truncates a file",
	"os.Mkdir":                    "creates a directory",
	"os.MkdirAll":                 "creates directories",
	"os.ReadDir":                  "reads a directory",
	"os.Stat":                     "stats a file",
	"os.(*File).Sync":             "fsyncs",
	"os.(*File).Close":            "closes a file (flushes)",
	"net/http.(*Client).Do":       "does an HTTP round-trip",
	"net/http.(*Client).Get":      "does an HTTP round-trip",
	"net/http.(*Client).Post":     "does an HTTP round-trip",
	"net/http.(*Client).PostForm": "does an HTTP round-trip",
	"net/http.(*Client).Head":     "does an HTTP round-trip",
	"net/http.Get":                "does an HTTP round-trip",
	"net/http.Post":               "does an HTTP round-trip",
	"net/http.PostForm":           "does an HTTP round-trip",
	"net/http.Head":               "does an HTTP round-trip",
	"net.Dial":                    "dials the network",
	"net.DialTimeout":             "dials the network",
	"net.Listen":                  "listens on the network",
	"time.Sleep":                  "sleeps",
	"syscall.Fsync":               "fsyncs",
	"syscall.Fdatasync":           "fsyncs",
	"path/filepath.Glob":          "walks the filesystem",
}

type checker struct {
	pass   *lint.Pass
	bodies map[*types.Func]*ast.FuncDecl
	// memo caches the blocking call chain (nil = does not block) per
	// function; inProgress breaks recursion cycles.
	memo       map[*types.Func][]string
	inProgress map[*types.Func]bool
	storePath  string
}

func run(pass *lint.Pass) error {
	c := &checker{
		pass:       pass,
		bodies:     lint.FuncBodies(pass),
		memo:       map[*types.Func][]string{},
		inProgress: map[*types.Func]bool{},
		storePath:  pass.Module + "/internal/store",
	}
	for _, pkg := range pass.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					c.checkBody(fd.Body)
				}
			}
		}
	}
	return nil
}

// lockCall describes one Lock/RLock call found in a body.
type lockCall struct {
	call *ast.CallExpr
	recv string // rendered receiver expression, e.g. "sh.mu"
	read bool   // RLock (matches RUnlock) vs Lock (matches Unlock)
}

// mutexCall decodes call as a (Lock|RLock|Unlock|RUnlock) invocation on
// a sync mutex field owned by a store-package struct, returning the
// rendered receiver and the method name; ok is false otherwise.
func (c *checker) mutexCall(call *ast.CallExpr) (recv, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	method = sel.Sel.Name
	switch method {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	s, isSeln := c.pass.Info.Selections[sel]
	if !isSeln {
		return "", "", false
	}
	// The receiver must be a sync.Mutex or sync.RWMutex...
	rt := s.Recv()
	if p, isPtr := rt.(*types.Pointer); isPtr {
		rt = p.Elem()
	}
	named, isNamed := rt.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return "", "", false
	}
	switch named.Obj().Name() {
	case "Mutex", "RWMutex":
	default:
		return "", "", false
	}
	// ...reached through a field of a struct declared in the store package.
	inner, isSel2 := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !isSel2 {
		return "", "", false
	}
	fieldSel, isSeln2 := c.pass.Info.Selections[inner]
	if !isSeln2 || fieldSel.Kind() != types.FieldVal {
		return "", "", false
	}
	field := fieldSel.Obj()
	if field.Pkg() == nil || field.Pkg().Path() != c.storePath {
		return "", "", false
	}
	return types.ExprString(sel.X), method, true
}

// checkBody finds lock regions in one function body and checks every
// call reachable inside them.
func (c *checker) checkBody(body *ast.BlockStmt) {
	var locks []lockCall
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		recv, method, ok := c.mutexCall(call)
		if !ok {
			return true
		}
		if method == "Lock" || method == "RLock" {
			locks = append(locks, lockCall{call: call, recv: recv, read: method == "RLock"})
		}
		return true
	})
	if len(locks) == 0 {
		return
	}
	g := lint.BuildCFG(body)
	if !g.OK {
		// Unmodeled control flow: fall back to checking the whole body.
		for _, lk := range locks {
			c.checkStmts(allStmts(body), lk)
		}
		return
	}
	for _, lk := range locks {
		start := g.NodeFor(lint.EnclosingStmt(body, lk.call))
		if start == nil {
			c.checkStmts(allStmts(body), lk)
			continue
		}
		c.checkStmts(c.lockRegion(g, start, lk), lk)
	}
}

// stmtHead returns the parts of s that execute *at* s's CFG node. A
// compound statement's node is only its head (an if's condition, a
// range's operand); the branch bodies are separate nodes, so including
// them here would leak the region past an in-branch unlock.
func stmtHead(s ast.Stmt) []ast.Node {
	switch s := s.(type) {
	case *ast.IfStmt:
		return []ast.Node{s.Cond}
	case *ast.ForStmt:
		if s.Cond != nil {
			return []ast.Node{s.Cond}
		}
		return nil
	case *ast.RangeStmt:
		return []ast.Node{s.X}
	case *ast.SwitchStmt:
		if s.Tag != nil {
			return []ast.Node{s.Tag}
		}
		return nil
	case *ast.TypeSwitchStmt:
		return []ast.Node{s.Assign}
	case *ast.SelectStmt:
		return nil
	case *ast.GoStmt:
		return nil // the spawned goroutine does not hold the caller's lock
	default:
		return []ast.Node{s}
	}
}

// lockRegion walks the CFG from the Lock call and returns the statements
// reachable before the matching non-deferred Unlock executes.
func (c *checker) lockRegion(g *lint.CFG, start *lint.CFGNode, lk lockCall) []ast.Stmt {
	unlockName := "Unlock"
	if lk.read {
		unlockName = "RUnlock"
	}
	releases := func(s ast.Stmt) bool {
		if _, isDefer := s.(*ast.DeferStmt); isDefer {
			return false // deferred unlock releases at return, not here
		}
		found := false
		for _, h := range stmtHead(s) {
			ast.Inspect(h, func(n ast.Node) bool {
				if _, isLit := n.(*ast.FuncLit); isLit {
					return false
				}
				if call, ok := n.(*ast.CallExpr); ok {
					if recv, method, ok := c.mutexCall(call); ok && method == unlockName && recv == lk.recv {
						found = true
					}
				}
				return !found
			})
		}
		return found
	}
	var region []ast.Stmt
	seen := map[*lint.CFGNode]bool{}
	var walk func(n *lint.CFGNode)
	walk = func(n *lint.CFGNode) {
		if n == nil || seen[n] {
			return
		}
		seen[n] = true
		if n.Stmt != nil {
			if n != start && releases(n.Stmt) {
				return // region ends here; the unlock statement itself is out
			}
			region = append(region, n.Stmt)
		}
		for _, e := range n.Succs {
			walk(e.To)
		}
	}
	walk(start)
	return region
}

// checkStmts reports every blocking call chain reachable from the heads
// of the given lock-region statements.
func (c *checker) checkStmts(stmts []ast.Stmt, lk lockCall) {
	reported := map[*ast.CallExpr]bool{}
	for _, s := range stmts {
		for _, h := range stmtHead(s) {
			ast.Inspect(h, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncLit:
					return false
				case *ast.CallExpr:
					if reported[n] {
						return true
					}
					if chain := c.callBlocks(n); chain != nil {
						reported[n] = true
						c.pass.Reportf(n.Pos(), "blocking I/O reachable while %s.%s() is held: %s",
							lk.recv, lockName(lk), strings.Join(chain, " -> "))
					}
				}
				return true
			})
		}
	}
}

func lockName(lk lockCall) string {
	if lk.read {
		return "RLock"
	}
	return "Lock"
}

// callBlocks returns the call chain to a blocking root if call can
// block, else nil.
func (c *checker) callBlocks(call *ast.CallExpr) []string {
	fn := lint.CalleeOf(c.pass.Info, call)
	if fn == nil {
		return nil // function value, builtin, conversion
	}
	if lint.IsInterfaceCall(c.pass.Info, call) {
		sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		s := c.pass.Info.Selections[sel]
		iface := s.Recv().Underlying().(*types.Interface)
		for _, impl := range lint.Implementations(c.pass, iface, fn) {
			if chain := c.funcBlocks(impl); chain != nil {
				return append([]string{lint.FuncID(fn) + " (via " + lint.FuncID(impl) + ")"}, chain[1:]...)
			}
		}
		return nil
	}
	return c.funcBlocks(fn)
}

// funcBlocks reports whether fn transitively reaches a blocking root,
// returning the chain of FuncIDs ending at the root.
func (c *checker) funcBlocks(fn *types.Func) []string {
	id := lint.FuncID(fn)
	if reason, ok := blockingRoots[id]; ok {
		return []string{id + " (" + reason + ")"}
	}
	if chain, ok := c.memo[fn]; ok {
		return chain
	}
	body, ok := c.bodies[fn]
	if !ok || body.Body == nil {
		return nil // out-of-module and not a known root: assume fine
	}
	if c.inProgress[fn] {
		return nil // recursion: optimistic fixpoint
	}
	c.inProgress[fn] = true
	defer delete(c.inProgress, fn)

	var result []string
	ast.Inspect(body.Body, func(n ast.Node) bool {
		if result != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			return false // spawned work does not hold the caller's lock
		case *ast.CallExpr:
			if chain := c.callBlocks(n); chain != nil {
				result = append([]string{id}, chain...)
				return false
			}
		}
		return true
	})
	c.memo[fn] = result
	return result
}

// allStmts flattens every statement in body (conservative fallback).
func allStmts(body *ast.BlockStmt) []ast.Stmt {
	var out []ast.Stmt
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		if s, ok := n.(ast.Stmt); ok {
			out = append(out, s)
		}
		return true
	})
	return out
}
