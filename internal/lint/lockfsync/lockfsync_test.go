package lockfsync_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/lockfsync"
)

// TestFixture diffs the analyzer against the `// want` expectations in
// testdata/src: blocking calls under a store shard mutex found directly,
// through a helper chain, and through a devirtualized interface — and no
// findings once the lock is released (including an in-branch unlock),
// for buffered writes, or for goroutine handoffs.
func TestFixture(t *testing.T) {
	if nonGo := lint.RunFixture(t, lockfsync.Analyzer, "testdata", "repro/internal/store"); len(nonGo) != 0 {
		t.Errorf("unexpected non-Go findings: %v", nonGo)
	}
}
