// Package metricsdrift keeps the metric surface and its documentation
// from drifting apart. Every family registered against internal/obs —
// through the Registry constructors or an obs.FuncFamily literal — must
// (1) be a compile-time string constant, (2) follow the naming contract
// (snake_case with the npn_ prefix; counters end in _total, gauges and
// histograms do not), and (3) have a row in the metric-family table of
// docs/OPERATIONS.md. The check runs both ways: an npn_* name the docs
// mention that no code registers is dead documentation and fails too
// (histogram _bucket/_sum/_count forms resolve to their base family).
//
// The obs package itself is exempt: its constructors forward caller
// names through non-constant parameters by design.
package metricsdrift

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"repro/internal/lint"
)

// Analyzer is the metricsdrift analyzer.
var Analyzer = &lint.Analyzer{
	Name: "metricsdrift",
	Doc:  "metric families must follow npn_ naming and stay in sync with docs/OPERATIONS.md",
	Run:  run,
}

// nameRE is the naming contract for a metric family.
var nameRE = regexp.MustCompile(`^npn_[a-z0-9]+(_[a-z0-9]+)*$`)

// registryCtors maps Registry constructor names to the family kind they
// register.
var registryCtors = map[string]string{
	"Counter": "counter", "CounterVec": "counter",
	"Gauge": "gauge", "GaugeVec": "gauge", "GaugeFunc": "gauge",
	"Histogram": "histogram", "HistogramVec": "histogram",
}

// family is one registered metric family.
type family struct {
	name string
	kind string
	pos  token.Pos
}

func run(pass *lint.Pass) error {
	obsPath := pass.Module + "/internal/obs"
	obsPkg := pass.Package(obsPath)
	if obsPkg == nil {
		return nil
	}
	kindByValue := obsKindValues(obsPkg)
	famType, _ := obsPkg.Types.Scope().Lookup("FuncFamily").(*types.TypeName)

	var fams []family
	for _, pkg := range pass.Pkgs {
		// The obs package registers families of its own (runtime, trace)
		// which are checked like any other; only its forwarding of
		// non-constant caller names is exempt.
		inObs := pkg.Path == obsPath
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					fams = appendCtorFamily(pass, fams, n, obsPath, inObs)
				case *ast.CompositeLit:
					if famType != nil {
						fams = appendLiteralFamily(pass, fams, n, famType.Type(), kindByValue, inObs)
					}
				}
				return true
			})
		}
	}

	for _, fam := range fams {
		checkName(pass, fam)
	}
	checkDocs(pass, fams)
	return nil
}

// obsKindValues maps the integer values of the obs Kind constants to
// kind strings.
func obsKindValues(obsPkg *lint.Package) map[int64]string {
	out := map[int64]string{}
	scope := obsPkg.Types.Scope()
	for name, kind := range map[string]string{
		"KindCounter": "counter", "KindGauge": "gauge", "KindHistogram": "histogram",
	} {
		if cst, ok := scope.Lookup(name).(*types.Const); ok {
			if v, ok := constant.Int64Val(cst.Val()); ok {
				out[v] = kind
			}
		}
	}
	return out
}

// appendCtorFamily records a family registered through a Registry
// constructor call, reporting non-constant names.
func appendCtorFamily(pass *lint.Pass, fams []family, call *ast.CallExpr, obsPath string, inObs bool) []family {
	fn := lint.CalleeOf(pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != obsPath {
		return fams
	}
	kind, ok := registryCtors[fn.Name()]
	if !ok || len(call.Args) == 0 {
		return fams
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return fams // only Registry methods register families
	}
	arg := call.Args[0]
	tv := pass.Info.Types[arg]
	if tv.Value == nil || tv.Value.Kind() != constant.String {
		if !inObs {
			pass.Reportf(arg.Pos(), "metric family name passed to obs.(*Registry).%s must be a compile-time string constant", fn.Name())
		}
		return fams
	}
	return append(fams, family{name: constant.StringVal(tv.Value), kind: kind, pos: arg.Pos()})
}

// appendLiteralFamily records a family declared as an obs.FuncFamily
// composite literal.
func appendLiteralFamily(pass *lint.Pass, fams []family, lit *ast.CompositeLit, famType types.Type, kindByValue map[int64]string, inObs bool) []family {
	tv, ok := pass.Info.Types[ast.Expr(lit)]
	if !ok || tv.Type == nil || !types.Identical(tv.Type, famType) {
		return fams
	}
	var nameExpr, kindExpr ast.Expr
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue // positional FuncFamily literals are not used; skip
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		switch key.Name {
		case "Name":
			nameExpr = kv.Value
		case "Kind":
			kindExpr = kv.Value
		}
	}
	if nameExpr == nil {
		return fams
	}
	ntv := pass.Info.Types[nameExpr]
	if ntv.Value == nil || ntv.Value.Kind() != constant.String {
		if !inObs {
			pass.Reportf(nameExpr.Pos(), "obs.FuncFamily Name must be a compile-time string constant")
		}
		return fams
	}
	kind := "counter" // Kind zero value
	if kindExpr != nil {
		if ktv := pass.Info.Types[kindExpr]; ktv.Value != nil {
			if v, ok := constant.Int64Val(ktv.Value); ok {
				if k, known := kindByValue[v]; known {
					kind = k
				}
			}
		}
	}
	return append(fams, family{name: constant.StringVal(ntv.Value), kind: kind, pos: nameExpr.Pos()})
}

// checkName enforces the naming contract on one family.
func checkName(pass *lint.Pass, fam family) {
	if !nameRE.MatchString(fam.name) {
		pass.Reportf(fam.pos, "metric family %q does not match the naming contract %s", fam.name, nameRE)
		return
	}
	isTotal := strings.HasSuffix(fam.name, "_total")
	if fam.kind == "counter" && !isTotal {
		pass.Reportf(fam.pos, "counter family %q must end in _total", fam.name)
	}
	if fam.kind != "counter" && isTotal {
		pass.Reportf(fam.pos, "%s family %q must not end in _total (reserved for counters)", fam.kind, fam.name)
	}
}

// npnTokenRE extracts metric-name-shaped tokens from the docs.
var npnTokenRE = regexp.MustCompile(`\bnpn_[a-z0-9_]+`)

// checkDocs diffs the registered family set against docs/OPERATIONS.md.
func checkDocs(pass *lint.Pass, fams []family) {
	docPath := filepath.Join(pass.Dir, "docs", "OPERATIONS.md")
	data, err := os.ReadFile(docPath)
	if err != nil {
		for _, fam := range fams {
			pass.Reportf(fam.pos, "metric family %q cannot be documented: %s is missing", fam.name, docPath)
		}
		return
	}
	registered := map[string]bool{}
	for _, fam := range fams {
		registered[fam.name] = true
	}

	// Documented = names appearing in a table row; mentioned = any
	// npn_* token anywhere, with its first line for reporting.
	documented := map[string]bool{}
	mentionLine := map[string]int{}
	for i, line := range strings.Split(string(data), "\n") {
		for _, tok := range npnTokenRE.FindAllString(line, -1) {
			tok = strings.TrimRight(tok, "_")
			if _, seen := mentionLine[tok]; !seen {
				mentionLine[tok] = i + 1
			}
			if strings.HasPrefix(strings.TrimSpace(line), "|") {
				documented[tok] = true
			}
		}
	}

	rel := docPath
	if r, err := filepath.Rel(pass.Dir, docPath); err == nil {
		rel = r
	}
	for _, fam := range fams {
		if !documented[fam.name] {
			pass.Reportf(fam.pos, "metric family %q has no row in the %s metric-family table", fam.name, rel)
		}
	}
	var toks []string
	for tok := range mentionLine {
		toks = append(toks, tok)
	}
	sort.Strings(toks)
	for _, tok := range toks {
		base := tok
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(tok, suf) && registered[strings.TrimSuffix(tok, suf)] {
				base = strings.TrimSuffix(tok, suf)
				break
			}
		}
		if !registered[base] {
			pass.ReportFilef(rel, mentionLine[tok], "%s documents metric %q but no code registers it", rel, tok)
		}
	}
}
