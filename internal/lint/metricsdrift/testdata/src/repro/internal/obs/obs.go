// Package obs is the metricsdrift fixture stub: the Registry
// constructors and FuncFamily/Kind shapes the analyzer matches. The
// constructors forward their name through a non-constant parameter,
// which is exactly the forwarding the real obs package is exempt from.
package obs

// Kind classifies a metric family.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// Registry registers metric families.
type Registry struct{}

type Counter struct{}
type CounterVec struct{}
type Gauge struct{}
type GaugeVec struct{}
type Histogram struct{}
type HistogramVec struct{}

func (r *Registry) Counter(name, help string) *Counter             { return nil }
func (r *Registry) Gauge(name, help string) *Gauge                 { return nil }
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {}

func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec { return nil }
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec     { return nil }

func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram { return nil }
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	return nil
}

// FuncFamily declares a family whose samples a callback emits.
type FuncFamily struct {
	Name   string
	Help   string
	Kind   Kind
	Labels []string
}

// RegisterFunc registers callback-backed families.
func (r *Registry) RegisterFunc(fams []FuncFamily, collect func(emit func(fam int, labelValues []string, value float64))) {
}
