// Package a is the metricsdrift fixture: constructor- and
// literal-registered families that follow or break the naming contract,
// a family missing from the docs table, and a non-constant name.
package a

import "repro/internal/obs"

var reg = &obs.Registry{}

const histName = "npn_a_latency_seconds"

var (
	good      = reg.Counter("npn_a_requests_total", "served requests")
	goodGauge = reg.Gauge("npn_a_depth", "queue depth")
	goodHist  = reg.Histogram(histName, "serve latency", nil)

	badPrefix  = reg.Counter("a_requests_total", "x")     // want `does not match the naming contract` `has no row`
	badCounter = reg.CounterVec("npn_a_events", "x", "k") // want `counter family "npn_a_events" must end in _total`
	badGauge   = reg.Gauge("npn_a_bytes_total", "x")      // want `gauge family "npn_a_bytes_total" must not end in _total`

	undoc = reg.Counter("npn_a_undocumented_total", "x") // want `has no row in the docs/OPERATIONS\.md metric-family table`
)

func register() {
	reg.RegisterFunc([]obs.FuncFamily{
		{Name: "npn_a_cache_hits_total", Kind: obs.KindCounter},
		{Name: "npn_a_cache_bytes", Kind: obs.KindGauge},
		{Name: "npn_a_cache_miss", Kind: obs.KindCounter}, // want `counter family "npn_a_cache_miss" must end in _total`
	}, nil)
}

func nonConst(name string) {
	reg.Counter(name, "x") // want `must be a compile-time string constant`
}
