package metricsdrift_test

import (
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/metricsdrift"
)

// TestFixture diffs the analyzer against the `// want` expectations in
// testdata/src (naming-contract violations, the _total rules for both
// constructor- and literal-registered families, non-constant names,
// and a family missing from the docs table) and then asserts the one
// docs-side finding: a table row documenting a family no code
// registers. Histogram _bucket mentions resolving to a registered base
// family must stay clean.
func TestFixture(t *testing.T) {
	nonGo := lint.RunFixture(t, metricsdrift.Analyzer, "testdata", "a")
	if len(nonGo) != 1 {
		t.Fatalf("got %d docs findings, want exactly the dead-row one: %v", len(nonGo), nonGo)
	}
	d := nonGo[0]
	if d.File != "docs/OPERATIONS.md" || !strings.Contains(d.Msg, `documents metric "npn_a_ghost_total" but no code registers it`) {
		t.Errorf("unexpected docs finding: %v", d)
	}
}
