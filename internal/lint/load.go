// The program loader: resolves build metadata through `go list -export`,
// parses every module package from source, and type-checks them against
// the compiler's export data for out-of-module dependencies. This is the
// stdlib-only equivalent of golang.org/x/tools/go/packages.Load in
// LoadAllSyntax mode for one module — the offline toolchain has no
// x/tools, and the repo's dependency closure is pure stdlib, so the gc
// export-data importer plus `go list` covers everything the analyzers
// need.
package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// Program is a loaded module: every matched package (plus its in-module
// dependencies) with full syntax and types.
type Program struct {
	Fset   *token.FileSet
	Dir    string // module root
	Module string // module path
	Pkgs   []*Package
	Info   *types.Info
	byPath map[string]*Package
}

// listedPkg is the subset of `go list -json` the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Imports    []string
	Module     *struct{ Path string }
	Incomplete bool
}

// goList runs `go list -export -deps -json` in dir over patterns.
func goList(dir string, patterns []string) (map[string]*listedPkg, error) {
	args := append([]string{"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Imports,Module,Incomplete"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	pkgs := map[string]*listedPkg{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decode: %w", err)
		}
		q := p
		pkgs[p.ImportPath] = &q
	}
	return pkgs, nil
}

// moduleRoot walks up from dir to the directory holding go.mod.
func moduleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		d = parent
	}
}

// newTypesInfo returns an Info with every map the analyzers consult.
func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// Load parses and type-checks the module packages matched by patterns
// (plus their in-module dependency closure) rooted at dir. Out-of-module
// imports resolve through the compiler's export data.
func Load(dir string, patterns []string) (*Program, error) {
	root, err := moduleRoot(dir)
	if err != nil {
		return nil, err
	}
	listed, err := goList(root, patterns)
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, p := range listed {
		if p.Module != nil {
			modPath = p.Module.Path
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module packages matched %v", patterns)
	}
	inModule := func(path string) bool {
		return path == modPath || strings.HasPrefix(path, modPath+"/")
	}

	prog := &Program{
		Fset:   token.NewFileSet(),
		Dir:    root,
		Module: modPath,
		Info:   newTypesInfo(),
		byPath: map[string]*Package{},
	}
	exports := map[string]string{}
	for path, p := range listed {
		if p.Export != "" {
			exports[path] = p.Export
		}
	}
	gcImp := newExportImporter(prog.Fset, exports)

	ld := &sourceLoader{
		prog:     prog,
		fallback: gcImp,
		checked:  map[string]*types.Package{},
		resolve: func(path string) (*listedPkg, bool) {
			p, ok := listed[path]
			return p, ok && inModule(path)
		},
	}
	// Dependency order falls out of the recursive importer; iterating the
	// listed set in any order converges to the same Program.
	var roots []string
	for path := range listed {
		if inModule(path) {
			roots = append(roots, path)
		}
	}
	// Deterministic load order keeps Pkgs stable across runs.
	sortStrings(roots)
	for _, path := range roots {
		if _, err := ld.load(path); err != nil {
			return nil, err
		}
	}
	return prog, nil
}

// newExportImporter returns the gc export-data importer reading from the
// path map produced by `go list -export`.
func newExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		e, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(e)
	})
}

// sourceLoader type-checks in-module packages from source, memoized, with
// the gc export-data importer as the fallback for everything else.
type sourceLoader struct {
	prog     *Program
	fallback types.Importer
	checked  map[string]*types.Package
	loading  []string
	resolve  func(path string) (*listedPkg, bool)
	// overlay, when set, resolves an import path to a directory of source
	// files that takes priority over resolve — the analysistest fixture
	// tree (testdata/src/<path>).
	overlay func(path string) (dirpath string, files []string, ok bool)
}

func (l *sourceLoader) Import(path string) (*types.Package, error) {
	return l.load(path)
}

func (l *sourceLoader) load(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.checked[path]; ok {
		return pkg, nil
	}
	for _, p := range l.loading {
		if p == path {
			return nil, fmt.Errorf("lint: import cycle through %q", path)
		}
	}

	var dir string
	var files []string
	if l.overlay != nil {
		if d, fs, ok := l.overlay(path); ok {
			dir, files = d, fs
		}
	}
	if dir == "" {
		p, ok := l.resolve(path)
		if !ok {
			return l.fallback.Import(path)
		}
		dir = p.Dir
		for _, g := range p.GoFiles {
			files = append(files, filepath.Join(p.Dir, g))
		}
	}

	l.loading = append(l.loading, path)
	defer func() { l.loading = l.loading[:len(l.loading)-1] }()

	var astFiles []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(l.prog.Fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		astFiles = append(astFiles, af)
	}
	conf := types.Config{
		Importer: l,
		Sizes:    types.SizesFor("gc", goArch()),
	}
	tpkg, err := conf.Check(path, l.prog.Fset, astFiles, l.prog.Info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", path, err)
	}
	l.checked[path] = tpkg
	pkg := &Package{Path: path, Dir: dir, Files: astFiles, Types: tpkg}
	l.prog.Pkgs = append(l.prog.Pkgs, pkg)
	l.prog.byPath[path] = pkg
	return tpkg, nil
}

func goArch() string {
	if a := os.Getenv("GOARCH"); a != "" {
		return a
	}
	out, err := exec.Command("go", "env", "GOARCH").Output()
	if err != nil {
		return "amd64"
	}
	return strings.TrimSpace(string(out))
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// escapeLine matches one compiler diagnostic: path:line:col: message.
var escapeLine = regexp.MustCompile(`^([^\s:]+\.go):(\d+):(\d+): (.*)$`)

// EscapeDiagnostics compiles patterns with -gcflags=-m (which the go
// tool applies only to the named packages) and parses the escape-analysis
// output. The build cache replays diagnostics for unchanged packages, so
// repeated runs cost one cache probe per package, not a rebuild.
func EscapeDiagnostics(dir string, patterns []string) ([]Escape, error) {
	root, err := moduleRoot(dir)
	if err != nil {
		return nil, err
	}
	args := append([]string{"build", "-gcflags=-m"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m: %v\n%s", err, out.String())
	}
	var escapes []Escape
	for _, line := range strings.Split(out.String(), "\n") {
		m := escapeLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ln, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		escapes = append(escapes, Escape{File: m[1], Line: ln, Col: col, Msg: m[4]})
	}
	return escapes, nil
}
