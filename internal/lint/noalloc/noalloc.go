// Package noalloc checks //npn:noalloc annotations against the
// compiler's escape analysis. The PR 9 zero-alloc serving path is
// guarded at runtime by testing.AllocsPerRun gates, but those only fire
// for the inputs the tests happen to exercise; the annotation asks the
// compiler instead: any "escapes to heap" or "moved to heap" diagnostic
// positioned inside an annotated function is a finding. "leaking param"
// diagnostics are deliberately ignored — a leaked parameter allocates
// at the caller, if anywhere, and several hot-path functions
// intentionally return slices they were handed. Escapes of string
// literals (`"..." escapes to heap`, from panic("...") guards) are also
// ignored: a constant string boxed into an interface points at static
// data and allocates nothing at runtime.
//
// The driver populates Pass.Escapes by building the analyzed packages
// with -gcflags=-m (NeedEscapes); the build cache replays diagnostics
// for unchanged packages, so the steady-state cost is one cache probe.
package noalloc

import (
	"go/ast"
	"path/filepath"
	"regexp"
	"strings"

	"repro/internal/lint"
)

// Analyzer is the noalloc analyzer.
var Analyzer = &lint.Analyzer{
	Name:        "noalloc",
	Doc:         "functions annotated //npn:noalloc must have no heap escapes",
	Run:         run,
	NeedEscapes: true,
}

// Directive is the annotation marking a function as heap-allocation-free.
const Directive = "//npn:noalloc"

// constStringRE matches a string-literal escape diagnostic.
var constStringRE = regexp.MustCompile(`^".*" escapes to heap$`)

// Annotated returns every //npn:noalloc-annotated function declaration
// in the pass, keyed by module-root-relative file path.
func Annotated(pass *lint.Pass) map[string][]*ast.FuncDecl {
	out := map[string][]*ast.FuncDecl{}
	for _, pkg := range pass.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				for _, c := range fd.Doc.List {
					if c.Text == Directive || strings.HasPrefix(c.Text, Directive+" ") {
						file := pass.Fset.Position(fd.Pos()).Filename
						if rel, err := filepath.Rel(pass.Dir, file); err == nil {
							file = filepath.ToSlash(rel)
						}
						out[file] = append(out[file], fd)
						break
					}
				}
			}
		}
	}
	return out
}

func run(pass *lint.Pass) error {
	annotated := Annotated(pass)
	if len(annotated) == 0 {
		return nil
	}
	for _, esc := range pass.Escapes {
		msg := esc.Msg
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		if constStringRE.MatchString(msg) {
			continue // a panic("...") guard; static data, no allocation
		}
		file := filepath.ToSlash(esc.File)
		for _, fd := range annotated[file] {
			start := pass.Fset.Position(fd.Pos()).Line
			end := pass.Fset.Position(fd.End()).Line
			if esc.Line < start || esc.Line > end {
				continue
			}
			pos := lint.PosForLine(pass.Fset, fd, esc.Line, esc.Col)
			pass.Reportf(pos, "%s is annotated %s but the compiler reports: %s", fd.Name.Name, Directive, msg)
		}
	}
	return nil
}
