// Package a is the noalloc fixture: a real, compilable package (loaded
// by explicit path — ./... skips testdata) whose escape diagnostics
// come from the actual `go build -gcflags=-m` run. escaper and grower
// are deliberately annotated while escaping; clean and guarded are
// annotated and allocation-free (guarded's panic string literal is
// static data and must be exempt).
package a

var sink *int

// escaper publishes the address of its parameter, forcing it to the
// heap.
//
//npn:noalloc
func escaper(x int) *int {
	sink = &x
	return sink
}

// grower returns a fresh slice: the make escapes to the heap.
//
//npn:noalloc
func grower(n int) []byte {
	return make([]byte, n)
}

// clean is annotated and truly allocation-free.
//
//npn:noalloc
func clean(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// guarded panics on bad input; the constant panic string is boxed into
// an interface but points at static data, so it must not be a finding.
//
//npn:noalloc
func guarded(a, b int) int {
	if b == 0 {
		panic("a: division by zero")
	}
	return a / b
}

// unannotated escapes freely: without the directive there is nothing to
// check.
func unannotated(n int) []byte {
	return append([]byte(nil), make([]byte, n)...)
}
