package noalloc_test

import (
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/noalloc"
)

const fixturePkg = "repro/internal/lint/noalloc/testdata/src/a"

// TestFixture runs the analyzer over a real compiled fixture package
// with diagnostics from an actual `go build -gcflags=-m` run: the two
// deliberately-escaping annotated functions must be findings, while the
// clean annotated function, the panic-string literal, and the
// unannotated escaper must stay silent.
func TestFixture(t *testing.T) {
	prog, err := lint.Load(".", []string{fixturePkg})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	escapes, err := lint.EscapeDiagnostics(".", []string{fixturePkg})
	if err != nil {
		t.Fatalf("escape diagnostics: %v", err)
	}
	if len(escapes) == 0 {
		t.Fatal("go build -gcflags=-m produced no diagnostics; the escape plumbing is broken")
	}
	diags, err := lint.RunAnalyzer(noalloc.Analyzer, prog, escapes)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	flagged := map[string]bool{}
	for _, d := range diags {
		name, _, ok := strings.Cut(d.Msg, " is annotated ")
		if !ok {
			t.Errorf("unexpected finding shape: %v", d)
			continue
		}
		flagged[name] = true
	}
	for _, want := range []string{"escaper", "grower"} {
		if !flagged[want] {
			t.Errorf("annotated escaping function %s was not flagged; findings: %v", want, diags)
		}
		delete(flagged, want)
	}
	for name := range flagged {
		t.Errorf("function %s flagged but must be clean", name)
	}
}

// TestAnnotated checks the directive scanner against the fixture file.
func TestAnnotated(t *testing.T) {
	prog, err := lint.Load(".", []string{fixturePkg})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags, err := lint.RunAnalyzer(&lint.Analyzer{
		Name: "annotated-probe",
		Run: func(pass *lint.Pass) error {
			ann := noalloc.Annotated(pass)
			fds := ann["internal/lint/noalloc/testdata/src/a/a.go"]
			var names []string
			for _, fd := range fds {
				names = append(names, fd.Name.Name)
			}
			got := strings.Join(names, ",")
			if got != "escaper,grower,clean,guarded" {
				return errProbe(got)
			}
			return nil
		},
	}, prog, nil)
	if err != nil {
		t.Fatalf("Annotated mismatch: %v", err)
	}
	if len(diags) != 0 {
		t.Fatalf("probe reported findings: %v", diags)
	}
}

type errProbe string

func (e errProbe) Error() string {
	return "annotated set = " + string(e) + `, want "escaper,grower,clean,guarded"`
}
