package symmetry

import (
	"math/rand"
	"testing"

	"repro/internal/tt"
)

func TestMajoritySymmetries(t *testing.T) {
	maj := tt.MustFromHex(3, "e8")
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if !Symmetric(maj, i, j) {
				t.Errorf("majority not symmetric in (%d,%d)", i, j)
			}
		}
	}
	if !TotallySymmetric(maj) {
		t.Error("majority must be totally symmetric")
	}
	if !SelfDual(maj) {
		t.Error("3-majority is self-dual")
	}
	cls := Classes(maj)
	if len(cls) != 1 || len(cls[0]) != 3 {
		t.Errorf("majority symmetry classes = %v, want one class of 3", cls)
	}
}

func TestAsymmetricFunction(t *testing.T) {
	// f = x0 ∧ ¬x1: not symmetric classically, but skew-symmetric pairs may
	// exist. Check the classical verdicts.
	f := tt.FromFunc(2, func(x int) bool { return x&1 == 1 && x>>1&1 == 0 })
	if Symmetric(f, 0, 1) {
		t.Error("x0∧¬x1 reported symmetric")
	}
	if !SkewSymmetric(f, 0, 1) {
		t.Error("x0∧¬x1 is skew-symmetric in (0,1): swapping and negating both is invariant")
	}
}

func TestSkewSymmetricXor(t *testing.T) {
	// XOR is both symmetric and skew-symmetric in every pair.
	x := tt.MustFromHex(2, "6")
	if !Symmetric(x, 0, 1) || !SkewSymmetric(x, 0, 1) {
		t.Error("xor2 symmetry verdicts wrong")
	}
	if SkewSymmetric(x, 0, 0) {
		t.Error("skew symmetry of a variable with itself must be false")
	}
	if !Symmetric(x, 1, 1) {
		t.Error("classical symmetry with itself must be true")
	}
}

func TestClassesPartition(t *testing.T) {
	// f = maj(x0,x1,x2) over 5 vars with x3, x4 vacuous: {0,1,2} symmetric,
	// {3,4} symmetric (both vacuous).
	f := tt.FromFunc(5, func(x int) bool {
		ones := x&1 + x>>1&1 + x>>2&1
		return ones >= 2
	})
	cls := Classes(f)
	if len(cls) != 2 {
		t.Fatalf("classes = %v, want 2 groups", cls)
	}
	if len(cls[0]) != 3 || cls[0][0] != 0 || cls[0][2] != 2 {
		t.Errorf("first class = %v, want [0 1 2]", cls[0])
	}
	if len(cls[1]) != 2 || cls[1][0] != 3 {
		t.Errorf("second class = %v, want [3 4]", cls[1])
	}
}

func TestClassesCoverAllVariables(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	for n := 1; n <= 8; n++ {
		f := tt.Random(n, rng)
		cls := Classes(f)
		seen := make(map[int]bool)
		for _, g := range cls {
			for _, v := range g {
				if seen[v] {
					t.Fatalf("variable %d in two classes (n=%d)", v, n)
				}
				seen[v] = true
			}
		}
		if len(seen) != n {
			t.Fatalf("classes cover %d of %d variables", len(seen), n)
		}
	}
}

func TestSymmetryInvariantUnderSwap(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for rep := 0; rep < 20; rep++ {
		f := tt.Random(5, rng)
		for i := 0; i < 5; i++ {
			for j := 0; j < 5; j++ {
				if Symmetric(f, i, j) != Symmetric(f, j, i) {
					t.Fatal("Symmetric not symmetric in its arguments")
				}
			}
		}
	}
}

func TestSelfDualParity(t *testing.T) {
	// Odd-arity parity is self-dual; even-arity parity is not.
	for n := 2; n <= 6; n++ {
		p := tt.FromFunc(n, func(x int) bool {
			v := 0
			for b := 0; b < n; b++ {
				v ^= x >> b & 1
			}
			return v == 1
		})
		if SelfDual(p) != (n%2 == 1) {
			t.Errorf("parity self-duality wrong at n=%d", n)
		}
	}
}
