// Package symmetry detects variable symmetries of Boolean functions.
// Symmetries are the structural property classical NPN canonical forms lean
// on (Abdollahi'08, Zhou'20): symmetric variables are interchangeable, which
// both shrinks the canonical-form search space and — in the paper's framing —
// is itself a face characteristic derivable from cofactors.
package symmetry

import "repro/internal/tt"

// Symmetric reports classical (non-equivalence) symmetry: f is invariant
// under exchanging x_i and x_j, equivalently f|x_i=0,x_j=1 = f|x_i=1,x_j=0.
func Symmetric(f *tt.TT, i, j int) bool {
	if i == j {
		return true
	}
	return f.SwapVars(i, j).Equal(f)
}

// SkewSymmetric reports equivalence (skew) symmetry: f is invariant under
// exchanging x_i and x_j while negating both, equivalently
// f|x_i=0,x_j=0 = f|x_i=1,x_j=1.
func SkewSymmetric(f *tt.TT, i, j int) bool {
	if i == j {
		return false
	}
	g := f.SwapVars(i, j)
	g.FlipVarInPlace(i)
	g.FlipVarInPlace(j)
	return g.Equal(f)
}

// SelfDual reports whether f(¬x) = ¬f(x) for all x.
func SelfDual(f *tt.TT) bool {
	g := f.Clone()
	for i := 0; i < f.NumVars(); i++ {
		g.FlipVarInPlace(i)
	}
	g.NotInPlace()
	return g.Equal(f)
}

// TotallySymmetric reports whether every pair of variables is classically
// symmetric (the function depends only on the input weight).
func TotallySymmetric(f *tt.TT) bool {
	// Pairwise symmetry with a fixed pivot suffices: adjacent transpositions
	// generate the symmetric group.
	for i := 1; i < f.NumVars(); i++ {
		if !Symmetric(f, i-1, i) {
			return false
		}
	}
	return true
}

// Classes partitions the variables into classical symmetry classes: groups
// of variables that are pairwise symmetric. Pairwise classical symmetry is
// transitive, so the groups are well defined. Returned groups are sorted by
// their smallest member; variables within a group are in increasing order.
func Classes(f *tt.TT) [][]int {
	n := f.NumVars()
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if find(i) != find(j) && Symmetric(f, i, j) {
				parent[find(j)] = find(i)
			}
		}
	}
	groups := make(map[int][]int)
	for i := 0; i < n; i++ {
		r := find(i)
		groups[r] = append(groups[r], i)
	}
	var out [][]int
	for i := 0; i < n; i++ {
		if g, ok := groups[i]; ok {
			out = append(out, g)
		}
	}
	return out
}
