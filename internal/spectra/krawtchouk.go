package spectra

import "math/bits"

// Krawtchouk returns the table K[j][w] of binary Krawtchouk polynomial
// values K_j(w; n) = Σ_t (-1)^t C(w,t) C(n-w, j-t) for 0 ≤ j, w ≤ n.
// K_j(w; n) is the character sum Σ_{wt(d)=j} (-1)^{s·d} for any s of weight
// w, which is what links spectra to distance distributions (MacWilliams).
func Krawtchouk(n int) [][]int64 {
	// Binomial table.
	c := make([][]int64, n+1)
	for i := range c {
		c[i] = make([]int64, n+1)
		c[i][0] = 1
		for j := 1; j <= i; j++ {
			c[i][j] = c[i-1][j-1]
			if j <= i-1 {
				c[i][j] += c[i-1][j]
			}
		}
	}
	k := make([][]int64, n+1)
	for j := 0; j <= n; j++ {
		k[j] = make([]int64, n+1)
		for w := 0; w <= n; w++ {
			var v int64
			for t := 0; t <= j; t++ {
				if t > w || j-t > n-w {
					continue
				}
				term := c[w][t] * c[n-w][j-t]
				if t&1 == 1 {
					v -= term
				} else {
					v += term
				}
			}
			k[j][w] = v
		}
	}
	return k
}

// PairDistanceDistribution returns, for the minterm set given by the sorted
// index list members over {0,1}^n, the number of unordered pairs at each
// Hamming distance j = 1..n (result index j-1), computed spectrally in
// O(n·2^n) time via the MacWilliams identity:
//
//	#ordered pairs at distance j = (1/2^n) Σ_w P_w · K_j(w)
//
// where P_w = Σ_{wt(s)=w} Ŝ(s)² and Ŝ is the Walsh transform of the set
// indicator. kraw must be Krawtchouk(n).
func PairDistanceDistribution(n int, members []int32, kraw [][]int64) []int {
	size := 1 << uint(n)
	a := make([]int64, size)
	for _, x := range members {
		a[x] = 1
	}
	WHT(a)
	p := make([]int64, n+1)
	for s, v := range a {
		p[bits.OnesCount(uint(s))] += v * v
	}
	out := make([]int, n)
	for j := 1; j <= n; j++ {
		var sum int64
		for w := 0; w <= n; w++ {
			sum += p[w] * kraw[j][w]
		}
		ordered := sum >> uint(n) // divide by 2^n; always exact
		out[j-1] = int(ordered / 2)
	}
	return out
}
