package spectra

import "math/bits"

// Krawtchouk returns the table K[j][w] of binary Krawtchouk polynomial
// values K_j(w; n) = Σ_t (-1)^t C(w,t) C(n-w, j-t) for 0 ≤ j, w ≤ n.
// K_j(w; n) is the character sum Σ_{wt(d)=j} (-1)^{s·d} for any s of weight
// w, which is what links spectra to distance distributions (MacWilliams).
func Krawtchouk(n int) [][]int64 {
	// Binomial table.
	c := make([][]int64, n+1)
	for i := range c {
		c[i] = make([]int64, n+1)
		c[i][0] = 1
		for j := 1; j <= i; j++ {
			c[i][j] = c[i-1][j-1]
			if j <= i-1 {
				c[i][j] += c[i-1][j]
			}
		}
	}
	k := make([][]int64, n+1)
	for j := 0; j <= n; j++ {
		k[j] = make([]int64, n+1)
		for w := 0; w <= n; w++ {
			var v int64
			for t := 0; t <= j; t++ {
				if t > w || j-t > n-w {
					continue
				}
				term := c[w][t] * c[n-w][j-t]
				if t&1 == 1 {
					v -= term
				} else {
					v += term
				}
			}
			k[j][w] = v
		}
	}
	return k
}

// PairDistanceDistribution returns, for the minterm set given by the sorted
// index list members over {0,1}^n, the number of unordered pairs at each
// Hamming distance j = 1..n (result index j-1), computed spectrally in
// O(n·2^n) time via the MacWilliams identity:
//
//	#ordered pairs at distance j = (1/2^n) Σ_w P_w · K_j(w)
//
// where P_w = Σ_{wt(s)=w} Ŝ(s)² and Ŝ is the Walsh transform of the set
// indicator. kraw must be Krawtchouk(n).
func PairDistanceDistribution(n int, members []int32, kraw [][]int64) []int {
	size := 1 << uint(n)
	a := make([]int64, size)
	for _, x := range members {
		a[x] = 1
	}
	WHT(a)
	p := make([]int64, n+1)
	for s, v := range a {
		p[bits.OnesCount(uint(s))] += v * v
	}
	out := make([]int, n)
	krawCombine(n, p, kraw, out)
	return out
}

// krawCombine folds the weight moments p through the Krawtchouk table
// into unordered pair counts per distance (MacWilliams), shared by the
// one-shot spectral path and the scratch-reusing calculator.
func krawCombine(n int, p []int64, kraw [][]int64, out []int) {
	for j := 1; j <= n; j++ {
		var sum int64
		for w := 0; w <= n; w++ {
			sum += p[w] * kraw[j][w]
		}
		ordered := sum >> uint(n) // divide by 2^n; always exact
		out[j-1] = int(ordered / 2)
	}
}

// PairDistCalc computes pair-distance distributions with reusable scratch
// buffers and per-class algorithm dispatch: small minterm sets are
// enumerated directly (m(m-1)/2 popcounts), large ones go through the
// spectral MacWilliams path (one O(n·2^n) WHT). The crossover is where
// the pair count overtakes the WHT work, so the calculator is never
// asymptotically worse than either pure strategy. Not safe for concurrent
// use; results are identical to PairDistanceDistribution.
type PairDistCalc struct {
	n      int
	cutoff int
	kraw   [][]int64
	a      []int64 // 2^n WHT scratch
	p      []int64 // weight moments by Hamming weight
}

// NewPairDistCalc returns a calculator for n-bit minterm spaces.
func NewPairDistCalc(n int) *PairDistCalc {
	size := 1 << uint(n)
	// Direct enumeration costs ~m²/2 popcount-XORs, the spectral path
	// ~n·2^n WHT butterflies plus a 2^n squaring pass; equating the two
	// puts the crossover near m = sqrt((n+2)·2^n). One popcount-XOR pair
	// op and one butterfly cost about the same, so no further constant is
	// applied.
	cutoff := 1
	for cutoff*cutoff < (n+2)*size {
		cutoff++
	}
	return &PairDistCalc{
		n:      n,
		cutoff: cutoff,
		kraw:   Krawtchouk(n),
		a:      make([]int64, size),
		p:      make([]int64, n+1),
	}
}

// Distribution writes the unordered pair counts per Hamming distance
// j = 1..n of the minterm set members into out[0..n-1].
func (c *PairDistCalc) Distribution(members []int32, out []int) {
	for j := range out[:c.n] {
		out[j] = 0
	}
	if len(members) < 2 {
		return
	}
	if len(members) <= c.cutoff {
		for i, xa := range members {
			for _, xb := range members[i+1:] {
				out[bits.OnesCount32(uint32(xa^xb))-1]++
			}
		}
		return
	}
	a := c.a
	for i := range a {
		a[i] = 0
	}
	for _, x := range members {
		a[x] = 1
	}
	WHT(a)
	p := c.p
	for w := range p {
		p[w] = 0
	}
	for s, v := range a {
		p[bits.OnesCount(uint(s))] += v * v
	}
	krawCombine(c.n, p, c.kraw, out)
}
