package spectra

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tt"
)

func TestWHTInvolution(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(50))}
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := make([]int64, 1<<n)
		orig := make([]int64, len(a))
		for i := range a {
			a[i] = int64(rng.Intn(21) - 10)
			orig[i] = a[i]
		}
		WHT(a)
		WHT(a)
		// WHT∘WHT = 2^n · identity.
		for i := range a {
			if a[i] != orig[i]<<n {
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestWHTRejectsNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("WHT accepted length 3")
		}
	}()
	WHT(make([]int64, 3))
}

func TestSpectrumParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for n := 1; n <= 8; n++ {
		f := tt.Random(n, rng)
		s := Spectrum(f)
		var sum int64
		for _, c := range s {
			sum += c * c
		}
		// Parseval: Σ S(s)² = 2^n · Σ (±1)² = 4^n.
		if sum != int64(1)<<(2*n) {
			t.Errorf("Parseval fails at n=%d: %d", n, sum)
		}
		// DC coefficient = 2^n - 2|f|.
		if s[0] != int64(f.NumBits())-2*int64(f.CountOnes()) {
			t.Errorf("DC coefficient wrong at n=%d", n)
		}
	}
}

func TestWeightMomentsInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for n := 2; n <= 8; n++ {
		f := tt.Random(n, rng)
		m := WeightMoments(n, Spectrum(f))
		// Input negation, permutation, output negation preserve the moments.
		g := f.FlipVar(rng.Intn(n)).SwapVars(rng.Intn(n), rng.Intn(n)).Not()
		m2 := WeightMoments(n, Spectrum(g))
		for w := range m {
			if m[w] != m2[w] {
				t.Fatalf("weight moments not NPN-invariant at n=%d w=%d", n, w)
			}
		}
	}
}

func TestKrawtchoukBasics(t *testing.T) {
	for n := 1; n <= 10; n++ {
		k := Krawtchouk(n)
		for w := 0; w <= n; w++ {
			// K_0(w) = 1.
			if k[0][w] != 1 {
				t.Fatalf("K_0(%d;%d) = %d", w, n, k[0][w])
			}
			// K_1(w) = n - 2w.
			if k[1][w] != int64(n-2*w) {
				t.Fatalf("K_1(%d;%d) = %d", w, n, k[1][w])
			}
		}
		// K_j(0) = C(n, j).
		binom := int64(1)
		for j := 0; j <= n; j++ {
			if k[j][0] != binom {
				t.Fatalf("K_%d(0;%d) = %d, want %d", j, n, k[j][0], binom)
			}
			binom = binom * int64(n-j) / int64(j+1)
		}
		// Orthogonality-ish sanity: Σ_j K_j(w) = Σ_{d} (-1)^{s·d} = 0 for w>0.
		for w := 1; w <= n; w++ {
			var sum int64
			for j := 0; j <= n; j++ {
				sum += k[j][w]
			}
			if sum != 0 {
				t.Fatalf("Σ_j K_j(%d;%d) = %d, want 0", w, n, sum)
			}
		}
	}
}

func TestPairDistanceDistributionAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for n := 1; n <= 8; n++ {
		k := Krawtchouk(n)
		for rep := 0; rep < 10; rep++ {
			var members []int32
			for x := 0; x < 1<<n; x++ {
				if rng.Intn(3) == 0 {
					members = append(members, int32(x))
				}
			}
			got := PairDistanceDistribution(n, members, k)
			want := make([]int, n)
			for a := 0; a < len(members); a++ {
				for b := a + 1; b < len(members); b++ {
					j := bits.OnesCount32(uint32(members[a] ^ members[b]))
					want[j-1]++
				}
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("distance %d: got %d want %d (n=%d, |S|=%d)", j+1, got[j], want[j], n, len(members))
				}
			}
		}
	}
}

func TestAbsWeightDistributionSortedAndInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	f := tt.Random(6, rng)
	d := AbsWeightDistribution(6, Spectrum(f))
	for w, row := range d {
		for i := 1; i < len(row); i++ {
			if row[i-1] > row[i] {
				t.Fatalf("weight %d row not sorted", w)
			}
		}
	}
	g := f.FlipVar(2).Not()
	d2 := AbsWeightDistribution(6, Spectrum(g))
	for w := range d {
		if len(d[w]) != len(d2[w]) {
			t.Fatalf("row length differs at weight %d", w)
		}
		for i := range d[w] {
			if d[w][i] != d2[w][i] {
				t.Fatalf("abs distribution not invariant under N transform at weight %d", w)
			}
		}
	}
}
