// Package spectra implements Walsh–Hadamard spectral analysis of Boolean
// functions. The paper's related work uses Walsh spectra as matching
// signatures [Clarke et al., DAC'93]; here the spectrum serves two roles:
//
//   - WalshSignature: an NPN-invariant spectral signature (the multiset of
//     absolute spectral coefficients grouped by Hamming weight of the
//     frequency index), offered as an optional extension signature.
//   - Krawtchouk-based distance enumeration: the MacWilliams identity turns
//     the pair-distance distribution of a minterm set into a weighted sum of
//     squared spectral coefficients, giving an O(n·2^n) alternative to the
//     quadratic pair enumeration used by the naive OSDV computation.
package spectra

import (
	"math/bits"
	"sort"

	"repro/internal/tt"
)

// WHT performs the in-place Walsh–Hadamard transform of a, whose length must
// be a power of two: a'[s] = Σ_x a[x]·(-1)^{popcount(s&x)}.
func WHT(a []int64) {
	n := len(a)
	if n&(n-1) != 0 {
		panic("spectra: WHT length must be a power of two")
	}
	for h := 1; h < n; h <<= 1 {
		for i := 0; i < n; i += h << 1 {
			for j := i; j < i+h; j++ {
				x, y := a[j], a[j+h]
				a[j], a[j+h] = x+y, x-y
			}
		}
	}
}

// Spectrum returns the Walsh spectrum of the ±1-encoded function:
// S[s] = Σ_x (-1)^{f(x)} (-1)^{s·x}.
func Spectrum(f *tt.TT) []int64 {
	a := make([]int64, f.NumBits())
	for x := range a {
		if f.Get(x) {
			a[x] = -1
		} else {
			a[x] = 1
		}
	}
	WHT(a)
	return a
}

// IndicatorSpectrum returns the Walsh transform of the 0/1 indicator of the
// given minterm set (bit x of set selects minterm x).
func IndicatorSpectrum(set *tt.TT) []int64 {
	a := make([]int64, set.NumBits())
	for x := range a {
		if set.Get(x) {
			a[x] = 1
		}
	}
	WHT(a)
	return a
}

// WeightMoments groups squared spectral coefficients by the Hamming weight
// of the frequency index: M[w] = Σ_{wt(s)=w} S[s]². The result is invariant
// under input permutation and input negation, and under output negation when
// the spectrum is ±1-encoded (coefficients only change sign).
func WeightMoments(n int, spectrum []int64) []int64 {
	m := make([]int64, n+1)
	for s, c := range spectrum {
		m[bits.OnesCount(uint(s))] += c * c
	}
	return m
}

// AbsWeightDistribution returns, per Hamming weight w of the frequency
// index, the sorted multiset of absolute spectral coefficients. Stronger
// than WeightMoments but more expensive to compare; exposed for the
// spectral-signature extension experiments.
func AbsWeightDistribution(n int, spectrum []int64) [][]int64 {
	d := make([][]int64, n+1)
	for s, c := range spectrum {
		if c < 0 {
			c = -c
		}
		w := bits.OnesCount(uint(s))
		d[w] = append(d[w], c)
	}
	for _, row := range d {
		sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
	}
	return d
}
