package api

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"

	"repro/internal/obs"
)

// NDJSONContentType is the media type of the streaming request and
// response bodies: one JSON value per line.
const NDJSONContentType = "application/x-ndjson"

// StreamChunk is how many input lines the streaming handlers buffer
// before running them through the backend as one pipeline batch: large
// enough to keep the worker pool fed, small enough that memory stays
// bounded however large the upload is.
const StreamChunk = 1024

// maxStreamLine bounds one input line (one hex function). The largest
// legal table (tt.MaxVars) is 16384 hex digits; anything past this is a
// framing error, not a function.
const maxStreamLine = 1 << 16

// streamAccepted lists the request content types the streaming endpoints
// take. text/plain is allowed because the body genuinely is just one hex
// string per line.
var streamAccepted = []string{NDJSONContentType, "application/ndjson", "text/plain"}

// HandleClassifyStream returns the POST /v2/classify/stream handler: an
// NDJSON variant of classify for batches too large to buffer. The request
// body is one hex function per line (a bare string; surrounding
// whitespace and JSON string quoting are both accepted), the response is
// one ClassifyItem JSON object per line, in input order, flushed per
// chunk. Item errors are reported inline exactly as in the buffered
// endpoint; there is no MaxBatch limit — the stream is bounded by maxBody
// bytes only.
func HandleClassifyStream(b Backend, maxBody int64) http.HandlerFunc {
	return handleStream(maxBody, func(ctx context.Context, w *streamWriter, fns []string) error {
		items, _, batchErr := classifyBatch(ctx, b, fns)
		if batchErr != nil {
			return batchErr
		}
		for i := range items {
			if err := w.writeLine(&items[i]); err != nil {
				return err
			}
		}
		return nil
	})
}

// HandleInsertStream returns the POST /v2/insert/stream handler: the
// NDJSON variant of insert. A whole-batch condition (read_only,
// primary_unreachable) surfaces as an error envelope before any line is
// written when it hits the first chunk, or as a trailing error line once
// the response status is already committed.
func HandleInsertStream(b Backend, maxBody int64) http.HandlerFunc {
	return handleStream(maxBody, func(ctx context.Context, w *streamWriter, fns []string) error {
		items, _, batchErr := insertBatch(ctx, b, fns)
		if batchErr != nil {
			return batchErr
		}
		for i := range items {
			if err := w.writeLine(&items[i]); err != nil {
				return err
			}
		}
		return nil
	})
}

// streamWriter writes NDJSON response lines, committing the 200 header on
// the first line so envelope errors can still claim their own status
// before anything was sent.
type streamWriter struct {
	w         http.ResponseWriter
	bw        *bufio.Writer
	flusher   http.Flusher
	committed bool
}

func (sw *streamWriter) commit() {
	if sw.committed {
		return
	}
	sw.committed = true
	sw.w.Header().Set("Content-Type", NDJSONContentType)
	sw.w.WriteHeader(http.StatusOK)
}

func (sw *streamWriter) writeLine(v any) error {
	sw.commit()
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if _, err := sw.bw.Write(append(b, '\n')); err != nil {
		return err
	}
	return nil
}

func (sw *streamWriter) flush() {
	// Flushing an untouched response would commit a 200 header and rob a
	// later envelope error of its status.
	if !sw.committed {
		return
	}
	sw.bw.Flush()
	if sw.flusher != nil {
		sw.flusher.Flush()
	}
}

// handleStream is the shared NDJSON pump: scan input lines, chunk them,
// hand each chunk to process, flush between chunks. An error from process
// (or a framing error in the input) ends the stream: as a proper error
// envelope when nothing has been written yet, as one trailing
// {"error": {...}} line otherwise — a streaming client must treat an
// error line as terminal.
func handleStream(maxBody int64, process func(context.Context, *streamWriter, []string) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !CheckContentType(w, r, streamAccepted...) {
			return
		}
		sw := &streamWriter{w: w, bw: bufio.NewWriter(w)}
		sw.flusher, _ = w.(http.Flusher)
		defer sw.flush()

		fail := func(e *Error) {
			// The trailing error line of a committed stream carries the
			// request ID: it is the only place a client interrupted
			// mid-stream can learn which server-side logs to ask for.
			e = e.WithRequestID(obs.RequestIDFromContext(r.Context()))
			if !sw.committed {
				WriteError(w, e)
				return
			}
			sw.writeLine(ErrorEnvelope{Error: e})
		}

		sc := bufio.NewScanner(http.MaxBytesReader(w, r.Body, maxBody))
		sc.Buffer(make([]byte, 64*1024), maxStreamLine)
		chunk := make([]string, 0, StreamChunk)
		drain := func() error {
			if len(chunk) == 0 {
				return nil
			}
			err := process(r.Context(), sw, chunk)
			chunk = chunk[:0]
			sw.flush()
			return err
		}
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			// Accept a JSON-quoted string line too: some NDJSON tooling
			// quotes every value.
			if len(line) >= 2 && line[0] == '"' {
				var s string
				if err := json.Unmarshal([]byte(line), &s); err != nil {
					fail(Errf(CodeBadRequest, "bad NDJSON line: %v", err))
					return
				}
				line = s
			}
			chunk = append(chunk, line)
			if len(chunk) == StreamChunk {
				if err := drain(); err != nil {
					fail(AsError(err))
					return
				}
			}
		}
		if err := sc.Err(); err != nil {
			var tooLarge *http.MaxBytesError
			switch {
			case errors.As(err, &tooLarge):
				fail(Errf(CodeBodyTooLarge, "request body exceeds %d bytes", tooLarge.Limit))
			case errors.Is(err, bufio.ErrTooLong):
				fail(Errf(CodeBadRequest, "input line exceeds %d bytes", maxStreamLine))
			default:
				fail(Errf(CodeBadRequest, "reading request body: %v", err))
			}
			return
		}
		if err := drain(); err != nil {
			fail(AsError(err))
			return
		}
		// An empty stream is a valid empty result; commit the 200.
		sw.commit()
	}
}
