package api

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"sort"
	"strconv"

	"repro/internal/aig"
	"repro/internal/mapper"
	"repro/internal/tt"
)

// Mapper-as-a-service: POST /v2/map accepts an ASCII-AIGER circuit body,
// runs the k-LUT technology mapper (internal/mapper) and returns the LUT
// network, depth/area stats and the NPN class census — the paper's
// workload loop (map a circuit, classify every LUT function) as one HTTP
// round trip. With ?insert=true the discovered LUT classes are inserted
// into the serving store, so mapping traffic warms the classifier for the
// next circuit.

// DefaultMaxBody is the request-body byte bound used when a stack mounts
// handlers without an explicit limit (npnserve's -max-body flag overrides
// it). It applies to the AIGER upload and the NDJSON streaming bodies;
// the buffered JSON batch endpoints keep their arity-derived bounds.
const DefaultMaxBody int64 = 64 << 20

// mapVerifyWords and mapVerifySeed parameterize sampled verification for
// circuits too wide to verify exhaustively.
const (
	mapVerifyWords = 64
	mapVerifySeed  = 1
)

// maxExhaustivePIs is the widest circuit verified exhaustively; beyond it
// the mapping is checked by random simulation (VerifySampled).
const maxExhaustivePIs = 14

// MapParams are the query parameters of POST /v2/map, mirroring
// cmd/npnmap's flags.
type MapParams struct {
	// K is the LUT size (cut width); 0 means 6.
	K int
	// Mode is "depth" (default) or "area".
	Mode string
	// Cuts is the priority cuts kept per node; 0 means 8.
	Cuts int
	// Insert asks the server to insert the discovered LUT classes into
	// its store.
	Insert bool
}

// CircuitInfo describes the uploaded circuit.
type CircuitInfo struct {
	PIs  int `json:"pis"`
	POs  int `json:"pos"`
	Ands int `json:"ands"`
}

// LUTJSON is one lookup table of the mapping on the wire.
type LUTJSON struct {
	Root uint32 `json:"root"`
	// Leaves feed the LUT in function variable order.
	Leaves []uint32 `json:"leaves"`
	// Function is the LUT's local function over Vars variables, in hex.
	Function string `json:"function"`
	Vars     int    `json:"vars"`
	// Class is the function's NPN class key (computed at width K).
	Class string `json:"class"`
}

// ClassCount is one row of the NPN class census, ordered by descending
// count (key ascending on ties).
type ClassCount struct {
	Class string `json:"class"`
	Count int    `json:"count"`
}

// MapInsertSummary reports what ?insert=true stored.
type MapInsertSummary struct {
	// Functions is how many distinct K-ary LUT functions were offered.
	Functions int `json:"functions"`
	// ClassesCreated counts the classes that were new to the store.
	ClassesCreated int `json:"classes_created"`
	// Errors counts functions the store refused (e.g. not_durable).
	Errors int `json:"errors"`
}

// MapResponse is the body of POST /v2/map.
type MapResponse struct {
	Circuit CircuitInfo `json:"circuit"`
	K       int         `json:"k"`
	Mode    string      `json:"mode"`
	Cuts    int         `json:"cuts"`

	LUTs  []LUTJSON `json:"luts"`
	Area  int       `json:"area"`
	Depth int       `json:"depth"`

	// Funcs counts distinct local functions before classification;
	// Classes is the census that makes cell-library lookup feasible.
	Funcs   int          `json:"funcs"`
	Classes []ClassCount `json:"classes"`

	// Verified reports that the LUT network was checked functionally
	// equivalent to the uploaded circuit before this response was sent;
	// VerifyMethod is "exhaustive" or "sampled".
	Verified     bool   `json:"verified"`
	VerifyMethod string `json:"verify_method"`

	Inserted *MapInsertSummary `json:"inserted,omitempty"`
}

// MapConfig wires HandleMap into a serving stack.
type MapConfig struct {
	// MaxBody bounds the AIGER upload; 0 means DefaultMaxBody.
	MaxBody int64
	// Insert, when non-nil, stores a batch of K-ary LUT functions on
	// ?insert=true; the context is the map request's, so a forwarding
	// follower's primary round trip dies with the client. Nil (a stack
	// that cannot write, e.g. a read-only follower) makes ?insert=true
	// fail with read_only before any mapping work.
	Insert func(ctx context.Context, fs []*tt.TT) ([]InsertOutcome, *Error)
}

// ParseMapParams reads and validates the query parameters.
func ParseMapParams(r *http.Request) (MapParams, *Error) {
	p := MapParams{K: 6, Mode: "depth", Cuts: 8}
	q := r.URL.Query()
	if s := q.Get("k"); s != "" {
		k, err := strconv.Atoi(s)
		if err != nil {
			return p, Errf(CodeBadRequest, "bad k %q: %v", s, err)
		}
		if k < 2 || k > tt.MaxVars {
			return p, Errf(CodeArityOutOfRange, "k=%d outside 2..%d", k, tt.MaxVars)
		}
		p.K = k
	}
	if s := q.Get("mode"); s != "" {
		if s != "depth" && s != "area" {
			return p, Errf(CodeBadRequest, "mode %q: want \"depth\" or \"area\"", s)
		}
		p.Mode = s
	}
	if s := q.Get("cuts"); s != "" {
		c, err := strconv.Atoi(s)
		if err != nil || c < 1 || c > 64 {
			return p, Errf(CodeBadRequest, "cuts %q: want an integer in 1..64", s)
		}
		p.Cuts = c
	}
	if s := q.Get("insert"); s != "" {
		v, err := strconv.ParseBool(s)
		if err != nil {
			return p, Errf(CodeBadRequest, "insert %q: want a boolean", s)
		}
		p.Insert = v
	}
	return p, nil
}

// HandleMap returns the POST /v2/map handler: parse the AIGER body, map
// it to K-LUTs, functionally verify the result, optionally insert the
// discovered classes, and answer with the network plus census. The body
// content type must be empty, text/plain or application/octet-stream —
// the upload is a circuit, not JSON.
func HandleMap(cfg MapConfig) http.HandlerFunc {
	maxBody := cfg.MaxBody
	if maxBody <= 0 {
		maxBody = DefaultMaxBody
	}
	return func(w http.ResponseWriter, r *http.Request) {
		if !CheckContentType(w, r, "text/plain", "application/octet-stream", "application/x-aiger") {
			return
		}
		p, perr := ParseMapParams(r)
		if perr != nil {
			WriteError(w, perr)
			return
		}
		// A doomed insert is refused before the expensive mapping pass,
		// not after it.
		if p.Insert && cfg.Insert == nil {
			WriteError(w, Errf(CodeReadOnly, "this server does not accept inserts; retry without insert=true"))
			return
		}
		// The body is read whole before parsing so the limit breach is
		// still a typed *http.MaxBytesError here — aig.ReadAAG flattens
		// wrapped errors, which would turn the documented body_too_large
		// into a misleading bad_circuit. The buffer is bounded by maxBody
		// and the mapper holds the whole AIG anyway.
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
		if err != nil {
			var tooLarge *http.MaxBytesError
			if errors.As(err, &tooLarge) {
				WriteError(w, Errf(CodeBodyTooLarge, "circuit body exceeds %d bytes", maxBody))
				return
			}
			WriteError(w, Errf(CodeBadRequest, "reading circuit body: %v", err))
			return
		}
		g, err := aig.ReadAAG(bytes.NewReader(body))
		if err != nil {
			WriteError(w, Errf(CodeBadCircuit, "parsing AIGER body: %v", err))
			return
		}

		mode := mapper.Depth
		if p.Mode == "area" {
			mode = mapper.Area
		}
		res, err := mapper.Map(g, mapper.Options{K: p.K, CutsPerNode: p.Cuts, Mode: mode})
		if err != nil {
			WriteError(w, Errf(CodeBadCircuit, "mapping failed: %v", err))
			return
		}

		// Never serve an unverified mapping: check the LUT network against
		// the uploaded circuit before encoding anything.
		method := "exhaustive"
		if g.NumPIs() <= maxExhaustivePIs {
			err = mapper.Verify(g, res)
		} else {
			method = "sampled"
			err = mapper.VerifySampled(g, res, mapVerifyWords, mapVerifySeed)
		}
		if err != nil {
			WriteError(w, Errf(CodeVerifyFailed, "mapping verification failed: %v", err))
			return
		}

		resp := MapResponse{
			Circuit:      CircuitInfo{PIs: g.NumPIs(), POs: len(g.POs()), Ands: g.NumAnds()},
			K:            p.K,
			Mode:         p.Mode,
			Cuts:         p.Cuts,
			LUTs:         make([]LUTJSON, len(res.LUTs)),
			Area:         res.Area(),
			Depth:        res.Depth,
			Funcs:        res.Funcs,
			Verified:     true,
			VerifyMethod: method,
		}
		for i, l := range res.LUTs {
			resp.LUTs[i] = LUTJSON{
				Root:     l.Root,
				Leaves:   l.Leaves,
				Function: l.Function.Hex(),
				Vars:     l.Function.NumVars(),
				Class:    KeyHex(l.ClassKey),
			}
		}
		resp.Classes = censusRows(res.Classes)

		if p.Insert {
			summary, e := insertMapped(r.Context(), cfg.Insert, res, p.K)
			if e != nil {
				WriteError(w, e)
				return
			}
			resp.Inserted = summary
		}
		WriteJSON(w, http.StatusOK, resp)
	}
}

// censusRows flattens the class census, ordered by count desc, key asc.
func censusRows(classes map[uint64]int) []ClassCount {
	keys := make([]uint64, 0, len(classes))
	for k := range classes {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if classes[keys[i]] != classes[keys[j]] {
			return classes[keys[i]] > classes[keys[j]]
		}
		return keys[i] < keys[j]
	})
	out := make([]ClassCount, len(keys))
	for i, k := range keys {
		out[i] = ClassCount{Class: KeyHex(k), Count: classes[k]}
	}
	return out
}

// insertMapped feeds the mapping's distinct K-ary LUT functions into the
// store, warming the classifier with real mapping traffic.
func insertMapped(ctx context.Context, insert func(context.Context, []*tt.TT) ([]InsertOutcome, *Error), res *mapper.Result, k int) (*MapInsertSummary, *Error) {
	if insert == nil {
		return nil, Errf(CodeReadOnly, "this server does not accept inserts; retry without insert=true")
	}
	seen := make(map[string]bool, len(res.LUTs))
	var fs []*tt.TT
	for _, l := range res.LUTs {
		fk := l.Function
		if fk.NumVars() < k {
			fk = fk.Extend(k)
		}
		h := fk.Hex()
		if seen[h] {
			continue
		}
		seen[h] = true
		fs = append(fs, fk)
	}
	outcomes, e := insert(ctx, fs)
	if e != nil {
		return nil, e
	}
	s := &MapInsertSummary{Functions: len(fs)}
	for _, o := range outcomes {
		switch {
		case o.Err != nil || o.Index < 0:
			s.Errors++
		case o.New:
			s.ClassesCreated++
		}
	}
	return s, nil
}
