package api

import (
	"context"
	"fmt"

	"repro/internal/npn"
	"repro/internal/tt"
)

// MaxBatch bounds the number of functions accepted in one buffered batch
// request. Larger workloads use the NDJSON streaming endpoints, which are
// bounded by bytes, not items.
const MaxBatch = 1 << 16

// BatchRequest is the body of POST /v2/classify and POST /v2/insert: a
// batch of hexadecimal truth tables. Which arities are accepted — one
// fixed arity, or inference from the hex length — is the mounting stack's
// choice, expressed through its Backend.Resolve.
type BatchRequest struct {
	Functions []string `json:"functions"`
}

// Witness is the wire form of an npn.Transform: a certificate τ with
// τ(rep) = function that a client can replay locally. The field names are
// shared with the /v1 surface, so a witness decoded from either version
// replays identically.
type Witness struct {
	// Perm maps result input i to representative input Perm[i].
	Perm []int `json:"perm"`
	// NegMask bit i complements input i.
	NegMask uint32 `json:"neg_mask"`
	// OutNeg complements the output.
	OutNeg bool `json:"out_neg"`
}

// NewWitness encodes a witness transform into its wire form.
func NewWitness(w npn.Transform) *Witness {
	perm := make([]int, w.N)
	for i := range perm {
		perm[i] = int(w.Perm[i])
	}
	return &Witness{Perm: perm, NegMask: w.NegMask, OutNeg: w.OutNeg}
}

// Transform decodes the wire witness back into an npn.Transform.
func (w *Witness) Transform() (npn.Transform, error) {
	n := len(w.Perm)
	if n > tt.MaxVars {
		return npn.Transform{}, fmt.Errorf("witness arity %d out of range", n)
	}
	tr := npn.Identity(n)
	for i, p := range w.Perm {
		if p < 0 || p >= n {
			return npn.Transform{}, fmt.Errorf("witness perm[%d] = %d out of range", i, p)
		}
		tr.Perm[i] = uint8(p)
	}
	tr.NegMask = w.NegMask
	tr.OutNeg = w.OutNeg
	if err := tr.Validate(); err != nil {
		return npn.Transform{}, err
	}
	return tr, nil
}

// ClassifyItem is one function's outcome in a /v2 classify response.
// Exactly one of two shapes appears on the wire: an error item
// ({"function", "error"}) when the function itself was unusable, or a
// result item carrying the class key (valid even on a miss) plus, on a
// hit, the chain index, representative and witness.
type ClassifyItem struct {
	Function string `json:"function"`
	// Error, when set, is this item's failure; the rest of the batch is
	// unaffected. The sibling result fields are zero.
	Error   *Error   `json:"error,omitempty"`
	Hit     bool     `json:"hit"`
	Class   string   `json:"class,omitempty"`
	Index   *int     `json:"index,omitempty"`
	Rep     string   `json:"rep,omitempty"`
	Witness *Witness `json:"witness,omitempty"`
}

// ClassifyResponse is the body of POST /v2/classify. Errors counts the
// items that carry per-item errors, so a client can cheaply detect a
// partially-failed batch without scanning.
type ClassifyResponse struct {
	Results []ClassifyItem `json:"results"`
	Errors  int            `json:"errors"`
}

// InsertItem is one function's outcome in a /v2 insert response. An item
// error (bad_hex, arity_out_of_range, not_durable) fails only that item.
type InsertItem struct {
	Function string `json:"function"`
	Error    *Error `json:"error,omitempty"`
	Class    string `json:"class,omitempty"`
	Index    int    `json:"index"`
	New      bool   `json:"new"`
}

// InsertResponse is the body of POST /v2/insert.
type InsertResponse struct {
	Results []InsertItem `json:"results"`
	Errors  int          `json:"errors"`
}

// Result is one function's classification outcome as a Backend reports
// it — the transport-free twin of the pipeline's result, so this package
// does not depend on any particular serving stack.
type Result struct {
	// Key is the MSV class key (valid even on a miss).
	Key uint64
	// Index is the representative's chain position; meaningful on a hit.
	Index int
	// Hit reports whether the class is stored.
	Hit bool
	// RepHex is the certified representative's hex form (empty on a miss).
	RepHex string
	// Rep is the representative's parsed table when the backend has it at
	// hand (hit only, optional): the binary transport encodes from it
	// directly instead of re-decoding RepHex. Never mutated by consumers.
	Rep *tt.TT
	// Witness is a transform τ with τ(RepHex) = function (hit only).
	Witness npn.Transform
}

// InsertOutcome is one function's insertion outcome as a Backend reports
// it. Err carries a per-item failure (e.g. a forwarding follower relaying
// the primary's item error); Index < 0 with a nil Err means the store
// refused the insert (journal failure) and is reported as not_durable.
type InsertOutcome struct {
	Key   uint64
	Index int
	New   bool
	Err   *Error
}

// Backend is what a serving stack plugs into the shared /v2 batch and
// streaming handlers: hex resolution (which owns arity selection and
// error coding), and the batch pipeline operations. The context is the
// request's — a forwarding follower threads it into its primary calls.
//
// Classify and Insert return one entry per input, in order, or a
// whole-batch *Error for conditions that fail every item identically
// (read_only on a local-mode follower, primary_unreachable on a
// forwarding one, a failed store recovery).
type Backend interface {
	// Resolve parses one hex function, choosing its arity. A nil *Error
	// means the function is valid; resolution must also make the arity's
	// store ready, so Classify/Insert on resolved functions cannot fail
	// per item.
	Resolve(hex string) (*tt.TT, *Error)
	Classify(ctx context.Context, fs []*tt.TT) ([]Result, *Error)
	Insert(ctx context.Context, fs []*tt.TT) ([]InsertOutcome, *Error)
}

// ArityBackend is an optional Backend extension for transports that carry
// each function's arity explicitly (the binary frame) instead of encoding
// it in the hex length. CheckArity reports whether n-variable functions
// are served, with the same readiness contract as Resolve: a nil *Error
// means Classify/Insert on n-variable functions cannot fail per item.
// Backends without it still serve binary requests — the handler falls back
// to Resolve on the hex form, paying one encode per function.
type ArityBackend interface {
	CheckArity(n int) *Error
}

// checkArity validates one binary-decoded function against the backend.
func checkArity(b Backend, f *tt.TT) *Error {
	if ab, ok := b.(ArityBackend); ok {
		return ab.CheckArity(f.NumVars())
	}
	_, e := b.Resolve(f.Hex())
	return e
}

// KeyHex renders a class key in its canonical 16-digit wire form.
func KeyHex(key uint64) string { return fmt.Sprintf("%016x", key) }

// classifyItem encodes one resolved function's result.
func classifyItem(fn string, r Result) ClassifyItem {
	it := ClassifyItem{Function: fn, Hit: r.Hit, Class: KeyHex(r.Key)}
	if r.Hit {
		idx := r.Index
		it.Index = &idx
		it.Rep = r.RepHex
		it.Witness = NewWitness(r.Witness)
	}
	return it
}

// insertItem encodes one resolved function's insertion outcome.
func insertItem(fn string, o InsertOutcome) InsertItem {
	if o.Err != nil {
		return InsertItem{Function: fn, Error: o.Err}
	}
	if o.Index < 0 {
		return InsertItem{
			Function: fn,
			Class:    KeyHex(o.Key),
			Index:    -1,
			Error: Errf(CodeNotDurable,
				"insert refused: journal failure, class not stored durably"),
		}
	}
	return InsertItem{Function: fn, Class: KeyHex(o.Key), Index: o.Index, New: o.New}
}

// HexDigits returns the wire length of an n-variable hex truth table:
// 2^n/4 digits, floored at one.
func HexDigits(n int) int {
	d := (1 << n) / 4
	if d == 0 {
		d = 1
	}
	return d
}
