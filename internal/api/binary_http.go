package api

import (
	"errors"
	"io"
	"mime"
	"net/http"
	"strings"

	"repro/internal/obs"
	"repro/internal/tt"
)

// IsBinaryRequest reports whether the request body is a binary frame
// (Content-Type: application/x-npn-binary).
func IsBinaryRequest(r *http.Request) bool {
	mt, _, err := mime.ParseMediaType(r.Header.Get("Content-Type"))
	return err == nil && mt == BinaryContentType
}

// AcceptsBinary reports whether the client asked for a binary response
// body: the Accept header explicitly lists the binary media type. A bare
// */* stays JSON — binary is strictly opt-in.
func AcceptsBinary(r *http.Request) bool {
	accept := r.Header.Get("Accept")
	if accept == "" {
		return false
	}
	for _, part := range strings.Split(accept, ",") {
		mt, _, err := mime.ParseMediaType(strings.TrimSpace(part))
		if err == nil && mt == BinaryContentType {
			return true
		}
	}
	return false
}

// readFramedBody reads a bounded binary request body. On failure it writes
// the error envelope and returns ok=false.
func readFramedBody(w http.ResponseWriter, r *http.Request, maxBody int64) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			WriteError(w, Errf(CodeBodyTooLarge, "request body exceeds %d bytes", tooLarge.Limit))
			return nil, false
		}
		WriteError(w, Errf(CodeBadRequest, "reading request body: %v", err))
		return nil, false
	}
	return body, true
}

// decodeNegotiated parses a classify/insert request body in whichever of
// the two transports the request declared, into the transport-free form
// both response encoders consume: fs[i] is input i's parsed function (nil
// when errs[i] carries its per-item error), fns[i] its hex echo for JSON
// responses (computed lazily for binary bodies), and crcEcho whether a
// binary response should carry the CRC trailer (mirroring the request
// frame). Envelope-level failures are written as JSON error envelopes —
// on both transports, so error-code handling never forks — and report
// ok=false.
func decodeNegotiated(b Backend, maxBody int64, w http.ResponseWriter, r *http.Request) (fs []*tt.TT, errs []*Error, fns []string, crcEcho bool, ok bool) {
	if IsBinaryRequest(r) {
		body, okBody := readFramedBody(w, r, maxBody)
		if !okBody {
			return nil, nil, nil, false, false
		}
		decoded, crc, err := DecodeBinaryRequest(body)
		if err != nil {
			WriteError(w, Errf(CodeBadRequest, "bad binary frame: %v", err))
			return nil, nil, nil, false, false
		}
		fs = decoded
		errs = make([]*Error, len(fs))
		for i, f := range fs {
			if e := checkArity(b, f); e != nil {
				errs[i], fs[i] = e, nil
			}
		}
		return fs, errs, nil, crc, true
	}
	raw, okBody := DecodeBatch(w, r, maxBody)
	if !okBody {
		return nil, nil, nil, false, false
	}
	fs = make([]*tt.TT, len(raw))
	errs = make([]*Error, len(raw))
	for i, s := range raw {
		f, e := b.Resolve(s)
		if e != nil {
			errs[i] = e
		} else {
			fs[i] = f
		}
	}
	return fs, errs, raw, false, true
}

// fnEcho returns input i's hex echo for a JSON response: the request's own
// string when the body was JSON, the table's canonical hex when it arrived
// as a binary frame, empty when the item never parsed.
func fnEcho(fns []string, fs []*tt.TT, i int) string {
	if fns != nil {
		return fns[i]
	}
	if fs[i] != nil {
		return fs[i].Hex()
	}
	return ""
}

// writeBinary emits a binary response frame.
func writeBinary(w http.ResponseWriter, frame []byte) {
	w.Header().Set("Content-Type", BinaryContentType)
	w.WriteHeader(http.StatusOK)
	w.Write(frame)
}

// handleClassifyNegotiated serves POST /v2/classify when either side of
// the exchange is binary: binary body, binary Accept, or both. Whole-batch
// errors remain JSON envelopes at their usual status codes regardless of
// Accept, so clients keep one error decode path.
func handleClassifyNegotiated(b Backend, maxBody int64, w http.ResponseWriter, r *http.Request) {
	fs, errs, fns, crcEcho, ok := decodeNegotiated(b, maxBody, w, r)
	if !ok {
		return
	}
	reqID := obs.RequestIDFromContext(r.Context())
	var valid []*tt.TT
	var validIdx []int
	nErr := 0
	for i, f := range fs {
		if f != nil {
			valid = append(valid, f)
			validIdx = append(validIdx, i)
		} else {
			errs[i] = errs[i].WithRequestID(reqID)
			nErr++
		}
	}
	res := make([]Result, len(fs))
	if len(valid) > 0 {
		results, batchErr := b.Classify(r.Context(), valid)
		if batchErr != nil {
			WriteError(w, batchErr.WithRequestID(reqID))
			return
		}
		for j, rr := range results {
			res[validIdx[j]] = rr
		}
	}
	if AcceptsBinary(r) {
		writeBinary(w, EncodeBinaryClassify(res, errs, crcEcho))
		return
	}
	items := make([]ClassifyItem, len(fs))
	for i := range fs {
		fn := fnEcho(fns, fs, i)
		if errs[i] != nil {
			items[i] = ClassifyItem{Function: fn, Error: errs[i]}
		} else {
			items[i] = classifyItem(fn, res[i])
		}
	}
	WriteJSON(w, http.StatusOK, ClassifyResponse{Results: items, Errors: nErr})
}

// handleInsertNegotiated is handleClassifyNegotiated's insert twin.
func handleInsertNegotiated(b Backend, maxBody int64, w http.ResponseWriter, r *http.Request) {
	fs, errs, fns, crcEcho, ok := decodeNegotiated(b, maxBody, w, r)
	if !ok {
		return
	}
	reqID := obs.RequestIDFromContext(r.Context())
	var valid []*tt.TT
	var validIdx []int
	nErr := 0
	for i, f := range fs {
		if f != nil {
			valid = append(valid, f)
			validIdx = append(validIdx, i)
		} else {
			errs[i] = errs[i].WithRequestID(reqID)
			nErr++
		}
	}
	out := make([]InsertOutcome, len(fs))
	if len(valid) > 0 {
		outcomes, batchErr := b.Insert(r.Context(), valid)
		if batchErr != nil {
			WriteError(w, batchErr.WithRequestID(reqID))
			return
		}
		for j, o := range outcomes {
			o.Err = o.Err.WithRequestID(reqID)
			out[validIdx[j]] = o
		}
	}
	if AcceptsBinary(r) {
		writeBinary(w, EncodeBinaryInsert(out, errs, crcEcho))
		return
	}
	items := make([]InsertItem, len(fs))
	for i := range fs {
		fn := fnEcho(fns, fs, i)
		if errs[i] != nil {
			items[i] = InsertItem{Function: fn, Error: errs[i]}
		} else {
			items[i] = insertItem(fn, out[i])
			if items[i].Error != nil {
				nErr++
			}
		}
	}
	WriteJSON(w, http.StatusOK, InsertResponse{Results: items, Errors: nErr})
}
