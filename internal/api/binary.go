package api

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math/bits"

	"repro/internal/npn"
	"repro/internal/tt"
)

// BinaryContentType is the media type of the length-framed binary transport
// spoken by POST /v2/classify and POST /v2/insert next to JSON: raw
// truth-table words in, compact result frames out, negotiated per request
// via Content-Type (request body) and Accept (response body). The byte
// layout is specified normatively in docs/WIRE.md.
const BinaryContentType = "application/x-npn-binary"

// BinaryVersion is the frame format version carried in every frame header.
// Decoders reject frames with a different version.
const BinaryVersion = 1

// Binary frame constants: the two magic bytes opening every frame, and the
// header flag marking an appended CRC-32 trailer.
const (
	binMagic0 = 'N'
	binMagic1 = 'B'

	// binFlagCRC marks a frame whose last 4 bytes are the little-endian
	// IEEE CRC-32 of everything before them.
	binFlagCRC = 1 << 0
)

// Classify/insert item status bytes of binary response frames.
const (
	binStatusMiss    = 0 // classify: key known, class not stored
	binStatusHit     = 1 // classify: hit (insert: existing class)
	binStatusError   = 2 // per-item error follows as a JSON Error object
	binStatusCreated = 3 // insert: a new class was created
)

// ttBytes returns the packed byte length of an n-variable truth table:
// ceil(2^n/8), floored at one byte.
func ttBytes(n int) int {
	b := (1 << n) / 8
	if b == 0 {
		b = 1
	}
	return b
}

// appendTT appends f's truth table in packed little-endian bit order (bit k
// of byte j is minterm 8j+k).
func appendTT(dst []byte, f *tt.TT) []byte {
	nb := ttBytes(f.NumVars())
	for _, w := range f.Words() {
		for s := 0; s < 64 && nb > 0; s += 8 {
			dst = append(dst, byte(w>>uint(s)))
			nb--
		}
	}
	return dst
}

// readTT decodes an n-variable truth table from the packed form appendTT
// writes. High bits of the last byte beyond 2^n minterms must be zero.
func readTT(n int, data []byte) (*tt.TT, error) {
	f := tt.New(n)
	words := f.Words()
	for i, b := range data {
		if n < 3 && b>>(1<<uint(n)) != 0 {
			return nil, fmt.Errorf("trailing bits set beyond %d minterms", 1<<n)
		}
		words[i/8] |= uint64(b) << uint(8*(i%8))
	}
	return f, nil
}

// appendUvarint appends v in unsigned LEB128 varint encoding.
func appendUvarint(dst []byte, v uint64) []byte {
	var buf [binary.MaxVarintLen64]byte
	return append(dst, buf[:binary.PutUvarint(buf[:], v)]...)
}

// binReader walks a binary frame, remembering the first structural error.
type binReader struct {
	data []byte
	pos  int
	err  error
}

func (r *binReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format+" (at byte %d)", append(args, r.pos)...)
	}
}

func (r *binReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.pos >= len(r.data) {
		r.fail("truncated frame: need 1 more byte")
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

func (r *binReader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.pos+n > len(r.data) {
		r.fail("truncated frame: need %d bytes, have %d", n, len(r.data)-r.pos)
		return nil
	}
	b := r.data[r.pos : r.pos+n]
	r.pos += n
	return b
}

func (r *binReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		r.fail("bad varint")
		return 0
	}
	// The spec requires minimal-length varints, so every frame has exactly
	// one valid encoding.
	if n != uvarintLen(v) {
		r.fail("non-minimal varint")
		return 0
	}
	r.pos += n
	return v
}

func (r *binReader) uint64() uint64 {
	b := r.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// header validates the frame preamble and returns (count, crc present).
// With CRC present, the trailer is verified and stripped from the walk.
func (r *binReader) header() (int, bool) {
	if len(r.data) < 5 {
		r.fail("frame shorter than the 5-byte minimum")
		return 0, false
	}
	if r.byte() != binMagic0 || r.byte() != binMagic1 {
		r.fail("bad magic: want 'NB'")
		return 0, false
	}
	if v := r.byte(); v != BinaryVersion {
		r.fail("unsupported frame version %d (want %d)", v, BinaryVersion)
		return 0, false
	}
	flags := r.byte()
	if flags&^binFlagCRC != 0 {
		r.fail("unknown flag bits 0x%02x", flags&^binFlagCRC)
		return 0, false
	}
	crc := flags&binFlagCRC != 0
	if crc {
		if len(r.data) < r.pos+4 {
			r.fail("CRC flag set but frame has no trailer")
			return 0, false
		}
		body, trailer := r.data[:len(r.data)-4], r.data[len(r.data)-4:]
		if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
			r.fail("CRC mismatch")
			return 0, false
		}
		r.data = body
	}
	count := r.uvarint()
	if r.err != nil {
		return 0, false
	}
	return int(count), crc
}

// finish rejects trailing garbage after the last item.
func (r *binReader) finish() error {
	if r.err == nil && r.pos != len(r.data) {
		r.fail("%d trailing bytes after the last item", len(r.data)-r.pos)
	}
	return r.err
}

// appendBinaryHeader opens a frame: magic, version, flags, item count.
func appendBinaryHeader(dst []byte, count int, crc bool) []byte {
	flags := byte(0)
	if crc {
		flags |= binFlagCRC
	}
	dst = append(dst, binMagic0, binMagic1, BinaryVersion, flags)
	return appendUvarint(dst, uint64(count))
}

// finishBinaryFrame appends the CRC-32 trailer when the header declared it.
func finishBinaryFrame(dst []byte, crc bool) []byte {
	if crc {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], crc32.ChecksumIEEE(dst))
		dst = append(dst, b[:]...)
	}
	return dst
}

// EncodeBinaryRequest frames a batch of truth tables as the binary body of
// POST /v2/classify or POST /v2/insert: the 'NB' header, then per function
// one arity byte followed by its ceil(2^n/8) packed table bytes. With crc
// set the frame carries the CRC-32 trailer.
func EncodeBinaryRequest(fs []*tt.TT, crc bool) []byte {
	size := 5 + len(fs)
	for _, f := range fs {
		size += ttBytes(f.NumVars())
	}
	dst := appendBinaryHeader(make([]byte, 0, size+4), len(fs), crc)
	for _, f := range fs {
		dst = append(dst, byte(f.NumVars()))
		dst = appendTT(dst, f)
	}
	return finishBinaryFrame(dst, crc)
}

// DecodeBinaryRequest parses a binary request frame into its functions.
// Structural problems — bad magic or version, truncation, trailing bytes,
// CRC mismatch, an arity byte outside tt's representable range — fail the
// whole frame, exactly as malformed JSON fails the whole envelope; whether
// each function's arity is actually served is the caller's per-item
// decision. crc reports whether the frame carried a checksum, so responses
// can mirror it.
func DecodeBinaryRequest(data []byte) (fs []*tt.TT, crc bool, err error) {
	r := &binReader{data: data}
	count, crc := r.header()
	if r.err != nil {
		return nil, false, r.err
	}
	if count == 0 {
		return nil, false, fmt.Errorf("empty batch: frame declares zero functions")
	}
	if count > MaxBatch {
		return nil, false, fmt.Errorf("batch of %d exceeds limit %d", count, MaxBatch)
	}
	fs = make([]*tt.TT, 0, count)
	for i := 0; i < count; i++ {
		n := int(r.byte())
		if r.err != nil {
			return nil, false, r.err
		}
		if n < 1 || n > tt.MaxVars {
			return nil, false, fmt.Errorf("functions[%d]: arity %d outside 1..%d", i, n, tt.MaxVars)
		}
		raw := r.bytes(ttBytes(n))
		if r.err != nil {
			return nil, false, r.err
		}
		f, terr := readTT(n, raw)
		if terr != nil {
			return nil, false, fmt.Errorf("functions[%d]: %v", i, terr)
		}
		fs = append(fs, f)
	}
	return fs, crc, r.finish()
}

// appendWitness appends a witness transform: arity byte, the n permutation
// bytes, the negation mask as a varint, and the output-negation byte.
func appendWitness(dst []byte, w npn.Transform) []byte {
	dst = append(dst, byte(w.N))
	for i := 0; i < w.N; i++ {
		dst = append(dst, w.Perm[i])
	}
	dst = appendUvarint(dst, uint64(w.NegMask))
	if w.OutNeg {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// readWitness decodes the form appendWitness writes.
func (r *binReader) readWitness() (npn.Transform, bool) {
	n := int(r.byte())
	if r.err != nil || n < 1 || n > tt.MaxVars {
		r.fail("witness arity %d outside 1..%d", n, tt.MaxVars)
		return npn.Transform{}, false
	}
	w := npn.Identity(n)
	perm := r.bytes(n)
	if r.err != nil {
		return npn.Transform{}, false
	}
	copy(w.Perm[:], perm)
	mask := r.uvarint()
	if r.err != nil || mask >= 1<<uint(n) {
		r.fail("witness negation mask 0x%x has bits above variable %d", mask, n-1)
		return npn.Transform{}, false
	}
	w.NegMask = uint32(mask)
	w.OutNeg = r.byte() == 1
	if err := w.Validate(); err != nil {
		r.fail("bad witness: %v", err)
		return npn.Transform{}, false
	}
	return w, r.err == nil
}

// appendItemError appends a per-item error as status byte binStatusError
// followed by a varint-length-prefixed JSON Error object — the same object
// the JSON response embeds, so the error taxonomy cannot diverge between
// the two transports.
func appendItemError(dst []byte, e *Error) []byte {
	dst = append(dst, binStatusError)
	blob, err := json.Marshal(e)
	if err != nil {
		blob = []byte(`{"code":"internal","message":"error marshal failure"}`)
	}
	dst = appendUvarint(dst, uint64(len(blob)))
	return append(dst, blob...)
}

// readItemError decodes the per-item error payload after binStatusError.
func (r *binReader) readItemError() *Error {
	size := r.uvarint()
	if r.err != nil {
		return nil
	}
	blob := r.bytes(int(size))
	if r.err != nil {
		return nil
	}
	var e Error
	if err := json.Unmarshal(blob, &e); err != nil {
		r.fail("bad item error payload: %v", err)
		return nil
	}
	return &e
}

// repTable returns the representative truth table of a hit result: the
// Rep field when the backend filled it, otherwise the RepHex decode.
func repTable(res Result) (*tt.TT, error) {
	if res.Rep != nil {
		return res.Rep, nil
	}
	return tt.FromHex(res.Witness.N, res.RepHex)
}

// EncodeBinaryClassify frames per-item classify outcomes: for every input,
// errs[i] (when set) as a JSON error payload, otherwise res[i] as a miss
// (status, key) or hit (status, key, index, witness, representative
// table). Keys travel as fixed 8 little-endian bytes — they are uniform
// 64-bit hashes, where a varint would cost more.
func EncodeBinaryClassify(res []Result, errs []*Error, crc bool) []byte {
	dst := appendBinaryHeader(make([]byte, 0, 64+32*len(res)), len(res), crc)
	for i := range res {
		if errs[i] != nil {
			dst = appendItemError(dst, errs[i])
			continue
		}
		rr := res[i]
		if !rr.Hit {
			dst = append(dst, binStatusMiss)
			dst = binary.LittleEndian.AppendUint64(dst, rr.Key)
			continue
		}
		rep, err := repTable(rr)
		if err != nil {
			dst = appendItemError(dst, Errf(CodeInternal, "representative table unavailable: %v", err))
			continue
		}
		dst = append(dst, binStatusHit)
		dst = binary.LittleEndian.AppendUint64(dst, rr.Key)
		dst = appendUvarint(dst, uint64(rr.Index))
		dst = appendWitness(dst, rr.Witness)
		dst = appendTT(dst, rep)
	}
	return finishBinaryFrame(dst, crc)
}

// BinaryClassifyItem is one decoded classify outcome: Err, or a miss
// (Hit=false, Key), or a hit with the witness and representative.
type BinaryClassifyItem struct {
	Err     *Error
	Key     uint64
	Index   int
	Hit     bool
	Rep     *tt.TT
	Witness npn.Transform
}

// DecodeBinaryClassify parses the frame EncodeBinaryClassify writes.
func DecodeBinaryClassify(data []byte) ([]BinaryClassifyItem, error) {
	r := &binReader{data: data}
	count, _ := r.header()
	if r.err != nil {
		return nil, r.err
	}
	if count > MaxBatch {
		return nil, fmt.Errorf("response declares %d items, limit %d", count, MaxBatch)
	}
	items := make([]BinaryClassifyItem, 0, count)
	for i := 0; i < count; i++ {
		switch status := r.byte(); status {
		case binStatusMiss:
			items = append(items, BinaryClassifyItem{Key: r.uint64()})
		case binStatusHit:
			it := BinaryClassifyItem{Hit: true, Key: r.uint64()}
			it.Index = int(r.uvarint())
			w, ok := r.readWitness()
			if !ok {
				return nil, r.err
			}
			it.Witness = w
			raw := r.bytes(ttBytes(w.N))
			if r.err != nil {
				return nil, r.err
			}
			rep, err := readTT(w.N, raw)
			if err != nil {
				return nil, fmt.Errorf("items[%d]: bad representative: %v", i, err)
			}
			it.Rep = rep
			items = append(items, it)
		case binStatusError:
			e := r.readItemError()
			if r.err != nil {
				return nil, r.err
			}
			items = append(items, BinaryClassifyItem{Err: e})
		default:
			if r.err != nil {
				return nil, r.err
			}
			return nil, fmt.Errorf("items[%d]: unknown status byte %d", i, status)
		}
		if r.err != nil {
			return nil, r.err
		}
	}
	return items, r.finish()
}

// EncodeBinaryInsert frames per-item insert outcomes: errs[i] (when set)
// as a JSON error payload, otherwise status created/existing followed by
// the fixed 8-byte key and the varint chain index. A journal-refused
// insert (Index < 0) travels as the same not_durable error the JSON
// response reports.
func EncodeBinaryInsert(out []InsertOutcome, errs []*Error, crc bool) []byte {
	dst := appendBinaryHeader(make([]byte, 0, 16+12*len(out)), len(out), crc)
	for i := range out {
		if errs[i] != nil {
			dst = appendItemError(dst, errs[i])
			continue
		}
		o := out[i]
		switch {
		case o.Err != nil:
			dst = appendItemError(dst, o.Err)
		case o.Index < 0:
			dst = appendItemError(dst, Errf(CodeNotDurable,
				"insert refused: journal failure, class not stored durably"))
		default:
			status := byte(binStatusHit)
			if o.New {
				status = binStatusCreated
			}
			dst = append(dst, status)
			dst = binary.LittleEndian.AppendUint64(dst, o.Key)
			dst = appendUvarint(dst, uint64(o.Index))
		}
	}
	return finishBinaryFrame(dst, crc)
}

// BinaryInsertItem is one decoded insert outcome.
type BinaryInsertItem struct {
	Err   *Error
	Key   uint64
	Index int
	New   bool
}

// DecodeBinaryInsert parses the frame EncodeBinaryInsert writes.
func DecodeBinaryInsert(data []byte) ([]BinaryInsertItem, error) {
	r := &binReader{data: data}
	count, _ := r.header()
	if r.err != nil {
		return nil, r.err
	}
	if count > MaxBatch {
		return nil, fmt.Errorf("response declares %d items, limit %d", count, MaxBatch)
	}
	items := make([]BinaryInsertItem, 0, count)
	for i := 0; i < count; i++ {
		switch status := r.byte(); status {
		case binStatusHit, binStatusCreated:
			it := BinaryInsertItem{New: status == binStatusCreated, Key: r.uint64()}
			it.Index = int(r.uvarint())
			items = append(items, it)
		case binStatusError:
			e := r.readItemError()
			if r.err != nil {
				return nil, r.err
			}
			items = append(items, BinaryInsertItem{Err: e})
		default:
			if r.err != nil {
				return nil, r.err
			}
			return nil, fmt.Errorf("items[%d]: unknown status byte %d", i, status)
		}
		if r.err != nil {
			return nil, r.err
		}
	}
	return items, r.finish()
}

// BinaryRequestSize returns the framed byte size of a batch without
// building it — what a client pays on the wire per request.
func BinaryRequestSize(fs []*tt.TT, crc bool) int {
	size := 4 + uvarintLen(uint64(len(fs))) + len(fs)
	for _, f := range fs {
		size += ttBytes(f.NumVars())
	}
	if crc {
		size += 4
	}
	return size
}

// uvarintLen returns the encoded length of v as an unsigned varint.
func uvarintLen(v uint64) int {
	return (bits.Len64(v|1) + 6) / 7
}
