package api

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/aig"
	"repro/internal/gen"
	"repro/internal/tt"
)

// fakeBackend is a minimal Backend: arity-4 functions, every classify a
// deterministic miss, every insert a new class — plus failure injection.
type fakeBackend struct {
	classifyCalls int
	insertCalls   int
	// insertErr fails every Insert as a whole batch.
	insertErr *Error
	// failOnCall, when > 0, fails that Classify call (1-based).
	failOnCall int
}

func (b *fakeBackend) Resolve(s string) (*tt.TT, *Error) {
	if len(s) != HexDigits(4) {
		return nil, Errf(CodeArityOutOfRange, "want %d digits", HexDigits(4))
	}
	f, err := tt.FromHex(4, s)
	if err != nil {
		return nil, Errf(CodeBadHex, "%v", err)
	}
	return f, nil
}

func (b *fakeBackend) Classify(_ context.Context, fs []*tt.TT) ([]Result, *Error) {
	b.classifyCalls++
	if b.failOnCall > 0 && b.classifyCalls == b.failOnCall {
		return nil, Errf(CodeInternal, "injected failure")
	}
	out := make([]Result, len(fs))
	for i := range out {
		out[i] = Result{Key: 42, Hit: false}
	}
	return out, nil
}

func (b *fakeBackend) Insert(_ context.Context, fs []*tt.TT) ([]InsertOutcome, *Error) {
	b.insertCalls++
	if b.insertErr != nil {
		return nil, b.insertErr
	}
	out := make([]InsertOutcome, len(fs))
	for i := range out {
		out[i] = InsertOutcome{Key: 7, Index: 0, New: true}
	}
	return out, nil
}

func postReq(h http.HandlerFunc, path, contentType, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	rec := httptest.NewRecorder()
	h(rec, req)
	return rec
}

func decodeEnvelope(t *testing.T, body []byte) *Error {
	t.Helper()
	var env ErrorEnvelope
	if err := json.Unmarshal(body, &env); err != nil || env.Error == nil {
		t.Fatalf("body is not an error envelope: %s", body)
	}
	return env.Error
}

// TestRouterFallbacks: unmatched paths answer the JSON not_found
// envelope, wrong methods answer method_not_allowed with Allow.
func TestRouterFallbacks(t *testing.T) {
	rt := NewRouter("single")
	rt.Handle("GET", "/x", "", func(w http.ResponseWriter, r *http.Request) {
		WriteJSON(w, http.StatusOK, map[string]int{"ok": 1})
	})
	rt.Handle("POST", "/x", "", func(w http.ResponseWriter, r *http.Request) {})

	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/nope", nil))
	if rec.Code != http.StatusNotFound || decodeEnvelope(t, rec.Body.Bytes()).Code != CodeNotFound {
		t.Fatalf("404 fallback: %d %s", rec.Code, rec.Body)
	}

	rec = httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodDelete, "/x", nil))
	if rec.Code != http.StatusMethodNotAllowed || decodeEnvelope(t, rec.Body.Bytes()).Code != CodeMethodNotAllowed {
		t.Fatalf("405 fallback: %d %s", rec.Code, rec.Body)
	}
	if allow := rec.Header().Get("Allow"); allow != "GET, POST" {
		t.Fatalf("Allow header %q, want \"GET, POST\"", allow)
	}
}

// TestRouterSpec reflects registrations, including deprecation marks.
func TestRouterSpec(t *testing.T) {
	rt := NewRouter("federated")
	rt.Handle("POST", "/v2/classify", "lookup", func(w http.ResponseWriter, r *http.Request) {})
	rt.HandleDeprecated("POST", "/v1/classify", "shim", func(w http.ResponseWriter, r *http.Request) {})
	rt.MountSpec()

	s := rt.Spec()
	if s.Role != "federated" || s.APIVersion != Version || len(s.Routes) != 3 {
		t.Fatalf("spec %+v", s)
	}
	byPattern := map[string]Route{}
	for _, r := range s.Routes {
		byPattern[r.Pattern] = r
	}
	if byPattern["/v1/classify"].Deprecated != true || byPattern["/v2/classify"].Deprecated {
		t.Fatalf("deprecation marks wrong: %+v", s.Routes)
	}
	if len(s.ErrorCodes) != len(Codes()) {
		t.Fatalf("error codes %v", s.ErrorCodes)
	}

	// The spec route itself serves.
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v2/spec", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "/v2/classify") {
		t.Fatalf("spec endpoint: %d %s", rec.Code, rec.Body)
	}
}

// TestErrorStatusMapping pins the code → status table.
func TestErrorStatusMapping(t *testing.T) {
	for code, want := range map[Code]int{
		CodeBadRequest:           400,
		CodeBadHex:               400,
		CodeArityOutOfRange:      400,
		CodeBatchTooLarge:        400,
		CodeBadCircuit:           400,
		CodeBodyTooLarge:         413,
		CodeUnsupportedMediaType: 415,
		CodeReadOnly:             403,
		CodeNotDurable:           409,
		CodeNotFound:             404,
		CodeMethodNotAllowed:     405,
		CodePrimaryUnreachable:   502,
		CodeUnauthorized:         401,
		CodeRateLimited:          429,
		CodeVerifyFailed:         500,
		CodeInternal:             500,
	} {
		if got := Errf(code, "x").HTTPStatus(); got != want {
			t.Errorf("%s -> %d, want %d", code, got, want)
		}
	}
}

// TestDecodeBatchEnvelope: the whole-request error paths.
func TestDecodeBatchEnvelope(t *testing.T) {
	b := &fakeBackend{}
	h := HandleClassify(b, 1<<16)

	cases := []struct {
		name        string
		contentType string
		body        string
		wantStatus  int
		wantCode    Code
	}{
		{"wrong content type", "text/csv", `{"functions":["1ee1"]}`, 415, CodeUnsupportedMediaType},
		{"bad json", "application/json", `{"functions": [`, 400, CodeBadRequest},
		{"unknown field", "application/json", `{"funcs":["1ee1"]}`, 400, CodeBadRequest},
		{"empty batch", "application/json", `{"functions":[]}`, 400, CodeBadRequest},
		{"missing content type ok", "", `{"functions":["1ee1"]}`, 200, ""},
	}
	for _, tc := range cases {
		rec := postReq(h, "/v2/classify", tc.contentType, tc.body)
		if rec.Code != tc.wantStatus {
			t.Fatalf("%s: status %d, want %d (%s)", tc.name, rec.Code, tc.wantStatus, rec.Body)
		}
		if tc.wantCode != "" && decodeEnvelope(t, rec.Body.Bytes()).Code != tc.wantCode {
			t.Fatalf("%s: %s", tc.name, rec.Body)
		}
	}

	// batch_too_large.
	big := `{"functions":["` + strings.Repeat(`1ee1","`, MaxBatch) + `1ee1"]}`
	rec := postReq(HandleClassify(b, int64(len(big)+1024)), "/v2/classify", "application/json", big)
	if rec.Code != 400 || decodeEnvelope(t, rec.Body.Bytes()).Code != CodeBatchTooLarge {
		t.Fatalf("batch_too_large: %d %s", rec.Code, rec.Body.Bytes()[:120])
	}

	// body_too_large.
	rec = postReq(h, "/v2/classify", "application/json", `{"functions":["`+strings.Repeat("0", 1<<17)+`"]}`)
	if rec.Code != 413 || decodeEnvelope(t, rec.Body.Bytes()).Code != CodeBodyTooLarge {
		t.Fatalf("body_too_large: %d %s", rec.Code, rec.Body)
	}
}

// TestPerItemErrors: a bad function fails only its own item, and an
// insert refusal surfaces as a not_durable item.
func TestPerItemErrors(t *testing.T) {
	b := &fakeBackend{}
	rec := postReq(HandleClassify(b, 1<<16), "/v2/classify", "application/json",
		`{"functions":["1ee1","zzzz","1ee1bad"]}`)
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var cls ClassifyResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &cls); err != nil {
		t.Fatal(err)
	}
	if cls.Errors != 2 || len(cls.Results) != 3 {
		t.Fatalf("response %+v", cls)
	}
	if cls.Results[0].Error != nil || cls.Results[0].Class != KeyHex(42) {
		t.Fatalf("good item %+v", cls.Results[0])
	}
	if cls.Results[1].Error.Code != CodeBadHex || cls.Results[2].Error.Code != CodeArityOutOfRange {
		t.Fatalf("error items %+v", cls.Results[1:])
	}

	// Whole-batch insert error becomes the envelope.
	b.insertErr = Errf(CodeReadOnly, "nope")
	rec = postReq(HandleInsert(b, 1<<16), "/v2/insert", "application/json", `{"functions":["1ee1"]}`)
	if rec.Code != 403 || decodeEnvelope(t, rec.Body.Bytes()).Code != CodeReadOnly {
		t.Fatalf("read_only: %d %s", rec.Code, rec.Body)
	}
}

// TestNotDurableItem: a journal-refused insert (Index < 0) is a per-item
// not_durable error inside a 200, unlike /v1's whole-batch 500.
func TestNotDurableItem(t *testing.T) {
	refusing := &refusingBackend{}
	rec := postReq(HandleInsert(refusing, 1<<16), "/v2/insert", "application/json",
		`{"functions":["1ee1","8bb8"]}`)
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var ins InsertResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &ins); err != nil {
		t.Fatal(err)
	}
	if ins.Errors != 1 {
		t.Fatalf("errors %d", ins.Errors)
	}
	if ins.Results[0].Error != nil {
		t.Fatalf("first item should succeed: %+v", ins.Results[0])
	}
	if ins.Results[1].Error == nil || ins.Results[1].Error.Code != CodeNotDurable || ins.Results[1].Index != -1 {
		t.Fatalf("refused item %+v", ins.Results[1])
	}
}

// refusingBackend refuses the second insert of every batch.
type refusingBackend struct{ fakeBackend }

func (b *refusingBackend) Insert(_ context.Context, fs []*tt.TT) ([]InsertOutcome, *Error) {
	out := make([]InsertOutcome, len(fs))
	for i := range out {
		out[i] = InsertOutcome{Key: 7, Index: 0, New: true}
		if i == 1 {
			out[i].Index = -1
		}
	}
	return out, nil
}

// TestStreamChunksAndOrder: the NDJSON handler chunks a long input,
// answers one line per input in order, and carries per-item errors
// inline.
func TestStreamChunksAndOrder(t *testing.T) {
	b := &fakeBackend{}
	n := StreamChunk*2 + 7
	var in strings.Builder
	for i := 0; i < n; i++ {
		if i == 5 {
			in.WriteString("zzzz\n") // bad hex: inline item error
			continue
		}
		fmt.Fprintf(&in, "%04x\n", i&0xffff)
	}
	rec := postReq(HandleClassifyStream(b, DefaultMaxBody), "/v2/classify/stream", NDJSONContentType, in.String())
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String()[:200])
	}
	if got := rec.Header().Get("Content-Type"); got != NDJSONContentType {
		t.Fatalf("response content type %q", got)
	}
	if b.classifyCalls != 3 {
		t.Fatalf("backend saw %d chunks, want 3", b.classifyCalls)
	}
	sc := bufio.NewScanner(strings.NewReader(rec.Body.String()))
	lines := 0
	for sc.Scan() {
		var item ClassifyItem
		if err := json.Unmarshal(sc.Bytes(), &item); err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		if lines == 5 {
			if item.Error == nil || item.Error.Code != CodeBadHex {
				t.Fatalf("line 5 should be an inline bad_hex item: %+v", item)
			}
		} else if item.Error != nil {
			t.Fatalf("line %d unexpected error %+v", lines, item.Error)
		}
		lines++
	}
	if lines != n {
		t.Fatalf("%d response lines for %d inputs", lines, n)
	}
}

// TestStreamQuotedAndBlankLines: NDJSON tooling that quotes values and
// blank separator lines both work.
func TestStreamQuotedAndBlankLines(t *testing.T) {
	b := &fakeBackend{}
	rec := postReq(HandleClassifyStream(b, DefaultMaxBody), "/v2/classify/stream", NDJSONContentType,
		"\"1ee1\"\n\n  8bb8  \n")
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if got := strings.Count(strings.TrimSpace(rec.Body.String()), "\n") + 1; got != 2 {
		t.Fatalf("%d lines: %s", got, rec.Body)
	}
}

// TestStreamWholeBatchError: a whole-batch condition on the first chunk
// claims the real status; after lines have been sent it becomes a
// terminal trailing error line.
func TestStreamWholeBatchError(t *testing.T) {
	// First chunk: proper envelope with status.
	b := &fakeBackend{insertErr: Errf(CodeReadOnly, "nope")}
	rec := postReq(HandleInsertStream(b, DefaultMaxBody), "/v2/insert/stream", NDJSONContentType, "1ee1\n")
	if rec.Code != 403 || decodeEnvelope(t, rec.Body.Bytes()).Code != CodeReadOnly {
		t.Fatalf("pre-commit error: %d %s", rec.Code, rec.Body)
	}

	// Mid-stream: first chunk streams fine, second fails -> trailing
	// error line on a 200.
	cb := &fakeBackend{failOnCall: 2}
	var in strings.Builder
	for i := 0; i < StreamChunk+3; i++ {
		fmt.Fprintf(&in, "%04x\n", i&0xffff)
	}
	rec = postReq(HandleClassifyStream(cb, DefaultMaxBody), "/v2/classify/stream", NDJSONContentType, in.String())
	if rec.Code != 200 {
		t.Fatalf("mid-stream error status %d", rec.Code)
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if len(lines) != StreamChunk+1 {
		t.Fatalf("%d lines, want %d results + 1 trailing error", len(lines), StreamChunk+1)
	}
	last := decodeEnvelope(t, []byte(lines[len(lines)-1]))
	if last.Code != CodeInternal {
		t.Fatalf("trailing error %+v", last)
	}
}

// TestStreamBodyBound: the -max-body bound applies to streams.
func TestStreamBodyBound(t *testing.T) {
	b := &fakeBackend{}
	body := strings.Repeat("1ee1\n", 100)
	rec := postReq(HandleClassifyStream(b, 32), "/v2/classify/stream", NDJSONContentType, body)
	if rec.Code != 413 && !strings.Contains(rec.Body.String(), string(CodeBodyTooLarge)) {
		t.Fatalf("stream body bound: %d %s", rec.Code, rec.Body)
	}
}

// TestMapHandler: parameter validation, content-type gate, verified
// mapping with census, insert callback plumbing, read_only without one.
func TestMapHandler(t *testing.T) {
	var aag strings.Builder
	if err := aig.WriteAAG(&aag, gen.RippleCarryAdder(4)); err != nil {
		t.Fatal(err)
	}
	var inserted []*tt.TT
	h := HandleMap(MapConfig{Insert: func(_ context.Context, fs []*tt.TT) ([]InsertOutcome, *Error) {
		inserted = fs
		out := make([]InsertOutcome, len(fs))
		for i := range out {
			out[i] = InsertOutcome{New: true}
		}
		return out, nil
	}})

	rec := postReq(h, "/v2/map?k=4&mode=area&insert=true", "text/plain", aag.String())
	if rec.Code != 200 {
		t.Fatalf("map status %d: %s", rec.Code, rec.Body)
	}
	var resp MapResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Verified || resp.VerifyMethod != "exhaustive" || resp.K != 4 || resp.Mode != "area" {
		t.Fatalf("map response %+v", resp)
	}
	if resp.Area == 0 || resp.Area != len(resp.LUTs) || len(resp.Classes) == 0 {
		t.Fatalf("mapping shape %+v", resp)
	}
	if resp.Inserted == nil || resp.Inserted.Functions != len(inserted) || resp.Inserted.ClassesCreated != len(inserted) {
		t.Fatalf("insert summary %+v (%d offered)", resp.Inserted, len(inserted))
	}
	for _, f := range inserted {
		if f.NumVars() != 4 {
			t.Fatalf("inserted function has arity %d, want K=4", f.NumVars())
		}
	}

	// Param errors.
	for q, code := range map[string]Code{
		"?k=1":      CodeArityOutOfRange,
		"?k=zz":     CodeBadRequest,
		"?mode=up":  CodeBadRequest,
		"?cuts=0":   CodeBadRequest,
		"?insert=q": CodeBadRequest,
	} {
		rec := postReq(h, "/v2/map"+q, "text/plain", aag.String())
		if decodeEnvelope(t, rec.Body.Bytes()).Code != code {
			t.Fatalf("%s: %s", q, rec.Body)
		}
	}

	// JSON uploads are rejected: the body is a circuit.
	rec = postReq(h, "/v2/map", "application/json", aag.String())
	if rec.Code != 415 {
		t.Fatalf("json upload: %d", rec.Code)
	}

	// A garbage circuit is bad_circuit.
	rec = postReq(h, "/v2/map", "text/plain", "aag nope")
	if decodeEnvelope(t, rec.Body.Bytes()).Code != CodeBadCircuit {
		t.Fatalf("garbage circuit: %s", rec.Body)
	}

	// An upload past -max-body is body_too_large/413, not bad_circuit:
	// the limit breach must survive to the coded envelope.
	small := HandleMap(MapConfig{MaxBody: 16})
	rec = postReq(small, "/v2/map", "text/plain", aag.String())
	if rec.Code != 413 || decodeEnvelope(t, rec.Body.Bytes()).Code != CodeBodyTooLarge {
		t.Fatalf("oversized circuit: %d %s", rec.Code, rec.Body)
	}

	// No insert hook: ?insert=true is read_only, plain mapping still fine.
	ro := HandleMap(MapConfig{})
	rec = postReq(ro, "/v2/map?insert=true", "text/plain", aag.String())
	if rec.Code != 403 || decodeEnvelope(t, rec.Body.Bytes()).Code != CodeReadOnly {
		t.Fatalf("read_only map insert: %d %s", rec.Code, rec.Body)
	}
	rec = postReq(ro, "/v2/map", "text/plain", aag.String())
	if rec.Code != 200 {
		t.Fatalf("read-only plain map: %d %s", rec.Code, rec.Body)
	}
}

// TestWitnessRoundTrip: the wire witness encodes and decodes to the same
// transform, and rejects malformed perms.
func TestWitnessRoundTrip(t *testing.T) {
	w := &Witness{Perm: []int{2, 0, 1, 3}, NegMask: 0b1010, OutNeg: true}
	tr, err := w.Transform()
	if err != nil {
		t.Fatal(err)
	}
	back := NewWitness(tr)
	if fmt.Sprint(back) == "" || back.NegMask != w.NegMask || back.OutNeg != w.OutNeg {
		t.Fatalf("round trip %+v", back)
	}
	for i, p := range back.Perm {
		if p != w.Perm[i] {
			t.Fatalf("perm round trip %v != %v", back.Perm, w.Perm)
		}
	}
	if _, err := (&Witness{Perm: []int{0, 5}}).Transform(); err == nil {
		t.Fatal("out-of-range perm accepted")
	}
}
