package api

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"

	"repro/internal/obs"
	"repro/internal/tt"
)

// DecodeBatch parses a /v2 BatchRequest body under the shared envelope
// rules: JSON content type, body byte bound, unknown-field rejection,
// non-empty batch, MaxBatch limit. Envelope failures are whole-request
// errors (the batch never started); per-function problems are NOT checked
// here — they become per-item errors downstream. On failure it writes the
// error envelope and returns ok=false.
func DecodeBatch(w http.ResponseWriter, r *http.Request, maxBody int64) (fns []string, ok bool) {
	if !CheckContentType(w, r, "application/json") {
		return nil, false
	}
	var req BatchRequest
	body := http.MaxBytesReader(w, r.Body, maxBody)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			WriteError(w, Errf(CodeBodyTooLarge, "request body exceeds %d bytes", tooLarge.Limit))
			return nil, false
		}
		WriteError(w, Errf(CodeBadRequest, "bad request body: %v", err))
		return nil, false
	}
	if len(req.Functions) == 0 {
		WriteError(w, Errf(CodeBadRequest, "functions must be a non-empty array of hex truth tables"))
		return nil, false
	}
	if len(req.Functions) > MaxBatch {
		WriteError(w, Errf(CodeBatchTooLarge, "batch of %d exceeds limit %d", len(req.Functions), MaxBatch).
			WithDetail("use the /v2 streaming endpoints for larger batches"))
		return nil, false
	}
	return req.Functions, true
}

// resolveBatch runs Resolve over the batch: items[i] is pre-filled with
// the error item for unresolvable functions, valid holds the parsed
// functions and validIdx their positions.
func resolveBatch[T any](b Backend, fns []string, errItem func(fn string, e *Error) T) (items []T, valid []*tt.TT, validIdx []int, nErr int) {
	items = make([]T, len(fns))
	for i, s := range fns {
		f, e := b.Resolve(s)
		if e != nil {
			items[i] = errItem(s, e)
			nErr++
			continue
		}
		valid = append(valid, f)
		validIdx = append(validIdx, i)
	}
	return items, valid, validIdx, nErr
}

// classifyBatch resolves and classifies one slice of functions into
// per-item results — the core shared by the buffered handler and the
// streaming variant.
func classifyBatch(ctx context.Context, b Backend, fns []string) ([]ClassifyItem, int, *Error) {
	reqID := obs.RequestIDFromContext(ctx)
	items, valid, validIdx, nErr := resolveBatch(b, fns, func(fn string, e *Error) ClassifyItem {
		return ClassifyItem{Function: fn, Error: e.WithRequestID(reqID)}
	})
	if len(valid) > 0 {
		results, batchErr := b.Classify(ctx, valid)
		if batchErr != nil {
			return nil, 0, batchErr.WithRequestID(reqID)
		}
		for j, res := range results {
			i := validIdx[j]
			items[i] = classifyItem(fns[i], res)
			items[i].Error = items[i].Error.WithRequestID(reqID)
		}
	}
	return items, nErr, nil
}

// insertBatch resolves and inserts one slice of functions into per-item
// results, or a whole-batch error.
func insertBatch(ctx context.Context, b Backend, fns []string) ([]InsertItem, int, *Error) {
	reqID := obs.RequestIDFromContext(ctx)
	items, valid, validIdx, nErr := resolveBatch(b, fns, func(fn string, e *Error) InsertItem {
		return InsertItem{Function: fn, Error: e.WithRequestID(reqID)}
	})
	if len(valid) > 0 {
		outcomes, batchErr := b.Insert(ctx, valid)
		if batchErr != nil {
			return nil, 0, batchErr.WithRequestID(reqID)
		}
		for j, o := range outcomes {
			i := validIdx[j]
			items[i] = insertItem(fns[i], o)
			if items[i].Error != nil {
				items[i].Error = items[i].Error.WithRequestID(reqID)
				nErr++
			}
		}
	}
	return items, nErr, nil
}

// HandleClassify returns the POST /v2/classify handler over b: a buffered
// batch lookup where one bad truth table fails only its own item. The
// endpoint speaks two transports, negotiated per request: the JSON
// envelope (default) and the length-framed binary format of docs/WIRE.md
// (Content-Type selects the request decoding, Accept the response
// encoding, and the two sides mix freely).
func HandleClassify(b Backend, maxBody int64) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if IsBinaryRequest(r) || AcceptsBinary(r) {
			handleClassifyNegotiated(b, maxBody, w, r)
			return
		}
		fns, ok := DecodeBatch(w, r, maxBody)
		if !ok {
			return
		}
		items, nErr, batchErr := classifyBatch(r.Context(), b, fns)
		if batchErr != nil {
			WriteError(w, batchErr)
			return
		}
		WriteJSON(w, http.StatusOK, ClassifyResponse{Results: items, Errors: nErr})
	}
}

// HandleInsert returns the POST /v2/insert handler over b. Per-item
// failures (bad_hex, arity_out_of_range, not_durable) are reported inside
// a 200 response; whole-batch conditions (read_only, primary_unreachable)
// are error envelopes. Like HandleClassify, it negotiates between the
// JSON envelope and the binary frame per request.
func HandleInsert(b Backend, maxBody int64) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if IsBinaryRequest(r) || AcceptsBinary(r) {
			handleInsertNegotiated(b, maxBody, w, r)
			return
		}
		fns, ok := DecodeBatch(w, r, maxBody)
		if !ok {
			return
		}
		items, nErr, batchErr := insertBatch(r.Context(), b, fns)
		if batchErr != nil {
			WriteError(w, batchErr)
			return
		}
		WriteJSON(w, http.StatusOK, InsertResponse{Results: items, Errors: nErr})
	}
}
