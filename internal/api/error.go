// Package api is the versioned wire contract of the serving stack: the
// typed request/response envelopes, the machine-readable error taxonomy,
// the Router that mounts every endpoint (with a JSON 404/405 fallback and
// a self-describing GET /v2/spec), the shared /v2 batch handlers with
// per-item errors, their NDJSON streaming variants, and the /v2/map
// circuit-mapping endpoint. The three handler stacks — internal/service
// (single arity), internal/federation (mixed arity) and internal/replica
// (follower) — all mount their routes through this package, so the wire
// format cannot diverge between them, and pkg/client is its consumer on
// the client side.
//
// Versioning: /v2 is the current surface. /v1 remains mounted by every
// stack as a byte-compatible shim for valid requests; its whole-batch
// error behavior is frozen, and new endpoints land on /v2 only.
package api

import (
	"fmt"
	"net/http"
)

// Code is a stable machine-readable error code. Codes are part of the
// wire contract: clients switch on them, so existing codes never change
// meaning and removals are breaking.
type Code string

const (
	// CodeBadRequest is a malformed request envelope (bad JSON, unknown
	// fields, empty batch, bad query parameter).
	CodeBadRequest Code = "bad_request"
	// CodeBadHex is a function string that is not valid hexadecimal for
	// its claimed length.
	CodeBadHex Code = "bad_hex"
	// CodeArityOutOfRange is a function (or mapping arity) outside the
	// server's served arity range.
	CodeArityOutOfRange Code = "arity_out_of_range"
	// CodeBatchTooLarge is a batch exceeding MaxBatch functions.
	CodeBatchTooLarge Code = "batch_too_large"
	// CodeBodyTooLarge is a request body exceeding the byte bound.
	CodeBodyTooLarge Code = "body_too_large"
	// CodeUnsupportedMediaType is a request whose Content-Type the
	// endpoint does not accept.
	CodeUnsupportedMediaType Code = "unsupported_media_type"
	// CodeReadOnly is a write refused because the server does not accept
	// writes (a follower in local mode, a read-only store).
	CodeReadOnly Code = "read_only"
	// CodeNotDurable is a write that could not be made durable (journal
	// failure, or a durability operation on a memory-only server).
	CodeNotDurable Code = "not_durable"
	// CodeBadCircuit is an AIGER body that does not parse or cannot be
	// mapped.
	CodeBadCircuit Code = "bad_circuit"
	// CodeVerifyFailed is a mapping that failed functional verification —
	// a server-side bug surfaced rather than an answer served.
	CodeVerifyFailed Code = "verify_failed"
	// CodeNotFound is an unmatched route.
	CodeNotFound Code = "not_found"
	// CodeMethodNotAllowed is a matched route asked with the wrong method.
	CodeMethodNotAllowed Code = "method_not_allowed"
	// CodePrimaryUnreachable is a follower that could not reach its
	// primary for a forwarded write.
	CodePrimaryUnreachable Code = "primary_unreachable"
	// CodeUnauthorized is a request refused at the edge for missing or
	// invalid API credentials (the Authorization: Bearer key).
	CodeUnauthorized Code = "unauthorized"
	// CodeRateLimited is a request refused by admission control — the
	// client's token bucket is empty, or the server is shedding load.
	// Responses carry a Retry-After header with the earliest useful
	// moment to try again.
	CodeRateLimited Code = "rate_limited"
	// CodeInternal is an unexpected server-side failure.
	CodeInternal Code = "internal"
)

// Codes lists every stable error code, in the order documented. The spec
// endpoint publishes this list so clients can enumerate the taxonomy.
func Codes() []Code {
	return []Code{
		CodeBadRequest, CodeBadHex, CodeArityOutOfRange, CodeBatchTooLarge,
		CodeBodyTooLarge, CodeUnsupportedMediaType, CodeReadOnly,
		CodeNotDurable, CodeBadCircuit, CodeVerifyFailed, CodeNotFound,
		CodeMethodNotAllowed, CodePrimaryUnreachable, CodeUnauthorized,
		CodeRateLimited, CodeInternal,
	}
}

// Error is the wire error: a stable code, a human-readable message and an
// optional machine-oriented detail (e.g. the accepted hex lengths). It is
// both the body of every non-2xx /v2 response — wrapped as
// {"error": {...}} — and the per-item error object inside /v2 batch
// responses.
type Error struct {
	Code    Code   `json:"code"`
	Message string `json:"message"`
	Detail  string `json:"detail,omitempty"`
	// RequestID correlates the error with the request that produced it:
	// the ID the obs middleware stamped (or the caller supplied via
	// X-Request-Id). Set on envelope-level errors, per-item batch errors
	// and the NDJSON trailing error line, so one grep finds a failed item
	// in a million-line stream and its slow-request log line alike.
	RequestID string `json:"request_id,omitempty"`
}

// Error implements the error interface, so an *Error travels through
// ordinary Go error plumbing (and pkg/client returns it as-is).
func (e *Error) Error() string {
	if e.Detail != "" {
		return fmt.Sprintf("%s: %s (%s)", e.Code, e.Message, e.Detail)
	}
	return fmt.Sprintf("%s: %s", e.Code, e.Message)
}

// Errf builds an Error with a formatted message.
func Errf(code Code, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...)}
}

// WithDetail returns a copy of e carrying the formatted detail.
func (e *Error) WithDetail(format string, args ...any) *Error {
	cp := *e
	cp.Detail = fmt.Sprintf(format, args...)
	return &cp
}

// WithRequestID returns e carrying the request ID — a copy when stamping
// is needed, e itself when id is empty or already present. Nil-safe, so
// call sites can stamp unconditionally: items without errors pass
// through untouched. Copying matters: backends may hand out shared
// *Error values, which must not mutate under one request's ID.
func (e *Error) WithRequestID(id string) *Error {
	if e == nil || id == "" || e.RequestID == id {
		return e
	}
	cp := *e
	cp.RequestID = id
	return &cp
}

// HTTPStatus maps the code to its response status. Per-item errors inside
// a 200 batch response never reach this; it applies when an Error is the
// whole response. Every registered code has an explicit case (the
// errtaxonomy analyzer enforces this): the default exists only for a
// code minted outside the taxonomy, which is itself a server bug and is
// reported as one.
func (e *Error) HTTPStatus() int {
	switch e.Code {
	case CodeBadRequest, CodeBadHex, CodeArityOutOfRange, CodeBatchTooLarge, CodeBadCircuit:
		return http.StatusBadRequest
	case CodeBodyTooLarge:
		return http.StatusRequestEntityTooLarge
	case CodeUnsupportedMediaType:
		return http.StatusUnsupportedMediaType
	case CodeReadOnly:
		return http.StatusForbidden
	case CodeNotDurable:
		return http.StatusConflict
	case CodeNotFound:
		return http.StatusNotFound
	case CodeMethodNotAllowed:
		return http.StatusMethodNotAllowed
	case CodePrimaryUnreachable:
		return http.StatusBadGateway
	case CodeUnauthorized:
		return http.StatusUnauthorized
	case CodeRateLimited:
		return http.StatusTooManyRequests
	case CodeVerifyFailed, CodeInternal:
		return http.StatusInternalServerError
	default: // unregistered code: a server bug, not a client error
		return http.StatusInternalServerError
	}
}

// ErrorEnvelope is the body of every non-2xx /v2 response:
// {"error": {"code": ..., "message": ..., "detail": ...}}.
type ErrorEnvelope struct {
	Error *Error `json:"error"`
}

// AsError coerces err into a wire *Error: an *Error passes through, any
// other error becomes CodeInternal.
func AsError(err error) *Error {
	if e, ok := err.(*Error); ok {
		return e
	}
	return Errf(CodeInternal, "%v", err)
}
